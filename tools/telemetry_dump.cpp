// telemetry_dump: drives a demo multi-tenant dataplane (batched +
// streaming traffic, histograms on, 1-in-8 trace sampling) and dumps
// the observability surface.
//
//   telemetry_dump            human-readable DumpDataplaneStats + traces
//   telemetry_dump --prom     Prometheus text exposition to stdout
//   telemetry_dump --json     JSON metrics document to stdout
//   telemetry_dump --selftest export -> parse -> compare round trip
//                             (the telemetry_export_roundtrip ctest);
//                             exit 0 on byte-exact agreement.
//
// CI runs `telemetry_dump --json` after the bench jobs so a scrape of
// every exported metric is part of the gate artifacts.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "dataplane/dataplane.hpp"
#include "packet/arena.hpp"
#include "runtime/stats.hpp"
#include "runtime/telemetry_export.hpp"
#include "sim/traffic.hpp"

namespace menshen {
namespace {

/// Builds the demo dataplane and pushes traffic down both paths.
Dataplane& DemoDataplane() {
  static Dataplane dp(DataplaneConfig{
      .num_shards = 2,
      .worker_threads = false,
      .telemetry = TelemetryConfig{.latency_histograms = true,
                                   .trace_sample_every = 8,
                                   .trace_ring_capacity = 256}});
  static bool done = [] {
    ModuleAllocation alloc =
        UniformAllocation(ModuleId(2), 0, params::kNumStages, 0, 8, 0, 32);
    CompiledModule m = Compile(apps::CalcSpec(), alloc);
    apps::InstallCalcEntries(m, 1);
    dp.ApplyWrites(m.AllWrites());

    // Batched path: a 4-tenant mix (one configured tenant + three
    // unconfigured ones exercising the unplanned tier).
    const std::vector<Packet> trace = GenerateTenantMix(
        {{2, 96, 1.0}, {3, 96, 1.0}, {4, 96, 1.0}, {5, 96, 1.0}}, 4096);
    (void)dp.ProcessBatch(std::vector<Packet>(trace));

    // Streaming path: the same mix as arena bursts.
    PacketArena arena(0);
    std::vector<ArenaPacket*> egress;
    constexpr std::size_t kBurst = 32;
    for (std::size_t off = 0; off < trace.size(); off += kBurst) {
      const std::size_t n = std::min(kBurst, trace.size() - off);
      ArenaPacket* burst[kBurst];
      if (arena.AllocateBurst(burst, n) != n) break;
      for (std::size_t i = 0; i < n; ++i)
        burst[i]->Assign(trace[off + i].bytes().bytes());
      dp.SubmitStream(burst, n);
      (void)dp.PollEgress(egress);
    }
    (void)dp.PollEgress(egress);
    ReleaseToOwners(egress.data(), egress.size());
    return true;
  }();
  (void)done;
  return dp;
}

int RunSelftest() {
  Dataplane& dp = DemoDataplane();
  const DataplaneStats stats = CollectDataplaneStats(dp);
  const TelemetrySnapshot tel = dp.telemetry().Snapshot();

  const std::vector<MetricSample> built = BuildMetricSamples(stats, tel);
  const std::vector<MetricSample> parsed =
      ParsePrometheus(RenderPrometheus(stats, tel));

  if (built.size() != parsed.size()) {
    std::fprintf(stderr, "selftest: sample count mismatch: built %zu, "
                 "parsed %zu\n", built.size(), parsed.size());
    return 1;
  }
  for (std::size_t i = 0; i < built.size(); ++i) {
    if (built[i] == parsed[i]) continue;
    std::fprintf(stderr, "selftest: sample %zu diverged: %s vs %s\n", i,
                 built[i].name.c_str(), parsed[i].name.c_str());
    return 1;
  }
  // The demo must actually light up the surface the round trip covers.
  auto has = [&built](const char* name) {
    for (const MetricSample& m : built)
      if (m.name == name) return true;
    return false;
  };
  for (const char* required :
       {"menshen_packets_total", "menshen_latency_count",
        "menshen_exec_tier_pkts_total", "menshen_tenant_p99_ns",
        "menshen_trace_samples_total"}) {
    if (!has(required)) {
      std::fprintf(stderr, "selftest: demo produced no %s\n", required);
      return 1;
    }
  }
  const std::string json = RenderJson(stats, tel);
  if (json.find("menshen_packets_total") == std::string::npos) {
    std::fprintf(stderr, "selftest: JSON rendering is missing metrics\n");
    return 1;
  }
  std::printf("selftest: OK (%zu samples round-tripped)\n", built.size());
  return 0;
}

int RunDump(const char* mode) {
  Dataplane& dp = DemoDataplane();
  if (std::strcmp(mode, "--prom") == 0 || std::strcmp(mode, "--json") == 0) {
    const DataplaneStats stats = CollectDataplaneStats(dp);
    const TelemetrySnapshot tel = dp.telemetry().Snapshot();
    const std::string out = std::strcmp(mode, "--json") == 0
                                ? RenderJson(stats, tel)
                                : RenderPrometheus(stats, tel);
    std::fwrite(out.data(), 1, out.size(), stdout);
    return 0;
  }
  // Human view: the operator dump plus a window of sampled traces.
  std::printf("%s", DumpDataplaneStats(dp).c_str());
  for (std::size_t s = 0; s < dp.telemetry().num_shards(); ++s) {
    const std::vector<TraceRecord> traces = dp.telemetry().DrainTraces(s);
    if (traces.empty()) continue;
    std::printf("shard %zu sampled traces (%zu):\n", s, traces.size());
    const std::size_t show = std::min<std::size_t>(traces.size(), 8);
    for (std::size_t i = 0; i < show; ++i) {
      const TraceRecord& t = traces[i];
      std::printf("  t%u %s %s tier=%s stages=%u ns=%llu\n", t.tenant,
                  t.stream != 0 ? "stream" : "batched",
                  t.verdict == 0   ? "fwd"
                  : t.verdict == 1 ? "drop"
                                   : "filt",
                  ExecTierName(t.tier), t.stages,
                  static_cast<unsigned long long>(t.ns));
    }
    if (traces.size() > show)
      std::printf("  ... %zu more\n", traces.size() - show);
  }
  return 0;
}

}  // namespace
}  // namespace menshen

int main(int argc, char** argv) {
  const char* mode = argc > 1 ? argv[1] : "";
  if (std::strcmp(mode, "--selftest") == 0) return menshen::RunSelftest();
  return menshen::RunDump(mode);
}
