#!/usr/bin/env python3
"""Diff two BENCH_throughput.json runs and flag regressions.

Usage: bench_diff.py BASELINE CURRENT [--fail-under PCT]

The file is JSON-lines: {"name": ..., "gbps": ..., "mpps": ...} per row
(written by bench_fig11_throughput).  Rows fall into two classes:

* fig11*  — deterministic timing-model sweeps.  These must match the
  baseline almost exactly (1% tolerance for float formatting); any drift
  means the timing model changed and the baseline must be regenerated
  deliberately.
* functional_* — wall-clock measurements of the batched dataplane.
  These vary with the host, so only a large drop (default 35%) against
  the committed baseline is flagged.

Exit code 1 if any regression is flagged; new/removed rows are reported
but not fatal (they accompany intentional bench changes).
"""

import argparse
import json
import sys


def load(path):
    rows = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            rows[row["name"]] = row
    return rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--fail-under", type=float, default=35.0,
                    help="flag functional rows that lost more than PCT "
                         "throughput (default: 35)")
    ap.add_argument("--sim-tolerance", type=float, default=1.0,
                    help="allowed drift for simulated fig11 rows in PCT "
                         "(default: 1)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    regressions = []
    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            print(f"  [gone] {name} (present in baseline only)")
            continue
        if b["mpps"] <= 0:
            continue
        delta_pct = (c["mpps"] - b["mpps"]) / b["mpps"] * 100.0
        simulated = name.startswith("fig11")
        # Simulated rows are deterministic: drift in EITHER direction
        # means the timing model changed and the baseline must be
        # regenerated deliberately.  Functional rows are wall-clock and
        # only fail on a large drop.
        flagged = (abs(delta_pct) > args.sim_tolerance if simulated
                   else delta_pct < -args.fail_under)
        marker = " "
        if flagged:
            marker = "!"
            regressions.append((name, delta_pct))
        print(f"  [{marker}] {name}: {b['mpps']:.3f} -> {c['mpps']:.3f} Mpps "
              f"({delta_pct:+.1f}%)")
    for name in sorted(set(cur) - set(base)):
        print(f"  [new] {name}: {cur[name]['mpps']:.3f} Mpps")

    if regressions:
        print("\nperf regressions against the committed baseline:")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%")
        return 1
    print("\nno perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
