#!/usr/bin/env python3
"""Diff two bench JSON runs and flag regressions.

Usage: bench_diff.py BASELINE CURRENT [--fail-under PCT] [--micro-fail-over PCT]

Both files are JSON-lines.  Two record shapes are understood:

* {"name": ..., "gbps": ..., "mpps": ...} — throughput rows (written by
  bench_fig11_throughput and appended to by bench_netchain).  Rows fall
  into two classes:
    - fig11*  — deterministic timing-model sweeps.  These must match the
      baseline almost exactly (1% tolerance for float formatting); any
      drift means the timing model changed and the baseline must be
      regenerated deliberately.
    - everything else (functional_*, netchain_*) — wall-clock
      measurements of the batched engine.  These vary with the host, so
      only a large drop (default 35%) against the committed baseline is
      flagged.

* {"name": ..., "ns_per_op": ...} — match-path micro costs (written by
  bench_pipeline_micro into BENCH_micro.json).  Lower is better; a row
  is flagged when ns/op grew by more than --micro-fail-over percent
  (default 80% — wide enough for shared-runner noise, tight enough to
  catch an accidental return to the linear scan, which is 3-4x).

Exit code 1 if any regression is flagged.  New rows are reported but not
fatal (they accompany intentional bench additions); a baseline row
MISSING from the candidate run is fatal — a silently dropped bench would
otherwise exempt itself from the gate — so intentional removals must
regenerate the committed baseline.

--list prints a side-by-side baseline-vs-current table for every row
(including unchanged and new/removed ones) and always exits 0 — the
inspection mode for deciding whether a baseline regeneration is
justified, e.g. when CI uploads the bench JSONs of a failed gate.

--summary prints a compact percent-change table (every common row, one
line each) followed by derived gap ratios: the ingress multi-producer
gap (each ingress_96B_4prod_* row as a percentage of the
single-dispatcher ingress_96B_1disp row) and the streaming-vs-batched
gap (each stream_* row as a multiple of the best functional_batched_96B
row), each in both the baseline and the current run.  Always exits 0;
CI runs it before the gates so the known gaps are visible on every PR
instead of buried in raw JSON.

When the candidate run contains stream_* rows, two additional
within-run acceptance gates apply (host-consistent, so they hold on
slow shared runners too): the best stream_* row must reach >= 1.5x the
best functional_batched_96B row, and stream_96B_4core_4prod must beat
ingress_96B_1disp.  These pin the run-to-completion streaming path's
advantage over the batched engine.

When the candidate run contains the micro_telemetry_off /
micro_telemetry_overhead pair, a third within-run gate applies:
overhead (histograms on) must stay <= 1.02x off — the telemetry
subsystem's <= 2% hot-path cost guarantee.

When the candidate run contains the micro_flow_cache_burst_hit /
micro_flow_cache_burst_hit_scalar pair, a fourth within-run gate
applies: the burst-probed row must be >= 1.3x faster (ns/op <= scalar
/ 1.3) — the acceptance floor for the flow-cache burst-probe path on
the cold zipfian tag mix.

When both runs carry an fc_share field on the stream_96B_zipf row, the
candidate's flow-cache tier share must not fall more than 2 points
below the committed baseline share: an engine change that silently
pushes zipf traffic off the memoization tier fails even if raw Mpps
survives on a fast host.
"""

import argparse
import json
import sys


def load(path):
    rows = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            rows[row["name"]] = row
    return rows


def metric(row):
    """(value, unit) of a row's primary metric; ns/op rows are
    lower-is-better, mpps rows higher-is-better."""
    if "ns_per_op" in row:
        return row["ns_per_op"], "ns/op"
    return row["mpps"], "Mpps"


def summary(base, cur):
    """Percent-change table over common rows, then derived gap ratios."""
    common = [n for n in sorted(base) if n in cur]
    if common:
        width = max(len(n) for n in common)
        print("percent change vs committed baseline "
              "(ns/op lower is better, Mpps higher is better):")
        for name in common:
            bv, unit = metric(base[name])
            cv, _ = metric(cur[name])
            delta = (cv - bv) / bv * 100 if bv > 0 else 0.0
            print(f"  {name:<{width}}  {bv:>10.3f} -> {cv:>10.3f} {unit:<5}"
                  f" ({delta:+6.1f}%)")
    # Known perf gap (see README "Known perf gaps"): the multi-producer
    # ingress rows vs the single-dispatcher row, from the same run each.
    for label, rows in (("baseline", base), ("current", cur)):
        ref = rows.get("ingress_96B_1disp")
        if ref is None or ref.get("mpps", 0) <= 0:
            continue
        gaps = [n for n in sorted(rows) if n.startswith("ingress_96B_4prod")]
        if not gaps:
            continue
        print(f"ingress multi-producer gap ({label}, % of ingress_96B_1disp "
              f"= {ref['mpps']:.3f} Mpps):")
        for name in gaps:
            pct = rows[name]["mpps"] / ref["mpps"] * 100
            print(f"  {name}: {rows[name]['mpps']:.3f} Mpps ({pct:.1f}%)")
    # Streaming vs batched: each stream_* row as a multiple of the best
    # batched functional row — the run-to-completion path's headline.
    for label, rows in (("baseline", base), ("current", cur)):
        streams = [n for n in sorted(rows) if n.startswith("stream_")]
        batched = best_batched(rows)
        if not streams or batched is None:
            continue
        bname, bmpps = batched
        print(f"streaming vs batched ({label}, x of best "
              f"functional_batched_96B row {bname} = {bmpps:.3f} Mpps):")
        for name in streams:
            ratio = rows[name]["mpps"] / bmpps
            print(f"  {name}: {rows[name]['mpps']:.3f} Mpps ({ratio:.2f}x)")
    # Known perf gap: multi-threaded batched rows that run SLOWER than
    # their single-thread sibling of the same frame size (fork/join
    # overhead beats the parallelism at large frames on few cores).
    # Named here so the gap stays visible on every PR instead of hiding
    # inside the raw percent table.
    for label, rows in (("baseline", base), ("current", cur)):
        gap_lines = []
        for name in sorted(rows):
            if not (name.startswith("functional_batched_")
                    and name.endswith("_mt")):
                continue
            prefix = name.rsplit("_", 2)[0]  # functional_batched_<size>
            sibs = [r for n, r in rows.items()
                    if n.startswith(prefix) and not n.endswith("_mt")
                    and r.get("mpps", 0) > 0]
            if not sibs or rows[name].get("mpps", 0) <= 0:
                continue
            best_sib = max(sibs, key=lambda r: r["mpps"])
            if rows[name]["mpps"] < best_sib["mpps"]:
                pct = rows[name]["mpps"] / best_sib["mpps"] * 100
                gap_lines.append(
                    f"  {name}: {rows[name].get('gbps', 0):.1f} Gbps vs "
                    f"{best_sib['name']} {best_sib.get('gbps', 0):.1f} Gbps "
                    f"({pct:.1f}% of single-thread)")
        if gap_lines:
            print(f"mt-vs-single-thread gap ({label}, mt rows slower than "
                  f"their single-thread sibling):")
            for line in gap_lines:
                print(line)
    return 0


def best_batched(rows):
    """(name, mpps) of the fastest functional_batched_96B row, or None."""
    best = None
    for name, row in rows.items():
        if not name.startswith("functional_batched_96B"):
            continue
        if row.get("mpps", 0) <= 0:
            continue
        if best is None or row["mpps"] > best[1]:
            best = (name, row["mpps"])
    return best


def stream_gates(cur):
    """Streaming acceptance gates, evaluated within the candidate run
    (host-consistent: both sides measured on the same machine).  Only
    active when the run produced stream_* rows, so the gate cannot be
    dodged by dropping them once a baseline contains any (the
    missing-row check above already makes that fatal).

    * the best stream_* row must be >= 1.5x the best batched
      functional_batched_96B row — the run-to-completion path must beat
      the batched engine by a real margin, not round-off;
    * stream_96B_4core_4prod must beat the single-dispatcher batched
      baseline ingress_96B_1disp — multi-producer streaming may not
      regress below the old synchronous front-end.
    """
    failures = []
    streams = {n: r for n, r in cur.items() if n.startswith("stream_")}
    if not streams:
        return failures
    batched = best_batched(cur)
    if batched is not None:
        bname, bmpps = batched
        best_stream = max(streams.values(), key=lambda r: r.get("mpps", 0))
        ratio = best_stream.get("mpps", 0) / bmpps
        marker = " " if ratio >= 1.5 else "!"
        print(f"  [{marker}] streaming/batched: {best_stream['name']} "
              f"{best_stream['mpps']:.3f} Mpps vs {bname} {bmpps:.3f} Mpps "
              f"({ratio:.2f}x, need >= 1.50x)")
        if ratio < 1.5:
            failures.append(("stream-vs-batched ratio", (ratio - 1.5) * 100))
    four = cur.get("stream_96B_4core_4prod")
    disp = cur.get("ingress_96B_1disp")
    if four is not None and disp is not None and disp.get("mpps", 0) > 0:
        delta = (four["mpps"] - disp["mpps"]) / disp["mpps"] * 100
        marker = " " if four["mpps"] > disp["mpps"] else "!"
        print(f"  [{marker}] stream_96B_4core_4prod {four['mpps']:.3f} Mpps "
              f"vs ingress_96B_1disp {disp['mpps']:.3f} Mpps "
              f"({delta:+.1f}%, must be positive)")
        if four["mpps"] <= disp["mpps"]:
            failures.append(("stream 4prod vs 1disp", delta))
    return failures


def telemetry_gate(cur):
    """Telemetry-overhead acceptance gate, evaluated within the
    candidate run (host-consistent): micro_telemetry_overhead (latency
    histograms on, the default dataplane config) must stay within 2% of
    micro_telemetry_off (histograms and sampling off — no timestamp on
    the hot path at all).  This is the README's <= 2% observability
    overhead guarantee.  Only active when the run produced both rows;
    dropping them is already fatal via the missing-baseline-row check.
    """
    failures = []
    off = cur.get("micro_telemetry_off")
    on = cur.get("micro_telemetry_overhead")
    if off is None or on is None:
        return failures
    if off.get("ns_per_op", 0) <= 0:
        return failures
    ratio = on["ns_per_op"] / off["ns_per_op"]
    marker = " " if ratio <= 1.02 else "!"
    print(f"  [{marker}] telemetry overhead: {on['ns_per_op']:.2f} ns/pkt on "
          f"vs {off['ns_per_op']:.2f} ns/pkt off "
          f"({ratio:.3f}x, need <= 1.02x)")
    if ratio > 1.02:
        failures.append(("telemetry overhead ratio", (ratio - 1.0) * 100))
    return failures


def burst_gate(cur):
    """Flow-cache burst-probe acceptance gate, evaluated within the
    candidate run (host-consistent): micro_flow_cache_burst_hit (the
    gather/hash/prefetch burst probe) must be >= 1.3x faster than
    micro_flow_cache_burst_hit_scalar (the per-packet probe loop on the
    identical cold zipfian workload).  Only active when the run produced
    both rows; dropping them is already fatal via the
    missing-baseline-row check.
    """
    failures = []
    burst = cur.get("micro_flow_cache_burst_hit")
    scalar = cur.get("micro_flow_cache_burst_hit_scalar")
    if burst is None or scalar is None:
        return failures
    if burst.get("ns_per_op", 0) <= 0:
        return failures
    speedup = scalar["ns_per_op"] / burst["ns_per_op"]
    marker = " " if speedup >= 1.3 else "!"
    print(f"  [{marker}] flow-cache burst probe: {burst['ns_per_op']:.1f} "
          f"ns/pkt burst vs {scalar['ns_per_op']:.1f} ns/pkt scalar "
          f"({speedup:.2f}x, need >= 1.30x)")
    if speedup < 1.3:
        failures.append(("flow-cache burst speedup", (speedup - 1.3) * 100))
    return failures


def fc_share_gate(base, cur):
    """Ladder-tier mix gate on the zipf streaming row: the flow-cache
    tier share (fc_share = flow-cache hits / streamed packets, emitted
    by bench_ingress) must not drop more than 2 points below the
    committed baseline share.  Cross-run but host-independent — the
    share is a counter ratio, not a wall-clock measurement.
    """
    failures = []
    name = "stream_96B_zipf_1core_1prod"
    b, c = base.get(name), cur.get(name)
    if b is None or c is None:
        return failures
    if "fc_share" not in b or "fc_share" not in c:
        return failures
    floor = b["fc_share"] - 0.02
    marker = " " if c["fc_share"] >= floor else "!"
    print(f"  [{marker}] zipf flow-cache tier share: {c['fc_share']:.3f} vs "
          f"baseline {b['fc_share']:.3f} (need >= {floor:.3f})")
    if c["fc_share"] < floor:
        failures.append(("zipf flow-cache tier share",
                         (c["fc_share"] - b["fc_share"]) * 100))
    return failures


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--fail-under", type=float, default=35.0,
                    help="flag functional throughput rows that lost more "
                         "than PCT throughput (default: 35)")
    ap.add_argument("--sim-tolerance", type=float, default=1.0,
                    help="allowed drift for simulated fig11 rows in PCT "
                         "(default: 1)")
    ap.add_argument("--micro-fail-over", type=float, default=80.0,
                    help="flag micro rows whose ns/op grew by more than "
                         "PCT (default: 80)")
    ap.add_argument("--list", action="store_true",
                    help="print baseline vs current for every row and "
                         "exit 0 (no gating)")
    ap.add_argument("--summary", action="store_true",
                    help="print a percent-change table plus derived gap "
                         "ratios (ingress 4prod vs 1disp) and exit 0")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    if args.summary:
        return summary(base, cur)

    if args.list:
        def fmt(row):
            if row is None:
                return "-"
            if "ns_per_op" in row:
                return f"{row['ns_per_op']:.2f} ns/op"
            return f"{row['mpps']:.3f} Mpps ({row.get('gbps', 0):.3f} Gbps)"

        width = max((len(n) for n in set(base) | set(cur)), default=4)
        print(f"{'row':<{width}}  {'baseline':>24}  {'current':>24}")
        for name in sorted(set(base) | set(cur)):
            b, c = base.get(name), cur.get(name)
            note = ""
            if b is None:
                note = "  [new]"
            elif c is None:
                note = "  [gone]"
            elif "ns_per_op" in b and "ns_per_op" in c and b["ns_per_op"] > 0:
                delta = (c["ns_per_op"] - b["ns_per_op"]) / b["ns_per_op"] * 100
                note = f"  ({delta:+.1f}%)"
            elif "mpps" in b and "mpps" in c and b["mpps"] > 0:
                delta = (c["mpps"] - b["mpps"]) / b["mpps"] * 100
                note = f"  ({delta:+.1f}%)"
            print(f"{name:<{width}}  {fmt(b):>24}  {fmt(c):>24}{note}")
        return 0

    regressions = []
    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            # A baseline row the candidate run no longer produces is a
            # gate failure, not a note: a silently dropped bench (renamed
            # row, bench that stopped emitting, crashed suite section)
            # would otherwise exempt itself from the gate forever.
            # Intentional removals must regenerate the baseline.
            print(f"  [!] {name}: present in baseline but missing from "
                  f"the candidate run")
            regressions.append((name, None))
            continue
        if "ns_per_op" in b:
            # Micro row: wall-clock ns/op, lower is better.
            if "ns_per_op" not in c:
                print(f"  [?] {name}: row shape changed "
                      f"(baseline ns_per_op, current lacks it)")
                continue
            if b["ns_per_op"] <= 0:
                print(f"  [?] {name}: non-positive baseline ns/op, skipped")
                continue
            delta_pct = ((c["ns_per_op"] - b["ns_per_op"])
                         / b["ns_per_op"] * 100.0)
            flagged = delta_pct > args.micro_fail_over
            marker = "!" if flagged else " "
            if flagged:
                regressions.append((name, delta_pct))
            print(f"  [{marker}] {name}: {b['ns_per_op']:.1f} -> "
                  f"{c['ns_per_op']:.1f} ns/op ({delta_pct:+.1f}%)")
            continue
        if b["mpps"] <= 0:
            continue
        delta_pct = (c["mpps"] - b["mpps"]) / b["mpps"] * 100.0
        simulated = name.startswith("fig11")
        # Simulated rows are deterministic: drift in EITHER direction
        # means the timing model changed and the baseline must be
        # regenerated deliberately.  Functional rows are wall-clock and
        # only fail on a large drop.
        flagged = (abs(delta_pct) > args.sim_tolerance if simulated
                   else delta_pct < -args.fail_under)
        marker = " "
        if flagged:
            marker = "!"
            regressions.append((name, delta_pct))
        print(f"  [{marker}] {name}: {b['mpps']:.3f} -> {c['mpps']:.3f} Mpps "
              f"({delta_pct:+.1f}%)")
    for name in sorted(set(cur) - set(base)):
        row = cur[name]
        if "ns_per_op" in row:
            print(f"  [new] {name}: {row['ns_per_op']:.1f} ns/op")
        else:
            print(f"  [new] {name}: {row['mpps']:.3f} Mpps")

    regressions.extend(stream_gates(cur))
    regressions.extend(telemetry_gate(cur))
    regressions.extend(burst_gate(cur))
    regressions.extend(fc_share_gate(base, cur))

    if regressions:
        print("\nperf regressions against the committed baseline:")
        for name, delta in regressions:
            if delta is None:
                print(f"  {name}: missing from candidate run")
            else:
                print(f"  {name}: {delta:+.1f}%")
        return 1
    print("\nno perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
