#!/usr/bin/env python3
"""Unit checks for tools/bench_diff.py's gating behaviour.

Run directly (python3 tools/test_bench_diff.py) or via the tier-1 suite
(ctest -R bench_diff_unit).  Each case drives bench_diff.py as a
subprocess on small synthetic JSON-lines files and asserts the exit
code, the contract CI relies on:

  * unchanged rows                        -> exit 0
  * micro row grown past --micro-fail-over -> exit 1
  * baseline row missing from candidate   -> exit 1 (fail loudly, never
    skip: a silently dropped bench must not exempt itself from the gate)
  * new candidate row                     -> exit 0 (additions are fine)
  * --list with missing rows              -> exit 0 (inspection mode)
  * stream rows below 1.5x best batched   -> exit 1 (within-run gate)
  * stream_96B_4core_4prod <= 1disp       -> exit 1 (within-run gate)
  * telemetry overhead above 1.02x off    -> exit 1 (within-run gate)
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "bench_diff.py")


def write_rows(path, rows):
    with open(path, "w") as f:
        for row in rows:
            f.write(json.dumps(row) + "\n")


def run_diff(baseline_rows, current_rows, *extra):
    with tempfile.TemporaryDirectory() as d:
        base = os.path.join(d, "base.json")
        cur = os.path.join(d, "cur.json")
        write_rows(base, baseline_rows)
        write_rows(cur, current_rows)
        proc = subprocess.run(
            [sys.executable, TOOL, base, cur, *extra],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout


MICRO_A = {"name": "micro_alpha", "ns_per_op": 10.0}
MICRO_B = {"name": "micro_beta", "ns_per_op": 20.0}
THROUGHPUT = {"name": "functional_x", "mpps": 5.0, "gbps": 3.4}


class BenchDiffGate(unittest.TestCase):
    def test_unchanged_rows_pass(self):
        code, out = run_diff([MICRO_A, THROUGHPUT], [MICRO_A, THROUGHPUT])
        self.assertEqual(code, 0, out)
        self.assertIn("no perf regressions", out)

    def test_micro_regression_fails(self):
        grown = dict(MICRO_A, ns_per_op=100.0)
        code, out = run_diff([MICRO_A], [grown])
        self.assertEqual(code, 1, out)
        self.assertIn("micro_alpha", out)

    def test_missing_baseline_row_fails(self):
        # The candidate run dropped micro_beta: must gate, not skip.
        code, out = run_diff([MICRO_A, MICRO_B], [MICRO_A])
        self.assertEqual(code, 1, out)
        self.assertIn("missing from", out)
        self.assertIn("micro_beta", out)

    def test_missing_throughput_row_fails_too(self):
        code, out = run_diff([MICRO_A, THROUGHPUT], [MICRO_A])
        self.assertEqual(code, 1, out)
        self.assertIn("functional_x", out)

    def test_new_candidate_row_passes(self):
        code, out = run_diff([MICRO_A], [MICRO_A, MICRO_B])
        self.assertEqual(code, 0, out)
        self.assertIn("[new]", out)

    def test_list_mode_never_gates(self):
        code, out = run_diff([MICRO_A, MICRO_B], [MICRO_A], "--list")
        self.assertEqual(code, 0, out)
        self.assertIn("[gone]", out)

    def test_summary_mode_never_gates(self):
        grown = dict(MICRO_A, ns_per_op=100.0)
        code, out = run_diff([MICRO_A], [grown], "--summary")
        self.assertEqual(code, 0, out)
        self.assertIn("percent change", out)
        self.assertIn("+900.0%", out)

    def test_summary_ingress_gap_table(self):
        disp = {"name": "ingress_96B_1disp", "mpps": 4.0, "gbps": 3.0}
        prod = {"name": "ingress_96B_4prod_d16", "mpps": 3.0, "gbps": 2.3}
        code, out = run_diff([disp, prod], [disp, prod], "--summary")
        self.assertEqual(code, 0, out)
        self.assertIn("ingress multi-producer gap", out)
        self.assertIn("(75.0%)", out)

    # --- Streaming within-run acceptance gates -----------------------

    BATCHED = {"name": "functional_batched_96B_4shard_mt",
               "mpps": 4.0, "gbps": 3.1}
    DISP = {"name": "ingress_96B_1disp", "mpps": 5.0, "gbps": 3.8}

    def test_stream_rows_meeting_both_gates_pass(self):
        stream = {"name": "stream_96B_4core_4prod", "mpps": 7.0, "gbps": 5.4}
        rows = [self.BATCHED, self.DISP, stream]
        code, out = run_diff(rows, rows)
        self.assertEqual(code, 0, out)
        self.assertIn("streaming/batched", out)

    def test_stream_below_batched_ratio_fails(self):
        # 5.0 / 4.0 = 1.25x < 1.5x: the run-to-completion path no longer
        # beats the batched engine by the required margin.
        stream = {"name": "stream_96B_4core_4prod", "mpps": 5.5, "gbps": 4.2}
        rows = [self.BATCHED, self.DISP, stream]
        code, out = run_diff(rows, rows)
        self.assertEqual(code, 1, out)
        self.assertIn("stream-vs-batched ratio", out)

    def test_stream_4prod_below_1disp_fails(self):
        # Best stream row clears 1.5x batched, but the 4-producer row
        # fell below the single-dispatcher baseline.
        fast = {"name": "stream_96B_1core_1prod", "mpps": 7.0, "gbps": 5.4}
        slow = {"name": "stream_96B_4core_4prod", "mpps": 4.5, "gbps": 3.5}
        rows = [self.BATCHED, self.DISP, fast, slow]
        code, out = run_diff(rows, rows)
        self.assertEqual(code, 1, out)
        self.assertIn("stream 4prod vs 1disp", out)

    def test_runs_without_stream_rows_skip_stream_gates(self):
        # Legacy runs (no streaming bench) must not trip the new gates.
        rows = [self.BATCHED, self.DISP]
        code, out = run_diff(rows, rows)
        self.assertEqual(code, 0, out)
        self.assertNotIn("streaming/batched", out)

    # --- Telemetry-overhead within-run gate --------------------------

    TEL_OFF = {"name": "micro_telemetry_off", "ns_per_op": 100.0}

    def test_telemetry_within_two_percent_passes(self):
        on = {"name": "micro_telemetry_overhead", "ns_per_op": 101.5}
        rows = [self.TEL_OFF, on]
        code, out = run_diff(rows, rows)
        self.assertEqual(code, 0, out)
        self.assertIn("telemetry overhead", out)

    def test_telemetry_over_two_percent_fails(self):
        on = {"name": "micro_telemetry_overhead", "ns_per_op": 104.0}
        rows = [self.TEL_OFF, on]
        code, out = run_diff(rows, rows)
        self.assertEqual(code, 1, out)
        self.assertIn("telemetry overhead ratio", out)

    def test_runs_without_telemetry_rows_skip_the_gate(self):
        rows = [self.BATCHED, self.DISP]
        code, out = run_diff(rows, rows)
        self.assertEqual(code, 0, out)
        self.assertNotIn("telemetry overhead", out)

    def test_summary_stream_gap_table(self):
        stream = {"name": "stream_96B_4core_4prod", "mpps": 6.0, "gbps": 4.6}
        rows = [self.BATCHED, self.DISP, stream]
        code, out = run_diff(rows, rows, "--summary")
        self.assertEqual(code, 0, out)
        self.assertIn("streaming vs batched", out)
        self.assertIn("(1.50x)", out)


if __name__ == "__main__":
    unittest.main()
