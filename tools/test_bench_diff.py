#!/usr/bin/env python3
"""Unit checks for tools/bench_diff.py's gating behaviour.

Run directly (python3 tools/test_bench_diff.py) or via the tier-1 suite
(ctest -R bench_diff_unit).  Each case drives bench_diff.py as a
subprocess on small synthetic JSON-lines files and asserts the exit
code, the contract CI relies on:

  * unchanged rows                        -> exit 0
  * micro row grown past --micro-fail-over -> exit 1
  * baseline row missing from candidate   -> exit 1 (fail loudly, never
    skip: a silently dropped bench must not exempt itself from the gate)
  * new candidate row                     -> exit 0 (additions are fine)
  * --list with missing rows              -> exit 0 (inspection mode)
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "bench_diff.py")


def write_rows(path, rows):
    with open(path, "w") as f:
        for row in rows:
            f.write(json.dumps(row) + "\n")


def run_diff(baseline_rows, current_rows, *extra):
    with tempfile.TemporaryDirectory() as d:
        base = os.path.join(d, "base.json")
        cur = os.path.join(d, "cur.json")
        write_rows(base, baseline_rows)
        write_rows(cur, current_rows)
        proc = subprocess.run(
            [sys.executable, TOOL, base, cur, *extra],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout


MICRO_A = {"name": "micro_alpha", "ns_per_op": 10.0}
MICRO_B = {"name": "micro_beta", "ns_per_op": 20.0}
THROUGHPUT = {"name": "functional_x", "mpps": 5.0, "gbps": 3.4}


class BenchDiffGate(unittest.TestCase):
    def test_unchanged_rows_pass(self):
        code, out = run_diff([MICRO_A, THROUGHPUT], [MICRO_A, THROUGHPUT])
        self.assertEqual(code, 0, out)
        self.assertIn("no perf regressions", out)

    def test_micro_regression_fails(self):
        grown = dict(MICRO_A, ns_per_op=100.0)
        code, out = run_diff([MICRO_A], [grown])
        self.assertEqual(code, 1, out)
        self.assertIn("micro_alpha", out)

    def test_missing_baseline_row_fails(self):
        # The candidate run dropped micro_beta: must gate, not skip.
        code, out = run_diff([MICRO_A, MICRO_B], [MICRO_A])
        self.assertEqual(code, 1, out)
        self.assertIn("missing from", out)
        self.assertIn("micro_beta", out)

    def test_missing_throughput_row_fails_too(self):
        code, out = run_diff([MICRO_A, THROUGHPUT], [MICRO_A])
        self.assertEqual(code, 1, out)
        self.assertIn("functional_x", out)

    def test_new_candidate_row_passes(self):
        code, out = run_diff([MICRO_A], [MICRO_A, MICRO_B])
        self.assertEqual(code, 0, out)
        self.assertIn("[new]", out)

    def test_list_mode_never_gates(self):
        code, out = run_diff([MICRO_A, MICRO_B], [MICRO_A], "--list")
        self.assertEqual(code, 0, out)
        self.assertIn("[gone]", out)

    def test_summary_mode_never_gates(self):
        grown = dict(MICRO_A, ns_per_op=100.0)
        code, out = run_diff([MICRO_A], [grown], "--summary")
        self.assertEqual(code, 0, out)
        self.assertIn("percent change", out)
        self.assertIn("+900.0%", out)

    def test_summary_ingress_gap_table(self):
        disp = {"name": "ingress_96B_1disp", "mpps": 4.0, "gbps": 3.0}
        prod = {"name": "ingress_96B_4prod_d16", "mpps": 3.0, "gbps": 2.3}
        code, out = run_diff([disp, prod], [disp, prod], "--summary")
        self.assertEqual(code, 0, out)
        self.assertIn("ingress multi-producer gap", out)
        self.assertIn("(75.0%)", out)


if __name__ == "__main__":
    unittest.main()
