#include "runtime/loop_check.hpp"

#include <algorithm>
#include <set>

namespace menshen {

namespace {

/// DFS cycle detection over one destination's device graph.  Returns the
/// devices of a cycle, or empty.
std::vector<std::string> CycleIn(
    const std::map<std::string, std::vector<std::string>>& edges) {
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  std::vector<std::string> stack;
  std::vector<std::string> cycle;

  // Iterative DFS with an explicit stack of (node, next-child) frames.
  struct Frame {
    std::string node;
    std::size_t next = 0;
  };

  for (const auto& [start, _] : edges) {
    if (color[start] != Color::kWhite) continue;
    std::vector<Frame> frames;
    frames.push_back({start, 0});
    color[start] = Color::kGray;
    stack.push_back(start);

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto it = edges.find(f.node);
      const auto& kids =
          it == edges.end() ? std::vector<std::string>{} : it->second;
      if (f.next < kids.size()) {
        const std::string& child = kids[f.next++];
        if (color[child] == Color::kGray) {
          // Found a back edge: extract the cycle from the stack.
          auto pos = std::find(stack.begin(), stack.end(), child);
          cycle.assign(pos, stack.end());
          return cycle;
        }
        if (color[child] == Color::kWhite) {
          color[child] = Color::kGray;
          stack.push_back(child);
          frames.push_back({child, 0});
        }
      } else {
        color[f.node] = Color::kBlack;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
  return {};
}

}  // namespace

std::vector<std::string> RoutingGraph::FindCycle() const {
  // Group rules by destination: a loop only forms among rules that apply
  // to the same packets.
  std::map<u32, std::map<std::string, std::vector<std::string>>> per_dst;
  for (const auto& r : rules_)
    per_dst[r.dst_ip][r.device].push_back(r.next_device);

  for (const auto& [dst, edges] : per_dst) {
    auto cycle = CycleIn(edges);
    if (!cycle.empty()) return cycle;
  }
  return {};
}

bool RoutingGraph::IsLoopFree() const { return FindCycle().empty(); }

}  // namespace menshen
