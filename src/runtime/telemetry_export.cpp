#include "runtime/telemetry_export.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "pipeline/kernels.hpp"

namespace menshen {
namespace {

// Formats a double so it survives a text round-trip exactly (integers —
// the common case for counters — render without an exponent).
std::string FormatValue(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v >= -9.0e15 && v <= 9.0e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

std::string Idx(std::size_t i) { return std::to_string(i); }

/// Sample-list builder with a fluent label helper.
struct Builder {
  std::vector<MetricSample> out;

  void Add(std::string name,
           std::vector<std::pair<std::string, std::string>> labels,
           double value) {
    out.push_back({std::move(name), std::move(labels), value});
  }
  void Add(std::string name, double value) { Add(std::move(name), {}, value); }
};

void AddQuantiles(Builder& b, const std::string& family,
                  std::vector<std::pair<std::string, std::string>> labels,
                  const HistogramSnapshot& h) {
  auto with = [&labels](const char* q) {
    auto l = labels;
    l.emplace_back("quantile", q);
    return l;
  };
  b.Add(family + "_count", labels, static_cast<double>(h.count));
  b.Add(family + "_sum_ns", labels, static_cast<double>(h.sum));
  if (h.count == 0) return;
  b.Add(family + "_ns", with("0.5"), static_cast<double>(h.p50()));
  b.Add(family + "_ns", with("0.9"), static_cast<double>(h.p90()));
  b.Add(family + "_ns", with("0.99"), static_cast<double>(h.p99()));
  b.Add(family + "_ns", with("0.999"), static_cast<double>(h.p999()));
}

std::string RenderLabels(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return "";
  std::string s = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) s += ",";
    s += labels[i].first;
    s += "=\"";
    s += labels[i].second;
    s += "\"";
  }
  s += "}";
  return s;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::vector<MetricSample> BuildMetricSamples(const DataplaneStats& s,
                                             const TelemetrySnapshot& tel) {
  Builder b;

  // --- globals -----------------------------------------------------------
  b.Add("menshen_packets_total", static_cast<double>(s.total_packets));
  b.Add("menshen_writes_broadcast_total",
        static_cast<double>(s.writes_broadcast));
  b.Add("menshen_config_epoch", static_cast<double>(s.epoch));
  b.Add("menshen_pending_writes", static_cast<double>(s.pending_writes));
  b.Add("menshen_migrations_total", static_cast<double>(s.migrations));
  b.Add("menshen_resizes_total", static_cast<double>(s.resizes));
  b.Add("menshen_workers", static_cast<double>(s.workers));
  b.Add("menshen_shards", static_cast<double>(s.shards.size()));
  b.Add("menshen_stats_relaxed", s.relaxed ? 1.0 : 0.0);

  // --- per-shard traffic / ladder / streaming counters -------------------
  for (const ShardStats& sh : s.shards) {
    const std::vector<std::pair<std::string, std::string>> l = {
        {"shard", Idx(sh.shard)}};
    auto add = [&b, &l](const char* name, u64 v) {
      b.Add(name, l, static_cast<double>(v));
    };
    add("menshen_shard_batches_total", sh.batches);
    add("menshen_shard_packets_total", sh.packets);
    add("menshen_shard_forwarded_total", sh.forwarded);
    add("menshen_shard_dropped_total", sh.dropped);
    add("menshen_shard_filtered_total", sh.filtered);
    add("menshen_shard_queue_depth", sh.queue_depth);
    add("menshen_shard_busy_ns_total", sh.busy_ns);
    add("menshen_flow_cache_hits_total", sh.flow_cache_hits);
    add("menshen_flow_cache_misses_total", sh.flow_cache_misses);
    add("menshen_flow_cache_evictions_total", sh.flow_cache_evictions);
    add("menshen_flow_cache_occupancy", sh.flow_cache_occupancy);
    add("menshen_kernel_pkts_total", sh.kernel_pkts);
    add("menshen_kernel_fallback_pkts_total", sh.kernel_fallback_pkts);
    add("menshen_kernel_record_fills_total", sh.kernel_record_fills);
    add("menshen_stream_bursts_total", sh.stream_bursts);
    add("menshen_stream_pkts_total", sh.stream_pkts);
    add("menshen_egress_pkts_total", sh.egress_pkts);
    add("menshen_egress_depth", sh.egress_depth);
    add("menshen_producer_stalls_total", sh.producer_stalls);
    add("menshen_steals_total", sh.steals);
  }

  // --- per-shard telemetry: latency, tiers, traces ------------------------
  for (std::size_t i = 0; i < tel.shards.size(); ++i) {
    const ShardTelemetry& st = tel.shards[i];
    AddQuantiles(b, "menshen_latency",
                 {{"shard", Idx(i)}, {"path", "batched"}}, st.batched);
    AddQuantiles(b, "menshen_latency", {{"shard", Idx(i)}, {"path", "stream"}},
                 st.stream);
    for (std::size_t t = 1; t < st.tier_pkts.size(); ++t) {
      if (st.tier_pkts[t] == 0) continue;
      b.Add("menshen_exec_tier_pkts_total",
            {{"shard", Idx(i)}, {"tier", ExecTierName(static_cast<u8>(t))}},
            static_cast<double>(st.tier_pkts[t]));
    }
    if (st.trace_samples != 0)
      b.Add("menshen_trace_samples_total", {{"shard", Idx(i)}},
            static_cast<double>(st.trace_samples));
    if (st.trace_drops != 0)
      b.Add("menshen_trace_dropped_total", {{"shard", Idx(i)}},
            static_cast<double>(st.trace_drops));
  }
  AddQuantiles(b, "menshen_latency", {{"path", "batched_all"}},
               tel.batched_total);
  AddQuantiles(b, "menshen_latency", {{"path", "stream_all"}},
               tel.stream_total);

  // --- per-tenant --------------------------------------------------------
  for (const TenantStats& t : s.tenants) {
    const std::vector<std::pair<std::string, std::string>> l = {
        {"tenant", Idx(t.tenant.value())}};
    b.Add("menshen_tenant_forwarded_total", l,
          static_cast<double>(t.forwarded));
    b.Add("menshen_tenant_dropped_total", l, static_cast<double>(t.dropped));
    b.Add("menshen_tenant_shard", l, static_cast<double>(t.shard));
    if (t.p99_ns != 0)
      b.Add("menshen_tenant_p99_ns", l, static_cast<double>(t.p99_ns));
  }
  for (const TenantLatency& t : tel.tenants) {
    AddQuantiles(b, "menshen_tenant_latency",
                 {{"tenant", Idx(t.tenant)}}, t.hist);
  }

  // --- kernel shapes and match stages -------------------------------------
  for (std::size_t id = 0; id < s.kernel_shape_pkts.size(); ++id) {
    if (s.kernel_shape_pkts[id] == 0) continue;
    b.Add("menshen_kernel_shape_pkts_total",
          {{"shape", KernelShapeName(static_cast<u8>(id))}},
          static_cast<double>(s.kernel_shape_pkts[id]));
  }
  for (const StageMatchStats& ms : s.match_stages) {
    const std::vector<std::pair<std::string, std::string>> l = {
        {"stage", Idx(ms.stage)}};
    b.Add("menshen_stage_cam_lookups_total", l,
          static_cast<double>(ms.cam_lookups));
    b.Add("menshen_stage_cam_hits_total", l, static_cast<double>(ms.cam_hits));
    b.Add("menshen_stage_tcam_lookups_total", l,
          static_cast<double>(ms.tcam_lookups));
    b.Add("menshen_stage_tcam_hits_total", l,
          static_cast<double>(ms.tcam_hits));
  }

  return b.out;
}

std::string RenderPrometheus(const DataplaneStats& s,
                             const TelemetrySnapshot& tel) {
  const std::vector<MetricSample> samples = BuildMetricSamples(s, tel);
  std::string out;
  out.reserve(samples.size() * 48);
  std::string last_family;
  for (const MetricSample& m : samples) {
    if (m.name != last_family) {
      out += "# TYPE ";
      out += m.name;
      // Quantile/depth/occupancy samples are point-in-time gauges; the
      // rest are monotonic counters.  The distinction is cosmetic for
      // our parser but keeps real scrapers happy.
      out += m.name.ends_with("_total") ? " counter\n" : " gauge\n";
      last_family = m.name;
    }
    out += m.name;
    out += RenderLabels(m.labels);
    out += " ";
    out += FormatValue(m.value);
    out += "\n";
  }
  return out;
}

std::string RenderJson(const DataplaneStats& s, const TelemetrySnapshot& tel) {
  const std::vector<MetricSample> samples = BuildMetricSamples(s, tel);
  std::string out = "{\"metrics\":[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& m = samples[i];
    if (i != 0) out += ",";
    out += "\n  {\"name\":\"";
    out += JsonEscape(m.name);
    out += "\",\"labels\":{";
    for (std::size_t j = 0; j < m.labels.size(); ++j) {
      if (j != 0) out += ",";
      out += "\"";
      out += JsonEscape(m.labels[j].first);
      out += "\":\"";
      out += JsonEscape(m.labels[j].second);
      out += "\"";
    }
    out += "},\"value\":";
    out += FormatValue(m.value);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::vector<MetricSample> ParsePrometheus(const std::string& text) {
  std::vector<MetricSample> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;

    MetricSample m;
    std::size_t i = line.find_first_of("{ ");
    if (i == std::string::npos) continue;
    m.name = line.substr(0, i);
    if (line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string::npos) continue;
      std::size_t p = i + 1;
      while (p < close) {
        const std::size_t eq = line.find('=', p);
        if (eq == std::string::npos || eq > close) break;
        const std::string key = line.substr(p, eq - p);
        if (eq + 1 >= close || line[eq + 1] != '"') break;
        const std::size_t endq = line.find('"', eq + 2);
        if (endq == std::string::npos || endq > close) break;
        m.labels.emplace_back(key, line.substr(eq + 2, endq - (eq + 2)));
        p = endq + 1;
        if (p < close && line[p] == ',') ++p;
      }
      i = close + 1;
    }
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) continue;
    m.value = std::strtod(line.c_str() + i, nullptr);
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace menshen
