#include "runtime/module_manager.hpp"

#include "pipeline/tcam.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace menshen {

namespace {

bool RangesOverlap(std::size_t a_base, std::size_t a_count, std::size_t b_base,
                   std::size_t b_count) {
  if (a_count == 0 || b_count == 0) return false;
  return a_base < b_base + b_count && b_base < a_base + a_count;
}

}  // namespace

AdmissionResult ModuleManager::CheckAdmission(
    const ModuleAllocation& alloc) const {
  if (alloc.id.value() >= params::kOverlayTableDepth)
    return {false, "module ID " + std::to_string(alloc.id.value()) +
                       " exceeds the overlay table depth (32); it would "
                       "alias another module's configuration rows"};
  if (loaded_.contains(alloc.id))
    return {false, "module ID already loaded"};

  for (const auto& sa : alloc.stages) {
    if (sa.stage >= pipeline_->num_stages())
      return {false, "allocation names stage " + std::to_string(sa.stage) +
                         " but the pipeline has " +
                         std::to_string(pipeline_->num_stages())};
    if (sa.cam_base + sa.cam_count > pipeline_->stage(sa.stage).cam().depth())
      return {false, "CAM block exceeds the table depth in stage " +
                         std::to_string(sa.stage)};
    if (static_cast<std::size_t>(sa.seg_offset) + sa.seg_range >
        pipeline_->stage(sa.stage).stateful().size())
      return {false, "stateful segment exceeds the memory in stage " +
                         std::to_string(sa.stage)};
  }

  for (const auto& [other_id, other] : loaded_) {
    for (const auto& sa : alloc.stages) {
      const StageAllocation* ob = other.ForStage(sa.stage);
      if (ob == nullptr) continue;
      if (RangesOverlap(sa.cam_base, sa.cam_count, ob->cam_base,
                        ob->cam_count))
        return {false,
                "CAM block overlaps module " +
                    std::to_string(other_id.value()) + " in stage " +
                    std::to_string(sa.stage)};
      if (RangesOverlap(sa.seg_offset, sa.seg_range, ob->seg_offset,
                        ob->seg_range))
        return {false,
                "stateful segment overlaps module " +
                    std::to_string(other_id.value()) + " in stage " +
                    std::to_string(sa.stage)};
    }
  }
  return {true, ""};
}

ModuleManager::LoadResult ModuleManager::Load(const CompiledModule& module,
                                              const ModuleAllocation& alloc) {
  if (!module.ok())
    throw std::invalid_argument("refusing to load a module with errors:\n" +
                                module.diags().ToString());
  if (module.id() != alloc.id)
    throw std::invalid_argument("module/allocation ID mismatch");

  LoadResult result;
  result.admission = CheckAdmission(alloc);
  if (!result.admission.admitted) return result;

  result.report = interface_.LoadModule(module.id(), module.AllWrites());
  loaded_.emplace(alloc.id, alloc);
  return result;
}

std::optional<ConfigReport> ModuleManager::Update(
    const CompiledModule& module) {
  if (!module.ok())
    throw std::invalid_argument("refusing to load a module with errors:\n" +
                                module.diags().ToString());
  if (!loaded_.contains(module.id())) return std::nullopt;
  return interface_.LoadModule(module.id(), module.AllWrites());
}

bool ModuleManager::Unload(ModuleId id) {
  const auto it = loaded_.find(id);
  if (it == loaded_.end()) return false;
  const ModuleAllocation& alloc = it->second;

  // Build scrub writes: invalid CAM entries + zero VLIW words over the
  // module's block, zero overlay rows, and zero the stateful segment.
  std::vector<ConfigWrite> scrub;
  const u8 row = static_cast<u8>(id.value());
  scrub.push_back(ConfigWrite{ResourceKind::kParserTable, 0, row,
                              ParserEntry{}.Encode()});
  scrub.push_back(ConfigWrite{ResourceKind::kDeparserTable, 0, row,
                              DeparserEntry{}.Encode()});
  for (const auto& sa : alloc.stages) {
    scrub.push_back(ConfigWrite{ResourceKind::kKeyExtractor, sa.stage, row,
                                KeyExtractorEntry{}.Encode()});
    scrub.push_back(ConfigWrite{ResourceKind::kKeyMask, sa.stage, row,
                                KeyMaskEntry{}.Encode()});
    scrub.push_back(ConfigWrite{ResourceKind::kSegmentTable, sa.stage, row,
                                SegmentEntry{0, 0}.Encode()});
    for (std::size_t i = 0; i < sa.cam_count; ++i) {
      const u8 index = static_cast<u8>((sa.cam_base + i) % 256);
      scrub.push_back(ConfigWrite{ResourceKind::kCamEntry, sa.stage, index,
                                  CamEntry{}.Encode()});
      // The same address block may have been used as a ternary table
      // (the key-extractor kind bit decides); scrub both CAMs so nothing
      // leaks to the next tenant assigned these rows.
      scrub.push_back(ConfigWrite{ResourceKind::kTcamEntry, sa.stage, index,
                                  TcamEntry{}.Encode()});
      scrub.push_back(ConfigWrite{ResourceKind::kVliwAction, sa.stage, index,
                                  VliwEntry{}.Encode()});
    }
  }
  interface_.LoadModule(id, scrub);

  // Stateful memory is scrubbed directly by the control plane (it is not
  // packet-addressable once the segment range is zero).
  for (const auto& sa : alloc.stages)
    pipeline_->stage(sa.stage).stateful().ZeroRange(sa.seg_offset,
                                                    sa.seg_range);

  loaded_.erase(it);
  return true;
}

const ModuleAllocation* ModuleManager::AllocationOf(ModuleId id) const {
  const auto it = loaded_.find(id);
  return it == loaded_.end() ? nullptr : &it->second;
}

std::size_t ModuleManager::MaxAdditionalModules(
    std::size_t cam_per_stage) const {
  // Overlay rows bound the module count at 32; the CAM is usually the
  // tighter constraint (section 5.2: 16 entries/stage => at most 16
  // modules wanting one entry per stage).
  std::size_t overlay_free = params::kOverlayTableDepth - loaded_.size();
  if (cam_per_stage == 0) return overlay_free;

  std::size_t cam_bound = std::numeric_limits<std::size_t>::max();
  for (std::size_t s = 0; s < pipeline_->num_stages(); ++s) {
    std::size_t used = 0;
    for (const auto& [id, alloc] : loaded_) {
      const StageAllocation* sa = alloc.ForStage(static_cast<u8>(s));
      if (sa != nullptr) used += sa->cam_count;
    }
    const std::size_t free = pipeline_->stage(s).cam().depth() - used;
    cam_bound = std::min(cam_bound, free / cam_per_stage);
  }
  return std::min(overlay_free, cam_bound);
}

}  // namespace menshen
