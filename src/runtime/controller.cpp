#include "runtime/controller.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace menshen {

Controller::Controller(Dataplane& dp, ControllerConfig cfg)
    : dp_(dp), cfg_(cfg), rebalancer_(cfg.rebalancer) {
  // The first tick's delta should be "traffic since the controller
  // started", not "since the dataplane was born".
  last_total_packets_ = dp_.total_packets_relaxed();
}

Controller::~Controller() { Stop(); }

void Controller::Start() {
  // lifecycle_mutex_ serializes Start/Stop so thread_ is never assigned
  // while another thread joins it.
  std::lock_guard<std::mutex> lk(lifecycle_mutex_);
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  thread_ = std::thread([this] { RunLoop(); });
}

void Controller::Stop() {
  std::lock_guard<std::mutex> lk(lifecycle_mutex_);
  running_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> stop_lk(stop_mutex_);
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Controller::RunLoop() {
  while (running_.load(std::memory_order_acquire)) {
    TickOnce();
    std::unique_lock<std::mutex> lk(stop_mutex_);
    stop_cv_.wait_for(lk, cfg_.tick_interval, [this] {
      return !running_.load(std::memory_order_acquire);
    });
  }
}

double Controller::load_ewma() const {
  std::lock_guard<std::mutex> lk(tick_mutex_);
  return load_ewma_;
}

Controller::TickReport Controller::TickOnce() {
  std::lock_guard<std::mutex> lk(tick_mutex_);
  TickReport report;
  report.tick = ticks_.fetch_add(1, std::memory_order_acq_rel) + 1;

  // 1. Observe offered load through the relaxed stats path — no quiesce,
  //    ingress never stalls for the tick.
  const u64 total = dp_.total_packets_relaxed();
  report.offered_packets = total - std::min(total, last_total_packets_);
  last_total_packets_ = total;
  const double delta = static_cast<double>(report.offered_packets);
  // EWMA with the same seeding rule as the rebalancer: the first
  // observation is taken at face value.
  load_ewma_ = report.tick == 1
                   ? delta
                   : 0.5 * delta + 0.5 * load_ewma_;
  report.load_ewma = load_ewma_;

  // 2. Scale the replica set so num_shards tracks offered load, with a
  //    watermark band + cooldown so the count never flaps.
  report.shards_before = dp_.num_shards();
  report.shards_after = report.shards_before;
  if (cooldown_ > 0) --cooldown_;
  if (cfg_.enable_scaling && cooldown_ == 0) {
    const std::size_t hw = std::max<std::size_t>(
        1, std::thread::hardware_concurrency());
    const std::size_t max_shards =
        cfg_.max_shards == 0 ? hw : cfg_.max_shards;
    const std::size_t min_shards = std::max<std::size_t>(1, cfg_.min_shards);
    const std::size_t cur = report.shards_before;
    const double target = cfg_.target_packets_per_shard;
    std::size_t desired = cur;
    if (load_ewma_ >
        target * static_cast<double>(cur) * cfg_.scale_up_factor) {
      desired = static_cast<std::size_t>(std::ceil(load_ewma_ / target));
    } else if (cur > 1 &&
               load_ewma_ < target * static_cast<double>(cur - 1) *
                                cfg_.scale_down_factor) {
      desired = static_cast<std::size_t>(
          std::max(1.0, std::ceil(load_ewma_ / target)));
    }
    desired = std::clamp(desired, min_shards, max_shards);
    if (desired != cur) {
      dp_.ResizeShards(desired);  // quiesced, epoch-boundary resize
      report.shards_after = desired;
      if (desired > cur) {
        scale_ups_.fetch_add(1, std::memory_order_acq_rel);
      } else {
        scale_downs_.fetch_add(1, std::memory_order_acq_rel);
      }
      cooldown_ = cfg_.scale_cooldown_ticks;
    }
  }

  // 3. Per-shard utilisation observation (queue depth + busy time since
  //    the previous tick), through the relaxed counters — the operator's
  //    tick log line, and the skew signal the rebalancing round below
  //    keys its aggressiveness off.
  const std::vector<Dataplane::ShardCounters> shard_counters =
      dp_.CountersSnapshotRelaxed();
  last_busy_ns_.resize(shard_counters.size(), 0);
  report.shard_loads.reserve(shard_counters.size());
  u64 stalls_total = 0;
  u64 busy_max = 0;
  u64 busy_sum = 0;
  for (std::size_t s = 0; s < shard_counters.size(); ++s) {
    const u64 busy = shard_counters[s].busy_ns;
    const u64 delta = busy - std::min(busy, last_busy_ns_[s]);
    last_busy_ns_[s] = busy;
    stalls_total += shard_counters[s].producer_stalls;
    busy_max = std::max(busy_max, delta);
    busy_sum += delta;
    report.shard_loads.push_back(ShardLoad{
        s, shard_counters[s].queue_depth, delta,
        shard_counters[s].flow_cache_hits, shard_counters[s].flow_cache_misses,
        shard_counters[s].flow_cache_occupancy, shard_counters[s].kernel_pkts,
        shard_counters[s].kernel_fallback_pkts, shard_counters[s].stream_pkts,
        shard_counters[s].producer_stalls, shard_counters[s].steals});
  }
  // Skew = max/mean of the per-shard busy-time deltas: 1.0 when the work
  // is spread evenly, num_shards when one shard does everything.
  if (busy_sum != 0 && !shard_counters.empty()) {
    const double mean = static_cast<double>(busy_sum) /
                        static_cast<double>(shard_counters.size());
    report.shard_skew = static_cast<double>(busy_max) / mean;
  }

  // 4. One rebalancing round (EWMA + hysteresis inside the policy),
  //    keyed off the skew just observed: a hot shard raises the round's
  //    move budget and suspends the dead band (see RebalancerConfig).  A
  //    round that plans nothing does not quiesce anything.
  if (cfg_.enable_rebalancing) {
    report.moves = rebalancer_.Rebalance(dp_, report.shard_skew).size();
    if (report.moves != 0)
      moves_applied_.fetch_add(report.moves, std::memory_order_acq_rel);
  }

  // 5. Adaptive ingress queue depth: widen when producers stalled this
  //    tick, narrow after a run of stall-free ticks.  Both moves go
  //    through the quiesced SetIngressQueueDepth, so they land at epoch
  //    boundaries like every other reconfiguration.
  report.producer_stalls = stalls_total - std::min(stalls_total,
                                                   last_producer_stalls_);
  last_producer_stalls_ = stalls_total;
  report.queue_depth = dp_.ingress_queue_depth();
  if (cfg_.enable_adaptive_queue_depth) {
    const std::size_t cur = report.queue_depth;
    if (report.producer_stalls >= cfg_.queue_widen_stalls) {
      idle_depth_ticks_ = 0;
      if (cur < cfg_.max_queue_depth) {
        dp_.SetIngressQueueDepth(std::min(cur * 2, cfg_.max_queue_depth));
        depth_widens_.fetch_add(1, std::memory_order_acq_rel);
        report.queue_depth = dp_.ingress_queue_depth();
      }
    } else if (report.producer_stalls == 0) {
      if (++idle_depth_ticks_ >= cfg_.queue_narrow_idle_ticks) {
        idle_depth_ticks_ = 0;
        if (cur > cfg_.min_queue_depth) {
          dp_.SetIngressQueueDepth(
              std::max(cur / 2, cfg_.min_queue_depth));
          depth_narrows_.fetch_add(1, std::memory_order_acq_rel);
          report.queue_depth = dp_.ingress_queue_depth();
        }
      }
    } else {
      idle_depth_ticks_ = 0;
    }
  }
  // 6. Per-tenant p99 latency from the telemetry histograms — a relaxed
  //    read of the histogram buckets, never a quiesce.  Only tenants
  //    with samples appear, so the vector stays empty when histograms
  //    are disabled.
  if (dp_.telemetry().histograms_enabled()) {
    const TelemetrySnapshot tel = dp_.telemetry().Snapshot();
    report.tenant_p99.reserve(tel.tenants.size());
    for (const TenantLatency& t : tel.tenants) {
      if (t.hist.count == 0) continue;
      report.tenant_p99.push_back(TenantP99{t.tenant, t.hist.p99()});
    }
  }

  if (cfg_.log_sink) {
    std::string line = "tick " + std::to_string(report.tick) + ": offered " +
                       std::to_string(report.offered_packets) + ", shards " +
                       std::to_string(report.shards_after);
    if (report.shard_skew != 0) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.2f", report.shard_skew);
      line += ", skew " + std::string(buf);
    }
    if (report.moves != 0) line += ", moves " + std::to_string(report.moves);
    for (const ShardLoad& sl : report.shard_loads) {
      line += " | s" + std::to_string(sl.shard) + " q=" +
              std::to_string(sl.queue_depth) + " busy=" +
              std::to_string(sl.busy_ns_delta / 1000) + "us";
      if (sl.flow_cache_hits + sl.flow_cache_misses != 0)
        line += " fc=" + std::to_string(sl.flow_cache_hits) + "/" +
                std::to_string(sl.flow_cache_hits + sl.flow_cache_misses);
      if (sl.kernel_pkts + sl.kernel_fallback_pkts != 0)
        line += " kr=" + std::to_string(sl.kernel_pkts) + "/" +
                std::to_string(sl.kernel_pkts + sl.kernel_fallback_pkts);
      if (sl.stream_pkts != 0)
        line += " st=" + std::to_string(sl.stream_pkts);
      if (sl.steals != 0) line += " steal=" + std::to_string(sl.steals);
    }
    if (report.producer_stalls != 0)
      line += " | stalls " + std::to_string(report.producer_stalls) +
              ", depth " + std::to_string(report.queue_depth);
    for (const TenantP99& t : report.tenant_p99)
      line += " | t" + std::to_string(t.tenant) + " p99=" +
              std::to_string(t.p99_ns) + "ns";
    cfg_.log_sink(line);
  }
  return report;
}

}  // namespace menshen
