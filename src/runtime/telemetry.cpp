#include "runtime/telemetry.hpp"

#include <algorithm>
#include <chrono>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define MENSHEN_HAS_TSC 1
#else
#define MENSHEN_HAS_TSC 0
#endif

namespace menshen {

// ---------------------------------------------------------------------------
// TscClock

namespace {

#if MENSHEN_HAS_TSC
double CalibrateNsPerTick() {
  // Spin ~2 ms against steady_clock.  Long enough that clock-read
  // overhead vanishes, short enough to be unnoticeable at startup.
  const auto t0 = std::chrono::steady_clock::now();
  const u64 c0 = __rdtsc();
  for (;;) {
    const auto t1 = std::chrono::steady_clock::now();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        t1 - t0)
                        .count();
    if (ns >= 2'000'000) {
      const u64 c1 = __rdtsc();
      if (c1 <= c0) return 1.0;  // TSC not usable; degrade gracefully
      return static_cast<double>(ns) / static_cast<double>(c1 - c0);
    }
  }
}
#endif

}  // namespace

double TscClock::NsPerTick() {
#if MENSHEN_HAS_TSC
  static const double ratio = CalibrateNsPerTick();
  return ratio;
#else
  return 1.0;
#endif
}

u64 TscClock::Now() {
#if MENSHEN_HAS_TSC
  return __rdtsc();
#else
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

u64 TscClock::ToNs(u64 ticks) {
#if MENSHEN_HAS_TSC
  return static_cast<u64>(static_cast<double>(ticks) * NsPerTick());
#else
  return ticks;
#endif
}

// ---------------------------------------------------------------------------
// HistogramSnapshot

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (u32 i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
}

u64 HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, ceil — the classic
  // nearest-rank definition, so p100 lands on the max bucket).
  u64 rank = static_cast<u64>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  u64 seen = 0;
  for (u32 i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      const u64 lo = LatencyHistogram::BucketLowerBound(i);
      if (i < 16) return lo;  // exact buckets
      const u64 hi = LatencyHistogram::BucketUpperBound(i);
      return lo + (hi - lo) / 2;  // midpoint of the log bucket
    }
  }
  return LatencyHistogram::BucketLowerBound(kBuckets - 1);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot out;
  for (u32 i = 0; i < kBuckets; ++i) {
    const u64 b = buckets_[i].load();
    out.buckets[i] = b;
    out.count += b;
  }
  out.sum = sum_.load();
  return out;
}

// ---------------------------------------------------------------------------
// TraceRing

namespace {

u32 RoundUpPow2(u32 v) {
  if (v < 2) return 2;
  u32 p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

TraceRing::TraceRing(u32 capacity)
    : cap_(RoundUpPow2(capacity)),
      mask_(cap_ - 1),
      buf_(std::make_unique<TraceRecord[]>(cap_)) {}

bool TraceRing::Push(const TraceRecord& rec) {
  const u64 head = head_.load(std::memory_order_relaxed);
  const u64 tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= cap_) return false;  // full: drop, never block
  buf_[head & mask_] = rec;
  head_.store(head + 1, std::memory_order_release);
  return true;
}

std::vector<TraceRecord> TraceRing::Drain() {
  const u64 head = head_.load(std::memory_order_acquire);
  u64 tail = tail_.load(std::memory_order_relaxed);
  std::vector<TraceRecord> out;
  out.reserve(static_cast<std::size_t>(head - tail));
  while (tail != head) {
    out.push_back(buf_[tail & mask_]);
    ++tail;
  }
  tail_.store(tail, std::memory_order_release);
  return out;
}

// ---------------------------------------------------------------------------
// Telemetry

Telemetry::Slot::Slot(u32 ring_capacity)
    : tenants(static_cast<std::size_t>(ModuleId::kMax) + 1),
      ring(ring_capacity) {}

Telemetry::Slot::~Slot() {
  for (auto& t : tenants) delete t.load(std::memory_order_relaxed);
}

Telemetry::Telemetry(TelemetryConfig cfg) : cfg_(cfg), slots_(kMaxShards) {
  // Calibrate the TSC ratio now, off the packet path, so the first
  // ToNs conversion in a worker never pays the 2 ms spin.
  TscClock::Calibrate();
}

Telemetry::~Telemetry() {
  for (auto& s : slots_) delete s.load(std::memory_order_relaxed);
}

void Telemetry::EnsureShards(std::size_t n) {
  if (n > kMaxShards) n = kMaxShards;
  const std::size_t cur = shard_count_.load(std::memory_order_acquire);
  for (std::size_t i = cur; i < n; ++i) {
    if (slots_[i].load(std::memory_order_acquire) == nullptr) {
      slots_[i].store(new Slot(cfg_.trace_ring_capacity),
                      std::memory_order_release);
    }
  }
  if (n > cur) shard_count_.store(n, std::memory_order_release);
}

LatencyHistogram* Telemetry::TenantHist(Slot& s, u16 vid) {
  if (vid >= s.tenants.size()) return nullptr;
  LatencyHistogram* h = s.tenants[vid].load(std::memory_order_acquire);
  if (h != nullptr) return h;
  auto fresh = std::make_unique<LatencyHistogram>();
  LatencyHistogram* expected = nullptr;
  if (s.tenants[vid].compare_exchange_strong(expected, fresh.get(),
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
    return fresh.release();
  }
  return expected;  // another recorder won the install race
}

void Telemetry::RecordBatched(std::size_t shard, u16 vid, u64 ns, u64 n) {
  if (shard >= kMaxShards) return;
  Slot* s = slot(shard);
  if (s == nullptr) return;
  s->batched.RecordN(ns, n);
  if (LatencyHistogram* h = TenantHist(*s, vid)) h->RecordN(ns, n);
}

void Telemetry::RecordStream(std::size_t shard, u16 vid, u64 ns, u64 n) {
  if (shard >= kMaxShards) return;
  Slot* s = slot(shard);
  if (s == nullptr) return;
  s->stream.RecordN(ns, n);
  if (LatencyHistogram* h = TenantHist(*s, vid)) h->RecordN(ns, n);
}

void Telemetry::CountTier(std::size_t shard, u8 tier, u64 n) {
  if (shard >= kMaxShards || tier >= kExecTierCount) return;
  Slot* s = slot(shard);
  if (s == nullptr) return;
  s->tier_pkts[tier].Add(n);
}

bool Telemetry::SampleTick(std::size_t shard) {
  if (shard >= kMaxShards) return false;
  Slot* s = slot(shard);
  if (s == nullptr) return false;
  // Single producer per shard (the executor); atomics only so TSAN
  // sees clean ordering across worker start/stop hand-offs.
  u64 c = s->sample_countdown.load(std::memory_order_relaxed) + 1;
  if (c >= cfg_.trace_sample_every) {
    s->sample_countdown.store(0, std::memory_order_relaxed);
    return true;
  }
  s->sample_countdown.store(c, std::memory_order_relaxed);
  return false;
}

void Telemetry::Trace(std::size_t shard, const TraceRecord& rec) {
  if (shard >= kMaxShards) return;
  Slot* s = slot(shard);
  if (s == nullptr) return;
  if (s->ring.Push(rec)) {
    s->trace_samples.Add();
  } else {
    s->trace_drops.Add();
  }
}

u64 Telemetry::TenantP99(u16 vid) const { return TenantSnapshot(vid).p99(); }

HistogramSnapshot Telemetry::TenantSnapshot(u16 vid) const {
  HistogramSnapshot merged;
  const std::size_t n = num_shards();
  for (std::size_t i = 0; i < n; ++i) {
    Slot* s = slot(i);
    if (s == nullptr || vid >= s->tenants.size()) continue;
    LatencyHistogram* h = s->tenants[vid].load(std::memory_order_acquire);
    if (h != nullptr) merged.Merge(h->Snapshot());
  }
  return merged;
}

TelemetrySnapshot Telemetry::Snapshot() const {
  TelemetrySnapshot out;
  const std::size_t n = num_shards();
  out.shards.reserve(n);
  std::vector<HistogramSnapshot> tenant_merged(
      static_cast<std::size_t>(ModuleId::kMax) + 1);
  std::vector<bool> tenant_seen(tenant_merged.size(), false);
  for (std::size_t i = 0; i < n; ++i) {
    ShardTelemetry st;
    Slot* s = slot(i);
    if (s != nullptr) {
      st.batched = s->batched.Snapshot();
      st.stream = s->stream.Snapshot();
      for (int t = 0; t < kExecTierCount; ++t)
        st.tier_pkts[static_cast<std::size_t>(t)] =
            s->tier_pkts[static_cast<std::size_t>(t)].load();
      st.trace_samples = s->trace_samples.load();
      st.trace_drops = s->trace_drops.load();
      for (std::size_t vid = 0; vid < s->tenants.size(); ++vid) {
        LatencyHistogram* h = s->tenants[vid].load(std::memory_order_acquire);
        if (h == nullptr) continue;
        tenant_merged[vid].Merge(h->Snapshot());
        tenant_seen[vid] = true;
      }
    }
    out.batched_total.Merge(st.batched);
    out.stream_total.Merge(st.stream);
    out.shards.push_back(std::move(st));
  }
  for (std::size_t vid = 0; vid < tenant_merged.size(); ++vid) {
    if (!tenant_seen[vid]) continue;
    out.tenants.push_back(TenantLatency{static_cast<u16>(vid),
                                        std::move(tenant_merged[vid])});
  }
  return out;
}

std::vector<TraceRecord> Telemetry::DrainTraces(std::size_t shard) {
  if (shard >= kMaxShards) return {};
  Slot* s = slot(shard);
  if (s == nullptr) return {};
  return s->ring.Drain();
}

}  // namespace menshen
