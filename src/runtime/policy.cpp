#include "runtime/policy.hpp"

#include <algorithm>
#include <numeric>

namespace menshen {

double DominantShare(const ResourceDemand& d, const ResourcePool& pool) {
  // Stages are shared (every module may place a table in every tenant
  // stage), so only the divisible resources — match entries and stateful
  // words — participate in the dominant share.  Stage feasibility is a
  // hard constraint checked by the packer.
  double share = 0.0;
  const double cam_total =
      static_cast<double>(pool.cam_per_stage) *
      static_cast<double>(pool.stages);
  if (cam_total > 0)
    share = std::max(share,
                     static_cast<double>(d.match_entries) / cam_total);
  const double state_total =
      static_cast<double>(pool.state_per_stage) *
      static_cast<double>(pool.stages);
  if (state_total > 0)
    share =
        std::max(share, static_cast<double>(d.state_words) / state_total);
  return share;
}

namespace {

/// Greedy packer shared by both policies: walks requests in `order` and
/// carves contiguous CAM/segment blocks in every tenant stage.
PolicyResult Pack(const std::vector<PolicyRequest>& reqs,
                  const std::vector<std::size_t>& order,
                  const ResourcePool& pool) {
  PolicyResult result;
  result.allocations.resize(reqs.size());

  // Free cursors per stage.
  std::vector<std::size_t> cam_cursor(pool.stages, 0);
  std::vector<std::size_t> seg_cursor(pool.stages, 0);

  for (const std::size_t i : order) {
    const PolicyRequest& r = reqs[i];
    const std::size_t stages_needed = std::max<std::size_t>(r.demand.stages, 1);
    if (stages_needed > pool.stages) {
      result.rejected.push_back(i);
      continue;
    }
    // Per-stage demand: entries and state are split evenly over the
    // module's tables in program order; we allocate the worst case
    // (full demand in each used stage) to keep the policy simple and
    // safely conservative.
    const std::size_t cam_need =
        (r.demand.match_entries + stages_needed - 1) / stages_needed;
    const std::size_t state_need = r.demand.state_words;

    bool fits = true;
    for (std::size_t s = 0; s < stages_needed; ++s) {
      if (cam_cursor[s] + cam_need > pool.cam_per_stage) fits = false;
      if (seg_cursor[s] + state_need > pool.state_per_stage) fits = false;
      if (seg_cursor[s] + state_need > 255) fits = false;  // u8 segment field
    }
    if (!fits) {
      result.rejected.push_back(i);
      continue;
    }

    ModuleAllocation alloc;
    alloc.id = r.id;
    for (std::size_t s = 0; s < stages_needed; ++s) {
      StageAllocation sa;
      sa.stage = static_cast<u8>(pool.first_stage + s);
      sa.cam_base = cam_cursor[s];
      sa.cam_count = cam_need;
      sa.seg_offset = static_cast<u8>(seg_cursor[s]);
      sa.seg_range = static_cast<u8>(state_need);
      cam_cursor[s] += cam_need;
      seg_cursor[s] += state_need;
      alloc.stages.push_back(sa);
    }
    result.allocations[i] = std::move(alloc);
  }

  std::sort(result.rejected.begin(), result.rejected.end());
  return result;
}

}  // namespace

PolicyResult DrfAllocate(const std::vector<PolicyRequest>& reqs,
                         const ResourcePool& pool) {
  std::vector<std::size_t> order(reqs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return DominantShare(reqs[a].demand, pool) <
           DominantShare(reqs[b].demand, pool);
  });
  return Pack(reqs, order, pool);
}

PolicyResult UtilityAllocate(const std::vector<PolicyRequest>& reqs,
                             const ResourcePool& pool) {
  std::vector<std::size_t> order(reqs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    const double da = std::max(DominantShare(reqs[a].demand, pool), 1e-9);
    const double db = std::max(DominantShare(reqs[b].demand, pool), 1e-9);
    return reqs[a].weight / da > reqs[b].weight / db;
  });
  return Pack(reqs, order, pool);
}

}  // namespace menshen
