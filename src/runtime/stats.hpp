// Control-plane statistics and configuration introspection.
//
// The software-to-hardware interface supports "gathering statistics"
// (Figure 6); this module is that read side: per-module counters
// aggregated across the pipeline, plus a human-readable dump of the
// configuration state a module owns — what an operator's `show module`
// command would print.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "compiler/allocation.hpp"
#include "dataplane/dataplane.hpp"
#include "pipeline/pipeline.hpp"

namespace menshen {

struct ModuleStats {
  ModuleId module;
  u64 forwarded = 0;
  u64 dropped = 0;
  /// Valid exact-match entries the module owns, per stage.
  std::vector<std::size_t> cam_entries;
  /// Stateful segment words allotted, per stage (from the segment table).
  std::vector<std::size_t> segment_words;
  /// Out-of-range stateful accesses the hardware squashed, summed over
  /// stages — a nonzero value means the module (or traffic spoofing its
  /// VID) probed beyond its segment.
  u64 stateful_violations = 0;
};

/// Aggregates hardware counters for one module.
[[nodiscard]] ModuleStats CollectModuleStats(const Pipeline& pipeline,
                                             ModuleId module);

/// Renders the configuration a module currently owns: overlay rows
/// (parser/deparser action counts, key extractor kind, mask popcount,
/// segment), and match-entry occupancy per stage.
[[nodiscard]] std::string DumpModuleConfig(const Pipeline& pipeline,
                                           ModuleId module);

/// Renders pipeline-global occupancy: per stage, how many CAM rows each
/// module holds — the operator's capacity view.
[[nodiscard]] std::string DumpPipelineOccupancy(const Pipeline& pipeline);

// --- Sharded dataplane statistics ---------------------------------------------

/// One shard replica's traffic totals.
struct ShardStats {
  std::size_t shard = 0;
  u64 batches = 0;
  u64 packets = 0;
  u64 forwarded = 0;
  u64 dropped = 0;
  u64 filtered = 0;
  /// Ingress-ring occupancy (sub-batches waiting) at snapshot time and
  /// cumulative worker busy time — the controller's per-shard
  /// utilisation signals (groundwork for per-shard-utilisation scaling).
  u64 queue_depth = 0;
  u64 busy_ns = 0;
  /// Flow-verdict cache counters for this replica (hits/misses are
  /// cumulative; occupancy is the instantaneous valid-slot count).
  u64 flow_cache_hits = 0;
  u64 flow_cache_misses = 0;
  u64 flow_cache_evictions = 0;
  u64 flow_cache_occupancy = 0;
  /// Specialized-kernel dispatch counters for this replica
  /// (pipeline/kernels.hpp): straight-line-kernel packets, interpreted
  /// fallback packets (wide/ternary rows), recording-kernel cache fills.
  u64 kernel_pkts = 0;
  u64 kernel_fallback_pkts = 0;
  u64 kernel_record_fills = 0;
  /// Streaming (run-to-completion) path: bursts and packets executed,
  /// packets emitted to this shard's egress queue, egress occupancy at
  /// snapshot time, producer pushes that found the ring full, and
  /// batched sub-batches this worker stole from a backlogged neighbour.
  u64 stream_bursts = 0;
  u64 stream_pkts = 0;
  u64 egress_pkts = 0;
  u64 egress_depth = 0;
  u64 producer_stalls = 0;
  u64 steals = 0;

  [[nodiscard]] double flow_cache_hit_ratio() const {
    const u64 probes = flow_cache_hits + flow_cache_misses;
    return probes == 0
               ? 0.0
               : static_cast<double>(flow_cache_hits) /
                     static_cast<double>(probes);
  }
};

/// One tenant's totals plus the shard its traffic is steered to, and
/// the execution-ladder facts of its compiled row: why (if at all) the
/// flow-verdict cache is blocked for it, and which kernel shape its
/// module runs dispatch to.
struct TenantStats {
  ModuleId tenant;
  std::size_t shard = 0;
  u64 forwarded = 0;
  u64 dropped = 0;
  FlowCacheBlocker flow_blocker = FlowCacheBlocker::kNone;
  /// Shape id (pipeline/kernels KernelShapeId) of the tenant's row at
  /// its potential step count — the shape a full-length run presents.
  u8 kernel_shape = 0;
  /// p99 packet latency (ns) from the telemetry histograms, merged
  /// across shards and both paths; 0 when the tenant has no samples
  /// (or histograms are disabled).  The adversarial-isolation suite's
  /// measured bound.
  u64 p99_ns = 0;
};

/// One pipeline stage's match-path counters, aggregated across shard
/// replicas.  Lookups count CAM probes (exact: indexed or one-word;
/// ternary: narrowed scan); the hit ratio is the operator's view of how
/// much traffic actually matches per stage.
struct StageMatchStats {
  std::size_t stage = 0;
  u64 cam_lookups = 0;
  u64 cam_hits = 0;
  u64 tcam_lookups = 0;
  u64 tcam_hits = 0;

  [[nodiscard]] double cam_hit_ratio() const {
    return cam_lookups == 0
               ? 0.0
               : static_cast<double>(cam_hits) /
                     static_cast<double>(cam_lookups);
  }
  [[nodiscard]] double tcam_hit_ratio() const {
    return tcam_lookups == 0
               ? 0.0
               : static_cast<double>(tcam_hits) /
                     static_cast<double>(tcam_lookups);
  }
};

struct DataplaneStats {
  std::vector<ShardStats> shards;
  std::vector<TenantStats> tenants;  // sorted by tenant ID
  /// Per-stage match-path counters, aggregated across shards.
  std::vector<StageMatchStats> match_stages;
  /// Kernel-shape packet distribution aggregated across shard replicas
  /// (index = shape id; see pipeline/kernels KernelShapeName).
  std::array<u64, kKernelShapeCount> kernel_shape_pkts{};
  u64 total_packets = 0;
  u64 writes_broadcast = 0;
  /// Committed configuration epoch (bumped by Dataplane::CommitEpoch).
  u64 epoch = 0;
  /// Configuration writes staged but not yet committed.
  std::size_t pending_writes = 0;
  /// Tenant migrations applied (steering changes at epoch boundaries).
  u64 migrations = 0;
  /// Replica-set resizes applied (epoch-boundary grow/shrink).
  u64 resizes = 0;
  /// Worker threads running shard replicas (0 = sequential engine).
  std::size_t workers = 0;
  /// True when this snapshot was taken through the relaxed (non-quiescing)
  /// path: counters are monotonic and at most one in-flight sub-batch
  /// behind the exact totals.
  bool relaxed = false;
};

/// Aggregates per-shard and per-tenant throughput/drop counters.
/// Quiesces the engine (drains in-flight work) so totals are exact and
/// batch-consistent — the operator's audit view.
[[nodiscard]] DataplaneStats CollectDataplaneStats(const Dataplane& dp);

/// Relaxed variant for the periodic control-plane tick: reads only the
/// dataplane's monotonic relaxed counters, so collecting it never stalls
/// ingress.  Shard/tenant totals may each lag by at most one in-flight
/// sub-batch (and `forwarded+dropped+filtered` may momentarily trail
/// `packets` within a shard row); they converge to the exact values as
/// soon as the workers go idle.  Good enough for load tracking
/// (runtime/controller, Rebalancer EWMA) — use CollectDataplaneStats for
/// exact audits.
[[nodiscard]] DataplaneStats CollectDataplaneStatsRelaxed(const Dataplane& dp);

/// Renders the dataplane counters — the operator's `show dataplane` view.
[[nodiscard]] std::string DumpDataplaneStats(const Dataplane& dp);

}  // namespace menshen
