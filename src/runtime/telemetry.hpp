// Dataplane telemetry: latency histograms and sampled packet tracing.
//
// Three pieces, all designed for the packet hot path:
//
// * LatencyHistogram — log-bucketed (8 sub-buckets per power-of-two
//   octave, exact below 16 ns) relaxed-atomic histogram.  Recording is
//   two relaxed fetch_adds; snapshots are mergeable and support
//   p50/p90/p99/p999 extraction with bounded (~9%) bucket error.
// * TraceRing — per-shard single-producer/single-consumer ring of
//   fixed-size 16-byte TraceRecords.  The producer is the shard's
//   executor (worker thread, or the submitting thread on the inline
//   paths — mutually excluded by the dataplane's gates and per-shard
//   mutexes); drops when full, never blocks, never allocates.
// * Telemetry — per-shard slots (batched + streaming histograms,
//   per-tenant lazily allocated histograms, trace ring, per-tier
//   counters) installed lock-free behind atomic pointers so shard
//   growth never stalls a recording worker.
//
// Timestamps use the TSC when available (one rdtsc per batch/burst at
// Submit, one at completion) with a once-per-process calibration
// against steady_clock; non-x86 builds fall back to steady_clock.
//
// Sampling: trace_sample_every = N records every Nth packet a shard
// executes; N = 0 disables tracing entirely and the hot path pays only
// the histogram fetch_adds (gated <= 2% by micro_telemetry_overhead).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/counters.hpp"
#include "common/exec_tier.hpp"
#include "common/types.hpp"

namespace menshen {

// ---------------------------------------------------------------------------
// TSC clock

struct TscClock {
  /// Raw timestamp in ticks (TSC on x86-64, steady_clock ns elsewhere).
  [[nodiscard]] static u64 Now();
  /// Converts a tick *delta* to nanoseconds.
  [[nodiscard]] static u64 ToNs(u64 ticks);
  /// Nanoseconds per tick (calibrated once per process; ~2 ms spin).
  [[nodiscard]] static double NsPerTick();
  /// Forces calibration now so the first hot-path conversion never
  /// pays the spin.  Idempotent; Telemetry's constructor calls it.
  static void Calibrate() { (void)NsPerTick(); }
};

// ---------------------------------------------------------------------------
// Log-bucketed latency histogram

/// Mergeable point-in-time copy of a histogram with quantile extraction.
struct HistogramSnapshot {
  static constexpr u32 kBuckets = 16 + 60 * 8;  // 496: exact 0..15, then
                                                // 8 sub-buckets/octave
  std::array<u64, kBuckets> buckets{};
  u64 count = 0;
  u64 sum = 0;

  void Merge(const HistogramSnapshot& other);
  /// Value at quantile q in [0,1] (bucket midpoint; 0 when empty).
  [[nodiscard]] u64 Quantile(double q) const;
  [[nodiscard]] u64 p50() const { return Quantile(0.50); }
  [[nodiscard]] u64 p90() const { return Quantile(0.90); }
  [[nodiscard]] u64 p99() const { return Quantile(0.99); }
  [[nodiscard]] u64 p999() const { return Quantile(0.999); }
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

class LatencyHistogram {
 public:
  static constexpr u32 kBuckets = HistogramSnapshot::kBuckets;

  /// Bucket index for a nanosecond value: exact below 16, then
  /// (msb-4)*8 + top-3-bits-after-msb within the octave.
  [[nodiscard]] static u32 BucketFor(u64 v) {
    if (v < 16) return static_cast<u32>(v);
    const u32 msb = 63u - static_cast<u32>(__builtin_clzll(v));
    const u32 sub = static_cast<u32>((v >> (msb - 3)) & 0x7);
    return 16 + (msb - 4) * 8 + sub;
  }
  /// Inclusive lower bound of a bucket (for quantile reconstruction).
  [[nodiscard]] static u64 BucketLowerBound(u32 idx) {
    if (idx < 16) return idx;
    const u32 msb = 4 + (idx - 16) / 8;
    const u32 sub = (idx - 16) % 8;
    const u64 base = u64{1} << msb;
    return base + sub * (base >> 3);
  }
  /// Exclusive upper bound of a bucket.
  [[nodiscard]] static u64 BucketUpperBound(u32 idx) {
    return idx + 1 < kBuckets ? BucketLowerBound(idx + 1) : ~u64{0};
  }

  void Record(u64 ns) { RecordN(ns, 1); }
  /// Records `n` observations of the same value (a batch whose packets
  /// all completed together shares one latency sample).
  void RecordN(u64 ns, u64 n) {
    buckets_[BucketFor(ns)].Add(n);
    sum_.Add(ns * n);
  }

  [[nodiscard]] HistogramSnapshot Snapshot() const;

 private:
  std::array<RelaxedCounter, kBuckets> buckets_{};
  RelaxedCounter sum_{};
};

// ---------------------------------------------------------------------------
// Sampled trace ring

/// One sampled packet execution.  Fixed 16 bytes; never allocates.
struct TraceRecord {
  u16 tenant = 0;    // vid
  u8 shard = 0;
  u8 tier = 0;       // ExecTier
  u8 stages = 0;     // stages/steps visited by the executing tier
  u8 verdict = 0;    // 0 forwarded, 1 dropped, 2 filtered
  u16 stream = 0;    // 1 when sampled on the streaming path
  u64 ns = 0;        // packet latency (ingress stamp -> completion)
};
static_assert(sizeof(TraceRecord) == 16);

/// Lock-free SPSC ring.  Producer: the shard's executor.  Consumer:
/// whoever drains (controller tick, telemetry_dump, tests).  Push
/// drops when full — observability never applies back-pressure.
class TraceRing {
 public:
  explicit TraceRing(u32 capacity);

  /// Producer side.  Returns false when full (caller counts the drop).
  bool Push(const TraceRecord& rec);
  /// Consumer side: removes and returns everything currently queued.
  [[nodiscard]] std::vector<TraceRecord> Drain();
  [[nodiscard]] u32 capacity() const { return cap_; }

 private:
  u32 cap_;  // power of two
  u32 mask_;
  std::unique_ptr<TraceRecord[]> buf_;
  alignas(64) std::atomic<u64> head_{0};  // written by producer
  alignas(64) std::atomic<u64> tail_{0};  // written by consumer
};

// ---------------------------------------------------------------------------
// Telemetry

struct TelemetryConfig {
  /// Record per-shard / per-tenant latency histograms.
  bool latency_histograms = true;
  /// Sample every Nth executed packet into the trace ring; 0 = off.
  u32 trace_sample_every = 0;
  /// Capacity of each shard's trace ring (rounded up to a power of 2).
  u32 trace_ring_capacity = 1024;
};

/// Per-shard telemetry aggregate (see Telemetry::Snapshot).
struct ShardTelemetry {
  HistogramSnapshot batched;
  HistogramSnapshot stream;
  std::array<u64, kExecTierCount> tier_pkts{};
  u64 trace_samples = 0;
  u64 trace_drops = 0;
};

struct TenantLatency {
  u16 tenant = 0;
  HistogramSnapshot hist;  // merged across shards, batched + stream
};

struct TelemetrySnapshot {
  std::vector<ShardTelemetry> shards;
  std::vector<TenantLatency> tenants;   // sorted by tenant id
  HistogramSnapshot batched_total;      // merged across shards
  HistogramSnapshot stream_total;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig cfg = {});
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] const TelemetryConfig& config() const { return cfg_; }
  [[nodiscard]] bool histograms_enabled() const {
    return cfg_.latency_histograms;
  }
  [[nodiscard]] u32 sample_every() const { return cfg_.trace_sample_every; }

  /// Grows the per-shard slot table to at least `n` shards.  Called
  /// under the dataplane's config lock; recording threads only touch
  /// slots for shards that already exist, so installation is a simple
  /// release-store they observe with an acquire-load.
  void EnsureShards(std::size_t n);
  [[nodiscard]] std::size_t num_shards() const {
    return shard_count_.load(std::memory_order_acquire);
  }

  // --- hot path (shard executor) ---------------------------------------

  /// Records `n` packets of tenant `vid` completing with latency `ns`
  /// on shard `shard`'s batched path.
  void RecordBatched(std::size_t shard, u16 vid, u64 ns, u64 n);
  /// Streaming-path sibling.
  void RecordStream(std::size_t shard, u16 vid, u64 ns, u64 n);
  /// Per-tier packet accounting (histogram-gated; one relaxed add).
  void CountTier(std::size_t shard, u8 tier, u64 n);
  /// Decrements the shard's sampling countdown; true on the Nth call.
  /// Only call when sample_every() != 0.
  [[nodiscard]] bool SampleTick(std::size_t shard);
  /// Pushes a sampled trace record (producer side of the shard ring).
  void Trace(std::size_t shard, const TraceRecord& rec);

  // --- readers ----------------------------------------------------------

  /// Merged p99 latency (ns) for one tenant across all shards and both
  /// paths; 0 when the tenant has no samples.
  [[nodiscard]] u64 TenantP99(u16 vid) const;
  [[nodiscard]] HistogramSnapshot TenantSnapshot(u16 vid) const;
  [[nodiscard]] TelemetrySnapshot Snapshot() const;
  /// Drains shard `shard`'s trace ring (consumer side).
  [[nodiscard]] std::vector<TraceRecord> DrainTraces(std::size_t shard);

 private:
  struct Slot {
    explicit Slot(u32 ring_capacity);
    ~Slot();

    LatencyHistogram batched;
    LatencyHistogram stream;
    // Lazily allocated per-tenant histograms, CAS-installed; indexed
    // by vid (12-bit ModuleId space).
    std::vector<std::atomic<LatencyHistogram*>> tenants;
    TraceRing ring;
    std::atomic<u64> sample_countdown{0};
    std::array<RelaxedCounter, kExecTierCount> tier_pkts{};
    RelaxedCounter trace_samples;
    RelaxedCounter trace_drops;
  };

  [[nodiscard]] Slot* slot(std::size_t shard) const {
    return slots_[shard].load(std::memory_order_acquire);
  }
  [[nodiscard]] static LatencyHistogram* TenantHist(Slot& s, u16 vid);

  /// Upper bound on shards; matches the dataplane's practical range
  /// (the controller scales within core counts, not thousands).
  static constexpr std::size_t kMaxShards = 256;

  TelemetryConfig cfg_;
  std::vector<std::atomic<Slot*>> slots_;
  std::atomic<std::size_t> shard_count_{0};
};

}  // namespace menshen
