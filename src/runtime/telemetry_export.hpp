// Machine-readable metrics export: DataplaneStats + telemetry
// histograms + trace summaries rendered as Prometheus text exposition
// and as JSON, plus a parser for the Prometheus text (the round-trip
// unit: export -> parse -> compare; also what a scrape test harness
// uses to assert on individual samples).
//
// One sample list (BuildMetricSamples) feeds both renderers, so the
// two formats can never drift apart.  Metric names are stable API —
// the README "Observability" section lists every family.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "runtime/stats.hpp"
#include "runtime/telemetry.hpp"

namespace menshen {

/// One exported sample: flat name, ordered label pairs, double value
/// (u64 counters above 2^53 lose precision — acceptable for metrics).
struct MetricSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;

  bool operator==(const MetricSample&) const = default;
};

/// The canonical sample list both renderers serialize.
[[nodiscard]] std::vector<MetricSample> BuildMetricSamples(
    const DataplaneStats& s, const TelemetrySnapshot& tel);

/// Prometheus text exposition format (one `name{labels} value` line per
/// sample, `# TYPE` comments per family).
[[nodiscard]] std::string RenderPrometheus(const DataplaneStats& s,
                                           const TelemetrySnapshot& tel);

/// JSON: `{"metrics":[{"name":...,"labels":{...},"value":...},...]}`.
[[nodiscard]] std::string RenderJson(const DataplaneStats& s,
                                     const TelemetrySnapshot& tel);

/// Parses Prometheus text (as produced by RenderPrometheus: comments
/// skipped, no escaped label values) back into samples.  Malformed
/// lines are skipped.
[[nodiscard]] std::vector<MetricSample> ParsePrometheus(
    const std::string& text);

}  // namespace menshen
