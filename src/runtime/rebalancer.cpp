#include "runtime/rebalancer.hpp"

#include <algorithm>

namespace menshen {

std::vector<Rebalancer::TenantLoad> Rebalancer::SmoothedLoads(
    const Dataplane& dp) const {
  std::vector<TenantLoad> loads;
  for (const ModuleId tenant : dp.ActiveTenantsRelaxed()) {
    const u64 total =
        dp.forwarded_relaxed(tenant) + dp.dropped_relaxed(tenant);
    const auto seen_it = last_seen_.find(tenant.value());
    const u64 seen = seen_it == last_seen_.end() ? 0 : seen_it->second;
    const double delta = static_cast<double>(total - std::min(total, seen));
    const auto ewma_it = ewma_.find(tenant.value());
    // Seed the EWMA with the first observation; blend afterwards.
    const double smoothed =
        ewma_it == ewma_.end()
            ? delta
            : cfg_.ewma_alpha * delta +
                  (1.0 - cfg_.ewma_alpha) * ewma_it->second;
    loads.push_back(TenantLoad{tenant, dp.ShardFor(tenant), smoothed, total});
  }
  return loads;
}

std::vector<Migration> Rebalancer::PlanFrom(
    const Dataplane& dp, std::vector<TenantLoad>& tenants,
    double shard_skew) const {
  // Per-shard hot-spot response: when the caller measured a skewed
  // busy-time distribution, the imbalance is a fact on the ground (the
  // hot shard is burning wall-clock the others are not), so the round
  // raises its move budget and drops the hysteresis dead band.  The
  // per-tenant cooldown freeze below still applies either way.
  const bool aggressive =
      cfg_.skew_threshold > 0.0 && shard_skew >= cfg_.skew_threshold;
  const std::size_t move_budget =
      aggressive ? std::max(cfg_.skew_max_moves, cfg_.max_moves_per_round)
                 : cfg_.max_moves_per_round;
  std::vector<double> shard_load(dp.num_shards(), 0.0);
  for (const TenantLoad& t : tenants) {
    // A concurrent ResizeShards shrink between SmoothedLoads and here can
    // leave a stale shard index; skip it — the next round re-reads the
    // settled placement.
    if (t.shard >= shard_load.size()) continue;
    shard_load[t.shard] += t.load;
  }

  std::vector<Migration> moves;
  for (std::size_t round = 0; round < move_budget; ++round) {
    const auto busiest =
        std::max_element(shard_load.begin(), shard_load.end());
    const auto idlest = std::min_element(shard_load.begin(), shard_load.end());
    const std::size_t from =
        static_cast<std::size_t>(busiest - shard_load.begin());
    const std::size_t to = static_cast<std::size_t>(idlest - shard_load.begin());
    if (from == to) break;

    double total = 0;
    for (const double l : shard_load) total += l;
    const double mean = total / static_cast<double>(shard_load.size());
    if (*busiest <= cfg_.imbalance_threshold * mean) break;

    // Hottest tenant on the busiest shard whose move strictly narrows the
    // busiest/idlest spread (a tenant hotter than the spread would just
    // swap the roles of the two shards), shifts at least the hysteresis
    // dead band, and is not frozen by a recent migration.
    const u64 planning_round = rounds_ + 1;
    TenantLoad* pick = nullptr;
    for (TenantLoad& t : tenants) {
      if (t.shard != from || t.load <= 0.0) continue;
      if (t.load + *idlest >= *busiest) continue;
      if (!aggressive && t.load < cfg_.hysteresis_band * mean) continue;
      const auto moved_it = last_moved_round_.find(t.tenant.value());
      if (moved_it != last_moved_round_.end() &&
          planning_round - moved_it->second < cfg_.move_cooldown_rounds)
        continue;
      if (pick == nullptr || t.load > pick->load) pick = &t;
    }
    if (pick == nullptr) break;

    moves.push_back(Migration{pick->tenant, from, to, pick->load});
    shard_load[from] -= pick->load;
    shard_load[to] += pick->load;
    pick->shard = to;
  }
  return moves;
}

std::vector<Migration> Rebalancer::Plan(const Dataplane& dp,
                                        double shard_skew) const {
  std::vector<TenantLoad> tenants = SmoothedLoads(dp);
  return PlanFrom(dp, tenants, shard_skew);
}

std::vector<Migration> Rebalancer::Rebalance(Dataplane& dp,
                                             double shard_skew) {
  std::vector<TenantLoad> tenants = SmoothedLoads(dp);
  const std::vector<Migration> moves = PlanFrom(dp, tenants, shard_skew);
  for (const Migration& m : moves) dp.MigrateTenant(m.tenant, m.to);
  if (!moves.empty()) {
    // The placement change takes effect at a clean epoch boundary (and
    // flushes any writes the control plane had staged alongside).
    dp.CommitEpoch();
  }
  ++rounds_;
  // Fold this round's observation into the stored EWMA and snapshot the
  // cumulative counts so the next round measures fresh deltas.
  for (const TenantLoad& t : tenants) {
    ewma_[t.tenant.value()] = t.load;
    last_seen_[t.tenant.value()] = t.cumulative;
  }
  for (const Migration& m : moves) last_moved_round_[m.tenant.value()] = rounds_;
  return moves;
}

}  // namespace menshen
