#include "runtime/rebalancer.hpp"

#include <algorithm>

namespace menshen {

std::vector<Rebalancer::TenantLoad> Rebalancer::RecentLoads(
    const Dataplane& dp) const {
  std::vector<TenantLoad> loads;
  for (const ModuleId tenant : dp.ActiveTenants()) {
    const u64 total = dp.forwarded(tenant) + dp.dropped(tenant);
    const auto it = last_seen_.find(tenant.value());
    const u64 seen = it == last_seen_.end() ? 0 : it->second;
    loads.push_back(
        TenantLoad{tenant, dp.ShardFor(tenant), total - std::min(total, seen)});
  }
  return loads;
}

std::vector<Migration> Rebalancer::Plan(const Dataplane& dp) const {
  std::vector<TenantLoad> tenants = RecentLoads(dp);
  std::vector<u64> shard_load(dp.num_shards(), 0);
  for (const TenantLoad& t : tenants) shard_load[t.shard] += t.load;

  std::vector<Migration> moves;
  for (std::size_t round = 0; round < cfg_.max_moves_per_round; ++round) {
    const auto busiest =
        std::max_element(shard_load.begin(), shard_load.end());
    const auto idlest = std::min_element(shard_load.begin(), shard_load.end());
    const std::size_t from =
        static_cast<std::size_t>(busiest - shard_load.begin());
    const std::size_t to = static_cast<std::size_t>(idlest - shard_load.begin());
    if (from == to) break;

    u64 total = 0;
    for (const u64 l : shard_load) total += l;
    const double mean =
        static_cast<double>(total) / static_cast<double>(shard_load.size());
    if (static_cast<double>(*busiest) <= cfg_.imbalance_threshold * mean)
      break;

    // Hottest tenant on the busiest shard whose move strictly narrows the
    // busiest/idlest spread (a tenant hotter than the spread would just
    // swap the roles of the two shards).
    TenantLoad* pick = nullptr;
    for (TenantLoad& t : tenants) {
      if (t.shard != from || t.load == 0) continue;
      if (t.load + *idlest >= *busiest) continue;
      if (pick == nullptr || t.load > pick->load) pick = &t;
    }
    if (pick == nullptr) break;

    moves.push_back(Migration{pick->tenant, from, to, pick->load});
    shard_load[from] -= pick->load;
    shard_load[to] += pick->load;
    pick->shard = to;
  }
  return moves;
}

std::vector<Migration> Rebalancer::Rebalance(Dataplane& dp) {
  const std::vector<Migration> moves = Plan(dp);
  for (const Migration& m : moves) dp.MigrateTenant(m.tenant, m.to);
  if (!moves.empty()) {
    // The placement change takes effect at a clean epoch boundary (and
    // flushes any writes the control plane had staged alongside).
    dp.CommitEpoch();
  }
  // Snapshot cumulative counts so the next round measures fresh load.
  for (const ModuleId tenant : dp.ActiveTenants())
    last_seen_[tenant.value()] = dp.forwarded(tenant) + dp.dropped(tenant);
  ++rounds_;
  return moves;
}

}  // namespace menshen
