#include "runtime/stats.hpp"

#include <cstdio>
#include <map>

namespace menshen {

ModuleStats CollectModuleStats(const Pipeline& pipeline, ModuleId module) {
  ModuleStats s;
  s.module = module;
  s.forwarded = pipeline.forwarded(module);
  s.dropped = pipeline.dropped(module);
  for (std::size_t i = 0; i < pipeline.num_stages(); ++i) {
    const Stage& stage = pipeline.stage(i);
    s.cam_entries.push_back(stage.cam().CountForModule(module));
    s.segment_words.push_back(
        stage.stateful().segment_table().At(module.value() %
                                            params::kOverlayTableDepth)
            .range);
    s.stateful_violations += stage.stateful().violations(module);
  }
  return s;
}

std::string DumpModuleConfig(const Pipeline& pipeline, ModuleId module) {
  const std::size_t row = module.value() % params::kOverlayTableDepth;
  std::string out = "module " + std::to_string(module.value()) + ":\n";

  out += "  parser actions: " +
         std::to_string(pipeline.parser().table().At(row).valid_count()) +
         ", deparser actions: " +
         std::to_string(pipeline.deparser().table().At(row).valid_count()) +
         "\n";

  for (std::size_t i = 0; i < pipeline.num_stages(); ++i) {
    const Stage& stage = pipeline.stage(i);
    const KeyExtractorEntry& kx = stage.key_extractor().At(row);
    const KeyMaskEntry& mask = stage.key_mask().At(row);
    const SegmentEntry seg = stage.stateful().segment_table().At(row);
    out += "  stage " + std::to_string(i) + ": ";
    if (mask.mask.is_zero()) {
      out += "no table\n";
      continue;
    }
    out += kx.ternary ? "ternary" : "exact";
    out += " match, key bits " + std::to_string(mask.mask.popcount());
    if (kx.cmp_op != CmpOp::kNone) out += " (+predicate)";
    out += ", entries " + std::to_string(stage.cam().CountForModule(module));
    if (seg.range != 0)
      out += ", segment [" + std::to_string(seg.offset) + ", " +
             std::to_string(seg.offset + seg.range) + ")";
    out += "\n";
  }
  return out;
}

std::string DumpPipelineOccupancy(const Pipeline& pipeline) {
  std::string out = "pipeline occupancy (valid CAM rows per module):\n";
  for (std::size_t i = 0; i < pipeline.num_stages(); ++i) {
    const Stage& stage = pipeline.stage(i);
    std::map<u16, std::size_t> per_module;
    std::size_t valid = 0;
    for (std::size_t a = 0; a < stage.cam().depth(); ++a) {
      const CamEntry& e = stage.cam().At(a);
      if (!e.valid) continue;
      ++valid;
      ++per_module[e.module.value()];
    }
    out += "  stage " + std::to_string(i) + ": " + std::to_string(valid) +
           "/" + std::to_string(stage.cam().depth());
    for (const auto& [id, n] : per_module)
      out += "  m" + std::to_string(id) + "=" + std::to_string(n);
    out += "\n";
  }
  return out;
}

namespace {

void CollectControlCounters(const Dataplane& dp, DataplaneStats& s) {
  s.writes_broadcast = dp.writes_broadcast();
  s.epoch = dp.epoch();
  s.pending_writes = dp.pending_writes();
  s.migrations = dp.migrations();
  s.resizes = dp.resizes();
  s.workers = dp.num_workers();
}

void FillShardRows(const std::vector<Dataplane::ShardCounters>& counters,
                   DataplaneStats& s) {
  for (std::size_t i = 0; i < counters.size(); ++i) {
    const Dataplane::ShardCounters& c = counters[i];
    ShardStats row;
    row.shard = i;
    row.batches = c.batches;
    row.packets = c.packets;
    row.forwarded = c.forwarded;
    row.dropped = c.dropped;
    row.filtered = c.filtered;
    row.queue_depth = c.queue_depth;
    row.busy_ns = c.busy_ns;
    row.flow_cache_hits = c.flow_cache_hits;
    row.flow_cache_misses = c.flow_cache_misses;
    row.flow_cache_evictions = c.flow_cache_evictions;
    row.flow_cache_occupancy = c.flow_cache_occupancy;
    row.kernel_pkts = c.kernel_pkts;
    row.kernel_fallback_pkts = c.kernel_fallback_pkts;
    row.kernel_record_fills = c.kernel_record_fills;
    row.stream_bursts = c.stream_bursts;
    row.stream_pkts = c.stream_pkts;
    row.egress_pkts = c.egress_pkts;
    row.egress_depth = c.egress_depth;
    row.producer_stalls = c.producer_stalls;
    row.steals = c.steals;
    s.shards.push_back(row);
    for (std::size_t sh = 0; sh < kKernelShapeCount; ++sh)
      s.kernel_shape_pkts[sh] += c.kernel_shape_pkts[sh];
  }
}

/// Stamps each tenant row with its row's execution-ladder facts
/// (flow-cache blocker, kernel shape at the potential step count).
void DescribeTenantRows(const Dataplane& dp, DataplaneStats& s) {
  for (TenantStats& t : s.tenants) {
    const ModuleExecPlan plan = dp.DescribeTenantRow(t.tenant);
    t.flow_blocker = plan.flow_blocker;
    t.kernel_shape = KernelShapeId(
        plan.kernel.potential_steps, plan.kernel.stateful,
        plan.kernel.multi_slot, plan.kernel.wide_or_ternary);
    t.p99_ns = dp.telemetry().TenantP99(t.tenant.value());
  }
}

void FillMatchRows(const std::vector<Dataplane::StageMatchCounters>& match,
                   DataplaneStats& s) {
  for (std::size_t i = 0; i < match.size(); ++i)
    s.match_stages.push_back(StageMatchStats{i, match[i].cam_lookups,
                                             match[i].cam_hits,
                                             match[i].tcam_lookups,
                                             match[i].tcam_hits});
}

}  // namespace

DataplaneStats CollectDataplaneStats(const Dataplane& dp) {
  DataplaneStats s;
  CollectControlCounters(dp, s);
  // One quiesce for the whole view: shard rows, tenant totals, match
  // counters and the packet total come from the same drained instant
  // (the total is not the sum of the rows — replicas destroyed by a
  // shrink retire their counts into the monotonic dataplane total).
  const Dataplane::QuiescedStats q = dp.QuiescedStatsSnapshot();
  FillShardRows(q.shards, s);
  FillMatchRows(q.match_stages, s);
  s.total_packets = q.total_packets;
  for (const Dataplane::TenantCounts& t : q.tenants) {
    TenantStats row;
    row.tenant = t.tenant;
    row.shard = t.shard;
    row.forwarded = t.forwarded;
    row.dropped = t.dropped;
    s.tenants.push_back(row);
  }
  DescribeTenantRows(dp, s);
  return s;
}

DataplaneStats CollectDataplaneStatsRelaxed(const Dataplane& dp) {
  DataplaneStats s;
  s.relaxed = true;
  CollectControlCounters(dp, s);
  FillShardRows(dp.CountersSnapshotRelaxed(), s);
  FillMatchRows(dp.MatchCountersSnapshotRelaxed(), s);
  s.total_packets = dp.total_packets_relaxed();
  for (const ModuleId tenant : dp.ActiveTenantsRelaxed()) {
    TenantStats row;
    row.tenant = tenant;
    row.shard = dp.ShardFor(tenant);
    row.forwarded = dp.forwarded_relaxed(tenant);
    row.dropped = dp.dropped_relaxed(tenant);
    s.tenants.push_back(row);
  }
  DescribeTenantRows(dp, s);
  return s;
}

std::string DumpDataplaneStats(const Dataplane& dp) {
  const DataplaneStats s = CollectDataplaneStats(dp);
  std::string out = "dataplane: " + std::to_string(dp.num_shards()) +
                    " shard(s) on " + std::to_string(s.workers) +
                    " worker thread(s), " + std::to_string(s.total_packets) +
                    " packets, " + std::to_string(s.writes_broadcast) +
                    " config writes broadcast\n";
  out += "  config epoch " + std::to_string(s.epoch) + " (" +
         std::to_string(s.pending_writes) + " staged), " +
         std::to_string(s.migrations) + " tenant migration(s), " +
         std::to_string(s.resizes) + " resize(s)\n";
  // One aligned per-shard table covering every counter ShardStats
  // carries: traffic, queueing, flow cache, kernels, streaming/stealing.
  {
    char line[400];
    std::snprintf(line, sizeof line,
                  "  %5s %9s %9s %8s %6s %8s %5s %9s  %9s %9s %6s %6s  "
                  "%9s %8s %7s  %8s %9s %9s %5s %6s %6s\n",
                  "shard", "packets", "fwd", "drop", "filt", "batches", "queue",
                  "busy_us", "fc_hit", "fc_miss", "fc_ev", "fc_occ", "kernel",
                  "interp", "fills", "sbursts", "spkts", "epkts", "eq",
                  "stalls", "steals");
    out += line;
    for (const ShardStats& sh : s.shards) {
      std::snprintf(
          line, sizeof line,
          "  %5zu %9llu %9llu %8llu %6llu %8llu %5llu %9llu  %9llu %9llu "
          "%6llu %6llu  %9llu %8llu %7llu  %8llu %9llu %9llu %5llu %6llu "
          "%6llu\n",
          sh.shard, static_cast<unsigned long long>(sh.packets),
          static_cast<unsigned long long>(sh.forwarded),
          static_cast<unsigned long long>(sh.dropped),
          static_cast<unsigned long long>(sh.filtered),
          static_cast<unsigned long long>(sh.batches),
          static_cast<unsigned long long>(sh.queue_depth),
          static_cast<unsigned long long>(sh.busy_ns / 1000),
          static_cast<unsigned long long>(sh.flow_cache_hits),
          static_cast<unsigned long long>(sh.flow_cache_misses),
          static_cast<unsigned long long>(sh.flow_cache_evictions),
          static_cast<unsigned long long>(sh.flow_cache_occupancy),
          static_cast<unsigned long long>(sh.kernel_pkts),
          static_cast<unsigned long long>(sh.kernel_fallback_pkts),
          static_cast<unsigned long long>(sh.kernel_record_fills),
          static_cast<unsigned long long>(sh.stream_bursts),
          static_cast<unsigned long long>(sh.stream_pkts),
          static_cast<unsigned long long>(sh.egress_pkts),
          static_cast<unsigned long long>(sh.egress_depth),
          static_cast<unsigned long long>(sh.producer_stalls),
          static_cast<unsigned long long>(sh.steals));
      out += line;
    }
  }
  // Latency quantiles and execution-tier distribution from the
  // telemetry histograms (runtime/telemetry) — skipped when empty.
  {
    const TelemetrySnapshot tel = dp.telemetry().Snapshot();
    char line[240];
    for (std::size_t i = 0; i < tel.shards.size(); ++i) {
      const ShardTelemetry& st = tel.shards[i];
      for (const auto* h : {&st.batched, &st.stream}) {
        if (h->count == 0) continue;
        std::snprintf(line, sizeof line,
                      "  shard %zu latency %s: n=%llu p50=%llu p90=%llu "
                      "p99=%llu p999=%llu ns\n",
                      i, h == &st.batched ? "batched" : "stream",
                      static_cast<unsigned long long>(h->count),
                      static_cast<unsigned long long>(h->p50()),
                      static_cast<unsigned long long>(h->p90()),
                      static_cast<unsigned long long>(h->p99()),
                      static_cast<unsigned long long>(h->p999()));
        out += line;
      }
      std::string tiers;
      for (int t = 1; t < kExecTierCount; ++t)
        if (st.tier_pkts[static_cast<std::size_t>(t)] != 0)
          tiers += std::string("  ") + ExecTierName(static_cast<u8>(t)) + "=" +
                   std::to_string(st.tier_pkts[static_cast<std::size_t>(t)]);
      if (!tiers.empty())
        out += "  shard " + std::to_string(i) + " tiers:" + tiers + "\n";
      if (st.trace_samples + st.trace_drops != 0)
        out += "  shard " + std::to_string(i) + " traces: " +
               std::to_string(st.trace_samples) + " sampled, " +
               std::to_string(st.trace_drops) + " dropped\n";
    }
  }
  {
    // Kernel-shape packet distribution, aggregated across shards.
    std::string shapes;
    for (std::size_t id = 0; id < kKernelShapeCount; ++id)
      if (s.kernel_shape_pkts[id] != 0)
        shapes += std::string("  ") + KernelShapeName(static_cast<u8>(id)) +
                  "=" + std::to_string(s.kernel_shape_pkts[id]);
    if (!shapes.empty()) out += "  kernel shapes:" + shapes + "\n";
  }
  // Per-module flow-cache blocker histogram: how many tenants sit at
  // each rung of the execution ladder, and why the cache is blocked for
  // the ones it is.
  {
    std::map<const char*, std::size_t> blockers;
    for (const TenantStats& t : s.tenants)
      ++blockers[FlowCacheBlockerName(t.flow_blocker)];
    if (!blockers.empty()) {
      out += "  flow blockers:";
      for (const auto& [name, n] : blockers)
        out += std::string("  ") + name + "=" + std::to_string(n);
      out += "\n";
    }
  }
  for (const TenantStats& t : s.tenants) {
    out += "  tenant " + std::to_string(t.tenant.value()) + " @ shard " +
           std::to_string(t.shard) + ": fwd " + std::to_string(t.forwarded) +
           ", drop " + std::to_string(t.dropped) + " [blocker " +
           FlowCacheBlockerName(t.flow_blocker) + ", shape " +
           KernelShapeName(t.kernel_shape) + "]";
    if (t.p99_ns != 0) out += ", p99 " + std::to_string(t.p99_ns) + " ns";
    out += "\n";
  }
  for (const StageMatchStats& m : s.match_stages) {
    if (m.cam_lookups == 0 && m.tcam_lookups == 0) continue;
    char line[160];
    std::snprintf(line, sizeof line,
                  "  stage %zu match: cam %llu/%llu (%.1f%%), tcam %llu/%llu"
                  " (%.1f%%)\n",
                  m.stage, static_cast<unsigned long long>(m.cam_hits),
                  static_cast<unsigned long long>(m.cam_lookups),
                  100.0 * m.cam_hit_ratio(),
                  static_cast<unsigned long long>(m.tcam_hits),
                  static_cast<unsigned long long>(m.tcam_lookups),
                  100.0 * m.tcam_hit_ratio());
    out += line;
  }
  return out;
}

}  // namespace menshen
