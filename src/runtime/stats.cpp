#include "runtime/stats.hpp"

#include <map>

namespace menshen {

ModuleStats CollectModuleStats(const Pipeline& pipeline, ModuleId module) {
  ModuleStats s;
  s.module = module;
  s.forwarded = pipeline.forwarded(module);
  s.dropped = pipeline.dropped(module);
  for (std::size_t i = 0; i < pipeline.num_stages(); ++i) {
    const Stage& stage = pipeline.stage(i);
    s.cam_entries.push_back(stage.cam().CountForModule(module));
    s.segment_words.push_back(
        stage.stateful().segment_table().At(module.value() %
                                            params::kOverlayTableDepth)
            .range);
    s.stateful_violations += stage.stateful().violations(module);
  }
  return s;
}

std::string DumpModuleConfig(const Pipeline& pipeline, ModuleId module) {
  const std::size_t row = module.value() % params::kOverlayTableDepth;
  std::string out = "module " + std::to_string(module.value()) + ":\n";

  out += "  parser actions: " +
         std::to_string(pipeline.parser().table().At(row).valid_count()) +
         ", deparser actions: " +
         std::to_string(pipeline.deparser().table().At(row).valid_count()) +
         "\n";

  for (std::size_t i = 0; i < pipeline.num_stages(); ++i) {
    const Stage& stage = pipeline.stage(i);
    const KeyExtractorEntry& kx = stage.key_extractor().At(row);
    const KeyMaskEntry& mask = stage.key_mask().At(row);
    const SegmentEntry seg = stage.stateful().segment_table().At(row);
    out += "  stage " + std::to_string(i) + ": ";
    if (mask.mask.is_zero()) {
      out += "no table\n";
      continue;
    }
    out += kx.ternary ? "ternary" : "exact";
    out += " match, key bits " + std::to_string(mask.mask.popcount());
    if (kx.cmp_op != CmpOp::kNone) out += " (+predicate)";
    out += ", entries " + std::to_string(stage.cam().CountForModule(module));
    if (seg.range != 0)
      out += ", segment [" + std::to_string(seg.offset) + ", " +
             std::to_string(seg.offset + seg.range) + ")";
    out += "\n";
  }
  return out;
}

std::string DumpPipelineOccupancy(const Pipeline& pipeline) {
  std::string out = "pipeline occupancy (valid CAM rows per module):\n";
  for (std::size_t i = 0; i < pipeline.num_stages(); ++i) {
    const Stage& stage = pipeline.stage(i);
    std::map<u16, std::size_t> per_module;
    std::size_t valid = 0;
    for (std::size_t a = 0; a < stage.cam().depth(); ++a) {
      const CamEntry& e = stage.cam().At(a);
      if (!e.valid) continue;
      ++valid;
      ++per_module[e.module.value()];
    }
    out += "  stage " + std::to_string(i) + ": " + std::to_string(valid) +
           "/" + std::to_string(stage.cam().depth());
    for (const auto& [id, n] : per_module)
      out += "  m" + std::to_string(id) + "=" + std::to_string(n);
    out += "\n";
  }
  return out;
}

}  // namespace menshen
