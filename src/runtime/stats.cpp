#include "runtime/stats.hpp"

#include <cstdio>
#include <map>

namespace menshen {

ModuleStats CollectModuleStats(const Pipeline& pipeline, ModuleId module) {
  ModuleStats s;
  s.module = module;
  s.forwarded = pipeline.forwarded(module);
  s.dropped = pipeline.dropped(module);
  for (std::size_t i = 0; i < pipeline.num_stages(); ++i) {
    const Stage& stage = pipeline.stage(i);
    s.cam_entries.push_back(stage.cam().CountForModule(module));
    s.segment_words.push_back(
        stage.stateful().segment_table().At(module.value() %
                                            params::kOverlayTableDepth)
            .range);
    s.stateful_violations += stage.stateful().violations(module);
  }
  return s;
}

std::string DumpModuleConfig(const Pipeline& pipeline, ModuleId module) {
  const std::size_t row = module.value() % params::kOverlayTableDepth;
  std::string out = "module " + std::to_string(module.value()) + ":\n";

  out += "  parser actions: " +
         std::to_string(pipeline.parser().table().At(row).valid_count()) +
         ", deparser actions: " +
         std::to_string(pipeline.deparser().table().At(row).valid_count()) +
         "\n";

  for (std::size_t i = 0; i < pipeline.num_stages(); ++i) {
    const Stage& stage = pipeline.stage(i);
    const KeyExtractorEntry& kx = stage.key_extractor().At(row);
    const KeyMaskEntry& mask = stage.key_mask().At(row);
    const SegmentEntry seg = stage.stateful().segment_table().At(row);
    out += "  stage " + std::to_string(i) + ": ";
    if (mask.mask.is_zero()) {
      out += "no table\n";
      continue;
    }
    out += kx.ternary ? "ternary" : "exact";
    out += " match, key bits " + std::to_string(mask.mask.popcount());
    if (kx.cmp_op != CmpOp::kNone) out += " (+predicate)";
    out += ", entries " + std::to_string(stage.cam().CountForModule(module));
    if (seg.range != 0)
      out += ", segment [" + std::to_string(seg.offset) + ", " +
             std::to_string(seg.offset + seg.range) + ")";
    out += "\n";
  }
  return out;
}

std::string DumpPipelineOccupancy(const Pipeline& pipeline) {
  std::string out = "pipeline occupancy (valid CAM rows per module):\n";
  for (std::size_t i = 0; i < pipeline.num_stages(); ++i) {
    const Stage& stage = pipeline.stage(i);
    std::map<u16, std::size_t> per_module;
    std::size_t valid = 0;
    for (std::size_t a = 0; a < stage.cam().depth(); ++a) {
      const CamEntry& e = stage.cam().At(a);
      if (!e.valid) continue;
      ++valid;
      ++per_module[e.module.value()];
    }
    out += "  stage " + std::to_string(i) + ": " + std::to_string(valid) +
           "/" + std::to_string(stage.cam().depth());
    for (const auto& [id, n] : per_module)
      out += "  m" + std::to_string(id) + "=" + std::to_string(n);
    out += "\n";
  }
  return out;
}

namespace {

void CollectControlCounters(const Dataplane& dp, DataplaneStats& s) {
  s.writes_broadcast = dp.writes_broadcast();
  s.epoch = dp.epoch();
  s.pending_writes = dp.pending_writes();
  s.migrations = dp.migrations();
  s.resizes = dp.resizes();
  s.workers = dp.num_workers();
}

void FillShardRows(const std::vector<Dataplane::ShardCounters>& counters,
                   DataplaneStats& s) {
  for (std::size_t i = 0; i < counters.size(); ++i) {
    const Dataplane::ShardCounters& c = counters[i];
    s.shards.push_back(ShardStats{i, c.batches, c.packets, c.forwarded,
                                  c.dropped, c.filtered, c.queue_depth,
                                  c.busy_ns, c.flow_cache_hits,
                                  c.flow_cache_misses, c.flow_cache_evictions,
                                  c.flow_cache_occupancy});
  }
}

void FillMatchRows(const std::vector<Dataplane::StageMatchCounters>& match,
                   DataplaneStats& s) {
  for (std::size_t i = 0; i < match.size(); ++i)
    s.match_stages.push_back(StageMatchStats{i, match[i].cam_lookups,
                                             match[i].cam_hits,
                                             match[i].tcam_lookups,
                                             match[i].tcam_hits});
}

}  // namespace

DataplaneStats CollectDataplaneStats(const Dataplane& dp) {
  DataplaneStats s;
  CollectControlCounters(dp, s);
  // One quiesce for the whole view: shard rows, tenant totals, match
  // counters and the packet total come from the same drained instant
  // (the total is not the sum of the rows — replicas destroyed by a
  // shrink retire their counts into the monotonic dataplane total).
  const Dataplane::QuiescedStats q = dp.QuiescedStatsSnapshot();
  FillShardRows(q.shards, s);
  FillMatchRows(q.match_stages, s);
  s.total_packets = q.total_packets;
  for (const Dataplane::TenantCounts& t : q.tenants)
    s.tenants.push_back(TenantStats{t.tenant, t.shard, t.forwarded, t.dropped});
  return s;
}

DataplaneStats CollectDataplaneStatsRelaxed(const Dataplane& dp) {
  DataplaneStats s;
  s.relaxed = true;
  CollectControlCounters(dp, s);
  FillShardRows(dp.CountersSnapshotRelaxed(), s);
  FillMatchRows(dp.MatchCountersSnapshotRelaxed(), s);
  s.total_packets = dp.total_packets_relaxed();
  for (const ModuleId tenant : dp.ActiveTenantsRelaxed())
    s.tenants.push_back(TenantStats{tenant, dp.ShardFor(tenant),
                                    dp.forwarded_relaxed(tenant),
                                    dp.dropped_relaxed(tenant)});
  return s;
}

std::string DumpDataplaneStats(const Dataplane& dp) {
  const DataplaneStats s = CollectDataplaneStats(dp);
  std::string out = "dataplane: " + std::to_string(dp.num_shards()) +
                    " shard(s) on " + std::to_string(s.workers) +
                    " worker thread(s), " + std::to_string(s.total_packets) +
                    " packets, " + std::to_string(s.writes_broadcast) +
                    " config writes broadcast\n";
  out += "  config epoch " + std::to_string(s.epoch) + " (" +
         std::to_string(s.pending_writes) + " staged), " +
         std::to_string(s.migrations) + " tenant migration(s), " +
         std::to_string(s.resizes) + " resize(s)\n";
  for (const ShardStats& sh : s.shards)
    out += "  shard " + std::to_string(sh.shard) + ": packets " +
           std::to_string(sh.packets) + " (fwd " +
           std::to_string(sh.forwarded) + ", drop " +
           std::to_string(sh.dropped) + ", filtered " +
           std::to_string(sh.filtered) + ") in " +
           std::to_string(sh.batches) + " batches, queue " +
           std::to_string(sh.queue_depth) + ", busy " +
           std::to_string(sh.busy_ns / 1000) + " us\n";
  for (const ShardStats& sh : s.shards) {
    if (sh.flow_cache_hits + sh.flow_cache_misses == 0) continue;
    char line[160];
    std::snprintf(line, sizeof line,
                  "  shard %zu flow cache: %llu/%llu hits (%.1f%%), "
                  "%llu evictions, %llu occupied\n",
                  sh.shard, static_cast<unsigned long long>(sh.flow_cache_hits),
                  static_cast<unsigned long long>(sh.flow_cache_hits +
                                                  sh.flow_cache_misses),
                  100.0 * sh.flow_cache_hit_ratio(),
                  static_cast<unsigned long long>(sh.flow_cache_evictions),
                  static_cast<unsigned long long>(sh.flow_cache_occupancy));
    out += line;
  }
  for (const TenantStats& t : s.tenants)
    out += "  tenant " + std::to_string(t.tenant.value()) + " @ shard " +
           std::to_string(t.shard) + ": fwd " + std::to_string(t.forwarded) +
           ", drop " + std::to_string(t.dropped) + "\n";
  for (const StageMatchStats& m : s.match_stages) {
    if (m.cam_lookups == 0 && m.tcam_lookups == 0) continue;
    char line[160];
    std::snprintf(line, sizeof line,
                  "  stage %zu match: cam %llu/%llu (%.1f%%), tcam %llu/%llu"
                  " (%.1f%%)\n",
                  m.stage, static_cast<unsigned long long>(m.cam_hits),
                  static_cast<unsigned long long>(m.cam_lookups),
                  100.0 * m.cam_hit_ratio(),
                  static_cast<unsigned long long>(m.tcam_hits),
                  static_cast<unsigned long long>(m.tcam_lookups),
                  100.0 * m.tcam_hit_ratio());
    out += line;
  }
  return out;
}

}  // namespace menshen
