// Control-plane routing-loop check (section 3.4, third static property).
//
// Modules must not loop packets through multiple devices: all modules
// share ingress bandwidth, so a routing loop lets one module consume other
// modules' capacity.  Recirculation within a device is rejected statically
// by the compiler; loops *across* devices can only be seen by the control
// plane, which knows the topology.  RoutingGraph models the device-level
// forwarding a module's routing entries induce and rejects rule sets whose
// graph contains a cycle.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace menshen {

/// One forwarding rule of a module on one device: packets for `dst_ip`
/// leaving `device` arrive at `next_device`.
struct ForwardingRule {
  std::string device;
  u32 dst_ip = 0;
  std::string next_device;
};

class RoutingGraph {
 public:
  void Add(const ForwardingRule& rule) { rules_.push_back(rule); }
  void Add(std::string device, u32 dst_ip, std::string next_device) {
    rules_.push_back({std::move(device), dst_ip, std::move(next_device)});
  }

  /// True iff, for every destination, the per-destination device graph is
  /// acyclic (a packet can never revisit a device).
  [[nodiscard]] bool IsLoopFree() const;

  /// The devices on one cycle (empty if loop-free), for diagnostics.
  [[nodiscard]] std::vector<std::string> FindCycle() const;

 private:
  std::vector<ForwardingRule> rules_;
};

}  // namespace menshen
