// Resource-sharing policies (section 3.4).
//
// The resource checker enforces *some* operator policy; the paper names
// dominant-resource fairness (DRF) and utility-based sharing as examples
// and leaves policy design to future work.  We implement both referenced
// policies over the three divisible pipeline resources — match-action
// entries per stage, stateful words per stage, and pipeline stages — so
// the admission pipeline is end-to-end: demand -> policy -> allocation ->
// admission -> load.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "compiler/allocation.hpp"
#include "compiler/module_spec.hpp"

namespace menshen {

/// Total divisible resources of one pipeline from a tenant's perspective.
struct ResourcePool {
  std::size_t stages = 3;            // tenant stages (between system halves)
  u8 first_stage = 1;
  std::size_t cam_per_stage = 16;    // match entries per stage
  std::size_t state_per_stage = 256; // stateful words per stage
};

/// One tenant's request: its demand plus a weight/utility.
struct PolicyRequest {
  ModuleId id;
  ResourceDemand demand;
  double weight = 1.0;  // utility-policy weight; ignored by DRF
};

struct PolicyResult {
  std::vector<ModuleAllocation> allocations;  // same order as requests
  std::vector<std::size_t> rejected;          // indices that did not fit
};

/// Dominant-resource-fair allocation: requests are admitted in increasing
/// order of dominant share (max over resources of demand/total) and packed
/// into contiguous CAM/segment blocks; a request that no longer fits is
/// rejected (Menshen uses admission control, not preemption).
[[nodiscard]] PolicyResult DrfAllocate(const std::vector<PolicyRequest>& reqs,
                                       const ResourcePool& pool);

/// Utility-based allocation: requests are admitted in decreasing order of
/// weight / dominant-share (greedy knapsack on utility density).
[[nodiscard]] PolicyResult UtilityAllocate(
    const std::vector<PolicyRequest>& reqs, const ResourcePool& pool);

/// The dominant share of one request under a pool: the max over the
/// divisible resources (match entries, stateful words) of demand/total.
[[nodiscard]] double DominantShare(const ResourceDemand& d,
                                   const ResourcePool& pool);

}  // namespace menshen
