// Long-running control-plane tick: load tracking, rebalancing, scaling.
//
// The paper's isolation story assumes the pipeline keeps line rate while
// tenants are added, rebalanced and reconfigured live; this controller is
// the long-running harness that drives those levers.  A periodic tick
//
//   1. reads DataplaneStats through the *relaxed* (non-quiescing) path —
//      the tick observes load without ever stalling ingress;
//   2. folds the offered load (packet delta since the previous tick) into
//      an EWMA and resizes the shard replica set at an epoch boundary
//      when the smoothed load leaves the configured per-shard band
//      (scale-up and scale-down watermarks plus a cooldown, so the
//      replica count tracks offered load without flapping);
//   3. observes per-shard busy time and derives the skew (max/mean) of
//      the tick's busy-time deltas — the per-shard hot-spot signal;
//   4. runs one Rebalancer round (EWMA per-tenant load + hysteresis),
//      keyed off that skew: a hot shard switches the round aggressive
//      (bigger move budget, dead band suspended), so hot tenants drift
//      off overloaded replicas within a tick of the hot spot appearing.
//
// Scaling and migration reuse the dataplane's quiesce machinery — both
// land at epoch boundaries, so every reconfiguration the controller makes
// is invisible to per-tenant byte streams (pinned by
// tests/test_controller.cpp).
//
// TickOnce() is public and synchronous: tests and examples drive the
// control loop deterministically; Start() runs the same tick on a
// background thread at tick_interval.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dataplane/dataplane.hpp"
#include "runtime/rebalancer.hpp"

namespace menshen {

struct ControllerConfig {
  /// Background tick period (Start()).
  std::chrono::milliseconds tick_interval{20};

  /// Rebalancer policy (EWMA + hysteresis) run once per tick.
  RebalancerConfig rebalancer{};
  bool enable_rebalancing = true;

  // --- Dynamic shard scaling ---------------------------------------------------
  bool enable_scaling = true;
  std::size_t min_shards = 1;
  /// 0 = one replica per hardware thread.
  std::size_t max_shards = 0;
  /// Offered-load target per shard per tick (packets): the EWMA of
  /// per-tick packet deltas divided by this is the desired replica count.
  double target_packets_per_shard = 4096;
  /// Grow only when the smoothed load exceeds target * shards * this
  /// factor; shrink only when it falls below target * (shards-1) * this
  /// factor.  The gap between the two watermarks is the hysteresis band
  /// that keeps the replica count from flapping at a boundary.
  double scale_up_factor = 1.25;
  double scale_down_factor = 0.5;
  /// Ticks to sit out after a resize (lets the EWMA re-converge under the
  /// new shard count before the next scaling decision).
  std::size_t scale_cooldown_ticks = 2;

  // --- Adaptive ingress queue depth --------------------------------------------
  /// Ramp the shard rings' capacity from the observed producer-stall
  /// counters: when the per-tick stall delta reaches queue_widen_stalls
  /// the depth doubles (capped at max_queue_depth); after
  /// queue_narrow_idle_ticks consecutive stall-free ticks it halves
  /// (floored at min_queue_depth).  Off by default: a depth change is a
  /// quiesced ring reallocation (Dataplane::SetIngressQueueDepth), so
  /// enabling this trades the tick's never-stall property for
  /// self-sizing rings.
  bool enable_adaptive_queue_depth = false;
  std::size_t min_queue_depth = 16;
  std::size_t max_queue_depth = 1024;
  /// Stalls per tick that trigger a widen.
  u64 queue_widen_stalls = 1;
  /// Consecutive stall-free ticks before a narrow.
  std::size_t queue_narrow_idle_ticks = 4;

  /// Optional sink for the per-tick shard-load line (queue depth + busy
  /// time per shard, read through the relaxed stats — never a quiesce).
  /// Unset: no logging.  Wire to a logger or test capture as needed.
  std::function<void(const std::string&)> log_sink;
};

class Controller {
 public:
  explicit Controller(Dataplane& dp, ControllerConfig cfg = {});
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Starts the background tick thread (idempotent).
  void Start();
  /// Stops and joins it (idempotent; also run by the destructor).
  void Stop();

  /// One shard's utilisation as observed by a tick (relaxed reads):
  /// ring occupancy now, and busy time accumulated since the last tick.
  struct ShardLoad {
    std::size_t shard = 0;
    u64 queue_depth = 0;
    u64 busy_ns_delta = 0;
    /// Flow-verdict cache activity (cumulative hits/misses, current
    /// occupancy) — the tick log's view of how much of the shard's load
    /// the memoization path absorbs.
    u64 flow_cache_hits = 0;
    u64 flow_cache_misses = 0;
    u64 flow_cache_occupancy = 0;
    /// Specialized-kernel dispatch (cumulative): packets run by a
    /// straight-line kernel vs interpreted fallback — the tick log's
    /// view of how much of the shard's uncached load the kernels take.
    u64 kernel_pkts = 0;
    u64 kernel_fallback_pkts = 0;
    /// Streaming path (cumulative): packets run to completion, producer
    /// pushes that found the streaming ring full, and batched
    /// sub-batches this worker stole from a neighbour.
    u64 stream_pkts = 0;
    u64 producer_stalls = 0;
    u64 steals = 0;
  };

  /// One tenant's merged p99 packet latency as observed by a tick
  /// (runtime/telemetry histograms, across shards and both paths).
  struct TenantP99 {
    u16 tenant = 0;
    u64 p99_ns = 0;
  };

  /// What one tick observed and did.
  struct TickReport {
    u64 tick = 0;
    u64 offered_packets = 0;  // packet delta since the previous tick
    double load_ewma = 0;     // smoothed offered load per tick
    std::size_t shards_before = 0;
    std::size_t shards_after = 0;
    std::size_t moves = 0;  // tenant migrations this tick
    /// Per-shard busy-time skew this tick: max(busy_ns_delta) over
    /// mean(busy_ns_delta) across shards (0 when no shard did work).
    /// Observed BEFORE the rebalancing round and passed to it, so a
    /// single hot shard triggers the rebalancer's aggressive mode
    /// (RebalancerConfig::skew_threshold) the same tick it is seen.
    double shard_skew = 0;
    /// Producer stalls observed this tick (delta across every shard)
    /// and the ingress ring depth after any adaptive adjustment.
    u64 producer_stalls = 0;
    std::size_t queue_depth = 0;
    /// Per-shard queue depth + busy time (groundwork for the per-shard
    /// utilisation scaling policy); logged to cfg.log_sink when set.
    std::vector<ShardLoad> shard_loads;
    /// Per-tenant p99 latency from the telemetry histograms (empty when
    /// histograms are disabled or no tenant has samples yet); appended
    /// to the tick log line.
    std::vector<TenantP99> tenant_p99;
  };
  /// One synchronous control tick — the unit the background thread runs.
  /// Safe to call concurrently with traffic; serialized against itself.
  TickReport TickOnce();

  [[nodiscard]] u64 ticks() const {
    return ticks_.load(std::memory_order_acquire);
  }
  [[nodiscard]] u64 scale_ups() const {
    return scale_ups_.load(std::memory_order_acquire);
  }
  [[nodiscard]] u64 scale_downs() const {
    return scale_downs_.load(std::memory_order_acquire);
  }
  [[nodiscard]] u64 moves_applied() const {
    return moves_applied_.load(std::memory_order_acquire);
  }
  [[nodiscard]] u64 depth_widens() const {
    return depth_widens_.load(std::memory_order_acquire);
  }
  [[nodiscard]] u64 depth_narrows() const {
    return depth_narrows_.load(std::memory_order_acquire);
  }
  [[nodiscard]] double load_ewma() const;

 private:
  void RunLoop();

  Dataplane& dp_;
  ControllerConfig cfg_;
  Rebalancer rebalancer_;

  /// Serializes TickOnce (background thread vs direct calls).
  mutable std::mutex tick_mutex_;
  u64 last_total_packets_ = 0;
  double load_ewma_ = 0;
  std::size_t cooldown_ = 0;
  /// Previous tick's cumulative busy_ns per shard (for the delta).
  std::vector<u64> last_busy_ns_;
  /// Adaptive queue depth state: previous tick's cumulative stall total
  /// and the consecutive stall-free tick count.
  u64 last_producer_stalls_ = 0;
  std::size_t idle_depth_ticks_ = 0;

  std::atomic<u64> ticks_{0};
  std::atomic<u64> scale_ups_{0};
  std::atomic<u64> scale_downs_{0};
  std::atomic<u64> moves_applied_{0};
  std::atomic<u64> depth_widens_{0};
  std::atomic<u64> depth_narrows_{0};

  std::atomic<bool> running_{false};
  /// Serializes Start/Stop (guards thread_ assignment vs join).
  std::mutex lifecycle_mutex_;
  std::thread thread_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
};

}  // namespace menshen
