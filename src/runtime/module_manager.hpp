// Module manager — the Menshen control plane (sections 3.4, 5.1).
//
// Owns admission control and the load/update/unload lifecycle:
//   * admission: a module is admitted only if its module ID fits the
//     overlay tables and its allocation does not overlap any admitted
//     module's CAM blocks or stateful segments (resource isolation: a
//     table entry belongs to at most one module);
//   * load/update: drives the secure-reconfiguration protocol through the
//     software-to-hardware interface (bitmap quiesce + daisy chain +
//     counter verification);
//   * unload: wipes the module's CAM block, overlay rows and stateful
//     segment so nothing leaks to the next tenant assigned those
//     resources.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "compiler/codegen.hpp"
#include "config/sw_hw_interface.hpp"
#include "pipeline/pipeline.hpp"

namespace menshen {

struct AdmissionResult {
  bool admitted = false;
  std::string reason;  // empty when admitted
};

class ModuleManager {
 public:
  explicit ModuleManager(Pipeline& pipeline)
      : pipeline_(&pipeline), chain_(pipeline), interface_(pipeline, chain_) {}

  /// Checks whether `alloc` can be admitted next to the already admitted
  /// modules (no overlap in CAM blocks or stateful segments; ID free and
  /// within the overlay depth; stages exist).
  [[nodiscard]] AdmissionResult CheckAdmission(
      const ModuleAllocation& alloc) const;

  /// Admits and loads a compiled module.  Throws std::invalid_argument if
  /// the module did not compile; returns the admission failure otherwise.
  /// On success the returned report carries the configuration cost.
  struct LoadResult {
    AdmissionResult admission;
    std::optional<ConfigReport> report;
  };
  LoadResult Load(const CompiledModule& module, const ModuleAllocation& alloc);

  /// Reconfigures an already loaded module with a new compiled image
  /// (same ID, same allocation).  Other modules keep processing packets
  /// throughout — only this module's packets are dropped while its
  /// configuration is in flight.
  std::optional<ConfigReport> Update(const CompiledModule& module);

  /// Unloads a module and scrubs every resource it owned.
  bool Unload(ModuleId id);

  [[nodiscard]] bool IsLoaded(ModuleId id) const {
    return loaded_.contains(id);
  }
  [[nodiscard]] std::size_t loaded_count() const { return loaded_.size(); }
  [[nodiscard]] const ModuleAllocation* AllocationOf(ModuleId id) const;

  [[nodiscard]] DaisyChain& chain() { return chain_; }
  [[nodiscard]] SwHwInterface& interface() { return interface_; }

  /// Maximum number of modules this pipeline can still admit if each new
  /// module needs `cam_per_stage` entries in every stage (the section 5.2
  /// "how many modules can be packed" arithmetic).
  [[nodiscard]] std::size_t MaxAdditionalModules(
      std::size_t cam_per_stage) const;

 private:
  Pipeline* pipeline_;
  DaisyChain chain_;
  SwHwInterface interface_;
  std::map<ModuleId, ModuleAllocation> loaded_;
};

}  // namespace menshen
