// Stats-driven tenant rebalancing across dataplane shard replicas.
//
// The dataplane steers each tenant's packets to one pipeline replica; the
// default placement is a static tenant-ID hash, which can pile several hot
// tenants onto one shard while others idle (the CODA observation: placement
// of computation relative to state is a first-class performance knob).  The
// Rebalancer closes the loop: each round it reads the per-tenant counters
// through the dataplane's *relaxed* (non-quiescing) stats path, folds the
// delta since the last round into an exponentially weighted moving average
// (EWMA) of per-tenant load, and greedily migrates the hottest tenants off
// the most loaded replica onto the least loaded one.
//
// Two mechanisms keep a bursty tenant from ping-ponging between shards
// when rounds are driven by a fast control-plane tick (runtime/controller):
//
//   * the EWMA smooths single-round bursts, so one hot tick does not look
//     like a persistently hot tenant (ewma_alpha weights the newest delta);
//   * hysteresis — a tenant that just moved is frozen for
//     move_cooldown_rounds, and a move is only planned when the tenant's
//     smoothed load is at least hysteresis_band of the mean shard load
//     (micro-moves whose benefit is inside the noise band are skipped).
//
// Migration is cheap — configuration is replicated on every shard, so a
// move is a steering-table update plus a quiesced copy of the tenant's
// stateful segments — and it happens at an epoch boundary so per-tenant
// ordering is preserved.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "dataplane/dataplane.hpp"

namespace menshen {

struct RebalancerConfig {
  /// A round only moves tenants while the busiest shard's smoothed load
  /// exceeds this multiple of the mean shard load.
  double imbalance_threshold = 1.25;
  /// Upper bound on migrations per round (each is a quiesce point).
  std::size_t max_moves_per_round = 2;
  /// Weight of the newest round's delta in the per-tenant load EWMA
  /// (1.0 degenerates to the old cumulative-delta policy).
  double ewma_alpha = 0.4;
  /// A move must shift at least this fraction of the mean shard load —
  /// the dead band that keeps noise-sized imbalances from churning
  /// placement.
  double hysteresis_band = 0.10;
  /// Rounds a tenant stays frozen after it migrates (counting the round
  /// it moved in), so consecutive ticks cannot bounce it back.
  std::size_t move_cooldown_rounds = 2;
  /// Per-shard skew (max busy-time / mean busy-time, as observed by the
  /// controller from TickReport::shard_loads) at or above which a round
  /// goes aggressive: the move budget rises to skew_max_moves and the
  /// hysteresis dead band is suspended — a single hot shard is a
  /// measured fact, not noise, so the dead band only delays the
  /// response.  Cooldown freezes still apply (ping-pong protection is
  /// about repeated moves of one tenant, not about round aggression).
  double skew_threshold = 1.5;
  /// Move budget for an aggressive (skewed) round.
  std::size_t skew_max_moves = 4;
};

/// One planned (or applied) tenant move.
struct Migration {
  ModuleId tenant;
  std::size_t from = 0;
  std::size_t to = 0;
  double load = 0;  // the tenant's smoothed (EWMA) load motivating the move
};

class Rebalancer {
 public:
  explicit Rebalancer(RebalancerConfig cfg = {}) : cfg_(cfg) {}

  /// Computes the moves a round would make, without applying them.
  /// Load metric: per-tenant EWMA of forwarded+dropped deltas between
  /// *applied* rounds (seeded with the first observation).  Reads only
  /// the dataplane's relaxed counters — never quiesces the engine.
  /// `shard_skew` is the caller-observed max/mean per-shard busy-time
  /// ratio (0 = unknown/balanced); at or above skew_threshold the round
  /// plans aggressively (see RebalancerConfig).
  [[nodiscard]] std::vector<Migration> Plan(const Dataplane& dp,
                                            double shard_skew = 0.0) const;

  /// Plans and applies one round: each migration quiesces inside the
  /// dataplane, and a round that moved anything commits an epoch so the
  /// new placement takes effect at a clean epoch boundary.  Returns the
  /// applied moves.  A round that plans nothing touches no lock the data
  /// path cares about.  `shard_skew` as in Plan.
  std::vector<Migration> Rebalance(Dataplane& dp, double shard_skew = 0.0);

  [[nodiscard]] u64 rounds() const { return rounds_; }

 private:
  struct TenantLoad {
    ModuleId tenant;
    std::size_t shard = 0;
    double load = 0;   // EWMA-smoothed
    u64 cumulative = 0;  // raw counter snapshot backing the next delta
  };
  /// Smoothed per-tenant loads as of now (const: does not fold the
  /// observation into the stored EWMA — Rebalance does that when the
  /// round is applied).
  [[nodiscard]] std::vector<TenantLoad> SmoothedLoads(
      const Dataplane& dp) const;
  [[nodiscard]] std::vector<Migration> PlanFrom(
      const Dataplane& dp, std::vector<TenantLoad>& tenants,
      double shard_skew) const;

  RebalancerConfig cfg_;
  /// Cumulative per-tenant counts at the end of the last applied round;
  /// the next round's delta is measured against this snapshot.
  std::unordered_map<u16, u64> last_seen_;
  /// Per-tenant EWMA load as of the last applied round.
  std::unordered_map<u16, double> ewma_;
  /// Round in which a tenant last migrated (hysteresis freeze).
  std::unordered_map<u16, u64> last_moved_round_;
  u64 rounds_ = 0;
};

}  // namespace menshen
