// Stats-driven tenant rebalancing across dataplane shard replicas.
//
// The dataplane steers each tenant's packets to one pipeline replica; the
// default placement is a static tenant-ID hash, which can pile several hot
// tenants onto one shard while others idle (the CODA observation: placement
// of computation relative to state is a first-class performance knob).  The
// Rebalancer closes the loop: it reads the per-tenant counters that
// runtime/stats aggregates, computes each tenant's recent load (the delta
// since the previous round), and greedily migrates the hottest tenants off
// the most loaded replica onto the least loaded one.  Migration is cheap —
// configuration is replicated on every shard, so a move is a steering-table
// update plus a quiesced copy of the tenant's stateful segments — and it
// happens at an epoch boundary so per-tenant ordering is preserved.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "dataplane/dataplane.hpp"

namespace menshen {

struct RebalancerConfig {
  /// A round only moves tenants while the busiest shard's recent load
  /// exceeds this multiple of the mean shard load.
  double imbalance_threshold = 1.25;
  /// Upper bound on migrations per round (each is a quiesce point).
  std::size_t max_moves_per_round = 2;
};

/// One planned (or applied) tenant move.
struct Migration {
  ModuleId tenant;
  std::size_t from = 0;
  std::size_t to = 0;
  u64 load = 0;  // the tenant's recent-load metric that motivated the move
};

class Rebalancer {
 public:
  explicit Rebalancer(RebalancerConfig cfg = {}) : cfg_(cfg) {}

  /// Computes the moves a round would make, without applying them.
  /// Load metric: per-tenant forwarded+dropped packets since the last
  /// *applied* round (cumulative counts on the first round).
  [[nodiscard]] std::vector<Migration> Plan(const Dataplane& dp) const;

  /// Plans and applies one round: each migration quiesces inside the
  /// dataplane, and a round that moved anything commits an epoch so the
  /// new placement takes effect at a clean epoch boundary.  Returns the
  /// applied moves.
  std::vector<Migration> Rebalance(Dataplane& dp);

  [[nodiscard]] u64 rounds() const { return rounds_; }

 private:
  struct TenantLoad {
    ModuleId tenant;
    std::size_t shard = 0;
    u64 load = 0;
  };
  [[nodiscard]] std::vector<TenantLoad> RecentLoads(const Dataplane& dp) const;

  RebalancerConfig cfg_;
  /// Cumulative per-tenant counts at the end of the last applied round;
  /// the next round's load is the delta against this snapshot.
  std::unordered_map<u16, u64> last_seen_;
  u64 rounds_ = 0;
};

}  // namespace menshen
