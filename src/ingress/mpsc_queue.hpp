// Bounded lock-free MPSC ring queue — the ingress submission primitive.
//
// Any number of producer threads push batch work items concurrently; one
// consumer (the shard's worker thread) pops them in FIFO order.  This is
// the per-forwarding-thread input-queue shape line-rate software
// dataplanes use (cf. ndn-dpdk's per-fwd crossbar of DPDK rings): the
// producers never take a lock on the hot path, and the single consumer
// owns the head cursor outright.
//
// The implementation is Vyukov's bounded queue specialised to one
// consumer: every slot carries a sequence number that encodes whether it
// is free (seq == pos), full (seq == pos + 1), or still being written.
// Producers claim a slot by CAS on the tail cursor and publish the value
// with a release store of the slot sequence; the consumer reads with an
// acquire load, so a popped value is fully constructed.  Capacity is
// rounded up to a power of two; TryPush on a full ring returns false —
// backpressure is the caller's policy (the dataplane spins/yields, which
// bounds queue memory instead of growing it).
//
// The tail CAS uses seq_cst so the dataplane's sleep/wake protocol can
// reason about a single total order between "producer advanced tail" and
// "consumer parked itself" (see ShardContext in dataplane.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/types.hpp"

namespace menshen {

template <typename T>
class MpscRingQueue {
 public:
  explicit MpscRingQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      slots_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpscRingQueue(const MpscRingQueue&) = delete;
  MpscRingQueue& operator=(const MpscRingQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Multi-producer push.  Returns false when the ring is full.
  bool TryPush(T&& value) {
    u64 pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const u64 seq = slot.seq.load(std::memory_order_acquire);
      const i64 dif = static_cast<i64>(seq) - static_cast<i64>(pos);
      if (dif == 0) {
        // Slot free at this position: claim it.  seq_cst so the claim is
        // ordered against the consumer's park flag (dataplane doorbell).
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // lapped: the ring is full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer pop.  Returns false when the ring is empty (or the
  /// head item is claimed but not yet published — the caller retries).
  bool TryPop(T& out) {
    const u64 pos = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & mask_];
    const u64 seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<i64>(seq) - static_cast<i64>(pos + 1) != 0) return false;
    out = std::move(slot.value);
    slot.value = T{};  // drop payload refs eagerly (tickets, packet buffers)
    slot.seq.store(pos + mask_ + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Conditional single-consumer pop: pops the head item only when
  /// `pred(item)` holds; returns false when the ring is empty, the head
  /// is still being published, or the predicate rejects it.  Same
  /// consumer-side contract as TryPop — callers that are not the owning
  /// worker (work stealing) must serialize against it externally (the
  /// shard's pop mutex).
  template <typename Pred>
  bool TryPopIf(T& out, Pred&& pred) {
    const u64 pos = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & mask_];
    const u64 seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<i64>(seq) - static_cast<i64>(pos + 1) != 0) return false;
    if (!pred(static_cast<const T&>(slot.value))) return false;
    out = std::move(slot.value);
    slot.value = T{};
    slot.seq.store(pos + mask_ + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Reinitializes the ring at a new capacity.  Quiescent-only: the
  /// caller guarantees the ring is empty and no producer or consumer is
  /// touching it (the dataplane's adaptive-depth resize runs it under
  /// the exclusive engine gate with every worker stopped).
  void Reset(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      slots_[i].seq.store(i, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
    head_.store(0, std::memory_order_relaxed);
  }

  /// Approximate occupancy: exact when quiescent, a safe over/under
  /// estimate while producers race.  empty() is used by the drain path
  /// (which first excludes producers) and the worker's park predicate.
  [[nodiscard]] std::size_t approx_size() const {
    const u64 tail = tail_.load(std::memory_order_seq_cst);
    const u64 head = head_.load(std::memory_order_seq_cst);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }
  [[nodiscard]] bool empty() const { return approx_size() == 0; }

 private:
  struct Slot {
    std::atomic<u64> seq{0};
    T value{};
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<u64> tail_{0};  // producers (CAS)
  alignas(64) std::atomic<u64> head_{0};  // single consumer
};

}  // namespace menshen
