// Streaming work unit — one producer burst of arena packets steered to
// one shard.  Unlike ingress::ShardWork there is no ticket and no gather
// array: the worker runs the burst to completion and pushes the packets
// straight onto its egress queue, so nothing rendezvouses with anything.
#pragma once

#include <vector>

namespace menshen {

class ArenaPacket;  // packet/arena.hpp

namespace ingress {

struct StreamWork {
  /// Borrowed arena buffers, in the producer's per-tenant arrival order.
  /// Ownership transfers to the shard worker on enqueue and to the
  /// egress queue after processing.
  std::vector<ArenaPacket*> pkts;
};

}  // namespace ingress
}  // namespace menshen
