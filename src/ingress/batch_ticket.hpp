// Batch submission tickets — the unit of work on the async ingress path.
//
// A producer thread wraps one packet batch in a BatchTicket and hands it
// to Dataplane::Submit, which scatters the batch into per-shard
// sub-batches and enqueues one ShardWork item per involved shard.  The
// ticket's shared state gathers the per-shard results back into the
// original batch order; whichever shard worker finishes last completes
// the ticket — fulfilling the future and invoking the optional
// completion callback — so producers never rendezvous with each other
// and the dispatcher thread of the old fork/join design disappears.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "packet/packet.hpp"
#include "pipeline/pipeline.hpp"

namespace menshen {

/// One batch handed to Dataplane::Submit.  The optional callback runs
/// exactly once, on whichever thread completes the ticket (a shard
/// worker, or the submitting thread after it released the engine gate),
/// before the future becomes ready.  It must not call back into ANY
/// dataplane operation that takes the engine gate — quiesced ops
/// (CommitEpoch, MigrateTenant, ResizeShards, exact stats) and the
/// relaxed stats reads alike: when it runs on a shard worker, that
/// worker is exactly what a concurrently waiting quiesce is draining,
/// and even a shared-gate read deadlocks against a waiting writer.
/// Stash results and act from your own thread instead.
struct BatchTicket {
  std::vector<Packet> batch;
  std::function<void(const std::vector<PipelineResult>&)> on_complete;
  /// TSC stamp taken by Submit at ingress; shard workers subtract it at
  /// completion to feed the batched latency histograms (runtime/
  /// telemetry).  0 when histograms are disabled.
  u64 ingress_tsc = 0;
};

namespace ingress {

/// Shared completion state of one submitted ticket.  Shard workers write
/// disjoint index sets of `results`, then synchronize on shards_pending
/// (release on decrement, acquire on the last one), so the completing
/// thread observes every sub-batch's writes.
struct TicketState {
  std::vector<PipelineResult> results;
  std::atomic<std::size_t> shards_pending{0};
  std::promise<std::vector<PipelineResult>> promise;
  std::function<void(const std::vector<PipelineResult>&)> on_complete;
  /// First processing error wins; the completing thread re-throws it
  /// through the promise instead of delivering results.
  std::atomic<bool> failed{false};
  std::exception_ptr error;

  /// Called by each shard worker when its sub-batch is done (and by
  /// Submit itself for empty batches).  The last caller completes the
  /// ticket.
  void FinishOneShard() {
    if (shards_pending.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    if (failed.load(std::memory_order_acquire)) {
      promise.set_exception(error);
      return;
    }
    if (on_complete) on_complete(results);
    promise.set_value(std::move(results));
  }

  void RecordError(std::exception_ptr err) {
    // Publication of `error` to the completing thread rides the
    // shards_pending acq_rel chain (the recorder decrements after
    // writing), not this flag: the exchange only elects the first error.
    if (!failed.exchange(true, std::memory_order_acq_rel))
      error = std::move(err);
  }
};

/// One shard's slice of a submitted ticket: the packets steered to that
/// shard, plus where each result goes in the ticket's gather array.
struct ShardWork {
  std::shared_ptr<TicketState> ticket;
  std::vector<Packet> packets;
  std::vector<std::size_t> indices;
  /// Set by the scatter when every tenant group in this sub-batch is
  /// provably stateless (and the filter is order-insensitive), so an
  /// idle neighbour may execute it on its own replica — the
  /// work-stealing eligibility bit (see Dataplane::TryStealWork).
  bool stealable = false;
  /// Copy of the ticket's ingress TSC stamp (the executing shard reads
  /// it without touching the shared ticket state).
  u64 ingress_tsc = 0;
};

}  // namespace ingress
}  // namespace menshen
