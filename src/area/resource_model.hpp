// FPGA and ASIC area/resource models (Table 4 and section 5.2).
//
// What is real vs. fitted (see DESIGN.md's substitution table):
//   * The *primitive census* — how many bits each Menshen isolation
//     primitive stores, how many tables exist, how the CAM widens — is
//     computed exactly from the Table 5 hardware parameters.
//   * The *technology constants* — LUTs per CAM bit-entry, the per-
//     component mm^2 of the baseline RMT design, the per-component
//     Menshen multipliers — are fitted to the numbers the paper reports
//     from Vivado synthesis (Table 4) and Synopsys DC + FreePDK45
//     (section 5.2).  We cannot run those tools here; the model's job is
//     to reproduce the paper's *relative* overheads from the census and
//     the fitted baseline, and the benches print paper-vs-model rows.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace menshen {

// --- Primitive census ---------------------------------------------------------

struct IsolationCensus {
  // Bits stored by each overlay table instance (per pipeline).
  std::size_t parser_table_bits = 0;
  std::size_t deparser_table_bits = 0;
  std::size_t key_extractor_bits_per_stage = 0;
  std::size_t key_mask_bits_per_stage = 0;
  std::size_t segment_table_bits_per_stage = 0;
  // Extra CAM bit-entries from appending the 12-bit module ID.
  std::size_t extra_cam_bit_entries_per_stage = 0;
  std::size_t stages = 0;
  // Packet-filter register file (bitmap + counter).
  std::size_t filter_register_bits = 0;

  [[nodiscard]] std::size_t total_overlay_bits() const;
  [[nodiscard]] std::size_t total_extra_cam_bit_entries() const {
    return extra_cam_bit_entries_per_stage * stages;
  }
};

/// The census of the paper's configuration (Table 5 parameters).
[[nodiscard]] IsolationCensus MenshenCensus();

// --- FPGA model (Table 4) ------------------------------------------------------

struct FpgaRow {
  std::string design;
  double luts = 0.0;
  double luts_pct = 0.0;   // of the device
  double brams = 0.0;
  double brams_pct = 0.0;
};

struct FpgaDevice {
  std::string name;
  double total_luts;
  double total_brams;
};

/// Devices the paper targets.
[[nodiscard]] FpgaDevice NetFpgaSumeDevice();   // Virtex-7 XC7V690T
[[nodiscard]] FpgaDevice AlveoU250Device();

/// LUT delta of Menshen over the single-module RMT baseline, derived from
/// the census with fitted conversion constants (the overlay tables map to
/// distributed/block RAM whose LUT-side cost is the addressing logic; the
/// widened SRL-based CAM costs LUTs per bit-entry).
[[nodiscard]] double MenshenLutDelta(const IsolationCensus& census,
                                     std::size_t bus_bits);

/// The six rows of Table 4 (model values; paper values in the bench).
[[nodiscard]] std::vector<FpgaRow> Table4Model();

// --- ASIC model (section 5.2) ----------------------------------------------------

struct AsicComponent {
  std::string name;
  double rmt_mm2 = 0.0;
  double menshen_mm2 = 0.0;
  [[nodiscard]] double overhead_pct() const {
    return (menshen_mm2 / rmt_mm2 - 1.0) * 100.0;
  }
};

struct AsicSummary {
  std::vector<AsicComponent> components;
  double rmt_total_mm2 = 0.0;
  double menshen_total_mm2 = 0.0;
  double pipeline_overhead_pct = 0.0;
  /// Lookup tables + processing logic are at most ~50% of a switch chip
  /// (section 5.2), so chip-level overhead is halved.
  double chip_overhead_pct = 0.0;
};

/// Fitted per-component decomposition at FreePDK45 / 1 GHz.
[[nodiscard]] AsicSummary AsicAreaModel();

/// Timing-feasibility model at 1 GHz: per-element critical paths (fitted
/// gate-depth estimates) and whether each meets the 1000 ps period.
struct TimingPath {
  std::string element;
  double delay_ps = 0.0;
  [[nodiscard]] bool meets_1ghz() const { return delay_ps <= 1000.0; }
};
[[nodiscard]] std::vector<TimingPath> AsicTimingModel();

}  // namespace menshen
