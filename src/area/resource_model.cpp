#include "area/resource_model.hpp"

#include "pipeline/params.hpp"

namespace menshen {

std::size_t IsolationCensus::total_overlay_bits() const {
  return parser_table_bits + deparser_table_bits +
         stages * (key_extractor_bits_per_stage + key_mask_bits_per_stage +
                   segment_table_bits_per_stage);
}

IsolationCensus MenshenCensus() {
  using namespace params;
  IsolationCensus c;
  c.parser_table_bits = kParserEntryBits * kOverlayTableDepth;    // 160*32
  c.deparser_table_bits = kParserEntryBits * kOverlayTableDepth;
  c.key_extractor_bits_per_stage =
      kKeyExtractorEntryBits * kOverlayTableDepth;                 // 38*32
  c.key_mask_bits_per_stage = kKeyMaskEntryBits * kOverlayTableDepth;
  c.segment_table_bits_per_stage =
      kSegmentEntryBits * kOverlayTableDepth;                      // 16*32
  c.extra_cam_bit_entries_per_stage = kModuleIdBits * kCamDepth;   // 12*16
  c.stages = kNumStages;
  c.filter_register_bits = 32 + 32;  // bitmap + reconfig packet counter
  return c;
}

FpgaDevice NetFpgaSumeDevice() {
  // Virtex-7 XC7V690T: 433,200 LUTs, 1,470 BRAM36.
  return {"NetFPGA SUME (XC7V690T)", 433200.0, 1470.0};
}

FpgaDevice AlveoU250Device() {
  // Alveo U250 (XCU250): 1,728,000 LUTs, 2,688 BRAM36 equivalents.
  return {"Alveo U250 (XCU250)", 1728000.0, 2688.0};
}

double MenshenLutDelta(const IsolationCensus& census, std::size_t bus_bits) {
  // Fitted conversion constants (see header): the widened CAM is SRL-
  // based, so each extra bit-entry costs LUT fabric; overlay tables sit
  // in RAM primitives and only pay addressing/readout logic per table
  // instance; the packet filter adds a compare-and-drop datapath whose
  // width follows the bus.
  constexpr double kLutPerCamBitEntry = 0.0635;    // SRL CAM fabric
  constexpr double kLutPerOverlayTable = 2.0;      // address/readout logic
  constexpr double kLutPerFilterBusByte = 1.78;    // bus-wide compare/drop

  const double cam =
      kLutPerCamBitEntry *
      static_cast<double>(census.total_extra_cam_bit_entries());
  const double tables =
      kLutPerOverlayTable * static_cast<double>(2 + 3 * census.stages);
  const double filter =
      kLutPerFilterBusByte * static_cast<double>(bus_bits / 8) +
      static_cast<double>(census.filter_register_bits) / 8.0;
  return cam + tables + filter;
}

std::vector<FpgaRow> Table4Model() {
  const IsolationCensus census = MenshenCensus();
  const FpgaDevice sume = NetFpgaSumeDevice();
  const FpgaDevice u250 = AlveoU250Device();

  // Baseline platform and RMT-pipeline costs are taken from the paper's
  // synthesis runs (they depend on vendor IP we cannot synthesize); the
  // Menshen rows are baseline + the census-derived delta.  The overlay
  // tables fold into existing RAM primitives, matching the paper's
  // observation that Menshen adds no Block RAM over RMT.
  const double rmt_netfpga_luts = 200573.0, rmt_netfpga_brams = 641.0;
  const double rmt_corundum_luts = 235686.0, rmt_corundum_brams = 316.0;

  const double menshen_netfpga_luts =
      rmt_netfpga_luts + MenshenLutDelta(census, 256);
  const double menshen_corundum_luts =
      rmt_corundum_luts + MenshenLutDelta(census, 512);

  const auto pct = [](double v, double total) { return 100.0 * v / total; };
  return {
      {"NetFPGA reference switch", 42325.0, pct(42325.0, sume.total_luts),
       245.5, pct(245.5, sume.total_brams)},
      {"RMT on NetFPGA", rmt_netfpga_luts,
       pct(rmt_netfpga_luts, sume.total_luts), rmt_netfpga_brams,
       pct(rmt_netfpga_brams, sume.total_brams)},
      {"Menshen on NetFPGA", menshen_netfpga_luts,
       pct(menshen_netfpga_luts, sume.total_luts), rmt_netfpga_brams,
       pct(rmt_netfpga_brams, sume.total_brams)},
      {"Corundum", 61463.0, pct(61463.0, u250.total_luts), 349.0,
       pct(349.0, u250.total_brams)},
      {"RMT on Corundum", rmt_corundum_luts,
       pct(rmt_corundum_luts, u250.total_luts), rmt_corundum_brams,
       pct(rmt_corundum_brams, u250.total_brams)},
      {"Menshen on Corundum", menshen_corundum_luts,
       pct(menshen_corundum_luts, u250.total_luts), rmt_corundum_brams,
       pct(rmt_corundum_brams, u250.total_brams)},
  };
}

AsicSummary AsicAreaModel() {
  // Fitted baseline decomposition of the 5-stage RMT pipeline at
  // FreePDK45/1 GHz (totals must reproduce the paper's 9.71 mm^2) and the
  // paper's measured per-component Menshen multipliers: parser +18.5%,
  // deparser +7%, stage +20.9%.  Packet buffers are unchanged by
  // Menshen; the packet filter is new.
  AsicSummary s;
  const double filter_rmt = 0.05, filter_menshen = 0.06;
  const double parser_rmt = 0.90, parser_mul = 1.185;
  const double deparser_rmt = 1.20, deparser_mul = 1.07;
  const double stage_rmt = 0.80, stage_mul = 1.209;
  const double buffers = 3.56;

  s.components.push_back({"packet filter", filter_rmt, filter_menshen});
  s.components.push_back({"parser", parser_rmt, parser_rmt * parser_mul});
  s.components.push_back(
      {"deparser", deparser_rmt, deparser_rmt * deparser_mul});
  for (std::size_t i = 0; i < params::kNumStages; ++i)
    s.components.push_back({"stage " + std::to_string(i), stage_rmt,
                            stage_rmt * stage_mul});
  s.components.push_back({"packet buffers", buffers, buffers});

  for (const auto& c : s.components) {
    s.rmt_total_mm2 += c.rmt_mm2;
    s.menshen_total_mm2 += c.menshen_mm2;
  }
  s.pipeline_overhead_pct =
      (s.menshen_total_mm2 / s.rmt_total_mm2 - 1.0) * 100.0;
  s.chip_overhead_pct = s.pipeline_overhead_pct * 0.5;
  return s;
}

std::vector<TimingPath> AsicTimingModel() {
  // Per-element critical-path estimates at FreePDK45 (fitted; the paper
  // reports only that the whole design meets 1 GHz).  Menshen's additions
  // are SRAM reads (overlay tables) and a slightly wider CAM compare —
  // both pipelined, so every path stays under the 1000 ps period.
  return {
      {"packet filter (port compare + bitmap)", 420.0},
      {"parser table read + field extract", 880.0},
      {"key extractor mux tree", 760.0},
      {"key mask AND + module-ID append", 350.0},
      {"CAM compare (205 bits)", 940.0},
      {"VLIW action RAM read", 900.0},
      {"ALU (add/sub + crossbar)", 830.0},
      {"segment table read + address add", 520.0},
      {"stateful SRAM read-modify-write (pipelined)", 950.0},
      {"deparser merge", 870.0},
  };
}

}  // namespace menshen
