#include "compiler/printer.hpp"

namespace menshen {

namespace {

const char* CmpOpText(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNeq: return "!=";
    case CmpOp::kGt: return ">";
    case CmpOp::kLt: return "<";
    case CmpOp::kGe: return ">=";
    case CmpOp::kLe: return "<=";
    case CmpOp::kNone: return "==";  // unreachable for parsed specs
  }
  return "==";
}

std::string PrintStatement(const Statement& st) {
  using K = Statement::Kind;
  switch (st.kind) {
    case K::kAddAssign:
      return st.dst + " = " + PrintValue(st.a) + " + " + PrintValue(st.b) +
             ";";
    case K::kSubAssign:
      return st.dst + " = " + PrintValue(st.a) + " - " + PrintValue(st.b) +
             ";";
    case K::kSetAssign:
      return st.dst + " = " + PrintValue(st.a) + ";";
    case K::kLoad:
      return st.dst + " = " + st.state + "[" + PrintValue(st.addr) + "];";
    case K::kStore:
      return st.state + "[" + PrintValue(st.addr) + "] = " +
             PrintValue(st.a) + ";";
    case K::kLoadIncr:
      return st.dst + " = incr(" + st.state + "[" + PrintValue(st.addr) +
             "]);";
    case K::kSetPort:
      return "port(" + PrintValue(st.a) + ");";
    case K::kSetMcast:
      return "mcast(" + PrintValue(st.a) + ");";
    case K::kDrop:
      return "drop();";
    case K::kRecirculate:
      return "recirculate();";
    case K::kMetaStatWrite:
      return "meta." + st.meta_stat + " = " + PrintValue(st.a) + ";";
  }
  return ";";
}

}  // namespace

std::string PrintValue(const Value& v) {
  switch (v.kind) {
    case Value::Kind::kConst:
      return std::to_string(v.constant);
    case Value::Kind::kField:
    case Value::Kind::kParam:
      return v.name;
  }
  return "0";
}

std::string PrintModuleDsl(const ModuleSpec& spec) {
  std::string out = "module " + spec.name + " {\n";

  for (const auto& f : spec.fields) {
    if (f.scratch)
      out += "  scratch " + f.name + " : " + std::to_string(f.width) + ";\n";
    else
      out += "  field " + f.name + " : " + std::to_string(f.width) + " @ " +
             std::to_string(f.offset) + ";\n";
  }
  for (const auto& s : spec.states)
    out += "  state " + s.name + "[" + std::to_string(s.size) + "];\n";

  for (const auto& a : spec.actions) {
    out += "  action " + a.name;
    if (!a.params.empty()) {
      out += "(";
      for (std::size_t i = 0; i < a.params.size(); ++i) {
        if (i) out += ", ";
        out += a.params[i];
      }
      out += ")";
    }
    out += " {\n";
    for (const auto& st : a.statements)
      out += "    " + PrintStatement(st) + "\n";
    out += "  }\n";
  }

  for (const auto& t : spec.tables) {
    out += "  table " + t.name + " {\n";
    out += "    key = { ";
    for (std::size_t i = 0; i < t.keys.size(); ++i) {
      if (i) out += ", ";
      out += t.keys[i];
    }
    out += " };\n";
    if (t.predicate)
      out += "    predicate = " + PrintValue(t.predicate->a) + " " +
             CmpOpText(t.predicate->op) + " " + PrintValue(t.predicate->b) +
             ";\n";
    out += "    actions = { ";
    for (std::size_t i = 0; i < t.actions.size(); ++i) {
      if (i) out += ", ";
      out += t.actions[i];
    }
    out += " };\n";
    out += "    size = " + std::to_string(t.size) + ";\n";
    if (t.ternary) out += "    match = ternary;\n";
    out += "  }\n";
  }
  out += "}\n";
  return out;
}

}  // namespace menshen
