// Tokenizer for the Menshen module DSL (see dsl_parser.hpp for the
// grammar).  Tracks line numbers so diagnostics point at source lines.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace menshen {

enum class TokenKind : u8 {
  kIdent,
  kInt,
  kLBrace, kRBrace,
  kLParen, kRParen,
  kLBracket, kRBracket,
  kAssign,      // =
  kSemicolon,
  kColon,
  kAt,
  kComma,
  kDot,
  kPlus, kMinus,
  kEq, kNeq, kGe, kLe, kGt, kLt,  // comparison operators
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  u64 value = 0;  // for kInt
  int line = 1;

  [[nodiscard]] std::string Describe() const;
};

/// Tokenizes `source`.  `#` and `//` start line comments.  Throws
/// std::invalid_argument (with a line number) on unrecognized characters
/// or malformed integer literals.
[[nodiscard]] std::vector<Token> Lex(std::string_view source);

}  // namespace menshen
