#include "compiler/dsl_parser.hpp"

#include <stdexcept>

#include "compiler/lexer.hpp"

namespace menshen {

namespace {

/// Parse failure used for local recovery; the message is already in diags.
struct ParseBail {};

class DslParser {
 public:
  DslParser(std::vector<Token> tokens, Diagnostics& diags)
      : tokens_(std::move(tokens)), diags_(diags) {}

  ModuleSpec Parse() {
    ModuleSpec spec;
    try {
      ExpectIdent("module");
      spec.name = ExpectAnyIdent();
      Expect(TokenKind::kLBrace);
      while (!At(TokenKind::kRBrace) && !At(TokenKind::kEnd)) ParseItem(spec);
      Expect(TokenKind::kRBrace);
      if (!At(TokenKind::kEnd))
        Error("trailing input after module definition");
    } catch (const ParseBail&) {
      // Unrecoverable; diagnostics already recorded.
    }
    return spec;
  }

 private:
  // --- token plumbing ------------------------------------------------------
  [[nodiscard]] const Token& Cur() const { return tokens_[pos_]; }
  [[nodiscard]] bool At(TokenKind k) const { return Cur().kind == k; }
  [[nodiscard]] bool AtIdent(std::string_view s) const {
    return Cur().kind == TokenKind::kIdent && Cur().text == s;
  }
  const Token& Advance() { return tokens_[pos_++]; }

  [[noreturn]] void Error(const std::string& msg) {
    diags_.Error("parse", msg + " (found " + Cur().Describe() + ")",
                 Cur().line);
    throw ParseBail{};
  }

  const Token& Expect(TokenKind k) {
    if (!At(k)) Error("unexpected token");
    return Advance();
  }
  void ExpectIdent(std::string_view s) {
    if (!AtIdent(s)) Error("expected '" + std::string(s) + "'");
    Advance();
  }
  std::string ExpectAnyIdent() {
    if (!At(TokenKind::kIdent)) Error("expected identifier");
    return Advance().text;
  }
  u64 ExpectInt() {
    if (!At(TokenKind::kInt)) Error("expected integer");
    return Advance().value;
  }

  // --- grammar productions --------------------------------------------------
  void ParseItem(ModuleSpec& spec) {
    if (AtIdent("field")) {
      ParseField(spec);
    } else if (AtIdent("scratch")) {
      ParseScratch(spec);
    } else if (AtIdent("state")) {
      ParseState(spec);
    } else if (AtIdent("action")) {
      ParseAction(spec);
    } else if (AtIdent("table")) {
      ParseTable(spec);
    } else {
      Error("expected 'field', 'state', 'action' or 'table'");
    }
  }

  void ParseField(ModuleSpec& spec) {
    const int line = Cur().line;
    Advance();  // 'field'
    FieldDef f;
    f.name = ExpectAnyIdent();
    Expect(TokenKind::kColon);
    const u64 width = ExpectInt();
    Expect(TokenKind::kAt);
    const u64 offset = ExpectInt();
    Expect(TokenKind::kSemicolon);
    if (width != 2 && width != 4 && width != 6)
      diags_.Error("field.width",
                   "field '" + f.name + "' width must be 2, 4 or 6 bytes",
                   line);
    if (offset >= 128)
      diags_.Error("field.offset",
                   "field '" + f.name +
                       "' offset must lie in the 128-byte parser window",
                   line);
    f.width = static_cast<u8>(width);
    f.offset = static_cast<u8>(offset);
    if (spec.FindField(f.name) != nullptr)
      diags_.Error("field.duplicate", "duplicate field '" + f.name + "'",
                   line);
    spec.fields.push_back(std::move(f));
  }

  void ParseScratch(ModuleSpec& spec) {
    const int line = Cur().line;
    Advance();  // 'scratch'
    FieldDef f;
    f.scratch = true;
    f.name = ExpectAnyIdent();
    Expect(TokenKind::kColon);
    const u64 width = ExpectInt();
    Expect(TokenKind::kSemicolon);
    if (width != 2 && width != 4 && width != 6)
      diags_.Error("field.width",
                   "scratch '" + f.name + "' width must be 2, 4 or 6 bytes",
                   line);
    f.width = static_cast<u8>(width);
    if (spec.FindField(f.name) != nullptr)
      diags_.Error("field.duplicate", "duplicate field '" + f.name + "'",
                   line);
    spec.fields.push_back(std::move(f));
  }

  void ParseState(ModuleSpec& spec) {
    const int line = Cur().line;
    Advance();  // 'state'
    StateDef s;
    s.name = ExpectAnyIdent();
    Expect(TokenKind::kLBracket);
    const u64 size = ExpectInt();
    Expect(TokenKind::kRBracket);
    Expect(TokenKind::kSemicolon);
    if (size == 0 || size > 0xFFFF)
      diags_.Error("state.size", "state '" + s.name + "' has invalid size",
                   line);
    s.size = static_cast<u16>(size);
    if (spec.FindState(s.name) != nullptr)
      diags_.Error("state.duplicate", "duplicate state '" + s.name + "'",
                   line);
    spec.states.push_back(std::move(s));
  }

  Value ParseValue(const ActionDef* action) {
    if (At(TokenKind::kInt)) return Value::Const(Advance().value);
    const int line = Cur().line;
    const std::string name = ExpectAnyIdent();
    if (action != nullptr) {
      for (const auto& p : action->params)
        if (p == name) return Value::Param(name);
    }
    // Field references are resolved against the spec by the checker; here
    // we only record the name.
    (void)line;
    return Value::Field(name);
  }

  void ParseAction(ModuleSpec& spec) {
    const int line = Cur().line;
    Advance();  // 'action'
    ActionDef a;
    a.line = line;
    a.name = ExpectAnyIdent();
    if (At(TokenKind::kLParen)) {
      Advance();
      if (!At(TokenKind::kRParen)) {
        a.params.push_back(ExpectAnyIdent());
        while (At(TokenKind::kComma)) {
          Advance();
          a.params.push_back(ExpectAnyIdent());
        }
      }
      Expect(TokenKind::kRParen);
    }
    Expect(TokenKind::kLBrace);
    while (!At(TokenKind::kRBrace) && !At(TokenKind::kEnd))
      a.statements.push_back(ParseStatement(a));
    Expect(TokenKind::kRBrace);
    if (spec.FindAction(a.name) != nullptr)
      diags_.Error("action.duplicate", "duplicate action '" + a.name + "'",
                   line);
    spec.actions.push_back(std::move(a));
  }

  Statement ParseStatement(const ActionDef& action) {
    Statement st;
    st.line = Cur().line;

    if (AtIdent("port")) {
      Advance();
      Expect(TokenKind::kLParen);
      st.kind = Statement::Kind::kSetPort;
      st.a = ParseValue(&action);
      Expect(TokenKind::kRParen);
      Expect(TokenKind::kSemicolon);
      return st;
    }
    if (AtIdent("mcast")) {
      Advance();
      Expect(TokenKind::kLParen);
      st.kind = Statement::Kind::kSetMcast;
      st.a = ParseValue(&action);
      Expect(TokenKind::kRParen);
      Expect(TokenKind::kSemicolon);
      return st;
    }
    if (AtIdent("drop")) {
      Advance();
      Expect(TokenKind::kLParen);
      Expect(TokenKind::kRParen);
      Expect(TokenKind::kSemicolon);
      st.kind = Statement::Kind::kDrop;
      return st;
    }
    if (AtIdent("recirculate")) {
      Advance();
      Expect(TokenKind::kLParen);
      Expect(TokenKind::kRParen);
      Expect(TokenKind::kSemicolon);
      st.kind = Statement::Kind::kRecirculate;
      return st;
    }
    if (AtIdent("meta")) {
      Advance();
      Expect(TokenKind::kDot);
      st.kind = Statement::Kind::kMetaStatWrite;
      st.meta_stat = ExpectAnyIdent();
      Expect(TokenKind::kAssign);
      st.a = ParseValue(&action);
      Expect(TokenKind::kSemicolon);
      return st;
    }

    // ident ... : assignment or state store.
    const std::string lhs = ExpectAnyIdent();
    if (At(TokenKind::kLBracket)) {
      // state store:  name[addr] = value ;
      Advance();
      st.kind = Statement::Kind::kStore;
      st.state = lhs;
      st.addr = ParseValue(&action);
      Expect(TokenKind::kRBracket);
      Expect(TokenKind::kAssign);
      st.a = ParseValue(&action);
      Expect(TokenKind::kSemicolon);
      return st;
    }

    Expect(TokenKind::kAssign);
    st.dst = lhs;

    if (AtIdent("incr")) {
      Advance();
      Expect(TokenKind::kLParen);
      st.kind = Statement::Kind::kLoadIncr;
      st.state = ExpectAnyIdent();
      Expect(TokenKind::kLBracket);
      st.addr = ParseValue(&action);
      Expect(TokenKind::kRBracket);
      Expect(TokenKind::kRParen);
      Expect(TokenKind::kSemicolon);
      return st;
    }

    // Could be a state load:  dst = name[addr] ;
    if (At(TokenKind::kIdent)) {
      const std::size_t save = pos_;
      const std::string rhs = ExpectAnyIdent();
      if (At(TokenKind::kLBracket)) {
        Advance();
        st.kind = Statement::Kind::kLoad;
        st.state = rhs;
        st.addr = ParseValue(&action);
        Expect(TokenKind::kRBracket);
        Expect(TokenKind::kSemicolon);
        return st;
      }
      pos_ = save;  // plain value expression; re-parse below
    }

    st.a = ParseValue(&action);
    if (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      st.kind = At(TokenKind::kPlus) ? Statement::Kind::kAddAssign
                                     : Statement::Kind::kSubAssign;
      Advance();
      st.b = ParseValue(&action);
    } else {
      st.kind = Statement::Kind::kSetAssign;
    }
    Expect(TokenKind::kSemicolon);
    return st;
  }

  void ParseTable(ModuleSpec& spec) {
    const int line = Cur().line;
    Advance();  // 'table'
    TableDef t;
    t.line = line;
    t.name = ExpectAnyIdent();
    Expect(TokenKind::kLBrace);
    while (!At(TokenKind::kRBrace) && !At(TokenKind::kEnd)) {
      if (AtIdent("key")) {
        Advance();
        Expect(TokenKind::kAssign);
        Expect(TokenKind::kLBrace);
        t.keys.push_back(ExpectAnyIdent());
        while (At(TokenKind::kComma)) {
          Advance();
          t.keys.push_back(ExpectAnyIdent());
        }
        Expect(TokenKind::kRBrace);
        Expect(TokenKind::kSemicolon);
      } else if (AtIdent("predicate")) {
        Advance();
        Expect(TokenKind::kAssign);
        PredicateDef p;
        p.a = ParseValue(nullptr);
        p.op = ParseCmpOp();
        p.b = ParseValue(nullptr);
        Expect(TokenKind::kSemicolon);
        t.predicate = p;
      } else if (AtIdent("actions")) {
        Advance();
        Expect(TokenKind::kAssign);
        Expect(TokenKind::kLBrace);
        t.actions.push_back(ExpectAnyIdent());
        while (At(TokenKind::kComma)) {
          Advance();
          t.actions.push_back(ExpectAnyIdent());
        }
        Expect(TokenKind::kRBrace);
        Expect(TokenKind::kSemicolon);
      } else if (AtIdent("size")) {
        Advance();
        Expect(TokenKind::kAssign);
        t.size = static_cast<std::size_t>(ExpectInt());
        Expect(TokenKind::kSemicolon);
      } else if (AtIdent("match")) {
        Advance();
        Expect(TokenKind::kAssign);
        const std::string kind = ExpectAnyIdent();
        if (kind == "ternary")
          t.ternary = true;
        else if (kind == "exact")
          t.ternary = false;
        else
          Error("match kind must be 'exact' or 'ternary'");
        Expect(TokenKind::kSemicolon);
      } else {
        Error("expected 'key', 'predicate', 'actions', 'size' or 'match'");
      }
    }
    Expect(TokenKind::kRBrace);
    if (spec.FindTable(t.name) != nullptr)
      diags_.Error("table.duplicate", "duplicate table '" + t.name + "'",
                   line);
    spec.tables.push_back(std::move(t));
  }

  CmpOp ParseCmpOp() {
    switch (Cur().kind) {
      case TokenKind::kEq: Advance(); return CmpOp::kEq;
      case TokenKind::kNeq: Advance(); return CmpOp::kNeq;
      case TokenKind::kGt: Advance(); return CmpOp::kGt;
      case TokenKind::kLt: Advance(); return CmpOp::kLt;
      case TokenKind::kGe: Advance(); return CmpOp::kGe;
      case TokenKind::kLe: Advance(); return CmpOp::kLe;
      default: Error("expected comparison operator");
    }
  }

  std::vector<Token> tokens_;
  Diagnostics& diags_;
  std::size_t pos_ = 0;
};

}  // namespace

ModuleSpec ParseModuleDsl(std::string_view source, Diagnostics& diags) {
  std::vector<Token> tokens;
  try {
    tokens = Lex(source);
  } catch (const std::invalid_argument& e) {
    diags.Error("lex", e.what());
    return {};
  }
  DslParser parser(std::move(tokens), diags);
  return parser.Parse();
}

}  // namespace menshen
