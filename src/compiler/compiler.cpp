#include "compiler/compiler.hpp"

namespace menshen {

CompiledModule CompileDsl(std::string_view source,
                          const ModuleAllocation& alloc,
                          std::size_t placeholder_entries) {
  CompiledModule m;
  m.spec_ = ParseModuleDsl(source, m.diags_);
  if (!m.diags_.ok()) return m;  // frontend failed; no backend run
  m.Build(alloc, placeholder_entries);
  return m;
}

}  // namespace menshen
