#include "compiler/module_spec.hpp"

namespace menshen {

const FieldDef* ModuleSpec::FindField(const std::string& n) const {
  for (const auto& f : fields)
    if (f.name == n) return &f;
  return nullptr;
}

const StateDef* ModuleSpec::FindState(const std::string& n) const {
  for (const auto& s : states)
    if (s.name == n) return &s;
  return nullptr;
}

const ActionDef* ModuleSpec::FindAction(const std::string& n) const {
  for (const auto& a : actions)
    if (a.name == n) return &a;
  return nullptr;
}

const TableDef* ModuleSpec::FindTable(const std::string& n) const {
  for (const auto& t : tables)
    if (t.name == n) return &t;
  return nullptr;
}

ResourceDemand ComputeDemand(const ModuleSpec& spec) {
  ResourceDemand d;
  for (const auto& f : spec.fields) {
    switch (f.width) {
      case 2: ++d.containers_2b; break;
      case 4: ++d.containers_4b; break;
      case 6: ++d.containers_6b; break;
      default: break;  // the checker reports invalid widths
    }
  }
  for (const auto& f : spec.fields)
    if (!f.scratch) ++d.parser_actions;
  d.stages = spec.tables.size();
  for (const auto& t : spec.tables) d.match_entries += t.size;
  for (const auto& s : spec.states) d.state_words += s.size;
  return d;
}

}  // namespace menshen
