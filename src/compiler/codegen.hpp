// Compiler backend: lowers a (merged) ModuleSpec to the Figure 7
// configuration formats.
//
// Outputs of a successful compile:
//   * PHV allocation         field -> container
//   * parser/deparser entry  one parsing action per field; the deparser
//                            writes back only fields some action modifies
//   * per-stage key extractor + key mask + segment-table entries
//   * table placements       table i of the module -> allocated stage i
// plus an entry API that the control plane uses to install match-action
// entries (CAM + VLIW pairs) at run time, and the compile-time generation
// of a fresh, unique placeholder entry set (the paper generates these on
// every compile so no information leaks from a previous module — this is
// also what makes compile time scale with entry count in Figure 8).
#pragma once

#include <array>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/diagnostics.hpp"
#include "compiler/allocation.hpp"
#include "compiler/checker.hpp"
#include "compiler/module_spec.hpp"
#include "pipeline/config_write.hpp"
#include "pipeline/entries.hpp"

namespace menshen {

struct TablePlacement {
  std::string table;
  u8 stage = 0;  // hardware stage index
  StageAllocation alloc;
  /// Key layout: which field occupies each of the six key slots
  /// ({1st6B, 2nd6B, 1st4B, 2nd4B, 1st2B, 2nd2B}); empty = unused.
  std::array<std::string, 6> slot_fields{};
  bool has_predicate = false;
  bool ternary = false;  // Appendix B ternary table
  /// Entries installed so far (logical; wraps modulo alloc.cam_count when
  /// benchmarking beyond the prototype depth, mirroring footnote 5).
  std::size_t entries_installed = 0;
};

/// Where a stateful array lives: its owning stage and its base offset
/// within the module's segment there.
struct StatePlacement {
  u8 stage = 0;
  u16 base = 0;
};

class CompiledModule {
 public:
  [[nodiscard]] bool ok() const { return diags_.ok(); }
  [[nodiscard]] const Diagnostics& diags() const { return diags_; }
  [[nodiscard]] ModuleId id() const { return id_; }
  [[nodiscard]] const ModuleSpec& spec() const { return spec_; }

  /// Overlay configuration (parser, deparser, key extractor, key mask,
  /// segment tables) — everything except match-action entries.
  [[nodiscard]] const std::vector<ConfigWrite>& static_writes() const {
    return static_writes_;
  }
  /// Match-action entry writes accumulated so far (placeholders from
  /// compile time plus any AddEntry calls).
  [[nodiscard]] const std::vector<ConfigWrite>& entry_writes() const {
    return entry_writes_;
  }
  /// Full configuration: static writes followed by entry writes.
  [[nodiscard]] std::vector<ConfigWrite> AllWrites() const;

  [[nodiscard]] const TablePlacement* Placement(
      const std::string& table) const;
  [[nodiscard]] std::optional<ContainerRef> ContainerFor(
      const std::string& field) const;
  [[nodiscard]] const std::map<std::string, StatePlacement>& state_layout()
      const {
    return state_layout_;
  }

  /// Installs a match-action entry: `keys` maps key-field names to values,
  /// `predicate` gives the expected predicate bit (required iff the table
  /// has one), `action` + `args` select and parameterize the action.
  /// Returns the two writes ({CAM, VLIW}) and also records them.
  /// Reports problems in diags() and returns an empty vector on error.
  std::vector<ConfigWrite> AddEntry(const std::string& table,
                                    const std::map<std::string, u64>& keys,
                                    std::optional<bool> predicate,
                                    const std::string& action,
                                    const std::vector<u64>& args);

  /// Installs a ternary entry (Appendix B): `masks` maps key-field names
  /// to value masks (1-bits participate; a field absent from `masks` is
  /// fully masked-in).  Entry priority within the module follows
  /// insertion order (lower address wins).  Only valid on tables declared
  /// `match = ternary`.
  std::vector<ConfigWrite> AddTernaryEntry(
      const std::string& table, const std::map<std::string, u64>& keys,
      const std::map<std::string, u64>& masks, std::optional<bool> predicate,
      const std::string& action, const std::vector<u64>& args);

  /// The lookup key AddEntry would install for these key values — exposed
  /// so tests can cross-validate against Stage::MaskedKeyFor.
  [[nodiscard]] BitVec KeyFor(const std::string& table,
                              const std::map<std::string, u64>& keys,
                              std::optional<bool> predicate) const;

  [[nodiscard]] std::size_t unique_entries_generated() const {
    return unique_entries_generated_;
  }

 private:
  friend CompiledModule Compile(const ModuleSpec&, const ModuleAllocation&,
                                std::size_t);
  friend CompiledModule CompileStack(
      const std::vector<ModuleSpec>&,
      const std::vector<std::vector<StageAllocation>>&, ModuleId,
      std::size_t);
  friend CompiledModule CompileDsl(std::string_view, const ModuleAllocation&,
                                   std::size_t);

  void Build(const ModuleAllocation& alloc, std::size_t placeholder_entries);
  [[nodiscard]] Operand8 LowerPredicateOperand(const Value& v);
  [[nodiscard]] VliwEntry LowerAction(const ActionDef& action,
                                      const std::vector<u64>& args,
                                      const TablePlacement& placement);
  [[nodiscard]] u16 ResolveImmediate(const Value& v, const ActionDef& action,
                                     const std::vector<u64>& args, int line);
  [[nodiscard]] u8 ResolveFlat(const std::string& field, int line);

  ModuleId id_;
  ModuleSpec spec_;
  Diagnostics diags_;
  std::vector<ConfigWrite> static_writes_;
  std::vector<ConfigWrite> entry_writes_;
  std::map<std::string, ContainerRef> containers_;
  std::map<std::string, StatePlacement> state_layout_;
  std::vector<TablePlacement> placements_;
  std::size_t unique_entries_generated_ = 0;
};

/// Compiles one module against its allocation.  `placeholder_entries`
/// overrides the per-table placeholder entry count generated at compile
/// time (0 = use each table's declared size).  Diagnostics (including
/// static/resource check failures) are in the result's diags().
[[nodiscard]] CompiledModule Compile(const ModuleSpec& spec,
                                     const ModuleAllocation& alloc,
                                     std::size_t placeholder_entries = 0);

/// Compiles several specs under ONE module ID into disjoint stage sets —
/// how the system-level module is placed in the first and last stages
/// around a tenant's tables (section 3.4).  `stage_sets[i]` gives the
/// stage allocations for specs[i]; container space is shared across the
/// stack.  Field names must be unique across the stack.
[[nodiscard]] CompiledModule CompileStack(
    const std::vector<ModuleSpec>& specs,
    const std::vector<std::vector<StageAllocation>>& stage_sets, ModuleId id,
    std::size_t placeholder_entries = 0);

}  // namespace menshen
