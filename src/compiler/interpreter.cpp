#include "compiler/interpreter.hpp"

#include <set>
#include <stdexcept>

#include "packet/headers.hpp"
#include "phv/phv.hpp"

namespace menshen {

namespace {

u64 TruncateToWidth(u64 value, u8 width_bytes) {
  if (width_bytes >= 8) return value;
  return value & ((u64{1} << (8 * width_bytes)) - 1);
}

u64 ParseFieldFromPacket(const Packet& pkt, const FieldDef& f) {
  u64 v = 0;
  for (u8 i = 0; i < f.width; ++i) {
    const std::size_t off = static_cast<std::size_t>(f.offset) + i;
    const u8 byte = (off < kParserWindowBytes && off < pkt.size())
                        ? pkt.bytes().u8_at(off)
                        : 0;
    v = (v << 8) | byte;
  }
  return v;
}

}  // namespace

u64 Interpreter::ReadField(const std::map<std::string, u64>& phv,
                           const std::string& name) const {
  const auto it = phv.find(name);
  if (it == phv.end())
    throw std::logic_error("interpreter: unknown field " + name);
  return it->second;
}

u64 Interpreter::EvalValue(const std::map<std::string, u64>& phv,
                           const Value& v, const ActionDef& action,
                           const std::vector<u64>& args) const {
  switch (v.kind) {
    case Value::Kind::kConst:
      return v.constant;
    case Value::Kind::kField:
      return ReadField(phv, v.name);
    case Value::Kind::kParam:
      for (std::size_t i = 0; i < action.params.size(); ++i)
        if (action.params[i] == v.name) return args.at(i);
      throw std::logic_error("interpreter: unknown param " + v.name);
  }
  return 0;
}

void Interpreter::Run(Packet& pkt) {
  // --- parse ---------------------------------------------------------------
  std::map<std::string, u64> phv;
  for (const auto& f : spec_.fields)
    phv[f.name] = f.scratch ? 0 : ParseFieldFromPacket(pkt, f);

  bool drop = false;
  u16 egress_port = 0;
  u16 mcast_group = 0;

  // --- tables in program order ----------------------------------------------
  for (const auto& table : spec_.tables) {
    // Evaluate the predicate over the current PHV, like the key extractor.
    std::optional<bool> pred_value;
    if (table.predicate) {
      static const ActionDef kNoAction{};
      const u64 a = EvalValue(phv, table.predicate->a, kNoAction, {});
      const u64 b = EvalValue(phv, table.predicate->b, kNoAction, {});
      switch (table.predicate->op) {
        case CmpOp::kNone: pred_value = false; break;
        case CmpOp::kEq: pred_value = a == b; break;
        case CmpOp::kNeq: pred_value = a != b; break;
        case CmpOp::kGt: pred_value = a > b; break;
        case CmpOp::kLt: pred_value = a < b; break;
        case CmpOp::kGe: pred_value = a >= b; break;
        case CmpOp::kLe: pred_value = a <= b; break;
      }
    }

    const auto eit = entries_.find(table.name);
    if (eit == entries_.end()) continue;
    const InterpEntry* match = nullptr;
    for (const auto& entry : eit->second) {
      bool ok = true;
      for (const auto& [field, expect] : entry.keys)
        if (ReadField(phv, field) != expect) ok = false;
      if (table.predicate &&
          entry.predicate.value_or(false) != pred_value.value_or(false))
        ok = false;
      if (ok) {
        match = &entry;
        break;
      }
    }
    if (match == nullptr) continue;  // miss: no-op

    const ActionDef* action = spec_.FindAction(match->action);
    if (action == nullptr) continue;

    // VLIW semantics: all reads against the pre-action snapshot.
    const std::map<std::string, u64> snapshot = phv;
    for (const Statement& st : action->statements) {
      const auto dst_width = [&](const std::string& name) -> u8 {
        const FieldDef* f = spec_.FindField(name);
        return f == nullptr ? 8 : f->width;
      };
      const auto ensure = [&](const std::string& sname) -> std::vector<u64>& {
        const StateDef* sd = spec_.FindState(sname);
        auto& a = state_[sname];
        if (sd != nullptr && a.size() < sd->size) a.resize(sd->size, 0);
        return a;
      };
      switch (st.kind) {
        case Statement::Kind::kAddAssign:
        case Statement::Kind::kSubAssign: {
          const bool add = st.kind == Statement::Kind::kAddAssign;
          const bool a_field = st.a.kind == Value::Kind::kField;
          const bool b_field = st.b.kind == Value::Kind::kField;
          u64 result = 0;
          if (!a_field && !b_field) {
            // Mirrors the lowering: constant folding happens in the
            // 16-bit immediate domain before the container write.
            const u64 va = EvalValue(snapshot, st.a, *action, match->args);
            const u64 vb = EvalValue(snapshot, st.b, *action, match->args);
            result = add ? (va + vb) & 0xFFFF : (va - vb) & 0xFFFF;
          } else {
            const u64 va = EvalValue(snapshot, st.a, *action, match->args);
            const u64 vb = EvalValue(snapshot, st.b, *action, match->args);
            result = add ? va + vb : va - vb;
          }
          phv[st.dst] = TruncateToWidth(result, dst_width(st.dst));
          break;
        }
        case Statement::Kind::kSetAssign:
          phv[st.dst] = TruncateToWidth(
              EvalValue(snapshot, st.a, *action, match->args),
              dst_width(st.dst));
          break;
        case Statement::Kind::kLoad:
        case Statement::Kind::kLoadIncr: {
          auto& a = ensure(st.state);
          const u64 idx = EvalValue(snapshot, st.addr, *action, match->args);
          u64 loaded = 0;
          if (idx < a.size()) {
            if (st.kind == Statement::Kind::kLoadIncr)
              loaded = ++a[idx];
            else
              loaded = a[idx];
          }
          phv[st.dst] = TruncateToWidth(loaded, dst_width(st.dst));
          break;
        }
        case Statement::Kind::kStore: {
          auto& a = ensure(st.state);
          const u64 idx = EvalValue(snapshot, st.addr, *action, match->args);
          if (idx < a.size())
            a[idx] = EvalValue(snapshot, st.a, *action, match->args);
          break;
        }
        case Statement::Kind::kSetPort:
          egress_port = static_cast<u16>(
              EvalValue(snapshot, st.a, *action, match->args));
          break;
        case Statement::Kind::kSetMcast:
          mcast_group = static_cast<u16>(
              EvalValue(snapshot, st.a, *action, match->args));
          break;
        case Statement::Kind::kDrop:
          drop = true;
          break;
        case Statement::Kind::kRecirculate:
        case Statement::Kind::kMetaStatWrite:
          throw std::logic_error(
              "interpreter: forbidden statement (checker bypassed?)");
      }
    }
  }

  // --- deparse ---------------------------------------------------------------
  // Same rule as the compiler's deparser entry: write back exactly the
  // non-scratch fields some action of the module assigns.
  std::set<std::string> written;
  for (const auto& a : spec_.actions)
    for (const auto& st : a.statements)
      if (!st.dst.empty()) written.insert(st.dst);
  for (const auto& f : spec_.fields) {
    if (f.scratch || !written.contains(f.name)) continue;
    const u64 v = phv.at(f.name);
    for (u8 i = 0; i < f.width; ++i) {
      const std::size_t off = static_cast<std::size_t>(f.offset) + i;
      if (off < kParserWindowBytes && off < pkt.size())
        pkt.bytes().set_u8(off,
                           static_cast<u8>(v >> (8 * (f.width - 1 - i))));
    }
  }

  if (drop) {
    pkt.disposition = Disposition::kDrop;
  } else if (mcast_group != 0) {
    pkt.disposition = Disposition::kMulticast;
  } else {
    pkt.disposition = Disposition::kForward;
    pkt.egress_port = egress_port;
  }
}

u64 Interpreter::state(const std::string& array, u64 index) const {
  const auto it = state_.find(array);
  if (it == state_.end() || index >= it->second.size()) return 0;
  return it->second[index];
}

}  // namespace menshen
