// ModuleSpec -> DSL source pretty-printer.
//
// The inverse of dsl_parser: prints a ModuleSpec as DSL text that parses
// back to an equal spec (round-trip property, tested).  Used for
// diagnostics ("show me what the compiler thinks my module is"), for
// dumping generated fuzz modules, and by the control plane to archive
// the exact program a tenant loaded.
#pragma once

#include <string>

#include "compiler/module_spec.hpp"

namespace menshen {

/// Renders one value as DSL text.
[[nodiscard]] std::string PrintValue(const Value& v);

/// Renders a whole module as DSL source.  Guarantees
/// `ParseModuleDsl(PrintModuleDsl(spec)) == spec` for any spec the
/// parser could have produced (field order, statement order and all
/// flags preserved).
[[nodiscard]] std::string PrintModuleDsl(const ModuleSpec& spec);

}  // namespace menshen
