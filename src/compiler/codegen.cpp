#include "compiler/codegen.hpp"

#include <algorithm>
#include <set>

#include "pipeline/tcam.hpp"

namespace menshen {

namespace {

/// Fields with dynamic (field-sourced) state addressing in this table's
/// actions force their arrays to segment base 0.
std::set<std::string> DynamicallyAddressedStates(const ModuleSpec& spec,
                                                 const TableDef& table) {
  std::set<std::string> dyn;
  for (const auto& an : table.actions) {
    const ActionDef* a = spec.FindAction(an);
    if (a == nullptr) continue;
    for (const auto& st : a->statements)
      if (!st.state.empty() && st.addr.kind == Value::Kind::kField)
        dyn.insert(st.state);
  }
  return dyn;
}

std::set<std::string> StatesOf(const ModuleSpec& spec, const TableDef& table) {
  std::set<std::string> out;
  for (const auto& an : table.actions) {
    const ActionDef* a = spec.FindAction(an);
    if (a == nullptr) continue;
    for (const auto& st : a->statements)
      if (!st.state.empty()) out.insert(st.state);
  }
  return out;
}

}  // namespace

std::vector<ConfigWrite> CompiledModule::AllWrites() const {
  std::vector<ConfigWrite> out = static_writes_;
  out.insert(out.end(), entry_writes_.begin(), entry_writes_.end());
  return out;
}

const TablePlacement* CompiledModule::Placement(
    const std::string& table) const {
  for (const auto& p : placements_)
    if (p.table == table) return &p;
  return nullptr;
}

std::optional<ContainerRef> CompiledModule::ContainerFor(
    const std::string& field) const {
  const auto it = containers_.find(field);
  if (it == containers_.end()) return std::nullopt;
  return it->second;
}

u8 CompiledModule::ResolveFlat(const std::string& field, int line) {
  const auto it = containers_.find(field);
  if (it == containers_.end()) {
    diags_.Error("codegen.unknown-field",
                 "no container for field '" + field + "'", line);
    return 0;
  }
  return static_cast<u8>(it->second.flat());
}

u16 CompiledModule::ResolveImmediate(const Value& v, const ActionDef& action,
                                     const std::vector<u64>& args, int line) {
  u64 value = 0;
  switch (v.kind) {
    case Value::Kind::kConst:
      value = v.constant;
      break;
    case Value::Kind::kParam: {
      const auto it =
          std::find(action.params.begin(), action.params.end(), v.name);
      if (it == action.params.end()) {
        diags_.Error("codegen.unknown-param",
                     "unknown action parameter '" + v.name + "'", line);
        return 0;
      }
      const std::size_t idx =
          static_cast<std::size_t>(it - action.params.begin());
      if (idx >= args.size()) {
        diags_.Error("entry.missing-arg",
                     "entry does not bind parameter '" + v.name + "'", line);
        return 0;
      }
      value = args[idx];
      break;
    }
    case Value::Kind::kField:
      diags_.Error("codegen.internal",
                   "field operand where an immediate is required", line);
      return 0;
  }
  if (value > 0xFFFF) {
    diags_.Error("codegen.immediate-range",
                 "immediate " + std::to_string(value) +
                     " exceeds the 16-bit action immediate",
                 line);
    return 0;
  }
  return static_cast<u16>(value);
}

VliwEntry CompiledModule::LowerAction(const ActionDef& action,
                                      const std::vector<u64>& args,
                                      const TablePlacement& placement) {
  VliwEntry vliw;
  std::array<bool, kNumAluContainers> used{};

  const auto claim = [&](u8 slot, AluAction a, int line) {
    if (used[slot]) {
      diags_.Error("codegen.slot-conflict",
                   "two statements target ALU slot " + std::to_string(slot),
                   line);
      return;
    }
    used[slot] = true;
    vliw.slots[slot] = a;
  };

  // Stores occupy any free ALU (their slot's output is not written).
  // They are placed AFTER every writing statement has claimed its slot —
  // a store grabbing a slot greedily could otherwise shadow a later
  // assignment to that slot's container — preferring the source
  // container's own slot for readability.
  struct PendingStore {
    u8 preferred;
    AluAction action;
    int line;
  };
  std::vector<PendingStore> pending_stores;
  const auto claim_store = [&](u8 preferred, AluAction a, int line) {
    pending_stores.push_back({preferred, a, line});
  };
  const auto flush_stores = [&] {
    for (const auto& ps : pending_stores) {
      u8 slot = ps.preferred;
      if (used[slot]) {
        slot = kNumAluContainers;  // sentinel: search
        for (u8 i = 0; i < kNumAluContainers; ++i)
          if (!used[i]) {
            slot = i;
            break;
          }
        if (slot == kNumAluContainers) {
          diags_.Error("codegen.slot-conflict",
                       "no free ALU slot for a store", ps.line);
          return;
        }
      }
      used[slot] = true;
      vliw.slots[slot] = ps.action;
    }
  };

  const auto state_base = [&](const std::string& sname, int line) -> u16 {
    const auto it = state_layout_.find(sname);
    if (it == state_layout_.end()) {
      diags_.Error("codegen.unknown-state",
                   "no placement for state '" + sname + "'", line);
      return 0;
    }
    if (it->second.stage != placement.stage)
      diags_.Error("codegen.state-stage",
                   "state '" + sname + "' lives in stage " +
                       std::to_string(it->second.stage) +
                       " but is used from stage " +
                       std::to_string(placement.stage),
                   line);
    return it->second.base;
  };

  for (const Statement& st : action.statements) {
    AluAction a;
    switch (st.kind) {
      case Statement::Kind::kAddAssign:
      case Statement::Kind::kSubAssign: {
        const bool add = st.kind == Statement::Kind::kAddAssign;
        const bool a_field = st.a.kind == Value::Kind::kField;
        const bool b_field = st.b.kind == Value::Kind::kField;
        const u8 dst = ResolveFlat(st.dst, st.line);
        if (a_field && b_field) {
          a.op = add ? AluOp::kAdd : AluOp::kSub;
          a.container1 = ResolveFlat(st.a.name, st.line);
          a.container2 = ResolveFlat(st.b.name, st.line);
        } else if (a_field) {
          a.op = add ? AluOp::kAddi : AluOp::kSubi;
          a.container1 = ResolveFlat(st.a.name, st.line);
          a.immediate = ResolveImmediate(st.b, action, args, st.line);
        } else if (b_field && add) {
          a.op = AluOp::kAddi;  // commute: imm + field
          a.container1 = ResolveFlat(st.b.name, st.line);
          a.immediate = ResolveImmediate(st.a, action, args, st.line);
        } else if (b_field && !add) {
          diags_.Error("codegen.const-minus-field",
                       "'<imm> - <field>' has no single-ALU lowering; "
                       "rewrite as a staged computation",
                       st.line);
          continue;
        } else {
          const u64 va = ResolveImmediate(st.a, action, args, st.line);
          const u64 vb = ResolveImmediate(st.b, action, args, st.line);
          a.op = AluOp::kSet;
          a.immediate =
              static_cast<u16>(add ? (va + vb) & 0xFFFF : (va - vb) & 0xFFFF);
        }
        claim(dst, a, st.line);
        break;
      }
      case Statement::Kind::kSetAssign: {
        const u8 dst = ResolveFlat(st.dst, st.line);
        if (st.a.kind == Value::Kind::kField) {
          a.op = AluOp::kCopy;
          a.container1 = ResolveFlat(st.a.name, st.line);
        } else {
          a.op = AluOp::kSet;
          a.immediate = ResolveImmediate(st.a, action, args, st.line);
        }
        claim(dst, a, st.line);
        break;
      }
      case Statement::Kind::kLoad:
      case Statement::Kind::kLoadIncr: {
        const bool incr = st.kind == Statement::Kind::kLoadIncr;
        const u8 dst = ResolveFlat(st.dst, st.line);
        const u16 base = state_base(st.state, st.line);
        if (st.addr.kind == Value::Kind::kField) {
          a.op = incr ? AluOp::kLoaddc : AluOp::kLoadc;
          a.container2 = ResolveFlat(st.addr.name, st.line);
        } else {
          a.op = incr ? AluOp::kLoadd : AluOp::kLoad;
          a.immediate = static_cast<u16>(
              base + ResolveImmediate(st.addr, action, args, st.line));
        }
        claim(dst, a, st.line);
        break;
      }
      case Statement::Kind::kStore: {
        const u16 base = state_base(st.state, st.line);
        const u8 src = ResolveFlat(st.a.name, st.line);
        if (st.addr.kind == Value::Kind::kField) {
          a.op = AluOp::kStorec;
          a.container1 = src;
          a.container2 = ResolveFlat(st.addr.name, st.line);
        } else {
          a.op = AluOp::kStore;
          a.container1 = src;
          a.immediate = static_cast<u16>(
              base + ResolveImmediate(st.addr, action, args, st.line));
        }
        claim_store(src, a, st.line);
        break;
      }
      case Statement::Kind::kSetPort:
        a.op = AluOp::kPort;
        a.immediate = ResolveImmediate(st.a, action, args, st.line);
        claim(kMetadataSlot, a, st.line);
        break;
      case Statement::Kind::kSetMcast:
        a.op = AluOp::kMcast;
        a.immediate = ResolveImmediate(st.a, action, args, st.line);
        claim(kMetadataSlot, a, st.line);
        break;
      case Statement::Kind::kDrop:
        a.op = AluOp::kDiscard;
        claim(kMetadataSlot, a, st.line);
        break;
      case Statement::Kind::kRecirculate:
      case Statement::Kind::kMetaStatWrite:
        // Rejected by the static checker; unreachable in a valid compile.
        diags_.Error("codegen.internal", "forbidden statement reached codegen",
                     st.line);
        break;
    }
  }
  flush_stores();
  return vliw;
}

BitVec CompiledModule::KeyFor(const std::string& table,
                              const std::map<std::string, u64>& keys,
                              std::optional<bool> predicate) const {
  const TablePlacement* p = Placement(table);
  if (p == nullptr) throw std::invalid_argument("unknown table " + table);
  BitVec key(params::kKeyBits);
  const auto slots = KeySlots();
  for (std::size_t i = 0; i < 6; ++i) {
    if (p->slot_fields[i].empty()) continue;
    const auto it = keys.find(p->slot_fields[i]);
    const u64 v = it == keys.end() ? 0 : it->second;
    key.set_field(slots[i].lsb, slots[i].bits, v);
  }
  if (p->has_predicate) key.set_bit(0, predicate.value_or(false));
  return key;
}

std::vector<ConfigWrite> CompiledModule::AddEntry(
    const std::string& table, const std::map<std::string, u64>& keys,
    std::optional<bool> predicate, const std::string& action,
    const std::vector<u64>& args) {
  TablePlacement* placement = nullptr;
  for (auto& p : placements_)
    if (p.table == table) placement = &p;
  if (placement == nullptr) {
    diags_.Error("entry.unknown-table", "unknown table '" + table + "'");
    return {};
  }
  const TableDef* tdef = spec_.FindTable(table);
  const ActionDef* adef = spec_.FindAction(action);
  if (adef == nullptr) {
    diags_.Error("entry.unknown-action", "unknown action '" + action + "'");
    return {};
  }
  if (std::find(tdef->actions.begin(), tdef->actions.end(), action) ==
      tdef->actions.end()) {
    diags_.Error("entry.action-not-in-table",
                 "action '" + action + "' is not in table '" + table + "'");
    return {};
  }
  if (placement->has_predicate && !predicate.has_value()) {
    diags_.Error("entry.predicate-required",
                 "table '" + table + "' has a predicate; the entry must "
                 "specify its expected value");
    return {};
  }
  if (placement->ternary) {
    diags_.Error("entry.match-kind",
                 "table '" + table + "' is ternary; use AddTernaryEntry");
    return {};
  }
  for (const auto& [k, v] : keys) {
    if (std::find(tdef->keys.begin(), tdef->keys.end(), k) ==
        tdef->keys.end()) {
      diags_.Error("entry.bad-key-field",
                   "'" + k + "' is not a key of table '" + table + "'");
      return {};
    }
    const FieldDef* f = spec_.FindField(k);
    if (f != nullptr && f->width < 8 &&
        v >= (u64{1} << (8 * f->width))) {
      diags_.Error("entry.key-value-range",
                   "value for key '" + k + "' exceeds its " +
                       std::to_string(f->width) + "-byte field");
      return {};
    }
  }

  BitVec key = KeyFor(table, keys, predicate);
  VliwEntry vliw = LowerAction(*adef, args, *placement);
  if (!diags_.ok()) return {};

  // Physical address: the module's contiguous CAM block; wraps modulo the
  // block size when benchmarking beyond the prototype depth (footnote 5).
  const std::size_t logical = placement->entries_installed++;
  const std::size_t address =
      placement->alloc.cam_base + (logical % placement->alloc.cam_count);

  CamEntry cam;
  cam.valid = true;
  cam.key = std::move(key);
  cam.module = id_;

  std::vector<ConfigWrite> writes;
  ConfigWrite cw;
  cw.kind = ResourceKind::kCamEntry;
  cw.stage = placement->stage;
  cw.index = static_cast<u8>(address % 256);
  cw.payload = cam.Encode();
  writes.push_back(cw);

  ConfigWrite vw;
  vw.kind = ResourceKind::kVliwAction;
  vw.stage = placement->stage;
  vw.index = static_cast<u8>(address % 256);
  vw.payload = vliw.Encode();
  writes.push_back(vw);

  entry_writes_.insert(entry_writes_.end(), writes.begin(), writes.end());
  return writes;
}

std::vector<ConfigWrite> CompiledModule::AddTernaryEntry(
    const std::string& table, const std::map<std::string, u64>& keys,
    const std::map<std::string, u64>& masks, std::optional<bool> predicate,
    const std::string& action, const std::vector<u64>& args) {
  TablePlacement* placement = nullptr;
  for (auto& p : placements_)
    if (p.table == table) placement = &p;
  if (placement == nullptr) {
    diags_.Error("entry.unknown-table", "unknown table '" + table + "'");
    return {};
  }
  if (!placement->ternary) {
    diags_.Error("entry.match-kind",
                 "table '" + table + "' is exact-match; use AddEntry");
    return {};
  }
  const ActionDef* adef = spec_.FindAction(action);
  if (adef == nullptr) {
    diags_.Error("entry.unknown-action", "unknown action '" + action + "'");
    return {};
  }
  if (placement->has_predicate && !predicate.has_value()) {
    diags_.Error("entry.predicate-required",
                 "table '" + table + "' has a predicate; the entry must "
                 "specify its expected value");
    return {};
  }

  // Build the key and the per-entry mask over the same slot layout.
  BitVec key = KeyFor(table, keys, predicate);
  BitVec mask(params::kKeyBits);
  const auto slots = KeySlots();
  for (std::size_t i = 0; i < 6; ++i) {
    const std::string& field = placement->slot_fields[i];
    if (field.empty()) continue;
    const auto mit = masks.find(field);
    if (mit == masks.end()) {
      // Fully significant field.
      for (std::size_t b = 0; b < slots[i].bits; ++b)
        mask.set_bit(slots[i].lsb + b, true);
    } else {
      try {
        mask.set_field(slots[i].lsb, slots[i].bits, mit->second);
      } catch (const std::invalid_argument&) {
        diags_.Error("entry.mask-range",
                     "mask for key '" + field + "' exceeds its field width");
        return {};
      }
    }
  }
  if (placement->has_predicate) mask.set_bit(0, true);

  VliwEntry vliw = LowerAction(*adef, args, *placement);
  if (!diags_.ok()) return {};

  const std::size_t logical = placement->entries_installed++;
  const std::size_t address =
      placement->alloc.cam_base + (logical % placement->alloc.cam_count);

  TcamEntry entry;
  entry.valid = true;
  entry.key = std::move(key);
  entry.mask = std::move(mask);
  entry.module = id_;

  std::vector<ConfigWrite> writes;
  writes.push_back(ConfigWrite{ResourceKind::kTcamEntry, placement->stage,
                               static_cast<u8>(address % 256),
                               entry.Encode()});
  writes.push_back(ConfigWrite{ResourceKind::kVliwAction, placement->stage,
                               static_cast<u8>(address % 256),
                               vliw.Encode()});
  entry_writes_.insert(entry_writes_.end(), writes.begin(), writes.end());
  return writes;
}

void CompiledModule::Build(const ModuleAllocation& alloc,
                           std::size_t placeholder_entries) {
  id_ = alloc.id;

  StaticCheck(spec_, diags_);
  ResourceCheck(spec_, alloc, diags_);
  if (id_.value() >= params::kOverlayTableDepth)
    diags_.Error("resource.module-id",
                 "module ID " + std::to_string(id_.value()) +
                     " does not fit the 32-entry overlay tables");
  if (!diags_.ok()) return;

  // --- PHV allocation -------------------------------------------------------
  std::array<u8, 3> next{};  // next free container index per type
  for (const auto& f : spec_.fields) {
    const ContainerType t = f.width == 2   ? ContainerType::k2B
                            : f.width == 4 ? ContainerType::k4B
                                           : ContainerType::k6B;
    auto& cursor = next[static_cast<std::size_t>(t)];
    containers_.emplace(f.name, ContainerRef{t, cursor++});
  }

  // --- Parser / deparser entries ---------------------------------------------
  ParserEntry parser_entry;
  std::size_t pa = 0;
  for (const auto& f : spec_.fields) {
    if (f.scratch) continue;  // PHV-only temporaries are never parsed
    parser_entry.actions[pa++] =
        ParserAction{true, containers_.at(f.name), f.offset};
  }
  std::set<std::string> written_fields;
  for (const auto& a : spec_.actions)
    for (const auto& st : a.statements)
      if (!st.dst.empty()) written_fields.insert(st.dst);
  DeparserEntry deparser_entry;
  std::size_t da = 0;
  for (const auto& f : spec_.fields) {
    // Only fields some action modifies are written back, and scratch
    // fields never touch packet bytes (section 4.1: the deparser updates
    // only the portions of the packet actually modified).
    if (f.scratch || !written_fields.contains(f.name)) continue;
    deparser_entry.actions[da++] =
        ParserAction{true, containers_.at(f.name), f.offset};
  }

  const u8 overlay_index = static_cast<u8>(id_.value());
  static_writes_.push_back(ConfigWrite{ResourceKind::kParserTable, 0,
                                       overlay_index, parser_entry.Encode()});
  static_writes_.push_back(ConfigWrite{ResourceKind::kDeparserTable, 0,
                                       overlay_index,
                                       deparser_entry.Encode()});

  // --- Table placement and per-stage overlay entries -------------------------
  for (std::size_t i = 0; i < spec_.tables.size(); ++i) {
    const TableDef& t = spec_.tables[i];
    TablePlacement p;
    p.table = t.name;
    p.alloc = alloc.stages[i];
    p.stage = p.alloc.stage;
    p.has_predicate = t.predicate.has_value();
    p.ternary = t.ternary;

    // Key layout: fields fill the two slots of their width class in order.
    std::array<std::size_t, 3> used{};  // per type: 0..2
    for (const auto& kname : t.keys) {
      const FieldDef* f = spec_.FindField(kname);
      const std::size_t type_idx = f->width == 6 ? 0 : f->width == 4 ? 1 : 2;
      const std::size_t slot = type_idx * 2 + used[type_idx]++;
      p.slot_fields[slot] = kname;
    }
    placements_.push_back(std::move(p));
  }

  // --- State layout ----------------------------------------------------------
  for (std::size_t i = 0; i < spec_.tables.size(); ++i) {
    const TableDef& t = spec_.tables[i];
    const StageAllocation& sa = alloc.stages[i];
    const auto dyn = DynamicallyAddressedStates(spec_, t);
    const auto touched = StatesOf(spec_, t);
    u16 base = 0;
    // Declaration order, except dynamically addressed arrays come first so
    // their base is 0 (the ALU has no adder on the dynamic-address path).
    std::vector<std::string> ordered;
    for (const auto& s : spec_.states)
      if (touched.contains(s.name) && dyn.contains(s.name))
        ordered.push_back(s.name);
    for (const auto& s : spec_.states)
      if (touched.contains(s.name) && !dyn.contains(s.name))
        ordered.push_back(s.name);
    if (std::count_if(ordered.begin(), ordered.end(), [&](const auto& s) {
          return dyn.contains(s);
        }) > 1) {
      diags_.Error("codegen.dynamic-state",
                   "at most one dynamically addressed state array per stage");
    }
    for (const auto& sname : ordered) {
      const StateDef* sd = spec_.FindState(sname);
      state_layout_[sname] = StatePlacement{sa.stage, base};
      base = static_cast<u16>(base + sd->size);
    }
  }
  if (!diags_.ok()) return;

  // --- Per-stage overlay configuration ---------------------------------------
  for (std::size_t si = 0; si < alloc.stages.size(); ++si) {
    const StageAllocation& sa = alloc.stages[si];
    KeyExtractorEntry kx;
    KeyMaskEntry mask;  // default: all-zero mask => key is all zeros

    const bool has_table = si < spec_.tables.size();
    if (has_table) {
      const TableDef& t = spec_.tables[si];
      const TablePlacement& p = placements_[si];
      kx.ternary = t.ternary;
      const auto slots = KeySlots();
      for (std::size_t s = 0; s < 6; ++s) {
        if (p.slot_fields[s].empty()) continue;
        kx.selectors[s] = containers_.at(p.slot_fields[s]).index;
        for (std::size_t b = 0; b < slots[s].bits; ++b)
          mask.mask.set_bit(slots[s].lsb + b, true);
      }
      if (t.predicate) {
        kx.cmp_op = t.predicate->op;
        kx.cmp_a = LowerPredicateOperand(t.predicate->a);
        kx.cmp_b = LowerPredicateOperand(t.predicate->b);
        mask.mask.set_bit(0, true);
      }
    }

    static_writes_.push_back(ConfigWrite{ResourceKind::kKeyExtractor,
                                         sa.stage, overlay_index,
                                         kx.Encode()});
    static_writes_.push_back(ConfigWrite{ResourceKind::kKeyMask, sa.stage,
                                         overlay_index, mask.Encode()});
    static_writes_.push_back(
        ConfigWrite{ResourceKind::kSegmentTable, sa.stage, overlay_index,
                    SegmentEntry{sa.seg_offset, sa.seg_range}.Encode()});
  }
  if (!diags_.ok()) return;

  // --- Compile-time placeholder entries ---------------------------------------
  // A fresh, unique entry set is generated on every compile so no
  // information leaks from a previously loaded module (section 5.1).  The
  // uniqueness check is what makes compile time grow with entry count.
  for (std::size_t i = 0; i < spec_.tables.size(); ++i) {
    const TableDef& t = spec_.tables[i];
    const std::size_t n = placeholder_entries ? placeholder_entries : t.size;
    if (n == 0 || t.keys.empty() || t.actions.empty()) continue;
    const std::string& kf = t.keys.front();
    const ActionDef* adef = spec_.FindAction(t.actions.front());
    const std::vector<u64> zero_args(adef->params.size(), 0);

    const TablePlacement& p = placements_[i];
    std::set<BitVec> seen;
    for (std::size_t e = 0; e < n; ++e) {
      std::map<std::string, u64> keys;
      keys[kf] = e;
      const std::optional<bool> pred =
          t.predicate.has_value() ? std::optional<bool>(false) : std::nullopt;
      BitVec key = KeyFor(t.name, keys, pred);
      if (!seen.insert(key).second) {
        diags_.Error("codegen.duplicate-entry",
                     "generated duplicate match entry in table '" + t.name +
                         "'; an exact-match table would return multiple "
                         "results");
        break;
      }
      VliwEntry vliw = LowerAction(*adef, zero_args, p);
      if (!diags_.ok()) return;

      // Placeholder entries wipe the module's CAM block (valid = false):
      // nothing from a previously loaded module can leak through, and the
      // control plane's real entries later overwrite these slots in order.
      const std::size_t address = p.alloc.cam_base + (e % p.alloc.cam_count);
      if (t.ternary) {
        TcamEntry wipe;
        wipe.key = std::move(key);
        wipe.module = id_;
        entry_writes_.push_back(ConfigWrite{ResourceKind::kTcamEntry,
                                            p.stage,
                                            static_cast<u8>(address % 256),
                                            wipe.Encode()});
      } else {
        CamEntry cam;
        cam.valid = false;
        cam.key = std::move(key);
        cam.module = id_;
        entry_writes_.push_back(ConfigWrite{ResourceKind::kCamEntry, p.stage,
                                            static_cast<u8>(address % 256),
                                            cam.Encode()});
      }
      entry_writes_.push_back(ConfigWrite{ResourceKind::kVliwAction, p.stage,
                                          static_cast<u8>(address % 256),
                                          vliw.Encode()});
      ++unique_entries_generated_;
    }
  }
}

Operand8 CompiledModule::LowerPredicateOperand(const Value& v) {
  switch (v.kind) {
    case Value::Kind::kConst:
      if (v.constant >= 128) {
        diags_.Error("codegen.predicate-imm",
                     "predicate immediates are 7-bit");
        return Operand8::Immediate(0);
      }
      return Operand8::Immediate(static_cast<u8>(v.constant));
    case Value::Kind::kField: {
      const auto it = containers_.find(v.name);
      if (it == containers_.end()) {
        diags_.Error("codegen.unknown-field",
                     "no container for predicate field '" + v.name + "'");
        return Operand8::Immediate(0);
      }
      return Operand8::Container(it->second);
    }
    case Value::Kind::kParam:
      diags_.Error("codegen.predicate-param",
                   "predicates cannot reference action parameters");
      return Operand8::Immediate(0);
  }
  return Operand8::Immediate(0);
}

CompiledModule Compile(const ModuleSpec& spec, const ModuleAllocation& alloc,
                       std::size_t placeholder_entries) {
  CompiledModule m;
  m.spec_ = spec;
  m.Build(alloc, placeholder_entries);
  return m;
}

CompiledModule CompileStack(
    const std::vector<ModuleSpec>& specs,
    const std::vector<std::vector<StageAllocation>>& stage_sets, ModuleId id,
    std::size_t placeholder_entries) {
  CompiledModule m;
  if (specs.size() != stage_sets.size())
    throw std::invalid_argument("specs/stage_sets size mismatch");

  // Merge the stack into one spec under one module ID; names must be
  // globally unique across the stack.
  ModuleSpec merged;
  ModuleAllocation alloc;
  alloc.id = id;
  merged.name = "stack";
  for (std::size_t k = 0; k < specs.size(); ++k) {
    const ModuleSpec& s = specs[k];
    if (k == 0)
      merged.name = s.name;
    else
      merged.name += "+" + s.name;
    if (s.tables.size() > stage_sets[k].size()) {
      m.diags_.Error("resource.stages",
                     "stack member '" + s.name + "' has " +
                         std::to_string(s.tables.size()) +
                         " tables but only " +
                         std::to_string(stage_sets[k].size()) +
                         " allocated stages");
      return m;
    }
    for (const auto& f : s.fields) {
      if (merged.FindField(f.name) != nullptr)
        m.diags_.Error("stack.name-collision",
                       "field '" + f.name + "' defined by two stack members");
      merged.fields.push_back(f);
    }
    for (const auto& st : s.states) {
      if (merged.FindState(st.name) != nullptr)
        m.diags_.Error("stack.name-collision",
                       "state '" + st.name + "' defined by two stack members");
      merged.states.push_back(st);
    }
    for (const auto& a : s.actions) {
      if (merged.FindAction(a.name) != nullptr)
        m.diags_.Error("stack.name-collision", "action '" + a.name +
                                                   "' defined by two stack "
                                                   "members");
      merged.actions.push_back(a);
    }
    for (std::size_t t = 0; t < s.tables.size(); ++t) {
      if (merged.FindTable(s.tables[t].name) != nullptr)
        m.diags_.Error("stack.name-collision",
                       "table '" + s.tables[t].name +
                           "' defined by two stack members");
      merged.tables.push_back(s.tables[t]);
      alloc.stages.push_back(stage_sets[k][t]);
    }
  }
  // Stages allocated but not consumed by any member's tables still get
  // default (no-op) overlay configuration; they must follow all used
  // stages because Build maps merged.tables[i] -> alloc.stages[i].
  for (std::size_t k = 0; k < specs.size(); ++k) {
    for (std::size_t t = specs[k].tables.size(); t < stage_sets[k].size();
         ++t)
      alloc.stages.push_back(stage_sets[k][t]);
  }
  if (!m.diags_.ok()) return m;

  m.spec_ = std::move(merged);
  m.Build(alloc, placeholder_entries);
  return m;
}

}  // namespace menshen
