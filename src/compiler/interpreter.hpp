// Reference interpreter for ModuleSpec semantics.
//
// Executes a module directly on packets — table by table in program
// order, statements sequentially against a snapshot (VLIW semantics) —
// without any of the compiler's lowering or the hardware model's
// mechanisms.  Its purpose is differential testing: for any module and
// any packet, `Interpreter::Run` and the compiled-module-on-Pipeline path
// must produce identical packets, dispositions and state.  The fuzz tests
// in tests/test_differential.cpp compare them over randomly generated
// modules and traffic.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "compiler/module_spec.hpp"
#include "packet/packet.hpp"

namespace menshen {

/// An installed entry in the interpreter's view of a table.
struct InterpEntry {
  std::map<std::string, u64> keys;  // field -> expected value
  std::optional<bool> predicate;    // expected predicate bit, if any
  std::string action;
  std::vector<u64> args;
};

class Interpreter {
 public:
  explicit Interpreter(ModuleSpec spec) : spec_(std::move(spec)) {}

  /// Installs a match entry (mirrors CompiledModule::AddEntry).
  void AddEntry(const std::string& table, InterpEntry entry) {
    entries_[table].push_back(std::move(entry));
  }

  /// Runs one packet through the module; modifies the packet in place
  /// (field writebacks, disposition, egress port) exactly as the hardware
  /// path would.
  void Run(Packet& pkt);

  /// Direct state access for cross-validation.
  [[nodiscard]] u64 state(const std::string& array, u64 index) const;

 private:
  struct FieldValue;
  [[nodiscard]] u64 ReadField(const std::map<std::string, u64>& phv,
                              const std::string& name) const;
  [[nodiscard]] u64 EvalValue(const std::map<std::string, u64>& phv,
                              const Value& v, const ActionDef& action,
                              const std::vector<u64>& args) const;

  ModuleSpec spec_;
  std::map<std::string, std::vector<InterpEntry>> entries_;
  std::map<std::string, std::vector<u64>> state_;
};

}  // namespace menshen
