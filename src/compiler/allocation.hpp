// Resource allocations (sections 3.4, 5.1).
//
// The operator's resource-sharing policy produces a ModuleAllocation for
// each admitted module: which pipeline stages it may place tables in, and
// within each of those stages, a contiguous block of CAM/VLIW addresses
// (space partitioning of match-action entries) and a stateful-memory
// segment {offset, range} (space partitioning of state).  Overlay-table
// rows need no allocation: every module owns exactly the row at its own
// module-ID index.
//
// The resource checker (checker.hpp) rejects modules whose demand exceeds
// their allocation; the admission controller (runtime/) refuses to admit
// allocations that overlap.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "pipeline/params.hpp"

namespace menshen {

struct StageAllocation {
  u8 stage = 0;               // pipeline stage index
  std::size_t cam_base = 0;   // first CAM/VLIW address owned
  std::size_t cam_count = 0;  // number of CAM/VLIW addresses owned
  u8 seg_offset = 0;          // stateful-memory segment base (words)
  u8 seg_range = 0;           // stateful-memory segment length (words)
};

struct ModuleAllocation {
  ModuleId id;
  std::vector<StageAllocation> stages;  // in pipeline order

  [[nodiscard]] const StageAllocation* ForStage(u8 stage) const {
    for (const auto& s : stages)
      if (s.stage == stage) return &s;
    return nullptr;
  }
  [[nodiscard]] std::size_t total_cam_entries() const {
    std::size_t n = 0;
    for (const auto& s : stages) n += s.cam_count;
    return n;
  }
};

/// Convenience: an allocation giving `id` the stage range
/// [first_stage, first_stage + num_stages) with `cam_count` CAM addresses
/// starting at `cam_base` and a `seg_range`-word segment at `seg_offset`
/// in every stage.
[[nodiscard]] inline ModuleAllocation UniformAllocation(
    ModuleId id, u8 first_stage, u8 num_stages, std::size_t cam_base,
    std::size_t cam_count, u8 seg_offset = 0, u8 seg_range = 0) {
  ModuleAllocation a;
  a.id = id;
  for (u8 i = 0; i < num_stages; ++i) {
    a.stages.push_back(StageAllocation{
        static_cast<u8>(first_stage + i), cam_base, cam_count, seg_offset,
        seg_range});
  }
  return a;
}

}  // namespace menshen
