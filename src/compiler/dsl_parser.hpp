// Recursive-descent parser for the Menshen module DSL.
//
// The DSL is the module-author-facing surface of the compiler frontend —
// structurally a restricted P4-16: header fields, stateful registers,
// actions built from the ALU-compilable statement forms, and match-action
// tables with optional predicates.
//
// Grammar (EBNF; `#` and `//` start comments):
//
//   module      := "module" ident "{" item* "}"
//   item        := field | scratch | state | action | table
//   field       := "field" ident ":" INT "@" INT ";"          # width @ offset
//   scratch     := "scratch" ident ":" INT ";"                # PHV-only temp
//   state       := "state" ident "[" INT "]" ";"
//   action      := "action" ident params? "{" stmt* "}"
//   params      := "(" [ ident ("," ident)* ] ")"
//   table       := "table" ident "{" tprop* "}"
//   tprop       := "key" "=" "{" ident ("," ident)* "}" ";"
//                | "predicate" "=" value cmp value ";"
//                | "actions" "=" "{" ident ("," ident)* "}" ";"
//                | "size" "=" INT ";"
//                | "match" "=" ("exact" | "ternary") ";"
//   stmt        := ident "=" value (("+"|"-") value)? ";"
//                | ident "=" ident "[" value "]" ";"          # state load
//                | ident "[" value "]" "=" value ";"          # state store
//                | ident "=" "incr" "(" ident "[" value "]" ")" ";"
//                | "port" "(" value ")" ";"
//                | "mcast" "(" value ")" ";"
//                | "drop" "(" ")" ";"
//                | "recirculate" "(" ")" ";"
//                | "meta" "." ident "=" value ";"
//   value       := INT | ident
//   cmp         := "==" | "!=" | ">" | "<" | ">=" | "<="
//
// Identifiers in value position resolve to action parameters first, then
// to fields; anything else is an error.
#pragma once

#include <string_view>

#include "common/diagnostics.hpp"
#include "compiler/module_spec.hpp"

namespace menshen {

/// Parses DSL source into a ModuleSpec.  Parse errors are collected in
/// `diags`; on any error the returned spec is partial and `diags.ok()` is
/// false.
[[nodiscard]] ModuleSpec ParseModuleDsl(std::string_view source,
                                        Diagnostics& diags);

}  // namespace menshen
