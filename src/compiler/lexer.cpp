#include "compiler/lexer.hpp"

#include <cctype>
#include <stdexcept>

namespace menshen {

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier '" + text + "'";
    case TokenKind::kInt:
      return "integer " + std::to_string(value);
    case TokenKind::kEnd:
      return "end of input";
    default:
      return "'" + text + "'";
  }
}

namespace {

[[noreturn]] void Fail(int line, const std::string& what) {
  throw std::invalid_argument("lex error at line " + std::to_string(line) +
                              ": " + what);
}

Token Punct(TokenKind kind, std::string text, int line) {
  Token t;
  t.kind = kind;
  t.text = std::move(text);
  t.line = line;
  return t;
}

}  // namespace

std::vector<Token> Lex(std::string_view src) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' || (c == '/' && peek(1) == '/')) {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '_'))
        ++j;
      Token t;
      t.kind = TokenKind::kIdent;
      t.text = std::string(src.substr(i, j - i));
      t.line = line;
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      u64 value = 0;
      if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        j = i + 2;
        if (j >= n || !std::isxdigit(static_cast<unsigned char>(src[j])))
          Fail(line, "malformed hex literal");
        while (j < n && std::isxdigit(static_cast<unsigned char>(src[j]))) {
          const char d = static_cast<char>(
              std::tolower(static_cast<unsigned char>(src[j])));
          value = value * 16 +
                  static_cast<u64>(d <= '9' ? d - '0' : d - 'a' + 10);
          ++j;
        }
      } else {
        while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) {
          value = value * 10 + static_cast<u64>(src[j] - '0');
          ++j;
        }
      }
      if (j < n && (std::isalpha(static_cast<unsigned char>(src[j])) ||
                    src[j] == '_'))
        Fail(line, "identifier may not start with a digit");
      Token t;
      t.kind = TokenKind::kInt;
      t.text = std::string(src.substr(i, j - i));
      t.value = value;
      t.line = line;
      out.push_back(std::move(t));
      i = j;
      continue;
    }

    // Two-character operators first.
    const char c2 = peek(1);
    if (c == '=' && c2 == '=') { out.push_back(Punct(TokenKind::kEq, "==", line)); i += 2; continue; }
    if (c == '!' && c2 == '=') { out.push_back(Punct(TokenKind::kNeq, "!=", line)); i += 2; continue; }
    if (c == '>' && c2 == '=') { out.push_back(Punct(TokenKind::kGe, ">=", line)); i += 2; continue; }
    if (c == '<' && c2 == '=') { out.push_back(Punct(TokenKind::kLe, "<=", line)); i += 2; continue; }

    switch (c) {
      case '{': out.push_back(Punct(TokenKind::kLBrace, "{", line)); break;
      case '}': out.push_back(Punct(TokenKind::kRBrace, "}", line)); break;
      case '(': out.push_back(Punct(TokenKind::kLParen, "(", line)); break;
      case ')': out.push_back(Punct(TokenKind::kRParen, ")", line)); break;
      case '[': out.push_back(Punct(TokenKind::kLBracket, "[", line)); break;
      case ']': out.push_back(Punct(TokenKind::kRBracket, "]", line)); break;
      case '=': out.push_back(Punct(TokenKind::kAssign, "=", line)); break;
      case ';': out.push_back(Punct(TokenKind::kSemicolon, ";", line)); break;
      case ':': out.push_back(Punct(TokenKind::kColon, ":", line)); break;
      case '@': out.push_back(Punct(TokenKind::kAt, "@", line)); break;
      case ',': out.push_back(Punct(TokenKind::kComma, ",", line)); break;
      case '.': out.push_back(Punct(TokenKind::kDot, ".", line)); break;
      case '+': out.push_back(Punct(TokenKind::kPlus, "+", line)); break;
      case '-': out.push_back(Punct(TokenKind::kMinus, "-", line)); break;
      case '>': out.push_back(Punct(TokenKind::kGt, ">", line)); break;
      case '<': out.push_back(Punct(TokenKind::kLt, "<", line)); break;
      default:
        Fail(line, std::string("unexpected character '") + c + "'");
    }
    ++i;
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  out.push_back(std::move(end));
  return out;
}

}  // namespace menshen
