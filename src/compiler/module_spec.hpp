// Module intermediate representation (IR).
//
// A ModuleSpec is what the compiler frontend produces from DSL source text
// (dsl_parser.*) or what an embedding application builds directly through
// this header's structs.  It captures exactly what a P4-16 module needs on
// the Menshen target: header fields parsed from the 128-byte window,
// per-stage match-action tables with optional predicates, VLIW-compilable
// actions, and stateful arrays.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "pipeline/entries.hpp"

namespace menshen {

/// A header field the parser extracts: `width` bytes at `offset` from the
/// start of the packet (must lie inside the 128-byte parser window).
/// Widths are container widths: 2, 4 or 6 bytes.  A `scratch` field is a
/// PHV-only temporary (the paper's "temporary packet headers used for
/// computation"): it gets a container but no parser or deparser action,
/// so it never touches packet bytes.
struct FieldDef {
  std::string name;
  u8 offset = 0;
  u8 width = 2;
  bool scratch = false;
  bool operator==(const FieldDef&) const = default;
};

/// A stateful array: `size` words in the stage of the (single) table whose
/// actions touch it.
struct StateDef {
  std::string name;
  u16 size = 0;
  bool operator==(const StateDef&) const = default;
};

/// An operand in an action statement or predicate.
struct Value {
  enum class Kind { kConst, kField, kParam };
  Kind kind = Kind::kConst;
  u64 constant = 0;
  std::string name;  // field or parameter name

  static Value Const(u64 v) { return {Kind::kConst, v, {}}; }
  static Value Field(std::string n) { return {Kind::kField, 0, std::move(n)}; }
  static Value Param(std::string n) { return {Kind::kParam, 0, std::move(n)}; }
  bool operator==(const Value&) const = default;
};

/// One action statement.  The closed set mirrors the ALU ops of Table 2.
struct Statement {
  enum class Kind {
    kAddAssign,     // dst = a + b
    kSubAssign,     // dst = a - b
    kSetAssign,     // dst = a            (copy / set / addi collapse here)
    kLoad,          // dst = state[addr]
    kStore,         // state[addr] = a
    kLoadIncr,      // dst = incr(state[addr])   (the `loadd` sequencer op)
    kSetPort,       // port(a)
    kSetMcast,      // mcast(a): select a multicast group (section 3.3)
    kDrop,          // drop()
    kRecirculate,   // recirculate()  -- always rejected by the checker
    kMetaStatWrite, // meta.<stat> = a -- always rejected by the checker
  };
  Kind kind = Kind::kSetAssign;
  std::string dst;        // destination field (or state array for kStore)
  std::string state;      // state array name for kLoad/kStore/kLoadIncr
  Value a;                // first operand / address source for loads
  Value b;                // second operand
  Value addr;             // state index for stateful statements
  std::string meta_stat;  // for kMetaStatWrite
  int line = 0;
  bool operator==(const Statement&) const = default;
};

struct ActionDef {
  std::string name;
  std::vector<std::string> params;
  std::vector<Statement> statements;
  int line = 0;
  bool operator==(const ActionDef&) const = default;
};

struct PredicateDef {
  Value a;
  CmpOp op = CmpOp::kNone;
  Value b;
  bool operator==(const PredicateDef&) const = default;
};

struct TableDef {
  std::string name;
  std::vector<std::string> keys;     // field names
  std::optional<PredicateDef> predicate;
  std::vector<std::string> actions;  // action names this table may invoke
  std::size_t size = 0;              // requested match entries
  bool ternary = false;              // Appendix B: ternary matching
  int line = 0;
  bool operator==(const TableDef&) const = default;
};

struct ModuleSpec {
  std::string name;
  std::vector<FieldDef> fields;
  std::vector<StateDef> states;
  std::vector<ActionDef> actions;
  std::vector<TableDef> tables;  // program order = pipeline order

  [[nodiscard]] const FieldDef* FindField(const std::string& n) const;
  [[nodiscard]] const StateDef* FindState(const std::string& n) const;
  [[nodiscard]] const ActionDef* FindAction(const std::string& n) const;
  [[nodiscard]] const TableDef* FindTable(const std::string& n) const;
};

/// Resource demand of a module, as counted by the resource checker and
/// compared against its allocation.
struct ResourceDemand {
  std::size_t containers_2b = 0;
  std::size_t containers_4b = 0;
  std::size_t containers_6b = 0;
  std::size_t parser_actions = 0;
  std::size_t stages = 0;          // number of tables (one table per stage)
  std::size_t match_entries = 0;   // sum of table sizes
  std::size_t state_words = 0;
};

[[nodiscard]] ResourceDemand ComputeDemand(const ModuleSpec& spec);

}  // namespace menshen
