#include "compiler/checker.hpp"

#include <map>
#include <set>
#include <string>

#include "packet/headers.hpp"

namespace menshen {

namespace {

/// True if a field's byte range overlaps the VLAN TCI (bytes 14-15), which
/// holds the module ID.
bool OverlapsVid(const FieldDef& f) {
  const std::size_t lo = f.offset;
  const std::size_t hi = lo + f.width;
  return lo < offsets::kVlanTci + 2 && hi > offsets::kVlanTci;
}

/// Field names read by a value.
void CollectFieldReads(const Value& v, std::set<std::string>& out) {
  if (v.kind == Value::Kind::kField) out.insert(v.name);
}

struct TableFootprint {
  std::set<std::string> reads;   // fields read (keys, predicate, operands)
  std::set<std::string> writes;  // fields written by its actions
  std::set<std::string> states;  // stateful arrays touched
};

TableFootprint FootprintOf(const ModuleSpec& spec, const TableDef& table) {
  TableFootprint fp;
  for (const auto& k : table.keys) fp.reads.insert(k);
  if (table.predicate) {
    CollectFieldReads(table.predicate->a, fp.reads);
    CollectFieldReads(table.predicate->b, fp.reads);
  }
  for (const auto& action_name : table.actions) {
    const ActionDef* action = spec.FindAction(action_name);
    if (action == nullptr) continue;  // reported elsewhere
    for (const auto& st : action->statements) {
      CollectFieldReads(st.a, fp.reads);
      CollectFieldReads(st.b, fp.reads);
      CollectFieldReads(st.addr, fp.reads);
      if (!st.dst.empty()) fp.writes.insert(st.dst);
      if (!st.state.empty()) fp.states.insert(st.state);
    }
  }
  return fp;
}

void CheckValue(const ModuleSpec& spec, const ActionDef* action,
                const Value& v, int line, Diagnostics& diags) {
  if (v.kind != Value::Kind::kField) return;
  if (spec.FindField(v.name) != nullptr) return;
  if (action != nullptr) {
    for (const auto& p : action->params)
      if (p == v.name) return;  // parser resolves params, but be lenient
  }
  diags.Error("name.unknown-field", "unknown field '" + v.name + "'", line);
}

}  // namespace

void StaticCheck(const ModuleSpec& spec, Diagnostics& diags) {
  // --- field sanity ---------------------------------------------------------
  for (const auto& f : spec.fields) {
    if (f.width != 2 && f.width != 4 && f.width != 6)
      diags.Error("field.width",
                  "field '" + f.name + "' width must be 2, 4 or 6");
    if (!f.scratch &&
        static_cast<std::size_t>(f.offset) + f.width > kParserWindowBytes)
      diags.Error("field.offset", "field '" + f.name +
                                      "' extends past the 128-byte window");
  }

  // --- actions --------------------------------------------------------------
  for (const auto& action : spec.actions) {
    std::set<std::string> written;
    std::set<std::string> state_touched;
    bool wrote_meta = false;
    for (const auto& st : action.statements) {
      switch (st.kind) {
        case Statement::Kind::kRecirculate:
          diags.Error("static.recirculate",
                      "action '" + action.name +
                          "' recirculates packets; modules share ingress "
                          "bandwidth and may not recirculate (section 3.4)",
                      st.line);
          continue;
        case Statement::Kind::kMetaStatWrite:
          diags.Error("static.stat-write",
                      "action '" + action.name + "' writes system statistic "
                          "'meta." + st.meta_stat +
                          "'; statistics provided by the system-level module "
                          "are read-only (section 3.4)",
                      st.line);
          continue;
        default:
          break;
      }

      // Destination checks.
      if (!st.dst.empty()) {
        const FieldDef* dst = spec.FindField(st.dst);
        if (dst == nullptr) {
          diags.Error("name.unknown-field",
                      "assignment to unknown field '" + st.dst + "'",
                      st.line);
        } else if (OverlapsVid(*dst)) {
          diags.Error(
              "static.vid-write",
              "action '" + action.name + "' writes field '" + st.dst +
                  "' which overlaps the VLAN ID; modules may not modify "
                  "their module identifier (section 3.4)",
              st.line);
        }
        if (!written.insert(st.dst).second)
          diags.Error("action.slot-conflict",
                      "action '" + action.name + "' writes field '" +
                          st.dst + "' twice; each ALU writes its container "
                          "once per stage",
                      st.line);
      }
      if (st.kind == Statement::Kind::kSetPort ||
          st.kind == Statement::Kind::kSetMcast ||
          st.kind == Statement::Kind::kDrop) {
        if (wrote_meta)
          diags.Error("action.slot-conflict",
                      "action '" + action.name +
                          "' uses the metadata ALU twice (port/mcast/drop)",
                      st.line);
        wrote_meta = true;
        if (st.kind != Statement::Kind::kDrop &&
            st.a.kind == Value::Kind::kField)
          diags.Error("action.port-operand",
                      "port()/mcast() take a constant or action parameter",
                      st.line);
      }

      // State references.  Each state array has a single stateful ALU
      // (Figure 4), so one action may touch it at most once; a second
      // read-modify-write in the same VLIW word would be order-dependent.
      if (!st.state.empty()) {
        if (spec.FindState(st.state) == nullptr)
          diags.Error("name.unknown-state",
                      "unknown state array '" + st.state + "'", st.line);
        if (!state_touched.insert(st.state).second)
          diags.Error("action.stateful-conflict",
                      "action '" + action.name + "' touches state '" +
                          st.state +
                          "' twice; each array has one stateful ALU per "
                          "packet",
                      st.line);
      }
      // Store source must be a field (the `store` ALU op stores a
      // container); constants must be staged through a field first.
      if (st.kind == Statement::Kind::kStore &&
          st.a.kind == Value::Kind::kConst)
        diags.Error("action.store-const",
                    "state stores take a field source; stage the constant "
                    "through a field with 'f = <const>;' in an earlier table",
                    st.line);

      // Operand name resolution.
      CheckValue(spec, &action, st.a, st.line, diags);
      CheckValue(spec, &action, st.b, st.line, diags);
      CheckValue(spec, &action, st.addr, st.line, diags);
    }
  }

  // --- tables ---------------------------------------------------------------
  std::map<std::string, std::string> state_owner;  // state -> table
  for (const auto& t : spec.tables) {
    if (t.keys.empty())
      diags.Error("table.no-key", "table '" + t.name + "' has no key",
                  t.line);
    std::size_t per_width[7] = {0};
    for (const auto& k : t.keys) {
      const FieldDef* f = spec.FindField(k);
      if (f == nullptr) {
        diags.Error("name.unknown-field",
                    "table '" + t.name + "' keys on unknown field '" + k +
                        "'",
                    t.line);
        continue;
      }
      if (f->width <= 6) ++per_width[f->width];
    }
    // The key extractor combines at most 2 containers of each type
    // (section 4.1).
    for (const std::size_t w : {2, 4, 6}) {
      if (per_width[w] > 2)
        diags.Error("table.key-width",
                    "table '" + t.name + "' uses more than 2 key fields of " +
                        std::to_string(w) + " bytes",
                    t.line);
    }
    if (t.actions.empty())
      diags.Error("table.no-actions", "table '" + t.name + "' has no actions",
                  t.line);
    for (const auto& a : t.actions)
      if (spec.FindAction(a) == nullptr)
        diags.Error("name.unknown-action",
                    "table '" + t.name + "' references unknown action '" + a +
                        "'",
                    t.line);
    if (t.predicate) {
      CheckValue(spec, nullptr, t.predicate->a, t.line, diags);
      CheckValue(spec, nullptr, t.predicate->b, t.line, diags);
      for (const Value* v : {&t.predicate->a, &t.predicate->b})
        if (v->kind == Value::Kind::kConst && v->constant >= 128)
          diags.Error("table.predicate-imm",
                      "predicate immediates are 7-bit (0-127)", t.line);
    }

    // Stateful arrays are bound to the single stage of the table touching
    // them; two tables sharing an array cannot be realized on RMT.
    const TableFootprint fp = FootprintOf(spec, t);
    for (const auto& s : fp.states) {
      auto [it, inserted] = state_owner.emplace(s, t.name);
      if (!inserted && it->second != t.name)
        diags.Error("state.multi-table",
                    "state '" + s + "' is touched by tables '" + it->second +
                        "' and '" + t.name +
                        "'; stateful memory is per-stage and cannot be "
                        "shared across stages",
                    t.line);
    }
  }
}

void ResourceCheck(const ModuleSpec& spec, const ModuleAllocation& alloc,
                   Diagnostics& diags) {
  const ResourceDemand d = ComputeDemand(spec);

  if (d.containers_2b > kContainersPerType)
    diags.Error("resource.containers", "module needs " +
                                           std::to_string(d.containers_2b) +
                                           " 2-byte containers; 8 exist");
  if (d.containers_4b > kContainersPerType)
    diags.Error("resource.containers", "module needs " +
                                           std::to_string(d.containers_4b) +
                                           " 4-byte containers; 8 exist");
  if (d.containers_6b > kContainersPerType)
    diags.Error("resource.containers", "module needs " +
                                           std::to_string(d.containers_6b) +
                                           " 6-byte containers; 8 exist");
  if (d.parser_actions > params::kParserActionsPerEntry)
    diags.Error("resource.parser-actions",
                "module parses " + std::to_string(d.parser_actions) +
                    " fields; a parser entry holds " +
                    std::to_string(params::kParserActionsPerEntry) +
                    " actions");
  if (d.stages > alloc.stages.size())
    diags.Error("resource.stages",
                "module has " + std::to_string(d.stages) +
                    " tables but is allocated " +
                    std::to_string(alloc.stages.size()) + " stages");

  // Per-stage checks follow program order: table i -> alloc.stages[i].
  for (std::size_t i = 0; i < spec.tables.size() && i < alloc.stages.size();
       ++i) {
    const TableDef& t = spec.tables[i];
    const StageAllocation& sa = alloc.stages[i];
    if (t.size > sa.cam_count)
      diags.Error("resource.match-entries",
                  "table '" + t.name + "' wants " + std::to_string(t.size) +
                      " entries but stage " + std::to_string(sa.stage) +
                      " allocation has " + std::to_string(sa.cam_count),
                  t.line);
  }

  // State: arrays live in the stage of their owning table.
  std::map<std::string, std::size_t> table_index;
  for (std::size_t i = 0; i < spec.tables.size(); ++i)
    table_index[spec.tables[i].name] = i;
  std::vector<std::size_t> stage_state_words(alloc.stages.size(), 0);
  for (std::size_t i = 0; i < spec.tables.size() && i < alloc.stages.size();
       ++i) {
    const TableFootprint fp = FootprintOf(spec, spec.tables[i]);
    for (const auto& sname : fp.states) {
      const StateDef* sd = spec.FindState(sname);
      if (sd != nullptr) stage_state_words[i] += sd->size;
    }
  }
  for (std::size_t i = 0; i < stage_state_words.size(); ++i) {
    if (stage_state_words[i] > alloc.stages[i].seg_range)
      diags.Error("resource.state-words",
                  "stage " + std::to_string(alloc.stages[i].stage) +
                      " needs " + std::to_string(stage_state_words[i]) +
                      " stateful words but the segment range is " +
                      std::to_string(alloc.stages[i].seg_range));
  }
}

std::vector<std::size_t> TableDependencyLevels(const ModuleSpec& spec) {
  const std::size_t n = spec.tables.size();
  std::vector<TableFootprint> fps;
  fps.reserve(n);
  for (const auto& t : spec.tables) fps.push_back(FootprintOf(spec, t));

  std::vector<std::size_t> level(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      // Match or action dependency: j reads or rewrites something i wrote,
      // or they touch the same stateful array.
      bool dep = false;
      for (const auto& w : fps[i].writes)
        if (fps[j].reads.contains(w) || fps[j].writes.contains(w)) dep = true;
      for (const auto& s : fps[i].states)
        if (fps[j].states.contains(s)) dep = true;
      if (dep) level[j] = std::max(level[j], level[i] + 1);
    }
  }
  return level;
}

}  // namespace menshen
