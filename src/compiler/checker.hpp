// Static checker and resource-usage checker (section 3.4).
//
// The static checker enforces the three isolation-relevant source
// properties the paper describes, plus basic semantic well-formedness:
//   1. modules must not modify the hardware statistics the system-level
//      module exposes (diagnostic code "static.stat-write");
//   2. modules must not modify their VLAN ID — a field overlapping the
//      VLAN TCI bytes may never be an assignment destination
//      ("static.vid-write");
//   3. modules must not recirculate packets ("static.recirculate").
//      (Routing-table loop freedom is checked in the control plane; see
//      runtime/loop_check.*.)
//
// The resource checker compares a module's demand against its allocation
// and refuses modules that exceed it ("resource.*" codes) — Menshen uses
// admission control instead of dynamic reassignment (section 3.4).
#pragma once

#include "common/diagnostics.hpp"
#include "compiler/allocation.hpp"
#include "compiler/module_spec.hpp"

namespace menshen {

/// Runs all static checks; records problems in `diags`.
void StaticCheck(const ModuleSpec& spec, Diagnostics& diags);

/// Runs the resource-usage check against `alloc`.
void ResourceCheck(const ModuleSpec& spec, const ModuleAllocation& alloc,
                   Diagnostics& diags);

/// Table-dependency analysis: returns, for each table index, the smallest
/// pipeline level it could run at (0-based), derived from read-after-write
/// dependencies on fields and shared state between tables.  Used by the
/// compiler to verify the program order is realizable and to report the
/// critical path length.
[[nodiscard]] std::vector<std::size_t> TableDependencyLevels(
    const ModuleSpec& spec);

}  // namespace menshen
