// Top-level compiler API.
//
// The Menshen compiler mirrors the structure of the paper's compiler
// (section 3.4): a frontend (the DSL parser standing in for the P4-16
// reference frontend/midend), the static and resource checkers, and a
// backend that emits per-module configuration for the Menshen hardware
// (codegen).  This header is the one most callers need.
#pragma once

#include <string_view>

#include "compiler/allocation.hpp"
#include "compiler/checker.hpp"
#include "compiler/codegen.hpp"
#include "compiler/dsl_parser.hpp"
#include "compiler/module_spec.hpp"

namespace menshen {

/// Parses DSL source and compiles it against `alloc`.  All frontend and
/// backend diagnostics end up in the result's diags().
[[nodiscard]] CompiledModule CompileDsl(std::string_view source,
                                        const ModuleAllocation& alloc,
                                        std::size_t placeholder_entries = 0);

}  // namespace menshen
