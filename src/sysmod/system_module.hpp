// The Menshen system-level module (section 3.3).
//
// A module, written in the module DSL, that the operator sandwiches around
// every tenant module: its first table runs in the pipeline's first stage
// (packets "pick up" system state — ingress accounting, statistics) and
// its second table runs in the last stage (virtual-IP routing: the tenant
// has set or preserved the virtual destination IP, and the system module
// maps it to an egress port, a multicast group, or a drop).  The split
// structure follows directly from the feed-forward nature of RMT.
//
// Because overlay tables are indexed by the packet's module ID, the
// system-level configuration is instantiated per tenant: compiling a
// tenant with CompileTenantWithSystem() produces a single configuration
// stack under the tenant's module ID whose stage-0/stage-4 tables are the
// system module's.
#pragma once

#include <string_view>
#include <vector>

#include "compiler/compiler.hpp"

namespace menshen {

/// Stages reserved for the system-level module.
inline constexpr u8 kSystemFirstStage = 0;
inline constexpr u8 kSystemLastStage = 4;
/// Stages available to tenant tables (between the system halves).
inline constexpr u8 kTenantFirstStage = 1;
inline constexpr u8 kTenantStageCount = 3;

/// DSL source of the system-level module (the paper's is 120 lines of
/// P4-16; this is its equivalent in the module DSL).
[[nodiscard]] std::string_view SystemModuleDsl();

/// Parsed system module spec.  Throws std::logic_error if the embedded
/// source fails to parse (covered by tests).
[[nodiscard]] const ModuleSpec& SystemModuleSpec();

/// A route the operator installs in the system module's last-stage table
/// for one tenant: virtual destination IP -> egress port or multicast
/// group (group != 0 wins over port) or drop.
struct SystemRoute {
  u32 virtual_ip = 0;
  u16 port = 0;
  u16 mcast_group = 0;
  bool drop = false;
};

/// Per-tenant system-module resources within the first/last stages.
struct SystemAllocation {
  StageAllocation first;  // stage 0: ingress accounting + stats
  StageAllocation last;   // stage 4: routing
};

/// Compiles `tenant` under `id` with the system-level module wrapped
/// around it.  `tenant_stages` are the tenant's stage allocations (within
/// stages 1-3); `sys` gives the tenant's slice of the system stages.
[[nodiscard]] CompiledModule CompileTenantWithSystem(
    const ModuleSpec& tenant, ModuleId id,
    const std::vector<StageAllocation>& tenant_stages,
    const SystemAllocation& sys);

/// Installs the operator-side system entries for one tenant into an
/// already compiled stack: the ingress accounting entry and the routing
/// entries.  Returns false (with diagnostics on the module) on error.
bool InstallSystemEntries(CompiledModule& stack,
                          const std::vector<SystemRoute>& routes);

/// Reads the tenant's ingress packet count maintained by the system
/// module's stage-0 state (for tests and the stats API).
[[nodiscard]] u64 ReadSystemRxCount(const class Pipeline& pipeline,
                                    const CompiledModule& stack);

}  // namespace menshen
