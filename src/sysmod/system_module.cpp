#include "sysmod/system_module.hpp"

#include <stdexcept>

#include "pipeline/pipeline.hpp"

namespace menshen {

std::string_view SystemModuleDsl() {
  // Field offsets follow the common VLAN-tagged IPv4/UDP header layout
  // (packet/headers.hpp): inner EtherType at byte 16, IPv4 destination at
  // byte 34.
  static constexpr std::string_view kSource = R"(
module system {
  # Headers every packet carries; parsed for all tenants.
  field sys_etype  : 2 @ 16;   # inner EtherType (0x0800 for IPv4)
  field sys_dst_ip : 4 @ 34;   # IPv4 destination = tenant virtual IP
  scratch sys_tmp  : 4;        # PHV-only accumulator

  # Per-tenant system state in the first stage: ingress packet counter
  # (word 0) and bytes-seen proxy (word 1, counted in packets here).
  state sys_rx[8];

  # First half (stage 0): account the packet, expose statistics.
  action sys_count {
    sys_tmp = incr(sys_rx[0]);
  }
  table sys_ingress {
    key = { sys_etype };
    actions = { sys_count };
    size = 2;
  }

  # Second half (stage 4): virtual-IP routing for the tenant.
  action sys_route(p)  { port(p); }
  action sys_mcast(g)  { mcast(g); }
  action sys_blackhole { drop(); }
  table sys_route_tbl {
    key = { sys_dst_ip };
    actions = { sys_route, sys_mcast, sys_blackhole };
    size = 4;
  }
}
)";
  return kSource;
}

const ModuleSpec& SystemModuleSpec() {
  static const ModuleSpec spec = [] {
    Diagnostics diags;
    ModuleSpec s = ParseModuleDsl(SystemModuleDsl(), diags);
    if (!diags.ok())
      throw std::logic_error("embedded system module failed to parse:\n" +
                             diags.ToString());
    return s;
  }();
  return spec;
}

CompiledModule CompileTenantWithSystem(
    const ModuleSpec& tenant, ModuleId id,
    const std::vector<StageAllocation>& tenant_stages,
    const SystemAllocation& sys) {
  // Stack order is pipeline order: the merged table list must place the
  // system ingress table before the tenant's tables and the routing table
  // after them.  CompileStack maps each member's tables onto its own
  // stage set in order, so we split the system module into its two halves.
  ModuleSpec sys_first = SystemModuleSpec();
  ModuleSpec sys_last;
  sys_last.name = "system.last";
  // Move the routing table (and nothing else) into the second member;
  // fields/actions stay with the first member and are shared through the
  // merged namespace... except CompileStack requires unique names, so the
  // second member carries only the table definition and the first member
  // keeps every field/action/state.
  for (auto it = sys_first.tables.begin(); it != sys_first.tables.end();) {
    if (it->name == "sys_route_tbl") {
      sys_last.tables.push_back(*it);
      it = sys_first.tables.erase(it);
    } else {
      ++it;
    }
  }

  return CompileStack({sys_first, tenant, sys_last},
                      {{sys.first},
                       tenant_stages,
                       {sys.last}},
                      id);
}

bool InstallSystemEntries(CompiledModule& stack,
                          const std::vector<SystemRoute>& routes) {
  // Ingress accounting: count every IPv4 packet of this tenant.
  stack.AddEntry("sys_ingress", {{"sys_etype", 0x0800}}, std::nullopt,
                 "sys_count", {});
  for (const SystemRoute& r : routes) {
    if (r.drop) {
      stack.AddEntry("sys_route_tbl", {{"sys_dst_ip", r.virtual_ip}},
                     std::nullopt, "sys_blackhole", {});
    } else if (r.mcast_group != 0) {
      stack.AddEntry("sys_route_tbl", {{"sys_dst_ip", r.virtual_ip}},
                     std::nullopt, "sys_mcast", {r.mcast_group});
    } else {
      stack.AddEntry("sys_route_tbl", {{"sys_dst_ip", r.virtual_ip}},
                     std::nullopt, "sys_route", {r.port});
    }
  }
  return stack.ok();
}

u64 ReadSystemRxCount(const Pipeline& pipeline, const CompiledModule& stack) {
  const auto& layout = stack.state_layout();
  const auto it = layout.find("sys_rx");
  if (it == layout.end())
    throw std::invalid_argument("stack has no system module state");
  const StatePlacement& sp = it->second;
  // The counter is word 0 of sys_rx within the module's segment; read it
  // through the physical address space like the control plane would.
  const Stage& stage = pipeline.stage(sp.stage);
  const SegmentEntry seg =
      stage.stateful().segment_table().At(stack.id().value());
  return stage.stateful().PhysicalAt(
      static_cast<std::size_t>(seg.offset) + sp.base);
}

}  // namespace menshen
