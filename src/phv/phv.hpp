// Packet Header Vector (PHV).
//
// Per Table 5 of the paper: three container types of 2, 4 and 6 bytes with
// 8 containers each, plus one 32-byte container for platform-specific
// metadata — 8*(2+4+6) + 32 = 128 bytes, 25 containers total.  The PHV is
// zeroed for every incoming packet so no contents can leak from one
// module's packet to the next (section 4.1).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>

#include "common/types.hpp"

namespace menshen {

enum class ContainerType : u8 { k2B = 0, k4B = 1, k6B = 2 };

inline constexpr std::size_t kContainersPerType = 8;
inline constexpr std::size_t kMetadataBytes = 32;
inline constexpr std::size_t kPhvBytes =
    kContainersPerType * (2 + 4 + 6) + kMetadataBytes;  // 128
inline constexpr std::size_t kNumAluContainers =
    3 * kContainersPerType + 1;  // 25: one ALU per container (section 3.1)

[[nodiscard]] constexpr std::size_t ContainerWidthBytes(ContainerType t) {
  switch (t) {
    case ContainerType::k2B:
      return 2;
    case ContainerType::k4B:
      return 4;
    case ContainerType::k6B:
      return 6;
  }
  return 0;
}

/// Identifies one PHV container: a type and an index 0-7.
struct ContainerRef {
  ContainerType type = ContainerType::k2B;
  u8 index = 0;

  [[nodiscard]] std::size_t width_bytes() const {
    return ContainerWidthBytes(type);
  }

  /// Flat container number 0-23 (2B: 0-7, 4B: 8-15, 6B: 16-23), used to
  /// index the 25-wide VLIW action word (slot 24 is the metadata ALU).
  [[nodiscard]] std::size_t flat() const {
    return static_cast<std::size_t>(type) * kContainersPerType + index;
  }

  [[nodiscard]] std::string ToString() const;

  bool operator==(const ContainerRef&) const = default;
  auto operator<=>(const ContainerRef&) const = default;
};

/// Well-known metadata layout within the 32-byte metadata container.
/// The first fields mirror what the paper inserts on its platforms: a
/// discard flag, source/destination port, packet length and a one-hot
/// packet-buffer tag (section 4.3).  The remaining words carry the
/// system-level statistics that the system module exposes read-only to
/// tenant modules (section 3.3).
namespace meta {
inline constexpr std::size_t kFlags = 0;        // bit0 = discard
inline constexpr std::size_t kSrcPort = 1;      // u16
inline constexpr std::size_t kDstPort = 3;      // u16
inline constexpr std::size_t kPktLen = 5;       // u16
inline constexpr std::size_t kBufferTag = 7;    // u8, one-hot 4 bits
inline constexpr std::size_t kEnqueueTs = 8;    // u32, set by traffic manager
inline constexpr std::size_t kQueueDelay = 12;  // u32
inline constexpr std::size_t kLinkUtil = 16;    // u32, system statistic
inline constexpr std::size_t kQueueLen = 20;    // u32, system statistic
inline constexpr std::size_t kMulticastGroup = 24;  // u16
inline constexpr std::size_t kUser = 26;        // scratch, u16 x3
}  // namespace meta

class Phv {
 public:
  /// A fresh PHV is all zeroes (isolation requirement, section 4.1).
  Phv() { bytes_.fill(0); }

  /// Reads a container as an unsigned big-endian value (2/4/6 bytes).
  [[nodiscard]] u64 Read(ContainerRef c) const;
  void Write(ContainerRef c, u64 value);

  /// Raw byte access to a container for parser/deparser data movement.
  [[nodiscard]] std::span<const u8> ContainerBytes(ContainerRef c) const;
  [[nodiscard]] std::span<u8> ContainerBytes(ContainerRef c);

  // Metadata accessors (offsets from the meta namespace).
  [[nodiscard]] u8 meta_u8(std::size_t off) const;
  [[nodiscard]] u16 meta_u16(std::size_t off) const;
  [[nodiscard]] u32 meta_u32(std::size_t off) const;
  void set_meta_u8(std::size_t off, u8 v);
  void set_meta_u16(std::size_t off, u16 v);
  void set_meta_u32(std::size_t off, u32 v);

  [[nodiscard]] bool discard_flag() const {
    return (meta_u8(meta::kFlags) & 1) != 0;
  }
  void set_discard_flag(bool v) {
    set_meta_u8(meta::kFlags, static_cast<u8>((meta_u8(meta::kFlags) & ~1u) |
                                              (v ? 1u : 0u)));
  }

  [[nodiscard]] std::span<const u8> raw() const { return bytes_; }

  /// The module ID travels alongside the PHV (split from it by the
  /// "masking RAM read latency" optimization, section 3.2, but logically
  /// part of the per-packet state).
  ModuleId module_id{0};

  bool operator==(const Phv& other) const {
    return bytes_ == other.bytes_ && module_id == other.module_id;
  }

 private:
  [[nodiscard]] std::size_t ContainerOffset(ContainerRef c) const;

  std::array<u8, kPhvBytes> bytes_{};
};

}  // namespace menshen
