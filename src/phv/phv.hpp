// Packet Header Vector (PHV).
//
// Per Table 5 of the paper: three container types of 2, 4 and 6 bytes with
// 8 containers each, plus one 32-byte container for platform-specific
// metadata — 8*(2+4+6) + 32 = 128 bytes, 25 containers total.  The PHV is
// zeroed for every incoming packet so no contents can leak from one
// module's packet to the next (section 4.1).
#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>

#include "common/types.hpp"

namespace menshen {

enum class ContainerType : u8 { k2B = 0, k4B = 1, k6B = 2 };

inline constexpr std::size_t kContainersPerType = 8;
inline constexpr std::size_t kMetadataBytes = 32;
inline constexpr std::size_t kPhvBytes =
    kContainersPerType * (2 + 4 + 6) + kMetadataBytes;  // 128
inline constexpr std::size_t kNumAluContainers =
    3 * kContainersPerType + 1;  // 25: one ALU per container (section 3.1)

[[nodiscard]] constexpr std::size_t ContainerWidthBytes(ContainerType t) {
  switch (t) {
    case ContainerType::k2B:
      return 2;
    case ContainerType::k4B:
      return 4;
    case ContainerType::k6B:
      return 6;
  }
  return 0;
}

/// Identifies one PHV container: a type and an index 0-7.
struct ContainerRef {
  ContainerType type = ContainerType::k2B;
  u8 index = 0;

  [[nodiscard]] std::size_t width_bytes() const {
    return ContainerWidthBytes(type);
  }

  /// Flat container number 0-23 (2B: 0-7, 4B: 8-15, 6B: 16-23), used to
  /// index the 25-wide VLIW action word (slot 24 is the metadata ALU).
  [[nodiscard]] std::size_t flat() const {
    return static_cast<std::size_t>(type) * kContainersPerType + index;
  }

  [[nodiscard]] std::string ToString() const;

  bool operator==(const ContainerRef&) const = default;
  auto operator<=>(const ContainerRef&) const = default;
};

/// Well-known metadata layout within the 32-byte metadata container.
/// The first fields mirror what the paper inserts on its platforms: a
/// discard flag, source/destination port, packet length and a one-hot
/// packet-buffer tag (section 4.3).  The remaining words carry the
/// system-level statistics that the system module exposes read-only to
/// tenant modules (section 3.3).
namespace meta {
inline constexpr std::size_t kFlags = 0;        // bit0 = discard
inline constexpr std::size_t kSrcPort = 1;      // u16
inline constexpr std::size_t kDstPort = 3;      // u16
inline constexpr std::size_t kPktLen = 5;       // u16
inline constexpr std::size_t kBufferTag = 7;    // u8, one-hot 4 bits
inline constexpr std::size_t kEnqueueTs = 8;    // u32, set by traffic manager
inline constexpr std::size_t kQueueDelay = 12;  // u32
inline constexpr std::size_t kLinkUtil = 16;    // u32, system statistic
inline constexpr std::size_t kQueueLen = 20;    // u32, system statistic
inline constexpr std::size_t kMulticastGroup = 24;  // u16
inline constexpr std::size_t kUser = 26;        // scratch, u16 x3
}  // namespace meta

class Phv {
 public:
  /// A fresh PHV is all zeroes (isolation requirement, section 4.1).
  Phv() { bytes_.fill(0); }

  /// Re-zeroes the PHV in place so one buffer can be reused across the
  /// packets of a batch without weakening the isolation guarantee: a
  /// cleared PHV is indistinguishable from a freshly constructed one.
  void Clear() {
    bytes_.fill(0);
    module_id = ModuleId(0);
  }

  // Container and metadata accessors are defined inline below: they are
  // the innermost operations of the per-packet hot path (every parser
  // action, key-extractor slot and ALU slot goes through them).

  /// Reads a container as an unsigned big-endian value (2/4/6 bytes).
  /// Dispatching on the type keeps each arm a fixed-width load the
  /// compiler turns into one (or two) byte-swapped moves instead of a
  /// variable-bound byte loop — this is the innermost read of every
  /// key-extractor slot and ALU operand.
  [[nodiscard]] u64 Read(ContainerRef c) const {
    const std::size_t off = ContainerOffset(c);
    switch (c.type) {
      case ContainerType::k2B:
        return LoadBe<2>(bytes_.data() + off);
      case ContainerType::k4B:
        return LoadBe<4>(bytes_.data() + off);
      case ContainerType::k6B:
        return (LoadBe<4>(bytes_.data() + off) << 16) |
               LoadBe<2>(bytes_.data() + off + 4);
    }
    return 0;
  }
  void Write(ContainerRef c, u64 value) {
    const std::size_t off = ContainerOffset(c);
    // Values are truncated to the container width, as hardware would.
    switch (c.type) {
      case ContainerType::k2B:
        StoreBe<2>(bytes_.data() + off, value);
        return;
      case ContainerType::k4B:
        StoreBe<4>(bytes_.data() + off, value);
        return;
      case ContainerType::k6B:
        StoreBe<4>(bytes_.data() + off, value >> 16);
        StoreBe<2>(bytes_.data() + off + 4, value);
        return;
    }
  }

  /// Raw byte access to a container for parser/deparser data movement.
  [[nodiscard]] std::span<const u8> ContainerBytes(ContainerRef c) const {
    return {bytes_.data() + ContainerOffset(c), c.width_bytes()};
  }
  [[nodiscard]] std::span<u8> ContainerBytes(ContainerRef c) {
    return {bytes_.data() + ContainerOffset(c), c.width_bytes()};
  }

  // Metadata accessors (offsets from the meta namespace).
  [[nodiscard]] u8 meta_u8(std::size_t off) const {
    CheckMeta(off, 1);
    return bytes_[kMetaBase + off];
  }
  [[nodiscard]] u16 meta_u16(std::size_t off) const {
    CheckMeta(off, 2);
    return static_cast<u16>((bytes_[kMetaBase + off] << 8) |
                            bytes_[kMetaBase + off + 1]);
  }
  [[nodiscard]] u32 meta_u32(std::size_t off) const {
    CheckMeta(off, 4);
    u32 v = 0;
    for (std::size_t i = 0; i < 4; ++i)
      v = (v << 8) | bytes_[kMetaBase + off + i];
    return v;
  }
  void set_meta_u8(std::size_t off, u8 v) {
    CheckMeta(off, 1);
    bytes_[kMetaBase + off] = v;
  }
  void set_meta_u16(std::size_t off, u16 v) {
    CheckMeta(off, 2);
    bytes_[kMetaBase + off] = static_cast<u8>(v >> 8);
    bytes_[kMetaBase + off + 1] = static_cast<u8>(v);
  }
  void set_meta_u32(std::size_t off, u32 v) {
    CheckMeta(off, 4);
    for (std::size_t i = 0; i < 4; ++i)
      bytes_[kMetaBase + off + i] = static_cast<u8>(v >> (8 * (3 - i)));
  }

  [[nodiscard]] bool discard_flag() const {
    return (meta_u8(meta::kFlags) & 1) != 0;
  }
  void set_discard_flag(bool v) {
    set_meta_u8(meta::kFlags, static_cast<u8>((meta_u8(meta::kFlags) & ~1u) |
                                              (v ? 1u : 0u)));
  }

  [[nodiscard]] std::span<const u8> raw() const { return bytes_; }
  /// Mutable raw view for the compiled parse/deparse plans, which move
  /// bytes by precomputed container offsets (ByteOffsetOf) instead of
  /// per-action container dispatch.
  [[nodiscard]] std::span<u8> mutable_raw() { return bytes_; }

  /// Byte offset of a container within the PHV — the compile-time form
  /// of ContainerBytes, used by the execution-plan compiler.
  [[nodiscard]] static std::size_t ByteOffsetOf(ContainerRef c) {
    if (c.index >= kContainersPerType)
      throw std::out_of_range("PHV container index out of range");
    // Layout: 8 x 2B, then 8 x 4B, then 8 x 6B, then 32B metadata.
    switch (c.type) {
      case ContainerType::k2B:
        return c.index * 2;
      case ContainerType::k4B:
        return kContainersPerType * 2 + c.index * 4;
      case ContainerType::k6B:
        return kContainersPerType * (2 + 4) + c.index * 6;
    }
    throw std::invalid_argument("bad container type");
  }

  /// The module ID travels alongside the PHV (split from it by the
  /// "masking RAM read latency" optimization, section 3.2, but logically
  /// part of the per-packet state).
  ModuleId module_id{0};

  bool operator==(const Phv& other) const {
    return bytes_ == other.bytes_ && module_id == other.module_id;
  }

 private:
  static constexpr std::size_t kMetaBase =
      kContainersPerType * (2 + 4 + 6);  // metadata follows the containers

  /// Fixed-width big-endian load/store primitives (W in {2, 4}).
  template <std::size_t W>
  [[nodiscard]] static u64 LoadBe(const u8* p) {
    if constexpr (W == 2) {
      u16 v;
      std::memcpy(&v, p, 2);
      return __builtin_bswap16(v);
    } else {
      u32 v;
      std::memcpy(&v, p, 4);
      return __builtin_bswap32(v);
    }
  }
  template <std::size_t W>
  static void StoreBe(u8* p, u64 value) {
    if constexpr (W == 2) {
      const u16 v = __builtin_bswap16(static_cast<u16>(value));
      std::memcpy(p, &v, 2);
    } else {
      const u32 v = __builtin_bswap32(static_cast<u32>(value));
      std::memcpy(p, &v, 4);
    }
  }

  [[nodiscard]] std::size_t ContainerOffset(ContainerRef c) const {
    return ByteOffsetOf(c);
  }

  static void CheckMeta(std::size_t off, std::size_t len) {
    if (off + len > kMetadataBytes)
      throw std::out_of_range("PHV metadata access out of range");
  }

  std::array<u8, kPhvBytes> bytes_{};
};

}  // namespace menshen
