#include "phv/phv.hpp"

namespace menshen {

std::string ContainerRef::ToString() const {
  std::string out;
  out += std::to_string(width_bytes() * 8);
  out += "b[";
  out += std::to_string(index);
  out += "]";
  return out;
}

std::size_t Phv::ContainerOffset(ContainerRef c) const {
  if (c.index >= kContainersPerType)
    throw std::out_of_range("PHV container index out of range");
  // Layout: 8 x 2B, then 8 x 4B, then 8 x 6B, then 32B metadata.
  switch (c.type) {
    case ContainerType::k2B:
      return c.index * 2;
    case ContainerType::k4B:
      return kContainersPerType * 2 + c.index * 4;
    case ContainerType::k6B:
      return kContainersPerType * (2 + 4) + c.index * 6;
  }
  throw std::invalid_argument("bad container type");
}

u64 Phv::Read(ContainerRef c) const {
  const std::size_t off = ContainerOffset(c);
  const std::size_t w = c.width_bytes();
  u64 v = 0;
  for (std::size_t i = 0; i < w; ++i) v = (v << 8) | bytes_[off + i];
  return v;
}

void Phv::Write(ContainerRef c, u64 value) {
  const std::size_t off = ContainerOffset(c);
  const std::size_t w = c.width_bytes();
  // Values are truncated to the container width, as hardware would.
  for (std::size_t i = 0; i < w; ++i)
    bytes_[off + i] = static_cast<u8>(value >> (8 * (w - 1 - i)));
}

std::span<const u8> Phv::ContainerBytes(ContainerRef c) const {
  return {bytes_.data() + ContainerOffset(c), c.width_bytes()};
}

std::span<u8> Phv::ContainerBytes(ContainerRef c) {
  return {bytes_.data() + ContainerOffset(c), c.width_bytes()};
}

namespace {
constexpr std::size_t kMetaBase =
    kContainersPerType * (2 + 4 + 6);  // metadata starts after containers

void CheckMeta(std::size_t off, std::size_t len) {
  if (off + len > kMetadataBytes)
    throw std::out_of_range("PHV metadata access out of range");
}
}  // namespace

u8 Phv::meta_u8(std::size_t off) const {
  CheckMeta(off, 1);
  return bytes_[kMetaBase + off];
}

u16 Phv::meta_u16(std::size_t off) const {
  CheckMeta(off, 2);
  return static_cast<u16>((bytes_[kMetaBase + off] << 8) |
                          bytes_[kMetaBase + off + 1]);
}

u32 Phv::meta_u32(std::size_t off) const {
  CheckMeta(off, 4);
  u32 v = 0;
  for (std::size_t i = 0; i < 4; ++i) v = (v << 8) | bytes_[kMetaBase + off + i];
  return v;
}

void Phv::set_meta_u8(std::size_t off, u8 v) {
  CheckMeta(off, 1);
  bytes_[kMetaBase + off] = v;
}

void Phv::set_meta_u16(std::size_t off, u16 v) {
  CheckMeta(off, 2);
  bytes_[kMetaBase + off] = static_cast<u8>(v >> 8);
  bytes_[kMetaBase + off + 1] = static_cast<u8>(v);
}

void Phv::set_meta_u32(std::size_t off, u32 v) {
  CheckMeta(off, 4);
  for (std::size_t i = 0; i < 4; ++i)
    bytes_[kMetaBase + off + i] = static_cast<u8>(v >> (8 * (3 - i)));
}

}  // namespace menshen
