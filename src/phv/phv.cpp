#include "phv/phv.hpp"

namespace menshen {

std::string ContainerRef::ToString() const {
  std::string out;
  out += std::to_string(width_bytes() * 8);
  out += "b[";
  out += std::to_string(index);
  out += "]";
  return out;
}

}  // namespace menshen
