#include "dataplane/dataplane.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <stdexcept>
#include <utility>

#include "packet/arena.hpp"

namespace menshen {

namespace {

// SplitMix64 finalizer: cheap, well-mixed tenant-ID hash so consecutive
// VIDs do not all land on the same shard.
u64 MixTenantId(u64 x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Packets without a VLAN tag carry no tenant ID (dropped identically by
// any replica's filter); this sentinel keeps them out of the per-tenant
// counters.
constexpr u16 kNoVid = 0xFFFF;

// Grouping key for the no-VLAN packets during the scatter (they all go
// to shard 0 as one pseudo-tenant group).
constexpr u32 kNoVlanKey = ModuleId::kMax + 1;

// Upper bound on pooled WorkBuffers: enough for several in-flight
// tickets' worth of sub-batches without holding memory forever.
constexpr std::size_t kBufferPoolCap = 64;

/// Per-producer scatter scratch (thread-local, so any number of
/// producers submit without sharing): the tenant-grouping tables and
/// the per-shard work array, all reused across Submits so the scatter
/// itself allocates nothing in steady state.
struct ScatterScratch {
  /// One tenant (or the no-VLAN pseudo-tenant) appearing in this batch.
  struct Group {
    u32 shard = 0;
    u32 count = 0;   // packets in this group
    u32 base = 0;    // start offset inside the shard's sub-batch
    u32 cursor = 0;  // next position during placement
    bool stealable = false;  // tenant's plan is provably stateless
  };
  std::vector<Group> groups;        // first-appearance order
  std::vector<u32> group_of;        // packet index -> group index
  std::vector<u32> slot;            // key -> group index (stamped)
  std::vector<u32> stamp;           // key -> generation of `slot`
  u32 gen = 0;
  std::vector<u32> shard_total;     // shard -> sub-batch size
  std::vector<u8> shard_stealable;  // shard -> all groups stealable
  std::vector<ingress::ShardWork> works;
  std::vector<ingress::StreamWork> stream_works;
};

thread_local ScatterScratch tls_scatter;

}  // namespace

// --- Engine gates --------------------------------------------------------------

class Dataplane::ExclusiveGate {
 public:
  explicit ExclusiveGate(const Dataplane& dp) : dp_(dp) {
    dp_.exclusive_waiting_.fetch_add(1, std::memory_order_acq_rel);
    dp_.engine_mutex_.lock();
    dp_.exclusive_waiting_.fetch_sub(1, std::memory_order_acq_rel);
  }
  ~ExclusiveGate() { dp_.engine_mutex_.unlock(); }
  ExclusiveGate(const ExclusiveGate&) = delete;
  ExclusiveGate& operator=(const ExclusiveGate&) = delete;

 private:
  const Dataplane& dp_;
};

class Dataplane::SharedGate {
 public:
  explicit SharedGate(const Dataplane& dp) : dp_(dp) {
    // Back off while a writer waits: pthread rwlocks prefer readers by
    // default, and a continuous submit load must not starve CommitEpoch.
    while (dp_.exclusive_waiting_.load(std::memory_order_acquire) != 0)
      std::this_thread::yield();
    dp_.engine_mutex_.lock_shared();
  }
  ~SharedGate() { dp_.engine_mutex_.unlock_shared(); }
  SharedGate(const SharedGate&) = delete;
  SharedGate& operator=(const SharedGate&) = delete;

 private:
  const Dataplane& dp_;
};

// --- Construction / teardown ---------------------------------------------------

Dataplane::Dataplane(DataplaneConfig cfg)
    : cfg_(cfg), telemetry_(cfg.telemetry) {
  if (cfg_.num_shards == 0) {
    // Auto-scale: one replica per hardware thread (at least one — the
    // standard leaves hardware_concurrency free to return 0).
    cfg_.num_shards =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (cfg_.ingress_queue_depth < 2) cfg_.ingress_queue_depth = 2;

  steering_ = std::vector<std::atomic<u32>>(ModuleId::kMax + 1);
  for (auto& s : steering_) s.store(kNoSteering, std::memory_order_relaxed);
  tenant_forwarded_.resize(ModuleId::kMax + 1);
  tenant_dropped_.resize(ModuleId::kMax + 1);
  tenant_stealable_ = std::vector<std::atomic<u8>>(ModuleId::kMax + 1);
  ingress_depth_.store(cfg_.ingress_queue_depth, std::memory_order_release);

  for (std::size_t s = 0; s < cfg_.num_shards; ++s) AddShardLocked();
  num_shards_.store(cfg_.num_shards, std::memory_order_release);
}

Dataplane::~Dataplane() {
  // Drain first so no ticket is abandoned with a broken promise, then
  // stop every worker.
  ExclusiveGate gate(*this);
  DrainLocked();
  for (std::size_t s = 0; s < shard_ctx_.size(); ++s) StopWorkerLocked(s);
}

void Dataplane::AddShardLocked() {
  const std::size_t s = shards_.size();
  Pipeline& replica = shards_.emplace_back(cfg_.timing,
                                           cfg_.reconfig_on_data_path);
  replica.SetBurstProbeEnabled(cfg_.burst_probe);
  // A replica born after traffic started must carry the same
  // configuration as its siblings: replay the log (last write per
  // resource address).
  for (const auto& [key, write] : config_log_) replica.ApplyWrite(write);
  shard_ctx_.push_back(
      std::make_unique<ShardContext>(cfg_.ingress_queue_depth));
  telemetry_.EnsureShards(s + 1);
  if (s < kStealTableSize)
    steal_table_[s].store(shard_ctx_.back().get(), std::memory_order_release);
  StartWorkerLocked(s);
}

void Dataplane::StartWorkerLocked(std::size_t s) {
  if (!cfg_.worker_threads) return;
  ShardContext* ctx = shard_ctx_[s].get();
  ctx->stop.store(false, std::memory_order_seq_cst);
  ctx->steal_hint.store(0, std::memory_order_relaxed);
  ctx->worker = std::thread([this, ctx, s] { WorkerLoop(ctx, s); });
  workers_running_.fetch_add(1, std::memory_order_acq_rel);
}

void Dataplane::StopWorkerLocked(std::size_t s) {
  ShardContext& ctx = *shard_ctx_[s];
  if (!ctx.worker.joinable()) return;
  {
    std::lock_guard<std::mutex> g(ctx.m);
    ctx.stop.store(true, std::memory_order_seq_cst);
  }
  ctx.cv.notify_all();
  ctx.worker.join();
  workers_running_.fetch_sub(1, std::memory_order_acq_rel);
}

// --- Steering ------------------------------------------------------------------

std::size_t Dataplane::ShardForLocked(ModuleId tenant,
                                      std::size_t shard_count) const {
  const u32 steered =
      steering_[tenant.value()].load(std::memory_order_acquire);
  if (steered != kNoSteering && steered < shard_count) return steered;
  return MixTenantId(tenant.value()) % shard_count;
}

std::size_t Dataplane::ShardFor(ModuleId tenant) const {
  return ShardForLocked(tenant, num_shards());
}

// --- Ingress: submit / scatter / workers ---------------------------------------

std::future<std::vector<PipelineResult>> Dataplane::Submit(
    BatchTicket&& ticket) {
  // One TSC read per batch: the ingress side of the batched latency
  // histograms (and the trace records' ns field).
  if (telemetry_.histograms_enabled() || telemetry_.sample_every() != 0)
    ticket.ingress_tsc = TscClock::Now();
  auto state = std::make_shared<ingress::TicketState>();
  state->results.resize(ticket.batch.size());
  state->on_complete = std::move(ticket.on_complete);
  std::future<std::vector<PipelineResult>> fut = state->promise.get_future();
  if (cfg_.worker_threads) {
    // Async engine: hold the engine shared only for the scatter+enqueue
    // window, so producers run concurrently with each other and with the
    // shard workers.
    SharedGate gate(*this);
    ScatterAndDispatch(std::move(ticket), state, /*inline_run=*/false);
  } else {
    // Sequential reference engine: the submitting thread runs every
    // shard's sub-batch itself, serialized against everything else.
    ExclusiveGate gate(*this);
    ScatterAndDispatch(std::move(ticket), state, /*inline_run=*/true);
  }
  // Drop the submitter's ticket reference only after the gate above is
  // released: when this is the last reference (inline mode, or every
  // worker already finished its slice), the completion — including the
  // user's on_complete callback — must not run while this thread holds
  // the engine.
  state->FinishOneShard();
  return fut;
}

std::vector<PipelineResult> Dataplane::ProcessBatch(
    std::vector<Packet>&& batch) {
  BatchTicket ticket;
  ticket.batch = std::move(batch);
  return Submit(std::move(ticket)).get();
}

void Dataplane::SubmitStream(ArenaPacket* const* pkts, std::size_t n) {
  if (n == 0) return;
  // One TSC read per burst, shared by every packet in it: the ingress
  // side of the streaming latency histograms.
  if (telemetry_.histograms_enabled() || telemetry_.sample_every() != 0) {
    const u64 now = TscClock::Now();
    for (std::size_t i = 0; i < n; ++i) pkts[i]->ingress_tsc = now;
  }
  // Without worker threads the producer core IS the forwarding core:
  // it runs the burst to completion itself, under the shared gate so
  // producers on different shards execute in parallel (per-shard
  // serialization happens on ShardContext::stream_m).  Config
  // operations still exclude everything via the exclusive gate.
  SharedGate gate(*this);
  ScatterStream(pkts, n, /*inline_run=*/!cfg_.worker_threads);
}

void Dataplane::ScatterStream(ArenaPacket* const* pkts, std::size_t n,
                              bool inline_run) {
  const std::size_t shard_count = shards_.size();
  ScatterScratch& sc = tls_scatter;

  // Pass 1 — group by tenant, exactly like the batched scatter: whole
  // tenant groups per shard burst, arrival order within a tenant.
  if (sc.slot.size() < kNoVlanKey + 1) {
    sc.slot.resize(kNoVlanKey + 1, 0);
    sc.stamp.resize(kNoVlanKey + 1, 0);
  }
  if (++sc.gen == 0) {
    std::fill(sc.stamp.begin(), sc.stamp.end(), 0u);
    sc.gen = 1;
  }
  sc.groups.clear();
  sc.group_of.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const u32 key = pkts[i]->has_vlan() ? pkts[i]->vid().value() : kNoVlanKey;
    if (sc.stamp[key] != sc.gen) {
      sc.stamp[key] = sc.gen;
      sc.slot[key] = static_cast<u32>(sc.groups.size());
      const std::size_t s =
          key == kNoVlanKey
              ? 0
              : ShardForLocked(ModuleId(static_cast<u16>(key)), shard_count);
      sc.groups.push_back(
          ScatterScratch::Group{static_cast<u32>(s), 0, 0, 0, false});
    }
    const u32 g = sc.slot[key];
    ++sc.groups[g].count;
    sc.group_of[i] = g;
  }

  sc.shard_total.assign(shard_count, 0);
  for (ScatterScratch::Group& g : sc.groups) {
    g.base = sc.shard_total[g.shard];
    g.cursor = 0;
    sc.shard_total[g.shard] += g.count;
  }

  // Pass 2 — place the packet pointers into pooled burst arrays.
  if (sc.stream_works.size() < shard_count) sc.stream_works.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (sc.shard_total[s] == 0) continue;
    sc.stream_works[s].pkts = AcquireStreamBuffer();
    sc.stream_works[s].pkts.resize(sc.shard_total[s]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    ScatterScratch::Group& g = sc.groups[sc.group_of[i]];
    sc.stream_works[g.shard].pkts[g.base + g.cursor++] = pkts[i];
  }

  for (std::size_t s = 0; s < shard_count; ++s) {
    if (sc.shard_total[s] == 0) continue;
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (inline_run) {
      ShardContext& ictx = *shard_ctx_[s];
      std::lock_guard<std::mutex> lk(ictx.stream_m);
      ExecuteStreamWork(s, sc.stream_works[s]);
      sc.stream_works[s] = ingress::StreamWork{};
      continue;
    }
    ShardContext& ctx = *shard_ctx_[s];
    // Backpressure on a full ring; one producer_stalls tick per stalled
    // push (not per retry) keeps the controller's signal proportional
    // to how often producers actually block.
    bool stalled = false;
    while (!ctx.stream_queue.TryPush(std::move(sc.stream_works[s]))) {
      if (!stalled) {
        ctx.producer_stalls.Add(1);
        stalled = true;
      }
      std::this_thread::yield();
    }
    sc.stream_works[s] = ingress::StreamWork{};
    if (ctx.parked.load(std::memory_order_seq_cst)) {
      { std::lock_guard<std::mutex> g(ctx.m); }
      ctx.cv.notify_one();
    }
  }
}

std::size_t Dataplane::PollEgress(std::vector<ArenaPacket*>& out) {
  SharedGate gate(*this);
  std::size_t appended = 0;
  {
    // Quiesce-overflow first: packets parked here by a migration or
    // resize precede — per tenant — anything now sitting in a shard
    // egress queue.
    std::lock_guard<std::mutex> lk(overflow_m_);
    if (!egress_overflow_.empty()) {
      out.insert(out.end(), egress_overflow_.begin(), egress_overflow_.end());
      appended += egress_overflow_.size();
      egress_overflow_.clear();
    }
  }
  for (const auto& ctx : shard_ctx_) {
    std::lock_guard<std::mutex> lk(ctx->egress_m);
    if (ctx->egress.empty()) continue;
    out.insert(out.end(), ctx->egress.begin(), ctx->egress.end());
    appended += ctx->egress.size();
    ctx->egress.clear();
  }
  return appended;
}

void Dataplane::FlushEgressLocked() {
  std::lock_guard<std::mutex> lk(overflow_m_);
  for (const auto& ctx : shard_ctx_) {
    std::lock_guard<std::mutex> g(ctx->egress_m);
    egress_overflow_.insert(egress_overflow_.end(), ctx->egress.begin(),
                            ctx->egress.end());
    ctx->egress.clear();
  }
}

void Dataplane::BindEgressDevice(Network& net, std::map<u16, PortRef> port_map) {
  // Validate up front: an Injection at a host-less port throws deep
  // inside the hop loop, after some packets may already have entered
  // the network.  Failing here keeps FlushEgress all-or-nothing.
  for (const auto& [local_port, ref] : port_map) {
    if (!net.HasHost(ref)) {
      throw std::invalid_argument(
          "BindEgressDevice: no host attached at " + ref.device + ":" +
          std::to_string(ref.port) + " (mapped from egress port " +
          std::to_string(local_port) + ")");
    }
  }
  std::lock_guard<std::mutex> lk(egress_bind_m_);
  egress_net_ = &net;
  egress_ports_ = std::move(port_map);
}

std::vector<Delivery> Dataplane::FlushEgress(std::size_t max_hops) {
  // Drain first (PollEgress already implements the ordering contract:
  // quiesce-overflow FIFO, then shard queues in shard order), then
  // translate the drained run into one grouped InjectBatch under the
  // binding lock.  Draining outside the lock would let two concurrent
  // FlushEgress calls interleave their injection order, so the whole
  // flush is serialized.
  std::lock_guard<std::mutex> lk(egress_bind_m_);
  std::vector<ArenaPacket*> drained;
  if (PollEgress(drained) == 0) return {};

  std::vector<Injection> injections;
  injections.reserve(drained.size());
  u64 unbound = 0;
  for (ArenaPacket* p : drained) {
    const auto bytes = p->bytes().bytes();
    std::size_t copies = 0;
    const auto inject_via = [&](u16 local_port) {
      const auto it = egress_ports_.find(local_port);
      if (it == egress_ports_.end() || egress_net_ == nullptr) return;
      injections.push_back(Injection{
          it->second,
          Packet(ByteBuffer(std::vector<u8>(bytes.begin(), bytes.end())))});
      ++copies;
    };
    if (p->disposition == Disposition::kMulticast) {
      for (const u16 mp : p->multicast_ports) inject_via(mp);
    } else {
      inject_via(p->egress_port);
    }
    if (copies == 0) ++unbound;
  }
  // Buffers go back to their arenas before the injection runs: the
  // network works on owned copies, so producers can refill while the
  // hop loop executes.
  ReleaseToOwners(drained.data(), drained.size());
  if (unbound != 0)
    egress_unbound_.fetch_add(unbound, std::memory_order_acq_rel);
  if (injections.empty() || egress_net_ == nullptr) return {};
  egress_tx_.fetch_add(injections.size(), std::memory_order_acq_rel);
  return egress_net_->InjectBatch(std::move(injections), max_hops);
}

void Dataplane::SetIngressQueueDepth(std::size_t depth) {
  if (depth < 2) depth = 2;
  ExclusiveGate gate(*this);
  DrainLocked();
  if (depth == cfg_.ingress_queue_depth) return;
  // The rings reallocate only when quiescent AND consumer-free: stop
  // every worker (queues are drained, so nothing is lost), swap the
  // storage, restart.
  for (std::size_t s = 0; s < shard_ctx_.size(); ++s) StopWorkerLocked(s);
  for (const auto& ctx : shard_ctx_) {
    ctx->queue.Reset(depth);
    ctx->stream_queue.Reset(depth);
  }
  cfg_.ingress_queue_depth = depth;
  ingress_depth_.store(depth, std::memory_order_release);
  for (std::size_t s = 0; s < shard_ctx_.size(); ++s) StartWorkerLocked(s);
}

Dataplane::WorkBuffers Dataplane::AcquireWorkBuffers() {
  std::unique_lock<std::mutex> lk(pool_mutex_, std::try_to_lock);
  if (lk.owns_lock() && !buffer_pool_.empty()) {
    WorkBuffers b = std::move(buffer_pool_.back());
    buffer_pool_.pop_back();
    return b;
  }
  return WorkBuffers{};
}

void Dataplane::RecycleWorkBuffers(std::vector<Packet>&& packets,
                                   std::vector<std::size_t>&& indices) {
  packets.clear();  // elements are consumed husks; capacity is the value
  indices.clear();
  std::unique_lock<std::mutex> lk(pool_mutex_, std::try_to_lock);
  if (!lk.owns_lock() || buffer_pool_.size() >= kBufferPoolCap) return;
  buffer_pool_.push_back(WorkBuffers{std::move(packets), std::move(indices)});
}

std::vector<ArenaPacket*> Dataplane::AcquireStreamBuffer() {
  std::unique_lock<std::mutex> lk(pool_mutex_, std::try_to_lock);
  if (lk.owns_lock() && !stream_pool_.empty()) {
    std::vector<ArenaPacket*> b = std::move(stream_pool_.back());
    stream_pool_.pop_back();
    return b;
  }
  return {};
}

void Dataplane::RecycleStreamBuffer(std::vector<ArenaPacket*>&& buf) {
  buf.clear();  // pointers are handed off; capacity is the value
  std::unique_lock<std::mutex> lk(pool_mutex_, std::try_to_lock);
  if (!lk.owns_lock() || stream_pool_.size() >= kBufferPoolCap) return;
  stream_pool_.push_back(std::move(buf));
}

void Dataplane::ScatterAndDispatch(
    BatchTicket&& ticket, const std::shared_ptr<ingress::TicketState>& state,
    bool inline_run) {
  const std::size_t shard_count = shards_.size();
  std::vector<Packet>& batch = ticket.batch;
  const std::size_t n = batch.size();
  ScatterScratch& sc = tls_scatter;

  // Pass 1 — group the batch by tenant (first-appearance order).  Each
  // shard's sub-batch is laid out as whole tenant groups, maximizing the
  // module-run length the pipeline's run segmentation sees, while the
  // order *within* a tenant stays the arrival order — per-tenant streams
  // are byte-identical to the ungrouped scatter (cross-tenant order
  // within a sub-batch was never observable: tenants share no state and
  // results gather by original batch index).  Packets without a VLAN tag
  // form one pseudo-group on shard 0 (any replica's filter drops them
  // identically).
  if (sc.slot.size() < kNoVlanKey + 1) {
    sc.slot.resize(kNoVlanKey + 1, 0);
    sc.stamp.resize(kNoVlanKey + 1, 0);
  }
  if (++sc.gen == 0) {  // generation wrap: invalidate all stamps
    std::fill(sc.stamp.begin(), sc.stamp.end(), 0u);
    sc.gen = 1;
  }
  // A sub-batch is stealable only when every tenant in it has a
  // provably stateless plan (stolen work runs on the thief's replica —
  // identical configuration, so stateless output cannot differ) and the
  // filter's buffer-tag round-robin is order-insensitive (one deparser
  // means every tag is 0).
  const bool steal_ok = StealActive() && !inline_run && shard_count > 1;
  sc.groups.clear();
  sc.group_of.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const u32 key = batch[i].has_vlan() ? batch[i].vid().value() : kNoVlanKey;
    if (sc.stamp[key] != sc.gen) {
      sc.stamp[key] = sc.gen;
      sc.slot[key] = static_cast<u32>(sc.groups.size());
      const std::size_t s =
          key == kNoVlanKey
              ? 0
              : ShardForLocked(ModuleId(static_cast<u16>(key)), shard_count);
      const bool st = steal_ok && key != kNoVlanKey &&
                      TenantStealable(static_cast<u16>(key));
      sc.groups.push_back(
          ScatterScratch::Group{static_cast<u32>(s), 0, 0, 0, st});
    }
    const u32 g = sc.slot[key];
    ++sc.groups[g].count;
    sc.group_of[i] = g;
  }

  // Group base offsets: a running prefix per shard, in first-appearance
  // order, so each shard's sub-batch is a concatenation of its groups.
  sc.shard_total.assign(shard_count, 0);
  sc.shard_stealable.assign(shard_count, 1);
  for (ScatterScratch::Group& g : sc.groups) {
    g.base = sc.shard_total[g.shard];
    g.cursor = 0;
    sc.shard_total[g.shard] += g.count;
    if (!g.stealable) sc.shard_stealable[g.shard] = 0;
  }

  // Pass 2 — place the packets.  The per-shard vectors come from the
  // recycle pool (workers return consumed sub-batch storage), so a
  // steady load allocates nothing here.
  if (sc.works.size() < shard_count) sc.works.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (sc.shard_total[s] == 0) continue;
    WorkBuffers buffers = AcquireWorkBuffers();
    sc.works[s].packets = std::move(buffers.packets);
    sc.works[s].indices = std::move(buffers.indices);
    sc.works[s].packets.resize(sc.shard_total[s]);
    sc.works[s].indices.resize(sc.shard_total[s]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    ScatterScratch::Group& g = sc.groups[sc.group_of[i]];
    const std::size_t pos = g.base + g.cursor++;
    sc.works[g.shard].packets[pos] = std::move(batch[i]);
    sc.works[g.shard].indices[pos] = i;
  }

  std::size_t involved = 0;
  for (std::size_t s = 0; s < shard_count; ++s)
    if (sc.shard_total[s] != 0) ++involved;
  // +1: the submitter holds one reference until every shard is enqueued,
  // so a fast worker cannot complete the ticket mid-dispatch.  This also
  // makes an empty batch complete (with empty results) right here.
  state->shards_pending.store(involved + 1, std::memory_order_relaxed);

  for (std::size_t s = 0; s < shard_count; ++s) {
    if (sc.shard_total[s] == 0) continue;
    sc.works[s].ticket = state;
    sc.works[s].ingress_tsc = ticket.ingress_tsc;
    sc.works[s].stealable = steal_ok && sc.shard_stealable[s] != 0 &&
                            sc.shard_total[s] >= cfg_.steal_min_packets;
    const bool stealable = sc.works[s].stealable;
    // Dispatched-but-unfinished accounting for DrainLocked: stolen work
    // is invisible to the per-shard busy scan, never to this counter.
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (inline_run) {
      ExecuteWork(s, sc.works[s]);
      sc.works[s] = ingress::ShardWork{};
      continue;
    }
    ShardContext& ctx = *shard_ctx_[s];
    // Backpressure: a full ring parks the producer, not the queue memory.
    while (!ctx.queue.TryPush(std::move(sc.works[s])))
      std::this_thread::yield();
    sc.works[s] = ingress::ShardWork{};
    // Doorbell: ring only when the worker may be parked.  The seq_cst
    // pairing with the worker's park sequence guarantees that if the
    // worker saw an empty ring, we see parked == true here (or it sees
    // our push) — a wakeup is never lost.
    if (ctx.parked.load(std::memory_order_seq_cst)) {
      { std::lock_guard<std::mutex> g(ctx.m); }
      ctx.cv.notify_one();
    }
    if (stealable && ctx.queue.approx_size() > 1) {
      // The target shard has a backlog of stealable work: wake one
      // parked neighbour to come drain it.  The hint is part of the
      // neighbour's park predicate, so the wakeup cannot be lost.
      const std::size_t scan =
          std::min<std::size_t>(shard_count, kStealTableSize);
      for (std::size_t off = 1; off < scan; ++off) {
        ShardContext* peer =
            steal_table_[(s + off) % scan].load(std::memory_order_acquire);
        if (peer == nullptr || peer == &ctx) continue;
        if (!peer->parked.load(std::memory_order_seq_cst)) continue;
        peer->steal_hint.store(1, std::memory_order_seq_cst);
        { std::lock_guard<std::mutex> g(peer->m); }
        peer->cv.notify_one();
        break;
      }
    }
  }
  // The submitter's own +1 reference is released by Submit, outside the
  // engine gate.
}

void Dataplane::WorkerLoop(ShardContext* ctx, std::size_t s) {
  ingress::ShardWork work;
  ingress::StreamWork swork;
  for (;;) {
    // busy spans the pop and the execution, so the drain path's
    // (empty ring && !busy) check never declares an in-flight sub-batch
    // quiescent.
    ctx->busy.store(true, std::memory_order_seq_cst);
    bool popped;
    if (StealActive()) {
      // The pop mutex makes "single consumer" a role rather than a
      // thread: thieves try_lock the same mutex before TryPopIf.
      std::lock_guard<std::mutex> pl(ctx->pop_m);
      popped = ctx->queue.TryPop(work);
    } else {
      // No thief can exist under this configuration: the worker is the
      // ring's only consumer and pops lock-free.
      popped = ctx->queue.TryPop(work);
    }
    if (popped) {
      ExecuteWork(s, work);
      work = ingress::ShardWork{};
      ctx->busy.store(false, std::memory_order_seq_cst);
      continue;
    }
    // Run-to-completion streaming: dequeue a burst, execute it straight
    // through the replica, emit to the egress queue.  The streaming
    // ring has exactly one consumer (this worker), so no pop mutex.
    if (ctx->stream_queue.TryPop(swork)) {
      ExecuteStreamWork(s, swork);
      swork = ingress::StreamWork{};
      ctx->busy.store(false, std::memory_order_seq_cst);
      continue;
    }
    // Nothing of our own: try to drain a loaded neighbour's stealable
    // backlog onto this replica before parking.
    if (StealActive() && TryStealWork(ctx, s)) {
      ctx->busy.store(false, std::memory_order_seq_cst);
      continue;
    }
    ctx->busy.store(false, std::memory_order_seq_cst);

    std::unique_lock<std::mutex> lk(ctx->m);
    ctx->parked.store(true, std::memory_order_seq_cst);
    ctx->cv.wait(lk, [&] {
      return ctx->stop.load(std::memory_order_relaxed) ||
             !ctx->queue.empty() || !ctx->stream_queue.empty() ||
             ctx->steal_hint.load(std::memory_order_relaxed) != 0;
    });
    ctx->parked.store(false, std::memory_order_seq_cst);
    ctx->steal_hint.store(0, std::memory_order_relaxed);
    if (ctx->stop.load(std::memory_order_relaxed)) return;
  }
}

bool Dataplane::TryStealWork(ShardContext* self, std::size_t s) {
  const std::size_t scan = std::min<std::size_t>(
      num_shards_.load(std::memory_order_acquire), kStealTableSize);
  for (std::size_t off = 1; off < scan; ++off) {
    ShardContext* victim =
        steal_table_[(s + off) % scan].load(std::memory_order_acquire);
    if (victim == nullptr || victim == self) continue;
    // Steal only from a backlogged victim.  Whether its worker is
    // mid-batch or merely scheduled out does not matter: the pop mutex
    // serializes the ring's consumers either way, and a queued backlog
    // drains faster with two replicas on it.
    if (victim->queue.empty()) continue;
    std::unique_lock<std::mutex> pl(victim->pop_m, std::try_to_lock);
    if (!pl.owns_lock()) continue;
    ingress::ShardWork work;
    if (!victim->queue.TryPopIf(
            work, [](const ingress::ShardWork& w) { return w.stealable; }))
      continue;
    pl.unlock();
    self->steals.Add(1);
    // The stolen sub-batch runs on the thief's replica: every tenant in
    // it is stateless and configuration is replicated, so the output
    // bytes are identical to a victim-side run.
    ExecuteWork(s, work);
    return true;
  }
  return false;
}

bool Dataplane::TenantStealable(u16 vid) {
  std::atomic<u8>& memo = tenant_stealable_[vid];
  u8 v = memo.load(std::memory_order_acquire);
  if (v == 0) {
    // DescribeRow reads only the (gate-protected) config tables — safe
    // under the shared gate concurrently with workers.
    const ModuleExecPlan plan = shards_.front().DescribeRow(ModuleId(vid));
    v = plan.kernel.stateful ? 2 : 1;
    memo.store(v, std::memory_order_release);
  }
  return v == 1;
}

void Dataplane::ExecuteWork(std::size_t s, ingress::ShardWork& work) {
  ShardContext& ctx = *shard_ctx_[s];
  const auto t0 = std::chrono::steady_clock::now();

  // Input VIDs, snapshotted before processing: modules may rewrite the
  // VID in the packet bytes, but accounting follows the ingress tenant.
  ctx.vids.clear();
  ctx.vids.reserve(work.packets.size());
  for (const Packet& p : work.packets)
    ctx.vids.push_back(p.has_vlan() ? p.vid().value() : kNoVid);

  ctx.results.clear();
  try {
    shards_[s].ProcessBatchInto(std::move(work.packets), ctx.results);
  } catch (...) {
    work.ticket->RecordError(std::current_exception());
    work.ticket->FinishOneShard();
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }

  ctx.batches.Add(1);
  ctx.packets.Add(ctx.results.size());
  // forwarded/dropped/filtered are disjoint: they sum to packets.  The
  // per-tenant counters mirror Pipeline's own accounting so the relaxed
  // stats path agrees with the exact one whenever the engine is quiet.
  for (std::size_t k = 0; k < ctx.results.size(); ++k) {
    const PipelineResult& r = ctx.results[k];
    const u16 vid = ctx.vids[k];
    if (r.filter_verdict == FilterVerdict::kDropBitmap) {
      ctx.dropped.Add(1);
      if (vid != kNoVid) tenant_dropped_[vid].Add(1);
    } else if (r.filter_verdict != FilterVerdict::kData) {
      ctx.filtered.Add(1);
    } else if (r.output && r.output->disposition == Disposition::kDrop) {
      ctx.dropped.Add(1);
      if (vid != kNoVid) tenant_dropped_[vid].Add(1);
    } else {
      ctx.forwarded.Add(1);
      if (vid != kNoVid) tenant_forwarded_[vid].Add(1);
    }
  }

  // Telemetry: one egress TSC read per sub-batch — every packet in it
  // shares the Submit->completion latency — recorded per contiguous
  // tenant run (the scatter groups tenants, so runs are maximal).
  // Sampled tracing reuses the verdict classification above.  Reads the
  // results BEFORE the gather below moves them out.
  const bool sampling = telemetry_.sample_every() != 0;
  if (work.ingress_tsc != 0 &&
      (telemetry_.histograms_enabled() || sampling)) {
    const u64 ns = TscClock::ToNs(TscClock::Now() - work.ingress_tsc);
    if (telemetry_.histograms_enabled()) {
      std::size_t k = 0;
      const std::size_t total = ctx.results.size();
      while (k < total) {
        const u16 vid = ctx.vids[k];
        std::size_t e = k + 1;
        while (e < total && ctx.vids[e] == vid) ++e;
        if (vid != kNoVid) telemetry_.RecordBatched(s, vid, ns, e - k);
        k = e;
      }
      std::array<u64, kExecTierCount> tiers{};
      for (const PipelineResult& r : ctx.results)
        ++tiers[r.exec_tier < kExecTierCount ? r.exec_tier : 0];
      for (u8 t = 0; t < kExecTierCount; ++t)
        if (tiers[t] != 0) telemetry_.CountTier(s, t, tiers[t]);
    }
    if (sampling) {
      for (std::size_t k = 0; k < ctx.results.size(); ++k) {
        if (!telemetry_.SampleTick(s)) continue;
        const PipelineResult& r = ctx.results[k];
        TraceRecord rec;
        rec.tenant = ctx.vids[k] == kNoVid ? 0 : ctx.vids[k];
        rec.shard = static_cast<u8>(s);
        rec.tier = r.exec_tier;
        rec.stages = r.exec_steps;
        if (r.filter_verdict == FilterVerdict::kDropBitmap ||
            (r.filter_verdict == FilterVerdict::kData && r.output &&
             r.output->disposition == Disposition::kDrop)) {
          rec.verdict = 1;  // dropped
        } else if (r.filter_verdict != FilterVerdict::kData) {
          rec.verdict = 2;  // filtered
        } else {
          rec.verdict = 0;  // forwarded
        }
        rec.stream = 0;
        rec.ns = ns;
        telemetry_.Trace(s, rec);
      }
    }
  }

  // Gather: this shard's results land at their original batch positions.
  // Distinct shards write disjoint index sets; the shards_pending
  // decrement publishes them to whichever thread completes the ticket.
  for (std::size_t k = 0; k < ctx.results.size(); ++k)
    work.ticket->results[work.indices[k]] = std::move(ctx.results[k]);

  // Return the consumed sub-batch storage to the producer pool and
  // account the busy time before handing the ticket on.
  RecycleWorkBuffers(std::move(work.packets), std::move(work.indices));
  ctx.busy_ns.Add(static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  work.ticket->FinishOneShard();
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

void Dataplane::ExecuteStreamWork(std::size_t s, ingress::StreamWork& work) {
  ShardContext& ctx = *shard_ctx_[s];
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = work.pkts.size();

  // Ingress VIDs, snapshotted before processing (modules may rewrite the
  // VID in the packet bytes; accounting follows the ingress tenant).
  ctx.vids.clear();
  ctx.vids.reserve(n);
  for (const ArenaPacket* p : work.pkts)
    ctx.vids.push_back(p->has_vlan() ? p->vid().value() : kNoVid);

  try {
    shards_[s].ProcessStreamBurst(work.pkts.data(), n);
  } catch (...) {
    // A throwing burst must not leak arena buffers: hand everything
    // back unprocessed.
    ReleaseToOwners(work.pkts.data(), n);
    RecycleStreamBuffer(std::move(work.pkts));
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }

  ctx.stream_bursts.Add(1);
  ctx.stream_pkts.Add(n);
  ctx.packets.Add(n);
  for (std::size_t k = 0; k < n; ++k) {
    const ArenaPacket& p = *work.pkts[k];
    const u16 vid = ctx.vids[k];
    const auto fv = static_cast<FilterVerdict>(p.verdict);
    if (fv == FilterVerdict::kDropBitmap) {
      ctx.dropped.Add(1);
      if (vid != kNoVid) tenant_dropped_[vid].Add(1);
    } else if (fv != FilterVerdict::kData) {
      ctx.filtered.Add(1);
    } else if (p.disposition == Disposition::kDrop) {
      ctx.dropped.Add(1);
      if (vid != kNoVid) tenant_dropped_[vid].Add(1);
    } else {
      ctx.forwarded.Add(1);
      if (vid != kNoVid) tenant_forwarded_[vid].Add(1);
    }
  }

  // Telemetry: one egress TSC read per burst; latency per contiguous
  // tenant run from that run's ingress stamp (every packet of a burst
  // shares one SubmitStream stamp, so runs are exact).  Must run before
  // the emit below hands packets to egress/arena.
  const bool sampling = telemetry_.sample_every() != 0;
  if (telemetry_.histograms_enabled() || sampling) {
    const u64 now = TscClock::Now();
    if (telemetry_.histograms_enabled()) {
      std::size_t k = 0;
      while (k < n) {
        const u16 vid = ctx.vids[k];
        const u64 stamp = work.pkts[k]->ingress_tsc;
        std::size_t e = k + 1;
        while (e < n && ctx.vids[e] == vid) ++e;
        if (vid != kNoVid && stamp != 0)
          telemetry_.RecordStream(s, vid, TscClock::ToNs(now - stamp), e - k);
        k = e;
      }
      std::array<u64, kExecTierCount> tiers{};
      for (std::size_t k2 = 0; k2 < n; ++k2) {
        const u8 t = work.pkts[k2]->exec_tier;
        ++tiers[t < kExecTierCount ? t : 0];
      }
      for (u8 t = 0; t < kExecTierCount; ++t)
        if (tiers[t] != 0) telemetry_.CountTier(s, t, tiers[t]);
    }
    if (sampling) {
      for (std::size_t k = 0; k < n; ++k) {
        if (!telemetry_.SampleTick(s)) continue;
        const ArenaPacket& p = *work.pkts[k];
        TraceRecord rec;
        rec.tenant = ctx.vids[k] == kNoVid ? 0 : ctx.vids[k];
        rec.shard = static_cast<u8>(s);
        rec.tier = p.exec_tier;
        rec.stages = p.exec_steps;
        const auto fv2 = static_cast<FilterVerdict>(p.verdict);
        if (fv2 == FilterVerdict::kDropBitmap ||
            (fv2 == FilterVerdict::kData &&
             p.disposition == Disposition::kDrop)) {
          rec.verdict = 1;  // dropped
        } else if (fv2 != FilterVerdict::kData) {
          rec.verdict = 2;  // filtered
        } else {
          rec.verdict = 0;  // forwarded
        }
        rec.stream = 1;
        rec.ns = p.ingress_tsc != 0 ? TscClock::ToNs(now - p.ingress_tsc) : 0;
        telemetry_.Trace(s, rec);
      }
    }
  }

  // Emit: forwarded/multicast packets go onto the egress queue in
  // processing order; drops and non-data verdicts are recycled straight
  // back to their arenas (compacted into the head of the burst array).
  std::size_t ndrop = 0;
  std::size_t nfwd = 0;
  {
    std::lock_guard<std::mutex> g(ctx.egress_m);
    for (std::size_t k = 0; k < n; ++k) {
      ArenaPacket* p = work.pkts[k];
      if (static_cast<FilterVerdict>(p->verdict) != FilterVerdict::kData ||
          p->disposition == Disposition::kDrop) {
        work.pkts[ndrop++] = p;
      } else {
        ctx.egress.push_back(p);
        ++nfwd;
      }
    }
  }
  if (nfwd != 0) ctx.egress_pkts.Add(nfwd);
  if (ndrop != 0) ReleaseToOwners(work.pkts.data(), ndrop);

  RecycleStreamBuffer(std::move(work.pkts));
  ctx.busy_ns.Add(static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

void Dataplane::DrainLocked() const {
  // Caller holds the engine exclusively: no producer can enqueue, so
  // every ring drains monotonically and every worker goes idle.
  for (const auto& ctx : shard_ctx_) {
    while (!ctx->queue.empty() || !ctx->stream_queue.empty() ||
           ctx->busy.load(std::memory_order_seq_cst))
      std::this_thread::yield();
  }
  // A sub-batch popped by a thief — or incremented by a producer that
  // has not yet pushed — is invisible to the per-shard scan above; the
  // dispatch-to-completion counter closes both windows.
  while (inflight_.load(std::memory_order_acquire) != 0)
    std::this_thread::yield();
}

// --- Epoched configuration -----------------------------------------------------

void Dataplane::BroadcastLocked(const ConfigWrite& write) {
  for (Pipeline& shard : shards_) shard.ApplyWrite(write);
  // Last write per resource address wins: the log is what a replica born
  // later (ResizeShards growth) replays to catch up.
  const u32 key = (static_cast<u32>(write.kind) << 16) |
                  (static_cast<u32>(write.stage) << 8) |
                  static_cast<u32>(write.index);
  config_log_[key] = write;
  writes_broadcast_.fetch_add(1, std::memory_order_release);
  // Stealability is a property of the (replicated) configuration: any
  // write may flip a tenant's plan between stateless and stateful.
  for (auto& t : tenant_stealable_) t.store(0, std::memory_order_relaxed);
}

void Dataplane::StageWrite(const ConfigWrite& write) {
  std::lock_guard<std::mutex> lk(pending_mutex_);
  pending_writes_.push_back(write);
}

void Dataplane::StageWrites(const std::vector<ConfigWrite>& writes) {
  std::lock_guard<std::mutex> lk(pending_mutex_);
  pending_writes_.insert(pending_writes_.end(), writes.begin(), writes.end());
}

std::size_t Dataplane::pending_writes() const {
  std::lock_guard<std::mutex> lk(pending_mutex_);
  return pending_writes_.size();
}

u64 Dataplane::CommitEpoch() {
  // Take the staged set first: writes staged after this point belong to
  // the next epoch.
  std::vector<ConfigWrite> writes;
  {
    std::lock_guard<std::mutex> lk(pending_mutex_);
    writes.swap(pending_writes_);
  }
  // Quiesce: exclude new submissions and drain every ring, so the whole
  // write set lands between sub-batches — never inside one.
  ExclusiveGate gate(*this);
  DrainLocked();
  for (const ConfigWrite& w : writes) BroadcastLocked(w);
  return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

void Dataplane::ApplyWrite(const ConfigWrite& write) {
  ExclusiveGate gate(*this);
  DrainLocked();
  BroadcastLocked(write);
}

void Dataplane::ApplyWrites(const std::vector<ConfigWrite>& writes) {
  ExclusiveGate gate(*this);
  DrainLocked();
  for (const ConfigWrite& w : writes) BroadcastLocked(w);
}

// --- Migration / dynamic shard count -------------------------------------------

bool Dataplane::MigrateTenantLocked(ModuleId tenant, std::size_t to_shard) {
  const std::size_t from = ShardForLocked(tenant, shards_.size());
  if (from == to_shard) return false;

  // Configuration is replicated on every shard, so only the tenant's
  // stateful segments move: copy each stage's segment to the same
  // physical window on the target (the segment table is part of the
  // replicated configuration) and zero the source, so the tenant's state
  // keeps living in exactly one place.
  Pipeline& src_pipe = shards_[from];
  Pipeline& dst_pipe = shards_[to_shard];
  for (std::size_t i = 0; i < src_pipe.num_stages(); ++i) {
    StatefulMemory& src = src_pipe.stage(i).stateful();
    StatefulMemory& dst = dst_pipe.stage(i).stateful();
    const std::size_t row = src.segment_table().IndexFor(tenant);
    const SegmentEntry seg = src.segment_table().At(row);
    for (std::size_t w = 0; w < seg.range; ++w)
      dst.PhysicalStore(seg.offset + w, src.PhysicalAt(seg.offset + w));
    src.ZeroRange(seg.offset, seg.range);
  }

  steering_[tenant.value()].store(static_cast<u32>(to_shard),
                                  std::memory_order_release);
  migrations_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

bool Dataplane::MigrateTenant(ModuleId tenant, std::size_t to_shard) {
  ExclusiveGate gate(*this);
  if (to_shard >= shards_.size())
    throw std::out_of_range("migration targets nonexistent shard");
  DrainLocked();
  // The tenant's processed-but-unpolled stream packets sit in its old
  // shard's egress queue; park them in the overflow FIFO so PollEgress
  // keeps emitting them before anything the new shard produces.
  FlushEgressLocked();
  return MigrateTenantLocked(tenant, to_shard);
}

std::size_t Dataplane::ResizeShards(std::size_t new_count) {
  if (new_count == 0)
    new_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  // A resize is an epoch boundary: staged writes committed here land on
  // every replica, old and new, at the same quiesce point.
  std::vector<ConfigWrite> writes;
  {
    std::lock_guard<std::mutex> lk(pending_mutex_);
    writes.swap(pending_writes_);
  }
  ExclusiveGate gate(*this);
  DrainLocked();
  FlushEgressLocked();  // egress order must survive the re-homing

  const std::size_t old_count = shards_.size();
  if (new_count != old_count) {
    // Pin every active tenant's current placement before the hash
    // denominator changes: an unpinned tenant's default shard would
    // silently move, stranding its stateful segments.
    for (const Pipeline& shard : shards_)
      for (const ModuleId t : shard.ActiveModules())
        steering_[t.value()].store(
            static_cast<u32>(ShardForLocked(t, old_count)),
            std::memory_order_release);

    if (new_count > old_count) {
      for (std::size_t s = old_count; s < new_count; ++s) AddShardLocked();
    } else {
      // Evacuate dying shards: every steering entry pointing past the new
      // count is migrated (state moves with it) onto a surviving shard.
      for (std::size_t v = 0; v < steering_.size(); ++v) {
        const u32 steered = steering_[v].load(std::memory_order_relaxed);
        if (steered == kNoSteering || steered < new_count) continue;
        MigrateTenantLocked(ModuleId(static_cast<u16>(v)),
                            MixTenantId(v) % new_count);
      }
      // Fold the dying replicas' counters into the retired aggregates so
      // the exact per-tenant and total accessors stay monotonic.
      for (std::size_t s = new_count; s < old_count; ++s) {
        for (const ModuleId m : shards_[s].ActiveModules()) {
          retired_forwarded_[m.value()] += shards_[s].forwarded(m);
          retired_dropped_[m.value()] += shards_[s].dropped(m);
        }
        retired_packets_ += shard_ctx_[s]->packets.load();
      }
      for (std::size_t s = new_count; s < old_count; ++s) StopWorkerLocked(s);
      // Retire the dying contexts instead of destroying them: a thief
      // may still hold a stale steal_table_ pointer, and a retired
      // context's drained ring just reads empty.
      for (std::size_t s = new_count; s < old_count; ++s) {
        if (s < kStealTableSize)
          steal_table_[s].store(nullptr, std::memory_order_release);
        retired_ctx_.push_back(std::move(shard_ctx_[s]));
      }
      shard_ctx_.resize(new_count);
      while (shards_.size() > new_count) shards_.pop_back();
    }
    num_shards_.store(new_count, std::memory_order_release);
    resizes_.fetch_add(1, std::memory_order_acq_rel);
  }

  for (const ConfigWrite& w : writes) BroadcastLocked(w);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return shards_.size();
}

// --- Statistics ----------------------------------------------------------------

Dataplane::ShardCounters Dataplane::ShardCountersLocked(std::size_t i) const {
  const ShardContext& ctx = *shard_ctx_.at(i);
  ShardCounters c;
  c.batches = ctx.batches.load();
  c.packets = ctx.packets.load();
  c.forwarded = ctx.forwarded.load();
  c.dropped = ctx.dropped.load();
  c.filtered = ctx.filtered.load();
  c.queue_depth = ctx.queue.approx_size() + ctx.stream_queue.approx_size();
  c.busy_ns = ctx.busy_ns.load();
  c.stream_bursts = ctx.stream_bursts.load();
  c.stream_pkts = ctx.stream_pkts.load();
  c.egress_pkts = ctx.egress_pkts.load();
  {
    std::lock_guard<std::mutex> lk(ctx.egress_m);
    c.egress_depth = ctx.egress.size();
  }
  c.producer_stalls = ctx.producer_stalls.load();
  c.steals = ctx.steals.load();
  const FlowCacheStats fc = shards_.at(i).FlowCacheSnapshot();
  c.flow_cache_hits = fc.hits;
  c.flow_cache_misses = fc.misses;
  c.flow_cache_evictions = fc.evictions;
  c.flow_cache_occupancy = fc.occupancy;
  c.flow_cache_burst_pkts = fc.burst_probe_pkts;
  c.flow_cache_burst_fallback = fc.burst_fallback_pkts;
  const Pipeline::KernelStats ks = shards_.at(i).KernelSnapshot();
  c.kernel_pkts = ks.pkts;
  c.kernel_fallback_pkts = ks.fallback_pkts;
  c.kernel_record_fills = ks.record_fills;
  c.kernel_shape_pkts = ks.shape_pkts;
  return c;
}

ModuleExecPlan Dataplane::DescribeTenantRow(ModuleId tenant) const {
  SharedGate gate(*this);
  return shards_.at(ShardForLocked(tenant, shards_.size()))
      .DescribeRow(tenant);
}

Dataplane::ShardCounters Dataplane::shard_counters(std::size_t i) const {
  // Shared gate: pins the shard set against ResizeShards without ever
  // draining traffic.
  SharedGate gate(*this);
  return ShardCountersLocked(i);
}

std::vector<Dataplane::ShardCounters> Dataplane::CountersSnapshot() const {
  ExclusiveGate gate(*this);
  DrainLocked();
  std::vector<ShardCounters> out;
  out.reserve(shard_ctx_.size());
  for (std::size_t i = 0; i < shard_ctx_.size(); ++i)
    out.push_back(ShardCountersLocked(i));
  return out;
}

std::vector<Dataplane::ShardCounters> Dataplane::CountersSnapshotRelaxed()
    const {
  // Shared gate: serializes only against ResizeShards (shard set stable),
  // never against traffic — producers also hold the gate shared.
  SharedGate gate(*this);
  std::vector<ShardCounters> out;
  out.reserve(shard_ctx_.size());
  for (std::size_t i = 0; i < shard_ctx_.size(); ++i)
    out.push_back(ShardCountersLocked(i));
  return out;
}

namespace {

std::vector<Dataplane::StageMatchCounters> GatherMatchCounters(
    const std::deque<Pipeline>& shards) {
  std::vector<Dataplane::StageMatchCounters> out;
  if (shards.empty()) return out;
  out.resize(shards.front().num_stages());
  for (const Pipeline& shard : shards) {
    for (std::size_t i = 0; i < shard.num_stages(); ++i) {
      const Stage& stage = shard.stage(i);
      out[i].cam_lookups += stage.cam().lookups();
      out[i].cam_hits += stage.cam().hits();
      out[i].tcam_lookups += stage.tcam().lookups();
      out[i].tcam_hits += stage.tcam().hits();
    }
  }
  return out;
}

}  // namespace

std::vector<Dataplane::StageMatchCounters> Dataplane::MatchCountersSnapshot()
    const {
  ExclusiveGate gate(*this);
  DrainLocked();
  return GatherMatchCounters(shards_);
}

std::vector<Dataplane::StageMatchCounters>
Dataplane::MatchCountersSnapshotRelaxed() const {
  // The CAM/TCAM counters are relaxed atomics, safe to read while
  // workers probe them; the shared gate only pins the shard set.
  SharedGate gate(*this);
  return GatherMatchCounters(shards_);
}

u64 Dataplane::ForwardedLocked(ModuleId tenant) const {
  const auto it = retired_forwarded_.find(tenant.value());
  u64 total = it == retired_forwarded_.end() ? 0 : it->second;
  for (const Pipeline& shard : shards_) total += shard.forwarded(tenant);
  return total;
}

u64 Dataplane::DroppedLocked(ModuleId tenant) const {
  const auto it = retired_dropped_.find(tenant.value());
  u64 total = it == retired_dropped_.end() ? 0 : it->second;
  for (const Pipeline& shard : shards_) total += shard.dropped(tenant);
  return total;
}

u64 Dataplane::forwarded(ModuleId tenant) const {
  ExclusiveGate gate(*this);
  DrainLocked();
  return ForwardedLocked(tenant);
}

u64 Dataplane::dropped(ModuleId tenant) const {
  ExclusiveGate gate(*this);
  DrainLocked();
  return DroppedLocked(tenant);
}

u64 Dataplane::forwarded_relaxed(ModuleId tenant) const {
  return tenant_forwarded_[tenant.value()].load();
}

u64 Dataplane::dropped_relaxed(ModuleId tenant) const {
  return tenant_dropped_[tenant.value()].load();
}

std::vector<ModuleId> Dataplane::ActiveTenantsLocked() const {
  std::set<u16> ids;
  for (const Pipeline& shard : shards_)
    for (const ModuleId m : shard.ActiveModules()) ids.insert(m.value());
  for (const auto& [id, count] : retired_forwarded_)
    if (count != 0) ids.insert(id);
  for (const auto& [id, count] : retired_dropped_)
    if (count != 0) ids.insert(id);
  std::vector<ModuleId> out;
  out.reserve(ids.size());
  for (const u16 id : ids) out.emplace_back(id);
  return out;
}

std::vector<ModuleId> Dataplane::ActiveTenants() const {
  ExclusiveGate gate(*this);
  DrainLocked();
  return ActiveTenantsLocked();
}

Dataplane::QuiescedStats Dataplane::QuiescedStatsSnapshot() const {
  ExclusiveGate gate(*this);
  DrainLocked();
  QuiescedStats s;
  s.shards.reserve(shard_ctx_.size());
  s.total_packets = retired_packets_;
  for (std::size_t i = 0; i < shard_ctx_.size(); ++i) {
    s.shards.push_back(ShardCountersLocked(i));
    s.total_packets += s.shards.back().packets;
  }
  s.match_stages = GatherMatchCounters(shards_);
  for (const ModuleId tenant : ActiveTenantsLocked())
    s.tenants.push_back(TenantCounts{tenant,
                                     ShardForLocked(tenant, shards_.size()),
                                     ForwardedLocked(tenant),
                                     DroppedLocked(tenant)});
  return s;
}

std::vector<ModuleId> Dataplane::ActiveTenantsRelaxed() const {
  std::vector<ModuleId> out;
  for (std::size_t v = 0; v < tenant_forwarded_.size(); ++v)
    if (tenant_forwarded_[v].load() != 0 || tenant_dropped_[v].load() != 0)
      out.emplace_back(static_cast<u16>(v));
  return out;
}

u64 Dataplane::total_packets() const {
  ExclusiveGate gate(*this);
  DrainLocked();
  u64 total = retired_packets_;
  for (const auto& ctx : shard_ctx_) total += ctx->packets.load();
  return total;
}

u64 Dataplane::total_packets_relaxed() const {
  SharedGate gate(*this);
  u64 total = retired_packets_;
  for (const auto& ctx : shard_ctx_) total += ctx->packets.load();
  return total;
}

}  // namespace menshen
