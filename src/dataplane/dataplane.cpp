#include "dataplane/dataplane.hpp"

#include <set>
#include <stdexcept>
#include <utility>

namespace menshen {

namespace {

// SplitMix64 finalizer: cheap, well-mixed tenant-ID hash so consecutive
// VIDs do not all land on the same shard.
u64 MixTenantId(u64 x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

Dataplane::Dataplane(DataplaneConfig cfg) {
  if (cfg.num_shards == 0) {
    // Auto-scale: one replica per hardware thread (at least one — the
    // standard leaves hardware_concurrency free to return 0).
    cfg.num_shards =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  shards_.reserve(cfg.num_shards);
  for (std::size_t i = 0; i < cfg.num_shards; ++i)
    shards_.emplace_back(cfg.timing, cfg.reconfig_on_data_path);
  counters_.resize(cfg.num_shards);
  shard_batches_.resize(cfg.num_shards);
  shard_indices_.resize(cfg.num_shards);
  shard_results_.resize(cfg.num_shards);
  shard_errors_.resize(cfg.num_shards);

  steering_ = std::vector<std::atomic<u32>>(ModuleId::kMax + 1);
  for (auto& s : steering_) s.store(kNoSteering, std::memory_order_relaxed);

  if (cfg.worker_threads && cfg.num_shards >= 2) {
    workers_.reserve(cfg.num_shards);
    for (std::size_t s = 0; s < cfg.num_shards; ++s)
      workers_.emplace_back([this, s] { WorkerLoop(s); });
  }
}

Dataplane::~Dataplane() {
  {
    std::lock_guard<std::mutex> lk(work_mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t Dataplane::ShardFor(ModuleId tenant) const {
  const u32 steered =
      steering_[tenant.value()].load(std::memory_order_acquire);
  if (steered != kNoSteering) return steered;
  return MixTenantId(tenant.value()) % shards_.size();
}

void Dataplane::RunShard(std::size_t s) {
  if (shard_batches_[s].empty()) return;
  shards_[s].ProcessBatchInto(std::move(shard_batches_[s]),
                              shard_results_[s]);

  ShardCounters& c = counters_[s];
  ++c.batches;
  c.packets += shard_results_[s].size();
  // forwarded/dropped/filtered are disjoint: they sum to packets.
  for (const PipelineResult& r : shard_results_[s]) {
    if (r.filter_verdict == FilterVerdict::kDropBitmap) {
      ++c.dropped;
    } else if (r.filter_verdict != FilterVerdict::kData) {
      ++c.filtered;
    } else if (r.output && r.output->disposition == Disposition::kDrop) {
      ++c.dropped;
    } else {
      ++c.forwarded;
    }
  }
}

void Dataplane::WorkerLoop(std::size_t s) {
  u64 seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(work_mutex_);
      work_cv_.wait(lk, [&] {
        return stopping_ || work_generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = work_generation_;
    }
    try {
      RunShard(s);
    } catch (...) {
      shard_errors_[s] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(work_mutex_);
      if (--workers_outstanding_ == 0) done_cv_.notify_one();
    }
  }
}

std::vector<PipelineResult> Dataplane::ProcessBatch(
    std::vector<Packet>&& batch) {
  std::lock_guard<std::mutex> engine_lock(engine_mutex_);
  std::vector<PipelineResult> out(batch.size());

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shard_batches_[s].clear();
    shard_indices_[s].clear();
    shard_results_[s].clear();
    shard_errors_[s] = nullptr;
  }

  // Scatter: steer each packet to its tenant's shard, keeping arrival
  // order within the shard (and therefore within each tenant).  Packets
  // without a VLAN tag carry no tenant ID; any shard's filter drops them
  // identically, so they go to shard 0.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::size_t s =
        batch[i].has_vlan() ? ShardFor(batch[i].vid()) : 0;
    shard_indices_[s].push_back(i);
    shard_batches_[s].push_back(std::move(batch[i]));
  }

  if (workers_.empty()) {
    // Sequential reference path (single shard or worker_threads off).
    for (std::size_t s = 0; s < shards_.size(); ++s) RunShard(s);
  } else {
    // Fork: one generation bump wakes every worker; each runs its own
    // shard's sub-batch.  Join: the last worker to finish signals back.
    std::unique_lock<std::mutex> lk(work_mutex_);
    workers_outstanding_ = workers_.size();
    ++work_generation_;
    work_cv_.notify_all();
    done_cv_.wait(lk, [&] { return workers_outstanding_ == 0; });
  }
  for (const std::exception_ptr& err : shard_errors_)
    if (err) std::rethrow_exception(err);

  // Gather: results return in the caller's original batch order.
  for (std::size_t s = 0; s < shards_.size(); ++s)
    for (std::size_t k = 0; k < shard_results_[s].size(); ++k)
      out[shard_indices_[s][k]] = std::move(shard_results_[s][k]);
  return out;
}

void Dataplane::BroadcastLocked(const ConfigWrite& write) {
  for (Pipeline& shard : shards_) shard.ApplyWrite(write);
  writes_broadcast_.fetch_add(1, std::memory_order_release);
}

void Dataplane::StageWrite(const ConfigWrite& write) {
  std::lock_guard<std::mutex> lk(pending_mutex_);
  pending_writes_.push_back(write);
}

void Dataplane::StageWrites(const std::vector<ConfigWrite>& writes) {
  std::lock_guard<std::mutex> lk(pending_mutex_);
  pending_writes_.insert(pending_writes_.end(), writes.begin(), writes.end());
}

std::size_t Dataplane::pending_writes() const {
  std::lock_guard<std::mutex> lk(pending_mutex_);
  return pending_writes_.size();
}

u64 Dataplane::CommitEpoch() {
  // Take the staged set first: writes staged after this point belong to
  // the next epoch.
  std::vector<ConfigWrite> writes;
  {
    std::lock_guard<std::mutex> lk(pending_mutex_);
    writes.swap(pending_writes_);
  }
  // Quiesce: acquiring the engine lock means no batch is in flight, so
  // the whole write set lands between batches — never inside one.
  std::lock_guard<std::mutex> engine_lock(engine_mutex_);
  for (const ConfigWrite& w : writes) BroadcastLocked(w);
  return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

void Dataplane::ApplyWrite(const ConfigWrite& write) {
  std::lock_guard<std::mutex> engine_lock(engine_mutex_);
  BroadcastLocked(write);
}

void Dataplane::ApplyWrites(const std::vector<ConfigWrite>& writes) {
  std::lock_guard<std::mutex> engine_lock(engine_mutex_);
  for (const ConfigWrite& w : writes) BroadcastLocked(w);
}

bool Dataplane::MigrateTenant(ModuleId tenant, std::size_t to_shard) {
  if (to_shard >= shards_.size())
    throw std::out_of_range("migration targets nonexistent shard");
  std::lock_guard<std::mutex> engine_lock(engine_mutex_);
  const std::size_t from = ShardFor(tenant);
  if (from == to_shard) return false;

  // Configuration is replicated on every shard, so only the tenant's
  // stateful segments move: copy each stage's segment to the same
  // physical window on the target (the segment table is part of the
  // replicated configuration) and zero the source, so the tenant's state
  // keeps living in exactly one place.
  Pipeline& src_pipe = shards_[from];
  Pipeline& dst_pipe = shards_[to_shard];
  for (std::size_t i = 0; i < src_pipe.num_stages(); ++i) {
    StatefulMemory& src = src_pipe.stage(i).stateful();
    StatefulMemory& dst = dst_pipe.stage(i).stateful();
    const std::size_t row = src.segment_table().IndexFor(tenant);
    const SegmentEntry seg = src.segment_table().At(row);
    for (std::size_t w = 0; w < seg.range; ++w)
      dst.PhysicalStore(seg.offset + w, src.PhysicalAt(seg.offset + w));
    src.ZeroRange(seg.offset, seg.range);
  }

  steering_[tenant.value()].store(static_cast<u32>(to_shard),
                                  std::memory_order_release);
  migrations_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

std::vector<Dataplane::ShardCounters> Dataplane::CountersSnapshot() const {
  std::lock_guard<std::mutex> engine_lock(engine_mutex_);
  return counters_;
}

std::vector<Dataplane::StageMatchCounters> Dataplane::MatchCountersSnapshot()
    const {
  std::lock_guard<std::mutex> engine_lock(engine_mutex_);
  std::vector<StageMatchCounters> out;
  if (shards_.empty()) return out;
  out.resize(shards_[0].num_stages());
  for (const Pipeline& shard : shards_) {
    for (std::size_t i = 0; i < shard.num_stages(); ++i) {
      const Stage& stage = shard.stage(i);
      out[i].cam_lookups += stage.cam().lookups();
      out[i].cam_hits += stage.cam().hits();
      out[i].tcam_lookups += stage.tcam().lookups();
      out[i].tcam_hits += stage.tcam().hits();
    }
  }
  return out;
}

u64 Dataplane::forwarded(ModuleId tenant) const {
  std::lock_guard<std::mutex> engine_lock(engine_mutex_);
  u64 total = 0;
  for (const Pipeline& shard : shards_) total += shard.forwarded(tenant);
  return total;
}

u64 Dataplane::dropped(ModuleId tenant) const {
  std::lock_guard<std::mutex> engine_lock(engine_mutex_);
  u64 total = 0;
  for (const Pipeline& shard : shards_) total += shard.dropped(tenant);
  return total;
}

std::vector<ModuleId> Dataplane::ActiveTenants() const {
  std::lock_guard<std::mutex> engine_lock(engine_mutex_);
  std::set<u16> ids;
  for (const Pipeline& shard : shards_)
    for (const ModuleId m : shard.ActiveModules()) ids.insert(m.value());
  std::vector<ModuleId> out;
  out.reserve(ids.size());
  for (const u16 id : ids) out.emplace_back(id);
  return out;
}

u64 Dataplane::total_packets() const {
  std::lock_guard<std::mutex> engine_lock(engine_mutex_);
  u64 total = 0;
  for (const ShardCounters& c : counters_) total += c.packets;
  return total;
}

}  // namespace menshen
