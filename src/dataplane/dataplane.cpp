#include "dataplane/dataplane.hpp"

#include <set>
#include <stdexcept>

namespace menshen {

namespace {

// SplitMix64 finalizer: cheap, well-mixed tenant-ID hash so consecutive
// VIDs do not all land on the same shard.
u64 MixTenantId(u64 x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

Dataplane::Dataplane(DataplaneConfig cfg) {
  if (cfg.num_shards == 0)
    throw std::invalid_argument("dataplane needs at least one shard");
  shards_.reserve(cfg.num_shards);
  for (std::size_t i = 0; i < cfg.num_shards; ++i)
    shards_.emplace_back(cfg.timing, cfg.reconfig_on_data_path);
  counters_.resize(cfg.num_shards);
  shard_batches_.resize(cfg.num_shards);
  shard_indices_.resize(cfg.num_shards);
  shard_results_.resize(cfg.num_shards);
}

std::size_t Dataplane::ShardFor(ModuleId tenant) const {
  return MixTenantId(tenant.value()) % shards_.size();
}

std::vector<PipelineResult> Dataplane::ProcessBatch(
    std::vector<Packet>&& batch) {
  std::vector<PipelineResult> out(batch.size());

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shard_batches_[s].clear();
    shard_indices_[s].clear();
  }

  // Scatter: steer each packet to its tenant's shard, keeping arrival
  // order within the shard (and therefore within each tenant).  Packets
  // without a VLAN tag carry no tenant ID; any shard's filter drops them
  // identically, so they go to shard 0.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::size_t s =
        batch[i].has_vlan() ? ShardFor(batch[i].vid()) : 0;
    shard_indices_[s].push_back(i);
    shard_batches_[s].push_back(std::move(batch[i]));
  }

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shard_batches_[s].empty()) continue;
    shard_results_[s].clear();
    shards_[s].ProcessBatchInto(std::move(shard_batches_[s]),
                                shard_results_[s]);

    ShardCounters& c = counters_[s];
    ++c.batches;
    c.packets += shard_results_[s].size();
    // forwarded/dropped/filtered are disjoint: they sum to packets.
    for (const PipelineResult& r : shard_results_[s]) {
      if (r.filter_verdict == FilterVerdict::kDropBitmap) {
        ++c.dropped;
      } else if (r.filter_verdict != FilterVerdict::kData) {
        ++c.filtered;
      } else if (r.output &&
                 r.output->disposition == Disposition::kDrop) {
        ++c.dropped;
      } else {
        ++c.forwarded;
      }
    }

    // Gather: results return in the caller's original batch order.
    for (std::size_t k = 0; k < shard_results_[s].size(); ++k)
      out[shard_indices_[s][k]] = std::move(shard_results_[s][k]);
  }
  return out;
}

void Dataplane::ApplyWrite(const ConfigWrite& write) {
  for (Pipeline& shard : shards_) shard.ApplyWrite(write);
  ++writes_broadcast_;
}

void Dataplane::ApplyWrites(const std::vector<ConfigWrite>& writes) {
  for (const ConfigWrite& w : writes) ApplyWrite(w);
}

u64 Dataplane::forwarded(ModuleId tenant) const {
  u64 total = 0;
  for (const Pipeline& shard : shards_) total += shard.forwarded(tenant);
  return total;
}

u64 Dataplane::dropped(ModuleId tenant) const {
  u64 total = 0;
  for (const Pipeline& shard : shards_) total += shard.dropped(tenant);
  return total;
}

std::vector<ModuleId> Dataplane::ActiveTenants() const {
  std::set<u16> ids;
  for (const Pipeline& shard : shards_)
    for (const ModuleId m : shard.ActiveModules()) ids.insert(m.value());
  std::vector<ModuleId> out;
  out.reserve(ids.size());
  for (const u16 id : ids) out.emplace_back(id);
  return out;
}

u64 Dataplane::total_packets() const {
  u64 total = 0;
  for (const ShardCounters& c : counters_) total += c.packets;
  return total;
}

}  // namespace menshen
