// Concurrent, epoch-versioned batched dataplane front-end.
//
// Scales the single functional Pipeline the way line-rate software
// dataplanes do (cf. NDN-DPDK's forwarding threads): packets are
// processed in batches, and the work is sharded across N replicated
// Pipeline instances, each pinned to a persistent worker thread.
//
//   batch ──scatter──▶ per-shard sub-batches ──▶ worker threads run
//   Pipeline::ProcessBatchInto concurrently ──gather──▶ results in the
//   caller's original batch order (byte-identical to the sequential path).
//
// The shard for a packet is chosen by a tenant→shard steering table
// (defaulting to a hash of the tenant's VLAN/module ID), so
//
//   * all packets of one tenant land on the same replica, preserving
//     per-tenant processing order and keeping that tenant's stateful
//     memory in exactly one place (per-tenant isolation is untouched);
//   * different tenants spread across replicas and run in parallel;
//   * a hot tenant can be migrated to an underloaded replica
//     (MigrateTenant / runtime::Rebalancer): configuration is replicated
//     everywhere, so migration is a steering change plus a quiesced copy
//     of the tenant's stateful segments.
//
// Configuration changes flow through quiesced epochs: writes staged with
// StageWrite() accumulate in a pending set, and CommitEpoch() drains the
// in-flight batch, broadcasts the whole set to every replica, and bumps
// the epoch counter (exposed via runtime/stats).  A batch therefore never
// observes a partially applied write set — the paper's non-disruptive
// reconfiguration property, now under real concurrency.  The legacy
// ApplyWrite() broadcast remains as an immediate (still quiesced)
// single-write path.
//
// Threading contract: ProcessBatch is serialized against itself and
// against every configuration/steering mutation by an internal engine
// lock, so one dispatcher thread and any number of control-plane threads
// (staging writes, committing epochs, rebalancing, reading stats) may run
// concurrently.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "pipeline/config_write.hpp"
#include "pipeline/pipeline.hpp"

namespace menshen {

struct DataplaneConfig {
  /// Number of pipeline replicas; 0 = one per hardware thread
  /// (std::thread::hardware_concurrency).
  std::size_t num_shards = 1;
  PipelineTiming timing = OptimizedTiming();
  bool reconfig_on_data_path = true;
  /// Run shards on persistent per-shard worker threads.  With false (or a
  /// single shard) the shards run sequentially on the calling thread —
  /// the reference path the concurrent engine is pinned against.
  bool worker_threads = true;
};

class Dataplane {
 public:
  explicit Dataplane(DataplaneConfig cfg = {});
  ~Dataplane();

  Dataplane(const Dataplane&) = delete;
  Dataplane& operator=(const Dataplane&) = delete;

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }

  /// The shard replica a tenant's packets are currently steered to:
  /// the steering-table entry if one was installed, else the tenant hash.
  [[nodiscard]] std::size_t ShardFor(ModuleId tenant) const;

  [[nodiscard]] Pipeline& shard(std::size_t i) { return shards_.at(i); }
  [[nodiscard]] const Pipeline& shard(std::size_t i) const {
    return shards_.at(i);
  }

  /// Processes one batch: packets are scattered to their tenants' shards,
  /// each shard's sub-batch runs through its replica's batched hot path
  /// in arrival order (concurrently when worker threads are enabled), and
  /// the results are gathered back into the original batch order.
  /// Scratch vectors are reused across calls, so the steady state
  /// performs no per-packet allocation.
  [[nodiscard]] std::vector<PipelineResult> ProcessBatch(
      std::vector<Packet>&& batch);

  // --- Epoched configuration ---------------------------------------------------

  /// Stages one write into the pending epoch.  Thread-safe; callable
  /// while batches are in flight.  Nothing is visible to the data path
  /// until CommitEpoch().
  void StageWrite(const ConfigWrite& write);
  void StageWrites(const std::vector<ConfigWrite>& writes);

  /// Quiesced epoch switch: waits for the in-flight batch to drain,
  /// applies every staged write to every replica, and bumps the epoch.
  /// Returns the new epoch.  An empty commit is a pure barrier (still
  /// bumps the epoch — e.g. a steering-only reconfiguration point).
  u64 CommitEpoch();

  /// Committed configuration epoch (0 until the first CommitEpoch).
  [[nodiscard]] u64 epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  /// Writes staged but not yet committed.
  [[nodiscard]] std::size_t pending_writes() const;

  /// Immediate (legacy) path: broadcasts one configuration write to every
  /// shard replica under the engine lock.  Does not advance the epoch.
  void ApplyWrite(const ConfigWrite& write);
  void ApplyWrites(const std::vector<ConfigWrite>& writes);
  [[nodiscard]] u64 writes_broadcast() const {
    return writes_broadcast_.load(std::memory_order_acquire);
  }

  // --- Steering / rebalancing ---------------------------------------------------

  /// Quiesced tenant migration: drains the in-flight batch, copies the
  /// tenant's per-stage stateful segments from its current replica to
  /// `to_shard` (zeroing the source so state lives in exactly one place),
  /// and repoints the steering table.  Per-tenant ordering is preserved
  /// because no batch is in flight while the move happens.  Returns false
  /// if the tenant already lives on `to_shard`.
  ///
  /// Precondition (enforced by the control plane's admission check, not
  /// here): active tenants own distinct overlay rows — module IDs fit
  /// the overlay-table depth and are unique.  Two active tenants
  /// aliasing one row would share a segment window on every replica (the
  /// same hazard as on a single pipeline), and migrating one would move
  /// the other's words with it.
  bool MigrateTenant(ModuleId tenant, std::size_t to_shard);
  [[nodiscard]] u64 migrations() const {
    return migrations_.load(std::memory_order_acquire);
  }

  /// Per-shard traffic counters, updated per batch.  forwarded, dropped
  /// and filtered are disjoint and sum to packets.
  struct ShardCounters {
    u64 batches = 0;   // sub-batches handed to this replica
    u64 packets = 0;   // packets steered to this replica
    u64 forwarded = 0;
    u64 dropped = 0;   // filter-bitmap or ALU/deparser drops
    u64 filtered = 0;  // other non-data verdicts (reconfig, no VLAN)
  };
  /// Quiescent-only accessor (caller guarantees no batch in flight, e.g.
  /// between ProcessBatch calls on the dispatcher thread); concurrent
  /// control-plane readers use CountersSnapshot().
  [[nodiscard]] const ShardCounters& shard_counters(std::size_t i) const {
    return counters_.at(i);
  }
  /// Thread-safe copy of every shard's counters (quiesces on the engine
  /// lock, so it never observes a half-updated batch).
  [[nodiscard]] std::vector<ShardCounters> CountersSnapshot() const;

  /// Per-stage match-path counters, aggregated across every shard
  /// replica.  The CAM/TCAM counters themselves are relaxed atomics
  /// (safe against in-flight workers); this accessor quiesces on the
  /// engine lock anyway so the snapshot is batch-consistent.
  struct StageMatchCounters {
    u64 cam_lookups = 0;
    u64 cam_hits = 0;
    u64 tcam_lookups = 0;
    u64 tcam_hits = 0;
  };
  [[nodiscard]] std::vector<StageMatchCounters> MatchCountersSnapshot() const;

  // Per-tenant view, aggregated across shards.  These quiesce on the
  // engine lock (the per-tenant counters live in the replicas' pipeline
  // state, which workers mutate during a batch), so they are safe to
  // call from control-plane threads while traffic flows.
  [[nodiscard]] u64 forwarded(ModuleId tenant) const;
  [[nodiscard]] u64 dropped(ModuleId tenant) const;
  [[nodiscard]] std::vector<ModuleId> ActiveTenants() const;
  [[nodiscard]] u64 total_packets() const;

 private:
  /// Runs shard `s`'s sub-batch through its replica and updates the
  /// shard's counters.  Touches only shard-`s` state, so distinct shards
  /// run concurrently without synchronization.
  void RunShard(std::size_t s);
  void WorkerLoop(std::size_t s);
  /// Applies `write` to every replica.  Caller holds engine_mutex_.
  void BroadcastLocked(const ConfigWrite& write);

  std::vector<Pipeline> shards_;
  std::vector<ShardCounters> counters_;
  std::atomic<u64> writes_broadcast_{0};
  std::atomic<u64> epoch_{0};
  std::atomic<u64> migrations_{0};

  /// Serializes batches against configuration/steering mutations and
  /// stats reads — the quiesce barrier: whoever holds it sees no batch
  /// in flight.  Mutable so const (read-side) accessors can quiesce.
  mutable std::mutex engine_mutex_;

  // Pending epoch (guarded by pending_mutex_, never by engine_mutex_, so
  // staging never blocks behind a running batch).
  mutable std::mutex pending_mutex_;
  std::vector<ConfigWrite> pending_writes_;

  // Tenant→shard steering table, indexed by VLAN/module ID.  kNoSteering
  // means "use the hash".  Lock-free reads on the scatter hot path;
  // stores only happen quiesced (under engine_mutex_).
  static constexpr u32 kNoSteering = ~u32{0};
  std::vector<std::atomic<u32>> steering_;

  // Scatter/gather scratch, reused across batches (engine_mutex_ holder
  // plus, during a dispatch, the worker owning shard s for index s).
  std::vector<std::vector<Packet>> shard_batches_;
  std::vector<std::vector<std::size_t>> shard_indices_;
  std::vector<std::vector<PipelineResult>> shard_results_;
  std::vector<std::exception_ptr> shard_errors_;

  // Persistent worker pool (empty when worker_threads is off or there is
  // a single shard).  Fork/join per batch: work_generation_ bumps to
  // dispatch, workers_outstanding_ drains to join.
  std::vector<std::thread> workers_;
  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  u64 work_generation_ = 0;
  std::size_t workers_outstanding_ = 0;
  bool stopping_ = false;
};

}  // namespace menshen
