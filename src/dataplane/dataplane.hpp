// Batched, sharded dataplane front-end.
//
// Scales the single functional Pipeline the way line-rate software
// dataplanes do (cf. NDN-DPDK): packets are processed in batches, and the
// work is sharded across N replicated Pipeline instances.  The shard for
// a packet is chosen by hashing its tenant (VLAN/module) ID, so
//
//   * all packets of one tenant land on the same replica, preserving
//     per-tenant processing order and keeping that tenant's stateful
//     memory in exactly one place (per-tenant isolation is untouched);
//   * different tenants spread across replicas, which is the unit a
//     future async version runs on parallel forwarding threads.
//
// Configuration writes are broadcast to every replica so reconfiguration
// stays consistent no matter which shard a tenant hashes to; per-shard
// and per-tenant counters feed runtime/stats.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "pipeline/config_write.hpp"
#include "pipeline/pipeline.hpp"

namespace menshen {

struct DataplaneConfig {
  std::size_t num_shards = 1;
  PipelineTiming timing = OptimizedTiming();
  bool reconfig_on_data_path = true;
};

class Dataplane {
 public:
  explicit Dataplane(DataplaneConfig cfg = {});

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }

  /// The shard replica a tenant's packets are steered to.
  [[nodiscard]] std::size_t ShardFor(ModuleId tenant) const;

  [[nodiscard]] Pipeline& shard(std::size_t i) { return shards_.at(i); }
  [[nodiscard]] const Pipeline& shard(std::size_t i) const {
    return shards_.at(i);
  }

  /// Processes one batch: packets are sharded by tenant hash, each
  /// shard's sub-batch runs through its replica's batched hot path in
  /// arrival order, and the results are scattered back into the original
  /// batch order.  Scratch vectors are reused across calls, so the steady
  /// state performs no per-packet allocation.
  [[nodiscard]] std::vector<PipelineResult> ProcessBatch(
      std::vector<Packet>&& batch);

  /// Broadcasts one configuration write to every shard replica, keeping
  /// the replicas' configurations identical.
  void ApplyWrite(const ConfigWrite& write);
  void ApplyWrites(const std::vector<ConfigWrite>& writes);
  [[nodiscard]] u64 writes_broadcast() const { return writes_broadcast_; }

  /// Per-shard traffic counters, updated per batch.  forwarded, dropped
  /// and filtered are disjoint and sum to packets.
  struct ShardCounters {
    u64 batches = 0;   // sub-batches handed to this replica
    u64 packets = 0;   // packets steered to this replica
    u64 forwarded = 0;
    u64 dropped = 0;   // filter-bitmap or ALU/deparser drops
    u64 filtered = 0;  // other non-data verdicts (reconfig, no VLAN)
  };
  [[nodiscard]] const ShardCounters& shard_counters(std::size_t i) const {
    return counters_.at(i);
  }

  // Per-tenant view, aggregated across shards.
  [[nodiscard]] u64 forwarded(ModuleId tenant) const;
  [[nodiscard]] u64 dropped(ModuleId tenant) const;
  [[nodiscard]] std::vector<ModuleId> ActiveTenants() const;
  [[nodiscard]] u64 total_packets() const;

 private:
  std::vector<Pipeline> shards_;
  std::vector<ShardCounters> counters_;
  u64 writes_broadcast_ = 0;

  // Scatter/gather scratch, reused across batches.
  std::vector<std::vector<Packet>> shard_batches_;
  std::vector<std::vector<std::size_t>> shard_indices_;
  std::vector<std::vector<PipelineResult>> shard_results_;
};

}  // namespace menshen
