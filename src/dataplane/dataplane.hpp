// Concurrent, epoch-versioned batched dataplane front-end.
//
// Scales the single functional Pipeline the way line-rate software
// dataplanes do (cf. NDN-DPDK's per-forwarding-thread input queues):
// packets are processed in batches, and the work is sharded across N
// replicated Pipeline instances, each pinned to a persistent worker
// thread that pulls work from its own bounded MPSC submission queue.
//
//   producer threads ──Submit(BatchTicket)──▶ per-shard MPSC rings
//        │  (scatter: tenant → shard, lock-free enqueue; each shard's
//        │   sub-batch is laid out as whole tenant groups so the
//        │   pipeline's module-run segmentation sees maximal runs —
//        │   order within a tenant is always arrival order, and results
//        │   gather by original batch index, so the grouping is
//        │   invisible to every per-tenant byte stream)
//        ▼
//   shard workers pop sub-batches continuously, run
//   Pipeline::ProcessBatchInto, and write results into the ticket's
//   gather array; the last shard to finish completes the ticket
//   (future + optional callback) in the caller's original batch order.
//
// There is no dispatcher thread and no per-batch fork/join rendezvous:
// any number of producers submit concurrently, and a shard only ever
// waits when it has no work.  ProcessBatch remains as a submit+wait
// wrapper, byte-identical to the old path (pinned by the differential
// tests).
//
// The shard for a packet is chosen by a tenant→shard steering table
// (defaulting to a hash of the tenant's VLAN/module ID), so
//
//   * all packets of one tenant land on the same replica, preserving
//     per-tenant processing order and keeping that tenant's stateful
//     memory in exactly one place (per-tenant isolation is untouched);
//   * different tenants spread across replicas and run in parallel;
//   * a hot tenant can be migrated to an underloaded replica
//     (MigrateTenant / runtime::Rebalancer): configuration is replicated
//     everywhere, so migration is a steering change plus a quiesced copy
//     of the tenant's stateful segments.
//
// Configuration changes flow through quiesced epochs: writes staged with
// StageWrite() accumulate in a pending set, and CommitEpoch() excludes
// new submissions, drains every shard queue, broadcasts the whole set to
// every replica, and bumps the epoch counter (exposed via runtime/stats).
// A batch therefore never observes a partially applied write set — the
// paper's non-disruptive reconfiguration property, now under real
// concurrency.  ResizeShards() reuses the same quiesce machinery to grow
// or shrink the replica set at an epoch boundary: new replicas replay the
// configuration log, steering is pinned so no tenant is silently
// re-homed, and tenants on dying shards are migrated off (state moves
// with them) before their workers join.
//
// Threading contract: Submit/ProcessBatch may be called from any number
// of producer threads concurrently with each other and with control-plane
// operations.  Mutations (CommitEpoch, ApplyWrite, MigrateTenant,
// ResizeShards) and the exact statistics accessors take the engine
// exclusively and drain in-flight work first (the quiesce barrier); the
// *_relaxed statistics accessors never quiesce — they read monotonic
// relaxed counters and are meant for a periodic control-plane tick that
// must not stall ingress (runtime/controller).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/counters.hpp"
#include "ingress/batch_ticket.hpp"
#include "ingress/mpsc_queue.hpp"
#include "ingress/stream_work.hpp"
#include "net/network.hpp"
#include "pipeline/config_write.hpp"
#include "pipeline/pipeline.hpp"
#include "runtime/telemetry.hpp"

namespace menshen {

struct DataplaneConfig {
  /// Number of pipeline replicas; 0 = one per hardware thread
  /// (std::thread::hardware_concurrency).
  std::size_t num_shards = 1;
  PipelineTiming timing = OptimizedTiming();
  bool reconfig_on_data_path = true;
  /// Run shards on persistent per-shard worker threads consuming MPSC
  /// submission queues (the async ingress engine).  With false the
  /// shards run sequentially on the submitting thread — the reference
  /// path the concurrent engine is pinned against.
  bool worker_threads = true;
  /// Capacity of each shard's ingress ring (rounded up to a power of
  /// two).  A full ring backpressures the submitting producer (it
  /// yields and retries), bounding queue memory.  Applies to both the
  /// batched and the streaming ring; adjustable at runtime via
  /// SetIngressQueueDepth (the controller's adaptive-depth loop).
  std::size_t ingress_queue_depth = 64;
  /// Idle-shard work stealing on the batched scatter/gather path: a
  /// worker with nothing in its own rings drains a loaded neighbour's
  /// oversized sub-batch onto its own replica.  Only sub-batches whose
  /// every tenant group is provably stateless — and only when the
  /// filter's buffer-tag assignment is order-insensitive
  /// (timing.deparsers <= 1) — are marked stealable, so stolen work is
  /// byte-identical wherever it runs.
  bool enable_work_stealing = true;
  /// Sub-batches below this size are never marked stealable (the steal
  /// handoff costs more than running a small batch in place).
  std::size_t steal_min_packets = 16;
  /// Burst-vectorized flow-cache probing on every replica
  /// (Pipeline::SetBurstProbeEnabled): eligible spans probe the
  /// flow-verdict cache in gather/probe/replay phases with slot
  /// prefetch-ahead instead of one dependent load per packet.  Applied
  /// to replicas created later (ResizeShards) too.  Off = the scalar
  /// differential reference.
  bool burst_probe = true;
  /// Telemetry knobs (runtime/telemetry.hpp): latency histograms on the
  /// batched + streaming paths, and 1-in-N sampled packet tracing.
  TelemetryConfig telemetry{};
};

class Dataplane {
 public:
  explicit Dataplane(DataplaneConfig cfg = {});
  ~Dataplane();

  Dataplane(const Dataplane&) = delete;
  Dataplane& operator=(const Dataplane&) = delete;

  [[nodiscard]] std::size_t num_shards() const {
    return num_shards_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t num_workers() const {
    return workers_running_.load(std::memory_order_acquire);
  }

  /// The shard replica a tenant's packets are currently steered to:
  /// the steering-table entry if one was installed, else the tenant hash.
  [[nodiscard]] std::size_t ShardFor(ModuleId tenant) const;

  /// Compiles (without caching) the execution plan for `tenant`'s row on
  /// its steered shard — the stats dump's view of the tenant's flow-cache
  /// blocker and kernel shape.  Pins the shard set (shared gate) but
  /// never drains traffic.
  [[nodiscard]] ModuleExecPlan DescribeTenantRow(ModuleId tenant) const;

  /// Direct replica access — quiescent-only (no traffic in flight).
  [[nodiscard]] Pipeline& shard(std::size_t i) { return shards_.at(i); }
  [[nodiscard]] const Pipeline& shard(std::size_t i) const {
    return shards_.at(i);
  }

  // --- Async ingress -----------------------------------------------------------

  /// Submits one batch to the per-shard ingress queues and returns a
  /// future for its results (in the ticket's original batch order).  Any
  /// number of producer threads may submit concurrently; per-tenant
  /// order is the per-shard enqueue order, so one producer's tickets
  /// stay ordered and distinct producers racing on the *same* tenant
  /// interleave at ticket granularity.  On the sequential engine
  /// (worker_threads = false) the batch is processed inline and the
  /// returned future is already ready.
  [[nodiscard]] std::future<std::vector<PipelineResult>> Submit(
      BatchTicket&& ticket);

  /// Submit + wait: byte-identical to the historical synchronous path
  /// (pinned by tests/test_dataplane*.cpp differentials).
  [[nodiscard]] std::vector<PipelineResult> ProcessBatch(
      std::vector<Packet>&& batch);

  // --- Streaming ingress (run-to-completion) -----------------------------------

  /// Enqueues a burst of arena packets into the per-shard streaming
  /// rings.  No ticket, no gather barrier: each shard worker runs its
  /// slice to completion and pushes the processed packets straight onto
  /// its egress queue.  Ownership of every packet transfers to the
  /// dataplane here; it comes back either via PollEgress (forwarded /
  /// multicast packets, bytes rewritten in place) or by being released
  /// to its owning arena (dropped and filtered packets — the caller
  /// never sees them again).  Per-tenant order is preserved end to end:
  /// one tenant maps to one shard, whose ring and egress queue are both
  /// FIFO.  A full ring backpressures the producer (counted in the
  /// shard's producer_stalls).  On the sequential engine
  /// (worker_threads = false) the burst is processed inline.
  void SubmitStream(ArenaPacket* const* pkts, std::size_t n);

  /// Drains every shard's egress queue (and the quiesce-overflow FIFO)
  /// into `out`, returning the number of packets appended.  The caller
  /// owns the returned packets and must hand them back to their arenas
  /// (packet/arena.hpp ReleaseToOwners) once consumed.  Within one
  /// tenant the drain order is processing order; across tenants it is
  /// unspecified.  Never drains traffic — safe to call from any thread
  /// concurrently with SubmitStream.
  std::size_t PollEgress(std::vector<ArenaPacket*>& out);

  // --- Egress burst transmit ---------------------------------------------------

  /// Binds this dataplane's streaming egress to `net`: a processed
  /// packet whose egress_port appears in `port_map` is transmitted by
  /// FlushEgress into the mapped network port.  Every mapped port must
  /// be a host-attached edge port of `net` (Network::AttachHost — the
  /// vSwitch stamps the tenant VID at that edge, so injections without a
  /// host throw); this validates the whole map up front and throws
  /// std::invalid_argument on an unattached port.  `net` must outlive
  /// the binding; rebinding replaces the previous map.
  void BindEgressDevice(Network& net, std::map<u16, PortRef> port_map);

  /// Drains the egress queues exactly like PollEgress — overflow FIFO
  /// first, then the per-shard queues in shard order, per-tenant FIFO
  /// within each — but instead of handing buffers to the caller,
  /// transmits the drained packets as one grouped burst through
  /// Network::InjectBatch (which sub-batches per device each hop), and
  /// returns the resulting edge deliveries.  Ordering contract: the
  /// injection order IS the drain order, so each tenant's packets enter
  /// the network in processing order; delivery order then follows
  /// InjectBatch (hop, device name, arrival).  Multicast packets
  /// replicate to every bound port of their port list; packets whose
  /// egress_port has no binding are counted in egress_unbound() and
  /// recycled.  All drained arena buffers are released back to their
  /// owners before injection returns.  Serialized against itself and
  /// BindEgressDevice; safe to call concurrently with SubmitStream.
  std::vector<Delivery> FlushEgress(std::size_t max_hops = 8);

  /// Packets transmitted into the bound network by FlushEgress.
  [[nodiscard]] u64 egress_transmitted() const {
    return egress_tx_.load(std::memory_order_acquire);
  }
  /// Drained packets with no binding for their egress port (recycled).
  [[nodiscard]] u64 egress_unbound() const {
    return egress_unbound_.load(std::memory_order_acquire);
  }

  /// Quiesced resize of every shard's ingress rings (batched and
  /// streaming) to `depth` (min 2, rounded up to a power of two) — the
  /// controller's adaptive-depth actuator.  Drains in-flight work,
  /// stops the workers, reallocates the rings, restarts the workers.
  void SetIngressQueueDepth(std::size_t depth);
  [[nodiscard]] std::size_t ingress_queue_depth() const {
    return ingress_depth_.load(std::memory_order_acquire);
  }

  // --- Epoched configuration ---------------------------------------------------

  /// Stages one write into the pending epoch.  Thread-safe; callable
  /// while batches are in flight.  Nothing is visible to the data path
  /// until CommitEpoch().
  void StageWrite(const ConfigWrite& write);
  void StageWrites(const std::vector<ConfigWrite>& writes);

  /// Quiesced epoch switch: excludes new submissions, drains every shard
  /// queue, applies every staged write to every replica, and bumps the
  /// epoch.  Returns the new epoch.  An empty commit is a pure barrier
  /// (still bumps the epoch — e.g. a steering-only reconfiguration point).
  u64 CommitEpoch();

  /// Committed configuration epoch (0 until the first CommitEpoch).
  [[nodiscard]] u64 epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  /// Writes staged but not yet committed.
  [[nodiscard]] std::size_t pending_writes() const;

  /// Immediate (legacy) path: broadcasts one configuration write to every
  /// shard replica under the quiesced engine.  Does not advance the epoch.
  void ApplyWrite(const ConfigWrite& write);
  void ApplyWrites(const std::vector<ConfigWrite>& writes);
  [[nodiscard]] u64 writes_broadcast() const {
    return writes_broadcast_.load(std::memory_order_acquire);
  }

  // --- Steering / rebalancing / scaling ----------------------------------------

  /// Quiesced tenant migration: drains in-flight work, copies the
  /// tenant's per-stage stateful segments from its current replica to
  /// `to_shard` (zeroing the source so state lives in exactly one place),
  /// and repoints the steering table.  Per-tenant ordering is preserved
  /// because nothing is in flight while the move happens.  Returns false
  /// if the tenant already lives on `to_shard`.
  ///
  /// Precondition (enforced by the control plane's admission check, not
  /// here): active tenants own distinct overlay rows — module IDs fit
  /// the overlay-table depth and are unique.
  bool MigrateTenant(ModuleId tenant, std::size_t to_shard);
  [[nodiscard]] u64 migrations() const {
    return migrations_.load(std::memory_order_acquire);
  }

  /// Quiesced replica-set resize at an epoch boundary (the dynamic-shard
  /// machinery the control-plane tick drives): `new_count` replicas
  /// (0 = hardware concurrency).  Before the count changes, every active
  /// tenant's placement is pinned into the steering table, so the
  /// default-hash re-map cannot silently re-home a tenant away from its
  /// stateful segments.  Growing replays the configuration log onto the
  /// new replicas and starts their workers; shrinking migrates every
  /// tenant steered to a dying shard onto a surviving one (state moves
  /// with it), then joins the dying workers.  Pending staged writes are
  /// committed and the epoch bumps — a resize IS an epoch boundary.
  /// Returns the new shard count.
  std::size_t ResizeShards(std::size_t new_count);
  [[nodiscard]] u64 resizes() const {
    return resizes_.load(std::memory_order_acquire);
  }

  // --- Statistics --------------------------------------------------------------

  /// Per-shard traffic counters, updated per sub-batch.  forwarded,
  /// dropped and filtered are disjoint and sum to packets.
  struct ShardCounters {
    u64 batches = 0;   // sub-batches handed to this replica
    u64 packets = 0;   // packets steered to this replica
    u64 forwarded = 0;
    u64 dropped = 0;   // filter-bitmap or ALU/deparser drops
    u64 filtered = 0;  // other non-data verdicts (reconfig, no VLAN)
    /// Instantaneous ingress-ring occupancy (sub-batches waiting) at
    /// snapshot time — with busy_ns the controller's per-shard
    /// utilisation signal.
    u64 queue_depth = 0;
    /// Cumulative wall-clock nanoseconds this shard's worker spent
    /// executing sub-batches.
    u64 busy_ns = 0;
    /// This replica's flow-verdict cache (pipeline/flow_cache.hpp):
    /// cumulative hits/misses/evictions plus current occupancy.  Read
    /// from the replica's relaxed counters — consistent with the traffic
    /// counters above.
    u64 flow_cache_hits = 0;
    u64 flow_cache_misses = 0;
    u64 flow_cache_evictions = 0;
    u64 flow_cache_occupancy = 0;
    /// Burst-probe path (FlowVerdictCache::BurstProbe): lanes probed
    /// burst-wide, and of those, lanes compacted into the scalar
    /// fallback pass (misses + pending-fill taints).
    u64 flow_cache_burst_pkts = 0;
    u64 flow_cache_burst_fallback = 0;
    /// Specialized-kernel dispatch (pipeline/kernels.hpp): packets run
    /// by a straight-line kernel, packets interpreted (wide/ternary
    /// rows), flow-cache misses filled by the recording kernel, and the
    /// per-shape-id packet distribution.
    u64 kernel_pkts = 0;
    u64 kernel_fallback_pkts = 0;
    u64 kernel_record_fills = 0;
    std::array<u64, kKernelShapeCount> kernel_shape_pkts{};
    /// Streaming path: bursts and packets run to completion on this
    /// replica (stream_pkts is included in `packets`), packets pushed
    /// onto the egress queue, and its occupancy at snapshot time.
    u64 stream_bursts = 0;
    u64 stream_pkts = 0;
    u64 egress_pkts = 0;
    u64 egress_depth = 0;
    /// Producer-side pushes that found this shard's streaming ring full
    /// (one per stalled push, not per retry) — the controller's
    /// adaptive-depth signal.
    u64 producer_stalls = 0;
    /// Batched sub-batches this worker stole from a loaded neighbour.
    u64 steals = 0;
  };
  /// Relaxed per-shard view: never drains traffic, but does pin the
  /// shard set against a concurrent resize (see CountersSnapshotRelaxed).
  [[nodiscard]] ShardCounters shard_counters(std::size_t i) const;

  /// Exact snapshot of every shard's counters: quiesces (drains in-flight
  /// work), so totals are batch-consistent.
  [[nodiscard]] std::vector<ShardCounters> CountersSnapshot() const;
  /// Relaxed snapshot: reads the monotonic per-shard counters without
  /// draining.  Sub-batches mid-flight are partially counted (a shard's
  /// `packets` may momentarily exceed forwarded+dropped+filtered), but
  /// every counter is within one in-flight sub-batch of exact and
  /// catches up as soon as the worker finishes — consistent enough for
  /// load tracking, never a stall for ingress.
  [[nodiscard]] std::vector<ShardCounters> CountersSnapshotRelaxed() const;

  /// Per-stage match-path counters, aggregated across every shard
  /// replica.  The exact variant quiesces; the relaxed variant reads the
  /// CAM/TCAM relaxed atomics live.
  struct StageMatchCounters {
    u64 cam_lookups = 0;
    u64 cam_hits = 0;
    u64 tcam_lookups = 0;
    u64 tcam_hits = 0;
  };
  [[nodiscard]] std::vector<StageMatchCounters> MatchCountersSnapshot() const;
  [[nodiscard]] std::vector<StageMatchCounters> MatchCountersSnapshotRelaxed()
      const;

  /// One tenant's exact totals (aggregated across shards + retired),
  /// plus its steering as of the same quiesced instant.
  struct TenantCounts {
    ModuleId tenant;
    std::size_t shard = 0;
    u64 forwarded = 0;
    u64 dropped = 0;
  };
  /// Everything the exact statistics collection needs, gathered under a
  /// single quiesce, so shard rows, tenant totals, match counters and
  /// the packet total are mutually consistent — and ingress stalls once,
  /// not once per accessor (runtime/CollectDataplaneStats uses this).
  struct QuiescedStats {
    std::vector<ShardCounters> shards;
    std::vector<StageMatchCounters> match_stages;
    std::vector<TenantCounts> tenants;  // sorted by tenant ID
    u64 total_packets = 0;
  };
  [[nodiscard]] QuiescedStats QuiescedStatsSnapshot() const;

  // Per-tenant view, aggregated across shards.  The exact accessors
  // quiesce (they read the replicas' pipeline-internal maps); the
  // _relaxed accessors read dataplane-level monotonic counters bumped by
  // the workers after each sub-batch — equal to the exact values when
  // quiescent, at most one in-flight sub-batch behind otherwise.
  [[nodiscard]] u64 forwarded(ModuleId tenant) const;
  [[nodiscard]] u64 dropped(ModuleId tenant) const;
  [[nodiscard]] u64 forwarded_relaxed(ModuleId tenant) const;
  [[nodiscard]] u64 dropped_relaxed(ModuleId tenant) const;
  [[nodiscard]] std::vector<ModuleId> ActiveTenants() const;
  [[nodiscard]] std::vector<ModuleId> ActiveTenantsRelaxed() const;
  [[nodiscard]] u64 total_packets() const;
  [[nodiscard]] u64 total_packets_relaxed() const;

  // --- Telemetry ---------------------------------------------------------------

  /// Latency histograms + trace rings (runtime/telemetry.hpp).  Readers
  /// (snapshots, TenantP99, DrainTraces) never quiesce; recording is
  /// relaxed-atomic on the workers.
  [[nodiscard]] Telemetry& telemetry() { return telemetry_; }
  [[nodiscard]] const Telemetry& telemetry() const { return telemetry_; }

 private:
  /// Per-shard ingress state.  Heap-allocated so addresses stay stable
  /// across replica-set resizes (workers and sleeping condvars point
  /// here).
  struct ShardContext {
    explicit ShardContext(std::size_t queue_depth)
        : queue(queue_depth), stream_queue(queue_depth) {}

    MpscRingQueue<ingress::ShardWork> queue;
    /// Streaming ring: bursts of arena packets run to completion by
    /// this worker (single consumer — never stolen; the batched ring
    /// is the stealable one).
    MpscRingQueue<ingress::StreamWork> stream_queue;

    /// Serializes pops of the batched ring between the owning worker
    /// and thieves (the ring is single-consumer; the mutex makes
    /// "consumer" a role, not a thread).  The owner takes it
    /// unconditionally; thieves try_lock and walk away.  Only used when
    /// stealing is actually possible (see StealActive) — otherwise the
    /// worker pops lock-free.
    std::mutex pop_m;
    /// Serializes inline (no-worker-thread) streaming execution on this
    /// shard's replica: producer cores run bursts to completion
    /// themselves under the shared gate, in parallel across shards,
    /// serialized per shard — which is also what keeps per-tenant FIFO
    /// order (a tenant maps to exactly one shard).
    std::mutex stream_m;
    /// Nonzero = a producer saw a stealable backlog somewhere and woke
    /// this parked worker to go steal (part of the park predicate, so
    /// the wakeup is never lost).
    std::atomic<u32> steal_hint{0};

    // Doorbell: the worker parks on `cv` when its ring is empty;
    // producers ring it after a push when `parked` is set.  `busy` is
    // true from just before a pop until the popped work is fully
    // executed — the drain path treats (empty ring && !busy) as idle.
    alignas(64) std::atomic<bool> busy{false};
    std::atomic<bool> parked{false};
    std::atomic<bool> stop{false};
    std::mutex m;
    std::condition_variable cv;
    std::thread worker;

    /// Per-device egress queue: processed stream packets in completion
    /// order, drained by PollEgress.
    mutable std::mutex egress_m;
    std::vector<ArenaPacket*> egress;

    // Traffic counters (relaxed; see CountersSnapshotRelaxed).
    RelaxedCounter batches, packets, forwarded, dropped, filtered;
    // Wall-clock ns spent executing sub-batches (one clock pair per
    // sub-batch, never per packet).
    RelaxedCounter busy_ns;
    // Streaming / stealing counters (see ShardCounters).
    RelaxedCounter stream_bursts, stream_pkts, egress_pkts;
    RelaxedCounter producer_stalls, steals;

    // Worker-owned scratch, reused across sub-batches.
    std::vector<PipelineResult> results;
    std::vector<u16> vids;
  };

  /// Recycled ShardWork storage: sub-batch packet/index vectors whose
  /// elements were consumed keep their capacity and flow back to
  /// producers, so a steady Submit load stops allocating (the ingress
  /// scatter-scratch pool).  Guarded by pool_mutex_; both sides use
  /// try_lock and fall back to fresh allocation under contention.
  struct WorkBuffers {
    std::vector<Packet> packets;
    std::vector<std::size_t> indices;
  };
  [[nodiscard]] WorkBuffers AcquireWorkBuffers();
  void RecycleWorkBuffers(std::vector<Packet>&& packets,
                          std::vector<std::size_t>&& indices);
  /// Recycled streaming burst storage (pointer vectors), same pool
  /// discipline as WorkBuffers.
  [[nodiscard]] std::vector<ArenaPacket*> AcquireStreamBuffer();
  void RecycleStreamBuffer(std::vector<ArenaPacket*>&& buf);

  void WorkerLoop(ShardContext* ctx, std::size_t s);
  /// Appends one replica (replaying the config log) and starts its
  /// worker when the engine runs worker threads.  Caller holds the
  /// engine exclusively (or is the constructor).
  void AddShardLocked();
  void StartWorkerLocked(std::size_t s);
  void StopWorkerLocked(std::size_t s);
  /// Runs one sub-batch on shard `s`, updates counters and completes the
  /// shard's slice of the ticket.  Called by shard workers and by the
  /// sequential inline path — and, for stealable work, by a thief
  /// worker with its own shard index (the thief's replica carries
  /// identical configuration and the work is stateless, so the bytes
  /// cannot differ).
  void ExecuteWork(std::size_t s, ingress::ShardWork& work);
  /// Runs one streaming burst to completion on shard `s`: process in
  /// place, account, recycle drops to their arenas, push the rest onto
  /// the shard's egress queue.
  void ExecuteStreamWork(std::size_t s, ingress::StreamWork& work);
  /// Idle-worker steal attempt: scan the steal table for a neighbour
  /// with a stealable batched backlog, pop its head sub-batch and run
  /// it on `self`'s replica.  Returns true if work was executed.
  bool TryStealWork(ShardContext* self, std::size_t s);
  /// Whether `vid`'s compiled plan is provably stateless (memoized per
  /// tenant; invalidated on every config broadcast).
  [[nodiscard]] bool TenantStealable(u16 vid);
  /// Whether work stealing can ever fire under this configuration.
  /// When it cannot, workers pop their batched ring lock-free — the
  /// pop mutex exists solely to let thieves act as a second consumer.
  [[nodiscard]] bool StealActive() const {
    return cfg_.enable_work_stealing && cfg_.timing.deparsers <= 1;
  }
  /// Scatters `ticket.batch` into per-shard work items.  Caller holds the
  /// engine (shared for the async path, exclusive for inline).
  void ScatterAndDispatch(BatchTicket&& ticket,
                          const std::shared_ptr<ingress::TicketState>& state,
                          bool inline_run);
  /// Scatters a streaming burst into the per-shard streaming rings.
  void ScatterStream(ArenaPacket* const* pkts, std::size_t n,
                     bool inline_run);

  /// Waits until every shard ring is empty and every worker idle.
  /// Caller holds the engine exclusively, so no new work can arrive.
  void DrainLocked() const;
  /// Moves every shard's egress queue into the global overflow FIFO.
  /// Run (drained, exclusive) before any operation that re-homes a
  /// tenant, so the per-tenant egress order survives the move:
  /// PollEgress drains the overflow before the per-shard queues.
  void FlushEgressLocked();
  /// Applies `write` to every replica and records it in the config log.
  /// Caller holds the engine exclusively and has drained.
  void BroadcastLocked(const ConfigWrite& write);
  bool MigrateTenantLocked(ModuleId tenant, std::size_t to_shard);
  [[nodiscard]] std::size_t ShardForLocked(ModuleId tenant,
                                           std::size_t shard_count) const;
  // Unlocked internals of the exact accessors (caller holds a gate).
  [[nodiscard]] ShardCounters ShardCountersLocked(std::size_t i) const;
  [[nodiscard]] u64 ForwardedLocked(ModuleId tenant) const;
  [[nodiscard]] u64 DroppedLocked(ModuleId tenant) const;
  [[nodiscard]] std::vector<ModuleId> ActiveTenantsLocked() const;

  // Writer-priority engine lock.  Producers (Submit) hold it shared for
  // the scatter+enqueue window only; control-plane mutations and exact
  // stats hold it exclusively and drain.  `exclusive_waiting_` makes
  // producers back off while a writer waits, so a continuous submit load
  // cannot starve CommitEpoch (pthread rwlocks are reader-preferring by
  // default).
  class ExclusiveGate;
  class SharedGate;
  mutable std::shared_mutex engine_mutex_;
  mutable std::atomic<std::size_t> exclusive_waiting_{0};

  DataplaneConfig cfg_;  // num_shards tracks resizes
  /// Declared before shards_/shard_ctx_ so workers recording into it
  /// are destroyed first on teardown.
  Telemetry telemetry_;
  std::deque<Pipeline> shards_;  // deque: growth never moves replicas
  std::vector<std::unique_ptr<ShardContext>> shard_ctx_;
  std::atomic<std::size_t> num_shards_{0};
  std::atomic<std::size_t> workers_running_{0};
  /// Mirror of cfg_.ingress_queue_depth for lock-free reads (the
  /// controller tick); writes under the exclusive engine.
  std::atomic<std::size_t> ingress_depth_{0};

  /// Work items dispatched (pushed to a ring or run inline) but not yet
  /// fully executed.  DrainLocked waits for zero: a sub-batch popped by
  /// a thief is invisible to the per-shard (empty && !busy) scan, but
  /// never to this counter.
  std::atomic<u64> inflight_{0};

  /// Fixed-size victim directory for work stealing: stable atomic slots
  /// so a thief can scan without touching shard_ctx_ (which resizes).
  /// Shards beyond the table size simply cannot be stolen from.
  /// Entries are written under the exclusive engine (add/stop/resize).
  static constexpr std::size_t kStealTableSize = 64;
  std::array<std::atomic<ShardContext*>, kStealTableSize> steal_table_{};
  /// ShardContexts retired by a shrink: kept alive until destruction so
  /// a thief holding a stale steal_table_ pointer dereferences a dead
  /// — but valid — context (its drained ring just reads empty).
  std::vector<std::unique_ptr<ShardContext>> retired_ctx_;
  /// Per-tenant stealability memo: 0 unknown, 1 stealable (stateless
  /// plan), 2 not.  Reset on every config broadcast.
  std::vector<std::atomic<u8>> tenant_stealable_;

  /// Egress packets carried across a tenant re-homing (migration /
  /// resize): drained by PollEgress before any per-shard queue.
  mutable std::mutex overflow_m_;
  std::deque<ArenaPacket*> egress_overflow_;

  /// Egress transmit binding (BindEgressDevice / FlushEgress).  The
  /// mutex serializes FlushEgress calls against each other and against
  /// rebinding — Network is not thread-safe, so one consumer drives the
  /// bound network at a time.
  mutable std::mutex egress_bind_m_;
  Network* egress_net_ = nullptr;
  std::map<u16, PortRef> egress_ports_;
  std::atomic<u64> egress_tx_{0};
  std::atomic<u64> egress_unbound_{0};

  std::atomic<u64> writes_broadcast_{0};
  std::atomic<u64> epoch_{0};
  std::atomic<u64> migrations_{0};
  std::atomic<u64> resizes_{0};

  // Pending epoch (guarded by pending_mutex_, never by engine_mutex_, so
  // staging never blocks behind in-flight work).
  mutable std::mutex pending_mutex_;
  std::vector<ConfigWrite> pending_writes_;

  // Configuration log: last write per resource address, replayed onto
  // replicas created by ResizeShards.  Guarded by the exclusive engine.
  std::map<u32, ConfigWrite> config_log_;

  // Tenant→shard steering table, indexed by VLAN/module ID.  kNoSteering
  // means "use the hash".  Lock-free reads on the scatter hot path;
  // stores only happen under the exclusive engine.
  static constexpr u32 kNoSteering = ~u32{0};
  std::vector<std::atomic<u32>> steering_;

  // Per-tenant monotonic counters for the relaxed stats path (indexed by
  // VLAN/module ID, bumped by workers after each sub-batch).
  std::vector<RelaxedCounter> tenant_forwarded_;
  std::vector<RelaxedCounter> tenant_dropped_;

  // Counts carried over from replicas destroyed by ResizeShards shrinks,
  // so the exact per-tenant/total accessors stay monotonic across
  // resizes.  Written under the exclusive engine; read under either gate.
  std::unordered_map<u16, u64> retired_forwarded_;
  std::unordered_map<u16, u64> retired_dropped_;
  u64 retired_packets_ = 0;

  // Recycled sub-batch buffer pool (see WorkBuffers).
  mutable std::mutex pool_mutex_;
  std::vector<WorkBuffers> buffer_pool_;
  std::vector<std::vector<ArenaPacket*>> stream_pool_;
};

}  // namespace menshen
