#include "sim/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "packet/headers.hpp"

namespace menshen {

std::vector<SimPacket> GenerateStream(const PlatformTiming& platform,
                                      const StreamSpec& spec,
                                      double duration_s) {
  const double hz = 1e12 / static_cast<double>(platform.clock.period_ps);
  const double pps =
      spec.gbps * 1e9 / (static_cast<double>(spec.bytes) * 8.0);
  const double cycles_per_packet = hz / pps;
  const std::size_t count =
      static_cast<std::size_t>(duration_s * pps);

  std::vector<SimPacket> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SimPacket p;
    p.arrival = static_cast<Cycle>(
        std::llround(static_cast<double>(i) * cycles_per_packet));
    p.bytes = spec.bytes;
    p.module = spec.module;
    out.push_back(p);
  }
  return out;
}

std::vector<SimPacket> MergeStreams(
    std::vector<std::vector<SimPacket>> streams) {
  std::vector<SimPacket> all;
  std::size_t total = 0;
  for (const auto& s : streams) total += s.size();
  all.reserve(total);
  for (auto& s : streams)
    all.insert(all.end(), s.begin(), s.end());
  std::stable_sort(all.begin(), all.end(),
                   [](const SimPacket& a, const SimPacket& b) {
                     return a.arrival < b.arrival;
                   });
  return all;
}

std::vector<SimPacket> GenerateSaturating(const PlatformTiming& platform,
                                          std::size_t bytes,
                                          std::size_t count, double max_pps) {
  const double hz = 1e12 / static_cast<double>(platform.clock.period_ps);
  double pps = WireCapacityPps(platform, bytes);
  if (max_pps > 0.0) pps = std::min(pps, max_pps);
  const double cycles_per_packet = hz / pps;

  std::vector<SimPacket> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SimPacket p;
    p.arrival = static_cast<Cycle>(
        std::llround(static_cast<double>(i) * cycles_per_packet));
    p.bytes = bytes;
    out.push_back(p);
  }
  return out;
}

std::vector<Packet> GenerateTenantMix(
    const std::vector<TenantTrafficSpec>& tenants, std::size_t count,
    u64 seed) {
  if (tenants.empty()) return {};

  double total_weight = 0.0;
  for (const TenantTrafficSpec& t : tenants) total_weight += t.weight;

  Rng rng(seed);
  std::vector<Packet> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Weighted tenant draw.
    double pick = rng.NextDouble() * total_weight;
    const TenantTrafficSpec* spec = &tenants.back();
    for (const TenantTrafficSpec& t : tenants) {
      pick -= t.weight;
      if (pick < 0.0) {
        spec = &t;
        break;
      }
    }

    const u32 flow = static_cast<u32>(rng.Below(1u << 16));
    Packet p = PacketBuilder{}
                   .vid(ModuleId(spec->vid))
                   .ipv4(0x0A000000u | flow, 0x0B000001)
                   .udp(static_cast<u16>(10000 + (flow & 0x3FF)), 20000)
                   .frame_size(spec->frame_bytes)
                   .Build();
    p.ingress_port = static_cast<u16>(flow & 0x7);
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace menshen
