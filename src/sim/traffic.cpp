#include "sim/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "packet/headers.hpp"

namespace menshen {

std::vector<SimPacket> GenerateStream(const PlatformTiming& platform,
                                      const StreamSpec& spec,
                                      double duration_s) {
  const double hz = 1e12 / static_cast<double>(platform.clock.period_ps);
  const double pps =
      spec.gbps * 1e9 / (static_cast<double>(spec.bytes) * 8.0);
  const double cycles_per_packet = hz / pps;
  const std::size_t count =
      static_cast<std::size_t>(duration_s * pps);

  std::vector<SimPacket> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SimPacket p;
    p.arrival = static_cast<Cycle>(
        std::llround(static_cast<double>(i) * cycles_per_packet));
    p.bytes = spec.bytes;
    p.module = spec.module;
    out.push_back(p);
  }
  return out;
}

std::vector<SimPacket> MergeStreams(
    std::vector<std::vector<SimPacket>> streams) {
  std::vector<SimPacket> all;
  std::size_t total = 0;
  for (const auto& s : streams) total += s.size();
  all.reserve(total);
  for (auto& s : streams)
    all.insert(all.end(), s.begin(), s.end());
  std::stable_sort(all.begin(), all.end(),
                   [](const SimPacket& a, const SimPacket& b) {
                     return a.arrival < b.arrival;
                   });
  return all;
}

std::vector<SimPacket> GenerateSaturating(const PlatformTiming& platform,
                                          std::size_t bytes,
                                          std::size_t count, double max_pps) {
  const double hz = 1e12 / static_cast<double>(platform.clock.period_ps);
  double pps = WireCapacityPps(platform, bytes);
  if (max_pps > 0.0) pps = std::min(pps, max_pps);
  const double cycles_per_packet = hz / pps;

  std::vector<SimPacket> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SimPacket p;
    p.arrival = static_cast<Cycle>(
        std::llround(static_cast<double>(i) * cycles_per_packet));
    p.bytes = bytes;
    out.push_back(p);
  }
  return out;
}

}  // namespace menshen
