// Workload generators for the timing simulator.
//
// Models the paper's testbed sources: MoonGen on a host NIC (Figure 11a —
// bounded by what one 10G NIC can generate), the Spirent hardware tester
// (Figures 11b-d — true line rate), and the netmap/tcpreplay mix of three
// fixed-rate module streams used in the reconfiguration experiment
// (Figure 10).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "packet/packet.hpp"
#include "sim/timing.hpp"

namespace menshen {

/// One constant-bit-rate stream of same-sized frames for one module.
struct StreamSpec {
  u16 module = 0;
  std::size_t bytes = 1500;
  double gbps = 1.0;  // layer-2 rate
};

/// Generates `duration_s` seconds of a stream at the platform clock;
/// arrivals are evenly spaced (CBR).  Cycle timestamps are exact integers;
/// rate error from rounding is < one cycle per packet.
[[nodiscard]] std::vector<SimPacket> GenerateStream(
    const PlatformTiming& platform, const StreamSpec& spec,
    double duration_s);

/// Merges per-stream packet vectors into one arrival-sorted workload.
[[nodiscard]] std::vector<SimPacket> MergeStreams(
    std::vector<std::vector<SimPacket>> streams);

/// Back-to-back frames at the highest rate the wire allows, capped at
/// `max_pps` (0 = uncapped).  Used for the Figure 11 sweeps: MoonGen on
/// one 10G NIC manages ~12 Mpps of minimum-size frames; the Spirent
/// tester has no practical cap.
[[nodiscard]] std::vector<SimPacket> GenerateSaturating(
    const PlatformTiming& platform, std::size_t bytes, std::size_t count,
    double max_pps = 0.0);

/// The practical MoonGen cap of the paper's single-NIC host setup.
inline constexpr double kMoonGenMaxPps = 12.0e6;

// --- Functional multi-tenant workloads ----------------------------------------

/// One tenant's share of a mixed functional (byte-level) workload.
struct TenantTrafficSpec {
  u16 vid = 2;
  std::size_t frame_bytes = 96;
  double weight = 1.0;  // relative share of the mix
};

/// Generates a deterministic interleaved multi-tenant trace of `count`
/// VLAN-tagged UDP packets: each packet's tenant is drawn by weight, and
/// its flow fields (IPv4 source, L4 source port) are varied so downstream
/// tables see diverse keys.  Feeds the batched dataplane's benches and
/// the sharded-vs-single differential test.
[[nodiscard]] std::vector<Packet> GenerateTenantMix(
    const std::vector<TenantTrafficSpec>& tenants, std::size_t count,
    u64 seed = 1);

}  // namespace menshen
