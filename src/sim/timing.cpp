#include "sim/timing.hpp"

#include <algorithm>
#include <stdexcept>

#include "packet/headers.hpp"

namespace menshen {

ElementLatencies LatenciesFor(const PlatformTiming& platform,
                              const PipelineTiming& timing) {
  ElementLatencies lat;
  lat.parser = timing.parser_service(platform);
  // Distribute the calibrated processing depth over the five stages and
  // the deparser's PHV-merge step; see pipeline/params.hpp for how the
  // totals were calibrated against section 5.2.  On cut-through platforms
  // the depth is measured from packet arrival and therefore includes the
  // wait for the 128-byte header window.
  Cycle budget = platform.processing_depth - lat.filter - lat.parser;
  if (platform.overlap_ingress)
    budget -= platform.beats(kParserWindowBytes);
  lat.per_stage = (budget - 10) / params::kNumStages;  // leave >=10 for merge
  lat.deparser_fixed = budget - lat.per_stage * params::kNumStages;
  return lat;
}

TimingSimulator::TimingSimulator(const PlatformTiming& platform,
                                 PipelineTiming timing)
    : platform_(&platform),
      timing_(timing),
      lat_(LatenciesFor(platform, timing)),
      parser_free_(timing.parsers, 0),
      stage_last_start_(params::kNumStages, 0),
      deparser_free_(timing.deparsers, 0) {}

void TimingSimulator::Reset() {
  ingress_free_ = filter_last_ = egress_free_ = 0;
  seq_ = 0;
  std::fill(parser_free_.begin(), parser_free_.end(), 0);
  std::fill(stage_last_start_.begin(), stage_last_start_.end(), 0);
  std::fill(deparser_free_.begin(), deparser_free_.end(), 0);
}

void TimingSimulator::Run(std::vector<SimPacket>& packets) {
  const PlatformTiming& p = *platform_;
  const Cycle hdr_beats = p.beats(kParserWindowBytes);

  Cycle prev_arrival = 0;
  for (SimPacket& pkt : packets) {
    if (pkt.arrival < prev_arrival)
      throw std::invalid_argument("packets must be sorted by arrival");
    prev_arrival = pkt.arrival;

    const Cycle beats_in = p.beats(pkt.bytes);

    // Ingress bus: serializes the frame into the pipeline.
    const Cycle in_start = std::max(pkt.arrival, ingress_free_);
    ingress_free_ = in_start + beats_in;
    const Cycle buffer_full = in_start + beats_in;

    // Packet filter: one packet per cycle.  Cut-through platforms start
    // processing once the (fixed) header window has arrived on the bus;
    // store-and-forward platforms wait for the whole frame.
    const Cycle proc_entry =
        p.overlap_ingress ? in_start + hdr_beats : buffer_full;
    const Cycle filter_start = std::max(proc_entry, filter_last_ + 1);
    filter_last_ = filter_start;
    const Cycle filter_done = filter_start + lat_.filter;

    if (pkt.drop_at_filter) {
      // Dropped by the reconfiguration bitmap (or missing VLAN): the
      // packet consumed ingress bandwidth and a filter slot, nothing else.
      pkt.delivered = false;
      pkt.done = filter_done;
      pkt.latency = pkt.done - pkt.arrival;
      ++seq_;
      continue;
    }

    // Parser bank (round robin over `parsers`).
    const std::size_t pj = seq_ % timing_.parsers;
    const Cycle parse_start = std::max(filter_done, parser_free_[pj]);
    parser_free_[pj] = parse_start + lat_.parser;
    Cycle t = parse_start + lat_.parser;

    // Match-action stages: each accepts a PHV every stage_ii cycles.
    for (std::size_t s = 0; s < stage_last_start_.size(); ++s) {
      const Cycle start =
          std::max(t, stage_last_start_[s] + timing_.stage_ii);
      stage_last_start_[s] = start;
      t = start + lat_.per_stage;
    }

    // Deparser bank (by packet-buffer tag): merges the PHV back into the
    // buffered packet.  Its service time covers re-writing the header and
    // streaming the payload (section 3.2: the most expensive element).
    const std::size_t dj = seq_ % timing_.deparsers;
    const Cycle dep_start = std::max(t, deparser_free_[dj]);
    deparser_free_[dj] = dep_start + timing_.deparser_service(p, pkt.bytes);
    const Cycle phv_done = dep_start + lat_.deparser_fixed;

    // Egress bus: store-and-forward at the packet buffer — transmission
    // starts once the PHV is merged AND the whole packet is buffered.
    const Cycle egress_busy =
        (beats_in + p.egress_beats_per_cycle - 1) / p.egress_beats_per_cycle;
    const Cycle egress_start =
        std::max({phv_done, buffer_full, egress_free_});
    egress_free_ = egress_start + egress_busy;

    pkt.delivered = true;
    pkt.done = egress_start + egress_busy;
    pkt.latency = pkt.done - pkt.arrival;
    ++seq_;
  }
}

FunctionalTimingRun RunFunctionalTimed(Dataplane& dp,
                                       std::vector<Packet> trace,
                                       TimingSimulator& sim,
                                       Cycle interarrival) {
  FunctionalTimingRun run;
  run.packets.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    SimPacket sp;
    sp.arrival = static_cast<Cycle>(i) * interarrival;
    sp.bytes = trace[i].size();
    sp.module = trace[i].has_vlan() ? trace[i].vid().value() : 0;
    run.packets.push_back(sp);
  }
  // The functional engine decides each packet's fate; the timing model
  // then prices exactly that behaviour (a filter rejection occupies the
  // filter but never the parser/stages).
  run.results = dp.ProcessBatch(std::move(trace));
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    if (run.results[i].filter_verdict != FilterVerdict::kData) {
      run.packets[i].drop_at_filter = true;
      ++run.filter_drops;
    }
  }
  sim.Run(run.packets);
  return run;
}

double PipelineCapacityPps(const PlatformTiming& platform,
                           const PipelineTiming& timing, std::size_t bytes,
                           std::size_t probe_packets) {
  // Offer packets back-to-back (arrival 0) and measure the steady-state
  // completion spacing over the second half of the probe.
  TimingSimulator sim(platform, timing);
  std::vector<SimPacket> pkts(probe_packets);
  for (auto& p : pkts) p.bytes = bytes;
  sim.Run(pkts);
  const std::size_t lo = probe_packets / 2;
  const Cycle span = pkts.back().done - pkts[lo].done;
  const double packets = static_cast<double>(probe_packets - 1 - lo);
  const double cycles_per_packet = static_cast<double>(span) / packets;
  const double hz = 1e12 / static_cast<double>(platform.clock.period_ps);
  return hz / cycles_per_packet;
}

double WireCapacityPps(const PlatformTiming& platform, std::size_t bytes) {
  const double frame_bits =
      static_cast<double>(bytes + kLayer1OverheadBytes) * 8.0;
  return platform.link_gbps * 1e9 / frame_bits;
}

}  // namespace menshen
