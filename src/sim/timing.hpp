// Cycle-level timing simulator for the Menshen pipeline.
//
// The functional pipeline (pipeline/) computes *what* happens to packets;
// this engine computes *when*.  Every hardware element is modelled as a
// contended resource with an initiation interval and a latency, and each
// packet's trajectory is resolved exactly, in integer cycles, by a
// per-packet recursion over resource availability (packets are FIFO at
// every element, so arrival order fully determines the schedule):
//
//   ingress bus  -> packet filter -> parser bank (round robin) ->
//   5 match-action stages (II-limited) -> deparser bank (by buffer tag)
//   -> packet buffer -> egress bus
//
// Platform differences follow section 4.3 and the calibration notes in
// pipeline/params.hpp: Corundum parses as soon as the 128-byte header
// window has arrived (cut-through) but stores-and-forwards at the packet
// buffer; NetFPGA stores-and-forwards at ingress and drains its buffer
// through a double-width read port.
#pragma once

#include <vector>

#include "dataplane/dataplane.hpp"
#include "pipeline/params.hpp"

namespace menshen {

struct SimPacket {
  Cycle arrival = 0;     // first bit on the ingress bus
  std::size_t bytes = 0; // layer-2 frame size
  u16 module = 0;
  bool drop_at_filter = false;  // e.g. reconfiguration bitmap hit

  // Outputs.
  bool delivered = false;
  Cycle done = 0;     // last bit on the egress bus
  Cycle latency = 0;  // done - arrival
};

/// Element latencies that make up the fixed processing depth; derived
/// from PlatformTiming so that an idle pipeline reproduces the paper's
/// section 5.2 cycle counts exactly (asserted in tests).
struct ElementLatencies {
  Cycle filter = 2;
  Cycle parser = 0;        // parser_service(platform)
  Cycle per_stage = 0;
  Cycle deparser_fixed = 0;
};
[[nodiscard]] ElementLatencies LatenciesFor(const PlatformTiming& platform,
                                            const PipelineTiming& timing);

class TimingSimulator {
 public:
  TimingSimulator(const PlatformTiming& platform, PipelineTiming timing);

  /// Resolves timing for `packets`, which must be sorted by arrival.
  /// Fills the output fields of each packet.
  void Run(std::vector<SimPacket>& packets);

  /// Resets all resource-availability state.
  void Reset();

  [[nodiscard]] const PlatformTiming& platform() const { return *platform_; }
  [[nodiscard]] const PipelineTiming& timing() const { return timing_; }

 private:
  const PlatformTiming* platform_;
  PipelineTiming timing_;
  ElementLatencies lat_;

  Cycle ingress_free_ = 0;
  Cycle filter_last_ = 0;
  std::vector<Cycle> parser_free_;
  std::vector<Cycle> stage_last_start_;
  std::vector<Cycle> deparser_free_;
  Cycle egress_free_ = 0;
  u64 seq_ = 0;
};

/// A functional trace run through the batched dataplane engine with its
/// timing resolved: the timing model's inputs (size, module, whether the
/// filter dropped the packet) are derived from what the optimized engine
/// actually did, instead of being synthesized by hand.
struct FunctionalTimingRun {
  /// One per trace packet, in batch order, with timing outputs filled.
  std::vector<SimPacket> packets;
  /// The functional results, in batch order.
  std::vector<PipelineResult> results;
  std::size_t filter_drops = 0;  // packets the functional filter rejected
};

/// Runs `trace` through `dp`'s batched ProcessBatch (concurrent when the
/// dataplane has worker threads), then resolves per-packet timing with
/// `sim`.  Packets arrive back-to-back, `interarrival` cycles apart.
[[nodiscard]] FunctionalTimingRun RunFunctionalTimed(Dataplane& dp,
                                                     std::vector<Packet> trace,
                                                     TimingSimulator& sim,
                                                     Cycle interarrival = 1);

/// Achieved steady-state forwarding rate for back-to-back `bytes`-sized
/// packets (packets per second), considering only the pipeline (no link).
[[nodiscard]] double PipelineCapacityPps(const PlatformTiming& platform,
                                         const PipelineTiming& timing,
                                         std::size_t bytes,
                                         std::size_t probe_packets = 20000);

/// Wire capacity of the attached link in packets per second for a given
/// frame size (layer-1 accounting: +20 bytes preamble/IFG per frame).
[[nodiscard]] double WireCapacityPps(const PlatformTiming& platform,
                                     std::size_t bytes);

}  // namespace menshen
