#include "sim/experiments.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "config/sw_hw_interface.hpp"
#include "pipeline/rate_limiter.hpp"
#include "packet/headers.hpp"

namespace menshen {

namespace {

double Hz(const PlatformTiming& p) {
  return 1e12 / static_cast<double>(p.clock.period_ps);
}

/// Mean delivered latency (in us, including the external MAC/PHY/tester
/// path) when the pipeline is offered `fraction` of its achieved rate.
double MeanLatencyUs(const PlatformTiming& platform,
                     const PipelineTiming& timing, std::size_t bytes,
                     double pps, std::size_t probe) {
  TimingSimulator sim(platform, timing);
  std::vector<SimPacket> pkts;
  pkts.reserve(probe);
  const double cycles_per_packet = Hz(platform) / pps;
  for (std::size_t i = 0; i < probe; ++i) {
    SimPacket p;
    p.arrival = static_cast<Cycle>(
        std::llround(static_cast<double>(i) * cycles_per_packet));
    p.bytes = bytes;
    pkts.push_back(p);
  }
  sim.Run(pkts);
  // Skip the warm-up quarter.
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = probe / 4; i < probe; ++i) {
    sum += platform.clock.cycles_to_us(pkts[i].latency);
    ++n;
  }
  return sum / static_cast<double>(n) + platform.external_path_ns / 1000.0;
}

}  // namespace

std::vector<ThroughputPoint> RunThroughputSweep(
    const ThroughputSweepConfig& cfg) {
  std::vector<ThroughputPoint> out;
  const PlatformTiming& platform = *cfg.platform;

  for (const std::size_t bytes : cfg.sizes) {
    ThroughputPoint pt;
    pt.bytes = bytes;

    const double pipe_pps =
        PipelineCapacityPps(platform, cfg.timing, bytes, cfg.probe_packets);
    const double wire_pps = WireCapacityPps(platform, bytes);
    double pps = std::min(pipe_pps, wire_pps);
    if (cfg.generator_max_pps > 0.0)
      pps = std::min(pps, cfg.generator_max_pps);

    pt.mpps = pps / 1e6;
    pt.l2_gbps = pps * static_cast<double>(bytes) * 8.0 / 1e9;
    pt.l1_gbps =
        pps * static_cast<double>(bytes + kLayer1OverheadBytes) * 8.0 / 1e9;
    pt.mean_latency_us =
        MeanLatencyUs(platform, cfg.timing, bytes, pps * 0.98,
                      std::max<std::size_t>(cfg.probe_packets / 4, 4000));
    out.push_back(pt);
  }
  return out;
}

std::vector<ThroughputPoint> Fig11aNetFpgaOptimized() {
  ThroughputSweepConfig cfg;
  cfg.platform = &NetFpgaPlatform();
  cfg.timing = OptimizedTiming();
  cfg.sizes = {64, 96, 128, 256, 512};
  cfg.generator_max_pps = kMoonGenMaxPps;  // single-NIC MoonGen host
  return RunThroughputSweep(cfg);
}

std::vector<ThroughputPoint> Fig11bCorundumOptimized() {
  ThroughputSweepConfig cfg;
  cfg.platform = &CorundumPlatform();
  cfg.timing = OptimizedTiming();
  cfg.sizes = {70, 128, 256, 512, 768, 1024, 1500};
  return RunThroughputSweep(cfg);
}

std::vector<ThroughputPoint> Fig11cCorundumUnoptimized() {
  ThroughputSweepConfig cfg;
  cfg.platform = &CorundumPlatform();
  cfg.timing = UnoptimizedTiming();
  cfg.sizes = {70, 128, 256, 512, 768, 1024, 1500};
  return RunThroughputSweep(cfg);
}

Fig10Result RunReconfigDisruption(const Fig10Config& cfg) {
  const PlatformTiming& platform = NetFpgaPlatform();
  const double share_sum =
      std::accumulate(cfg.shares.begin(), cfg.shares.end(), 0.0);

  // Build the three CBR streams (modules are numbered 1..N).
  std::vector<std::vector<SimPacket>> streams;
  for (std::size_t m = 0; m < cfg.shares.size(); ++m) {
    StreamSpec spec;
    spec.module = static_cast<u16>(m + 1);
    spec.bytes = cfg.bytes;
    spec.gbps = cfg.total_gbps * cfg.shares[m] / share_sum;
    streams.push_back(GenerateStream(platform, spec, cfg.duration_s));
  }
  std::vector<SimPacket> all = MergeStreams(std::move(streams));

  // Reconfiguration window: the control plane sets the bitmap bit for
  // module 1, streams the module's writes down the daisy chain, then
  // clears the bit (section 4.1).  The window length follows the Fig. 9
  // software cost model unless overridden.
  const double window_s =
      cfg.reconfig_duration_s > 0.0
          ? cfg.reconfig_duration_s
          : MenshenConfigTimeMs(cfg.module_writes) / 1e3;
  const double hz = Hz(platform);
  const Cycle w_start = static_cast<Cycle>(cfg.reconfig_at_s * hz);
  const Cycle w_end = static_cast<Cycle>((cfg.reconfig_at_s + window_s) * hz);
  for (SimPacket& p : all) {
    if (p.module == 1 && p.arrival >= w_start && p.arrival < w_end)
      p.drop_at_filter = true;
  }

  TimingSimulator sim(platform, OptimizedTiming());
  sim.Run(all);

  // Bin delivered bits per module.
  Fig10Result result;
  result.reconfig_start_s = cfg.reconfig_at_s;
  result.reconfig_end_s = cfg.reconfig_at_s + window_s;
  const std::size_t nbins =
      static_cast<std::size_t>(cfg.duration_s / cfg.bin_s);
  result.bins.resize(nbins);
  for (std::size_t b = 0; b < nbins; ++b) {
    result.bins[b].t_s = static_cast<double>(b) * cfg.bin_s;
    result.bins[b].gbps.assign(cfg.shares.size(), 0.0);
  }
  std::vector<double> outside_bits(cfg.shares.size(), 0.0);
  double outside_s = cfg.duration_s - window_s;

  for (const SimPacket& p : all) {
    if (!p.delivered) continue;
    const double t = static_cast<double>(p.done) / hz;
    const std::size_t b = static_cast<std::size_t>(t / cfg.bin_s);
    if (b >= nbins) continue;
    const double bits = static_cast<double>(p.bytes) * 8.0;
    result.bins[b].gbps[p.module - 1] += bits / (cfg.bin_s * 1e9);
    if (p.arrival < w_start || p.arrival >= w_end)
      outside_bits[p.module - 1] += bits;
  }
  result.gbps_outside_window.resize(cfg.shares.size());
  for (std::size_t m = 0; m < cfg.shares.size(); ++m)
    result.gbps_outside_window[m] = outside_bits[m] / (outside_s * 1e9);
  return result;
}

PerfIsolationResult RunPerformanceIsolation(double victim_gbps,
                                             double limit_pps,
                                             double duration_s) {
  const PlatformTiming& platform = CorundumPlatform();
  PerfIsolationResult result;

  const auto victim_stream = [&] {
    StreamSpec spec;
    spec.module = 1;
    spec.bytes = 1500;
    spec.gbps = victim_gbps;
    return GenerateStream(platform, spec, duration_s);
  };
  const auto attacker_stream = [&] {
    // A 64-byte flood at the wire's packet rate: far beyond the
    // pipeline's small-packet capacity (the min-size assumption the
    // paper calls out in section 5.1).
    std::vector<SimPacket> pkts = GenerateSaturating(
        platform, 64,
        static_cast<std::size_t>(WireCapacityPps(platform, 64) * duration_s));
    for (auto& p : pkts) p.module = 2;
    return pkts;
  };

  const auto victim_rate = [&](std::vector<SimPacket>& pkts) {
    u64 bits = 0;
    Cycle last = 0;
    for (const auto& p : pkts) {
      if (p.module != 1 || !p.delivered) continue;
      bits += p.bytes * 8;
      last = std::max(last, p.done);
    }
    const double hz = 1e12 / static_cast<double>(platform.clock.period_ps);
    return last == 0 ? 0.0
                     : static_cast<double>(bits) /
                           (static_cast<double>(last) / hz) / 1e9;
  };

  {
    TimingSimulator sim(platform, OptimizedTiming());
    auto pkts = victim_stream();
    sim.Run(pkts);
    result.victim_gbps_alone = victim_rate(pkts);
  }
  {
    TimingSimulator sim(platform, OptimizedTiming());
    auto pkts = MergeStreams({victim_stream(), attacker_stream()});
    sim.Run(pkts);
    result.victim_gbps_flooded = victim_rate(pkts);
  }
  {
    // Rate limiter at the packet filter: the attacker's non-conforming
    // packets are dropped before consuming parser/stage slots.
    const double hz = 1e12 / static_cast<double>(platform.clock.period_ps);
    RateLimiter limiter(hz);
    RateLimit limit;
    limit.max_pps = limit_pps;
    limit.burst_packets = 64;
    limiter.SetLimit(ModuleId(2), limit);

    auto pkts = MergeStreams({victim_stream(), attacker_stream()});
    u64 attacker_through = 0;
    for (auto& p : pkts) {
      if (p.module == 2 && !limiter.Admit(ModuleId(2), p.bytes, p.arrival))
        p.drop_at_filter = true;
      else if (p.module == 2)
        ++attacker_through;
    }
    TimingSimulator sim(platform, OptimizedTiming());
    sim.Run(pkts);
    result.victim_gbps_limited = victim_rate(pkts);
    result.attacker_mpps_limited =
        static_cast<double>(attacker_through) / duration_s / 1e6;
  }
  return result;
}

std::vector<LatencyRow> Section52LatencyTable() {
  std::vector<LatencyRow> rows;
  for (const PlatformTiming* p : {&NetFpgaPlatform(), &CorundumPlatform()}) {
    for (const std::size_t bytes : {std::size_t{64}, std::size_t{1500}}) {
      const Cycle cycles = IdleLatencyCycles(*p, bytes);
      rows.push_back(LatencyRow{p->name, bytes, cycles,
                                p->clock.cycles_to_ns(cycles)});
    }
  }
  return rows;
}

}  // namespace menshen
