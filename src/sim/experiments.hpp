// Experiment drivers that regenerate the paper's performance figures.
//
// Each driver returns plain row structs; the bench binaries print them in
// the same shape as the paper's plots (EXPERIMENTS.md records paper-vs-
// measured for every row).
#pragma once

#include <string>
#include <vector>

#include "sim/traffic.hpp"

namespace menshen {

// --- Figure 11: throughput / latency vs packet size ---------------------------

struct ThroughputPoint {
  std::size_t bytes = 0;
  double l1_gbps = 0.0;   // includes preamble + IFG
  double l2_gbps = 0.0;   // frame bits only
  double mpps = 0.0;
  double mean_latency_us = 0.0;  // at ~98% of achieved rate, incl. external path
};

struct ThroughputSweepConfig {
  const PlatformTiming* platform = nullptr;
  PipelineTiming timing;
  std::vector<std::size_t> sizes;
  double generator_max_pps = 0.0;  // 0 = hardware tester (no cap)
  std::size_t probe_packets = 40000;
};

[[nodiscard]] std::vector<ThroughputPoint> RunThroughputSweep(
    const ThroughputSweepConfig& cfg);

/// The paper's four panels, pre-configured.
[[nodiscard]] std::vector<ThroughputPoint> Fig11aNetFpgaOptimized();
[[nodiscard]] std::vector<ThroughputPoint> Fig11bCorundumOptimized();
[[nodiscard]] std::vector<ThroughputPoint> Fig11cCorundumUnoptimized();

// --- Figure 10: throughput during reconfiguration -----------------------------

struct Fig10Config {
  double total_gbps = 9.3;        // offered load on the 10G link
  std::vector<double> shares = {5, 3, 2};  // module rate ratio
  std::size_t bytes = 1500;
  double duration_s = 3.0;
  double reconfig_at_s = 0.5;
  double reconfig_duration_s = 0.0;  // 0 = derive from the Fig. 9 model
  std::size_t module_writes = 64;    // config writes for the updated module
  double bin_s = 0.05;               // reporting granularity
};

struct Fig10Bin {
  double t_s = 0.0;
  std::vector<double> gbps;  // one value per module
};

struct Fig10Result {
  std::vector<Fig10Bin> bins;
  double reconfig_start_s = 0.0;
  double reconfig_end_s = 0.0;
  /// Sanity sums for assertions: delivered bits per module outside and
  /// inside the reconfiguration window.
  std::vector<double> gbps_outside_window;
};

[[nodiscard]] Fig10Result RunReconfigDisruption(const Fig10Config& cfg);

// --- Section 5.1: performance isolation under a minimum-size flood ---------------

/// One module violates the minimum-packet-size assumption by flooding
/// 64-byte frames while a well-behaved module sends MTU traffic at a
/// fixed rate.  Without a rate limiter the flood steals pipeline slots
/// from the victim; with a per-module pps limiter (section 5.1) the
/// victim's throughput is restored.
struct PerfIsolationResult {
  double victim_gbps_alone = 0.0;       // victim without the attacker
  double victim_gbps_flooded = 0.0;     // attacker unlimited
  double victim_gbps_limited = 0.0;     // attacker rate-limited
  double attacker_mpps_limited = 0.0;   // what the limiter lets through
};

[[nodiscard]] PerfIsolationResult RunPerformanceIsolation(
    double victim_gbps = 40.0, double limit_pps = 5e6,
    double duration_s = 0.005);

// --- Section 5.2 latency table --------------------------------------------------

struct LatencyRow {
  std::string platform;
  std::size_t bytes;
  Cycle cycles;
  double ns;
};
[[nodiscard]] std::vector<LatencyRow> Section52LatencyTable();

}  // namespace menshen
