// Pool-recycled packet arena — the zero-copy substrate of the streaming
// dataplane (dataplane/Dataplane::SubmitStream).
//
// The batched path copies every packet at least twice (builder -> batch
// vector -> per-shard sub-batch) and materializes a PipelineResult with
// an optional<Packet> and an optional<Phv> per packet.  The streaming
// path replaces all of that with ArenaPacket: a fixed-room,
// cache-line-aligned buffer owned by a PacketArena free list.  Producers
// allocate bursts, fill bytes in place, and enqueue raw pointers; the
// pipeline parses/deparses through in-place views (the templated helpers
// in pipeline/plan_exec.hpp); consumers read the egress bytes and
// release the buffers back to their owning arena — one allocation per
// buffer for the lifetime of the arena, ASAN-clean because the deque
// owns every byte.
//
// Ownership rule: exactly one party owns an ArenaPacket at any time —
// the producer between Allocate and SubmitStream, the dataplane between
// SubmitStream and PollEgress, the consumer between PollEgress and
// Release.  The arena never frees storage while packets are
// outstanding; Release(Burst) hands buffers back for reuse.
//
// The byte array is the FIRST member: prefetching the ArenaPacket
// pointer prefetches the packet's header bytes — the classify loop's
// prefetch-ahead needs no dependent pointer chase (the batched path
// must first load Packet, then follow its heap ByteBuffer pointer).
#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "packet/headers.hpp"

namespace menshen {

enum class Disposition : u8;  // packet/packet.hpp (full def for users)

class PacketArena;

class ArenaPacket {
 public:
  /// Fixed data room per buffer (one DPDK-style mbuf dataroom): every
  /// frame this simulator generates fits with slack, and the fixed size
  /// keeps buffers interchangeable in the free list.
  static constexpr std::size_t kDataRoom = 2048;

  ArenaPacket() = default;
  ArenaPacket(const ArenaPacket&) = delete;
  ArenaPacket& operator=(const ArenaPacket&) = delete;

  /// In-place byte views, interface-compatible with Packet's
  /// `pkt.bytes()` for the shared hot-path templates (plan_exec.hpp,
  /// PacketFilter::Classify): `.size()` and `.bytes().data()`.
  struct View {
    u8* d = nullptr;
    std::size_t n = 0;
    [[nodiscard]] std::size_t size() const { return n; }
    [[nodiscard]] std::span<u8> bytes() const { return {d, n}; }
  };
  struct ConstView {
    const u8* d = nullptr;
    std::size_t n = 0;
    [[nodiscard]] std::size_t size() const { return n; }
    [[nodiscard]] std::span<const u8> bytes() const { return {d, n}; }
  };

  [[nodiscard]] View bytes() { return View{data_.data(), len_}; }
  [[nodiscard]] ConstView bytes() const { return ConstView{data_.data(), len_}; }
  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] u8* data() { return data_.data(); }
  [[nodiscard]] const u8* data() const { return data_.data(); }

  /// Copies a frame into the buffer (clipped to kDataRoom) and sets the
  /// length.  The producer-side fill primitive.
  void Assign(std::span<const u8> frame) {
    len_ = frame.size() < kDataRoom ? frame.size() : kDataRoom;
    std::memcpy(data_.data(), frame.data(), len_);
  }
  void set_size(std::size_t n) { len_ = n < kDataRoom ? n : kDataRoom; }

  // --- Header accessors the steering/accounting paths need ---------------
  [[nodiscard]] bool has_vlan() const {
    return len_ >= offsets::kPayload &&
           static_cast<u16>((u16{data_[offsets::kVlanTpid]} << 8) |
                            data_[offsets::kVlanTpid + 1]) == kEtherTypeVlan;
  }
  [[nodiscard]] ModuleId vid() const {
    return ModuleId(static_cast<u16>(
        ((u16{data_[offsets::kVlanTci]} << 8) | data_[offsets::kVlanTci + 1]) &
        0x0FFF));
  }

  // --- Sidebands (same contract as Packet's) ------------------------------
  u16 ingress_port = 0;
  Disposition disposition{};  // kForward (0) until the pipeline decides
  u16 egress_port = 0;
  std::vector<u16> multicast_ports;
  u8 buffer_tag = 0;
  /// FilterVerdict (as u8 — packet/ sits below pipeline/) the streaming
  /// pipeline assigned; 0 = kData.  Consumers route on it: only kData
  /// packets carry a pipeline disposition.
  u8 verdict = 0;
  /// Execution-ladder tier (common/exec_tier.hpp ExecTier as u8) that
  /// resolved this packet, and the stages/steps that tier visited —
  /// telemetry sidebands the streaming pipeline fills.
  u8 exec_tier = 0;
  u8 exec_steps = 0;
  /// TSC stamp taken by SubmitStream at ingress (one read per burst);
  /// the shard worker subtracts it at completion for the streaming
  /// latency histograms.  0 when histograms are disabled.
  u64 ingress_tsc = 0;
  /// Phase-carry scratch for the burst-probe path: the flow-cache slot
  /// index BurstProbe computed in phase 2, reused by the phase-3
  /// fallback resolution so the hash is never recomputed.  Meaningless
  /// outside one ProcessStreamBurst call.
  u64 scratch = 0;

  [[nodiscard]] PacketArena* owner() const { return owner_; }

 private:
  friend class PacketArena;

  alignas(64) std::array<u8, kDataRoom> data_{};
  std::size_t len_ = 0;
  PacketArena* owner_ = nullptr;
};

/// Free-list arena of ArenaPackets.  Thread-safe: any thread may
/// allocate or release (the burst APIs take the lock once per burst,
/// not per packet).  Storage is a deque, so buffer addresses are stable
/// forever and the arena's destructor is the single point of
/// deallocation — a leaked buffer is a held-pointer bug, not lost
/// memory, and `outstanding()` makes it testable.
class PacketArena {
 public:
  /// `max_packets` caps the number of buffers ever created; 0 means
  /// unbounded.  A capped arena returns nullptr / a short burst when
  /// every buffer is outstanding — natural end-to-end flow control for
  /// streaming producers (allocate fails until egress is consumed).
  explicit PacketArena(std::size_t max_packets = 0)
      : max_packets_(max_packets) {}

  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;

  /// One buffer, metadata reset; nullptr when the cap is exhausted.
  [[nodiscard]] ArenaPacket* Allocate();
  /// Up to `n` buffers into `out`; returns how many were allocated
  /// (short only when the cap is exhausted).
  std::size_t AllocateBurst(ArenaPacket** out, std::size_t n);

  /// Returns buffers to the free list.  Each packet must be owned by
  /// THIS arena; use ReleaseToOwners for mixed-origin spans.
  void Release(ArenaPacket* pkt);
  void ReleaseBurst(ArenaPacket* const* pkts, std::size_t n);

  /// Buffers ever created (== high-water mark of concurrent ownership).
  [[nodiscard]] std::size_t capacity() const;
  /// Buffers currently outside the free list.  0 after every consumer
  /// released — the arena leak check.
  [[nodiscard]] std::size_t outstanding() const;
  [[nodiscard]] u64 allocations() const;
  /// Allocations served by recycling a previously released buffer.
  [[nodiscard]] u64 recycles() const;

 private:
  mutable std::mutex m_;
  std::deque<ArenaPacket> storage_;
  std::vector<ArenaPacket*> free_;
  std::size_t max_packets_;
  std::size_t outstanding_ = 0;
  u64 allocations_ = 0;
  u64 recycles_ = 0;
};

/// Releases a span of packets that may come from different arenas
/// (a consumer draining a shared egress queue holds buffers from every
/// producer): groups consecutive same-owner runs so the per-arena lock
/// is taken once per run, not per packet.
void ReleaseToOwners(ArenaPacket* const* pkts, std::size_t n);

}  // namespace menshen
