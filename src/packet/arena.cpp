#include "packet/arena.hpp"

namespace menshen {

namespace {

/// Metadata reset on allocation: a recycled buffer must look exactly
/// like a fresh one (isolation: no sideband of a previous tenant's
/// packet may leak into the next).  Bytes are NOT zeroed — the producer
/// overwrites [0, len) via Assign and nothing reads past len.
inline void ResetMetadata(ArenaPacket& p) {
  p.set_size(0);
  p.ingress_port = 0;
  p.disposition = {};
  p.egress_port = 0;
  p.multicast_ports.clear();
  p.buffer_tag = 0;
  p.verdict = 0;
  p.exec_tier = 0;
  p.exec_steps = 0;
  p.ingress_tsc = 0;
}

}  // namespace

ArenaPacket* PacketArena::Allocate() {
  ArenaPacket* p = nullptr;
  {
    std::lock_guard<std::mutex> lk(m_);
    if (!free_.empty()) {
      p = free_.back();
      free_.pop_back();
      ++recycles_;
    } else if (max_packets_ == 0 || storage_.size() < max_packets_) {
      p = &storage_.emplace_back();
      p->owner_ = this;
    } else {
      return nullptr;  // cap exhausted: backpressure the producer
    }
    ++outstanding_;
    ++allocations_;
  }
  ResetMetadata(*p);
  return p;
}

std::size_t PacketArena::AllocateBurst(ArenaPacket** out, std::size_t n) {
  std::size_t got = 0;
  {
    std::lock_guard<std::mutex> lk(m_);
    while (got < n) {
      ArenaPacket* p;
      if (!free_.empty()) {
        p = free_.back();
        free_.pop_back();
        ++recycles_;
      } else if (max_packets_ == 0 || storage_.size() < max_packets_) {
        p = &storage_.emplace_back();
        p->owner_ = this;
      } else {
        break;
      }
      out[got++] = p;
    }
    outstanding_ += got;
    allocations_ += got;
  }
  for (std::size_t i = 0; i < got; ++i) ResetMetadata(*out[i]);
  return got;
}

void PacketArena::Release(ArenaPacket* pkt) { ReleaseBurst(&pkt, 1); }

void PacketArena::ReleaseBurst(ArenaPacket* const* pkts, std::size_t n) {
  if (n == 0) return;
  // Egress consumption can retain large multicast port lists; shed that
  // memory outside the lock.
  for (std::size_t i = 0; i < n; ++i) {
    if (pkts[i]->multicast_ports.capacity() > 16) {
      pkts[i]->multicast_ports.clear();
      pkts[i]->multicast_ports.shrink_to_fit();
    }
  }
  std::lock_guard<std::mutex> lk(m_);
  for (std::size_t i = 0; i < n; ++i) free_.push_back(pkts[i]);
  outstanding_ -= n < outstanding_ ? n : outstanding_;
}

std::size_t PacketArena::capacity() const {
  std::lock_guard<std::mutex> lk(m_);
  return storage_.size();
}

std::size_t PacketArena::outstanding() const {
  std::lock_guard<std::mutex> lk(m_);
  return outstanding_;
}

u64 PacketArena::allocations() const {
  std::lock_guard<std::mutex> lk(m_);
  return allocations_;
}

u64 PacketArena::recycles() const {
  std::lock_guard<std::mutex> lk(m_);
  return recycles_;
}

void ReleaseToOwners(ArenaPacket* const* pkts, std::size_t n) {
  std::size_t run_start = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (i == n || pkts[i]->owner() != pkts[run_start]->owner()) {
      pkts[run_start]->owner()->ReleaseBurst(pkts + run_start, i - run_start);
      run_start = i;
    }
  }
}

}  // namespace menshen
