// Packet representation for the Menshen simulator.
//
// A Packet owns its bytes plus simulation metadata that real hardware would
// carry on sidebands: arrival timestamp, ingress port, and the disposition
// the pipeline assigns (forward to port / drop).  Header fields are accessed
// through typed accessors at the fixed offsets of a VLAN-tagged IPv4 packet
// (see headers.hpp).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "packet/headers.hpp"

namespace menshen {

/// Egress disposition assigned by the pipeline.
enum class Disposition : u8 {
  kForward,   // send out of egress port in metadata
  kDrop,      // discarded (ALU `discard`, filter drop, or reconfig bitmap)
  kMulticast, // replicate to the ports in `multicast_ports`
};

class Packet {
 public:
  Packet() = default;
  explicit Packet(ByteBuffer bytes) : bytes_(std::move(bytes)) {}

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] const ByteBuffer& bytes() const { return bytes_; }
  [[nodiscard]] ByteBuffer& bytes() { return bytes_; }

  // --- Common header accessors -------------------------------------------
  [[nodiscard]] bool has_vlan() const {
    return bytes_.size() >= offsets::kPayload &&
           bytes_.u16_at(offsets::kVlanTpid) == kEtherTypeVlan;
  }
  [[nodiscard]] ModuleId vid() const {
    return ModuleId(bytes_.u16_at(offsets::kVlanTci) & 0x0FFF);
  }
  void set_vid(ModuleId id) {
    const u16 tci = bytes_.u16_at(offsets::kVlanTci);
    bytes_.set_u16(offsets::kVlanTci,
                   static_cast<u16>((tci & 0xF000) | id.value()));
  }

  [[nodiscard]] u32 ipv4_src() const { return bytes_.u32_at(offsets::kIpv4Src); }
  [[nodiscard]] u32 ipv4_dst() const { return bytes_.u32_at(offsets::kIpv4Dst); }
  void set_ipv4_src(u32 v) { bytes_.set_u32(offsets::kIpv4Src, v); }
  void set_ipv4_dst(u32 v) { bytes_.set_u32(offsets::kIpv4Dst, v); }
  [[nodiscard]] u8 ip_proto() const { return bytes_.u8_at(offsets::kIpv4Proto); }

  [[nodiscard]] u16 l4_src_port() const {
    return bytes_.u16_at(offsets::kL4SrcPort);
  }
  [[nodiscard]] u16 l4_dst_port() const {
    return bytes_.u16_at(offsets::kL4DstPort);
  }
  void set_l4_dst_port(u16 v) { bytes_.set_u16(offsets::kL4DstPort, v); }

  [[nodiscard]] bool is_reconfig() const {
    return has_vlan() && ip_proto() == kIpProtoUdp &&
           l4_dst_port() == kReconfigUdpPort;
  }

  // --- Simulation metadata -----------------------------------------------
  Cycle arrival_cycle = 0;
  u16 ingress_port = 0;
  Disposition disposition = Disposition::kForward;
  u16 egress_port = 0;
  std::vector<u16> multicast_ports;
  /// Cycle at which the deparser emitted the packet (set by the pipeline).
  Cycle departure_cycle = 0;
  /// Packet-buffer tag assigned by the packet filter (0-3, section 3.2).
  u8 buffer_tag = 0;

  bool operator==(const Packet& other) const {
    return bytes_ == other.bytes_;
  }

 private:
  ByteBuffer bytes_;
};

/// Fluent builder for VLAN-tagged IPv4/UDP test and workload packets.
class PacketBuilder {
 public:
  PacketBuilder& vid(ModuleId id) {
    vid_ = id;
    return *this;
  }
  PacketBuilder& eth(u64 src, u64 dst) {
    eth_src_ = src;
    eth_dst_ = dst;
    return *this;
  }
  PacketBuilder& ipv4(u32 src, u32 dst) {
    ip_src_ = src;
    ip_dst_ = dst;
    return *this;
  }
  PacketBuilder& proto(u8 p) {
    ip_proto_ = p;
    return *this;
  }
  PacketBuilder& udp(u16 src_port, u16 dst_port) {
    ip_proto_ = kIpProtoUdp;
    sport_ = src_port;
    dport_ = dst_port;
    return *this;
  }
  PacketBuilder& tcp(u16 src_port, u16 dst_port) {
    ip_proto_ = kIpProtoTcp;
    sport_ = src_port;
    dport_ = dst_port;
    return *this;
  }
  PacketBuilder& payload(std::vector<u8> bytes) {
    payload_ = std::move(bytes);
    return *this;
  }
  /// Pads (with zeros) or leaves the packet so its total size is `bytes`.
  PacketBuilder& frame_size(std::size_t bytes) {
    frame_size_ = bytes;
    return *this;
  }

  [[nodiscard]] Packet Build() const;

 private:
  ModuleId vid_{2};
  u64 eth_src_ = 0x0200'0000'0001;
  u64 eth_dst_ = 0x0200'0000'0002;
  u32 ip_src_ = 0x0A000001;  // 10.0.0.1
  u32 ip_dst_ = 0x0A000002;  // 10.0.0.2
  u8 ip_proto_ = kIpProtoUdp;
  u16 sport_ = 10000;
  u16 dport_ = 20000;
  std::vector<u8> payload_;
  std::optional<std::size_t> frame_size_;
};

}  // namespace menshen
