#include "packet/packet.hpp"

#include <algorithm>

namespace menshen {

Packet PacketBuilder::Build() const {
  const std::size_t payload_off = offsets::kPayload;
  std::size_t total = payload_off + payload_.size();
  if (frame_size_) total = std::max(total, *frame_size_);

  ByteBuffer buf(total);
  buf.set_u48(offsets::kEthDst, eth_dst_);
  buf.set_u48(offsets::kEthSrc, eth_src_);
  buf.set_u16(offsets::kVlanTpid, kEtherTypeVlan);
  buf.set_u16(offsets::kVlanTci, vid_.value());  // PCP=0, DEI=0
  buf.set_u16(offsets::kEtherType, kEtherTypeIpv4);

  // IPv4 header: version 4, IHL 5, total length, TTL 64, protocol.
  buf.set_u8(offsets::kIpv4, 0x45);
  buf.set_u16(offsets::kIpv4 + 2, static_cast<u16>(total - offsets::kIpv4));
  buf.set_u8(offsets::kIpv4Ttl, 64);
  buf.set_u8(offsets::kIpv4Proto, ip_proto_);
  buf.set_u32(offsets::kIpv4Src, ip_src_);
  buf.set_u32(offsets::kIpv4Dst, ip_dst_);

  buf.set_u16(offsets::kL4SrcPort, sport_);
  buf.set_u16(offsets::kL4DstPort, dport_);
  if (ip_proto_ == kIpProtoUdp)
    buf.set_u16(offsets::kUdpLen, static_cast<u16>(total - offsets::kL4));

  if (!payload_.empty()) buf.write_bytes(payload_off, payload_);
  return Packet(std::move(buf));
}

}  // namespace menshen
