// Standard header layouts used by Menshen.
//
// Every packet handled by the pipeline carries Ethernet + 802.1Q VLAN +
// IPv4 + UDP (or TCP) headers; the VLAN ID is the module identifier
// (section 3.1).  With the VLAN tag, the common header prefix is
// 14 + 4 + 20 + 8 = 46 bytes — exactly the "Common Hdr 46B" of the
// reconfiguration packet format in Figure 7.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace menshen {

// EtherTypes.
inline constexpr u16 kEtherTypeVlan = 0x8100;
inline constexpr u16 kEtherTypeIpv4 = 0x0800;

// IP protocol numbers.
inline constexpr u8 kIpProtoUdp = 17;
inline constexpr u8 kIpProtoTcp = 6;

// UDP destination port reserved for reconfiguration packets (section 4.1).
inline constexpr u16 kReconfigUdpPort = 0xF1F2;

// Byte offsets within a VLAN-tagged IPv4/UDP packet.
namespace offsets {
inline constexpr std::size_t kEthDst = 0;        // 6 bytes
inline constexpr std::size_t kEthSrc = 6;        // 6 bytes
inline constexpr std::size_t kVlanTpid = 12;     // 2 bytes, 0x8100
inline constexpr std::size_t kVlanTci = 14;      // 2 bytes, PCP:3 DEI:1 VID:12
inline constexpr std::size_t kEtherType = 16;    // 2 bytes (inner)
inline constexpr std::size_t kIpv4 = 18;         // 20 bytes
inline constexpr std::size_t kIpv4Ttl = kIpv4 + 8;
inline constexpr std::size_t kIpv4Proto = kIpv4 + 9;
inline constexpr std::size_t kIpv4Src = kIpv4 + 12;  // 4 bytes
inline constexpr std::size_t kIpv4Dst = kIpv4 + 16;  // 4 bytes
inline constexpr std::size_t kL4 = 38;           // UDP/TCP start
inline constexpr std::size_t kL4SrcPort = kL4;       // 2 bytes
inline constexpr std::size_t kL4DstPort = kL4 + 2;   // 2 bytes
inline constexpr std::size_t kUdpLen = kL4 + 4;      // 2 bytes
inline constexpr std::size_t kPayload = 46;      // end of common headers
}  // namespace offsets

// Ethernet framing overhead used for layer-1 throughput accounting:
// 7B preamble + 1B SFD + 12B inter-frame gap + 4B FCS.
inline constexpr std::size_t kLayer1OverheadBytes = 20;
inline constexpr std::size_t kFcsBytes = 4;

// Smallest legal Ethernet frame (without L1 overhead, without FCS counted
// separately here); the paper sweeps packet sizes from 64B.
inline constexpr std::size_t kMinFrameBytes = 64;
inline constexpr std::size_t kMtuFrameBytes = 1500;

// The Menshen parser operates on the first 128 bytes of the packet
// (section 4.1): per-module parsing may only reference this window.
inline constexpr std::size_t kParserWindowBytes = 128;

}  // namespace menshen
