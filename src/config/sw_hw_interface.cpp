#include "config/sw_hw_interface.hpp"

#include <stdexcept>

namespace menshen {

double MenshenConfigTimeMs(std::size_t entries) {
  return cost::kMenshenConfigBaseMs +
         static_cast<double>(entries) * cost::kMenshenConfigPerEntryMs;
}

double TofinoRuntimeTimeMs(std::size_t entries) {
  return cost::kTofinoRuntimeBaseMs +
         static_cast<double>(entries) * cost::kTofinoRuntimePerEntryMs;
}

ConfigReport SwHwInterface::LoadModule(ModuleId module,
                                       const std::vector<ConfigWrite>& writes,
                                       int max_attempts) {
  ConfigReport report;
  report.writes = writes.size();

  PacketFilter& filter = pipeline_->filter();
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    report.attempts = attempt;

    // Step 1-2: snapshot the counter and quiesce the module.
    const u32 counter_before = filter.reconfig_packet_counter();
    filter.MarkUnderReconfig(module, true);

    // Step 3: stream every write down the daisy chain.
    for (const ConfigWrite& w : writes) {
      const Packet pkt = EncodeReconfigPacket(w, module);
      chain_->Inject(pkt);
      ++report.packets_sent;
    }

    // Step 4: the counter tells us how many packets actually arrived.
    const u32 delivered = filter.reconfig_packet_counter() - counter_before;
    if (delivered == writes.size()) {
      // Step 5: reopen the module's data path.
      filter.MarkUnderReconfig(module, false);
      report.modeled_ms = MenshenConfigTimeMs(report.packets_sent);
      return report;
    }
    // Some packets were dropped before the pipeline: restart the whole
    // transfer with the module still quiesced (section 4.1).
  }
  throw std::runtime_error(
      "reconfiguration failed: daisy chain kept dropping packets");
}

ConfigReport SwHwInterface::InsertEntry(ModuleId module,
                                        const ConfigWrite& write) {
  ConfigReport report;
  report.writes = 1;
  const Packet pkt = EncodeReconfigPacket(write, module);
  if (!chain_->Inject(pkt)) {
    // Single-entry path also detects loss via the counter; retry once
    // through the full protocol for simplicity.
    return LoadModule(module, {write});
  }
  report.packets_sent = 1;
  report.modeled_ms = MenshenConfigTimeMs(1);
  return report;
}

}  // namespace menshen
