// Daisy-chain reconfiguration path (section 3.1, "Secure reconfiguration").
//
// Commercial programmable switches configure pipeline stages through a
// separate daisy chain reachable only over PCIe, never from Ethernet data
// packets.  Menshen does the same: reconfiguration packets enter the chain
// (via PCIe on NetFPGA; via PCIe plus the packet filter's UDP-port check
// on Corundum), travel past every stage, and each stage absorbs the writes
// addressed to it.
//
// The model supports fault injection — dropping the next N packets before
// they reach the pipeline — so the control plane's detect-and-retry
// protocol (poll the reconfiguration packet counter, restart on mismatch)
// can be exercised deterministically in tests.
#pragma once

#include <vector>

#include "config/cost_model.hpp"
#include "config/reconfig_packet.hpp"
#include "pipeline/pipeline.hpp"

namespace menshen {

class DaisyChain {
 public:
  explicit DaisyChain(Pipeline& pipeline) : pipeline_(&pipeline) {}

  /// Injects one reconfiguration packet into the chain.  Returns true if
  /// it was applied; false if it was dropped (fault injection).
  bool Inject(const Packet& pkt);

  /// Drops the next `n` injected packets (test fault injection).
  void DropNext(std::size_t n) { drop_next_ += n; }

  [[nodiscard]] u64 packets_applied() const { return applied_; }
  [[nodiscard]] u64 packets_dropped() const { return dropped_; }

  /// Modeled hardware cycles consumed by all traffic so far.
  [[nodiscard]] Cycle cycles() const { return cycles_; }

 private:
  Pipeline* pipeline_;
  std::size_t drop_next_ = 0;
  u64 applied_ = 0;
  u64 dropped_ = 0;
  Cycle cycles_ = 0;
};

}  // namespace menshen
