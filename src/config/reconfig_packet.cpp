#include "config/reconfig_packet.hpp"

#include <stdexcept>

#include "pipeline/entries.hpp"

namespace menshen {

Packet EncodeReconfigPacket(const ConfigWrite& write, ModuleId vid) {
  ByteBuffer payload;
  payload.append_u16(static_cast<u16>(write.resource_id() << 4));  // +4 resv
  payload.append_u8(write.index);
  for (int i = 0; i < 15; ++i) payload.append_u8(0);  // padding
  payload.append(write.payload.bytes());

  std::vector<u8> bytes(payload.bytes().begin(), payload.bytes().end());
  return PacketBuilder{}
      .vid(vid)
      .udp(0xF1F0, kReconfigUdpPort)
      .payload(std::move(bytes))
      .frame_size(kMinFrameBytes)
      .Build();
}

ConfigWrite DecodeReconfigPacket(const Packet& pkt) {
  if (!pkt.is_reconfig())
    throw std::invalid_argument(
        "not a reconfiguration packet (wrong UDP destination port)");
  const std::size_t base = offsets::kPayload;
  if (pkt.size() < base + kReconfigHeaderBytes)
    throw std::invalid_argument("reconfiguration packet truncated");

  const u16 id_field = pkt.bytes().u16_at(base);
  const u16 resource_id = static_cast<u16>(id_field >> 4);
  const u8 index = pkt.bytes().u8_at(base + 2);

  // Recover the resource kind first so we know the payload length; a
  // malformed kind throws inside WithResourceId.
  ConfigWrite probe =
      ConfigWrite::WithResourceId(resource_id, index, ByteBuffer{});
  const std::size_t want = EntryBytesFor(probe.kind);
  const std::size_t payload_off = base + kReconfigHeaderBytes;
  if (pkt.size() < payload_off + want)
    throw std::invalid_argument("reconfiguration payload truncated");
  probe.payload = ByteBuffer(pkt.bytes().read_bytes(payload_off, want));
  return probe;
}

}  // namespace menshen
