#include "config/axil.hpp"

#include "pipeline/entries.hpp"

namespace menshen {

std::size_t AxiLitePath::TransactionsFor(ResourceKind kind) {
  std::size_t bits = 0;
  switch (kind) {
    case ResourceKind::kParserTable:
    case ResourceKind::kDeparserTable:
      bits = params::kParserEntryBits;  // 160
      break;
    case ResourceKind::kKeyExtractor:
      bits = params::kKeyExtractorEntryBits;  // 38
      break;
    case ResourceKind::kKeyMask:
      bits = params::kKeyMaskEntryBits;  // 193
      break;
    case ResourceKind::kCamEntry:
      bits = params::kCamEntryBits;  // 205 -> 7 writes
      break;
    case ResourceKind::kVliwAction:
      bits = params::kVliwEntryBits;  // 625 -> 20 writes
      break;
    case ResourceKind::kSegmentTable:
      bits = params::kSegmentEntryBits;  // 16
      break;
    case ResourceKind::kTcamEntry:
      // key + mask + module ID: 2*193 + 12 bits -> 13 writes.
      bits = 2 * params::kKeyBits + params::kModuleIdBits;
      break;
  }
  return cost::AxiLiteWritesFor(bits);
}

std::size_t AxiLitePath::Apply(const ConfigWrite& write) {
  const std::size_t n = TransactionsFor(write.kind);
  transactions_ += n;
  // Functionally the write lands identically; the cost difference is the
  // point of the comparison.
  pipeline_->ApplyWrite(write);
  return n;
}

}  // namespace menshen
