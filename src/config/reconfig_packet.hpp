// Reconfiguration packet codec (Figure 7).
//
// A reconfiguration packet is an ordinary UDP packet (Ethernet + VLAN +
// IPv4 + UDP = 46-byte common header) whose destination port is the
// reserved 0xF1F2.  Its payload carries:
//   - 12-bit resource ID + 4 reserved bits   (2 bytes)
//   - 1-byte entry index
//   - 15 bytes of padding
//   - the entry payload (length depends on the resource kind)
// The codec round-trips ConfigWrite <-> Packet and is shared by the
// software-to-hardware interface (encoder) and the daisy chain (decoder),
// so both ends agree by construction.
#pragma once

#include "packet/packet.hpp"
#include "pipeline/config_write.hpp"

namespace menshen {

/// Offset of the resource ID within the UDP payload.
inline constexpr std::size_t kReconfigHeaderBytes = 2 + 1 + 15;  // 18

/// Encodes a configuration write as a reconfiguration packet addressed to
/// the daisy chain.  `vid` is the VLAN ID the packet carries (the module
/// being reconfigured, used by filters/monitoring; the write itself is
/// index-addressed).
[[nodiscard]] Packet EncodeReconfigPacket(const ConfigWrite& write,
                                          ModuleId vid);

/// Decodes a reconfiguration packet back into a configuration write.
/// Throws std::invalid_argument on malformed packets (wrong UDP port,
/// truncated payload, unknown resource ID).
[[nodiscard]] ConfigWrite DecodeReconfigPacket(const Packet& pkt);

}  // namespace menshen
