// AXI-Lite configuration path (Appendix A).
//
// The alternative the paper considered (and rejected) for configuring the
// pipeline: every table entry is written as a sequence of 32-bit AXI-Lite
// transactions over PCIe.  A 625-bit VLIW action entry takes 20 writes and
// a 205-bit CAM entry takes 7, which is why the daisy chain wins for wide
// entries (Figure 12).  We implement it both as a functional path (it
// really applies the writes) and as a cost model.
#pragma once

#include "config/cost_model.hpp"
#include "pipeline/config_write.hpp"
#include "pipeline/pipeline.hpp"

namespace menshen {

class AxiLitePath {
 public:
  explicit AxiLitePath(Pipeline& pipeline) : pipeline_(&pipeline) {}

  /// Applies one configuration write by splitting the payload (plus the
  /// resource-ID/index addressing word) into 32-bit register writes.
  /// Returns the number of AXI-Lite transactions used.
  std::size_t Apply(const ConfigWrite& write);

  [[nodiscard]] u64 total_transactions() const { return transactions_; }

  /// Modeled wall time of all traffic so far, in microseconds.
  [[nodiscard]] double elapsed_us() const {
    return static_cast<double>(transactions_) * cost::kAxiLiteWriteUs;
  }

  /// Transactions a write of this resource kind costs (data words only,
  /// as in the paper's ceil(625/32)=20 and ceil(205/32)=7 arithmetic).
  [[nodiscard]] static std::size_t TransactionsFor(ResourceKind kind);

 private:
  Pipeline* pipeline_;
  u64 transactions_ = 0;
};

}  // namespace menshen
