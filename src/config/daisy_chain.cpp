#include "config/daisy_chain.hpp"

namespace menshen {

bool DaisyChain::Inject(const Packet& pkt) {
  cycles_ += cost::kDaisyChainTraversalCycles;
  if (drop_next_ > 0) {
    // The packet is lost before reaching the pipeline, so the pipeline's
    // reconfiguration packet counter does NOT increment — exactly the
    // signal the software uses to detect the loss (section 4.1).
    --drop_next_;
    ++dropped_;
    return false;
  }
  const ConfigWrite write = DecodeReconfigPacket(pkt);
  pipeline_->ApplyWrite(write);
  ++applied_;
  return true;
}

}  // namespace menshen
