// Software-to-hardware interface (sections 3.4 and 4.1).
//
// The Menshen software loads or updates a module by driving the secure
// reconfiguration protocol against the packet filter's register file:
//
//   1. read the reconfiguration packet counter;
//   2. set the filter bitmap bit for the module being updated, so the
//      module's in-flight data packets are dropped rather than processed
//      by a half-written configuration;
//   3. send every configuration write as a reconfiguration packet down
//      the daisy chain;
//   4. poll the counter: if it advanced by fewer packets than were sent,
//      some were dropped — restart the whole transfer;
//   5. clear the bitmap bit.
//
// The interface also offers P4Runtime-style operations: inserting
// match-action entries at run time and reading hardware statistics.
#pragma once

#include <vector>

#include "config/daisy_chain.hpp"
#include "pipeline/pipeline.hpp"

namespace menshen {

/// Outcome of one configuration session.
struct ConfigReport {
  std::size_t writes = 0;        // distinct configuration writes
  std::size_t packets_sent = 0;  // including retransmitted transfers
  std::size_t attempts = 1;      // 1 = no retry needed
  /// Modeled end-to-end software time (Figure 9 cost model).
  double modeled_ms = 0.0;
};

class SwHwInterface {
 public:
  SwHwInterface(Pipeline& pipeline, DaisyChain& chain)
      : pipeline_(&pipeline), chain_(&chain) {}

  /// Loads a full module configuration with the secure-reconfiguration
  /// protocol above.  Retries until every packet is observed by the
  /// counter (bounded by `max_attempts`; throws std::runtime_error if the
  /// transfer cannot complete).
  ConfigReport LoadModule(ModuleId module,
                          const std::vector<ConfigWrite>& writes,
                          int max_attempts = 8);

  /// P4Runtime-style single-entry update (no bitmap quiescing: updating
  /// one match-action entry is atomic at packet granularity).
  ConfigReport InsertEntry(ModuleId module, const ConfigWrite& write);

  /// Reads a hardware statistic (per-module forwarded packet count).
  [[nodiscard]] u64 ReadForwardedCount(ModuleId module) const {
    return pipeline_->forwarded(module);
  }

 private:
  Pipeline* pipeline_;
  DaisyChain* chain_;
};

/// Figure 9 model: end-to-end software configuration time for `entries`
/// match-action entries through the Menshen interface.
[[nodiscard]] double MenshenConfigTimeMs(std::size_t entries);

/// Figure 9 comparison: the Tofino run-time API cost model.
[[nodiscard]] double TofinoRuntimeTimeMs(std::size_t entries);

}  // namespace menshen
