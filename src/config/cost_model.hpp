// Calibrated cost model for the configuration paths (Figures 9 and 12).
//
// The paper measures three distinct costs:
//   1. Figure 12 compares the *transport* cost of writing table entries:
//      a daisy-chain reconfiguration packet (one DMA'd packet per entry)
//      versus AXI-Lite (one PCIe transaction per 32-bit word, so a 625-bit
//      VLIW entry takes ceil(625/32) = 20 writes and a 205-bit CAM entry
//      takes 7).
//   2. Figure 9 measures the *end-to-end software* configuration time of
//      the Menshen software-to-hardware interface (a Python tool building
//      and sending packets), which is dominated by per-entry software
//      overhead, and compares it with the Tofino SDE 9.0.0 run-time API.
//
// Constants below are calibrated to the magnitudes in those figures; what
// the reproduction preserves is (a) the linear scaling in the number of
// entries, (b) the ~8x daisy-chain advantage over AXI-L for wide entries,
// and (c) Menshen's software path being comparable to Tofino's runtime
// API.  Absolute values are documented estimates, not measurements.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace menshen::cost {

// --- Figure 12: transport-level costs ---------------------------------------

/// One AXI-Lite 32-bit write over PCIe (driver + TLP round trip).
inline constexpr double kAxiLiteWriteUs = 4.0;

/// One reconfiguration packet DMA'd to the daisy chain (driver + DMA ring).
inline constexpr double kDaisyChainPacketUs = 10.0;

/// Cycles for a reconfiguration packet to traverse the daisy chain and be
/// absorbed by its target table (hardware-side; negligible next to the
/// software side but modelled for the cycle-accurate counter).
inline constexpr Cycle kDaisyChainTraversalCycles = 64;

/// Number of AXI-Lite writes needed for an entry of `bits` width.
[[nodiscard]] constexpr std::size_t AxiLiteWritesFor(std::size_t bits) {
  return (bits + 31) / 32;
}

// --- Figure 9: end-to-end software configuration ----------------------------

/// Fixed per-invocation overhead of the Menshen software-to-hardware
/// interface (loading the program configuration, opening the device).
inline constexpr double kMenshenConfigBaseMs = 20.0;

/// Per-entry software cost (packet construction + send + bookkeeping in
/// the Python interface).  1024 entries => ~0.68 s, matching Figure 9.
inline constexpr double kMenshenConfigPerEntryMs = 0.65;

/// Tofino SDE 9.0.0 run-time API model: higher session setup cost,
/// slightly cheaper per entry — "similar" overall (section 5.1).
inline constexpr double kTofinoRuntimeBaseMs = 50.0;
inline constexpr double kTofinoRuntimePerEntryMs = 0.55;

}  // namespace menshen::cost
