// The eight evaluated packet-processing modules (paper Table 3):
// CALC, Firewall, Load Balancing, QoS, Source Routing — from the P4
// tutorials — plus simplified NetCache (in-network key-value cache) and
// NetChain (in-network sequencer), and Multicast.
//
// Each app exposes:
//   * <App>Dsl()   — the module's DSL source;
//   * <App>Spec()  — the parsed ModuleSpec (throws on internal error);
//   * Install<App>Entries(...) — the control-plane entries that give the
//     module its concrete behaviour (ports, rules, cached keys, ...).
//
// Field offsets reference the common VLAN-tagged IPv4/UDP layout
// (packet/headers.hpp): payload starts at byte 46.
#pragma once

#include <vector>

#include "compiler/compiler.hpp"

namespace menshen::apps {

/// Parses an app's embedded DSL; throws std::logic_error on parse errors
/// (they would be bugs in this library, not user input).
[[nodiscard]] ModuleSpec ParseAppDsl(std::string_view source);

// --- CALC -------------------------------------------------------------------
// Returns a value computed from a parsed opcode and two operands in the
// payload: op (2B @46), a (4B @48), b (4B @52), result (4B @56).
inline constexpr u16 kCalcOpAdd = 1;
inline constexpr u16 kCalcOpSub = 2;
inline constexpr u16 kCalcOpEcho = 3;
[[nodiscard]] std::string_view CalcDsl();
[[nodiscard]] const ModuleSpec& CalcSpec();
/// Installs add/sub/echo entries; results return through `reply_port`.
bool InstallCalcEntries(CompiledModule& m, u16 reply_port);

// --- Firewall ---------------------------------------------------------------
// Stateless firewall: stage 1 filters by source IP, stage 2 by L4
// destination port; anything not explicitly blocked is forwarded.
struct FirewallRules {
  std::vector<u32> blocked_src_ips;
  std::vector<u16> blocked_dst_ports;
  std::vector<u32> allowed_src_ips;   // explicitly allowed sources
  std::vector<u16> allowed_dst_ports;
  u16 forward_port = 1;
};
[[nodiscard]] std::string_view FirewallDsl();
[[nodiscard]] const ModuleSpec& FirewallSpec();
bool InstallFirewallEntries(CompiledModule& m, const FirewallRules& rules);

// --- Load Balancing -----------------------------------------------------------
// Steers traffic by the 4-tuple (src IP, dst IP, src port, dst port).
struct LbFlow {
  u32 src_ip;
  u32 dst_ip;
  u16 src_port;
  u16 dst_port;
  u16 out_port;
};
[[nodiscard]] std::string_view LoadBalanceDsl();
[[nodiscard]] const ModuleSpec& LoadBalanceSpec();
bool InstallLoadBalanceEntries(CompiledModule& m,
                               const std::vector<LbFlow>& flows);

// --- QoS ----------------------------------------------------------------------
// Rewrites the IPv4 version/TOS bytes according to the traffic class
// identified by the L4 destination port (the rewritten value carries the
// 0x45 version/IHL nibble pair in its high byte).
struct QosClass {
  u16 dst_port;
  u8 tos;       // DSCP/ECN byte to stamp
  u16 out_port;
};
[[nodiscard]] std::string_view QosDsl();
[[nodiscard]] const ModuleSpec& QosSpec();
bool InstallQosEntries(CompiledModule& m, const std::vector<QosClass>& classes);

// --- Source Routing -------------------------------------------------------------
// Routes on a source-routing tag the sender places at payload byte 0.
struct SourceRoute {
  u16 tag;
  u16 out_port;
};
[[nodiscard]] std::string_view SourceRoutingDsl();
[[nodiscard]] const ModuleSpec& SourceRoutingSpec();
bool InstallSourceRoutingEntries(CompiledModule& m,
                                 const std::vector<SourceRoute>& routes);

// --- NetCache (simplified) -------------------------------------------------------
// In-network key-value cache: GET on a cached key is answered from
// per-stage stateful memory (and counted); GET on an uncached key and all
// PUTs are forwarded to the server.  Our version, like the paper's, omits
// hot-key tagging.
inline constexpr u16 kNetCacheOpGet = 1;
inline constexpr u16 kNetCacheOpPut = 2;
struct CachedKey {
  u32 key;
  u16 slot;  // index in the value array
};
[[nodiscard]] std::string_view NetCacheDsl();
[[nodiscard]] const ModuleSpec& NetCacheSpec();
bool InstallNetCacheEntries(CompiledModule& m,
                            const std::vector<CachedKey>& cached,
                            u16 client_port, u16 server_port);

// --- NetChain (simplified) --------------------------------------------------------
// In-network sequencer: assigns a monotonically increasing sequence
// number to every request packet.
inline constexpr u16 kNetChainOpSeq = 7;
[[nodiscard]] std::string_view NetChainDsl();
[[nodiscard]] const ModuleSpec& NetChainSpec();
bool InstallNetChainEntries(CompiledModule& m, u16 out_port);

// --- Multicast -----------------------------------------------------------------
// Replicates packets to a port set chosen by destination IP.
struct McastRule {
  u32 dst_ip;
  u16 group;
};
[[nodiscard]] std::string_view MulticastDsl();
[[nodiscard]] const ModuleSpec& MulticastSpec();
bool InstallMulticastEntries(CompiledModule& m,
                             const std::vector<McastRule>& rules);

/// All eight specs in Table 3 order — used by the Figure 8/9 benches.
struct NamedSpec {
  const char* name;
  const ModuleSpec* spec;
};
[[nodiscard]] std::vector<NamedSpec> AllAppSpecs();

}  // namespace menshen::apps
