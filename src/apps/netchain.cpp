#include "apps/apps.hpp"

namespace menshen::apps {

std::string_view NetChainDsl() {
  static constexpr std::string_view kSource = R"(
module netchain {
  # Simplified NetChain: an in-network sequencer.  Every request packet
  # receives the next value of a monotonically increasing sequence number
  # maintained in switch state — the core of NetChain's sub-RTT chain
  # replication coordination.
  field ch_op  : 2 @ 46;
  field ch_seq : 4 @ 48;

  state ch_counter[2];

  action ch_next(p) { ch_seq = incr(ch_counter[0]); port(p); }
  action ch_reset(p) { ch_seq = 0; port(p); }

  table ch_tbl {
    key = { ch_op };
    actions = { ch_next, ch_reset };
    size = 4;
  }
}
)";
  return kSource;
}

const ModuleSpec& NetChainSpec() {
  static const ModuleSpec spec = ParseAppDsl(NetChainDsl());
  return spec;
}

bool InstallNetChainEntries(CompiledModule& m, u16 out_port) {
  m.AddEntry("ch_tbl", {{"ch_op", kNetChainOpSeq}}, std::nullopt, "ch_next",
             {out_port});
  return m.ok();
}

}  // namespace menshen::apps
