#include <stdexcept>

#include "apps/apps.hpp"

namespace menshen::apps {

ModuleSpec ParseAppDsl(std::string_view source) {
  Diagnostics diags;
  ModuleSpec spec = ParseModuleDsl(source, diags);
  if (!diags.ok())
    throw std::logic_error("embedded app DSL failed to parse:\n" +
                           diags.ToString());
  return spec;
}

std::vector<NamedSpec> AllAppSpecs() {
  return {
      {"CALC", &CalcSpec()},
      {"Firewall", &FirewallSpec()},
      {"LoadBalancing", &LoadBalanceSpec()},
      {"QoS", &QosSpec()},
      {"SourceRouting", &SourceRoutingSpec()},
      {"NetCache", &NetCacheSpec()},
      {"NetChain", &NetChainSpec()},
      {"Multicast", &MulticastSpec()},
  };
}

}  // namespace menshen::apps
