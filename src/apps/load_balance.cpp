#include "apps/apps.hpp"

namespace menshen::apps {

std::string_view LoadBalanceDsl() {
  static constexpr std::string_view kSource = R"(
module load_balance {
  # Flow-level load balancer (P4 tutorial): steers each 4-tuple to a
  # backend port.  Exercises the widest key the extractor supports for
  # this layout: two 4-byte and two 2-byte containers in one lookup.
  field src_ip   : 4 @ 30;
  field dst_ip   : 4 @ 34;
  field src_port : 2 @ 38;
  field dst_port : 2 @ 40;

  action lb_steer(p) { port(p); }
  action lb_drop { drop(); }

  table lb_tbl {
    key = { src_ip, dst_ip, src_port, dst_port };
    actions = { lb_steer, lb_drop };
    size = 4;
  }
}
)";
  return kSource;
}

const ModuleSpec& LoadBalanceSpec() {
  static const ModuleSpec spec = ParseAppDsl(LoadBalanceDsl());
  return spec;
}

bool InstallLoadBalanceEntries(CompiledModule& m,
                               const std::vector<LbFlow>& flows) {
  for (const LbFlow& f : flows) {
    m.AddEntry("lb_tbl",
               {{"src_ip", f.src_ip},
                {"dst_ip", f.dst_ip},
                {"src_port", f.src_port},
                {"dst_port", f.dst_port}},
               std::nullopt, "lb_steer", {f.out_port});
  }
  return m.ok();
}

}  // namespace menshen::apps
