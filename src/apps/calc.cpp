#include "apps/apps.hpp"

namespace menshen::apps {

std::string_view CalcDsl() {
  static constexpr std::string_view kSource = R"(
module calc {
  # A tiny request/response calculator (P4 tutorial "calc"): the client
  # sends an opcode and two operands in the payload; the switch computes
  # the result in place and reflects the packet.
  field op  : 2 @ 46;
  field a   : 4 @ 48;
  field b   : 4 @ 52;
  field res : 4 @ 56;

  action do_add(p) { res = a + b; port(p); }
  action do_sub(p) { res = a - b; port(p); }
  action do_echo(p) { res = a; port(p); }

  table calc_tbl {
    key = { op };
    actions = { do_add, do_sub, do_echo };
    size = 4;
  }
}
)";
  return kSource;
}

const ModuleSpec& CalcSpec() {
  static const ModuleSpec spec = ParseAppDsl(CalcDsl());
  return spec;
}

bool InstallCalcEntries(CompiledModule& m, u16 reply_port) {
  m.AddEntry("calc_tbl", {{"op", kCalcOpAdd}}, std::nullopt, "do_add",
             {reply_port});
  m.AddEntry("calc_tbl", {{"op", kCalcOpSub}}, std::nullopt, "do_sub",
             {reply_port});
  m.AddEntry("calc_tbl", {{"op", kCalcOpEcho}}, std::nullopt, "do_echo",
             {reply_port});
  return m.ok();
}

}  // namespace menshen::apps
