#include "apps/apps.hpp"

namespace menshen::apps {

std::string_view NetCacheDsl() {
  static constexpr std::string_view kSource = R"(
module netcache {
  # Simplified NetCache: an in-network key-value cache.  GETs on cached
  # keys are answered from switch state and reflected to the client; GETs
  # on uncached keys and all PUTs go to the storage server.  Hot-key
  # tagging from the paper is omitted (as in the paper's evaluation).
  field nc_op    : 2 @ 46;
  field nc_key   : 4 @ 48;
  field nc_value : 4 @ 52;
  scratch nc_hits : 4;

  state nc_vals[16];
  state nc_stats[4];

  action nc_hit(slot, p) {
    nc_value = nc_vals[slot];
    nc_hits  = incr(nc_stats[0]);
    port(p);
  }
  action nc_put(slot, p) {
    nc_vals[slot] = nc_value;
    port(p);
  }
  action nc_to_server(p) { port(p); }

  table nc_tbl {
    key = { nc_op, nc_key };
    actions = { nc_hit, nc_put, nc_to_server };
    size = 8;
  }
}
)";
  return kSource;
}

const ModuleSpec& NetCacheSpec() {
  static const ModuleSpec spec = ParseAppDsl(NetCacheDsl());
  return spec;
}

bool InstallNetCacheEntries(CompiledModule& m,
                            const std::vector<CachedKey>& cached,
                            u16 client_port, u16 server_port) {
  for (const CachedKey& c : cached) {
    // GET on a cached key: answer from the value array.
    m.AddEntry("nc_tbl", {{"nc_op", kNetCacheOpGet}, {"nc_key", c.key}},
               std::nullopt, "nc_hit", {c.slot, client_port});
    // PUT on a cached key: write through to the cache, then the server.
    m.AddEntry("nc_tbl", {{"nc_op", kNetCacheOpPut}, {"nc_key", c.key}},
               std::nullopt, "nc_put", {c.slot, server_port});
  }
  return m.ok();
}

}  // namespace menshen::apps
