#include "apps/apps.hpp"

namespace menshen::apps {

std::string_view MulticastDsl() {
  static constexpr std::string_view kSource = R"(
module multicast {
  # Multicast (P4 tutorial): selects a replication group by destination
  # IP; the traffic manager fans the packet out to the group's ports.
  field dst_ip : 4 @ 34;

  action mc_group(g) { mcast(g); }
  action mc_drop { drop(); }

  table mc_tbl {
    key = { dst_ip };
    actions = { mc_group, mc_drop };
    size = 4;
  }
}
)";
  return kSource;
}

const ModuleSpec& MulticastSpec() {
  static const ModuleSpec spec = ParseAppDsl(MulticastDsl());
  return spec;
}

bool InstallMulticastEntries(CompiledModule& m,
                             const std::vector<McastRule>& rules) {
  for (const McastRule& r : rules)
    m.AddEntry("mc_tbl", {{"dst_ip", r.dst_ip}}, std::nullopt, "mc_group",
               {r.group});
  return m.ok();
}

}  // namespace menshen::apps
