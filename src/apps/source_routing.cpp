#include "apps/apps.hpp"

namespace menshen::apps {

std::string_view SourceRoutingDsl() {
  static constexpr std::string_view kSource = R"(
module source_routing {
  # Source routing (P4 tutorial): the sender places a route tag at the
  # start of the payload; the switch forwards on the tag and decrements
  # the remaining-hops word so downstream devices see progress.
  field sr_tag  : 2 @ 46;
  field sr_hops : 2 @ 48;

  action sr_forward(p) { sr_hops = sr_hops - 1; port(p); }
  action sr_end { drop(); }

  table sr_tbl {
    key = { sr_tag };
    actions = { sr_forward, sr_end };
    size = 4;
  }
}
)";
  return kSource;
}

const ModuleSpec& SourceRoutingSpec() {
  static const ModuleSpec spec = ParseAppDsl(SourceRoutingDsl());
  return spec;
}

bool InstallSourceRoutingEntries(CompiledModule& m,
                                 const std::vector<SourceRoute>& routes) {
  for (const SourceRoute& r : routes)
    m.AddEntry("sr_tbl", {{"sr_tag", r.tag}}, std::nullopt, "sr_forward",
               {r.out_port});
  return m.ok();
}

}  // namespace menshen::apps
