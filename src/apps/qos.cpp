#include "apps/apps.hpp"

namespace menshen::apps {

std::string_view QosDsl() {
  static constexpr std::string_view kSource = R"(
module qos {
  # QoS marker (P4 tutorial): classifies traffic by L4 destination port
  # and stamps the IPv4 TOS byte.  The 2-byte container at offset 18
  # covers version/IHL + TOS, so the rewritten value carries 0x45 in its
  # high byte.
  field ver_tos  : 2 @ 18;
  field dst_port : 2 @ 40;

  action set_class(vt, p) { ver_tos = vt; port(p); }
  action best_effort(p) { port(p); }

  table qos_tbl {
    key = { dst_port };
    actions = { set_class, best_effort };
    size = 4;
  }
}
)";
  return kSource;
}

const ModuleSpec& QosSpec() {
  static const ModuleSpec spec = ParseAppDsl(QosDsl());
  return spec;
}

bool InstallQosEntries(CompiledModule& m,
                       const std::vector<QosClass>& classes) {
  for (const QosClass& c : classes) {
    const u16 ver_tos = static_cast<u16>(0x4500 | c.tos);
    m.AddEntry("qos_tbl", {{"dst_port", c.dst_port}}, std::nullopt,
               "set_class", {ver_tos, c.out_port});
  }
  return m.ok();
}

}  // namespace menshen::apps
