#include "apps/apps.hpp"

namespace menshen::apps {

std::string_view FirewallDsl() {
  static constexpr std::string_view kSource = R"(
module firewall {
  # Stateless firewall (P4 tutorial): stage 1 screens source addresses,
  # stage 2 screens L4 destination ports.  Packets matching a block rule
  # are discarded; explicitly allowed traffic is forwarded.
  field src_ip   : 4 @ 30;
  field dst_port : 2 @ 40;

  action fw_block { drop(); }
  action fw_allow(p) { port(p); }

  table fw_src {
    key = { src_ip };
    actions = { fw_block, fw_allow };
    size = 4;
  }

  table fw_port {
    key = { dst_port };
    actions = { fw_block, fw_allow };
    size = 4;
  }
}
)";
  return kSource;
}

const ModuleSpec& FirewallSpec() {
  static const ModuleSpec spec = ParseAppDsl(FirewallDsl());
  return spec;
}

bool InstallFirewallEntries(CompiledModule& m, const FirewallRules& rules) {
  for (const u32 ip : rules.blocked_src_ips)
    m.AddEntry("fw_src", {{"src_ip", ip}}, std::nullopt, "fw_block", {});
  for (const u32 ip : rules.allowed_src_ips)
    m.AddEntry("fw_src", {{"src_ip", ip}}, std::nullopt, "fw_allow",
               {rules.forward_port});
  for (const u16 port : rules.blocked_dst_ports)
    m.AddEntry("fw_port", {{"dst_port", port}}, std::nullopt, "fw_block", {});
  for (const u16 port : rules.allowed_dst_ports)
    m.AddEntry("fw_port", {{"dst_port", port}}, std::nullopt, "fw_allow",
               {rules.forward_port});
  return m.ok();
}

}  // namespace menshen::apps
