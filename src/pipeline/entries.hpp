// Configuration-table entry formats (paper Figure 7 and Table 5).
//
// Every per-module configuration that the overlay mechanism stores — parser
// actions, key-extractor selections, key masks, CAM entries, VLIW actions
// and segment-table entries — has an exact bit-level format here, with
// encode/decode to the byte payloads carried by reconfiguration packets.
// The simulator, the compiler backend and the software-to-hardware
// interface all share these definitions, so a mismatch is impossible by
// construction.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"
#include "phv/phv.hpp"
#include "pipeline/params.hpp"

namespace menshen {

// ---------------------------------------------------------------------------
// Parser / deparser actions (16 bits each, 10 per table entry).
//
// Bit layout (LSB first):  [0] valid, [3:1] container index, [5:4] container
// type, [12:6] bytes-from-head (0-127), [15:13] reserved.  This matches the
// field widths in section 4.1: 3 reserved + 7 offset + 2 type + 3 index + 1
// valid = 16 bits.
// ---------------------------------------------------------------------------
struct ParserAction {
  bool valid = false;
  ContainerRef container;
  u8 bytes_from_head = 0;  // 7 bits: extraction offset within first 128B

  [[nodiscard]] u16 Encode() const;
  static ParserAction Decode(u16 bits);
  bool operator==(const ParserAction&) const = default;
};

struct ParserEntry {
  std::array<ParserAction, params::kParserActionsPerEntry> actions{};

  [[nodiscard]] ByteBuffer Encode() const;  // 20 bytes (160 bits)
  static ParserEntry Decode(const ByteBuffer& bytes);
  [[nodiscard]] std::size_t valid_count() const;
  bool operator==(const ParserEntry&) const = default;
};

// The deparser table has the identical format (section 3.1).
using DeparserEntry = ParserEntry;

// ---------------------------------------------------------------------------
// Key extractor (38-bit entries) and key mask (193-bit entries).
//
// The 193-bit key layout, from LSB: [0] predicate bit, [16:1] 2nd 2B
// container, [32:17] 1st 2B, [64:33] 2nd 4B, [96:65] 1st 4B, [144:97]
// 2nd 6B, [192:145] 1st 6B (Figure 7 orders the key as 1st6B 2nd6B 1st4B
// 2nd4B 1st2B 2nd2B with the flag appended).
// ---------------------------------------------------------------------------

/// Comparison opcodes for the per-stage predicate (section 4.1).
enum class CmpOp : u8 {
  kNone = 0,  // no predicate: bit evaluates to 0
  kEq = 1,
  kNeq = 2,
  kGt = 3,
  kLt = 4,
  kGe = 5,
  kLe = 6,
};

/// An 8-bit predicate operand: either a small immediate (0-127) or a PHV
/// container reference.  Encoding: bit7 = 1 -> container (bits [6:5] type,
/// bits [2:0] index); bit7 = 0 -> immediate in bits [6:0].
struct Operand8 {
  static Operand8 Immediate(u8 value);
  static Operand8 Container(ContainerRef c);

  [[nodiscard]] bool is_container() const { return (bits & 0x80) != 0; }
  [[nodiscard]] u8 immediate() const { return bits & 0x7F; }
  [[nodiscard]] ContainerRef container() const;

  [[nodiscard]] u64 Eval(const Phv& phv) const;

  u8 bits = 0;
  bool operator==(const Operand8&) const = default;
};

struct KeyExtractorEntry {
  // Which container index (0-7) feeds each of the six key slots.
  // Order: {1st6B, 2nd6B, 1st4B, 2nd4B, 1st2B, 2nd2B}.
  std::array<u8, 6> selectors{};
  CmpOp cmp_op = CmpOp::kNone;
  Operand8 cmp_a;
  Operand8 cmp_b;
  /// Appendix B: the stage matches this module's key in the ternary CAM
  /// instead of the exact-match CAM.  Stored in one of the two spare bits
  /// of the 5-byte entry encoding.
  bool ternary = false;

  [[nodiscard]] ByteBuffer Encode() const;  // 5 bytes (38 bits used)
  static KeyExtractorEntry Decode(const ByteBuffer& bytes);

  /// Builds the 193-bit lookup key from a PHV per this configuration.
  [[nodiscard]] BitVec ExtractKey(const Phv& phv) const;

  /// Allocation-free variant: rebuilds the key into `key`, reusing its
  /// storage (the batched dataplane's scratch-buffer hot path).
  void ExtractKeyInto(const Phv& phv, BitVec& key) const;

  /// Key-layout-cache variant: only fills the slots named in
  /// `active_slots` (bit i = slot i) and evaluates the predicate only if
  /// `pred_active`.  Callers pass the slots that survive the module's key
  /// mask — the masked key is then identical to
  /// `ExtractKeyInto(...).masked(mask)` while skipping the PHV reads and
  /// field writes the mask would zero anyway.
  void ExtractKeyPartialInto(const Phv& phv, u8 active_slots,
                             bool pred_active, BitVec& key) const;

  /// One-word fast path: builds word 0 of the raw key (bits [0,64)) as a
  /// plain u64 — no BitVec storage, no field bounds checks.  Only slots
  /// whose bit range touches word 0 contribute; bits a slot would place
  /// at position >= 64 fall off, exactly as the mask that qualified the
  /// module for this path (no set bit above 63) would zero them.  The
  /// caller ANDs the result with word 0 of that mask.
  [[nodiscard]] u64 ExtractKeyWord0(const Phv& phv, u8 active_slots,
                                    bool pred_active) const;

  /// One precompiled word-0 contribution: read `width` bytes (2 or 4,
  /// big-endian) at PHV byte offset `phv_off`, shift left by `lsb`.
  struct Word0Part {
    u16 phv_off = 0;
    u8 width = 0;
    u8 lsb = 0;
  };
  /// Compiles the word-0 extraction into raw (offset, width, shift)
  /// parts so a per-packet loop needs no container resolution — the
  /// kernels run this form.  Returns the part count (<= 3), or -1 when
  /// the predicate machinery is active and the caller must keep calling
  /// ExtractKeyWord0.
  [[nodiscard]] int CompileWord0(u8 active_slots, bool pred_active,
                                 std::array<Word0Part, 3>& parts) const;

  bool operator==(const KeyExtractorEntry&) const = default;
};

struct KeyMaskEntry {
  BitVec mask{params::kKeyBits};  // 1 = key bit participates in the match

  [[nodiscard]] ByteBuffer Encode() const;  // 25 bytes
  static KeyMaskEntry Decode(const ByteBuffer& bytes);
  bool operator==(const KeyMaskEntry&) const = default;
};

// Bit positions of the six key slots within the 193-bit key.
struct KeySlot {
  std::size_t lsb;
  std::size_t bits;
};
[[nodiscard]] std::array<KeySlot, 6> KeySlots();

/// Container type each key slot draws from, in `selectors` order
/// ({1st6B, 2nd6B, 1st4B, 2nd4B, 1st2B, 2nd2B}) — combined with a
/// selector index this names the PHV container a slot reads, which the
/// execution-plan liveness analysis needs.
[[nodiscard]] std::array<ContainerType, 6> KeySlotTypes();

// ---------------------------------------------------------------------------
// Exact-match CAM entries: 193-bit key + 12-bit module ID = 205 bits.
// ---------------------------------------------------------------------------
struct CamEntry {
  bool valid = false;
  BitVec key{params::kKeyBits};
  ModuleId module;
  // Cached one-word form, filled in by ExactMatchCam::Write (not part of
  // the wire format): the low 64 key bits, and whether every key bit
  // above them is zero — i.e. whether this entry is reachable from the
  // one-word lookup fast path.
  u64 key_w0 = 0;
  bool key_hi_zero = false;

  [[nodiscard]] ByteBuffer Encode() const;  // 1 valid byte + 26 key bytes
  static CamEntry Decode(const ByteBuffer& bytes);
  /// Recomputes the cached one-word form from `key`.
  void RefreshWordCache();
  /// Compares the stored configuration (valid/key/module); the derived
  /// word cache is excluded.
  bool operator==(const CamEntry& other) const {
    return valid == other.valid && key == other.key &&
           module == other.module;
  }
};

// ---------------------------------------------------------------------------
// VLIW ALU actions (25 bits per slot, 25 slots = 625 bits per entry).
//
// Two formats (Figure 7):
//   A: opcode(4) | container1(5) | container2(5) | reserved(11)
//   B: opcode(4) | container1(5) | immediate(16)
// The opcode determines the format.  Container fields hold the flat
// container number (0-23; 24 = metadata slot).
// ---------------------------------------------------------------------------
enum class AluOp : u8 {
  kNop = 0,
  kAdd = 1,     // A: out = phv[c1] + phv[c2]
  kSub = 2,     // A: out = phv[c1] - phv[c2]
  kAddi = 3,    // B: out = phv[c1] + imm
  kSubi = 4,    // B: out = phv[c1] - imm
  kSet = 5,     // B: out = imm
  kLoad = 6,    // B: out = state[imm]
  kStore = 7,   // B: state[imm] = phv[c1]
  kLoadd = 8,   // B: out = state[imm] + 1; state[imm] = out (sequencer)
  kPort = 9,    // B: egress port = imm (metadata slot only)
  kDiscard = 10,// B: set discard flag (metadata slot only)
  kCopy = 11,   // A: out = phv[c1]
  kLoadc = 12,  // A: out = state[phv[c2]] (address from PHV)
  kStorec = 13, // A: state[phv[c2]] = phv[c1]
  kLoaddc = 14, // A: out = state[phv[c2]] + 1, stored back
  kMcast = 15,  // B: multicast group = imm (metadata slot only)
};

[[nodiscard]] bool OpUsesImmediate(AluOp op);
[[nodiscard]] bool OpTouchesState(AluOp op);
// Which operands an opcode consumes and whether its result lands in the
// slot's container — the dataflow facts the VLIW plan compiler
// (pipeline/action_engine) and the execution-plan liveness analysis
// (pipeline/exec_plan) share.  The engine reads both operand registers
// unconditionally, but only these influence the result or state.
[[nodiscard]] bool OpReadsContainer1(AluOp op);
[[nodiscard]] bool OpReadsContainer2(AluOp op);
[[nodiscard]] bool OpWritesSlotContainer(AluOp op);
[[nodiscard]] const char* AluOpName(AluOp op);

struct AluAction {
  AluOp op = AluOp::kNop;
  u8 container1 = 0;  // flat container number, 5 bits
  u8 container2 = 0;  // flat container number, 5 bits (format A)
  u16 immediate = 0;  // format B

  [[nodiscard]] u32 Encode() const;  // 25 bits
  static AluAction Decode(u32 bits);
  [[nodiscard]] std::string ToString() const;
  bool operator==(const AluAction&) const = default;
};

struct VliwEntry {
  std::array<AluAction, kNumAluContainers> slots{};  // slot i writes container i

  [[nodiscard]] ByteBuffer Encode() const;  // 79 bytes (625 bits)
  static VliwEntry Decode(const ByteBuffer& bytes);
  [[nodiscard]] std::size_t active_count() const;
  bool operator==(const VliwEntry&) const = default;
};

// ---------------------------------------------------------------------------
// Segment-table entries: first byte = offset, second byte = range
// (section 4.1).  Both are in stateful-memory words.
// ---------------------------------------------------------------------------
struct SegmentEntry {
  u8 offset = 0;
  u8 range = 0;  // number of words this module may address; 0 = no access

  [[nodiscard]] ByteBuffer Encode() const;  // 2 bytes
  static SegmentEntry Decode(const ByteBuffer& bytes);
  bool operator==(const SegmentEntry&) const = default;
};

/// Converts a flat container number (0-24) to a ContainerRef; flat 24 is
/// the metadata pseudo-container and has no ContainerRef.  Inline: this
/// sits on the per-slot ALU hot path (operand reads and result writes).
inline constexpr u8 kMetadataSlot = 24;
[[nodiscard]] inline std::optional<ContainerRef> FlatToContainer(u8 flat) {
  if (flat >= kMetadataSlot) return std::nullopt;
  return ContainerRef{static_cast<ContainerType>(flat / kContainersPerType),
                      static_cast<u8>(flat % kContainersPerType)};
}

}  // namespace menshen
