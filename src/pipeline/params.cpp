#include "pipeline/params.hpp"

namespace menshen {

const PlatformTiming& NetFpgaPlatform() {
  static const PlatformTiming p{
      .name = "NetFPGA",
      .clock = kNetFpgaClock,
      .bus_bytes = 32,  // 256-bit AXI-S (section 4.3)
      .link_gbps = 10.0,
      .processing_depth = 76,
      .overlap_ingress = false,
      .egress_beats_per_cycle = 2,
      .external_path_ns = 600.0,
  };
  return p;
}

const PlatformTiming& CorundumPlatform() {
  static const PlatformTiming p{
      .name = "Corundum",
      .clock = kCorundumClock,
      .bus_bytes = 64,  // 512-bit AXI-S (section 4.3)
      .link_gbps = 100.0,
      .processing_depth = 105,
      .overlap_ingress = true,
      .egress_beats_per_cycle = 1,
      .external_path_ns = 600.0,
  };
  return p;
}

const PlatformTiming& AsicPlatform() {
  // The ASIC study (section 5.2) synthesizes the same 5-stage design at
  // 1 GHz.  We keep the Corundum datapath shape at the ASIC clock.
  static const PlatformTiming p{
      .name = "ASIC",
      .clock = kAsicClock,
      .bus_bytes = 64,
      .link_gbps = 400.0,
      .processing_depth = 105,
      .overlap_ingress = true,
      .egress_beats_per_cycle = 1,
      .external_path_ns = 0.0,
  };
  return p;
}

PipelineTiming OptimizedTiming() {
  return PipelineTiming{
      .parsers = params::kOptimizedParsers,
      .deparsers = params::kOptimizedDeparsers,
      .stage_ii = 2,  // deep pipelining (section 3.2, circle 3)
  };
}

PipelineTiming UnoptimizedTiming() {
  return PipelineTiming{.parsers = 1, .deparsers = 1, .stage_ii = 8};
}

Cycle IdleLatencyCycles(const PlatformTiming& p, std::size_t pkt_bytes) {
  const Cycle in = p.beats(pkt_bytes);
  const Cycle out =
      (p.beats(pkt_bytes) + p.egress_beats_per_cycle - 1) /
      p.egress_beats_per_cycle;
  if (p.overlap_ingress) {
    return std::max<Cycle>(p.processing_depth, in) + out;
  }
  return p.processing_depth + in + out;
}

}  // namespace menshen
