// Stateful memory with segment-table address translation (section 3.1).
//
// Each stage owns a block of stateful memory, space-partitioned across
// modules.  A module supplies *per-module* (virtual) addresses; the
// segment table — an overlay table holding {offset, range} per module —
// translates them to physical addresses.  An access outside the module's
// range is squashed: loads return zero, stores are dropped, and a
// per-module violation counter increments.  This is the hardware bound
// check that makes it impossible for one module to read or corrupt
// another module's state.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "pipeline/entries.hpp"
#include "pipeline/overlay_table.hpp"

namespace menshen {

class StatefulMemory {
 public:
  explicit StatefulMemory(
      std::size_t words = params::kStatefulWordsPerStage)
      : words_(words, 0) {}

  [[nodiscard]] std::size_t size() const { return words_.size(); }

  /// Loads the word at `local` in `module`'s segment (0 if out of range).
  [[nodiscard]] u64 Load(ModuleId module, u64 local);

  /// Stores `value` at `local` in `module`'s segment (dropped if out of
  /// range).
  void Store(ModuleId module, u64 local, u64 value);

  /// The `loadd` ALU op: load, add one, store back; returns the new value.
  u64 LoadAddStore(ModuleId module, u64 local);

  /// Raw physical access for the control plane (statistics readout and
  /// zeroing a segment when its module is unloaded).
  [[nodiscard]] u64 PhysicalAt(std::size_t addr) const;
  void PhysicalStore(std::size_t addr, u64 value);
  void ZeroRange(std::size_t base, std::size_t count);

  [[nodiscard]] OverlayTable<SegmentEntry>& segment_table() {
    return segment_table_;
  }
  [[nodiscard]] const OverlayTable<SegmentEntry>& segment_table() const {
    return segment_table_;
  }

  /// Out-of-range access count per module (observability for tests and
  /// the control plane).
  [[nodiscard]] u64 violations(ModuleId module) const;
  [[nodiscard]] u64 total_violations() const { return total_violations_; }

 private:
  /// Translates; returns size() when the access is out of range.
  [[nodiscard]] std::size_t Translate(ModuleId module, u64 local);

  std::vector<u64> words_;
  OverlayTable<SegmentEntry> segment_table_;
  std::unordered_map<u16, u64> violations_;
  u64 total_violations_ = 0;
};

}  // namespace menshen
