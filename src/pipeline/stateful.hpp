// Stateful memory with segment-table address translation (section 3.1).
//
// Each stage owns a block of stateful memory, space-partitioned across
// modules.  A module supplies *per-module* (virtual) addresses; the
// segment table — an overlay table holding {offset, range} per module —
// translates them to physical addresses.  An access outside the module's
// range is squashed: loads return zero, stores are dropped, and a
// per-module violation counter increments.  This is the hardware bound
// check that makes it impossible for one module to read or corrupt
// another module's state.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "pipeline/entries.hpp"
#include "pipeline/overlay_table.hpp"

namespace menshen {

class StatefulMemory {
 public:
  explicit StatefulMemory(
      std::size_t words = params::kStatefulWordsPerStage)
      : words_(words, 0) {}

  [[nodiscard]] std::size_t size() const { return words_.size(); }

  /// A module's segment resolved once (one segment-table read) so a run
  /// of same-module packets skips the per-access table lookup.  Access
  /// semantics are identical to Load/Store/LoadAddStore below — out of
  /// range is squashed and counted per access — the only difference is
  /// when the {offset, range} pair is read.  The view is invalidated by
  /// any segment-table write; callers re-resolve per run (the dataplane
  /// quiesces traffic around configuration changes, so a view never
  /// spans a write).
  class Segment {
   public:
    Segment() = default;

    [[nodiscard]] u64 Load(u64 local) const {
      const std::size_t phys = Translate(local);
      return phys < mem_->words_.size() ? mem_->words_[phys] : 0;
    }
    void Store(u64 local, u64 value) const {
      const std::size_t phys = Translate(local);
      if (phys < mem_->words_.size()) mem_->words_[phys] = value;
    }
    [[nodiscard]] u64 LoadAddStore(u64 local) const {
      const std::size_t phys = Translate(local);
      if (phys >= mem_->words_.size()) return 0;
      return ++mem_->words_[phys];
    }

   private:
    friend class StatefulMemory;
    Segment(StatefulMemory* mem, ModuleId module, SegmentEntry seg)
        : mem_(mem), module_(module), offset_(seg.offset), range_(seg.range) {}

    /// Mirror of StatefulMemory::Translate against the resolved entry.
    [[nodiscard]] std::size_t Translate(u64 local) const {
      if (local >= range_) {
        mem_->RecordViolation(module_);
        return mem_->words_.size();
      }
      const std::size_t phys =
          static_cast<std::size_t>(offset_) + static_cast<std::size_t>(local);
      if (phys >= mem_->words_.size()) {
        mem_->RecordViolation(module_);
        return mem_->words_.size();
      }
      return phys;
    }

    StatefulMemory* mem_ = nullptr;
    ModuleId module_{0};
    u32 offset_ = 0;
    u32 range_ = 0;
  };

  /// Reads `module`'s segment-table entry once and returns the resolved
  /// access view.
  [[nodiscard]] Segment ResolveSegment(ModuleId module) {
    return Segment(this, module, segment_table_.Lookup(module));
  }

  /// Loads the word at `local` in `module`'s segment (0 if out of range).
  [[nodiscard]] u64 Load(ModuleId module, u64 local);

  /// Stores `value` at `local` in `module`'s segment (dropped if out of
  /// range).
  void Store(ModuleId module, u64 local, u64 value);

  /// The `loadd` ALU op: load, add one, store back; returns the new value.
  u64 LoadAddStore(ModuleId module, u64 local);

  /// Raw physical access for the control plane (statistics readout and
  /// zeroing a segment when its module is unloaded).
  [[nodiscard]] u64 PhysicalAt(std::size_t addr) const;
  void PhysicalStore(std::size_t addr, u64 value);
  void ZeroRange(std::size_t base, std::size_t count);

  [[nodiscard]] OverlayTable<SegmentEntry>& segment_table() {
    return segment_table_;
  }
  [[nodiscard]] const OverlayTable<SegmentEntry>& segment_table() const {
    return segment_table_;
  }

  /// Out-of-range access count per module (observability for tests and
  /// the control plane).
  [[nodiscard]] u64 violations(ModuleId module) const;
  [[nodiscard]] u64 total_violations() const { return total_violations_; }

 private:
  /// Translates; returns size() when the access is out of range.
  [[nodiscard]] std::size_t Translate(ModuleId module, u64 local);

  void RecordViolation(ModuleId module) {
    ++violations_[module.value()];
    ++total_violations_;
  }

  std::vector<u64> words_;
  OverlayTable<SegmentEntry> segment_table_;
  std::unordered_map<u16, u64> violations_;
  u64 total_violations_ = 0;
};

}  // namespace menshen
