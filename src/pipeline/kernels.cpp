#include "pipeline/kernels.hpp"

#include <cstring>
#include <string>

#include "packet/arena.hpp"
#include "pipeline/action_engine.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/plan_exec.hpp"

namespace menshen {

namespace {

/// One step against the evolving PHV.  kMultiSlot=false is the
/// single-slot specialization: every VLIW plan reachable through the
/// row has at most one active slot, so there is never a snapshot and
/// never a slot loop (count <= 1 implies in_place_safe).
template <bool kMultiSlot>
inline void RunStep(KernelStep& st, Phv& phv, Phv& snapshot) {
  const VliwEntry* vliw;
  const VliwPlan* plan;
  if (st.constant) {
    // Resolved (and fully accounted) by Stage::BeginRun.
    vliw = st.const_vliw;
    plan = st.const_plan;
  } else {
    u64 key;
    if (st.key_nparts >= 0) {
      // Precompiled extraction: raw big-endian loads at fixed PHV
      // offsets (BuildKernelRun resolved the containers once per run).
      const u8* const pb = phv.raw().data();
      u64 w = 0;
      for (int j = 0; j < st.key_nparts; ++j) {
        const KeyExtractorEntry::Word0Part& p =
            st.key_parts[static_cast<std::size_t>(j)];
        u64 v;
        if (p.width == 4) {
          u32 t;
          std::memcpy(&t, pb + p.phv_off, 4);
          v = __builtin_bswap32(t);
        } else {
          u16 t;
          std::memcpy(&t, pb + p.phv_off, 2);
          v = __builtin_bswap16(t);
        }
        w |= v << p.lsb;
      }
      key = w & st.word_mask;
    } else {
      key = st.kx->ExtractKeyWord0(phv, st.active_slots, st.pred_active) &
            st.word_mask;
    }
    // Quiet probe with a last-key memo — the CAM cannot change mid-run,
    // so a repeated key replays the previous outcome without re-hashing.
    // Counter deltas accumulate below and flush once per run.
    if (!st.memo_valid || key != st.memo_key) {
      st.memo_valid = true;
      st.memo_key = key;
      st.memo_hit = false;
      if (st.word_index != nullptr) {
        const auto it = st.word_index->find(key);
        if (it != st.word_index->end()) {
          st.memo_hit = true;
          st.memo_addr = it->second;
        }
      }
    }
    if (!st.memo_hit) {
      ++st.misses;
      return;  // miss: default action is a no-op
    }
    ++st.hits;
    vliw = st.vliw_table + st.memo_addr;
    plan = st.vliw_plans + st.memo_addr;
  }
  if constexpr (kMultiSlot) {
    ActionEngine::ExecuteCompiled(*vliw, *plan, phv, snapshot, st.segment);
  } else {
    if (plan->count != 0) {
      const u8 slot = plan->active[0];
      ActionEngine::ApplySingleSlot(vliw->slots[slot], slot, phv, st.segment);
    }
  }
}

/// The straight-line kernel: one fused function per shape.  kSteps is a
/// compile-time constant so the stage loop unrolls; parse, probes,
/// effects and deparse make a single pass over the PHV emplaced
/// directly in the packet's result (the Phv constructor zero-fills, so
/// the planned parse needs no Clear and the result needs no copy).
/// kStateful only differentiates the shape id (stateless instances let
/// the compiler drop the segment plumbing after inlining).
template <int kSteps, bool kStateful, bool kMultiSlot>
void KernelBody(KernelRun& kr, const KernelBatchCtx& ctx) {
  for (std::size_t k = 0; k < ctx.n; ++k) {
    const std::size_t i = ctx.idx[k];
    Packet& pkt = ctx.batch[i];
    PipelineResult& result = ctx.out[i];

    // Hide the L3 latency of the streaming accesses: the next packets'
    // structs, their byte buffers (a dependent pointer, so one tier
    // further out), and the result slots about to be written.
    if (k + 8 < ctx.n) __builtin_prefetch(&ctx.batch[ctx.idx[k + 8]]);
    if (k + 4 < ctx.n) {
      const std::size_t ni = ctx.idx[k + 4];
      __builtin_prefetch(ctx.batch[ni].bytes().bytes().data());
      __builtin_prefetch(&ctx.out[ni], 1);
    }

    Phv& phv = result.final_phv.emplace();
    PlannedParseInto(pkt, phv, *kr.parse);

    for (int s = 0; s < kSteps; ++s)
      RunStep<kMultiSlot>(kr.steps[static_cast<std::size_t>(s)], phv,
                          *ctx.snapshot);

    // Multicast resolution (traffic-manager side, consulted by the
    // deparser) — identical to the interpreted tail.
    const u16 group = phv.meta_u16(meta::kMulticastGroup);
    if (group != 0) {
      const auto it = ctx.mcast->find(group);
      if (it != ctx.mcast->end()) pkt.multicast_ports = it->second;
    }

    PlannedDeparseFrom(phv, pkt, *kr.deparse);

    if (pkt.disposition == Disposition::kDrop)
      ++*ctx.drop;
    else
      ++*ctx.fwd;

    result.output = std::move(pkt);
  }
}

/// Streaming sibling of KernelBody: the run's packets are arena buffers
/// mutated in place.  One PHV scratch is Clear()ed and reused per packet
/// (no result emplacement, no PHV copy-out, no packet move) — the rest
/// of the per-packet sequence is byte-identical to the batched kernel:
/// planned parse, unrolled RunSteps, multicast resolution, planned
/// deparse, disjoint forwarded/dropped accounting.
template <int kSteps, bool kStateful, bool kMultiSlot>
void StreamKernelBody(KernelRun& kr, const StreamBatchCtx& ctx) {
  Phv& phv = *ctx.work;
  for (std::size_t k = 0; k < ctx.n; ++k) {
    ArenaPacket& pkt = *ctx.pkts[ctx.idx[k]];

    // The byte array is ArenaPacket's first member, so one prefetch of
    // the packet pointer covers the header bytes and a second at
    // +kDataRoom covers the sideband metadata — no dependent pointer
    // chase like the batched path's Packet -> heap ByteBuffer hop.
    if (k + 4 < ctx.n) {
      const char* np = reinterpret_cast<const char*>(ctx.pkts[ctx.idx[k + 4]]);
      __builtin_prefetch(np);
      __builtin_prefetch(np + ArenaPacket::kDataRoom);
    }

    phv.Clear();
    PlannedParseInto(pkt, phv, *kr.parse);

    for (int s = 0; s < kSteps; ++s)
      RunStep<kMultiSlot>(kr.steps[static_cast<std::size_t>(s)], phv,
                          *ctx.snapshot);

    const u16 group = phv.meta_u16(meta::kMulticastGroup);
    if (group != 0) {
      const auto it = ctx.mcast->find(group);
      if (it != ctx.mcast->end()) pkt.multicast_ports = it->second;
    }

    PlannedDeparseFrom(phv, pkt, *kr.deparse);

    if (pkt.disposition == Disposition::kDrop)
      ++*ctx.drop;
    else
      ++*ctx.fwd;
  }
}

template <int kSteps>
void RegisterSteps(std::array<KernelFn, kKernelShapeCount>& table) {
  table[KernelShapeId(kSteps, false, false, false)] =
      &KernelBody<kSteps, false, false>;
  table[KernelShapeId(kSteps, true, false, false)] =
      &KernelBody<kSteps, true, false>;
  table[KernelShapeId(kSteps, false, true, false)] =
      &KernelBody<kSteps, false, true>;
  table[KernelShapeId(kSteps, true, true, false)] =
      &KernelBody<kSteps, true, true>;
}

std::array<KernelFn, kKernelShapeCount> BuildRegistry() {
  // Shapes with the wide/ternary bit set — and step counts beyond
  // kNumStages, which no run can present — stay nullptr: the dispatcher
  // routes them to the interpreted plan path.
  std::array<KernelFn, kKernelShapeCount> table{};
  static_assert(params::kNumStages == 5,
                "RegisterSteps instantiations track kNumStages");
  RegisterSteps<0>(table);
  RegisterSteps<1>(table);
  RegisterSteps<2>(table);
  RegisterSteps<3>(table);
  RegisterSteps<4>(table);
  RegisterSteps<5>(table);
  return table;
}

template <int kSteps>
void RegisterStreamSteps(std::array<StreamKernelFn, kKernelShapeCount>& table) {
  table[KernelShapeId(kSteps, false, false, false)] =
      &StreamKernelBody<kSteps, false, false>;
  table[KernelShapeId(kSteps, true, false, false)] =
      &StreamKernelBody<kSteps, true, false>;
  table[KernelShapeId(kSteps, false, true, false)] =
      &StreamKernelBody<kSteps, false, true>;
  table[KernelShapeId(kSteps, true, true, false)] =
      &StreamKernelBody<kSteps, true, true>;
}

std::array<StreamKernelFn, kKernelShapeCount> BuildStreamRegistry() {
  std::array<StreamKernelFn, kKernelShapeCount> table{};
  static_assert(params::kNumStages == 5,
                "RegisterStreamSteps instantiations track kNumStages");
  RegisterStreamSteps<0>(table);
  RegisterStreamSteps<1>(table);
  RegisterStreamSteps<2>(table);
  RegisterStreamSteps<3>(table);
  RegisterStreamSteps<4>(table);
  RegisterStreamSteps<5>(table);
  return table;
}

}  // namespace

const std::array<KernelFn, kKernelShapeCount>& KernelRegistry() {
  static const std::array<KernelFn, kKernelShapeCount> table = BuildRegistry();
  return table;
}

const std::array<StreamKernelFn, kKernelShapeCount>& StreamKernelRegistry() {
  static const std::array<StreamKernelFn, kKernelShapeCount> table =
      BuildStreamRegistry();
  return table;
}

const char* KernelShapeName(u8 shape) {
  static const std::array<std::string, kKernelShapeCount> names = [] {
    std::array<std::string, kKernelShapeCount> n;
    for (std::size_t id = 0; id < kKernelShapeCount; ++id) {
      std::string s = "s" + std::to_string(id & 0x7u);
      if (id & 0x08u) s += "+stateful";
      if (id & 0x10u) s += "+multislot";
      if (id & 0x20u) s = "wide/ternary:" + s;
      n[id] = std::move(s);
    }
    return n;
  }();
  return names[shape & (kKernelShapeCount - 1)].c_str();
}

bool BuildKernelRun(const Stage* stages, std::size_t num_stages,
                    const Stage::ModuleRunContext* ctx,
                    const ModuleExecPlan& plan, KernelRun& kr) {
  kr.num_steps = 0;
  kr.parse = &plan.parse;
  kr.deparse = &plan.deparse;
  for (std::size_t s = 0; s < num_stages; ++s) {
    const Stage::ModuleRunContext& c = ctx[s];
    if (c.constant) {
      if (!c.constant_hit) continue;  // constant miss: no per-packet work
      if (c.constant_vliw_plan->count == 0) continue;  // all-nop action
      KernelStep& st = kr.steps[kr.num_steps++];
      st.constant = true;
      st.const_vliw = c.constant_vliw;
      st.const_plan = c.constant_vliw_plan;
      st.segment = c.segment;
      st.stage = static_cast<u8>(s);
      st.hits = st.misses = 0;
      continue;
    }
    if (c.kx->ternary || !c.plan->one_word)
      return false;  // wide/ternary probe: interpreted plan path
    KernelStep& st = kr.steps[kr.num_steps++];
    st.constant = false;
    st.kx = c.kx;
    st.key_nparts = c.kx->CompileWord0(c.plan->active_slots,
                                       c.plan->pred_active, st.key_parts);
    st.word_index = c.word_index;
    st.vliw_table = stages[s].vliw_table_data();
    st.vliw_plans = stages[s].vliw_plans_data();
    st.word_mask = c.plan->word_mask;
    st.active_slots = c.plan->active_slots;
    st.pred_active = c.plan->pred_active;
    st.segment = c.segment;
    st.stage = static_cast<u8>(s);
    st.memo_valid = false;
    st.hits = st.misses = 0;
  }
  return true;
}

void FlushKernelCounters(Stage* stages, KernelRun& kr) {
  for (std::size_t k = 0; k < kr.num_steps; ++k) {
    KernelStep& st = kr.steps[k];
    if (st.constant) continue;  // BeginRun accounted the whole run
    const u64 lookups = st.hits + st.misses;
    if (lookups != 0) {
      stages[st.stage].cam().NoteCachedLookups(lookups, st.hits);
      stages[st.stage].NoteCachedOutcomes(st.hits, st.misses);
    }
    st.hits = st.misses = 0;
  }
}

bool KernelRecordVerdict(const FlowRowState& row, const Stage* stages,
                         std::size_t num_stages, ModuleId module, Phv& phv,
                         FlowVerdict& v) {
  // Eligibility already proved one-word masked keys; only the ternary
  // stages still need the BitVec/TCAM walk of BuildVerdict.
  for (std::size_t s = 0; s < num_stages; ++s)
    if (row.keys[s].ternary && !row.keys[s].skip) return false;

  for (std::size_t s = 0; s < num_stages; ++s) {
    const FlowStageKey& k = row.keys[s];
    // The actual key comes from the evolving PHV, exactly like the
    // uncached path (see the induction argument in flow_cache.hpp).
    const u64 word =
        k.skip ? 0
               : (k.kx.ExtractKeyWord0(phv, k.active_slots, k.pred_active) &
                  k.word_mask);
    std::optional<std::size_t> address;
    if (const auto* h = stages[s].cam().WordIndexFor(module)) {
      const auto it = h->find(word);  // quiet: Accumulate owes the deltas
      if (it != h->end()) address = it->second;
    }
    FlowVerdict::StageOutcome& o = v.outcomes[s];
    o.probed = !k.skip;
    o.hit = address.has_value();
    o.address = static_cast<u8>(address.value_or(0));
    o.scanned = 0;
    if (!address) continue;  // miss: default action is a no-op

    FlowVerdictCache::RecordMatchedEffects(stages[s].VliwAt(*address), phv, v);
  }
  return true;
}

}  // namespace menshen
