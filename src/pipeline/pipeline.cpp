#include "pipeline/pipeline.hpp"

#include <set>
#include <stdexcept>

namespace menshen {

Pipeline::Pipeline(PipelineTiming timing, bool reconfig_on_data_path)
    : timing_(timing),
      filter_(timing.deparsers, reconfig_on_data_path),
      stages_(params::kNumStages) {}

u64 Pipeline::ConfigVersionSum() const {
  // Every configuration mutation path bumps one of these monotonic
  // counters, so the sum moves on any write — epoch commits, direct
  // table writes from tests, and ResizeShards config-log replay alike.
  u64 sum = parser_.table().version() + deparser_.table().version();
  for (const Stage& stage : stages_)
    sum += stage.key_extractor().version() + stage.key_mask().version() +
           stage.cam().version() + stage.tcam().version() +
           stage.vliw_version();
  return sum;
}

const ModuleExecPlan& Pipeline::ExecPlanFor(ModuleId module) {
  const std::size_t row = parser_.table().IndexFor(module);
  CachedExecPlan& cached = exec_plans_[row];
  const u64 stamp = ConfigVersionSum();
  if (cached.built_at_version != stamp) {
    cached.plan = CompileModuleExecPlan(parser_.table().At(row),
                                        deparser_.table().At(row),
                                        stages_.data(), stages_.size(), row);
    cached.built_at_version = stamp;
  }
  return cached.plan;
}

FlowRowState& Pipeline::FlowRowFor(ModuleId module) {
  const std::size_t row = parser_.table().IndexFor(module);
  const ModuleExecPlan& plan = ExecPlanFor(module);
  // ExecPlanFor just stamped this row with the current ConfigVersionSum.
  return flow_cache_.EnsureRow(row, exec_plans_[row].built_at_version,
                               stages_.data(), stages_.size(), plan);
}

void Pipeline::RunOneCached(Packet& pkt, PipelineResult& result,
                            const ModuleExecPlan& plan, FlowRowState& frow,
                            FlowVerdictCache::RunAccounting& acct,
                            ModuleId module, u64& fwd, u64& drop) {
  ++total_processed_;
  parser_.ParseIntoPlanned(pkt, batch_phv_, plan.parse);

  FlowVerdictCache::KeyWordArray words;
  FlowVerdictCache::KeyWords(frow, stages_.size(), batch_phv_, words);
  bool hit = false;
  FlowVerdict& v = flow_cache_.SlotFor(frow, module, words, hit);
  if (hit) {
    flow_cache_.NoteHit();
    FlowVerdictCache::ApplyEffects(v, batch_phv_);
  } else {
    flow_cache_.NoteMiss();
    flow_cache_.BeginFill(frow, v, module, words);
    FlowVerdictCache::BuildVerdict(frow, stages_.data(), stages_.size(),
                                   module, batch_phv_, v);
    v.valid = true;
  }
  FlowVerdictCache::Accumulate(acct, v, stages_.size());

  // Tail identical to RunOne: multicast ports resolve live (the group
  // table has no version counter, so only the group id is cached).
  const u16 group = batch_phv_.meta_u16(meta::kMulticastGroup);
  if (group != 0) {
    if (const auto* ports = MulticastGroup(group)) pkt.multicast_ports = *ports;
  }

  deparser_.DeparsePlanned(batch_phv_, pkt, plan.deparse);

  if (pkt.disposition == Disposition::kDrop)
    ++drop;
  else
    ++fwd;

  result.final_phv = batch_phv_;
  result.output = std::move(pkt);
}

void Pipeline::RunOneReplay(Packet& pkt, PipelineResult& result,
                            const ModuleExecPlan& plan, const FlowVerdict& v,
                            u64& fwd, u64& drop) {
  ++total_processed_;
  parser_.ParseIntoPlanned(pkt, batch_phv_, plan.parse);
  FlowVerdictCache::ApplyEffects(v, batch_phv_);

  const u16 group = batch_phv_.meta_u16(meta::kMulticastGroup);
  if (group != 0) {
    if (const auto* ports = MulticastGroup(group)) pkt.multicast_ports = *ports;
  }

  deparser_.DeparsePlanned(batch_phv_, pkt, plan.deparse);

  if (pkt.disposition == Disposition::kDrop)
    ++drop;
  else
    ++fwd;

  result.final_phv = batch_phv_;
  result.output = std::move(pkt);
}

void Pipeline::RunOne(Packet& pkt, PipelineResult& result,
                      const ModuleExecPlan& plan, u64& fwd, u64& drop) {
  ++total_processed_;
  parser_.ParseIntoPlanned(pkt, batch_phv_, plan.parse);
  for (std::size_t s = 0; s < stages_.size(); ++s)
    stages_[s].ProcessRun(batch_phv_, run_ctx_[s]);

  // Multicast resolution (traffic-manager side, consulted by the deparser).
  const u16 group = batch_phv_.meta_u16(meta::kMulticastGroup);
  if (group != 0) {
    if (const auto* ports = MulticastGroup(group)) pkt.multicast_ports = *ports;
  }

  deparser_.DeparsePlanned(batch_phv_, pkt, plan.deparse);

  if (pkt.disposition == Disposition::kDrop)
    ++drop;
  else
    ++fwd;

  result.final_phv = batch_phv_;
  result.output = std::move(pkt);
}

PipelineResult Pipeline::Process(Packet pkt) {
  // Single-packet front door: a module run of length one through the
  // same compiled-plan machinery as ProcessBatchInto (the dataplane
  // differential tests pin the two byte-for-byte).
  //
  // Disposition fields are per-device simulation sidebands, not packet
  // bytes: a packet entering this pipeline carries none of the previous
  // device's forwarding decisions.
  pkt.disposition = Disposition::kForward;
  pkt.egress_port = 0;
  pkt.multicast_ports.clear();

  PipelineResult result;
  result.filter_verdict = filter_.Classify(pkt);
  if (result.filter_verdict != FilterVerdict::kData) {
    if (result.filter_verdict == FilterVerdict::kDropBitmap)
      ++dropped_[pkt.vid().value()];
    return result;
  }

  const ModuleId module = pkt.vid();
  const ModuleExecPlan& plan = ExecPlanFor(module);
  // BeginRun resolves the per-stage contexts AND accounts constant-key
  // stages for the run — required on the cached path too, which skips
  // ProcessRun but relies on that accounting.
  for (std::size_t s = 0; s < stages_.size(); ++s)
    stages_[s].BeginRun(module, 1, run_ctx_[s]);
  const std::size_t row = parser_.table().IndexFor(module);
  FlowRowState& frow = flow_cache_.EnsureRow(
      row, exec_plans_[row].built_at_version, stages_.data(), stages_.size(),
      plan);
  if (frow.eligible) {
    FlowVerdictCache::RunAccounting acct;
    RunOneCached(pkt, result, plan, frow, acct, module,
                 forwarded_[module.value()], dropped_[module.value()]);
    FlowVerdictCache::FlushAccounting(acct, frow, stages_.data(),
                                      stages_.size());
  } else {
    RunOne(pkt, result, plan, forwarded_[module.value()],
           dropped_[module.value()]);
  }
  return result;
}

PipelineResult Pipeline::ProcessUnplanned(Packet pkt) {
  // The linear reference path: full parse, per-packet overlay reads,
  // full deparse.  tests/test_exec_plan.cpp pins the compiled-plan paths
  // against this on every tenant-observable output.
  pkt.disposition = Disposition::kForward;
  pkt.egress_port = 0;
  pkt.multicast_ports.clear();

  PipelineResult result;
  result.filter_verdict = filter_.Classify(pkt);
  if (result.filter_verdict != FilterVerdict::kData) {
    if (result.filter_verdict == FilterVerdict::kDropBitmap)
      ++dropped_[pkt.vid().value()];
    return result;
  }

  ++total_processed_;
  Phv phv = parser_.Parse(pkt);
  for (Stage& stage : stages_) phv = stage.Process(phv);

  const u16 group = phv.meta_u16(meta::kMulticastGroup);
  if (group != 0) {
    if (const auto* ports = MulticastGroup(group)) pkt.multicast_ports = *ports;
  }

  deparser_.Deparse(phv, pkt);

  if (pkt.disposition == Disposition::kDrop)
    ++dropped_[phv.module_id.value()];
  else
    ++forwarded_[phv.module_id.value()];

  result.final_phv = phv;
  result.output = std::move(pkt);
  return result;
}

void Pipeline::ProcessBatchInto(std::vector<Packet>&& batch,
                                std::vector<PipelineResult>& out) {
  const std::size_t base = out.size();
  const std::size_t n = batch.size();
  out.reserve(base + n);

  // Pass 1 — classify every packet in arrival order (the filter's
  // round-robin buffer-tag cursor and drop counters advance exactly as
  // on the per-packet path) and finish the non-data packets outright.
  data_idx_scratch_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    Packet& pkt = batch[i];
    PipelineResult& result = out.emplace_back();

    // Same sideband reset as Process(): no forwarding decision survives
    // from a previous device.
    pkt.disposition = Disposition::kForward;
    pkt.egress_port = 0;
    pkt.multicast_ports.clear();

    result.filter_verdict = filter_.Classify(pkt);
    if (result.filter_verdict != FilterVerdict::kData) {
      if (result.filter_verdict == FilterVerdict::kDropBitmap)
        ++dropped_[pkt.vid().value()];
      continue;
    }
    data_idx_scratch_.push_back(static_cast<u32>(i));
  }

  // Pass 2 — execute the data packets as module runs: maximal spans of
  // consecutive data packets sharing a tenant (non-data packets never
  // touch the stages, so they do not break a run).  Per run, each
  // stage's overlay lookups / key plan / stateful segment and the
  // module's parse/deparse plans are resolved once.
  std::size_t a = 0;
  while (a < data_idx_scratch_.size()) {
    const ModuleId module = batch[data_idx_scratch_[a]].vid();
    std::size_t b = a + 1;
    while (b < data_idx_scratch_.size() &&
           batch[data_idx_scratch_[b]].vid() == module)
      ++b;

    const ModuleExecPlan& plan = ExecPlanFor(module);
    for (std::size_t s = 0; s < stages_.size(); ++s)
      stages_[s].BeginRun(module, b - a, run_ctx_[s]);
    // unordered_map references are stable across inserts, so the run's
    // counter slots are hoisted out of the packet loop.
    u64& fwd = forwarded_[module.value()];
    u64& drop = dropped_[module.value()];

    const std::size_t row = parser_.table().IndexFor(module);
    FlowRowState& frow = flow_cache_.EnsureRow(
        row, exec_plans_[row].built_at_version, stages_.data(),
        stages_.size(), plan);
    if (frow.eligible) {
      // Provably stateless row: every packet goes through the
      // flow-verdict cache; counter deltas flush once per run.
      FlowVerdictCache::RunAccounting acct;
      std::size_t k = a;
      if (frow.all_constant && b - a > 1) {
        // Every packet shares the all-zero key word array, so one probe
        // covers the run: the first packet probes (filling on a miss)
        // and the rest replay the now-resident verdict with no
        // per-packet extraction or hashing.  Constant-key stages are
        // accounted by BeginRun for the whole run and an all-constant
        // verdict owes no per-packet probe deltas, so the replayed
        // packets only need the bulk hit count.
        const std::size_t i0 = data_idx_scratch_[k++];
        RunOneCached(batch[i0], out[base + i0], plan, frow, acct, module,
                     fwd, drop);
        static constexpr FlowVerdictCache::KeyWordArray kZeroWords{};
        bool hit = false;
        const FlowVerdict& v =
            flow_cache_.SlotFor(frow, module, kZeroWords, hit);
        if (hit) {
          flow_cache_.NoteHit(b - k);
          for (; k < b; ++k) {
            const std::size_t i = data_idx_scratch_[k];
            RunOneReplay(batch[i], out[base + i], plan, v, fwd, drop);
          }
        }
      }
      for (; k < b; ++k) {
        const std::size_t i = data_idx_scratch_[k];
        RunOneCached(batch[i], out[base + i], plan, frow, acct, module, fwd,
                     drop);
      }
      FlowVerdictCache::FlushAccounting(acct, frow, stages_.data(),
                                        stages_.size());
    } else {
      for (std::size_t k = a; k < b; ++k) {
        const std::size_t i = data_idx_scratch_[k];
        RunOne(batch[i], out[base + i], plan, fwd, drop);
      }
    }
    a = b;
  }
}

std::vector<PipelineResult> Pipeline::ProcessBatch(
    std::vector<Packet>&& batch) {
  std::vector<PipelineResult> out;
  ProcessBatchInto(std::move(batch), out);
  return out;
}

void Pipeline::ApplyWrite(const ConfigWrite& write) {
  if (write.payload.size() != EntryBytesFor(write.kind))
    throw std::invalid_argument("config payload size mismatch for " +
                                std::string(ResourceKindName(write.kind)));

  const auto stage_index = [&]() -> std::size_t {
    if (write.stage >= stages_.size())
      throw std::out_of_range("config write addresses nonexistent stage");
    return write.stage;
  };

  switch (write.kind) {
    case ResourceKind::kParserTable:
      parser_.table().Write(write.index, ParserEntry::Decode(write.payload));
      break;
    case ResourceKind::kDeparserTable:
      deparser_.table().Write(write.index,
                              DeparserEntry::Decode(write.payload));
      break;
    case ResourceKind::kKeyExtractor:
      stages_[stage_index()].key_extractor().Write(
          write.index, KeyExtractorEntry::Decode(write.payload));
      break;
    case ResourceKind::kKeyMask:
      stages_[stage_index()].key_mask().Write(
          write.index, KeyMaskEntry::Decode(write.payload));
      break;
    case ResourceKind::kCamEntry:
      stages_[stage_index()].cam().Write(write.index,
                                         CamEntry::Decode(write.payload));
      break;
    case ResourceKind::kVliwAction:
      stages_[stage_index()].WriteVliw(write.index,
                                       VliwEntry::Decode(write.payload));
      break;
    case ResourceKind::kSegmentTable:
      stages_[stage_index()].stateful().segment_table().Write(
          write.index, SegmentEntry::Decode(write.payload));
      break;
    case ResourceKind::kTcamEntry:
      stages_[stage_index()].tcam().Write(write.index,
                                          TcamEntry::Decode(write.payload));
      break;
  }
  ++config_writes_;
  filter_.IncrementReconfigCounter();
}

void Pipeline::SetMulticastGroup(u16 group, std::vector<u16> ports) {
  if (group == 0)
    throw std::invalid_argument("multicast group 0 means 'no multicast'");
  mcast_groups_[group] = std::move(ports);
}

const std::vector<u16>* Pipeline::MulticastGroup(u16 group) const {
  const auto it = mcast_groups_.find(group);
  return it == mcast_groups_.end() ? nullptr : &it->second;
}

std::vector<ModuleId> Pipeline::ActiveModules() const {
  std::set<u16> ids;
  for (const auto& [id, count] : forwarded_)
    if (count != 0) ids.insert(id);
  for (const auto& [id, count] : dropped_)
    if (count != 0) ids.insert(id);
  std::vector<ModuleId> out;
  out.reserve(ids.size());
  for (const u16 id : ids) out.emplace_back(id);
  return out;
}

u64 Pipeline::forwarded(ModuleId m) const {
  const auto it = forwarded_.find(m.value());
  return it == forwarded_.end() ? 0 : it->second;
}

u64 Pipeline::dropped(ModuleId m) const {
  const auto it = dropped_.find(m.value());
  return it == dropped_.end() ? 0 : it->second;
}

}  // namespace menshen
