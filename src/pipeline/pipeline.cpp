#include "pipeline/pipeline.hpp"

#include <set>
#include <stdexcept>

namespace menshen {

Pipeline::Pipeline(PipelineTiming timing, bool reconfig_on_data_path)
    : timing_(timing),
      filter_(timing.deparsers, reconfig_on_data_path),
      stages_(params::kNumStages) {}

PipelineResult Pipeline::Process(Packet pkt) {
  // Reference per-packet path.  ProcessBatchInto below is the optimized
  // mirror of this body — a semantic change here must be made there too
  // (tests/test_dataplane.cpp pins the two paths byte-for-byte).
  //
  // Disposition fields are per-device simulation sidebands, not packet
  // bytes: a packet entering this pipeline carries none of the previous
  // device's forwarding decisions.
  pkt.disposition = Disposition::kForward;
  pkt.egress_port = 0;
  pkt.multicast_ports.clear();

  PipelineResult result;
  result.filter_verdict = filter_.Classify(pkt);
  if (result.filter_verdict != FilterVerdict::kData) {
    if (result.filter_verdict == FilterVerdict::kDropBitmap)
      ++dropped_[pkt.vid().value()];
    return result;
  }

  ++total_processed_;
  Phv phv = parser_.Parse(pkt);
  for (Stage& stage : stages_) phv = stage.Process(phv);

  // Multicast resolution (traffic-manager side, consulted by the deparser).
  const u16 group = phv.meta_u16(meta::kMulticastGroup);
  if (group != 0) {
    if (const auto* ports = MulticastGroup(group)) pkt.multicast_ports = *ports;
  }

  deparser_.Deparse(phv, pkt);

  if (pkt.disposition == Disposition::kDrop)
    ++dropped_[phv.module_id.value()];
  else
    ++forwarded_[phv.module_id.value()];

  result.final_phv = phv;
  result.output = std::move(pkt);
  return result;
}

void Pipeline::ProcessBatchInto(std::vector<Packet>&& batch,
                                std::vector<PipelineResult>& out) {
  out.reserve(out.size() + batch.size());
  for (Packet& pkt : batch) {
    PipelineResult& result = out.emplace_back();

    // Same sideband reset as Process(): no forwarding decision survives
    // from a previous device.
    pkt.disposition = Disposition::kForward;
    pkt.egress_port = 0;
    pkt.multicast_ports.clear();

    result.filter_verdict = filter_.Classify(pkt);
    if (result.filter_verdict != FilterVerdict::kData) {
      if (result.filter_verdict == FilterVerdict::kDropBitmap)
        ++dropped_[pkt.vid().value()];
      continue;
    }

    ++total_processed_;
    parser_.ParseInto(pkt, batch_phv_);
    for (Stage& stage : stages_) stage.ProcessInPlace(batch_phv_);

    const u16 group = batch_phv_.meta_u16(meta::kMulticastGroup);
    if (group != 0) {
      if (const auto* ports = MulticastGroup(group))
        pkt.multicast_ports = *ports;
    }

    deparser_.Deparse(batch_phv_, pkt);

    if (pkt.disposition == Disposition::kDrop)
      ++dropped_[batch_phv_.module_id.value()];
    else
      ++forwarded_[batch_phv_.module_id.value()];

    result.final_phv = batch_phv_;
    result.output = std::move(pkt);
  }
}

std::vector<PipelineResult> Pipeline::ProcessBatch(
    std::vector<Packet>&& batch) {
  std::vector<PipelineResult> out;
  ProcessBatchInto(std::move(batch), out);
  return out;
}

void Pipeline::ApplyWrite(const ConfigWrite& write) {
  if (write.payload.size() != EntryBytesFor(write.kind))
    throw std::invalid_argument("config payload size mismatch for " +
                                std::string(ResourceKindName(write.kind)));

  const auto stage_index = [&]() -> std::size_t {
    if (write.stage >= stages_.size())
      throw std::out_of_range("config write addresses nonexistent stage");
    return write.stage;
  };

  switch (write.kind) {
    case ResourceKind::kParserTable:
      parser_.table().Write(write.index, ParserEntry::Decode(write.payload));
      break;
    case ResourceKind::kDeparserTable:
      deparser_.table().Write(write.index,
                              DeparserEntry::Decode(write.payload));
      break;
    case ResourceKind::kKeyExtractor:
      stages_[stage_index()].key_extractor().Write(
          write.index, KeyExtractorEntry::Decode(write.payload));
      break;
    case ResourceKind::kKeyMask:
      stages_[stage_index()].key_mask().Write(
          write.index, KeyMaskEntry::Decode(write.payload));
      break;
    case ResourceKind::kCamEntry:
      stages_[stage_index()].cam().Write(write.index,
                                         CamEntry::Decode(write.payload));
      break;
    case ResourceKind::kVliwAction:
      stages_[stage_index()].WriteVliw(write.index,
                                       VliwEntry::Decode(write.payload));
      break;
    case ResourceKind::kSegmentTable:
      stages_[stage_index()].stateful().segment_table().Write(
          write.index, SegmentEntry::Decode(write.payload));
      break;
    case ResourceKind::kTcamEntry:
      stages_[stage_index()].tcam().Write(write.index,
                                          TcamEntry::Decode(write.payload));
      break;
  }
  ++config_writes_;
  filter_.IncrementReconfigCounter();
}

void Pipeline::SetMulticastGroup(u16 group, std::vector<u16> ports) {
  if (group == 0)
    throw std::invalid_argument("multicast group 0 means 'no multicast'");
  mcast_groups_[group] = std::move(ports);
}

const std::vector<u16>* Pipeline::MulticastGroup(u16 group) const {
  const auto it = mcast_groups_.find(group);
  return it == mcast_groups_.end() ? nullptr : &it->second;
}

std::vector<ModuleId> Pipeline::ActiveModules() const {
  std::set<u16> ids;
  for (const auto& [id, count] : forwarded_)
    if (count != 0) ids.insert(id);
  for (const auto& [id, count] : dropped_)
    if (count != 0) ids.insert(id);
  std::vector<ModuleId> out;
  out.reserve(ids.size());
  for (const u16 id : ids) out.emplace_back(id);
  return out;
}

u64 Pipeline::forwarded(ModuleId m) const {
  const auto it = forwarded_.find(m.value());
  return it == forwarded_.end() ? 0 : it->second;
}

u64 Pipeline::dropped(ModuleId m) const {
  const auto it = dropped_.find(m.value());
  return it == dropped_.end() ? 0 : it->second;
}

}  // namespace menshen
