#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "common/exec_tier.hpp"
#include "packet/arena.hpp"
#include "pipeline/plan_exec.hpp"

namespace menshen {

Pipeline::Pipeline(PipelineTiming timing, bool reconfig_on_data_path)
    : timing_(timing),
      filter_(timing.deparsers, reconfig_on_data_path),
      stages_(params::kNumStages) {}

u64 Pipeline::ConfigVersionSum() const {
  // Every configuration mutation path bumps one of these monotonic
  // counters, so the sum moves on any write — epoch commits, direct
  // table writes from tests, and ResizeShards config-log replay alike.
  u64 sum = parser_.table().version() + deparser_.table().version();
  for (const Stage& stage : stages_)
    sum += stage.key_extractor().version() + stage.key_mask().version() +
           stage.cam().version() + stage.tcam().version() +
           stage.vliw_version();
  return sum;
}

const ModuleExecPlan& Pipeline::ExecPlanFor(ModuleId module) {
  const std::size_t row = parser_.table().IndexFor(module);
  CachedExecPlan& cached = exec_plans_[row];
  const u64 stamp = ConfigVersionSum();
  if (cached.built_at_version != stamp) {
    cached.plan = CompileModuleExecPlan(parser_.table().At(row),
                                        deparser_.table().At(row),
                                        stages_.data(), stages_.size(), row);
    cached.built_at_version = stamp;
  }
  return cached.plan;
}

Pipeline::KernelStats Pipeline::KernelSnapshot() const {
  KernelStats s;
  s.pkts = kernel_pkts_.load();
  s.fallback_pkts = kernel_fallback_pkts_.load();
  s.record_fills = kernel_record_fills_.load();
  for (std::size_t i = 0; i < kKernelShapeCount; ++i)
    s.shape_pkts[i] = kernel_shape_pkts_[i].load();
  return s;
}

ModuleExecPlan Pipeline::DescribeRow(ModuleId module) const {
  const std::size_t row = parser_.table().IndexFor(module);
  return CompileModuleExecPlan(parser_.table().At(row),
                               deparser_.table().At(row), stages_.data(),
                               stages_.size(), row);
}

FlowRowState& Pipeline::FlowRowFor(ModuleId module) {
  const std::size_t row = parser_.table().IndexFor(module);
  const ModuleExecPlan& plan = ExecPlanFor(module);
  // ExecPlanFor just stamped this row with the current ConfigVersionSum.
  return flow_cache_.EnsureRow(row, exec_plans_[row].built_at_version,
                               stages_.data(), stages_.size(), plan);
}

void Pipeline::RunResolveCached(Packet& pkt, PipelineResult& result, Phv& phv,
                                const ModuleExecPlan& plan, FlowRowState& frow,
                                FlowVerdictCache::RunAccounting& acct,
                                ModuleId module, FlowVerdict& v, bool hit,
                                const FlowVerdictCache::KeyWordArray& words,
                                u64& fwd, u64& drop) {
  if (hit) {
    flow_cache_.NoteHit();
    FlowVerdictCache::ApplyEffects(v, phv);
    result.exec_tier = static_cast<u8>(ExecTier::kFlowCacheHit);
    result.exec_steps = 0;
  } else {
    flow_cache_.NoteMiss();
    flow_cache_.BeginFill(frow, v, module, words);
    // The miss falls into the straight-line recording kernel; only
    // ternary-probing eligible rows keep the interpreted walk.
    if (kernels_enabled_ && KernelRecordVerdict(frow, stages_.data(),
                                                stages_.size(), module, phv,
                                                v)) {
      kernel_record_fills_.Add();
      result.exec_tier = static_cast<u8>(ExecTier::kKernel);
      result.exec_steps = plan.kernel.potential_steps;
    } else {
      FlowVerdictCache::BuildVerdict(frow, stages_.data(), stages_.size(),
                                     module, phv, v);
      result.exec_tier = static_cast<u8>(ExecTier::kInterpreted);
      result.exec_steps = static_cast<u8>(stages_.size());
    }
    v.valid = true;
  }
  FlowVerdictCache::Accumulate(acct, v, stages_.size());

  // Tail identical to RunOne: multicast ports resolve live (the group
  // table has no version counter, so only the group id is cached).
  const u16 group = phv.meta_u16(meta::kMulticastGroup);
  if (group != 0) {
    if (const auto* ports = MulticastGroup(group)) pkt.multicast_ports = *ports;
  }

  deparser_.DeparsePlanned(phv, pkt, plan.deparse);

  if (pkt.disposition == Disposition::kDrop)
    ++drop;
  else
    ++fwd;

  result.output = std::move(pkt);
}

void Pipeline::RunOneCached(Packet& pkt, PipelineResult& result,
                            const ModuleExecPlan& plan, FlowRowState& frow,
                            FlowVerdictCache::RunAccounting& acct,
                            ModuleId module, u64& fwd, u64& drop) {
  ++total_processed_;
  // Parse straight into the emplaced result PHV (the Phv constructor
  // zero-fills): no Clear, no final 128-byte copy-out.
  Phv& phv = result.final_phv.emplace();
  PlannedParseInto(pkt, phv, plan.parse);

  FlowVerdictCache::KeyWordArray words;
  FlowVerdictCache::KeyWords(frow, stages_.size(), phv, words);
  bool hit = false;
  FlowVerdict& v = flow_cache_.SlotFor(frow, module, words, hit);
  RunResolveCached(pkt, result, phv, plan, frow, acct, module, v, hit, words,
                   fwd, drop);
}

void Pipeline::BatchRunBurstCached(Packet* batch, PipelineResult* out,
                                   const u32* idx, std::size_t n,
                                   const ModuleExecPlan& plan,
                                   FlowRowState& frow,
                                   FlowVerdictCache::RunAccounting& acct,
                                   ModuleId module, u64& fwd, u64& drop) {
  for (std::size_t off = 0; off < n; off += kBurstLanes) {
    const std::size_t c = std::min(kBurstLanes, n - off);
    const u32* lanes = idx + off;
    // Phase 1: parse each lane into its result's emplaced PHV and
    // gather the probing stages' key words into the contiguous scratch
    // (skip stages keep the pre-zeroed constant 0).
    for (std::size_t k = 0; k < c; ++k) {
      const std::size_t i = lanes[k];
      if (k + 4 < c) {
        __builtin_prefetch(batch[lanes[k + 4]].bytes().bytes().data());
        __builtin_prefetch(&out[lanes[k + 4]], 1);
      }
      Phv& phv = out[i].final_phv.emplace();
      PlannedParseInto(batch[i], phv, plan.parse);
      FlowVerdictCache::KeyWordArray& w = burst_words_[k];
      w = {};
      for (u8 g = 0; g < plan.gather.count; ++g) {
        const std::size_t s = plan.gather.stages[g];
        const FlowStageKey& key = frow.keys[s];
        if (key.skip) continue;
        w[s] = key.kx.ExtractKeyWord0(phv, key.active_slots, key.pred_active) &
               key.word_mask;
      }
    }
    // Phase 2: hashed probe with slot prefetch-ahead; unresolvable
    // lanes compact into the fallback list.
    std::size_t fallback_count = 0;
    const std::size_t nhits = flow_cache_.BurstProbe(
        frow, module, burst_words_.data(), c, burst_verdicts_.data(),
        burst_fallback_.data(), fallback_count, burst_slot_.data());
    flow_cache_.NoteBurst(c, fallback_count);
    total_processed_ += c;
    if (nhits != 0) flow_cache_.NoteHit(nhits);
    // Phase 3a: replay the hit lanes while their slots are still
    // untouched (phase 3b's fills mutate slot contents; the verdict
    // pointers stay stable because fills never reallocate the row).
    for (std::size_t k = 0; k < c; ++k) {
      const FlowVerdict* v = burst_verdicts_[k];
      if (v == nullptr) continue;
      const std::size_t i = lanes[k];
      Packet& pkt = batch[i];
      PipelineResult& result = out[i];
      Phv& phv = *result.final_phv;
      FlowVerdictCache::ApplyEffects(*v, phv);
      result.exec_tier = static_cast<u8>(ExecTier::kFlowCacheHit);
      result.exec_steps = 0;
      FlowVerdictCache::Accumulate(acct, *v, stages_.size());
      const u16 group = phv.meta_u16(meta::kMulticastGroup);
      if (group != 0) {
        if (const auto* ports = MulticastGroup(group))
          pkt.multicast_ports = *ports;
      }
      deparser_.DeparsePlanned(phv, pkt, plan.deparse);
      if (pkt.disposition == Disposition::kDrop)
        ++drop;
      else
        ++fwd;
      result.output = std::move(pkt);
    }
    // Phase 3b: resolve fallback lanes in lane order — each re-probes
    // its slot (hash reused via burst_slot_) against the then-current
    // content, so outcomes, fills and eviction bookkeeping land exactly
    // as the scalar loop would produce them.
    for (std::size_t f = 0; f < fallback_count; ++f) {
      const std::size_t k = burst_fallback_[f];
      const std::size_t i = lanes[k];
      bool hit = false;
      FlowVerdict& v = FlowVerdictCache::SlotAt(frow, burst_slot_[k], module,
                                                burst_words_[k], hit);
      RunResolveCached(batch[i], out[i], *out[i].final_phv, plan, frow, acct,
                       module, v, hit, burst_words_[k], fwd, drop);
    }
  }
}

void Pipeline::RunOneReplay(Packet& pkt, PipelineResult& result,
                            const ModuleExecPlan& plan, const FlowVerdict& v,
                            u64& fwd, u64& drop) {
  ++total_processed_;
  Phv& phv = result.final_phv.emplace();
  PlannedParseInto(pkt, phv, plan.parse);
  FlowVerdictCache::ApplyEffects(v, phv);
  result.exec_tier = static_cast<u8>(ExecTier::kFlowCacheHit);
  result.exec_steps = 0;

  const u16 group = phv.meta_u16(meta::kMulticastGroup);
  if (group != 0) {
    if (const auto* ports = MulticastGroup(group)) pkt.multicast_ports = *ports;
  }

  deparser_.DeparsePlanned(phv, pkt, plan.deparse);

  if (pkt.disposition == Disposition::kDrop)
    ++drop;
  else
    ++fwd;

  result.output = std::move(pkt);
}

void Pipeline::RunOne(Packet& pkt, PipelineResult& result,
                      const ModuleExecPlan& plan, u64& fwd, u64& drop) {
  ++total_processed_;
  Phv& phv = result.final_phv.emplace();
  PlannedParseInto(pkt, phv, plan.parse);
  for (std::size_t s = 0; s < stages_.size(); ++s)
    stages_[s].ProcessRun(phv, run_ctx_[s]);
  result.exec_tier = static_cast<u8>(ExecTier::kInterpreted);
  result.exec_steps = static_cast<u8>(stages_.size());

  // Multicast resolution (traffic-manager side, consulted by the deparser).
  const u16 group = phv.meta_u16(meta::kMulticastGroup);
  if (group != 0) {
    if (const auto* ports = MulticastGroup(group)) pkt.multicast_ports = *ports;
  }

  deparser_.DeparsePlanned(phv, pkt, plan.deparse);

  if (pkt.disposition == Disposition::kDrop)
    ++drop;
  else
    ++fwd;

  result.output = std::move(pkt);
}

void Pipeline::RunSpan(Packet* batch, PipelineResult* out, const u32* idx,
                       std::size_t n, const ModuleExecPlan& plan, u64& fwd,
                       u64& drop) {
  if (kernels_enabled_ && !plan.kernel.wide_or_ternary &&
      BuildKernelRun(stages_.data(), stages_.size(), run_ctx_.data(), plan,
                     kernel_run_)) {
    const u8 shape = KernelShapeId(kernel_run_.num_steps, plan.kernel.stateful,
                                   plan.kernel.multi_slot, false);
    if (const KernelFn fn = KernelRegistry()[shape]) {
      KernelBatchCtx ctx;
      ctx.batch = batch;
      ctx.out = out;
      ctx.idx = idx;
      ctx.n = n;
      ctx.mcast = &mcast_groups_;
      ctx.fwd = &fwd;
      ctx.drop = &drop;
      ctx.snapshot = &kernel_snapshot_scratch_;
      fn(kernel_run_, ctx);
      FlushKernelCounters(stages_.data(), kernel_run_);
      total_processed_ += n;
      kernel_pkts_.Add(n);
      kernel_shape_pkts_[shape].Add(n);
      for (std::size_t k = 0; k < n; ++k) {
        out[idx[k]].exec_tier = static_cast<u8>(ExecTier::kKernel);
        out[idx[k]].exec_steps = kernel_run_.num_steps;
      }
      return;
    }
  }
  kernel_fallback_pkts_.Add(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = idx[k];
    RunOne(batch[i], out[i], plan, fwd, drop);
  }
}

PipelineResult Pipeline::Process(Packet pkt) {
  // Single-packet front door: a module run of length one through the
  // same compiled-plan machinery as ProcessBatchInto (the dataplane
  // differential tests pin the two byte-for-byte).
  //
  // Disposition fields are per-device simulation sidebands, not packet
  // bytes: a packet entering this pipeline carries none of the previous
  // device's forwarding decisions.
  pkt.disposition = Disposition::kForward;
  pkt.egress_port = 0;
  pkt.multicast_ports.clear();

  PipelineResult result;
  result.filter_verdict = filter_.Classify(pkt);
  if (result.filter_verdict != FilterVerdict::kData) {
    if (result.filter_verdict == FilterVerdict::kDropBitmap)
      ++dropped_[pkt.vid().value()];
    return result;
  }

  const ModuleId module = pkt.vid();
  const ModuleExecPlan& plan = ExecPlanFor(module);
  // BeginRun resolves the per-stage contexts AND accounts constant-key
  // stages for the run — required on the cached path too, which skips
  // ProcessRun but relies on that accounting.
  for (std::size_t s = 0; s < stages_.size(); ++s)
    stages_[s].BeginRun(module, 1, run_ctx_[s]);
  const std::size_t row = parser_.table().IndexFor(module);
  FlowRowState& frow = flow_cache_.EnsureRow(
      row, exec_plans_[row].built_at_version, stages_.data(), stages_.size(),
      plan);
  if (frow.eligible) {
    FlowVerdictCache::RunAccounting acct;
    RunOneCached(pkt, result, plan, frow, acct, module,
                 forwarded_[module.value()], dropped_[module.value()]);
    FlowVerdictCache::FlushAccounting(acct, frow, stages_.data(),
                                      stages_.size());
  } else {
    static constexpr u32 kZeroIdx = 0;
    RunSpan(&pkt, &result, &kZeroIdx, 1, plan, forwarded_[module.value()],
            dropped_[module.value()]);
  }
  return result;
}

PipelineResult Pipeline::ProcessUnplanned(Packet pkt) {
  // The linear reference path: full parse, per-packet overlay reads,
  // full deparse.  tests/test_exec_plan.cpp pins the compiled-plan paths
  // against this on every tenant-observable output.
  pkt.disposition = Disposition::kForward;
  pkt.egress_port = 0;
  pkt.multicast_ports.clear();

  PipelineResult result;
  result.filter_verdict = filter_.Classify(pkt);
  if (result.filter_verdict != FilterVerdict::kData) {
    if (result.filter_verdict == FilterVerdict::kDropBitmap)
      ++dropped_[pkt.vid().value()];
    return result;
  }

  ++total_processed_;
  Phv phv = parser_.Parse(pkt);
  for (Stage& stage : stages_) phv = stage.Process(phv);

  const u16 group = phv.meta_u16(meta::kMulticastGroup);
  if (group != 0) {
    if (const auto* ports = MulticastGroup(group)) pkt.multicast_ports = *ports;
  }

  deparser_.Deparse(phv, pkt);

  if (pkt.disposition == Disposition::kDrop)
    ++dropped_[phv.module_id.value()];
  else
    ++forwarded_[phv.module_id.value()];

  result.exec_tier = static_cast<u8>(ExecTier::kUnplanned);
  result.exec_steps = static_cast<u8>(stages_.size());
  result.final_phv = phv;
  result.output = std::move(pkt);
  return result;
}

void Pipeline::ProcessBatchInto(std::vector<Packet>&& batch,
                                std::vector<PipelineResult>& out) {
  const std::size_t base = out.size();
  const std::size_t n = batch.size();
  out.reserve(base + n);

  // One fused pass: classify packets in arrival order (the filter's
  // round-robin buffer-tag cursor and drop counters advance exactly as
  // on the per-packet path, and non-data packets finish outright), and
  // execute each module run — a maximal span of consecutive data
  // packets sharing a tenant; non-data packets never touch the stages,
  // so they do not break a run — the moment the tenant changes, while
  // the span's packets are still cache-hot from classification.  (The
  // earlier classify-everything-then-execute structure evicted a span
  // from L1 between the two passes.)
  data_idx_scratch_.clear();
  std::size_t span_start = 0;  // index into data_idx_scratch_
  ModuleId span_module(0);
  for (std::size_t i = 0; i <= n; ++i) {
    if (i < n) {
      // First touch of each packet: hide the LLC latency of the batch
      // stream (struct first, then the dependent byte-buffer pointer).
      if (i + 8 < n) __builtin_prefetch(&batch[i + 8]);
      if (i + 4 < n) __builtin_prefetch(batch[i + 4].bytes().bytes().data());
      Packet& pkt = batch[i];
      PipelineResult& result = out.emplace_back();

      // Same sideband reset as Process(): no forwarding decision
      // survives from a previous device.
      pkt.disposition = Disposition::kForward;
      pkt.egress_port = 0;
      pkt.multicast_ports.clear();

      result.filter_verdict = filter_.Classify(pkt);
      if (result.filter_verdict != FilterVerdict::kData) {
        if (result.filter_verdict == FilterVerdict::kDropBitmap)
          ++dropped_[pkt.vid().value()];
        continue;
      }
      const ModuleId vid = pkt.vid();
      if (data_idx_scratch_.size() == span_start || vid == span_module) {
        // Extends the open span (or opens the first one).
        span_module = vid;
        data_idx_scratch_.push_back(static_cast<u32>(i));
        continue;
      }
      // Tenant change: execute the open span below, then start a new
      // one with this packet.
    } else if (data_idx_scratch_.size() == span_start) {
      break;  // end of batch, no span left to flush
    }

    const ModuleId module = span_module;
    const std::size_t a = span_start;
    const std::size_t b = data_idx_scratch_.size();

    const ModuleExecPlan& plan = ExecPlanFor(module);
    for (std::size_t s = 0; s < stages_.size(); ++s)
      stages_[s].BeginRun(module, b - a, run_ctx_[s]);
    // unordered_map references are stable across inserts, so the run's
    // counter slots are hoisted out of the packet loop.
    u64& fwd = forwarded_[module.value()];
    u64& drop = dropped_[module.value()];

    const std::size_t row = parser_.table().IndexFor(module);
    FlowRowState& frow = flow_cache_.EnsureRow(
        row, exec_plans_[row].built_at_version, stages_.data(),
        stages_.size(), plan);
    if (frow.eligible) {
      // Provably stateless row: every packet goes through the
      // flow-verdict cache; counter deltas flush once per run.
      FlowVerdictCache::RunAccounting acct;
      std::size_t k = a;
      if (frow.all_constant && b - a > 1) {
        // Every packet shares the all-zero key word array, so one probe
        // covers the run: the first packet probes (filling on a miss)
        // and the rest replay the now-resident verdict with no
        // per-packet extraction or hashing.  Constant-key stages are
        // accounted by BeginRun for the whole run and an all-constant
        // verdict owes no per-packet probe deltas, so the replayed
        // packets only need the bulk hit count.
        const std::size_t i0 = data_idx_scratch_[k++];
        RunOneCached(batch[i0], out[base + i0], plan, frow, acct, module,
                     fwd, drop);
        static constexpr FlowVerdictCache::KeyWordArray kZeroWords{};
        bool hit = false;
        const FlowVerdict& v =
            flow_cache_.SlotFor(frow, module, kZeroWords, hit);
        if (hit) {
          flow_cache_.NoteHit(b - k);
          if (plan.parse.count == 0 && plan.deparse.count == 0 && k < b) {
            // Run-constant replay: with no parse or deparse byte-moves
            // the replayed PHV is identical across the run except the
            // per-packet pipeline metadata — and no cached effect can
            // touch those bytes (effects write containers, kUser,
            // kDstPort, kFlags or kMulticastGroup; never kSrcPort,
            // kPktLen or kBufferTag).  So the verdict's PHV, the
            // multicast resolution and the disposition are computed
            // once, and each packet just copies + patches.
            Phv tmpl;
            tmpl.module_id = module;
            FlowVerdictCache::ApplyEffects(v, tmpl);
            const u16 group = tmpl.meta_u16(meta::kMulticastGroup);
            const std::vector<u16>* mports =
                group != 0 ? MulticastGroup(group) : nullptr;
            const bool discard = tmpl.discard_flag();
            const bool multicast =
                !discard && mports != nullptr && !mports->empty();
            const u16 egress = tmpl.meta_u16(meta::kDstPort);
            const Disposition disp = discard      ? Disposition::kDrop
                                     : multicast ? Disposition::kMulticast
                                                 : Disposition::kForward;
            (discard ? drop : fwd) += b - k;
            total_processed_ += b - k;
            for (; k < b; ++k) {
              const std::size_t i = data_idx_scratch_[k];
              if (k + 4 < b) {
                const std::size_t pi = data_idx_scratch_[k + 4];
                __builtin_prefetch(batch[pi].bytes().bytes().data());
                __builtin_prefetch(&out[base + pi], 1);
              }
              Packet& pkt = batch[i];
              PipelineResult& r = out[base + i];
              r.exec_tier = static_cast<u8>(ExecTier::kFlowCacheHit);
              r.exec_steps = 0;
              Phv& phv = r.final_phv.emplace(tmpl);
              FillPipelineMetadata(pkt, phv);
              if (multicast) pkt.multicast_ports = *mports;
              pkt.disposition = disp;
              if (disp == Disposition::kForward) pkt.egress_port = egress;
              r.output = std::move(pkt);
            }
          }
          for (; k < b; ++k) {
            const std::size_t i = data_idx_scratch_[k];
            if (k + 4 < b) {
              const std::size_t pi = data_idx_scratch_[k + 4];
              __builtin_prefetch(batch[pi].bytes().bytes().data());
              __builtin_prefetch(&out[base + pi], 1);
            }
            RunOneReplay(batch[i], out[base + i], plan, v, fwd, drop);
          }
        }
      }
      if (burst_probe_enabled_ && !frow.all_constant && b - k >= 2) {
        // Burst-probed span (the all-constant fast path above already
        // replays without per-packet hashing, so it stays scalar).
        BatchRunBurstCached(batch.data(), out.data() + base,
                            data_idx_scratch_.data() + k, b - k, plan, frow,
                            acct, module, fwd, drop);
        k = b;
      }
      for (; k < b; ++k) {
        const std::size_t i = data_idx_scratch_[k];
        if (k + 4 < b) {
          const std::size_t pi = data_idx_scratch_[k + 4];
          __builtin_prefetch(batch[pi].bytes().bytes().data());
          __builtin_prefetch(&out[base + pi], 1);
        }
        RunOneCached(batch[i], out[base + i], plan, frow, acct, module, fwd,
                     drop);
      }
      FlowVerdictCache::FlushAccounting(acct, frow, stages_.data(),
                                        stages_.size());
    } else {
      RunSpan(batch.data(), out.data() + base, data_idx_scratch_.data() + a,
              b - a, plan, fwd, drop);
    }
    span_start = b;
    if (i < n) {
      // The packet that closed the previous span opens the next one.
      span_module = batch[i].vid();
      data_idx_scratch_.push_back(static_cast<u32>(i));
    }
  }
}

std::vector<PipelineResult> Pipeline::ProcessBatch(
    std::vector<Packet>&& batch) {
  std::vector<PipelineResult> out;
  ProcessBatchInto(std::move(batch), out);
  return out;
}

void Pipeline::StreamRunOne(ArenaPacket& pkt, const ModuleExecPlan& plan,
                            u64& fwd, u64& drop) {
  ++total_processed_;
  Phv& phv = stream_phv_;
  phv.Clear();
  PlannedParseInto(pkt, phv, plan.parse);
  for (std::size_t s = 0; s < stages_.size(); ++s)
    stages_[s].ProcessRun(phv, run_ctx_[s]);
  pkt.exec_tier = static_cast<u8>(ExecTier::kInterpreted);
  pkt.exec_steps = static_cast<u8>(stages_.size());

  const u16 group = phv.meta_u16(meta::kMulticastGroup);
  if (group != 0) {
    if (const auto* ports = MulticastGroup(group)) pkt.multicast_ports = *ports;
  }

  PlannedDeparseFrom(phv, pkt, plan.deparse);

  if (pkt.disposition == Disposition::kDrop)
    ++drop;
  else
    ++fwd;
}

void Pipeline::StreamResolveCached(ArenaPacket& pkt, Phv& phv,
                                   const ModuleExecPlan& plan,
                                   FlowRowState& frow,
                                   FlowVerdictCache::RunAccounting& acct,
                                   ModuleId module, FlowVerdict& v, bool hit,
                                   const FlowVerdictCache::KeyWordArray& words,
                                   u64& fwd, u64& drop) {
  if (hit) {
    flow_cache_.NoteHit();
    FlowVerdictCache::ApplyEffects(v, phv);
    pkt.exec_tier = static_cast<u8>(ExecTier::kFlowCacheHit);
    pkt.exec_steps = 0;
  } else {
    flow_cache_.NoteMiss();
    flow_cache_.BeginFill(frow, v, module, words);
    if (kernels_enabled_ && KernelRecordVerdict(frow, stages_.data(),
                                                stages_.size(), module, phv,
                                                v)) {
      kernel_record_fills_.Add();
      pkt.exec_tier = static_cast<u8>(ExecTier::kKernel);
      pkt.exec_steps = plan.kernel.potential_steps;
    } else {
      FlowVerdictCache::BuildVerdict(frow, stages_.data(), stages_.size(),
                                     module, phv, v);
      pkt.exec_tier = static_cast<u8>(ExecTier::kInterpreted);
      pkt.exec_steps = static_cast<u8>(stages_.size());
    }
    v.valid = true;
  }
  FlowVerdictCache::Accumulate(acct, v, stages_.size());

  const u16 group = phv.meta_u16(meta::kMulticastGroup);
  if (group != 0) {
    if (const auto* ports = MulticastGroup(group)) pkt.multicast_ports = *ports;
  }

  PlannedDeparseFrom(phv, pkt, plan.deparse);

  if (pkt.disposition == Disposition::kDrop)
    ++drop;
  else
    ++fwd;
}

void Pipeline::StreamRunOneCached(ArenaPacket& pkt, const ModuleExecPlan& plan,
                                  FlowRowState& frow,
                                  FlowVerdictCache::RunAccounting& acct,
                                  ModuleId module, u64& fwd, u64& drop) {
  ++total_processed_;
  Phv& phv = stream_phv_;
  phv.Clear();
  PlannedParseInto(pkt, phv, plan.parse);

  FlowVerdictCache::KeyWordArray words;
  FlowVerdictCache::KeyWords(frow, stages_.size(), phv, words);
  bool hit = false;
  FlowVerdict& v = flow_cache_.SlotFor(frow, module, words, hit);
  StreamResolveCached(pkt, phv, plan, frow, acct, module, v, hit, words, fwd,
                      drop);
}

void Pipeline::StreamRunBurstCached(ArenaPacket* const* pkts, const u32* idx,
                                    std::size_t n, const ModuleExecPlan& plan,
                                    FlowRowState& frow,
                                    FlowVerdictCache::RunAccounting& acct,
                                    ModuleId module, u64& fwd, u64& drop) {
  for (std::size_t off = 0; off < n; off += kBurstLanes) {
    const std::size_t c = std::min(kBurstLanes, n - off);
    const u32* lanes = idx + off;
    // Phase 1: parse each lane into its own scratch PHV (it must
    // survive to the replay phase) and gather the probing stages' key
    // words into the contiguous scratch array; skip stages keep the
    // pre-zeroed constant 0.
    for (std::size_t k = 0; k < c; ++k) {
      ArenaPacket& pkt = *pkts[lanes[k]];
      Phv& phv = burst_phv_[k];
      phv.Clear();
      PlannedParseInto(pkt, phv, plan.parse);
      FlowVerdictCache::KeyWordArray& w = burst_words_[k];
      w = {};
      for (u8 g = 0; g < plan.gather.count; ++g) {
        const std::size_t s = plan.gather.stages[g];
        const FlowStageKey& key = frow.keys[s];
        if (key.skip) continue;
        w[s] = key.kx.ExtractKeyWord0(phv, key.active_slots, key.pred_active) &
               key.word_mask;
      }
    }
    // Phase 2: hashed probe with slot prefetch-ahead; unresolvable
    // lanes compact into the fallback list and their slot index rides
    // the packet's scratch sideband into phase 3b.
    std::size_t fallback_count = 0;
    const std::size_t nhits = flow_cache_.BurstProbe(
        frow, module, burst_words_.data(), c, burst_verdicts_.data(),
        burst_fallback_.data(), fallback_count, burst_slot_.data());
    flow_cache_.NoteBurst(c, fallback_count);
    total_processed_ += c;
    if (nhits != 0) flow_cache_.NoteHit(nhits);
    // Phase 3a: replay the hit lanes while their slots are still
    // untouched (phase 3b's fills mutate slot contents; the verdict
    // pointers stay stable because fills never reallocate the row).
    for (std::size_t k = 0; k < c; ++k) {
      const FlowVerdict* v = burst_verdicts_[k];
      if (v == nullptr) {
        pkts[lanes[k]]->scratch = burst_slot_[k];
        continue;
      }
      ArenaPacket& pkt = *pkts[lanes[k]];
      Phv& phv = burst_phv_[k];
      FlowVerdictCache::ApplyEffects(*v, phv);
      pkt.exec_tier = static_cast<u8>(ExecTier::kFlowCacheHit);
      pkt.exec_steps = 0;
      FlowVerdictCache::Accumulate(acct, *v, stages_.size());
      const u16 group = phv.meta_u16(meta::kMulticastGroup);
      if (group != 0) {
        if (const auto* ports = MulticastGroup(group))
          pkt.multicast_ports = *ports;
      }
      PlannedDeparseFrom(phv, pkt, plan.deparse);
      if (pkt.disposition == Disposition::kDrop)
        ++drop;
      else
        ++fwd;
    }
    // Phase 3b: resolve fallback lanes in lane order — each re-probes
    // its slot (hash carried in the scratch sideband) against the
    // then-current content, so outcomes, fills and eviction bookkeeping
    // land exactly as the scalar loop would produce them.
    for (std::size_t f = 0; f < fallback_count; ++f) {
      const std::size_t k = burst_fallback_[f];
      ArenaPacket& pkt = *pkts[lanes[k]];
      bool hit = false;
      FlowVerdict& v = FlowVerdictCache::SlotAt(
          frow, static_cast<std::size_t>(pkt.scratch), module, burst_words_[k],
          hit);
      StreamResolveCached(pkt, burst_phv_[k], plan, frow, acct, module, v, hit,
                          burst_words_[k], fwd, drop);
    }
  }
}

void Pipeline::StreamRunSpan(ArenaPacket* const* pkts, const u32* idx,
                             std::size_t n, const ModuleExecPlan& plan,
                             u64& fwd, u64& drop) {
  if (kernels_enabled_ && !plan.kernel.wide_or_ternary &&
      BuildKernelRun(stages_.data(), stages_.size(), run_ctx_.data(), plan,
                     kernel_run_)) {
    const u8 shape = KernelShapeId(kernel_run_.num_steps, plan.kernel.stateful,
                                   plan.kernel.multi_slot, false);
    if (const StreamKernelFn fn = StreamKernelRegistry()[shape]) {
      StreamBatchCtx ctx;
      ctx.pkts = pkts;
      ctx.idx = idx;
      ctx.n = n;
      ctx.mcast = &mcast_groups_;
      ctx.fwd = &fwd;
      ctx.drop = &drop;
      ctx.snapshot = &kernel_snapshot_scratch_;
      ctx.work = &stream_phv_;
      fn(kernel_run_, ctx);
      FlushKernelCounters(stages_.data(), kernel_run_);
      total_processed_ += n;
      kernel_pkts_.Add(n);
      kernel_shape_pkts_[shape].Add(n);
      for (std::size_t k = 0; k < n; ++k) {
        pkts[idx[k]]->exec_tier = static_cast<u8>(ExecTier::kKernel);
        pkts[idx[k]]->exec_steps = kernel_run_.num_steps;
      }
      return;
    }
  }
  kernel_fallback_pkts_.Add(n);
  for (std::size_t k = 0; k < n; ++k)
    StreamRunOne(*pkts[idx[k]], plan, fwd, drop);
}

void Pipeline::ProcessStreamBurst(ArenaPacket* const* pkts, std::size_t n) {
  // Same fused classify + module-run structure as ProcessBatchInto, over
  // in-place arena buffers: spans of consecutive same-tenant data
  // packets execute through the identical three-tier ladder the moment
  // the tenant changes.  The filter's round-robin cursor and drop
  // counters advance exactly as on the batched path.
  data_idx_scratch_.clear();
  std::size_t span_start = 0;  // index into data_idx_scratch_
  ModuleId span_module(0);
  for (std::size_t i = 0; i <= n; ++i) {
    if (i < n) {
      // ArenaPacket's byte array is its first member: one prefetch
      // covers the headers, a second at +kDataRoom the sidebands.
      if (i + 4 < n) {
        const char* np = reinterpret_cast<const char*>(pkts[i + 4]);
        __builtin_prefetch(np);
        __builtin_prefetch(np + ArenaPacket::kDataRoom);
      }
      ArenaPacket& pkt = *pkts[i];

      // Same sideband reset as Process(): no forwarding decision
      // survives from a previous device.
      pkt.disposition = Disposition::kForward;
      pkt.egress_port = 0;
      pkt.multicast_ports.clear();
      pkt.exec_tier = static_cast<u8>(ExecTier::kNone);
      pkt.exec_steps = 0;

      const FilterVerdict verdict = filter_.Classify(pkt);
      pkt.verdict = static_cast<u8>(verdict);
      if (verdict != FilterVerdict::kData) {
        if (verdict == FilterVerdict::kDropBitmap)
          ++dropped_[pkt.vid().value()];
        continue;
      }
      const ModuleId vid = pkt.vid();
      if (data_idx_scratch_.size() == span_start || vid == span_module) {
        span_module = vid;
        data_idx_scratch_.push_back(static_cast<u32>(i));
        continue;
      }
    } else if (data_idx_scratch_.size() == span_start) {
      break;  // end of burst, no span left to flush
    }

    const ModuleId module = span_module;
    const std::size_t a = span_start;
    const std::size_t b = data_idx_scratch_.size();

    const ModuleExecPlan& plan = ExecPlanFor(module);
    for (std::size_t s = 0; s < stages_.size(); ++s)
      stages_[s].BeginRun(module, b - a, run_ctx_[s]);
    u64& fwd = forwarded_[module.value()];
    u64& drop = dropped_[module.value()];

    const std::size_t row = parser_.table().IndexFor(module);
    FlowRowState& frow = flow_cache_.EnsureRow(
        row, exec_plans_[row].built_at_version, stages_.data(),
        stages_.size(), plan);
    if (frow.eligible) {
      FlowVerdictCache::RunAccounting acct;
      if (burst_probe_enabled_ && b - a >= 2) {
        StreamRunBurstCached(pkts, data_idx_scratch_.data() + a, b - a, plan,
                             frow, acct, module, fwd, drop);
      } else {
        for (std::size_t k = a; k < b; ++k) {
          StreamRunOneCached(*pkts[data_idx_scratch_[k]], plan, frow, acct,
                             module, fwd, drop);
        }
      }
      FlowVerdictCache::FlushAccounting(acct, frow, stages_.data(),
                                        stages_.size());
    } else {
      StreamRunSpan(pkts, data_idx_scratch_.data() + a, b - a, plan, fwd,
                    drop);
    }
    span_start = b;
    if (i < n) {
      span_module = pkts[i]->vid();
      data_idx_scratch_.push_back(static_cast<u32>(i));
    }
  }
}

void Pipeline::ApplyWrite(const ConfigWrite& write) {
  if (write.payload.size() != EntryBytesFor(write.kind))
    throw std::invalid_argument("config payload size mismatch for " +
                                std::string(ResourceKindName(write.kind)));

  const auto stage_index = [&]() -> std::size_t {
    if (write.stage >= stages_.size())
      throw std::out_of_range("config write addresses nonexistent stage");
    return write.stage;
  };

  switch (write.kind) {
    case ResourceKind::kParserTable:
      parser_.table().Write(write.index, ParserEntry::Decode(write.payload));
      break;
    case ResourceKind::kDeparserTable:
      deparser_.table().Write(write.index,
                              DeparserEntry::Decode(write.payload));
      break;
    case ResourceKind::kKeyExtractor:
      stages_[stage_index()].key_extractor().Write(
          write.index, KeyExtractorEntry::Decode(write.payload));
      break;
    case ResourceKind::kKeyMask:
      stages_[stage_index()].key_mask().Write(
          write.index, KeyMaskEntry::Decode(write.payload));
      break;
    case ResourceKind::kCamEntry:
      stages_[stage_index()].cam().Write(write.index,
                                         CamEntry::Decode(write.payload));
      break;
    case ResourceKind::kVliwAction:
      stages_[stage_index()].WriteVliw(write.index,
                                       VliwEntry::Decode(write.payload));
      break;
    case ResourceKind::kSegmentTable:
      stages_[stage_index()].stateful().segment_table().Write(
          write.index, SegmentEntry::Decode(write.payload));
      break;
    case ResourceKind::kTcamEntry:
      stages_[stage_index()].tcam().Write(write.index,
                                          TcamEntry::Decode(write.payload));
      break;
  }
  ++config_writes_;
  filter_.IncrementReconfigCounter();
}

void Pipeline::SetMulticastGroup(u16 group, std::vector<u16> ports) {
  if (group == 0)
    throw std::invalid_argument("multicast group 0 means 'no multicast'");
  mcast_groups_[group] = std::move(ports);
}

const std::vector<u16>* Pipeline::MulticastGroup(u16 group) const {
  const auto it = mcast_groups_.find(group);
  return it == mcast_groups_.end() ? nullptr : &it->second;
}

std::vector<ModuleId> Pipeline::ActiveModules() const {
  std::set<u16> ids;
  for (const auto& [id, count] : forwarded_)
    if (count != 0) ids.insert(id);
  for (const auto& [id, count] : dropped_)
    if (count != 0) ids.insert(id);
  std::vector<ModuleId> out;
  out.reserve(ids.size());
  for (const u16 id : ids) out.emplace_back(id);
  return out;
}

u64 Pipeline::forwarded(ModuleId m) const {
  const auto it = forwarded_.find(m.value());
  return it == forwarded_.end() ? 0 : it->second;
}

u64 Pipeline::dropped(ModuleId m) const {
  const auto it = dropped_.find(m.value());
  return it == dropped_.end() ? 0 : it->second;
}

}  // namespace menshen
