#include "pipeline/config_write.hpp"

#include <stdexcept>

#include "pipeline/entries.hpp"

namespace menshen {

const char* ResourceKindName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kParserTable: return "parser";
    case ResourceKind::kDeparserTable: return "deparser";
    case ResourceKind::kKeyExtractor: return "key-extractor";
    case ResourceKind::kKeyMask: return "key-mask";
    case ResourceKind::kCamEntry: return "cam";
    case ResourceKind::kVliwAction: return "vliw";
    case ResourceKind::kSegmentTable: return "segment";
    case ResourceKind::kTcamEntry: return "tcam";
  }
  return "?";
}

std::size_t EntryBytesFor(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kParserTable:
    case ResourceKind::kDeparserTable:
      return params::kParserActionsPerEntry * 2;  // 20
    case ResourceKind::kKeyExtractor:
      return 5;
    case ResourceKind::kKeyMask:
      return 25;
    case ResourceKind::kCamEntry:
      return 28;
    case ResourceKind::kVliwAction:
      return 79;
    case ResourceKind::kSegmentTable:
      return 2;
    case ResourceKind::kTcamEntry:
      return 53;  // valid(1) + module(2) + key(25) + mask(25)
  }
  throw std::invalid_argument("unknown resource kind");
}

ConfigWrite ConfigWrite::WithResourceId(u16 resource_id, u8 index,
                                        ByteBuffer payload) {
  if (resource_id >> 12) throw std::invalid_argument("resource ID > 12 bits");
  const u8 kind_bits = static_cast<u8>(resource_id >> 8);
  if (kind_bits > static_cast<u8>(ResourceKind::kTcamEntry))
    throw std::invalid_argument("unknown resource kind in resource ID");
  ConfigWrite w;
  w.kind = static_cast<ResourceKind>(kind_bits);
  w.stage = static_cast<u8>(resource_id & 0xFF);
  w.index = index;
  w.payload = std::move(payload);
  return w;
}

std::string ConfigWrite::ToString() const {
  std::string s = ResourceKindName(kind);
  s += "[stage ";
  s += std::to_string(stage);
  s += ", index ";
  s += std::to_string(index);
  s += "]";
  return s;
}

}  // namespace menshen
