// Hardware parameters of the Menshen pipeline (paper Table 5) and the
// calibrated timing model for the two FPGA platforms (section 4.3, 5.2).
#pragma once

#include <cstddef>
#include <string>

#include "common/types.hpp"

namespace menshen {

// ---------------------------------------------------------------------------
// Table 5: hardware resources in Menshen.
// ---------------------------------------------------------------------------
namespace params {

inline constexpr std::size_t kNumStages = 5;

// Overlay tables (parser, deparser, key extractor, key mask, segment) are
// 32 entries deep: at most 32 modules (section 5.2).
inline constexpr std::size_t kOverlayTableDepth = 32;

// Exact-match CAM and VLIW action table are 16 entries deep per stage.
inline constexpr std::size_t kCamDepth = 16;
inline constexpr std::size_t kVliwTableDepth = 16;

// Parser/deparser: 10 parsing actions of 16 bits each => 160-bit entries.
inline constexpr std::size_t kParserActionsPerEntry = 10;
inline constexpr std::size_t kParserActionBits = 16;
inline constexpr std::size_t kParserEntryBits =
    kParserActionsPerEntry * kParserActionBits;  // 160

// Key extractor: 6 container selectors (3 bits each) + predicate opcode
// (4 bits) + 2 predicate operands (8 bits each) => 38-bit entries.
inline constexpr std::size_t kKeyExtractorEntryBits = 38;

// Key: 2x6B + 2x4B + 2x2B containers = 24 bytes, plus 1 predicate bit.
inline constexpr std::size_t kKeyBytes = 24;
inline constexpr std::size_t kKeyBits = kKeyBytes * 8 + 1;  // 193
inline constexpr std::size_t kKeyMaskEntryBits = kKeyBits;  // 193

// Module ID is the 12-bit VLAN ID; CAM entries append it to the key.
inline constexpr std::size_t kModuleIdBits = 12;
inline constexpr std::size_t kCamEntryBits = kKeyBits + kModuleIdBits;  // 205

// VLIW action: 25 bits per ALU action, 25 ALU/container slots => 625 bits.
inline constexpr std::size_t kAluActionBits = 25;
inline constexpr std::size_t kVliwEntryBits = 25 * kAluActionBits;  // 625

// Segment table entries: offset byte + range byte (section 4.1).
inline constexpr std::size_t kSegmentEntryBits = 16;

// Stateful memory words per stage.  The paper does not give a depth; 256
// words keeps the 1-byte segment-table offset/range fields meaningful
// (they address the whole memory).
inline constexpr std::size_t kStatefulWordsPerStage = 256;

// Flow-verdict cache (pipeline/flow_cache): direct-mapped slots per
// overlay row.  Power of two (the slot index is a masked hash); sized so
// a tenant's working set of masked flow keys comfortably outnumbers its
// CAM entries while one row costs only a few tens of KB, allocated
// lazily on the first cacheable fill.
inline constexpr std::size_t kFlowCacheSlotsPerRow = 256;

// Packet-buffer / parser parallelism of the optimized design (section 3.2).
inline constexpr std::size_t kOptimizedParsers = 2;
inline constexpr std::size_t kOptimizedDeparsers = 4;

}  // namespace params

// ---------------------------------------------------------------------------
// Platform descriptions and the calibrated cycle model.
//
// Calibration (documented here once; see DESIGN.md section 5):
//  * A packet of S bytes occupies ceil(S / bus_bytes) bus "beats".
//  * Corundum (512-bit bus @ 250 MHz): the packet buffer fills in parallel
//    with PHV processing; egress drains at one beat per cycle.  Latency to
//    last byte out = max(F, beats_in) + beats_out with the processing
//    depth F = 105 cycles.  This reproduces the paper's section 5.2
//    numbers exactly: 64 B -> 106 cycles (424 ns), 1500 B -> 129 cycles
//    (516 ns).
//  * NetFPGA (256-bit bus @ 156.25 MHz): the narrower datapath fills the
//    buffer before the deparser starts and drains the buffer through a
//    double-width internal read port (2 beats/cycle).  Latency =
//    F + beats_in + ceil(beats_out / 2) with F = 76: 64 B -> 79 cycles
//    (505.6 ns, paper: 79 cycles) and 1500 B -> 147 cycles (941 ns,
//    paper: ~146-150 cycles / 960 ns, within 2%).
//  * Per-packet initiation intervals: the packet filter accepts one packet
//    per cycle; each parser needs ceil(128 / bus_bytes) + 6 cycles per
//    packet; with deep pipelining a match-action stage accepts a PHV every
//    2 cycles (8 without, section 3.2 "deep pipelining"); a deparser needs
//    ceil(1.5 * beats) + 2 cycles per packet (deparsing touches header and
//    payload, section 3.2).  The optimized design divides parser/deparser
//    load over 2 parsers and 4 deparsers.  These constants reproduce the
//    Fig. 11 throughput curves: unoptimized Corundum converges to
//    ~80 Gbit/s at MTU; optimized Corundum is wire-limited (100 Gbit/s
//    layer-1) from 256-byte packets upward.
// ---------------------------------------------------------------------------
struct PlatformTiming {
  std::string name;
  ClockDomain clock;
  std::size_t bus_bytes;        // AXI-Stream data width in bytes
  double link_gbps;             // attached link rate (layer-1)
  Cycle processing_depth;       // F above: filter+parser+5 stages+deparser
  bool overlap_ingress;         // Corundum: buffer fill overlaps processing
  std::size_t egress_beats_per_cycle;  // NetFPGA drains 2 beats/cycle
  // Fixed platform path outside the pipeline (MAC/PHY/tester) added to
  // measured sample latency in Fig. 11d, in nanoseconds.
  double external_path_ns;

  [[nodiscard]] Cycle beats(std::size_t bytes) const {
    return (bytes + bus_bytes - 1) / bus_bytes;
  }
};

/// Per-element initiation intervals / service times for a pipeline build.
struct PipelineTiming {
  std::size_t parsers = 1;
  std::size_t deparsers = 1;
  // Deep pipelining (section 3.2, circle 3) splits each match-action
  // table into sub-elements that accept a PHV every 2 cycles; the
  // unpipelined whole-table element needs 8.
  Cycle stage_ii = 8;

  [[nodiscard]] Cycle parser_service(const PlatformTiming& p) const {
    return p.beats(128) + 6;  // read config + walk 128-byte window
  }
  [[nodiscard]] Cycle deparser_service(const PlatformTiming& p,
                                       std::size_t pkt_bytes) const {
    const Cycle b = p.beats(pkt_bytes);
    return (3 * b + 1) / 2 + 2;  // ceil(1.5*beats) + 2
  }
};

[[nodiscard]] const PlatformTiming& NetFpgaPlatform();
[[nodiscard]] const PlatformTiming& CorundumPlatform();
[[nodiscard]] const PlatformTiming& AsicPlatform();

[[nodiscard]] PipelineTiming OptimizedTiming();
[[nodiscard]] PipelineTiming UnoptimizedTiming();

/// End-to-end pipeline latency in cycles for one packet in an otherwise
/// idle pipeline (the section 5.2 latency model).
[[nodiscard]] Cycle IdleLatencyCycles(const PlatformTiming& p,
                                      std::size_t pkt_bytes);

}  // namespace menshen
