#include "pipeline/stage.hpp"

#include <stdexcept>

namespace menshen {

BitVec Stage::MaskedKeyFor(const Phv& phv) const {
  const KeyExtractorEntry& kx = key_extractor_.Lookup(phv.module_id);
  const KeyMaskEntry& mask = key_mask_.Lookup(phv.module_id);
  return kx.ExtractKey(phv).masked(mask.mask);
}

Phv Stage::Process(const Phv& phv) {
  // Reference per-packet path; ProcessInPlace below is its optimized
  // mirror — keep the two in lockstep (pinned by the dataplane
  // differential test).
  const KeyExtractorEntry& kx = key_extractor_.Lookup(phv.module_id);
  const BitVec key = MaskedKeyFor(phv);
  // The match-kind bit in the module's key-extractor entry selects the
  // exact-match CAM or the ternary CAM (Appendix B); both index the same
  // VLIW action table.
  const auto address = kx.ternary ? tcam_.Lookup(key, phv.module_id)
                                  : cam_.Lookup(key, phv.module_id);
  if (!address) {
    ++misses_;
    return phv;  // miss: default action is a no-op, PHV passes unchanged
  }
  ++hits_;
  const VliwEntry& vliw = VliwAt(*address);
  return ActionEngine::Execute(vliw, phv, stateful_);
}

void Stage::ProcessInPlace(Phv& phv) {
  const KeyExtractorEntry& kx = key_extractor_.Lookup(phv.module_id);
  const KeyMaskEntry& mask = key_mask_.Lookup(phv.module_id);
  if (mask.mask.is_zero()) {
    // An all-zero mask (no table configured for this module in this
    // stage) forces the masked key — predicate bit included — to zero
    // whatever the PHV holds, so extraction can be skipped outright.
    // The lookup below still runs: a module may own an all-zero entry.
    key_scratch_.AssignZero(params::kKeyBits);
  } else {
    kx.ExtractKeyInto(phv, key_scratch_);
    key_scratch_.AndWith(mask.mask);
  }
  const auto address = kx.ternary ? tcam_.Lookup(key_scratch_, phv.module_id)
                                  : cam_.Lookup(key_scratch_, phv.module_id);
  if (!address) {
    ++misses_;
    return;  // miss: default action is a no-op, PHV passes unchanged
  }
  ++hits_;
  ActionEngine::ExecuteInPlace(VliwAt(*address), phv, snapshot_scratch_,
                               stateful_);
}

void Stage::WriteVliw(std::size_t index, VliwEntry entry) {
  if (index >= vliw_table_.size())
    throw std::out_of_range("VLIW table index out of range");
  vliw_table_[index] = std::move(entry);
}

const VliwEntry& Stage::VliwAt(std::size_t index) const {
  if (index >= vliw_table_.size())
    throw std::out_of_range("VLIW table index out of range");
  return vliw_table_[index];
}

}  // namespace menshen
