#include "pipeline/stage.hpp"

#include <stdexcept>

namespace menshen {

BitVec Stage::MaskedKeyFor(const Phv& phv) const {
  const KeyExtractorEntry& kx = key_extractor_.Lookup(phv.module_id);
  const KeyMaskEntry& mask = key_mask_.Lookup(phv.module_id);
  return kx.ExtractKey(phv).masked(mask.mask);
}

Phv Stage::Process(const Phv& phv) {
  // Reference per-packet path; ProcessInPlace below is its optimized
  // mirror — keep the two in lockstep (pinned by the dataplane
  // differential test).
  const KeyExtractorEntry& kx = key_extractor_.Lookup(phv.module_id);
  const BitVec key = MaskedKeyFor(phv);
  // The match-kind bit in the module's key-extractor entry selects the
  // exact-match CAM or the ternary CAM (Appendix B); both index the same
  // VLIW action table.
  const auto address = kx.ternary ? tcam_.Lookup(key, phv.module_id)
                                  : cam_.Lookup(key, phv.module_id);
  if (!address) {
    ++misses_;
    return phv;  // miss: default action is a no-op, PHV passes unchanged
  }
  ++hits_;
  const VliwEntry& vliw = VliwAt(*address);
  return ActionEngine::Execute(vliw, phv, stateful_);
}

const Stage::KeyPlan& Stage::PlanFor(std::size_t row) {
  KeyPlan& plan = key_plans_[row];
  const u64 stamp = key_extractor_.version() + key_mask_.version();
  if (plan.built_at_version != stamp) {
    const KeyExtractorEntry& kx = key_extractor_.At(row);
    const BitVec& mask = key_mask_.At(row).mask;
    plan.skip_extraction = mask.is_zero();
    plan.active_slots = 0;
    const auto slots = KeySlots();
    for (std::size_t i = 0; i < slots.size(); ++i)
      if (mask.field(slots[i].lsb, slots[i].bits) != 0)
        plan.active_slots |= static_cast<u8>(1u << i);
    plan.pred_active = mask.field(0, 1) != 0 && kx.cmp_op != CmpOp::kNone;
    // The masked key fits one 64-bit word when the mask keeps no bit
    // above 63 (an all-zero mask qualifies too: the u64 key is just 0).
    plan.one_word = mask.high_words_zero();
    plan.word_mask = plan.one_word ? mask.word(0) : 0;
    plan.built_at_version = stamp;
  }
  return plan;
}

void Stage::MaskedKeyIntoWith(const KeyExtractorEntry& kx,
                              const KeyMaskEntry& mask, const Phv& phv,
                              BitVec& key) {
  MaskedKeyWithPlan(kx, mask, PlanFor(key_extractor_.IndexFor(phv.module_id)),
                    phv, key);
}

void Stage::MaskedKeyWithPlan(const KeyExtractorEntry& kx,
                              const KeyMaskEntry& mask, const KeyPlan& plan,
                              const Phv& phv, BitVec& key) {
  if (plan.skip_extraction) {
    // An all-zero mask (no table configured for this module in this
    // stage) forces the masked key — predicate bit included — to zero
    // whatever the PHV holds, so extraction can be skipped outright.
    // The caller's CAM lookup still runs: a module may own an all-zero
    // entry.
    key.AssignZero(params::kKeyBits);
    return;
  }
  kx.ExtractKeyPartialInto(phv, plan.active_slots, plan.pred_active, key);
  key.AndWith(mask.mask);
}

void Stage::MaskedKeyInto(const Phv& phv, BitVec& key) {
  MaskedKeyIntoWith(key_extractor_.Lookup(phv.module_id),
                    key_mask_.Lookup(phv.module_id), phv, key);
}

void Stage::BeginRun(ModuleId module, std::size_t run_len,
                     ModuleRunContext& ctx) {
  ctx.kx = &key_extractor_.Lookup(module);
  ctx.mask = &key_mask_.Lookup(module);
  ctx.plan = &PlanFor(key_extractor_.IndexFor(module));
  ctx.segment = stateful_.ResolveSegment(module);
  ctx.constant = ctx.plan->skip_extraction;
  ctx.constant_hit = false;
  ctx.constant_vliw = nullptr;
  ctx.constant_vliw_plan = nullptr;
  if (!ctx.constant) {
    if (!ctx.kx->ternary) {
      if (ctx.plan->one_word)
        ctx.word_index = cam_.WordIndexFor(module);
      else
        ctx.key_index = cam_.KeyIndexFor(module);
    }
    return;
  }

  // All-zero mask: the masked key — predicate bit included — is zero for
  // every packet of the run, so the lookup result is fixed.  Probe once
  // (counting normally), then advance the counters for the rest of the
  // run so they match per-packet probing exactly.
  std::optional<std::size_t> address;
  const u64 extra = run_len > 0 ? run_len - 1 : 0;
  if (ctx.kx->ternary) {
    const u64 scanned_before = tcam_.entries_scanned();
    key_scratch_.AssignZero(params::kKeyBits);
    address = tcam_.Lookup(key_scratch_, module);
    tcam_.NoteConstantLookups(extra, address.has_value(),
                              tcam_.entries_scanned() - scanned_before);
  } else {
    // A zero key trivially fits one word: integer hash probe.
    address = cam_.LookupWord(0, module);
    cam_.NoteConstantLookups(extra, address.has_value());
  }
  if (address) {
    ctx.constant_hit = true;
    ctx.constant_vliw = &vliw_table_[*address];
    ctx.constant_vliw_plan = &vliw_plans_[*address];
    hits_ += run_len;
  } else {
    misses_ += run_len;
  }
}

void Stage::ProcessRun(Phv& phv, const ModuleRunContext& ctx) {
  if (ctx.constant) {
    // Lookup resolved (and counted) by BeginRun; only the action runs
    // per packet.
    if (ctx.constant_hit)
      ActionEngine::ExecuteCompiled(*ctx.constant_vliw,
                                    *ctx.constant_vliw_plan, phv,
                                    snapshot_scratch_, ctx.segment);
    return;
  }

  const KeyExtractorEntry& kx = *ctx.kx;
  const KeyPlan& plan = *ctx.plan;
  std::optional<std::size_t> address;
  if (!kx.ternary && plan.one_word) {
    const u64 key =
        kx.ExtractKeyWord0(phv, plan.active_slots, plan.pred_active) &
        plan.word_mask;
    address = cam_.LookupWordWith(ctx.word_index, key);
  } else {
    MaskedKeyWithPlan(kx, *ctx.mask, plan, phv, key_scratch_);
    address = kx.ternary ? tcam_.Lookup(key_scratch_, phv.module_id)
                         : cam_.LookupWith(ctx.key_index, key_scratch_);
  }
  if (!address) {
    ++misses_;
    return;  // miss: default action is a no-op, PHV passes unchanged
  }
  ++hits_;
  ActionEngine::ExecuteCompiled(vliw_table_[*address], vliw_plans_[*address],
                                phv, snapshot_scratch_, ctx.segment);
}

void Stage::ProcessInPlace(Phv& phv) {
  const KeyExtractorEntry& kx = key_extractor_.Lookup(phv.module_id);
  const KeyMaskEntry& mask = key_mask_.Lookup(phv.module_id);
  std::optional<std::size_t> address;
  const KeyPlan& plan = PlanFor(key_extractor_.IndexFor(phv.module_id));
  if (!kx.ternary && plan.one_word) {
    // One-word fast path: the module's masked key layout fits word 0, so
    // the key is extracted straight into a u64 and the CAM lookup is an
    // integer hash probe.  Byte-identical to the wide path below (pinned
    // by the randomized match-index differential test).
    const u64 key = plan.skip_extraction
                        ? 0
                        : (kx.ExtractKeyWord0(phv, plan.active_slots,
                                              plan.pred_active) &
                           plan.word_mask);
    address = cam_.LookupWord(key, phv.module_id);
  } else {
    MaskedKeyWithPlan(kx, mask, plan, phv, key_scratch_);
    address = kx.ternary ? tcam_.Lookup(key_scratch_, phv.module_id)
                         : cam_.Lookup(key_scratch_, phv.module_id);
  }
  if (!address) {
    ++misses_;
    return;  // miss: default action is a no-op, PHV passes unchanged
  }
  ++hits_;
  ActionEngine::ExecuteInPlace(VliwAt(*address), phv, snapshot_scratch_,
                               stateful_);
}

void Stage::WriteVliw(std::size_t index, VliwEntry entry) {
  if (index >= vliw_table_.size())
    throw std::out_of_range("VLIW table index out of range");
  vliw_table_[index] = std::move(entry);
  vliw_plans_[index] = VliwPlan::Compile(vliw_table_[index]);
  ++vliw_version_;
}

const VliwEntry& Stage::VliwAt(std::size_t index) const {
  if (index >= vliw_table_.size())
    throw std::out_of_range("VLIW table index out of range");
  return vliw_table_[index];
}

}  // namespace menshen
