// Configuration writes — the unit of pipeline reconfiguration.
//
// A ConfigWrite names a hardware resource (12-bit resource ID: 4-bit
// resource kind + 8-bit stage number, Figure 7), an entry index within
// that resource's table, and the entry payload bytes.  ConfigWrites travel
// inside reconfiguration packets along the daisy chain (config/), or over
// AXI-Lite in 32-bit words (Appendix A), and are applied to the pipeline
// by Pipeline::ApplyWrite.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace menshen {

enum class ResourceKind : u8 {
  kParserTable = 0,
  kDeparserTable = 1,
  kKeyExtractor = 2,
  kKeyMask = 3,
  kCamEntry = 4,
  kVliwAction = 5,
  kSegmentTable = 6,
  kTcamEntry = 7,  // ternary match entries (Appendix B)
};

[[nodiscard]] const char* ResourceKindName(ResourceKind kind);

/// Payload size in bytes each resource kind's entries encode to.
[[nodiscard]] std::size_t EntryBytesFor(ResourceKind kind);

struct ConfigWrite {
  ResourceKind kind = ResourceKind::kParserTable;
  u8 stage = 0;  // 0-4 for per-stage resources; 0 for parser/deparser
  u8 index = 0;  // entry index within the table (Figure 7 "Index" field)
  ByteBuffer payload;

  /// The 12-bit resource ID of Figure 7.
  [[nodiscard]] u16 resource_id() const {
    return static_cast<u16>((static_cast<u16>(kind) << 8) | stage);
  }
  static ConfigWrite WithResourceId(u16 resource_id, u8 index,
                                    ByteBuffer payload);

  [[nodiscard]] std::string ToString() const;
  bool operator==(const ConfigWrite&) const = default;
};

}  // namespace menshen
