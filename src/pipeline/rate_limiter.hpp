// Per-module hardware rate limiters (section 5.1).
//
// Menshen's performance isolation normally follows from the line-rate
// pipeline plus two assumptions: packets meet a minimum size and modules
// never recirculate.  When an assumption is violated (e.g. a module
// floods minimum-size packets), the paper points to hardware rate
// limiters that bound each module's packets-per-second and bits-per-
// second at ingress.  This is that block: a dual token bucket per module,
// evaluated in the packet filter's clock domain.
//
// Determinism: buckets are refilled lazily from integer cycle timestamps,
// so behaviour is exact and reproducible.
#pragma once

#include <optional>
#include <unordered_map>

#include "common/types.hpp"

namespace menshen {

/// One module's limit: tokens are packets and bytes per second converted
/// to per-cycle refill at configuration time.
struct RateLimit {
  double max_pps = 0.0;  // 0 = unlimited
  double max_bps = 0.0;  // 0 = unlimited
  /// Burst allowances (bucket depths).
  double burst_packets = 32.0;
  double burst_bytes = 64.0 * 1500.0;
};

class RateLimiter {
 public:
  /// `clock_hz` is the pipeline clock the cycle timestamps refer to.
  explicit RateLimiter(double clock_hz) : clock_hz_(clock_hz) {}

  /// Installs (or replaces) a module's limit.  Control-plane operation.
  void SetLimit(ModuleId module, const RateLimit& limit);
  void ClearLimit(ModuleId module);
  [[nodiscard]] bool HasLimit(ModuleId module) const;

  /// Charges one packet of `bytes` arriving at `now`.  Returns true if
  /// the packet conforms; false if it must be dropped.  Modules without
  /// a configured limit always conform.
  bool Admit(ModuleId module, std::size_t bytes, Cycle now);

  [[nodiscard]] u64 dropped(ModuleId module) const;

 private:
  struct Bucket {
    RateLimit limit;
    double packet_tokens = 0.0;
    double byte_tokens = 0.0;
    Cycle last_refill = 0;
    u64 dropped = 0;
  };

  void Refill(Bucket& b, Cycle now) const;

  double clock_hz_;
  std::unordered_map<u16, Bucket> buckets_;
};

}  // namespace menshen
