// One match-action stage (Figure 4).
//
// Per packet: (1) the key extractor overlay entry for the packet's module
// builds the 193-bit key (including the predicate bit); (2) the key mask
// overlay entry zeroes the bits that do not participate; (3) the masked
// key, augmented with the module ID, is looked up in the exact-match CAM;
// (4) on a hit, the matching address indexes the VLIW action table and the
// action engine executes the instruction, possibly touching this stage's
// stateful memory through the segment table.
//
// The batched hot path amortizes the per-packet configuration reads over
// a *module run* — a span of consecutive same-tenant packets: BeginRun
// resolves the overlay-table Lookup pair, the key-layout plan and the
// stateful-segment base once, and ProcessRun then executes each packet
// against the resolved ModuleRunContext.  A module whose key mask is all
// zero probes the same (all-zero) key every packet, so its lookup result
// is resolved once per run too and the per-packet work collapses to the
// action execution (or to nothing on a constant miss) — counters advance
// exactly as if each packet had probed.
#pragma once

#include <optional>
#include <vector>

#include "phv/phv.hpp"
#include "pipeline/action_engine.hpp"
#include "pipeline/entries.hpp"
#include "pipeline/exact_match.hpp"
#include "pipeline/overlay_table.hpp"
#include "pipeline/stateful.hpp"
#include "pipeline/tcam.hpp"

namespace menshen {

class Stage {
 public:
  /// Processes one PHV; returns the (possibly new) PHV for the next stage.
  /// This is the linear reference path the run-context hot path below is
  /// pinned against (tests/test_exec_plan.cpp).
  [[nodiscard]] Phv Process(const Phv& phv);

  /// Batched hot path predecessor: transforms `phv` in place, reusing
  /// this stage's scratch key/snapshot buffers so no per-packet
  /// allocation happens.  Functionally identical to `phv = Process(phv)`.
  void ProcessInPlace(Phv& phv);

  [[nodiscard]] OverlayTable<KeyExtractorEntry>& key_extractor() {
    return key_extractor_;
  }
  [[nodiscard]] OverlayTable<KeyMaskEntry>& key_mask() { return key_mask_; }
  [[nodiscard]] ExactMatchCam& cam() { return cam_; }
  [[nodiscard]] TernaryCam& tcam() { return tcam_; }
  [[nodiscard]] std::vector<VliwEntry>& vliw_table() { return vliw_table_; }
  [[nodiscard]] StatefulMemory& stateful() { return stateful_; }

  [[nodiscard]] const ExactMatchCam& cam() const { return cam_; }
  [[nodiscard]] const TernaryCam& tcam() const { return tcam_; }
  [[nodiscard]] const StatefulMemory& stateful() const { return stateful_; }
  [[nodiscard]] const OverlayTable<KeyExtractorEntry>& key_extractor() const {
    return key_extractor_;
  }
  [[nodiscard]] const OverlayTable<KeyMaskEntry>& key_mask() const {
    return key_mask_;
  }

  void WriteVliw(std::size_t index, VliwEntry entry);
  [[nodiscard]] const VliwEntry& VliwAt(std::size_t index) const;
  /// Compiled form of the VLIW row at `index` (active slots + snapshot
  /// elision) — read by the exec-plan shape classifier and the kernels.
  [[nodiscard]] const VliwPlan& VliwPlanAt(std::size_t index) const {
    return vliw_plans_.at(index);
  }
  /// Raw table bases for the kernel layer: a kernel resolves the matched
  /// address's entry/plan with one index, no bounds re-check (addresses
  /// come from the CAM, which only stores valid indices).
  [[nodiscard]] const VliwEntry* vliw_table_data() const {
    return vliw_table_.data();
  }
  [[nodiscard]] const VliwPlan* vliw_plans_data() const {
    return vliw_plans_.data();
  }
  /// Bumped on every WriteVliw — part of the configuration version the
  /// pipeline's execution-plan cache stamps plans with.
  [[nodiscard]] u64 vliw_version() const { return vliw_version_; }

  /// The key the stage would look up for this PHV, after masking — exposed
  /// for tests and the compiler's entry generation.
  [[nodiscard]] BitVec MaskedKeyFor(const Phv& phv) const;

  /// Hot-path equivalent of MaskedKeyFor: builds the masked key into
  /// `key` using the per-module key-layout plan cache, which skips the
  /// slots (and the predicate evaluation) the module's key mask zeroes
  /// anyway.  Plans invalidate automatically on key-extractor or key-mask
  /// writes (overlay-table versioning).
  void MaskedKeyInto(const Phv& phv, BitVec& key);

  /// Variant for callers that already looked the module's entries up
  /// (the per-packet hot path, which needs `kx` for the match-kind bit
  /// anyway) — performs no overlay-table reads itself.
  void MaskedKeyIntoWith(const KeyExtractorEntry& kx, const KeyMaskEntry& mask,
                         const Phv& phv, BitVec& key);

  // Observability.
  [[nodiscard]] u64 hits() const { return hits_; }
  [[nodiscard]] u64 misses() const { return misses_; }

  /// Advances the stage hit/miss counters for packets whose match
  /// outcome the flow-verdict cache replayed without running this stage
  /// — accumulated over one module run and flushed here in one step, so
  /// the counters advance exactly as if each packet had probed.
  void NoteCachedOutcomes(u64 hits, u64 misses) {
    hits_ += hits;
    misses_ += misses;
  }

  /// Cached per-overlay-row key layout, derived from the row's key
  /// extractor and key mask: which of the six key slots have any unmasked
  /// bit, and whether the predicate bit can ever reach the lookup.  Saves
  /// rebuilding the full 193-bit key per stage for the (common) modules
  /// that match on one or two fields.  Public: the kernel-specialization
  /// layer (pipeline/kernels) reads the plan through ModuleRunContext.
  struct KeyPlan {
    u64 built_at_version = ~u64{0};  // kx.version() + mask.version() stamp
    bool skip_extraction = false;    // all-zero mask: key is forced to zero
    u8 active_slots = 0;             // bit i: slot i survives the mask
    bool pred_active = false;        // mask keeps bit 0 and a CmpOp is set
    // One-word fast path: every kept mask bit lies in key word 0, so the
    // masked key is fully described by a u64 and exact-match lookup is an
    // integer hash probe (ExactMatchCam::LookupWord) — no BitVec build.
    bool one_word = false;
    u64 word_mask = 0;  // mask word 0 (valid when one_word)
  };

 public:
  /// One module run's resolved per-stage state: the overlay entries, the
  /// key-layout plan and the stateful segment, read once per run instead
  /// of once per packet.  Valid until the next configuration write or
  /// the end of the batch, whichever comes first (the dataplane quiesces
  /// traffic around configuration changes, so a context never spans
  /// one).  Opaque outside Stage.
  struct ModuleRunContext {
    const KeyExtractorEntry* kx = nullptr;
    const KeyMaskEntry* mask = nullptr;
    const KeyPlan* plan = nullptr;
    StatefulMemory::Segment segment;
    // Pre-resolved per-module CAM shadow-index handles (exact-match
    // modules): the per-packet probe skips the outer module-map hop.
    ExactMatchCam::WordIndexHandle word_index = nullptr;
    ExactMatchCam::KeyIndexHandle key_index = nullptr;
    // All-zero-mask modules probe a constant (all-zero) key: the lookup
    // result is resolved once per run.
    bool constant = false;
    bool constant_hit = false;
    const VliwEntry* constant_vliw = nullptr;
    const VliwPlan* constant_vliw_plan = nullptr;
  };

  /// Resolves `ctx` for a run of `run_len` consecutive packets of
  /// `module`.  For constant-key modules the lookup happens here — once
  /// — and every CAM/stage counter is advanced by the full run length,
  /// exactly matching what per-packet probing would have recorded.
  void BeginRun(ModuleId module, std::size_t run_len, ModuleRunContext& ctx);

  /// Processes one packet of the run `ctx` was resolved for.  Performs
  /// no overlay-table or segment-table reads.  Byte-identical to
  /// ProcessInPlace (pinned by the execution-plan differential suite).
  void ProcessRun(Phv& phv, const ModuleRunContext& ctx);

 private:
  [[nodiscard]] const KeyPlan& PlanFor(std::size_t row);
  /// MaskedKeyIntoWith body for callers that already hold the plan (the
  /// in-place hot path fetches it once per packet for the one-word
  /// check and must not pay a second overlay IndexFor/PlanFor here).
  void MaskedKeyWithPlan(const KeyExtractorEntry& kx, const KeyMaskEntry& mask,
                         const KeyPlan& plan, const Phv& phv, BitVec& key);

  OverlayTable<KeyExtractorEntry> key_extractor_;
  OverlayTable<KeyMaskEntry> key_mask_;
  ExactMatchCam cam_;
  TernaryCam tcam_;
  std::vector<VliwEntry> vliw_table_ =
      std::vector<VliwEntry>(params::kVliwTableDepth);
  /// Compiled form of each VLIW row (active slots + snapshot-elision
  /// safety), rebuilt eagerly by WriteVliw — the sole mutation path.
  std::vector<VliwPlan> vliw_plans_ =
      std::vector<VliwPlan>(params::kVliwTableDepth);
  StatefulMemory stateful_;
  u64 hits_ = 0;
  u64 misses_ = 0;
  u64 vliw_version_ = 0;
  // Scratch buffers reused across packets by ProcessInPlace (never part
  // of the stage's observable configuration state).
  BitVec key_scratch_;
  Phv snapshot_scratch_;
  std::vector<KeyPlan> key_plans_ =
      std::vector<KeyPlan>(params::kOverlayTableDepth);
};

}  // namespace menshen
