// One match-action stage (Figure 4).
//
// Per packet: (1) the key extractor overlay entry for the packet's module
// builds the 193-bit key (including the predicate bit); (2) the key mask
// overlay entry zeroes the bits that do not participate; (3) the masked
// key, augmented with the module ID, is looked up in the exact-match CAM;
// (4) on a hit, the matching address indexes the VLIW action table and the
// action engine executes the instruction, possibly touching this stage's
// stateful memory through the segment table.
#pragma once

#include <optional>
#include <vector>

#include "phv/phv.hpp"
#include "pipeline/action_engine.hpp"
#include "pipeline/entries.hpp"
#include "pipeline/exact_match.hpp"
#include "pipeline/overlay_table.hpp"
#include "pipeline/stateful.hpp"
#include "pipeline/tcam.hpp"

namespace menshen {

class Stage {
 public:
  /// Processes one PHV; returns the (possibly new) PHV for the next stage.
  [[nodiscard]] Phv Process(const Phv& phv);

  /// Batched hot path: transforms `phv` in place, reusing this stage's
  /// scratch key/snapshot buffers so no per-packet allocation happens.
  /// Functionally identical to `phv = Process(phv)` (pinned by the
  /// dataplane differential test).
  void ProcessInPlace(Phv& phv);

  [[nodiscard]] OverlayTable<KeyExtractorEntry>& key_extractor() {
    return key_extractor_;
  }
  [[nodiscard]] OverlayTable<KeyMaskEntry>& key_mask() { return key_mask_; }
  [[nodiscard]] ExactMatchCam& cam() { return cam_; }
  [[nodiscard]] TernaryCam& tcam() { return tcam_; }
  [[nodiscard]] std::vector<VliwEntry>& vliw_table() { return vliw_table_; }
  [[nodiscard]] StatefulMemory& stateful() { return stateful_; }

  [[nodiscard]] const ExactMatchCam& cam() const { return cam_; }
  [[nodiscard]] const TernaryCam& tcam() const { return tcam_; }
  [[nodiscard]] const StatefulMemory& stateful() const { return stateful_; }
  [[nodiscard]] const OverlayTable<KeyExtractorEntry>& key_extractor() const {
    return key_extractor_;
  }
  [[nodiscard]] const OverlayTable<KeyMaskEntry>& key_mask() const {
    return key_mask_;
  }

  void WriteVliw(std::size_t index, VliwEntry entry);
  [[nodiscard]] const VliwEntry& VliwAt(std::size_t index) const;

  /// The key the stage would look up for this PHV, after masking — exposed
  /// for tests and the compiler's entry generation.
  [[nodiscard]] BitVec MaskedKeyFor(const Phv& phv) const;

  /// Hot-path equivalent of MaskedKeyFor: builds the masked key into
  /// `key` using the per-module key-layout plan cache, which skips the
  /// slots (and the predicate evaluation) the module's key mask zeroes
  /// anyway.  Plans invalidate automatically on key-extractor or key-mask
  /// writes (overlay-table versioning).
  void MaskedKeyInto(const Phv& phv, BitVec& key);

  /// Variant for callers that already looked the module's entries up
  /// (the per-packet hot path, which needs `kx` for the match-kind bit
  /// anyway) — performs no overlay-table reads itself.
  void MaskedKeyIntoWith(const KeyExtractorEntry& kx, const KeyMaskEntry& mask,
                         const Phv& phv, BitVec& key);

  // Observability.
  [[nodiscard]] u64 hits() const { return hits_; }
  [[nodiscard]] u64 misses() const { return misses_; }

 private:
  /// Cached per-overlay-row key layout, derived from the row's key
  /// extractor and key mask: which of the six key slots have any unmasked
  /// bit, and whether the predicate bit can ever reach the lookup.  Saves
  /// rebuilding the full 193-bit key per stage for the (common) modules
  /// that match on one or two fields.
  struct KeyPlan {
    u64 built_at_version = ~u64{0};  // kx.version() + mask.version() stamp
    bool skip_extraction = false;    // all-zero mask: key is forced to zero
    u8 active_slots = 0;             // bit i: slot i survives the mask
    bool pred_active = false;        // mask keeps bit 0 and a CmpOp is set
    // One-word fast path: every kept mask bit lies in key word 0, so the
    // masked key is fully described by a u64 and exact-match lookup is an
    // integer hash probe (ExactMatchCam::LookupWord) — no BitVec build.
    bool one_word = false;
    u64 word_mask = 0;  // mask word 0 (valid when one_word)
  };
  [[nodiscard]] const KeyPlan& PlanFor(std::size_t row);
  /// MaskedKeyIntoWith body for callers that already hold the plan (the
  /// in-place hot path fetches it once per packet for the one-word
  /// check and must not pay a second overlay IndexFor/PlanFor here).
  void MaskedKeyWithPlan(const KeyExtractorEntry& kx, const KeyMaskEntry& mask,
                         const KeyPlan& plan, const Phv& phv, BitVec& key);

  OverlayTable<KeyExtractorEntry> key_extractor_;
  OverlayTable<KeyMaskEntry> key_mask_;
  ExactMatchCam cam_;
  TernaryCam tcam_;
  std::vector<VliwEntry> vliw_table_ =
      std::vector<VliwEntry>(params::kVliwTableDepth);
  StatefulMemory stateful_;
  u64 hits_ = 0;
  u64 misses_ = 0;
  // Scratch buffers reused across packets by ProcessInPlace (never part
  // of the stage's observable configuration state).
  BitVec key_scratch_;
  Phv snapshot_scratch_;
  std::vector<KeyPlan> key_plans_ =
      std::vector<KeyPlan>(params::kOverlayTableDepth);
};

}  // namespace menshen
