// Specialized straight-line kernels for compiled execution plans.
//
// PR 5 compiled per-packet work into interpreted plan data; this layer
// removes the remaining per-step dispatch.  Every compiled
// ModuleExecPlan is classified into a small enumerable shape — step
// count (stages that actually contribute work this run) × stateful /
// stateless × single-slot / multi-slot × one-word-exact vs
// wide-or-ternary — and each module run dispatches to a templated
// straight-line kernel instantiated per shape.  A kernel fuses the
// whole per-packet loop — planned parse byte-moves, key-word
// extraction, hash probe, VLIW effect application with snapshot
// elision, planned deparse — into one function with a single pass over
// the PHV: the step count is a compile-time constant (the stage loop
// unrolls), single-slot rows skip the snapshot and the slot loop, and
// constant-miss stages are compiled out of the run entirely.
//
// Selection happens once per module run, from the run contexts
// Stage::BeginRun resolved; invalidation therefore rides the exact same
// summed config-version stamps the execution plans already use.  The
// one shape class with no registered kernel — wide_or_ternary — routes
// to the interpreted plan path (Pipeline::RunOne), which also survives
// as the differential reference for every kernel
// (tests/test_kernels.cpp pins byte-identity; the exhaustiveness unit
// pins that no other shape can silently fall through).
//
// Counter exactness: probes are quiet (no per-packet atomics) and each
// step accumulates its hit/miss outcomes into run-local fields; one
// flush per run (FlushKernelCounters) advances the CAM lookup/hit and
// stage hit/miss counters by the identical totals per-packet
// interpretation would have recorded — the same bulk discipline the
// flow-verdict cache already uses.  Constant-key stages were already
// accounted by BeginRun.
//
// Each probing step also memoizes its last (key -> outcome) pair: a run
// never spans a configuration change, so a repeated key — the common
// case under zipfian flow locality — replays the previous outcome
// without re-hashing.  Counters still advance per packet.
#pragma once

#include <array>
#include <cstddef>
#include <unordered_map>
#include <vector>

#include "packet/packet.hpp"
#include "phv/phv.hpp"
#include "pipeline/exec_plan.hpp"
#include "pipeline/flow_cache.hpp"
#include "pipeline/params.hpp"
#include "pipeline/stage.hpp"

namespace menshen {

struct PipelineResult;  // pipeline.hpp (kernels.cpp sees the full type)
class ArenaPacket;      // packet/arena.hpp (streaming kernels)

/// Shape id: bits [2:0] step count (0..kNumStages), bit 3 stateful,
/// bit 4 multi-slot, bit 5 wide-or-ternary.  64 ids; the registry holds
/// a kernel for every id a run can actually present (steps <=
/// kNumStages, wide bit clear) and nullptr — meaning "interpreted plan
/// fallback" — for the rest.
inline constexpr std::size_t kKernelShapeCount = 64;

[[nodiscard]] constexpr u8 KernelShapeId(u8 steps, bool stateful,
                                         bool multi_slot,
                                         bool wide_or_ternary) {
  return static_cast<u8>((steps & 0x7u) | (stateful ? 0x08u : 0u) |
                         (multi_slot ? 0x10u : 0u) |
                         (wide_or_ternary ? 0x20u : 0u));
}
/// Human-readable shape label, e.g. "s2+stateful" or "wide/ternary:s1"
/// (stats dumps and the CI shape-distribution artifact).
[[nodiscard]] const char* KernelShapeName(u8 shape);

/// One stage's contribution to a kernel run.  Two forms:
///  - probe (constant == false): extract the one-word key from the
///    evolving PHV, hash-probe the per-module CAM shadow index, apply
///    the matched row's compiled VLIW plan;
///  - constant apply (constant == true): the lookup was resolved (and
///    fully accounted) by Stage::BeginRun — only the action runs.
/// Constant *misses* never become steps at all.
struct KernelStep {
  const KeyExtractorEntry* kx = nullptr;
  // Precompiled word-0 extraction (raw PHV loads, no container
  // resolution); key_nparts == -1 falls back to kx->ExtractKeyWord0
  // (predicate-comparing extractors).
  std::array<KeyExtractorEntry::Word0Part, 3> key_parts{};
  int key_nparts = -1;
  ExactMatchCam::WordIndexHandle word_index = nullptr;
  const VliwEntry* vliw_table = nullptr;
  const VliwPlan* vliw_plans = nullptr;
  u64 word_mask = 0;
  u8 active_slots = 0;
  bool pred_active = false;
  bool constant = false;
  const VliwEntry* const_vliw = nullptr;
  const VliwPlan* const_plan = nullptr;
  StatefulMemory::Segment segment;
  u8 stage = 0;  // owning stage index (counter flush)
  // Last-probe memo (probe form only): valid for the rest of the run,
  // because run contexts never span a configuration change.
  u64 memo_key = 0;
  u32 memo_addr = 0;
  bool memo_valid = false;
  bool memo_hit = false;
  // Run-local counter accumulators (probe form only).  The CAM deltas
  // derive from the same pair: lookups = hits + misses.
  u64 hits = 0;
  u64 misses = 0;
};

/// One module run's compiled kernel input: the surviving steps plus the
/// module's parse/deparse plans.  Reused across runs by the pipeline.
struct KernelRun {
  std::array<KernelStep, params::kNumStages> steps{};
  u8 num_steps = 0;
  const ParsePlan* parse = nullptr;
  const DeparsePlan* deparse = nullptr;
};

/// Per-run packet span a kernel executes: `idx[0..n)` are indices into
/// `batch`/`out` (the pipeline's classified data-packet order).
struct KernelBatchCtx {
  Packet* batch = nullptr;
  PipelineResult* out = nullptr;
  const u32* idx = nullptr;
  std::size_t n = 0;
  const std::unordered_map<u16, std::vector<u16>>* mcast = nullptr;
  u64* fwd = nullptr;
  u64* drop = nullptr;
  Phv* snapshot = nullptr;  // multi-slot VLIW snapshot scratch
};

using KernelFn = void (*)(KernelRun&, const KernelBatchCtx&);

/// The kernel registry: one slot per shape id.  nullptr = no registered
/// kernel, route to the interpreted plan path.
[[nodiscard]] const std::array<KernelFn, kKernelShapeCount>& KernelRegistry();

/// Streaming variant of KernelBatchCtx: the run's packets are arena
/// buffers mutated in place — no PipelineResult, no PHV copy-out, no
/// packet move.  `work` is the pipeline's reused per-packet PHV scratch
/// (Clear()ed per packet by the kernel); everything else mirrors the
/// batched context.
struct StreamBatchCtx {
  ArenaPacket* const* pkts = nullptr;
  const u32* idx = nullptr;
  std::size_t n = 0;
  const std::unordered_map<u16, std::vector<u16>>* mcast = nullptr;
  u64* fwd = nullptr;
  u64* drop = nullptr;
  Phv* snapshot = nullptr;  // multi-slot VLIW snapshot scratch
  Phv* work = nullptr;      // per-packet PHV scratch
};

using StreamKernelFn = void (*)(KernelRun&, const StreamBatchCtx&);

/// Streaming kernel registry: same shape ids, same step machinery
/// (RunStep is shared), nullptr = interpreted streaming fallback.
[[nodiscard]] const std::array<StreamKernelFn, kKernelShapeCount>&
StreamKernelRegistry();

/// Compiles the per-stage run contexts BeginRun resolved into a kernel
/// step list.  Returns false — interpreter fallback — iff some probing
/// stage needs the wide-key or ternary machinery (exactly the plans
/// whose KernelShape has wide_or_ternary set; the exhaustiveness test
/// pins the equivalence).
[[nodiscard]] bool BuildKernelRun(const Stage* stages, std::size_t num_stages,
                                  const Stage::ModuleRunContext* ctx,
                                  const ModuleExecPlan& plan, KernelRun& kr);

/// Flushes the run-local accumulators after a kernel run: CAM
/// lookup/hit and stage hit/miss counters advance by exactly what
/// per-packet probing would have recorded.
void FlushKernelCounters(Stage* stages, KernelRun& kr);

/// Straight-line verdict fill for the flow-cache miss path: for
/// eligible rows whose probing stages are all exact (non-ternary), runs
/// the fused quiet-probe/record/apply loop instead of the interpreted
/// BuildVerdict walk.  Returns false — caller falls back to
/// BuildVerdict — when some stage is ternary.
[[nodiscard]] bool KernelRecordVerdict(const FlowRowState& row,
                                       const Stage* stages,
                                       std::size_t num_stages, ModuleId module,
                                       Phv& phv, FlowVerdict& v);

}  // namespace menshen
