// VLIW action engine (sections 3.1, 4.1).
//
// One ALU per PHV container (25 in total): slot i of the VLIW instruction
// controls the ALU whose output is hard-wired to container i, so no output
// crossbar is needed.  The input crossbar lets each ALU read any container.
// All ALUs read the *incoming* PHV and their outputs form the *new* PHV —
// true VLIW semantics, which the engine preserves by evaluating every slot
// against a snapshot before committing any write.
//
// Slot 24 is the metadata ALU; it executes the platform ops (`port`,
// `discard`) and can also `set`/`load`/... into the user metadata scratch.
#pragma once

#include "phv/phv.hpp"
#include "pipeline/entries.hpp"
#include "pipeline/stateful.hpp"

namespace menshen {

class ActionEngine {
 public:
  /// Executes all 25 slots of `vliw` against `phv`, using `state` for the
  /// stateful ops.  Returns the new PHV.
  [[nodiscard]] static Phv Execute(const VliwEntry& vliw, const Phv& phv,
                                   StatefulMemory& state);

  /// In-place variant for the batched hot path: snapshots `phv` into the
  /// caller-owned `snapshot` buffer (preserving the all-ALUs-read-the-
  /// incoming-PHV VLIW semantics) and commits the outputs directly into
  /// `phv`.  Equivalent to `phv = Execute(vliw, phv, state)` without the
  /// return-value copy.
  static void ExecuteInPlace(const VliwEntry& vliw, Phv& phv, Phv& snapshot,
                             StatefulMemory& state);

 private:
  /// Reads the value of flat container slot `flat` from `phv` (slot 24
  /// reads the user metadata scratch word).
  [[nodiscard]] static u64 ReadSlot(const Phv& phv, u8 flat);
  static void WriteSlot(Phv& phv, u8 flat, u64 value);

  /// Shared core: evaluates every slot against the `in` snapshot and
  /// writes results into `out` (callers guarantee `out` starts equal to
  /// `in`, so kNop slots keep the incoming value).
  static void Apply(const VliwEntry& vliw, const Phv& in, Phv& out,
                    StatefulMemory& state);
};

}  // namespace menshen
