// VLIW action engine (sections 3.1, 4.1).
//
// One ALU per PHV container (25 in total): slot i of the VLIW instruction
// controls the ALU whose output is hard-wired to container i, so no output
// crossbar is needed.  The input crossbar lets each ALU read any container.
// All ALUs read the *incoming* PHV and their outputs form the *new* PHV —
// true VLIW semantics, which the engine preserves by evaluating every slot
// against a snapshot before committing any write.
//
// Slot 24 is the metadata ALU; it executes the platform ops (`port`,
// `discard`) and can also `set`/`load`/... into the user metadata scratch.
#pragma once

#include <array>

#include "phv/phv.hpp"
#include "pipeline/entries.hpp"
#include "pipeline/stateful.hpp"

namespace menshen {

/// Compiled form of one VLIW entry: the active slot indices (so execution
/// touches only them instead of scanning all 25), and whether the entry
/// can execute directly against the PHV without the incoming-value
/// snapshot — true when no active slot's used operand names a container
/// an *earlier* active slot writes, so every read still observes the
/// incoming value.  Rebuilt by Stage::WriteVliw (the sole mutation path).
struct VliwPlan {
  std::array<u8, kNumAluContainers> active{};  // active slot indices, ascending
  u8 count = 0;
  bool in_place_safe = true;

  [[nodiscard]] static VliwPlan Compile(const VliwEntry& vliw);
};

class ActionEngine {
 public:
  /// Executes all 25 slots of `vliw` against `phv`, using `state` for the
  /// stateful ops.  Returns the new PHV.
  [[nodiscard]] static Phv Execute(const VliwEntry& vliw, const Phv& phv,
                                   StatefulMemory& state);

  /// In-place variant for the batched hot path: snapshots `phv` into the
  /// caller-owned `snapshot` buffer (preserving the all-ALUs-read-the-
  /// incoming-PHV VLIW semantics) and commits the outputs directly into
  /// `phv`.  Equivalent to `phv = Execute(vliw, phv, state)` without the
  /// return-value copy.
  static void ExecuteInPlace(const VliwEntry& vliw, Phv& phv, Phv& snapshot,
                             StatefulMemory& state);

  /// Compiled-plan variant (the module-run hot path): walks only the
  /// plan's active slots and skips the PHV snapshot entirely when the
  /// plan proved it safe.  `segment` is the module's stateful segment
  /// resolved once per run.  Behaviour is identical to ExecuteInPlace
  /// (pinned by the execution-plan differential suite).  Inline (with
  /// the slot core below): this is the innermost per-hit work.
  static void ExecuteCompiled(const VliwEntry& vliw, const VliwPlan& plan,
                              Phv& phv, Phv& snapshot,
                              const StatefulMemory::Segment& segment) {
    if (plan.count == 0) return;
    const Phv* in = &phv;
    if (!plan.in_place_safe) {
      snapshot = phv;
      in = &snapshot;
    }
    for (std::size_t k = 0; k < plan.count; ++k) {
      const u8 slot = plan.active[k];
      ApplySlot(vliw.slots[slot], slot, *in, phv, segment);
    }
  }

  /// Single-slot fast path for the kernel layer: a row whose compiled
  /// plan has exactly one active slot is always in_place_safe (there is
  /// no earlier slot whose write an operand could observe), so it
  /// executes with no snapshot and no slot loop.  Operands are read
  /// before any write inside ApplySlot, so in == out is sound.
  static void ApplySingleSlot(const AluAction& a, u8 dst, Phv& phv,
                              const StatefulMemory::Segment& segment) {
    ApplySlot(a, dst, phv, phv, segment);
  }

 private:
  /// Reads the value of flat container slot `flat` from `phv` (slot 24
  /// reads the user metadata scratch word).
  [[nodiscard]] static u64 ReadSlot(const Phv& phv, u8 flat) {
    if (const auto c = FlatToContainer(flat)) return phv.Read(*c);
    return phv.meta_u16(meta::kUser);
  }
  static void WriteSlot(Phv& phv, u8 flat, u64 value) {
    if (const auto c = FlatToContainer(flat)) {
      phv.Write(*c, value);
    } else {
      phv.set_meta_u16(meta::kUser, static_cast<u16>(value));
    }
  }

  /// Executes one slot: operands from `in`, results into `out`.
  static void ApplySlot(const AluAction& a, u8 dst, const Phv& in, Phv& out,
                        const StatefulMemory::Segment& state) {
    // Operands always come from the *incoming* PHV snapshot.
    const u64 v1 = ReadSlot(in, a.container1);
    const u64 v2 = ReadSlot(in, a.container2);

    switch (a.op) {
      case AluOp::kNop:
        break;
      case AluOp::kAdd:
        WriteSlot(out, dst, v1 + v2);
        break;
      case AluOp::kSub:
        WriteSlot(out, dst, v1 - v2);
        break;
      case AluOp::kAddi:
        WriteSlot(out, dst, v1 + a.immediate);
        break;
      case AluOp::kSubi:
        WriteSlot(out, dst, v1 - a.immediate);
        break;
      case AluOp::kSet:
        WriteSlot(out, dst, a.immediate);
        break;
      case AluOp::kLoad:
        WriteSlot(out, dst, state.Load(a.immediate));
        break;
      case AluOp::kStore:
        state.Store(a.immediate, v1);
        break;
      case AluOp::kLoadd:
        WriteSlot(out, dst, state.LoadAddStore(a.immediate));
        break;
      case AluOp::kPort:
        out.set_meta_u16(meta::kDstPort, a.immediate);
        break;
      case AluOp::kDiscard:
        out.set_discard_flag(true);
        break;
      case AluOp::kCopy:
        WriteSlot(out, dst, v1);
        break;
      case AluOp::kLoadc:
        WriteSlot(out, dst, state.Load(v2));
        break;
      case AluOp::kStorec:
        state.Store(v2, v1);
        break;
      case AluOp::kLoaddc:
        WriteSlot(out, dst, state.LoadAddStore(v2));
        break;
      case AluOp::kMcast:
        out.set_meta_u16(meta::kMulticastGroup, a.immediate);
        break;
    }
  }

  /// Shared core: evaluates every slot against the `in` snapshot and
  /// writes results into `out` (callers guarantee `out` starts equal to
  /// `in`, so kNop slots keep the incoming value).
  static void Apply(const VliwEntry& vliw, const Phv& in, Phv& out,
                    const StatefulMemory::Segment& state);
};

}  // namespace menshen
