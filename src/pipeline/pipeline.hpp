// The Menshen pipeline (Figure 2): packet filter -> programmable parser ->
// N match-action stages -> deparser, plus the daisy-chain configuration
// sink.  This class implements the *functional* behaviour; per-cycle
// timing lives in sim/ (the timing model shares this object's structural
// parameters).
#pragma once

#include <array>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/counters.hpp"
#include "packet/packet.hpp"
#include "phv/phv.hpp"
#include "pipeline/config_write.hpp"
#include "pipeline/exec_plan.hpp"
#include "pipeline/flow_cache.hpp"
#include "pipeline/kernels.hpp"
#include "pipeline/packet_filter.hpp"
#include "pipeline/params.hpp"
#include "pipeline/parser.hpp"
#include "pipeline/stage.hpp"

namespace menshen {

/// Outcome of running one packet through the pipeline.
struct PipelineResult {
  FilterVerdict filter_verdict = FilterVerdict::kData;
  /// Present iff the packet traversed the match-action pipeline.
  std::optional<Packet> output;
  /// PHV as it left the last stage (for inspection by tests/examples).
  std::optional<Phv> final_phv;
  /// Execution-ladder tier that resolved the packet (common/
  /// exec_tier.hpp ExecTier as u8; kNone for filtered packets) and the
  /// stages/steps that tier visited — telemetry sidebands.
  u8 exec_tier = 0;
  u8 exec_steps = 0;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineTiming timing = OptimizedTiming(),
                    bool reconfig_on_data_path = true);

  /// Runs one data packet through filter, parser, stages and deparser.
  /// Reconfiguration packets reaching the filter from the data path are
  /// NOT applied here — the caller (config/DaisyChain) owns that path.
  /// Uses the compiled execution plans (a run of length one); identical
  /// per packet to the batched path below.
  PipelineResult Process(Packet pkt);

  /// The unplanned reference path: linear full parse, per-packet overlay
  /// reads in every stage, linear full deparse.  Retained as the
  /// differential reference the compiled-plan path is pinned against
  /// (tests/test_exec_plan.cpp compares every tenant-observable output).
  /// Dead-container PHV bytes may differ from the planned path — they
  /// are exactly what liveness pruning proves unobservable.
  PipelineResult ProcessUnplanned(Packet pkt);

  /// Batched hot path: processes every packet of `batch` in order,
  /// appending one PipelineResult per packet to `out`.  Packets are moved
  /// into their results, and one PHV plus the per-stage scratch buffers
  /// are reused across the whole batch, so the steady state performs no
  /// per-packet allocation.  The batch is executed as *module runs* —
  /// maximal spans of consecutive same-tenant data packets — with the
  /// per-stage overlay lookups, key plans, stateful segment bases and
  /// the module's parse/deparse plans resolved once per run.  Behaviour
  /// per packet is identical to Process() (pinned by the dataplane
  /// differential test).
  void ProcessBatchInto(std::vector<Packet>&& batch,
                        std::vector<PipelineResult>& out);

  /// Convenience wrapper returning a fresh result vector.
  [[nodiscard]] std::vector<PipelineResult> ProcessBatch(
      std::vector<Packet>&& batch);

  /// Streaming hot path: processes a burst of arena packets in place, in
  /// order — no PipelineResult, no PHV copy-out, no packet move.  Each
  /// packet's bytes are rewritten by the planned deparse and its verdict
  /// / disposition / egress sidebands are filled for the caller to act
  /// on (enqueue to egress, recycle on drop).  Runs the same fused
  /// classify + module-run structure as ProcessBatchInto over the same
  /// three-tier ladder (flow-verdict cache -> specialized kernels ->
  /// interpreted plans), so tenant-observable bytes are identical to the
  /// batched path (pinned by tests/test_stream.cpp).
  void ProcessStreamBurst(ArenaPacket* const* pkts, std::size_t n);

  /// The compiled execution plan for `module`'s overlay row, rebuilt
  /// when any of the configuration version counters it derives from
  /// (parser/deparser tables, key extractors/masks, CAM/TCAM entries,
  /// VLIW tables) has moved — every configuration path bumps one, so
  /// epoch commits, overlay rewrites and ResizeShards config-log replay
  /// all invalidate coherently.  Exposed for tests and benchmarks.
  [[nodiscard]] const ModuleExecPlan& ExecPlanFor(ModuleId module);

  /// The flow-verdict cache state for `module`'s overlay row, refreshed
  /// to the current configuration (same stamp discipline as ExecPlanFor).
  /// Exposed for tests; the batched path refreshes rows itself.
  [[nodiscard]] FlowRowState& FlowRowFor(ModuleId module);

  /// Per-shard flow-verdict cache (pipeline/flow_cache.hpp).  Mutable
  /// access is a test/bench knob (capacity); stats are safe to read
  /// concurrently via FlowCacheStats' relaxed counters.
  [[nodiscard]] FlowVerdictCache& flow_cache() { return flow_cache_; }
  [[nodiscard]] FlowCacheStats FlowCacheSnapshot() const {
    return flow_cache_.Snapshot();
  }

  /// Specialized-kernel dispatch knob (pipeline/kernels.hpp).  On by
  /// default; tests disable it to pin the kernels byte-identical to the
  /// interpreted plan path on the same object.
  void SetKernelsEnabled(bool enabled) { kernels_enabled_ = enabled; }
  [[nodiscard]] bool kernels_enabled() const { return kernels_enabled_; }

  /// Burst-probe dispatch knob: phase-structured flow-cache probing on
  /// eligible spans (gather every lane's key words, hashed probe with
  /// slot prefetch-ahead, replay hits / resolve compacted fallback
  /// lanes in order — FlowVerdictCache::BurstProbe).  On by default;
  /// the per-packet scalar probe is retained as the differential
  /// reference (tests/test_burst_probe.cpp pins the two byte- and
  /// counter-identical).
  void SetBurstProbeEnabled(bool enabled) { burst_probe_enabled_ = enabled; }
  [[nodiscard]] bool burst_probe_enabled() const {
    return burst_probe_enabled_;
  }

  /// Kernel-dispatch statistics (relaxed counters: safe to read while a
  /// shard worker is mid-batch).
  struct KernelStats {
    u64 pkts = 0;           // packets executed by a specialized kernel
    u64 fallback_pkts = 0;  // packets interpreted (wide/ternary rows)
    u64 record_fills = 0;   // flow-cache misses filled by the recording kernel
    std::array<u64, kKernelShapeCount> shape_pkts{};  // pkts per shape id
  };
  [[nodiscard]] KernelStats KernelSnapshot() const;

  /// Compiles (without caching) the execution plan for `module`'s
  /// overlay row — a const observability hook: stats dumps read the
  /// flow-cache blocker and kernel shape of every active tenant without
  /// touching the plan cache.
  [[nodiscard]] ModuleExecPlan DescribeRow(ModuleId module) const;

  /// Applies one configuration write (arriving via the daisy chain or
  /// AXI-L) to the addressed resource, and bumps the filter's
  /// reconfiguration packet counter.
  void ApplyWrite(const ConfigWrite& write);

  [[nodiscard]] PacketFilter& filter() { return filter_; }
  [[nodiscard]] const PacketFilter& filter() const { return filter_; }
  [[nodiscard]] Parser& parser() { return parser_; }
  [[nodiscard]] const Parser& parser() const { return parser_; }
  [[nodiscard]] Deparser& deparser() { return deparser_; }
  [[nodiscard]] const Deparser& deparser() const { return deparser_; }
  [[nodiscard]] Stage& stage(std::size_t i) { return stages_.at(i); }
  [[nodiscard]] const Stage& stage(std::size_t i) const {
    return stages_.at(i);
  }
  [[nodiscard]] std::size_t num_stages() const { return stages_.size(); }
  [[nodiscard]] const PipelineTiming& timing() const { return timing_; }

  /// Multicast group table (owned by the traffic manager / system-level
  /// module, section 3.3): group number -> replication port list.
  void SetMulticastGroup(u16 group, std::vector<u16> ports);
  [[nodiscard]] const std::vector<u16>* MulticastGroup(u16 group) const;

  // Per-module forwarded/dropped counters (control-plane statistics).
  [[nodiscard]] u64 forwarded(ModuleId m) const;
  [[nodiscard]] u64 dropped(ModuleId m) const;
  [[nodiscard]] u64 total_processed() const { return total_processed_; }
  [[nodiscard]] u64 config_writes_applied() const { return config_writes_; }

  /// Every module ID that has a nonzero forwarded or dropped counter,
  /// sorted ascending — the control plane's tenant inventory.
  [[nodiscard]] std::vector<ModuleId> ActiveModules() const;

 private:
  /// Sum of every configuration version counter an execution plan
  /// derives from — monotonic, so a stale plan can never alias a
  /// current stamp.
  [[nodiscard]] u64 ConfigVersionSum() const;
  /// Runs one already-classified data packet through parse, stages and
  /// deparse under the resolved run contexts, filling `result`.
  void RunOne(Packet& pkt, PipelineResult& result, const ModuleExecPlan& plan,
              u64& fwd, u64& drop);
  /// Cached-row variant of RunOne: parse, probe the flow-verdict cache,
  /// replay (or build) the verdict, deparse.  Never calls ProcessRun;
  /// counter deltas accumulate into `acct` (flushed once per run).
  void RunOneCached(Packet& pkt, PipelineResult& result,
                    const ModuleExecPlan& plan, FlowRowState& frow,
                    FlowVerdictCache::RunAccounting& acct, ModuleId module,
                    u64& fwd, u64& drop);
  /// Replay tail of RunOneCached for a verdict already resolved for the
  /// whole run (all-constant rows: every packet shares the all-zero key
  /// words, so per-packet extraction/hashing/probing is redundant).
  /// Callers account hits and counter deltas at run level.
  void RunOneReplay(Packet& pkt, PipelineResult& result,
                    const ModuleExecPlan& plan, const FlowVerdict& v, u64& fwd,
                    u64& drop);
  /// Executes one module run (the `idx[0..n)` packets of `batch`, with
  /// results at the same indices of `out`) through the specialized
  /// kernel selected for the run's shape, or through the interpreted
  /// RunOne loop when the shape has no registered kernel (wide/ternary)
  /// or kernels are disabled.  BeginRun must already have resolved the
  /// run contexts.
  void RunSpan(Packet* batch, PipelineResult* out, const u32* idx,
               std::size_t n, const ModuleExecPlan& plan, u64& fwd,
               u64& drop);
  /// Streaming siblings of RunOne/RunOneCached/RunSpan: arena packets
  /// mutated in place through `stream_phv_` (one reused scratch PHV per
  /// pipeline — the streaming path emits no PHV).
  void StreamRunOne(ArenaPacket& pkt, const ModuleExecPlan& plan, u64& fwd,
                    u64& drop);
  void StreamRunOneCached(ArenaPacket& pkt, const ModuleExecPlan& plan,
                          FlowRowState& frow,
                          FlowVerdictCache::RunAccounting& acct,
                          ModuleId module, u64& fwd, u64& drop);
  void StreamRunSpan(ArenaPacket* const* pkts, const u32* idx, std::size_t n,
                     const ModuleExecPlan& plan, u64& fwd, u64& drop);
  /// Post-probe tails shared by the scalar and burst cached paths:
  /// resolve one packet given its probed slot and hit flag — replay on
  /// a hit, fill through the kernel/plan ladder on a miss, then
  /// accounting, multicast, deparse and the fwd/drop counters.  Neither
  /// touches total_processed_; the caller accounts lanes.
  void StreamResolveCached(ArenaPacket& pkt, Phv& phv,
                           const ModuleExecPlan& plan, FlowRowState& frow,
                           FlowVerdictCache::RunAccounting& acct,
                           ModuleId module, FlowVerdict& v, bool hit,
                           const FlowVerdictCache::KeyWordArray& words,
                           u64& fwd, u64& drop);
  void RunResolveCached(Packet& pkt, PipelineResult& result, Phv& phv,
                        const ModuleExecPlan& plan, FlowRowState& frow,
                        FlowVerdictCache::RunAccounting& acct, ModuleId module,
                        FlowVerdict& v, bool hit,
                        const FlowVerdictCache::KeyWordArray& words, u64& fwd,
                        u64& drop);
  /// Burst-probed variants of the eligible-span loops: process the span
  /// in kBurstLanes-sized chunks through the three-phase burst path
  /// (gather -> BurstProbe -> replay hits / resolve fallbacks in lane
  /// order).  Chunk boundaries behave exactly like scalar boundaries —
  /// fills from one chunk are visible to the next chunk's probes — so
  /// outcomes and counters match the scalar loop packet for packet.
  void StreamRunBurstCached(ArenaPacket* const* pkts, const u32* idx,
                            std::size_t n, const ModuleExecPlan& plan,
                            FlowRowState& frow,
                            FlowVerdictCache::RunAccounting& acct,
                            ModuleId module, u64& fwd, u64& drop);
  void BatchRunBurstCached(Packet* batch, PipelineResult* out, const u32* idx,
                           std::size_t n, const ModuleExecPlan& plan,
                           FlowRowState& frow,
                           FlowVerdictCache::RunAccounting& acct,
                           ModuleId module, u64& fwd, u64& drop);

  PipelineTiming timing_;
  PacketFilter filter_;
  Parser parser_;
  std::vector<Stage> stages_;
  Deparser deparser_;
  std::unordered_map<u16, std::vector<u16>> mcast_groups_;
  std::unordered_map<u16, u64> forwarded_;
  std::unordered_map<u16, u64> dropped_;
  u64 total_processed_ = 0;
  u64 config_writes_ = 0;

  /// Execution-plan cache, one slot per overlay row, stamped with
  /// ConfigVersionSum() at build time.
  struct CachedExecPlan {
    u64 built_at_version = ~u64{0};
    ModuleExecPlan plan;
  };
  std::vector<CachedExecPlan> exec_plans_ =
      std::vector<CachedExecPlan>(params::kOverlayTableDepth);

  /// Flow-verdict memoization (stamped like exec_plans_): end-to-end
  /// results for rows whose reachable actions are provably stateless.
  FlowVerdictCache flow_cache_;

  // Batch scratch (ProcessBatchInto): per-stage run contexts and the
  // pass-one data-packet index list.  Never part of observable state.
  std::vector<Stage::ModuleRunContext> run_ctx_ =
      std::vector<Stage::ModuleRunContext>(params::kNumStages);
  std::vector<u32> data_idx_scratch_;

  // Kernel dispatch (pipeline/kernels.hpp): the per-run step list and
  // the multi-slot snapshot scratch are reused across runs; per-shape
  // packet counters feed ShardStats/DumpDataplaneStats.
  bool kernels_enabled_ = true;
  KernelRun kernel_run_;
  Phv kernel_snapshot_scratch_;
  // Streaming scratch PHV (ProcessStreamBurst): Clear()ed and reused per
  // packet — the streaming path never emits a PHV.
  Phv stream_phv_;
  // Burst-probe scratch, sized to one chunk: per-lane gathered key
  // words, probe verdict pointers, compacted fallback lane list, slot
  // indices, and (streaming only — the batched path parses into each
  // result's emplaced PHV) the per-lane parsed PHVs that must survive
  // from the gather phase to the replay phase.
  static constexpr std::size_t kBurstLanes = 64;
  bool burst_probe_enabled_ = true;
  std::array<FlowVerdictCache::KeyWordArray, kBurstLanes> burst_words_{};
  std::array<const FlowVerdict*, kBurstLanes> burst_verdicts_{};
  std::array<u32, kBurstLanes> burst_fallback_{};
  std::array<u32, kBurstLanes> burst_slot_{};
  std::vector<Phv> burst_phv_ = std::vector<Phv>(kBurstLanes);
  RelaxedCounter kernel_pkts_;
  RelaxedCounter kernel_fallback_pkts_;
  RelaxedCounter kernel_record_fills_;
  std::array<RelaxedCounter, kKernelShapeCount> kernel_shape_pkts_;
};

}  // namespace menshen
