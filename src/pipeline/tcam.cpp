#include "pipeline/tcam.hpp"

#include <algorithm>
#include <stdexcept>

namespace menshen {

namespace {

void Append193(ByteBuffer& out, const BitVec& v) {
  for (std::size_t i = 0; i < 25; ++i) {
    const std::size_t lsb = i * 8;
    const std::size_t w = std::min<std::size_t>(8, params::kKeyBits - lsb);
    out.append_u8(static_cast<u8>(v.field(lsb, w)));
  }
}

void Read193(BitVec& v, const ByteBuffer& bytes, std::size_t off) {
  for (std::size_t i = 0; i < 25; ++i) {
    const std::size_t lsb = i * 8;
    const std::size_t w = std::min<std::size_t>(8, params::kKeyBits - lsb);
    v.set_field(lsb, w,
                bytes.u8_at(off + i) & ((w == 8) ? 0xFF : ((1u << w) - 1)));
  }
}

}  // namespace

ByteBuffer TcamEntry::Encode() const {
  ByteBuffer out;
  out.append_u8(valid ? 1 : 0);
  out.append_u16(module.value());
  Append193(out, key);
  Append193(out, mask);
  return out;
}

TcamEntry TcamEntry::Decode(const ByteBuffer& bytes) {
  if (bytes.size() != 53)
    throw std::invalid_argument("TCAM entry must be 53 bytes");
  TcamEntry e;
  e.valid = bytes.u8_at(0) != 0;
  e.module = ModuleId(bytes.u16_at(1) & 0x0FFF);
  Read193(e.key, bytes, 3);
  Read193(e.mask, bytes, 28);
  return e;
}

std::optional<std::size_t> TernaryCam::Lookup(const BitVec& key,
                                              ModuleId module) const {
  lookups_.Add();
  if (key.width() != params::kKeyBits)
    throw std::invalid_argument("TCAM key must be 193 bits");
  const auto sit = spans_.find(module.value());
  if (sit == spans_.end()) return std::nullopt;  // module owns no entries
  const Span span = sit->second;
  for (std::size_t i = span.lo; i <= span.hi; ++i) {
    const TcamEntry& e = entries_[i];
    entries_scanned_.Add();
    if (!e.valid || e.module != module) continue;
    if (key.EqualsMasked(e.key, e.mask)) {
      hits_.Add();
      return i;
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> TernaryCam::LookupQuiet(const BitVec& key,
                                                   ModuleId module,
                                                   u64& scanned) const {
  // Mirrors Lookup exactly — same span narrowing, same early exit — but
  // touches no counters; the caller (flow-cache fill) accounts the probe
  // through NoteCachedLookups when the verdict is applied.
  if (key.width() != params::kKeyBits)
    throw std::invalid_argument("TCAM key must be 193 bits");
  const auto sit = spans_.find(module.value());
  if (sit == spans_.end()) return std::nullopt;  // module owns no entries
  const Span span = sit->second;
  for (std::size_t i = span.lo; i <= span.hi; ++i) {
    const TcamEntry& e = entries_[i];
    ++scanned;
    if (!e.valid || e.module != module) continue;
    if (key.EqualsMasked(e.key, e.mask)) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> TernaryCam::LookupLinear(const BitVec& key,
                                                    ModuleId module) const {
  lookups_.Add();
  if (key.width() != params::kKeyBits)
    throw std::invalid_argument("TCAM key must be 193 bits");
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const TcamEntry& e = entries_[i];
    if (!e.valid || e.module != module) continue;
    if (key.masked(e.mask) == e.key.masked(e.mask)) {
      hits_.Add();
      return i;
    }
  }
  return std::nullopt;
}

void TernaryCam::Write(std::size_t address, TcamEntry entry) {
  if (address >= entries_.size())
    throw std::out_of_range("TCAM address out of range");
  entries_[address] = std::move(entry);
  RebuildSpans();
  ++version_;
}

void TernaryCam::RebuildSpans() {
  // Config path only: rederives each module's valid-entry span from the
  // stored entries.  With the allocator's contiguous per-module regions
  // the span IS the allocated region's occupied part; entries written
  // outside a contiguous block simply widen that module's span.
  spans_.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const TcamEntry& e = entries_[i];
    if (!e.valid) continue;
    const auto [it, inserted] =
        spans_.try_emplace(e.module.value(),
                           Span{static_cast<u32>(i), static_cast<u32>(i)});
    if (!inserted) it->second.hi = static_cast<u32>(i);
  }
}

const TcamEntry& TernaryCam::At(std::size_t address) const {
  if (address >= entries_.size())
    throw std::out_of_range("TCAM address out of range");
  return entries_[address];
}

std::optional<std::size_t> TcamAllocator::Allocate(ModuleId module,
                                                   std::size_t count) {
  if (count == 0 || count > depth_) return std::nullopt;
  if (regions_.contains(module)) return std::nullopt;  // one region each

  // First-fit scan over the gaps between existing regions.
  std::vector<Region> taken;
  taken.reserve(regions_.size());
  for (const auto& [id, r] : regions_) taken.push_back(r);
  std::sort(taken.begin(), taken.end(),
            [](const Region& a, const Region& b) { return a.base < b.base; });

  std::size_t cursor = 0;
  for (const Region& r : taken) {
    if (r.base >= cursor + count) break;
    cursor = std::max(cursor, r.base + r.count);
  }
  if (cursor + count > depth_) return std::nullopt;
  regions_[module] = Region{cursor, count};
  return cursor;
}

void TcamAllocator::Release(ModuleId module) { regions_.erase(module); }

bool TcamAllocator::Owns(ModuleId module, std::size_t address) const {
  const auto it = regions_.find(module);
  if (it == regions_.end()) return false;
  return address >= it->second.base &&
         address < it->second.base + it->second.count;
}

std::optional<TcamAllocator::Region> TcamAllocator::RegionOf(
    ModuleId module) const {
  const auto it = regions_.find(module);
  if (it == regions_.end()) return std::nullopt;
  return it->second;
}

}  // namespace menshen
