#include "pipeline/stateful.hpp"

#include <stdexcept>

namespace menshen {

std::size_t StatefulMemory::Translate(ModuleId module, u64 local) {
  const SegmentEntry seg = segment_table_.Lookup(module);
  if (local >= seg.range) {
    ++violations_[module.value()];
    ++total_violations_;
    return words_.size();  // sentinel: squashed
  }
  const std::size_t phys = static_cast<std::size_t>(seg.offset) +
                           static_cast<std::size_t>(local);
  if (phys >= words_.size()) {
    // A mis-programmed segment (offset+range beyond the memory) is also
    // squashed rather than wrapping into another module's words.
    ++violations_[module.value()];
    ++total_violations_;
    return words_.size();
  }
  return phys;
}

u64 StatefulMemory::Load(ModuleId module, u64 local) {
  const std::size_t phys = Translate(module, local);
  return phys < words_.size() ? words_[phys] : 0;
}

void StatefulMemory::Store(ModuleId module, u64 local, u64 value) {
  const std::size_t phys = Translate(module, local);
  if (phys < words_.size()) words_[phys] = value;
}

u64 StatefulMemory::LoadAddStore(ModuleId module, u64 local) {
  const std::size_t phys = Translate(module, local);
  if (phys >= words_.size()) return 0;
  return ++words_[phys];
}

u64 StatefulMemory::PhysicalAt(std::size_t addr) const {
  if (addr >= words_.size())
    throw std::out_of_range("stateful memory address out of range");
  return words_[addr];
}

void StatefulMemory::PhysicalStore(std::size_t addr, u64 value) {
  if (addr >= words_.size())
    throw std::out_of_range("stateful memory address out of range");
  words_[addr] = value;
}

void StatefulMemory::ZeroRange(std::size_t base, std::size_t count) {
  if (base + count > words_.size())
    throw std::out_of_range("stateful memory range out of range");
  for (std::size_t i = 0; i < count; ++i) words_[base + i] = 0;
}

u64 StatefulMemory::violations(ModuleId module) const {
  const auto it = violations_.find(module.value());
  return it == violations_.end() ? 0 : it->second;
}

}  // namespace menshen
