// PIFO-based inter-module egress scheduling (section 3.5).
//
// Menshen's mechanisms isolate the *pipeline*; competition for output
// link bandwidth is orthogonal traffic management, and the paper points
// at PIFO (Push-In First-Out queues, Sivaraman et al., SIGCOMM 2016):
// assign ranks to packets so that dequeue order realizes a desired
// inter-module bandwidth-sharing policy.  We implement a PIFO block plus
// the classic start-time fair queueing (STFQ) rank computation with
// per-module weights — enough to demonstrate weighted link sharing
// between modules, with ties broken by arrival order (FIFO within rank).
#pragma once

#include <cstddef>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace menshen {

struct PifoEntry {
  u64 rank = 0;
  u64 seq = 0;  // admission order; tie-break for equal ranks
  u16 module = 0;
  std::size_t bytes = 0;

  bool operator>(const PifoEntry& other) const {
    if (rank != other.rank) return rank > other.rank;
    return seq > other.seq;
  }
};

/// The PIFO itself: push anywhere (by rank), pop from the head.
class Pifo {
 public:
  explicit Pifo(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// Returns false (tail drop) when the queue is full.
  bool Push(PifoEntry entry);
  [[nodiscard]] std::optional<PifoEntry> Pop();
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] u64 drops() const { return drops_; }

 private:
  std::size_t capacity_;
  std::priority_queue<PifoEntry, std::vector<PifoEntry>,
                      std::greater<PifoEntry>>
      heap_;
  u64 seq_ = 0;
  u64 drops_ = 0;
};

/// Start-time fair queueing ranks with per-module weights: a packet's
/// rank is max(virtual_time, module_finish); the module's finish time
/// then advances by bytes/weight.  Modules receive link bandwidth in
/// proportion to their weights whenever they are backlogged.
class StfqScheduler {
 public:
  explicit StfqScheduler(std::size_t capacity = 1024) : pifo_(capacity) {}

  /// Sets a module's weight (default 1).
  void SetWeight(ModuleId module, double weight);

  /// Enqueues a packet; returns false on tail drop.
  bool Enqueue(ModuleId module, std::size_t bytes);

  /// Dequeues the next packet to transmit.
  [[nodiscard]] std::optional<PifoEntry> Dequeue();

  [[nodiscard]] u64 drops() const { return pifo_.drops(); }

 private:
  Pifo pifo_;
  std::unordered_map<u16, double> weights_;
  std::unordered_map<u16, u64> finish_;  // per-module virtual finish time
  u64 virtual_time_ = 0;                 // rank of the last dequeued packet
};

}  // namespace menshen
