// Flow-verdict memoization cache.
//
// Production match-action traffic is zipfian: the same (module, masked
// flow key) traverses the identical chain of CAM/TCAM entries and VLIW
// rewrites millions of times.  For overlay rows whose reachable action
// set the execution-plan analysis proves stateless
// (ModuleExecPlan::flow_blocker == kNone: constant ops only, one-word
// masked keys, no predicate reading an action-written container), the
// end-to-end verdict — matched entry per stage, the resulting constant
// effect list, and the per-stage counter deltas — is a pure function of
// the per-stage key words extracted from the freshly parsed PHV.  This
// cache memoizes that function per overlay row, so a hit skips match
// lookup AND action execution entirely: parse, extract the key words,
// one hash probe, replay the recorded effects, deparse.
//
// Soundness sketch (the differential suite in tests/test_flow_cache.cpp
// pins this against ProcessUnplanned): two packets of the same module
// with equal per-stage parsed key words take identical paths.  By
// induction over stages — effects so far are equal, so a container bit
// either carries its parsed value (equal because the masked words are
// equal, predicate operands untouched by eligibility rule 3) or the
// value of an equal recorded effect; hence stage s's *actual* key word,
// extracted from the evolving PHV, is equal too, so the match outcome
// and the appended effects are equal.
//
// Invalidation follows the execution plans: rows are stamped with the
// pipeline's summed config version counters, so direct table writes,
// epoch commits and ResizeShards config-log replay all invalidate
// coherently.  On a stamp move the row's relevant configuration (key
// extractor/mask rows, aliasing CAM/TCAM entries, their VLIW entries) is
// re-snapshotted and deep-compared: only a *change in this row's own
// config* flushes its verdicts, so a hostile tenant thrashing its own
// tables cannot starve another tenant's hit rate (pinned by
// tests/test_isolation_adversarial.cpp).  Multicast port lists have no
// version counter, so only the group id is cached and ports resolve
// live per packet, exactly like the uncached path.
//
// Counter accounting is exact: constant-key (all-zero-mask) stages are
// accounted by Stage::BeginRun for the whole run as before; for probing
// stages each applied verdict accumulates its recorded lookup/hit/
// scanned deltas into a per-run accumulator flushed in one step
// (NoteCachedLookups/NoteCachedOutcomes), so every CAM, TCAM and stage
// counter advances exactly as if each packet had probed.
#pragma once

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/counters.hpp"
#include "phv/phv.hpp"
#include "pipeline/entries.hpp"
#include "pipeline/exec_plan.hpp"
#include "pipeline/params.hpp"
#include "pipeline/tcam.hpp"

namespace menshen {

class Stage;

/// One recorded constant-action effect: what a reachable VLIW slot of an
/// eligible row does to the PHV, independent of the packet.
struct FlowEffect {
  enum class Kind : u8 {
    kSetSlot,  // slot's container (or kUser metadata for slot 24) = value
    kPort,     // metadata kDstPort = value
    kDiscard,  // discard flag set
    kMcast,    // metadata kMulticastGroup = value (ports resolve live)
  };
  Kind kind = Kind::kSetSlot;
  u8 slot = 0;
  u16 value = 0;
  bool operator==(const FlowEffect&) const = default;
};

/// One cached end-to-end verdict, keyed by (module, per-stage key words).
struct FlowVerdict {
  bool valid = false;
  ModuleId module{0};
  std::array<u64, params::kNumStages> words{};
  /// Per-stage match record — the counter deltas one application of this
  /// verdict owes, and the matched entry id for observability.
  struct StageOutcome {
    bool probed = false;  // false: constant-key stage (BeginRun accounts)
    bool hit = false;
    u8 address = 0;   // matched CAM/TCAM entry id (valid when hit)
    u16 scanned = 0;  // TCAM entries examined per probe
  };
  std::array<StageOutcome, params::kNumStages> outcomes{};
  /// Constant effects of every matched stage, in execution order.
  std::vector<FlowEffect> effects;
};

/// Per-stage key recipe for an eligible row, copied out of the stage
/// configuration so the hit path reads no overlay tables (mirrors the
/// stage's private KeyPlan derivation).
struct FlowStageKey {
  bool skip = false;  // all-zero mask: constant key, word is always 0
  bool ternary = false;
  bool pred_active = false;
  u8 active_slots = 0;
  u64 word_mask = 0;
  KeyExtractorEntry kx;
};

/// Deep snapshot of the configuration a row's verdicts derive from.
/// Compared on every stamp move: verdicts survive foreign tenants'
/// reconfiguration (which bumps the global version sum) and flush only
/// when this row's own inputs changed.  Parse/deparse plans are absent
/// deliberately — they run live per packet and never enter the verdict.
struct FlowRowConfig {
  FlowCacheBlocker blocker = FlowCacheBlocker::kNone;
  struct StageConfig {
    KeyExtractorEntry kx;
    KeyMaskEntry mask;
    std::vector<std::pair<u8, CamEntry>> cam;    // (address, entry)
    std::vector<std::pair<u8, TcamEntry>> tcam;  // (address, entry)
    std::vector<std::pair<u8, VliwEntry>> vliw;  // entries at match addresses
    bool operator==(const StageConfig&) const = default;
  };
  std::vector<StageConfig> stages;
  bool operator==(const FlowRowConfig&) const = default;
};

/// One overlay row's cache state.
struct FlowRowState {
  u64 built_at_version = ~u64{0};  // ConfigVersionSum stamp
  bool eligible = false;
  /// Every stage key is constant (all-zero masks — e.g. an unconfigured
  /// tenant): all packets share one all-zero key word array, so a batch
  /// run probes once and replays the verdict without per-packet hashing.
  bool all_constant = false;
  std::array<FlowStageKey, params::kNumStages> keys{};
  FlowRowConfig config;
  std::vector<FlowVerdict> slots;  // direct-mapped; empty until first fill
  u32 live = 0;                    // valid slots (occupancy bookkeeping)
};

/// Cumulative cache statistics (relaxed counters: safe to read while the
/// owning shard worker is mid-batch).
struct FlowCacheStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 evictions = 0;  // conflict replacements (not invalidation flushes)
  u64 occupancy = 0;  // valid slots across all rows, right now
  u64 burst_probe_pkts = 0;    // lanes probed through BurstProbe
  u64 burst_fallback_pkts = 0; // lanes compacted into the fallback list
};

class FlowVerdictCache {
 public:
  using KeyWordArray = std::array<u64, params::kNumStages>;

  /// Returns `row`'s cache state, refreshed for the configuration stamp
  /// `stamp` (the pipeline's ConfigVersionSum at the matching ExecPlanFor
  /// call).  On a stamp move the row config is re-snapshotted; verdicts
  /// are kept when it deep-compares equal and flushed otherwise.
  FlowRowState& EnsureRow(std::size_t row, u64 stamp, const Stage* stages,
                          std::size_t num_stages, const ModuleExecPlan& plan);

  /// Extracts the per-stage one-word masked keys from a freshly parsed
  /// PHV — the memoization key.  Only valid for eligible rows.
  static void KeyWords(const FlowRowState& row, std::size_t num_stages,
                       const Phv& phv, KeyWordArray& words);

  /// Direct-mapped probe: returns the slot the key hashes to and whether
  /// it currently holds this exact (module, words) verdict.
  FlowVerdict& SlotFor(FlowRowState& row, ModuleId module,
                       const KeyWordArray& words, bool& hit);

  /// Software-prefetch lookahead for BurstProbe: the slot of the lane
  /// this many positions ahead is hashed and prefetched while the
  /// current lane resolves, so the direct-mapped loads overlap instead
  /// of serializing one dependent miss per packet.
  static constexpr std::size_t kBurstPrefetchAhead = 8;

  /// Burst-wide probe (phase 2 of the burst path): hashes all `n` key
  /// arrays, prefetching each slot kBurstPrefetchAhead lanes before it
  /// is tested.  Lane k is a *final hit* only when no earlier fallback
  /// lane of this burst maps to the same slot (that lane's upcoming
  /// fill would change the outcome) AND the slot currently holds
  /// (module, words[k]); then verdicts[k] points at the slot.  Every
  /// other lane gets verdicts[k] == nullptr and is compacted into
  /// `fallback` for in-order scalar resolution via SlotAt.  slot_out[k]
  /// always receives the lane's slot index so the fallback pass reuses
  /// the hash.  Returns the number of final hits; bumps no counters —
  /// the caller accounts hits in bulk and fallback lanes individually,
  /// which keeps counter totals identical to the scalar path.
  std::size_t BurstProbe(FlowRowState& row, ModuleId module,
                         const KeyWordArray* words, std::size_t n,
                         const FlowVerdict** verdicts, u32* fallback,
                         std::size_t& fallback_count, u32* slot_out);

  /// Re-probes one slot by index (the hash carried out of BurstProbe):
  /// the fallback lanes' replacement for SlotFor.  Resolving fallbacks
  /// in lane order makes a lane hit here exactly when the scalar path
  /// would — e.g. against an earlier fallback lane's fresh fill.
  static FlowVerdict& SlotAt(FlowRowState& row, std::size_t slot,
                             ModuleId module, const KeyWordArray& words,
                             bool& hit) {
    FlowVerdict& v = row.slots[slot];
    hit = v.valid && v.module == module && v.words == words;
    return v;
  }

  /// Prepares `slot` (returned miss-side by SlotFor) for a fill:
  /// eviction/occupancy bookkeeping plus key stamping.  The caller runs
  /// BuildVerdict next and sets `valid` last, so a throwing fill leaves
  /// the slot safely invalid.
  void BeginFill(FlowRowState& row, FlowVerdict& slot, ModuleId module,
                 const KeyWordArray& words);

  /// Walks the stages analytically — quiet lookups, no live counters —
  /// recording each stage's match outcome and the constant effects of
  /// every matched action into `v` while applying them to `phv` (so the
  /// filling packet finishes processing in the same pass).
  static void BuildVerdict(const FlowRowState& row, const Stage* stages,
                           std::size_t num_stages, ModuleId module, Phv& phv,
                           FlowVerdict& v);

  /// Records one matched VLIW entry's constant effects into `v` while
  /// applying them to `phv` — the per-hit core of BuildVerdict, shared
  /// with the straight-line recording kernel (pipeline/kernels) so the
  /// two fill paths cannot drift.  Throws std::logic_error on a
  /// non-constant op (eligibility proved none reachable).
  static void RecordMatchedEffects(const VliwEntry& vliw, Phv& phv,
                                   FlowVerdict& v);

  /// Replays a cached verdict's effects onto a freshly parsed PHV — the
  /// entire per-packet match-action work of a hit.
  static void ApplyEffects(const FlowVerdict& v, Phv& phv);

  /// Per-run counter-delta accumulator, flushed once per module run so
  /// the hot loop touches no shared counters.
  struct RunAccounting {
    std::array<u64, params::kNumStages> lookups{};
    std::array<u64, params::kNumStages> hits{};
    std::array<u64, params::kNumStages> scanned{};
  };
  static void Accumulate(RunAccounting& acct, const FlowVerdict& v,
                         std::size_t num_stages);
  static void FlushAccounting(const RunAccounting& acct,
                              const FlowRowState& row, Stage* stages,
                              std::size_t num_stages);

  void NoteHit(u64 n = 1) { hits_.Add(n); }
  void NoteMiss() { misses_.Add(); }
  /// Burst-path bookkeeping: `lanes` probed, of which `fallback` were
  /// compacted for scalar resolution.
  void NoteBurst(u64 lanes, u64 fallback) {
    burst_probe_pkts_.Add(lanes);
    if (fallback != 0) burst_fallback_pkts_.Add(fallback);
  }

  [[nodiscard]] FlowCacheStats Snapshot() const {
    return {hits_.load(),      misses_.load(),
            evictions_.load(), occupancy_.load(),
            burst_probe_pkts_.load(), burst_fallback_pkts_.load()};
  }

  [[nodiscard]] std::size_t slots_per_row() const { return slots_per_row_; }
  /// Resizes the per-row slot count (power of two required) and flushes
  /// every row — a test/bench knob, not a data-path operation.
  void SetSlotsPerRow(std::size_t slots);

  /// Read-only row access for tests.
  [[nodiscard]] const FlowRowState& RowAt(std::size_t row) const {
    return rows_.at(row);
  }

 private:
  void FlushRow(FlowRowState& row);
  [[nodiscard]] std::size_t SlotIndex(ModuleId module,
                                      const KeyWordArray& words) const;

  std::vector<FlowRowState> rows_ =
      std::vector<FlowRowState>(params::kOverlayTableDepth);
  std::size_t slots_per_row_ = params::kFlowCacheSlotsPerRow;
  RelaxedCounter hits_;
  RelaxedCounter misses_;
  RelaxedCounter evictions_;
  RelaxedCounter occupancy_;
  RelaxedCounter burst_probe_pkts_;
  RelaxedCounter burst_fallback_pkts_;
};

}  // namespace menshen
