#include "pipeline/action_engine.hpp"

namespace menshen {

VliwPlan VliwPlan::Compile(const VliwEntry& vliw) {
  VliwPlan plan;
  u32 written_before = 0;  // flat containers written by earlier active slots
  for (std::size_t slot = 0; slot < vliw.slots.size(); ++slot) {
    const AluAction& a = vliw.slots[slot];
    if (a.op == AluOp::kNop) continue;
    plan.active[plan.count++] = static_cast<u8>(slot);
    // A used operand naming a container an earlier active slot writes
    // would observe the new value under direct in-place execution; such
    // entries keep the snapshot.
    if (OpReadsContainer1(a.op) && (written_before & (u32{1} << a.container1)))
      plan.in_place_safe = false;
    if (OpReadsContainer2(a.op) && (written_before & (u32{1} << a.container2)))
      plan.in_place_safe = false;
    if (OpWritesSlotContainer(a.op)) written_before |= u32{1} << slot;
  }
  return plan;
}

Phv ActionEngine::Execute(const VliwEntry& vliw, const Phv& phv,
                          StatefulMemory& state) {
  Phv out = phv;  // slots with kNop keep the incoming value
  Apply(vliw, phv, out, state.ResolveSegment(phv.module_id));
  return out;
}

void ActionEngine::ExecuteInPlace(const VliwEntry& vliw, Phv& phv,
                                  Phv& snapshot, StatefulMemory& state) {
  snapshot = phv;
  Apply(vliw, snapshot, phv, state.ResolveSegment(phv.module_id));
}

void ActionEngine::Apply(const VliwEntry& vliw, const Phv& in, Phv& out,
                         const StatefulMemory::Segment& state) {
  for (std::size_t slot = 0; slot < vliw.slots.size(); ++slot) {
    const AluAction& a = vliw.slots[slot];
    if (a.op == AluOp::kNop) continue;
    ApplySlot(a, static_cast<u8>(slot), in, out, state);
  }
}

}  // namespace menshen
