#include "pipeline/action_engine.hpp"

namespace menshen {

u64 ActionEngine::ReadSlot(const Phv& phv, u8 flat) {
  if (const auto c = FlatToContainer(flat)) return phv.Read(*c);
  return phv.meta_u16(meta::kUser);
}

void ActionEngine::WriteSlot(Phv& phv, u8 flat, u64 value) {
  if (const auto c = FlatToContainer(flat)) {
    phv.Write(*c, value);
  } else {
    phv.set_meta_u16(meta::kUser, static_cast<u16>(value));
  }
}

Phv ActionEngine::Execute(const VliwEntry& vliw, const Phv& phv,
                          StatefulMemory& state) {
  Phv out = phv;  // slots with kNop keep the incoming value
  Apply(vliw, phv, out, state);
  return out;
}

void ActionEngine::ExecuteInPlace(const VliwEntry& vliw, Phv& phv,
                                  Phv& snapshot, StatefulMemory& state) {
  snapshot = phv;
  Apply(vliw, snapshot, phv, state);
}

void ActionEngine::Apply(const VliwEntry& vliw, const Phv& phv, Phv& out,
                         StatefulMemory& state) {
  const ModuleId module = phv.module_id;

  for (std::size_t slot = 0; slot < vliw.slots.size(); ++slot) {
    const AluAction& a = vliw.slots[slot];
    if (a.op == AluOp::kNop) continue;

    // Operands always come from the *incoming* PHV snapshot.
    const u64 v1 = ReadSlot(phv, a.container1);
    const u64 v2 = ReadSlot(phv, a.container2);
    const u8 dst = static_cast<u8>(slot);

    switch (a.op) {
      case AluOp::kNop:
        break;
      case AluOp::kAdd:
        WriteSlot(out, dst, v1 + v2);
        break;
      case AluOp::kSub:
        WriteSlot(out, dst, v1 - v2);
        break;
      case AluOp::kAddi:
        WriteSlot(out, dst, v1 + a.immediate);
        break;
      case AluOp::kSubi:
        WriteSlot(out, dst, v1 - a.immediate);
        break;
      case AluOp::kSet:
        WriteSlot(out, dst, a.immediate);
        break;
      case AluOp::kLoad:
        WriteSlot(out, dst, state.Load(module, a.immediate));
        break;
      case AluOp::kStore:
        state.Store(module, a.immediate, v1);
        break;
      case AluOp::kLoadd:
        WriteSlot(out, dst, state.LoadAddStore(module, a.immediate));
        break;
      case AluOp::kPort:
        out.set_meta_u16(meta::kDstPort, a.immediate);
        break;
      case AluOp::kDiscard:
        out.set_discard_flag(true);
        break;
      case AluOp::kCopy:
        WriteSlot(out, dst, v1);
        break;
      case AluOp::kLoadc:
        WriteSlot(out, dst, state.Load(module, v2));
        break;
      case AluOp::kStorec:
        state.Store(module, v2, v1);
        break;
      case AluOp::kLoaddc:
        WriteSlot(out, dst, state.LoadAddStore(module, v2));
        break;
      case AluOp::kMcast:
        out.set_meta_u16(meta::kMulticastGroup, a.immediate);
        break;
    }
  }
}

}  // namespace menshen
