// Compiled per-module execution plans: liveness-pruned parse/deparse.
//
// A tenant's module binding fully determines which PHV containers any
// stage can read — the key-extractor selections, the predicate operands
// and the VLIW actions reachable through the module's match entries name
// every container that can influence processing.  Everything else the
// parser would extract is provably dead, and a deparse action that
// writes an unmodified container back to the very bytes it was parsed
// from is provably a no-op.  CompileModuleExecPlan walks one overlay
// row's configuration across every stage and compiles a ParsePlan /
// DeparsePlan holding only the actions that can matter, so the batched
// hot path skips the dead byte movement.  The linear full parse/deparse
// (Parser::ParseInto, Deparser::Deparse) survives unchanged as the
// differential reference; tests/test_exec_plan.cpp pins the two
// byte-identical on every tenant-observable output.
//
// Plans are compiled per overlay row but conservatively: reachable match
// entries are collected for every module ID aliasing the row, so an
// aliased module (IDs beyond the table depth, rejected by admission but
// exercised by tests) only ever makes *more* containers live — never
// less, which is the safe direction.
#pragma once

#include <array>
#include <cstddef>

#include "common/types.hpp"
#include "pipeline/entries.hpp"
#include "pipeline/params.hpp"

namespace menshen {

class Stage;

/// One surviving parse/deparse action compiled to raw byte movement:
/// the PHV container resolved to its byte offset at plan-compile time,
/// so the hot path is a bounds check and a memcpy.
struct PlannedMove {
  u8 phv_off = 0;  // container byte offset within the PHV
  u8 width = 0;    // container width in bytes
  u8 pkt_off = 0;  // byte offset within the parser window
};

/// The surviving subset of one module's parser actions (valid and live),
/// in original table order.
struct ParsePlan {
  std::array<PlannedMove, params::kParserActionsPerEntry> moves{};
  u8 count = 0;        // live actions compiled into `moves`
  u8 pruned = 0;       // valid actions dropped as dead
};

/// The surviving subset of one module's deparser actions (valid and not
/// provably identity), in original table order.
struct DeparsePlan {
  std::array<PlannedMove, params::kParserActionsPerEntry> moves{};
  u8 count = 0;
  u8 pruned = 0;       // valid actions dropped as identity writes
};

/// Why an overlay row is excluded from flow-verdict caching
/// (pipeline/flow_cache): the first disqualifying fact the provability
/// scan finds, or kNone when the row's end-to-end verdict is provably a
/// pure function of its per-stage one-word masked keys.
enum class FlowCacheBlocker : u8 {
  kNone = 0,          // cacheable: constant actions, one-word keys
  kStatefulOp,        // a reachable action touches stateful memory
  kVariableOperand,   // a reachable action reads a PHV container
  kWideKey,           // a stage's key mask keeps bits above key word 0
  kPredicateWritten,  // a predicate operand container is action-written
};
[[nodiscard]] const char* FlowCacheBlockerName(FlowCacheBlocker b);

/// One overlay row's compiled execution plan, cached by Pipeline and
/// invalidated off the overlay/config version counters.
struct ModuleExecPlan {
  ParsePlan parse;
  DeparsePlan deparse;
  /// Flat-container bitmask (bit f = flat container f, 0-23) of the
  /// containers some stage can read under this row's configuration —
  /// key-extractor slots surviving the mask, predicate operands, and
  /// operands of VLIW actions reachable through the row's match entries.
  u32 read_live = 0;
  /// Flat-container bitmask of the containers a reachable VLIW action
  /// may overwrite.
  u32 written = 0;
  /// Flow-verdict cacheability (pipeline/flow_cache.hpp).  kNone iff (1)
  /// every stage's masked key fits key word 0, (2) every VLIW action
  /// reachable through any module aliasing the row uses only constant
  /// ops (set/port/discard/mcast — no stateful memory, no container
  /// operands), and (3) no active predicate reads a container a
  /// reachable action may write.  Under those three facts the whole
  /// match-action chain's outcome — and hence the recorded effect list —
  /// is a pure function of the per-stage key words extracted from the
  /// freshly parsed PHV, which is what makes memoizing it sound.
  FlowCacheBlocker flow_blocker = FlowCacheBlocker::kNone;
  [[nodiscard]] bool flow_cacheable() const {
    return flow_blocker == FlowCacheBlocker::kNone;
  }

  /// Key-gather plan for the burst probe (FlowVerdictCache::BurstProbe
  /// phase 1): the probing stages — nonzero key masks, same condition as
  /// FlowStageKey::skip, derived from the same configuration at the same
  /// version stamp — in stage order.  Gathering iterates only these, so
  /// a row with one probing stage extracts one word per packet instead
  /// of branching across all kNumStages (skip stages contribute the
  /// constant 0 the key array is pre-zeroed to).
  struct KeyGather {
    u8 count = 0;
    std::array<u8, params::kNumStages> stages{};
  };
  KeyGather gather;

  /// Plan-level kernel-shape facts (pipeline/kernels): conservative
  /// properties of every VLIW action reachable through the row's match
  /// entries, computed with the same per-address reachability rule as
  /// the liveness scan.  The specialized straight-line kernels are
  /// selected per module run from these bits plus the run-resolved step
  /// count; `wide_or_ternary` rows route to the interpreted plan path
  /// (the one shape class with no registered kernel).
  struct KernelShape {
    /// Some stage with a nonzero key mask is ternary or keeps mask bits
    /// above key word 0 — its probe needs the BitVec/TCAM machinery the
    /// kernels do not inline.  (An all-zero-mask ternary stage is fine:
    /// its constant lookup resolves in Stage::BeginRun.)
    bool wide_or_ternary = false;
    /// Some reachable action touches stateful memory.
    bool stateful = false;
    /// Some reachable VLIW plan has more than one active slot or needs
    /// the incoming-PHV snapshot; single-slot rows execute with neither.
    bool multi_slot = false;
    /// Upper bound on the stages that can contribute a kernel step: a
    /// probing stage always can, an all-zero-mask stage only if some
    /// valid match entry aliases the row (a constant hit is possible).
    u8 potential_steps = 0;
  };
  KernelShape kernel;
};

/// Compiles the execution plan for overlay row `row`: computes container
/// liveness across `num_stages` stages and prunes the row's parser /
/// deparser entries accordingly.
[[nodiscard]] ModuleExecPlan CompileModuleExecPlan(
    const ParserEntry& parse_entry, const DeparserEntry& deparse_entry,
    const Stage* stages, std::size_t num_stages, std::size_t row);

}  // namespace menshen
