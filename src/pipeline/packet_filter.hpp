// Packet filter (sections 3.1, 4.1).
//
// The filter sits in front of the parser and (1) discards packets that
// carry no VLAN tag (so every packet entering the pipeline has a module
// ID); (2) separates reconfiguration packets — identified by the reserved
// UDP destination port 0xF1F2 — from untrusted data packets; (3) holds the
// two AXI-Lite-accessible registers of the secure-reconfiguration
// protocol: a 32-bit bitmap naming the module(s) currently being updated,
// whose data packets are dropped until reconfiguration completes, and a
// 4-byte counter of reconfiguration packets that have traversed the daisy
// chain; and (4) tags each data packet with a packet-buffer number (0-3)
// and a parser number in round-robin order (section 3.2).
#pragma once

#include "packet/packet.hpp"
#include "pipeline/params.hpp"

namespace menshen {

enum class FilterVerdict : u8 {
  kData,       // proceed to a parser
  kReconfig,   // route to the daisy chain
  kDropNoVlan, // no module ID: discarded
  kDropBitmap, // module under reconfiguration: dropped (section 4.1)
};

class PacketFilter {
 public:
  explicit PacketFilter(std::size_t buffers = 1,
                        bool reconfig_on_data_path = true)
      : buffers_(buffers), reconfig_on_data_path_(reconfig_on_data_path) {}

  /// Classifies a packet and, for data packets, assigns buffer/parser
  /// tags.  Templated over the packet representation (Packet for the
  /// batched path, ArenaPacket for the streaming path — both expose
  /// `bytes()` with `.size()`/`.bytes().data()` plus a `buffer_tag`
  /// sideband), so the two paths share one classification and one
  /// round-robin cursor discipline.
  //
  // Per-packet hot path: one bound check covers every header field read
  // below (all offsets are < offsets::kPayload), then direct big-endian
  // loads replace the individually range-checked accessors — and the
  // VLAN test is evaluated once instead of again inside is_reconfig().
  template <typename PacketT>
  FilterVerdict Classify(PacketT& pkt) {
    const auto& buf = pkt.bytes();
    if (buf.size() < offsets::kPayload) {
      ++dropped_no_vlan_;
      return FilterVerdict::kDropNoVlan;
    }
    const u8* d = buf.bytes().data();
    const u16 tpid = static_cast<u16>((u16{d[offsets::kVlanTpid]} << 8) |
                                      d[offsets::kVlanTpid + 1]);
    if (tpid != kEtherTypeVlan) {
      ++dropped_no_vlan_;
      return FilterVerdict::kDropNoVlan;
    }
    if (reconfig_on_data_path_ && d[offsets::kIpv4Proto] == kIpProtoUdp &&
        static_cast<u16>((u16{d[offsets::kL4DstPort]} << 8) |
                         d[offsets::kL4DstPort + 1]) == kReconfigUdpPort) {
      // Corundum connects the daisy chain behind the filter; the reserved
      // UDP destination port separates reconfiguration traffic.  (On the
      // NetFPGA build the chain is fed over PCIe only and data-path
      // packets to the reserved port are just data.)
      return FilterVerdict::kReconfig;
    }
    const ModuleId vid(static_cast<u16>(
        ((u16{d[offsets::kVlanTci]} << 8) | d[offsets::kVlanTci + 1]) &
        0x0FFF));
    if (IsUnderReconfig(vid)) {
      // Drop in-flight packets of a module whose configuration is
      // partially written, so they are never processed by a mix of old
      // and new config.
      ++dropped_bitmap_;
      return FilterVerdict::kDropBitmap;
    }
    // Round-robin buffer/parser assignment without the per-packet integer
    // division a `rr % buffers` would cost (the divisor is a runtime
    // value, so the compiler cannot strength-reduce it).
    pkt.buffer_tag = static_cast<u8>(rr_);
    if (++rr_ == buffers_) rr_ = 0;
    return FilterVerdict::kData;
  }

  // --- AXI-Lite register file (section 4.1) -------------------------------
  [[nodiscard]] u32 bitmap() const { return bitmap_; }
  void set_bitmap(u32 bitmap) { bitmap_ = bitmap; }
  [[nodiscard]] u32 reconfig_packet_counter() const { return counter_; }
  void IncrementReconfigCounter() { ++counter_; }

  /// Convenience used by the control plane: mark one module as under
  /// reconfiguration (bit M of the bitmap).
  void MarkUnderReconfig(ModuleId module, bool under);
  [[nodiscard]] bool IsUnderReconfig(ModuleId module) const;

  // Drop statistics.
  [[nodiscard]] u64 dropped_no_vlan() const { return dropped_no_vlan_; }
  [[nodiscard]] u64 dropped_bitmap() const { return dropped_bitmap_; }

 private:
  std::size_t buffers_;
  bool reconfig_on_data_path_;
  u32 bitmap_ = 0;
  u32 counter_ = 0;
  u64 rr_ = 0;  // round-robin cursor for buffer/parser assignment
  u64 dropped_no_vlan_ = 0;
  u64 dropped_bitmap_ = 0;
};

}  // namespace menshen
