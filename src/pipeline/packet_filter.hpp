// Packet filter (sections 3.1, 4.1).
//
// The filter sits in front of the parser and (1) discards packets that
// carry no VLAN tag (so every packet entering the pipeline has a module
// ID); (2) separates reconfiguration packets — identified by the reserved
// UDP destination port 0xF1F2 — from untrusted data packets; (3) holds the
// two AXI-Lite-accessible registers of the secure-reconfiguration
// protocol: a 32-bit bitmap naming the module(s) currently being updated,
// whose data packets are dropped until reconfiguration completes, and a
// 4-byte counter of reconfiguration packets that have traversed the daisy
// chain; and (4) tags each data packet with a packet-buffer number (0-3)
// and a parser number in round-robin order (section 3.2).
#pragma once

#include "packet/packet.hpp"
#include "pipeline/params.hpp"

namespace menshen {

enum class FilterVerdict : u8 {
  kData,       // proceed to a parser
  kReconfig,   // route to the daisy chain
  kDropNoVlan, // no module ID: discarded
  kDropBitmap, // module under reconfiguration: dropped (section 4.1)
};

class PacketFilter {
 public:
  explicit PacketFilter(std::size_t buffers = 1,
                        bool reconfig_on_data_path = true)
      : buffers_(buffers), reconfig_on_data_path_(reconfig_on_data_path) {}

  /// Classifies a packet and, for data packets, assigns buffer/parser tags.
  FilterVerdict Classify(Packet& pkt);

  // --- AXI-Lite register file (section 4.1) -------------------------------
  [[nodiscard]] u32 bitmap() const { return bitmap_; }
  void set_bitmap(u32 bitmap) { bitmap_ = bitmap; }
  [[nodiscard]] u32 reconfig_packet_counter() const { return counter_; }
  void IncrementReconfigCounter() { ++counter_; }

  /// Convenience used by the control plane: mark one module as under
  /// reconfiguration (bit M of the bitmap).
  void MarkUnderReconfig(ModuleId module, bool under);
  [[nodiscard]] bool IsUnderReconfig(ModuleId module) const;

  // Drop statistics.
  [[nodiscard]] u64 dropped_no_vlan() const { return dropped_no_vlan_; }
  [[nodiscard]] u64 dropped_bitmap() const { return dropped_bitmap_; }

 private:
  std::size_t buffers_;
  bool reconfig_on_data_path_;
  u32 bitmap_ = 0;
  u32 counter_ = 0;
  u64 rr_ = 0;  // round-robin cursor for buffer/parser assignment
  u64 dropped_no_vlan_ = 0;
  u64 dropped_bitmap_ = 0;
};

}  // namespace menshen
