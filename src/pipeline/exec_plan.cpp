#include "pipeline/exec_plan.hpp"

#include "pipeline/stage.hpp"

namespace menshen {

namespace {

/// Flat-container bit for liveness masks; flat 24 (metadata) is outside
/// the parse/deparse domain and maps to no bit.
u32 FlatBit(std::size_t flat) {
  return flat < 3 * kContainersPerType ? (u32{1} << flat) : 0;
}

/// Accumulates the reads/writes of every VLIW entry reachable through
/// the row's match entries in one stage.  Reachability is per *address*:
/// a valid CAM/TCAM entry whose owner aliases `row` makes the VLIW entry
/// at that address reachable (conservative for aliased module IDs).
void AccumulateVliwLiveness(const Stage& stage, std::size_t row,
                            std::size_t overlay_depth, u32& read_live,
                            u32& written) {
  const auto visit = [&](std::size_t address) {
    const VliwEntry& vliw = stage.VliwAt(address);
    for (std::size_t slot = 0; slot < vliw.slots.size(); ++slot) {
      const AluAction& a = vliw.slots[slot];
      if (a.op == AluOp::kNop) continue;
      if (OpReadsContainer1(a.op)) read_live |= FlatBit(a.container1);
      if (OpReadsContainer2(a.op)) read_live |= FlatBit(a.container2);
      if (OpWritesSlotContainer(a.op)) written |= FlatBit(slot);
    }
  };
  for (std::size_t a = 0; a < stage.cam().depth(); ++a) {
    const CamEntry& e = stage.cam().At(a);
    if (e.valid && e.module.value() % overlay_depth == row) visit(a);
  }
  for (std::size_t a = 0; a < stage.tcam().depth(); ++a) {
    const TcamEntry& e = stage.tcam().At(a);
    if (e.valid && e.module.value() % overlay_depth == row) visit(a);
  }
}

/// Scans every VLIW action reachable through the row's match entries in
/// one stage for an op that is not a per-packet constant: stateful ops
/// and container-reading ops make the stage's effect depend on more than
/// the masked key, so the row cannot be flow-cached.  Same per-address
/// reachability rule as AccumulateVliwLiveness (conservative for aliased
/// module IDs).
FlowCacheBlocker StageActionBlocker(const Stage& stage, std::size_t row,
                                    std::size_t overlay_depth) {
  FlowCacheBlocker blocker = FlowCacheBlocker::kNone;
  const auto visit = [&](std::size_t address) {
    if (blocker != FlowCacheBlocker::kNone) return;
    const VliwEntry& vliw = stage.VliwAt(address);
    for (const AluAction& a : vliw.slots) {
      if (a.op == AluOp::kNop) continue;
      if (OpTouchesState(a.op)) {
        blocker = FlowCacheBlocker::kStatefulOp;
        return;
      }
      if (OpReadsContainer1(a.op) || OpReadsContainer2(a.op)) {
        blocker = FlowCacheBlocker::kVariableOperand;
        return;
      }
    }
  };
  for (std::size_t a = 0; a < stage.cam().depth(); ++a) {
    const CamEntry& e = stage.cam().At(a);
    if (e.valid && e.module.value() % overlay_depth == row) visit(a);
  }
  for (std::size_t a = 0; a < stage.tcam().depth(); ++a) {
    const TcamEntry& e = stage.tcam().At(a);
    if (e.valid && e.module.value() % overlay_depth == row) visit(a);
  }
  return blocker;
}

/// Folds one stage's contribution into the plan's kernel shape: whether
/// any reachable VLIW action is stateful, whether any reachable VLIW
/// plan needs the multi-slot/snapshot execution form, and whether the
/// stage can contribute a kernel step at all.  Same per-address
/// reachability rule as AccumulateVliwLiveness (conservative for
/// aliased module IDs — aliasing can only widen the shape, never
/// narrow it, which is the safe direction).
void AccumulateKernelShape(const Stage& stage, std::size_t row,
                           std::size_t overlay_depth, bool mask_zero,
                           ModuleExecPlan::KernelShape& shape) {
  bool any_entry = false;
  const auto visit = [&](std::size_t address) {
    any_entry = true;
    const VliwEntry& vliw = stage.VliwAt(address);
    for (const AluAction& a : vliw.slots)
      if (a.op != AluOp::kNop && OpTouchesState(a.op)) shape.stateful = true;
    const VliwPlan& plan = stage.VliwPlanAt(address);
    if (plan.count > 1 || !plan.in_place_safe) shape.multi_slot = true;
  };
  for (std::size_t a = 0; a < stage.cam().depth(); ++a) {
    const CamEntry& e = stage.cam().At(a);
    if (e.valid && e.module.value() % overlay_depth == row) visit(a);
  }
  for (std::size_t a = 0; a < stage.tcam().depth(); ++a) {
    const TcamEntry& e = stage.tcam().At(a);
    if (e.valid && e.module.value() % overlay_depth == row) visit(a);
  }
  // A probing stage always owes a per-packet step; an all-zero-mask
  // stage only contributes when a constant hit is possible at all.
  if (!mask_zero || any_entry) ++shape.potential_steps;
}

/// Byte range [begin, end) a parse/deparse action touches (nominal; the
/// runtime clips to the parser window and packet length, which can only
/// shrink both paths identically).
struct ByteRange {
  std::size_t begin;
  std::size_t end;
};

ByteRange RangeOf(const ParserAction& a) {
  const std::size_t begin = a.bytes_from_head;
  return {begin, begin + a.container.width_bytes()};
}

bool Overlaps(const ByteRange& x, const ByteRange& y) {
  return x.begin < y.end && y.begin < x.end;
}

PlannedMove CompileMove(const ParserAction& a) {
  return PlannedMove{static_cast<u8>(Phv::ByteOffsetOf(a.container)),
                     static_cast<u8>(a.container.width_bytes()),
                     a.bytes_from_head};
}

}  // namespace

const char* FlowCacheBlockerName(FlowCacheBlocker b) {
  switch (b) {
    case FlowCacheBlocker::kNone:
      return "none";
    case FlowCacheBlocker::kStatefulOp:
      return "stateful-op";
    case FlowCacheBlocker::kVariableOperand:
      return "variable-operand";
    case FlowCacheBlocker::kWideKey:
      return "wide-key";
    case FlowCacheBlocker::kPredicateWritten:
      return "predicate-written";
  }
  return "?";
}

ModuleExecPlan CompileModuleExecPlan(const ParserEntry& parse_entry,
                                     const DeparserEntry& deparse_entry,
                                     const Stage* stages,
                                     std::size_t num_stages, std::size_t row) {
  ModuleExecPlan plan;

  // --- Liveness: every container some stage can read under this row ---------
  for (std::size_t s = 0; s < num_stages; ++s) {
    const Stage& stage = stages[s];
    const std::size_t depth = stage.key_extractor().depth();
    const KeyExtractorEntry& kx = stage.key_extractor().At(row);
    const BitVec& mask = stage.key_mask().At(row).mask;
    if (!mask.is_zero()) {
      if (s < plan.gather.stages.size())
        plan.gather.stages[plan.gather.count++] = static_cast<u8>(s);
      const auto slots = KeySlots();
      const auto slot_types = KeySlotTypes();
      for (std::size_t i = 0; i < slots.size(); ++i) {
        if (mask.field(slots[i].lsb, slots[i].bits) == 0) continue;
        const ContainerRef c{slot_types[i], kx.selectors[i]};
        plan.read_live |= FlatBit(c.flat());
      }
      if (mask.field(0, 1) != 0 && kx.cmp_op != CmpOp::kNone) {
        if (kx.cmp_a.is_container())
          plan.read_live |= FlatBit(kx.cmp_a.container().flat());
        if (kx.cmp_b.is_container())
          plan.read_live |= FlatBit(kx.cmp_b.container().flat());
      }
    }
    AccumulateVliwLiveness(stage, row, depth, plan.read_live, plan.written);

    // --- Kernel shape (pipeline/kernels) -----------------------------------
    if (!mask.is_zero() && (kx.ternary || !mask.high_words_zero()))
      plan.kernel.wide_or_ternary = true;
    AccumulateKernelShape(stage, row, depth, mask.is_zero(), plan.kernel);
  }

  // --- Flow-cache stateless provability (pipeline/flow_cache) ---------------
  // Scanned after the liveness loop because the predicate check needs the
  // full `written` set (conservative: a write in ANY stage blocks a
  // predicate operand, though only earlier stages could matter).  Per
  // stage the checks run wide-key -> predicate -> actions and the first
  // blocker found wins.
  for (std::size_t s = 0;
       s < num_stages && plan.flow_blocker == FlowCacheBlocker::kNone; ++s) {
    const Stage& stage = stages[s];
    const KeyExtractorEntry& kx = stage.key_extractor().At(row);
    const BitVec& mask = stage.key_mask().At(row).mask;
    if (!mask.high_words_zero()) {
      plan.flow_blocker = FlowCacheBlocker::kWideKey;
      break;
    }
    if (mask.field(0, 1) != 0 && kx.cmp_op != CmpOp::kNone) {
      for (const Operand8* op : {&kx.cmp_a, &kx.cmp_b}) {
        if (op->is_container() &&
            (plan.written & FlatBit(op->container().flat())) != 0)
          plan.flow_blocker = FlowCacheBlocker::kPredicateWritten;
      }
      if (plan.flow_blocker != FlowCacheBlocker::kNone) break;
    }
    plan.flow_blocker =
        StageActionBlocker(stage, row, stage.key_extractor().depth());
  }

  // --- Per-container parse-action census (for identity detection) -----------
  std::array<u8, 3 * kContainersPerType> parse_count{};
  std::array<u8, 3 * kContainersPerType> parse_offset{};
  for (const ParserAction& a : parse_entry.actions) {
    if (!a.valid) continue;
    const std::size_t f = a.container.flat();
    ++parse_count[f];
    parse_offset[f] = a.bytes_from_head;
  }

  // --- Deparse pruning: drop provably-identity writes ------------------------
  // An action is identity iff its container cannot have been modified
  // (not in `written`), it was filled by exactly one parse action from
  // the very same packet offset, and no other deparse action touches an
  // overlapping byte range (otherwise order against that action matters).
  u32 deparse_reads = 0;
  const auto& dep = deparse_entry.actions;
  for (std::size_t j = 0; j < dep.size(); ++j) {
    if (!dep[j].valid) continue;
    const std::size_t f = dep[j].container.flat();
    bool identity = (plan.written & FlatBit(f)) == 0 && parse_count[f] == 1 &&
                    parse_offset[f] == dep[j].bytes_from_head;
    if (identity) {
      for (std::size_t k = 0; k < dep.size() && identity; ++k) {
        if (k == j || !dep[k].valid) continue;
        if (Overlaps(RangeOf(dep[j]), RangeOf(dep[k]))) identity = false;
      }
    }
    if (identity) {
      ++plan.deparse.pruned;
      continue;
    }
    plan.deparse.moves[plan.deparse.count++] = CompileMove(dep[j]);
    deparse_reads |= FlatBit(f);
  }

  // --- Parse pruning: keep an action iff its container is live --------------
  // (read by some stage, or carried out of the pipeline by a surviving
  // deparse action).
  const u32 live = plan.read_live | deparse_reads;
  for (const ParserAction& a : parse_entry.actions) {
    if (!a.valid) continue;
    if ((live & FlatBit(a.container.flat())) == 0) {
      ++plan.parse.pruned;
      continue;
    }
    plan.parse.moves[plan.parse.count++] = CompileMove(a);
  }

  return plan;
}

}  // namespace menshen
