// Inline executors for compiled parse/deparse plans.
//
// The planned byte-move loops and the per-packet metadata/disposition
// epilogues are shared verbatim by the interpreted plan path
// (pipeline/parser.cpp) and the specialized straight-line kernels
// (pipeline/kernels.cpp) — one definition, so the two paths cannot
// drift apart byte-wise.
#pragma once

#include <algorithm>
#include <cstring>

#include "packet/packet.hpp"
#include "phv/phv.hpp"
#include "pipeline/exec_plan.hpp"

namespace menshen {

/// Metadata the pipeline provides on every packet (section 4.3), shared
/// by every parse path.  Templated over the packet representation: the
/// batched path hands Packet, the streaming path hands ArenaPacket —
/// both expose the same size/bytes/sideband surface, so the two paths
/// share one definition and cannot drift byte-wise.
template <typename PacketT>
inline void FillPipelineMetadata(const PacketT& pkt, Phv& phv) {
  phv.set_meta_u16(meta::kSrcPort, pkt.ingress_port);
  phv.set_meta_u16(meta::kPktLen, static_cast<u16>(
                                      std::min<std::size_t>(pkt.size(), 0xFFFF)));
  phv.set_meta_u8(meta::kBufferTag, static_cast<u8>(1u << (pkt.buffer_tag & 3)));
}

/// Disposition epilogue of every deparse path.
template <typename PacketT>
inline void ApplyDisposition(const Phv& phv, PacketT& pkt) {
  if (phv.discard_flag()) {
    pkt.disposition = Disposition::kDrop;
  } else if (!pkt.multicast_ports.empty()) {
    pkt.disposition = Disposition::kMulticast;
  } else {
    pkt.disposition = Disposition::kForward;
    pkt.egress_port = phv.meta_u16(meta::kDstPort);
  }
}

/// Runs a compiled parse plan into `phv`, which the caller guarantees is
/// already all-zero (a freshly constructed Phv, or one Clear()ed) — the
/// hot paths parse straight into the result's emplaced PHV and skip the
/// redundant re-zeroing.  Containers whose parse was pruned stay zero.
template <typename PacketT>
inline void PlannedParseInto(const PacketT& pkt, Phv& phv,
                             const ParsePlan& plan) {
  phv.module_id = pkt.vid();
  FillPipelineMetadata(pkt, phv);

  u8* const dst_base = phv.mutable_raw().data();
  const u8* const src_base = pkt.bytes().bytes().data();
  const std::size_t limit =
      std::min<std::size_t>(kParserWindowBytes, pkt.size());
  for (std::size_t i = 0; i < plan.count; ++i) {
    const PlannedMove& mv = plan.moves[i];
    const std::size_t end = static_cast<std::size_t>(mv.pkt_off) + mv.width;
    if (end <= limit) {
      std::memcpy(dst_base + mv.phv_off, src_base + mv.pkt_off, mv.width);
    } else {
      // Clipped tail: bytes beyond the window/packet read as zero (the
      // PHV is already zeroed).
      for (std::size_t b = 0; b < mv.width; ++b) {
        const std::size_t off = static_cast<std::size_t>(mv.pkt_off) + b;
        if (off < limit) dst_base[mv.phv_off + b] = src_base[off];
      }
    }
  }
}

/// Runs a compiled deparse plan: writes back the surviving moves and
/// applies the PHV's disposition metadata to the packet.
template <typename PacketT>
inline void PlannedDeparseFrom(const Phv& phv, PacketT& pkt,
                               const DeparsePlan& plan) {
  const u8* const src_base = phv.raw().data();
  u8* const dst_base = pkt.bytes().bytes().data();
  const std::size_t limit =
      std::min<std::size_t>(kParserWindowBytes, pkt.size());
  for (std::size_t i = 0; i < plan.count; ++i) {
    const PlannedMove& mv = plan.moves[i];
    const std::size_t end = static_cast<std::size_t>(mv.pkt_off) + mv.width;
    if (end <= limit) {
      std::memcpy(dst_base + mv.pkt_off, src_base + mv.phv_off, mv.width);
    } else {
      for (std::size_t b = 0; b < mv.width; ++b) {
        const std::size_t off = static_cast<std::size_t>(mv.pkt_off) + b;
        if (off < limit) dst_base[off] = src_base[mv.phv_off + b];
      }
    }
  }
  ApplyDisposition(phv, pkt);
}

}  // namespace menshen
