// Overlay tables — the central Menshen isolation primitive (section 3).
//
// An overlay table associates a configuration entry with each module for a
// shared resource (parser, deparser, key extractor, key mask, segment
// table).  It is a simple SRAM array indexed by the packet's module ID; on
// every packet the entry for that packet's module is read out and the
// shared resource processes the packet under that configuration.
//
// Faithful to the hardware, lookups index with the low bits of the module
// ID (the array is kOverlayTableDepth = 32 entries deep).  A module ID of
// 33 would therefore alias entry 1 — exactly why the software-side
// admission control (runtime/) refuses to admit modules whose ID does not
// fit the table depth.  Tests exercise this boundary.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "pipeline/params.hpp"

namespace menshen {

template <typename Entry>
class OverlayTable {
 public:
  explicit OverlayTable(std::size_t depth = params::kOverlayTableDepth)
      : entries_(depth) {}

  [[nodiscard]] std::size_t depth() const { return entries_.size(); }

  /// Hardware-style read: index = module ID truncated to the table depth.
  [[nodiscard]] const Entry& Lookup(ModuleId id) const {
    ++reads_;
    return entries_[IndexFor(id)];
  }

  /// Configuration write via the daisy chain (index-addressed).
  void Write(std::size_t index, Entry entry) {
    if (index >= entries_.size())
      throw std::out_of_range("overlay table index out of range");
    entries_[index] = std::move(entry);
    ++version_;
  }

  [[nodiscard]] const Entry& At(std::size_t index) const {
    if (index >= entries_.size())
      throw std::out_of_range("overlay table index out of range");
    return entries_[index];
  }

  /// Number of entry reads since construction (for the area/activity model).
  [[nodiscard]] u64 reads() const { return reads_; }

  /// Bumped on every Write — lets derived caches (e.g. the stage's
  /// key-layout plans) detect that an entry changed without being wired
  /// into the configuration path.
  [[nodiscard]] u64 version() const { return version_; }

  [[nodiscard]] std::size_t IndexFor(ModuleId id) const {
    return id.value() % entries_.size();
  }

 private:
  std::vector<Entry> entries_;
  mutable u64 reads_ = 0;
  u64 version_ = 0;
};

}  // namespace menshen
