#include "pipeline/flow_cache.hpp"

#include <stdexcept>

#include "pipeline/stage.hpp"

namespace menshen {

namespace {

/// splitmix64 finalizer — the slot index must spread structured key
/// words (ports, small tags) across the direct-mapped table.
inline u64 Mix64(u64 x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Snapshots everything a row's verdicts derive from in one stage-order
/// pass: key extractor/mask rows plus every CAM/TCAM entry aliasing the
/// row and the VLIW entries at their addresses (same reachability rule
/// as the execution-plan liveness analysis).
FlowRowConfig SnapshotRowConfig(const Stage* stages, std::size_t num_stages,
                                std::size_t row, FlowCacheBlocker blocker) {
  FlowRowConfig cfg;
  cfg.blocker = blocker;
  cfg.stages.resize(num_stages);
  for (std::size_t s = 0; s < num_stages; ++s) {
    const Stage& stage = stages[s];
    FlowRowConfig::StageConfig& sc = cfg.stages[s];
    sc.kx = stage.key_extractor().At(row);
    sc.mask = stage.key_mask().At(row);
    const std::size_t depth = stage.key_extractor().depth();
    for (std::size_t a = 0; a < stage.cam().depth(); ++a) {
      const CamEntry& e = stage.cam().At(a);
      if (!e.valid || e.module.value() % depth != row) continue;
      sc.cam.emplace_back(static_cast<u8>(a), e);
      sc.vliw.emplace_back(static_cast<u8>(a), stage.VliwAt(a));
    }
    for (std::size_t a = 0; a < stage.tcam().depth(); ++a) {
      const TcamEntry& e = stage.tcam().At(a);
      if (!e.valid || e.module.value() % depth != row) continue;
      sc.tcam.emplace_back(static_cast<u8>(a), e);
      sc.vliw.emplace_back(static_cast<u8>(a), stage.VliwAt(a));
    }
  }
  return cfg;
}

/// Derives the per-stage key recipes from a fresh config snapshot
/// (mirrors Stage's private KeyPlan derivation; eligibility already
/// guarantees every mask is one-word).
void BuildStageKeys(FlowRowState& r, std::size_t num_stages) {
  const auto slots = KeySlots();
  r.all_constant = true;
  for (std::size_t s = 0; s < num_stages; ++s) {
    const FlowRowConfig::StageConfig& sc = r.config.stages[s];
    FlowStageKey& k = r.keys[s];
    const BitVec& mask = sc.mask.mask;
    k.kx = sc.kx;
    k.skip = mask.is_zero();
    k.ternary = sc.kx.ternary;
    k.active_slots = 0;
    for (std::size_t i = 0; i < slots.size(); ++i)
      if (mask.field(slots[i].lsb, slots[i].bits) != 0)
        k.active_slots |= static_cast<u8>(1u << i);
    k.pred_active = mask.field(0, 1) != 0 && sc.kx.cmp_op != CmpOp::kNone;
    k.word_mask = mask.word(0);
    if (!k.skip) r.all_constant = false;
  }
}

inline void ApplyOneEffect(const FlowEffect& e, Phv& phv) {
  switch (e.kind) {
    case FlowEffect::Kind::kSetSlot:
      if (const auto c = FlatToContainer(e.slot)) {
        phv.Write(*c, e.value);
      } else {
        phv.set_meta_u16(meta::kUser, e.value);
      }
      break;
    case FlowEffect::Kind::kPort:
      phv.set_meta_u16(meta::kDstPort, e.value);
      break;
    case FlowEffect::Kind::kDiscard:
      phv.set_discard_flag(true);
      break;
    case FlowEffect::Kind::kMcast:
      phv.set_meta_u16(meta::kMulticastGroup, e.value);
      break;
  }
}

}  // namespace

FlowRowState& FlowVerdictCache::EnsureRow(std::size_t row, u64 stamp,
                                          const Stage* stages,
                                          std::size_t num_stages,
                                          const ModuleExecPlan& plan) {
  FlowRowState& r = rows_.at(row);
  if (r.built_at_version == stamp) return r;

  FlowRowConfig fresh =
      SnapshotRowConfig(stages, num_stages, row, plan.flow_blocker);
  if (!(fresh == r.config)) {
    // This row's own inputs changed: the cached verdicts are stale.
    // (A stamp move with an equal snapshot — some other tenant's
    // reconfiguration — keeps them, preserving the hit rate.)
    FlushRow(r);
    r.config = std::move(fresh);
    r.eligible = r.config.blocker == FlowCacheBlocker::kNone &&
                 num_stages <= params::kNumStages;
    if (r.eligible) BuildStageKeys(r, num_stages);
  }
  r.built_at_version = stamp;
  return r;
}

void FlowVerdictCache::KeyWords(const FlowRowState& row,
                                std::size_t num_stages, const Phv& phv,
                                KeyWordArray& words) {
  for (std::size_t s = 0; s < num_stages; ++s) {
    const FlowStageKey& k = row.keys[s];
    words[s] = k.skip ? 0
                      : (k.kx.ExtractKeyWord0(phv, k.active_slots,
                                              k.pred_active) &
                         k.word_mask);
  }
  for (std::size_t s = num_stages; s < words.size(); ++s) words[s] = 0;
}

std::size_t FlowVerdictCache::SlotIndex(ModuleId module,
                                        const KeyWordArray& words) const {
  u64 h = Mix64(module.value());
  for (const u64 w : words) h = Mix64(h ^ w);
  return static_cast<std::size_t>(h) & (slots_per_row_ - 1);
}

FlowVerdict& FlowVerdictCache::SlotFor(FlowRowState& row, ModuleId module,
                                       const KeyWordArray& words, bool& hit) {
  if (row.slots.empty()) row.slots.resize(slots_per_row_);
  FlowVerdict& v = row.slots[SlotIndex(module, words)];
  hit = v.valid && v.module == module && v.words == words;
  return v;
}

std::size_t FlowVerdictCache::BurstProbe(FlowRowState& row, ModuleId module,
                                         const KeyWordArray* words,
                                         std::size_t n,
                                         const FlowVerdict** verdicts,
                                         u32* fallback,
                                         std::size_t& fallback_count,
                                         u32* slot_out) {
  if (row.slots.empty()) row.slots.resize(slots_per_row_);
  const u64 hm = Mix64(module.value());
  const auto hash_lane = [&](std::size_t k) {
    u64 h = hm;
    for (const u64 w : words[k]) h = Mix64(h ^ w);
    const auto s =
        static_cast<u32>(static_cast<std::size_t>(h) & (slots_per_row_ - 1));
    slot_out[k] = s;
    const char* p = reinterpret_cast<const char*>(&row.slots[s]);
    __builtin_prefetch(p);
    __builtin_prefetch(p + 64);  // FlowVerdict spans two cache lines
  };
  const std::size_t ahead = std::min(kBurstPrefetchAhead, n);
  for (std::size_t k = 0; k < ahead; ++k) hash_lane(k);
  std::size_t hits = 0;
  fallback_count = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (k + ahead < n) hash_lane(k + ahead);
    const u32 s = slot_out[k];
    // Pending-fill taint: an earlier fallback lane mapping to this slot
    // will (re)fill it before lane k would have probed under scalar
    // order, so the current content cannot decide lane k — route it to
    // the in-order fallback pass.  The fallback list is the compacted
    // miss set, typically short, so the linear scan stays cheap.
    bool pending = false;
    for (std::size_t i = 0; i < fallback_count; ++i) {
      if (slot_out[fallback[i]] == s) {
        pending = true;
        break;
      }
    }
    const FlowVerdict& v = row.slots[s];
    if (!pending && v.valid && v.module == module && v.words == words[k]) {
      verdicts[k] = &v;
      ++hits;
    } else {
      verdicts[k] = nullptr;
      fallback[fallback_count++] = static_cast<u32>(k);
    }
  }
  return hits;
}

void FlowVerdictCache::BeginFill(FlowRowState& row, FlowVerdict& slot,
                                 ModuleId module, const KeyWordArray& words) {
  if (slot.valid) {
    evictions_.Add();  // direct-mapped conflict: replace the old verdict
  } else {
    occupancy_.Add();
    ++row.live;
  }
  slot.valid = false;
  slot.module = module;
  slot.words = words;
  slot.outcomes = {};
  slot.effects.clear();
}

void FlowVerdictCache::BuildVerdict(const FlowRowState& row,
                                    const Stage* stages,
                                    std::size_t num_stages, ModuleId module,
                                    Phv& phv, FlowVerdict& v) {
  for (std::size_t s = 0; s < num_stages; ++s) {
    const FlowStageKey& k = row.keys[s];
    const Stage& stage = stages[s];
    // The *actual* key is extracted from the evolving PHV, stage by
    // stage, exactly as the uncached path would — the memoization key
    // (parsed-PHV words) determines these by the induction argument in
    // the header, but the lookups themselves must use the live values.
    const u64 word =
        k.skip ? 0
               : (k.kx.ExtractKeyWord0(phv, k.active_slots, k.pred_active) &
                  k.word_mask);
    std::optional<std::size_t> address;
    u64 scanned = 0;
    if (k.ternary) {
      const BitVec key = BitVec::FromValue(params::kKeyBits, word);
      address = stage.tcam().LookupQuiet(key, module, scanned);
    } else if (const auto* h = stage.cam().WordIndexFor(module)) {
      const auto it = h->find(word);
      if (it != h->end()) address = it->second;
    }
    FlowVerdict::StageOutcome& o = v.outcomes[s];
    o.probed = !k.skip;
    o.hit = address.has_value();
    o.address = static_cast<u8>(address.value_or(0));
    o.scanned = static_cast<u16>(scanned);
    if (!address) continue;  // miss: default action is a no-op

    RecordMatchedEffects(stage.VliwAt(*address), phv, v);
  }
}

void FlowVerdictCache::RecordMatchedEffects(const VliwEntry& vliw, Phv& phv,
                                            FlowVerdict& v) {
  for (std::size_t slot = 0; slot < vliw.slots.size(); ++slot) {
    const AluAction& a = vliw.slots[slot];
    FlowEffect e;
    switch (a.op) {
      case AluOp::kNop:
        continue;
      case AluOp::kSet:
        e = {FlowEffect::Kind::kSetSlot, static_cast<u8>(slot), a.immediate};
        break;
      case AluOp::kPort:
        e = {FlowEffect::Kind::kPort, 0, a.immediate};
        break;
      case AluOp::kDiscard:
        e = {FlowEffect::Kind::kDiscard, 0, 0};
        break;
      case AluOp::kMcast:
        e = {FlowEffect::Kind::kMcast, 0, a.immediate};
        break;
      default:
        // Eligibility proved every reachable op constant; reaching
        // here means the snapshot/invalidations logic is broken.
        throw std::logic_error("flow cache: non-constant op in eligible row");
    }
    ApplyOneEffect(e, phv);
    v.effects.push_back(e);
  }
}

void FlowVerdictCache::ApplyEffects(const FlowVerdict& v, Phv& phv) {
  for (const FlowEffect& e : v.effects) ApplyOneEffect(e, phv);
}

void FlowVerdictCache::Accumulate(RunAccounting& acct, const FlowVerdict& v,
                                  std::size_t num_stages) {
  for (std::size_t s = 0; s < num_stages; ++s) {
    const FlowVerdict::StageOutcome& o = v.outcomes[s];
    if (!o.probed) continue;  // constant-key stage: BeginRun accounted it
    ++acct.lookups[s];
    if (o.hit) ++acct.hits[s];
    acct.scanned[s] += o.scanned;
  }
}

void FlowVerdictCache::FlushAccounting(const RunAccounting& acct,
                                       const FlowRowState& row, Stage* stages,
                                       std::size_t num_stages) {
  for (std::size_t s = 0; s < num_stages; ++s) {
    const u64 lookups = acct.lookups[s];
    if (lookups == 0) continue;
    const u64 hits = acct.hits[s];
    if (row.keys[s].ternary) {
      stages[s].tcam().NoteCachedLookups(lookups, hits, acct.scanned[s]);
    } else {
      stages[s].cam().NoteCachedLookups(lookups, hits);
    }
    stages[s].NoteCachedOutcomes(hits, lookups - hits);
  }
}

void FlowVerdictCache::SetSlotsPerRow(std::size_t slots) {
  if (slots == 0 || (slots & (slots - 1)) != 0)
    throw std::invalid_argument(
        "flow cache slots per row must be a power of two");
  for (FlowRowState& r : rows_) {
    FlushRow(r);
    r.slots.clear();
    r.slots.shrink_to_fit();
  }
  slots_per_row_ = slots;
}

void FlowVerdictCache::FlushRow(FlowRowState& row) {
  if (row.live != 0) {
    occupancy_.Sub(row.live);
    row.live = 0;
  }
  for (FlowVerdict& v : row.slots) v.valid = false;
}

}  // namespace menshen
