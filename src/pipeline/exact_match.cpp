#include "pipeline/exact_match.hpp"

#include <stdexcept>

namespace menshen {

void ExactMatchCam::CheckKeyWidth(const BitVec& key) const {
  if (key.width() != params::kKeyBits)
    throw std::invalid_argument("CAM key must be 193 bits");
}

std::optional<std::size_t> ExactMatchCam::Lookup(const BitVec& key,
                                                 ModuleId module) const {
  lookups_.Add();
  CheckKeyWidth(key);
  const auto mit = index_.find(module.value());
  if (mit == index_.end()) return std::nullopt;
  const auto kit = mit->second.find(key);
  if (kit == mit->second.end()) return std::nullopt;
  hits_.Add();
  return kit->second;
}

std::optional<std::size_t> ExactMatchCam::LookupWord(u64 key_w0,
                                                     ModuleId module) const {
  lookups_.Add();
  const auto mit = word_index_.find(module.value());
  if (mit == word_index_.end()) return std::nullopt;
  const auto kit = mit->second.find(key_w0);
  if (kit == mit->second.end()) return std::nullopt;
  hits_.Add();
  return kit->second;
}

std::optional<std::size_t> ExactMatchCam::LookupLinear(const BitVec& key,
                                                       ModuleId module) const {
  lookups_.Add();
  CheckKeyWidth(key);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const CamEntry& e = entries_[i];
    // The module ID comparison is part of the match itself: the stored
    // entry is (key ++ module) and the search word is (key ++ module).
    if (e.valid && e.module == module && e.key == key) {
      hits_.Add();
      return i;
    }
  }
  return std::nullopt;
}

void ExactMatchCam::Write(std::size_t address, CamEntry entry) {
  if (address >= entries_.size())
    throw std::out_of_range("CAM address out of range");
  entry.RefreshWordCache();
  entries_[address] = std::move(entry);
  RebuildIndex();
  ++version_;
}

void ExactMatchCam::RebuildIndex() {
  index_.clear();
  word_index_.clear();
  // Ascending address order + emplace (first insertion wins) keeps the
  // lowest address for duplicate (key, module) pairs — the priority the
  // linear scan implements.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const CamEntry& e = entries_[i];
    if (!e.valid) continue;
    index_[e.module.value()].emplace(e.key, static_cast<u32>(i));
    if (e.key_hi_zero)
      word_index_[e.module.value()].emplace(e.key_w0, static_cast<u32>(i));
  }
}

const CamEntry& ExactMatchCam::At(std::size_t address) const {
  if (address >= entries_.size())
    throw std::out_of_range("CAM address out of range");
  return entries_[address];
}

std::size_t ExactMatchCam::CountForModule(ModuleId module) const {
  std::size_t n = 0;
  for (const auto& e : entries_)
    if (e.valid && e.module == module) ++n;
  return n;
}

}  // namespace menshen
