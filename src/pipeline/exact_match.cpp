#include "pipeline/exact_match.hpp"

#include <stdexcept>

namespace menshen {

std::optional<std::size_t> ExactMatchCam::Lookup(const BitVec& key,
                                                 ModuleId module) const {
  ++lookups_;
  if (key.width() != params::kKeyBits)
    throw std::invalid_argument("CAM key must be 193 bits");
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const CamEntry& e = entries_[i];
    // The module ID comparison is part of the match itself: the stored
    // entry is (key ++ module) and the search word is (key ++ module).
    if (e.valid && e.module == module && e.key == key) {
      ++hits_;
      return i;
    }
  }
  return std::nullopt;
}

void ExactMatchCam::Write(std::size_t address, CamEntry entry) {
  if (address >= entries_.size())
    throw std::out_of_range("CAM address out of range");
  entries_[address] = std::move(entry);
}

const CamEntry& ExactMatchCam::At(std::size_t address) const {
  if (address >= entries_.size())
    throw std::out_of_range("CAM address out of range");
  return entries_[address];
}

std::size_t ExactMatchCam::CountForModule(ModuleId module) const {
  std::size_t n = 0;
  for (const auto& e : entries_)
    if (e.valid && e.module == module) ++n;
  return n;
}

}  // namespace menshen
