// Programmable parser and deparser (sections 3.1, 4.1).
//
// The parser extracts the module ID from the VLAN ID, looks up that
// module's parsing actions in the parser overlay table, and pulls header
// bytes from the first 128 bytes of the packet into PHV containers.  The
// PHV is zeroed first so nothing leaks between packets of different
// modules.  The deparser performs the inverse using an identically
// formatted table: it writes container bytes back into the packet at the
// configured offsets.
#pragma once

#include "packet/packet.hpp"
#include "phv/phv.hpp"
#include "pipeline/entries.hpp"
#include "pipeline/exec_plan.hpp"
#include "pipeline/overlay_table.hpp"

namespace menshen {

class Parser {
 public:
  /// Parses `pkt` into a fresh PHV under the packet's module configuration.
  [[nodiscard]] Phv Parse(const Packet& pkt) const;

  /// Batched hot path: parses `pkt` into the caller-owned `phv`, clearing
  /// it first so buffer reuse across packets preserves the zero-PHV
  /// isolation guarantee.  This is the linear full parse — every valid
  /// action of the module's entry runs — retained as the differential
  /// reference for the planned variant below.
  void ParseInto(const Packet& pkt, Phv& phv) const;

  /// Compiled-plan variant: runs only the plan's live actions (the
  /// pipeline's liveness analysis pruned the rest), no per-action valid
  /// checks, no overlay-table read — the caller resolved the plan per
  /// module run.  Containers whose parse was pruned stay zero; they are
  /// provably unobservable in the packet the pipeline emits
  /// (tests/test_exec_plan.cpp pins this against ParseInto).
  void ParseIntoPlanned(const Packet& pkt, Phv& phv,
                        const ParsePlan& plan) const;

  [[nodiscard]] OverlayTable<ParserEntry>& table() { return table_; }
  [[nodiscard]] const OverlayTable<ParserEntry>& table() const {
    return table_;
  }

 private:
  OverlayTable<ParserEntry> table_;
};

class Deparser {
 public:
  /// Writes the PHV containers named by the module's deparser entry back
  /// into the packet header bytes, then applies the PHV's disposition
  /// metadata (egress port / discard flag) to the packet.  Linear full
  /// deparse — the differential reference for the planned variant.
  void Deparse(const Phv& phv, Packet& pkt) const;

  /// Compiled-plan variant: writes back only the actions that can change
  /// packet bytes — identity writes (unmodified container returning to
  /// the offset it was parsed from) were pruned at plan compile time.
  void DeparsePlanned(const Phv& phv, Packet& pkt,
                      const DeparsePlan& plan) const;

  [[nodiscard]] OverlayTable<DeparserEntry>& table() { return table_; }
  [[nodiscard]] const OverlayTable<DeparserEntry>& table() const {
    return table_;
  }

 private:
  OverlayTable<DeparserEntry> table_;
};

}  // namespace menshen
