// Exact-match CAM (sections 3.1, 4.1).
//
// A 205-bit-wide, 16-entry-deep content-addressable memory per stage.  To
// enforce isolation, the packet's 12-bit module ID is appended to the
// 193-bit key; each stored entry carries the module ID of its owner, so a
// module's packets can never match another module's entries even if the
// key bits collide.  The lookup result (the matching address) indexes the
// VLIW action table.
//
// The data path never scans the array: Write keeps two hash-indexed
// shadows coherent with the stored entries, and Lookup is a probe —
//
//   * a per-module BitVec-keyed index for full 193-bit keys, and
//   * a per-module u64-keyed index over the entries whose key fits word 0
//     (every bit above 63 zero), serving the one-word fast path the
//     stage's key plan compiles when a module's masked key layout fits a
//     single 64-bit word.
//
// Where a module stores the same key at several addresses the indexes
// hold the lowest one, matching the priority of the hardware scan.  The
// linear scan itself survives as LookupLinear, the debug/differential
// reference the randomized match-index test pins the shadows against.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bitvec.hpp"
#include "common/counters.hpp"
#include "pipeline/entries.hpp"

namespace menshen {

class ExactMatchCam {
 public:
  explicit ExactMatchCam(std::size_t depth = params::kCamDepth)
      : entries_(depth) {}

  [[nodiscard]] std::size_t depth() const { return entries_.size(); }

  /// Looks up `key` (already masked by the module's key mask) augmented
  /// with `module`.  Returns the matching address, or nullopt on miss.
  /// Hash probe against the Write-maintained shadow index.
  [[nodiscard]] std::optional<std::size_t> Lookup(const BitVec& key,
                                                  ModuleId module) const;

  /// One-word fast path: looks up a masked key whose set bits all lie in
  /// word 0, passed as a plain u64.  Behaviourally identical to Lookup
  /// with the zero-extended 193-bit key — pure integer hash probe.
  [[nodiscard]] std::optional<std::size_t> LookupWord(u64 key_w0,
                                                      ModuleId module) const;

  // Per-module shadow-index handles, resolved once per module run so
  // the per-packet probe skips the outer module-map hop.  A handle is
  // invalidated by any Write (the indexes rebuild); run contexts never
  // span a configuration change, so they re-resolve in time.  A null
  // handle is valid and always misses (module owns no indexed entries).
  using WordIndexHandle = const std::unordered_map<u64, u32>*;
  using KeyIndexHandle = const std::unordered_map<BitVec, u32>*;
  [[nodiscard]] WordIndexHandle WordIndexFor(ModuleId module) const {
    const auto mit = word_index_.find(module.value());
    return mit == word_index_.end() ? nullptr : &mit->second;
  }
  [[nodiscard]] KeyIndexHandle KeyIndexFor(ModuleId module) const {
    const auto mit = index_.find(module.value());
    return mit == index_.end() ? nullptr : &mit->second;
  }
  /// LookupWord against a pre-resolved handle: same result, same
  /// counters, one hash probe.
  [[nodiscard]] std::optional<std::size_t> LookupWordWith(WordIndexHandle h,
                                                          u64 key_w0) const {
    lookups_.Add();
    if (h != nullptr) {
      const auto kit = h->find(key_w0);
      if (kit != h->end()) {
        hits_.Add();
        return kit->second;
      }
    }
    return std::nullopt;
  }
  /// Lookup against a pre-resolved handle (wide-key path).
  [[nodiscard]] std::optional<std::size_t> LookupWith(KeyIndexHandle h,
                                                      const BitVec& key) const {
    lookups_.Add();
    CheckKeyWidth(key);
    if (h != nullptr) {
      const auto kit = h->find(key);
      if (kit != h->end()) {
        hits_.Add();
        return kit->second;
      }
    }
    return std::nullopt;
  }

  /// The hardware's linear scan, retained as the debug/differential
  /// reference for the shadow indexes.  Same counters, same result.
  [[nodiscard]] std::optional<std::size_t> LookupLinear(const BitVec& key,
                                                        ModuleId module) const;

  void Write(std::size_t address, CamEntry entry);
  [[nodiscard]] const CamEntry& At(std::size_t address) const;

  /// Number of valid entries currently owned by `module`.
  [[nodiscard]] std::size_t CountForModule(ModuleId module) const;

  // Relaxed counters: safe to read while shard workers are mid-batch.
  [[nodiscard]] u64 lookups() const { return lookups_.load(); }
  [[nodiscard]] u64 hits() const { return hits_.load(); }

  /// Accounts `n` additional lookups whose result a run context resolved
  /// once (an all-zero-mask module probes the same key every packet):
  /// the counters advance exactly as if each packet had probed.
  void NoteConstantLookups(u64 n, bool hit) const {
    lookups_.Add(n);
    if (hit) hits_.Add(n);
  }

  /// Bulk accounting for lookups whose outcome the flow-verdict cache
  /// replayed without probing: `lookups` probes of which `hits` matched,
  /// accumulated over one module run and flushed here in one step.
  void NoteCachedLookups(u64 lookups, u64 hits) const {
    lookups_.Add(lookups);
    hits_.Add(hits);
  }

  /// Bumped on every Write — lets derived caches (the pipeline's
  /// execution plans) detect entry changes without being wired into the
  /// configuration path.
  [[nodiscard]] u64 version() const { return version_; }

 private:
  void CheckKeyWidth(const BitVec& key) const;
  /// Rebuilds both shadow indexes from the stored entries (config path
  /// only; the array is 16 entries deep).
  void RebuildIndex();

  std::vector<CamEntry> entries_;
  // module -> (stored key -> lowest matching address).
  std::unordered_map<u16, std::unordered_map<BitVec, u32>> index_;
  // module -> (key word 0 -> lowest matching address), entries with
  // key_hi_zero only — the reachable set of the one-word fast path.
  std::unordered_map<u16, std::unordered_map<u64, u32>> word_index_;
  mutable RelaxedCounter lookups_;
  mutable RelaxedCounter hits_;
  u64 version_ = 0;
};

}  // namespace menshen
