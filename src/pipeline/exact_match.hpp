// Exact-match CAM (sections 3.1, 4.1).
//
// A 205-bit-wide, 16-entry-deep content-addressable memory per stage.  To
// enforce isolation, the packet's 12-bit module ID is appended to the
// 193-bit key; each stored entry carries the module ID of its owner, so a
// module's packets can never match another module's entries even if the
// key bits collide.  The lookup result (the matching address) indexes the
// VLIW action table.
#pragma once

#include <optional>
#include <vector>

#include "common/bitvec.hpp"
#include "pipeline/entries.hpp"

namespace menshen {

class ExactMatchCam {
 public:
  explicit ExactMatchCam(std::size_t depth = params::kCamDepth)
      : entries_(depth) {}

  [[nodiscard]] std::size_t depth() const { return entries_.size(); }

  /// Looks up `key` (already masked by the module's key mask) augmented
  /// with `module`.  Returns the matching address, or nullopt on miss.
  [[nodiscard]] std::optional<std::size_t> Lookup(const BitVec& key,
                                                  ModuleId module) const;

  void Write(std::size_t address, CamEntry entry);
  [[nodiscard]] const CamEntry& At(std::size_t address) const;

  /// Number of valid entries currently owned by `module`.
  [[nodiscard]] std::size_t CountForModule(ModuleId module) const;

  [[nodiscard]] u64 lookups() const { return lookups_; }
  [[nodiscard]] u64 hits() const { return hits_; }

 private:
  std::vector<CamEntry> entries_;
  mutable u64 lookups_ = 0;
  mutable u64 hits_ = 0;
};

}  // namespace menshen
