#include "pipeline/pifo.hpp"

#include <algorithm>

namespace menshen {

bool Pifo::Push(PifoEntry entry) {
  if (heap_.size() >= capacity_) {
    ++drops_;
    return false;
  }
  entry.seq = seq_++;
  heap_.push(entry);
  return true;
}

std::optional<PifoEntry> Pifo::Pop() {
  if (heap_.empty()) return std::nullopt;
  PifoEntry top = heap_.top();
  heap_.pop();
  return top;
}

void StfqScheduler::SetWeight(ModuleId module, double weight) {
  if (weight <= 0.0) throw std::invalid_argument("weight must be positive");
  weights_[module.value()] = weight;
}

bool StfqScheduler::Enqueue(ModuleId module, std::size_t bytes) {
  const auto wit = weights_.find(module.value());
  const double weight = wit == weights_.end() ? 1.0 : wit->second;

  // STFQ: start = max(virtual time, module's previous finish).
  u64& finish = finish_[module.value()];
  const u64 start = std::max(virtual_time_, finish);
  finish = start + static_cast<u64>(static_cast<double>(bytes) / weight);

  PifoEntry e;
  e.rank = start;
  e.module = module.value();
  e.bytes = bytes;
  return pifo_.Push(e);
}

std::optional<PifoEntry> StfqScheduler::Dequeue() {
  auto e = pifo_.Pop();
  if (e) virtual_time_ = e->rank;
  return e;
}

}  // namespace menshen
