// Ternary CAM with isolation (paper Appendix B).
//
// The Xilinx CAM IP resolves multiple ternary matches by entry address:
// the lowest address wins.  Isolation on top of that block requires (1)
// appending the module ID to every entry — a module's packets never match
// another module's rules — and (2) allocating a *contiguous* block of
// addresses to each module so that rule updates for one module never move
// another module's rules (and hence never change their priorities).
//
// TernaryCam implements the CAM itself; TcamAllocator manages contiguous
// per-module address regions and rejects out-of-region writes.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bitvec.hpp"
#include "common/bytes.hpp"
#include "common/counters.hpp"
#include "pipeline/entries.hpp"

namespace menshen {

struct TcamEntry {
  bool valid = false;
  BitVec key{params::kKeyBits};
  BitVec mask{params::kKeyBits};  // 1 = bit must match
  ModuleId module;

  [[nodiscard]] ByteBuffer Encode() const;  // 53 bytes
  static TcamEntry Decode(const ByteBuffer& bytes);
  bool operator==(const TcamEntry&) const = default;
};

class TernaryCam {
 public:
  explicit TernaryCam(std::size_t depth = params::kCamDepth)
      : entries_(depth) {}

  [[nodiscard]] std::size_t depth() const { return entries_.size(); }

  /// Lowest-address match wins (Xilinx CAM priority mode).  The scan is
  /// restricted to the address span holding the caller module's valid
  /// entries (maintained by Write) — a packet's lookup never walks the
  /// regions other modules own — and each candidate is compared with one
  /// fused word-level masked compare (BitVec::EqualsMasked).
  [[nodiscard]] std::optional<std::size_t> Lookup(const BitVec& key,
                                                  ModuleId module) const;

  /// The full-depth scan with per-entry masked temporaries, retained as
  /// the debug/differential reference for the narrowed lookup.
  [[nodiscard]] std::optional<std::size_t> LookupLinear(const BitVec& key,
                                                        ModuleId module) const;

  /// Counter-free Lookup for the flow-verdict cache's fill path: same
  /// result and same narrowed scan, but the entries examined land in
  /// `scanned` for later bulk accounting instead of the live counters
  /// (the fill packet's probe is accounted when its verdict is applied,
  /// exactly once, like every other packet of the run).
  [[nodiscard]] std::optional<std::size_t> LookupQuiet(const BitVec& key,
                                                       ModuleId module,
                                                       u64& scanned) const;

  void Write(std::size_t address, TcamEntry entry);
  [[nodiscard]] const TcamEntry& At(std::size_t address) const;

  // Relaxed counters: safe to read while shard workers are mid-batch.
  [[nodiscard]] u64 lookups() const { return lookups_.load(); }
  [[nodiscard]] u64 hits() const { return hits_.load(); }
  /// Entries examined by Lookup since construction — the region-narrowing
  /// invariant tests pin this (a module's lookups cost at most the size
  /// of its own span, not the CAM depth).
  [[nodiscard]] u64 entries_scanned() const {
    return entries_scanned_.load();
  }

  /// Accounts `n` additional lookups whose result a run context resolved
  /// once (an all-zero-mask module probes the same key every packet),
  /// with `scanned_per_op` entries examined per probe: the counters
  /// advance exactly as if each packet had probed.
  void NoteConstantLookups(u64 n, bool hit, u64 scanned_per_op) const {
    lookups_.Add(n);
    if (hit) hits_.Add(n);
    entries_scanned_.Add(n * scanned_per_op);
  }

  /// Bulk accounting for lookups whose outcome the flow-verdict cache
  /// replayed without probing: `lookups` probes, `hits` matches and
  /// `scanned` total entries examined, accumulated over one module run
  /// and flushed here in one step.
  void NoteCachedLookups(u64 lookups, u64 hits, u64 scanned) const {
    lookups_.Add(lookups);
    hits_.Add(hits);
    entries_scanned_.Add(scanned);
  }

  /// Bumped on every Write — lets derived caches (the pipeline's
  /// execution plans) detect entry changes without being wired into the
  /// configuration path.
  [[nodiscard]] u64 version() const { return version_; }

 private:
  /// Inclusive address span [lo, hi] of one module's valid entries.
  struct Span {
    u32 lo = 0;
    u32 hi = 0;
  };
  void RebuildSpans();

  std::vector<TcamEntry> entries_;
  std::unordered_map<u16, Span> spans_;
  mutable RelaxedCounter lookups_;
  mutable RelaxedCounter hits_;
  mutable RelaxedCounter entries_scanned_;
  u64 version_ = 0;
};

/// Contiguous address-region allocator for per-module TCAM isolation.
class TcamAllocator {
 public:
  explicit TcamAllocator(std::size_t depth) : depth_(depth) {}

  /// Reserves `count` contiguous addresses for `module`.  Returns the base
  /// address, or nullopt if no contiguous region is free.
  std::optional<std::size_t> Allocate(ModuleId module, std::size_t count);

  /// Releases a module's region.
  void Release(ModuleId module);

  /// True iff `address` lies inside `module`'s region — the guard the
  /// control plane applies before any TCAM write.
  [[nodiscard]] bool Owns(ModuleId module, std::size_t address) const;

  struct Region {
    std::size_t base = 0;
    std::size_t count = 0;
  };
  [[nodiscard]] std::optional<Region> RegionOf(ModuleId module) const;

 private:
  std::size_t depth_;
  std::map<ModuleId, Region> regions_;
};

}  // namespace menshen
