// Ternary CAM with isolation (paper Appendix B).
//
// The Xilinx CAM IP resolves multiple ternary matches by entry address:
// the lowest address wins.  Isolation on top of that block requires (1)
// appending the module ID to every entry — a module's packets never match
// another module's rules — and (2) allocating a *contiguous* block of
// addresses to each module so that rule updates for one module never move
// another module's rules (and hence never change their priorities).
//
// TernaryCam implements the CAM itself; TcamAllocator manages contiguous
// per-module address regions and rejects out-of-region writes.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/bitvec.hpp"
#include "common/bytes.hpp"
#include "pipeline/entries.hpp"

namespace menshen {

struct TcamEntry {
  bool valid = false;
  BitVec key{params::kKeyBits};
  BitVec mask{params::kKeyBits};  // 1 = bit must match
  ModuleId module;

  [[nodiscard]] ByteBuffer Encode() const;  // 53 bytes
  static TcamEntry Decode(const ByteBuffer& bytes);
  bool operator==(const TcamEntry&) const = default;
};

class TernaryCam {
 public:
  explicit TernaryCam(std::size_t depth = params::kCamDepth)
      : entries_(depth) {}

  [[nodiscard]] std::size_t depth() const { return entries_.size(); }

  /// Lowest-address match wins (Xilinx CAM priority mode).
  [[nodiscard]] std::optional<std::size_t> Lookup(const BitVec& key,
                                                  ModuleId module) const;

  void Write(std::size_t address, TcamEntry entry);
  [[nodiscard]] const TcamEntry& At(std::size_t address) const;

 private:
  std::vector<TcamEntry> entries_;
};

/// Contiguous address-region allocator for per-module TCAM isolation.
class TcamAllocator {
 public:
  explicit TcamAllocator(std::size_t depth) : depth_(depth) {}

  /// Reserves `count` contiguous addresses for `module`.  Returns the base
  /// address, or nullopt if no contiguous region is free.
  std::optional<std::size_t> Allocate(ModuleId module, std::size_t count);

  /// Releases a module's region.
  void Release(ModuleId module);

  /// True iff `address` lies inside `module`'s region — the guard the
  /// control plane applies before any TCAM write.
  [[nodiscard]] bool Owns(ModuleId module, std::size_t address) const;

  struct Region {
    std::size_t base = 0;
    std::size_t count = 0;
  };
  [[nodiscard]] std::optional<Region> RegionOf(ModuleId module) const;

 private:
  std::size_t depth_;
  std::map<ModuleId, Region> regions_;
};

}  // namespace menshen
