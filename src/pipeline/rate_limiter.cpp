#include "pipeline/rate_limiter.hpp"

#include <algorithm>

namespace menshen {

void RateLimiter::SetLimit(ModuleId module, const RateLimit& limit) {
  Bucket b;
  b.limit = limit;
  b.packet_tokens = limit.burst_packets;
  b.byte_tokens = limit.burst_bytes;
  buckets_[module.value()] = b;
}

void RateLimiter::ClearLimit(ModuleId module) {
  buckets_.erase(module.value());
}

bool RateLimiter::HasLimit(ModuleId module) const {
  return buckets_.contains(module.value());
}

void RateLimiter::Refill(Bucket& b, Cycle now) const {
  if (now <= b.last_refill) return;
  const double elapsed_s =
      static_cast<double>(now - b.last_refill) / clock_hz_;
  if (b.limit.max_pps > 0.0)
    b.packet_tokens = std::min(b.limit.burst_packets,
                               b.packet_tokens + elapsed_s * b.limit.max_pps);
  if (b.limit.max_bps > 0.0)
    b.byte_tokens =
        std::min(b.limit.burst_bytes,
                 b.byte_tokens + elapsed_s * b.limit.max_bps / 8.0);
  b.last_refill = now;
}

bool RateLimiter::Admit(ModuleId module, std::size_t bytes, Cycle now) {
  const auto it = buckets_.find(module.value());
  if (it == buckets_.end()) return true;  // unlimited
  Bucket& b = it->second;
  Refill(b, now);

  const bool pps_ok = b.limit.max_pps <= 0.0 || b.packet_tokens >= 1.0;
  const bool bps_ok =
      b.limit.max_bps <= 0.0 || b.byte_tokens >= static_cast<double>(bytes);
  if (!pps_ok || !bps_ok) {
    ++b.dropped;
    return false;
  }
  if (b.limit.max_pps > 0.0) b.packet_tokens -= 1.0;
  if (b.limit.max_bps > 0.0) b.byte_tokens -= static_cast<double>(bytes);
  return true;
}

u64 RateLimiter::dropped(ModuleId module) const {
  const auto it = buckets_.find(module.value());
  return it == buckets_.end() ? 0 : it->second.dropped;
}

}  // namespace menshen
