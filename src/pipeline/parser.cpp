#include "pipeline/parser.hpp"

#include <algorithm>

namespace menshen {

Phv Parser::Parse(const Packet& pkt) const {
  Phv phv;  // constructor zeroes every byte (isolation, section 4.1)
  ParseInto(pkt, phv);
  return phv;
}

void Parser::ParseInto(const Packet& pkt, Phv& phv) const {
  phv.Clear();  // reused buffers must start all-zero (isolation, section 4.1)
  phv.module_id = pkt.vid();

  // Pipeline-provided metadata (section 4.3).
  phv.set_meta_u16(meta::kSrcPort, pkt.ingress_port);
  phv.set_meta_u16(meta::kPktLen, static_cast<u16>(
                                      std::min<std::size_t>(pkt.size(), 0xFFFF)));
  phv.set_meta_u8(meta::kBufferTag, static_cast<u8>(1u << (pkt.buffer_tag & 3)));

  const ParserEntry& entry = table_.Lookup(phv.module_id);
  for (const ParserAction& a : entry.actions) {
    if (!a.valid) continue;
    auto dst = phv.ContainerBytes(a.container);
    const std::size_t start = a.bytes_from_head;
    // Extraction is confined to the 128-byte parser window; bytes beyond
    // the end of the packet read as zero (the PHV is already zeroed).
    for (std::size_t i = 0; i < dst.size(); ++i) {
      const std::size_t off = start + i;
      if (off < kParserWindowBytes && off < pkt.size())
        dst[i] = pkt.bytes().u8_at(off);
    }
  }
}

void Deparser::Deparse(const Phv& phv, Packet& pkt) const {
  const DeparserEntry& entry = table_.Lookup(phv.module_id);
  for (const ParserAction& a : entry.actions) {
    if (!a.valid) continue;
    const auto src = phv.ContainerBytes(a.container);
    const std::size_t start = a.bytes_from_head;
    for (std::size_t i = 0; i < src.size(); ++i) {
      const std::size_t off = start + i;
      if (off < kParserWindowBytes && off < pkt.size())
        pkt.bytes().set_u8(off, src[i]);
    }
  }

  // Apply pipeline disposition metadata.
  if (phv.discard_flag()) {
    pkt.disposition = Disposition::kDrop;
  } else if (!pkt.multicast_ports.empty()) {
    pkt.disposition = Disposition::kMulticast;
  } else {
    pkt.disposition = Disposition::kForward;
    pkt.egress_port = phv.meta_u16(meta::kDstPort);
  }
}

}  // namespace menshen
