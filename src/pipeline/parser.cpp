#include "pipeline/parser.hpp"

#include <algorithm>
#include <cstring>

#include "pipeline/plan_exec.hpp"

namespace menshen {

namespace {

/// Shared data-movement core of the full and planned parse paths: pulls
/// one action's bytes from the parser window into its PHV container.
/// Bytes beyond the window or the packet read as zero (the PHV is
/// already zeroed).  The common case — the whole span inside both the
/// window and the packet — is a single memcpy.
inline void ExtractAction(const ParserAction& a, const Packet& pkt, Phv& phv) {
  auto dst = phv.ContainerBytes(a.container);
  const std::size_t start = a.bytes_from_head;
  const std::size_t limit =
      std::min<std::size_t>(kParserWindowBytes, pkt.size());
  if (start + dst.size() <= limit) {
    std::memcpy(dst.data(), pkt.bytes().bytes().data() + start, dst.size());
    return;
  }
  for (std::size_t i = 0; i < dst.size(); ++i) {
    const std::size_t off = start + i;
    if (off < limit) dst[i] = pkt.bytes().u8_at(off);
  }
}

/// Inverse movement for the deparser: writes one action's container
/// bytes back into the packet at the configured offset.
inline void DepositAction(const ParserAction& a, const Phv& phv, Packet& pkt) {
  const auto src = phv.ContainerBytes(a.container);
  const std::size_t start = a.bytes_from_head;
  const std::size_t limit =
      std::min<std::size_t>(kParserWindowBytes, pkt.size());
  if (start + src.size() <= limit) {
    std::memcpy(pkt.bytes().bytes().data() + start, src.data(), src.size());
    return;
  }
  for (std::size_t i = 0; i < src.size(); ++i) {
    const std::size_t off = start + i;
    if (off < limit) pkt.bytes().set_u8(off, src[i]);
  }
}

}  // namespace

Phv Parser::Parse(const Packet& pkt) const {
  Phv phv;  // constructor zeroes every byte (isolation, section 4.1)
  ParseInto(pkt, phv);
  return phv;
}

void Parser::ParseInto(const Packet& pkt, Phv& phv) const {
  phv.Clear();  // reused buffers must start all-zero (isolation, section 4.1)
  phv.module_id = pkt.vid();
  FillPipelineMetadata(pkt, phv);

  const ParserEntry& entry = table_.Lookup(phv.module_id);
  for (const ParserAction& a : entry.actions) {
    if (!a.valid) continue;
    ExtractAction(a, pkt, phv);
  }
}

void Parser::ParseIntoPlanned(const Packet& pkt, Phv& phv,
                              const ParsePlan& plan) const {
  phv.Clear();  // pruned containers must read as zero, like any dead one
  PlannedParseInto(pkt, phv, plan);
}

void Deparser::Deparse(const Phv& phv, Packet& pkt) const {
  const DeparserEntry& entry = table_.Lookup(phv.module_id);
  for (const ParserAction& a : entry.actions) {
    if (!a.valid) continue;
    DepositAction(a, phv, pkt);
  }
  ApplyDisposition(phv, pkt);
}

void Deparser::DeparsePlanned(const Phv& phv, Packet& pkt,
                              const DeparsePlan& plan) const {
  PlannedDeparseFrom(phv, pkt, plan);
}

}  // namespace menshen
