#include "pipeline/entries.hpp"

#include <stdexcept>

namespace menshen {

// --- ParserAction -----------------------------------------------------------

u16 ParserAction::Encode() const {
  if (bytes_from_head >= 128)
    throw std::invalid_argument("parser offset exceeds 7 bits");
  u16 bits = 0;
  bits |= valid ? 1 : 0;
  bits |= static_cast<u16>(container.index & 0x7) << 1;
  bits |= static_cast<u16>(static_cast<u8>(container.type) & 0x3) << 4;
  bits |= static_cast<u16>(bytes_from_head & 0x7F) << 6;
  return bits;
}

ParserAction ParserAction::Decode(u16 bits) {
  ParserAction a;
  a.valid = (bits & 1) != 0;
  a.container.index = static_cast<u8>((bits >> 1) & 0x7);
  const u8 type = static_cast<u8>((bits >> 4) & 0x3);
  if (type > 2) throw std::invalid_argument("bad container type in parser action");
  a.container.type = static_cast<ContainerType>(type);
  a.bytes_from_head = static_cast<u8>((bits >> 6) & 0x7F);
  return a;
}

ByteBuffer ParserEntry::Encode() const {
  ByteBuffer out;
  for (const auto& a : actions) out.append_u16(a.Encode());
  return out;
}

ParserEntry ParserEntry::Decode(const ByteBuffer& bytes) {
  if (bytes.size() != params::kParserActionsPerEntry * 2)
    throw std::invalid_argument("parser entry must be 20 bytes");
  ParserEntry e;
  for (std::size_t i = 0; i < e.actions.size(); ++i)
    e.actions[i] = ParserAction::Decode(bytes.u16_at(i * 2));
  return e;
}

std::size_t ParserEntry::valid_count() const {
  std::size_t n = 0;
  for (const auto& a : actions)
    if (a.valid) ++n;
  return n;
}

// --- Operand8 ---------------------------------------------------------------

Operand8 Operand8::Immediate(u8 value) {
  if (value >= 128) throw std::invalid_argument("immediate exceeds 7 bits");
  return Operand8{value};
}

Operand8 Operand8::Container(ContainerRef c) {
  u8 bits = 0x80;
  bits |= static_cast<u8>(static_cast<u8>(c.type) & 0x3) << 5;
  bits |= c.index & 0x7;
  return Operand8{bits};
}

ContainerRef Operand8::container() const {
  if (!is_container())
    throw std::logic_error("operand is an immediate, not a container");
  const u8 type = (bits >> 5) & 0x3;
  if (type > 2) throw std::invalid_argument("bad container type in operand");
  return ContainerRef{static_cast<ContainerType>(type),
                      static_cast<u8>(bits & 0x7)};
}

u64 Operand8::Eval(const Phv& phv) const {
  return is_container() ? phv.Read(container()) : immediate();
}

// --- Key extractor / key mask ----------------------------------------------

std::array<KeySlot, 6> KeySlots() {
  // LSB-first layout: predicate bit at 0, then 2nd2B, 1st2B, 2nd4B, 1st4B,
  // 2nd6B, 1st6B (slot order in `selectors` is {1st6B..2nd2B}).
  return {{
      {145, 48},  // 1st 6B
      {97, 48},   // 2nd 6B
      {65, 32},   // 1st 4B
      {33, 32},   // 2nd 4B
      {17, 16},   // 1st 2B
      {1, 16},    // 2nd 2B
  }};
}

namespace {
constexpr std::array<ContainerType, 6> kSlotTypes = {
    ContainerType::k6B, ContainerType::k6B, ContainerType::k4B,
    ContainerType::k4B, ContainerType::k2B, ContainerType::k2B};
}  // namespace

std::array<ContainerType, 6> KeySlotTypes() { return kSlotTypes; }

ByteBuffer KeyExtractorEntry::Encode() const {
  // 38 bits: selectors (18) | cmp_op (4) | cmp_a (8) | cmp_b (8).
  u64 bits = 0;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    if (selectors[i] >= kContainersPerType)
      throw std::invalid_argument("key selector index out of range");
    bits |= static_cast<u64>(selectors[i] & 0x7) << pos;
    pos += 3;
  }
  bits |= static_cast<u64>(static_cast<u8>(cmp_op) & 0xF) << pos;
  pos += 4;
  bits |= static_cast<u64>(cmp_a.bits) << pos;
  pos += 8;
  bits |= static_cast<u64>(cmp_b.bits) << pos;
  pos += 8;
  if (ternary) bits |= u64{1} << pos;  // spare bit 38: match kind

  ByteBuffer out;
  for (int i = 0; i < 5; ++i) out.append_u8(static_cast<u8>(bits >> (8 * i)));
  return out;
}

KeyExtractorEntry KeyExtractorEntry::Decode(const ByteBuffer& bytes) {
  if (bytes.size() != 5)
    throw std::invalid_argument("key extractor entry must be 5 bytes");
  u64 bits = 0;
  for (int i = 4; i >= 0; --i)
    bits = (bits << 8) | bytes.u8_at(static_cast<std::size_t>(i));
  KeyExtractorEntry e;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    e.selectors[i] = static_cast<u8>((bits >> pos) & 0x7);
    pos += 3;
  }
  const u8 op = static_cast<u8>((bits >> pos) & 0xF);
  if (op > static_cast<u8>(CmpOp::kLe))
    throw std::invalid_argument("bad comparison opcode");
  e.cmp_op = static_cast<CmpOp>(op);
  pos += 4;
  e.cmp_a.bits = static_cast<u8>((bits >> pos) & 0xFF);
  pos += 8;
  e.cmp_b.bits = static_cast<u8>((bits >> pos) & 0xFF);
  pos += 8;
  e.ternary = ((bits >> pos) & 1) != 0;
  return e;
}

BitVec KeyExtractorEntry::ExtractKey(const Phv& phv) const {
  BitVec key;
  ExtractKeyInto(phv, key);
  return key;
}

namespace {

bool EvalPredicate(CmpOp op, const Operand8& cmp_a, const Operand8& cmp_b,
                   const Phv& phv) {
  const u64 a = cmp_a.Eval(phv);
  const u64 b = cmp_b.Eval(phv);
  switch (op) {
    case CmpOp::kNone:
      return false;
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNeq:
      return a != b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kGe:
      return a >= b;
    case CmpOp::kLe:
      return a <= b;
  }
  return false;
}

}  // namespace

void KeyExtractorEntry::ExtractKeyInto(const Phv& phv, BitVec& key) const {
  key.AssignZero(params::kKeyBits);
  const auto slots = KeySlots();
  for (std::size_t i = 0; i < 6; ++i) {
    const ContainerRef c{kSlotTypes[i], selectors[i]};
    key.set_field(slots[i].lsb, slots[i].bits, phv.Read(c));
  }
  // Predicate bit (bit 0).  Without a comparison there are no operands
  // to evaluate — the predicate is hardwired to 0.
  if (cmp_op == CmpOp::kNone) {
    key.set_bit(0, false);
    return;
  }
  key.set_bit(0, EvalPredicate(cmp_op, cmp_a, cmp_b, phv));
}

u64 KeyExtractorEntry::ExtractKeyWord0(const Phv& phv, u8 active_slots,
                                       bool pred_active) const {
  // Of the six key slots only 2nd4B (lsb 33), 1st2B (lsb 17) and 2nd2B
  // (lsb 1) place bits inside word 0; they never overlap each other or
  // the predicate bit.  2nd4B's top bit would land at position 64 and is
  // shifted out — the qualifying mask has no bit there to keep.
  const auto slots = KeySlots();
  u64 w = 0;
  for (std::size_t i = 3; i < 6; ++i) {
    if ((active_slots & (1u << i)) == 0) continue;
    const ContainerRef c{kSlotTypes[i], selectors[i]};
    w |= phv.Read(c) << slots[i].lsb;
  }
  if (pred_active && cmp_op != CmpOp::kNone &&
      EvalPredicate(cmp_op, cmp_a, cmp_b, phv))
    w |= 1;
  return w;
}

int KeyExtractorEntry::CompileWord0(u8 active_slots, bool pred_active,
                                    std::array<Word0Part, 3>& parts) const {
  if (pred_active && cmp_op != CmpOp::kNone)
    return -1;  // predicate needs Operand8 evaluation: keep the slow form
  const auto slots = KeySlots();
  int n = 0;
  for (std::size_t i = 3; i < 6; ++i) {
    if ((active_slots & (1u << i)) == 0) continue;
    const ContainerRef c{kSlotTypes[i], selectors[i]};
    parts[static_cast<std::size_t>(n++)] =
        Word0Part{static_cast<u16>(Phv::ByteOffsetOf(c)),
                  static_cast<u8>(c.width_bytes()),
                  static_cast<u8>(slots[i].lsb)};
  }
  return n;
}

void KeyExtractorEntry::ExtractKeyPartialInto(const Phv& phv, u8 active_slots,
                                              bool pred_active,
                                              BitVec& key) const {
  key.AssignZero(params::kKeyBits);
  const auto slots = KeySlots();
  for (std::size_t i = 0; i < 6; ++i) {
    if ((active_slots & (1u << i)) == 0) continue;
    const ContainerRef c{kSlotTypes[i], selectors[i]};
    key.set_field(slots[i].lsb, slots[i].bits, phv.Read(c));
  }
  if (pred_active && cmp_op != CmpOp::kNone)
    key.set_bit(0, EvalPredicate(cmp_op, cmp_a, cmp_b, phv));
}

ByteBuffer KeyMaskEntry::Encode() const {
  ByteBuffer out(25);
  for (std::size_t i = 0; i < 25; ++i) {
    const std::size_t lsb = i * 8;
    const std::size_t w = std::min<std::size_t>(8, params::kKeyBits - lsb);
    out.set_u8(i, static_cast<u8>(mask.field(lsb, w)));
  }
  return out;
}

KeyMaskEntry KeyMaskEntry::Decode(const ByteBuffer& bytes) {
  if (bytes.size() != 25)
    throw std::invalid_argument("key mask entry must be 25 bytes");
  KeyMaskEntry e;
  for (std::size_t i = 0; i < 25; ++i) {
    const std::size_t lsb = i * 8;
    const std::size_t w = std::min<std::size_t>(8, params::kKeyBits - lsb);
    const u8 byte = bytes.u8_at(i);
    if (w < 8 && (byte >> w) != 0)
      throw std::invalid_argument("key mask high bits must be zero");
    e.mask.set_field(lsb, w, byte & ((w == 8) ? 0xFF : ((1u << w) - 1)));
  }
  return e;
}

// --- CAM entries -------------------------------------------------------------

void CamEntry::RefreshWordCache() {
  key_w0 = key.word(0);
  key_hi_zero = key.high_words_zero();
}

ByteBuffer CamEntry::Encode() const {
  ByteBuffer out;
  out.append_u8(valid ? 1 : 0);
  out.append_u16(module.value());
  for (std::size_t i = 0; i < 25; ++i) {
    const std::size_t lsb = i * 8;
    const std::size_t w = std::min<std::size_t>(8, params::kKeyBits - lsb);
    out.append_u8(static_cast<u8>(key.field(lsb, w)));
  }
  return out;
}

CamEntry CamEntry::Decode(const ByteBuffer& bytes) {
  if (bytes.size() != 28)
    throw std::invalid_argument("CAM entry must be 28 bytes");
  CamEntry e;
  e.valid = bytes.u8_at(0) != 0;
  e.module = ModuleId(bytes.u16_at(1) & 0x0FFF);
  for (std::size_t i = 0; i < 25; ++i) {
    const std::size_t lsb = i * 8;
    const std::size_t w = std::min<std::size_t>(8, params::kKeyBits - lsb);
    e.key.set_field(lsb, w,
                    bytes.u8_at(3 + i) & ((w == 8) ? 0xFF : ((1u << w) - 1)));
  }
  return e;
}

// --- ALU actions -------------------------------------------------------------

bool OpUsesImmediate(AluOp op) {
  switch (op) {
    case AluOp::kAddi:
    case AluOp::kSubi:
    case AluOp::kSet:
    case AluOp::kLoad:
    case AluOp::kStore:
    case AluOp::kLoadd:
    case AluOp::kPort:
    case AluOp::kDiscard:
    case AluOp::kMcast:
      return true;
    default:
      return false;
  }
}

bool OpTouchesState(AluOp op) {
  switch (op) {
    case AluOp::kLoad:
    case AluOp::kStore:
    case AluOp::kLoadd:
    case AluOp::kLoadc:
    case AluOp::kStorec:
    case AluOp::kLoaddc:
      return true;
    default:
      return false;
  }
}

bool OpReadsContainer1(AluOp op) {
  switch (op) {
    case AluOp::kAdd:
    case AluOp::kSub:
    case AluOp::kAddi:
    case AluOp::kSubi:
    case AluOp::kStore:
    case AluOp::kCopy:
    case AluOp::kStorec:
      return true;
    default:
      return false;
  }
}

bool OpReadsContainer2(AluOp op) {
  switch (op) {
    case AluOp::kAdd:
    case AluOp::kSub:
    case AluOp::kLoadc:
    case AluOp::kStorec:
    case AluOp::kLoaddc:
      return true;
    default:
      return false;
  }
}

bool OpWritesSlotContainer(AluOp op) {
  switch (op) {
    case AluOp::kAdd:
    case AluOp::kSub:
    case AluOp::kAddi:
    case AluOp::kSubi:
    case AluOp::kSet:
    case AluOp::kLoad:
    case AluOp::kLoadd:
    case AluOp::kCopy:
    case AluOp::kLoadc:
    case AluOp::kLoaddc:
      return true;
    default:
      return false;
  }
}

const char* AluOpName(AluOp op) {
  switch (op) {
    case AluOp::kNop: return "nop";
    case AluOp::kAdd: return "add";
    case AluOp::kSub: return "sub";
    case AluOp::kAddi: return "addi";
    case AluOp::kSubi: return "subi";
    case AluOp::kSet: return "set";
    case AluOp::kLoad: return "load";
    case AluOp::kStore: return "store";
    case AluOp::kLoadd: return "loadd";
    case AluOp::kPort: return "port";
    case AluOp::kDiscard: return "discard";
    case AluOp::kCopy: return "copy";
    case AluOp::kLoadc: return "loadc";
    case AluOp::kStorec: return "storec";
    case AluOp::kLoaddc: return "loaddc";
    case AluOp::kMcast: return "mcast";
  }
  return "?";
}

u32 AluAction::Encode() const {
  if (container1 > kMetadataSlot || container2 > kMetadataSlot)
    throw std::invalid_argument("container slot out of range");
  u32 bits = 0;
  bits |= static_cast<u32>(static_cast<u8>(op) & 0xF) << 21;
  bits |= static_cast<u32>(container1 & 0x1F) << 16;
  if (OpUsesImmediate(op)) {
    bits |= immediate;
  } else {
    bits |= static_cast<u32>(container2 & 0x1F) << 11;
  }
  return bits;
}

AluAction AluAction::Decode(u32 bits) {
  if (bits >> 25) throw std::invalid_argument("ALU action exceeds 25 bits");
  AluAction a;
  const u8 op = static_cast<u8>((bits >> 21) & 0xF);
  a.op = static_cast<AluOp>(op);
  a.container1 = static_cast<u8>((bits >> 16) & 0x1F);
  if (OpUsesImmediate(a.op)) {
    a.immediate = static_cast<u16>(bits & 0xFFFF);
  } else {
    a.container2 = static_cast<u8>((bits >> 11) & 0x1F);
  }
  return a;
}

std::string AluAction::ToString() const {
  std::string s = AluOpName(op);
  s += " c";
  s += std::to_string(container1);
  if (OpUsesImmediate(op)) {
    s += ", #";
    s += std::to_string(immediate);
  } else {
    s += ", c";
    s += std::to_string(container2);
  }
  return s;
}

ByteBuffer VliwEntry::Encode() const {
  // 25 actions x 25 bits packed little-endian into 79 bytes (632 bits,
  // 7 pad bits at the top).
  BitVec packed(632);
  for (std::size_t i = 0; i < slots.size(); ++i)
    packed.set_field(i * params::kAluActionBits, params::kAluActionBits,
                     slots[i].Encode());
  ByteBuffer out(79);
  for (std::size_t i = 0; i < 79; ++i)
    out.set_u8(i, static_cast<u8>(packed.field(i * 8, 8)));
  return out;
}

VliwEntry VliwEntry::Decode(const ByteBuffer& bytes) {
  if (bytes.size() != 79)
    throw std::invalid_argument("VLIW entry must be 79 bytes");
  BitVec packed(632);
  for (std::size_t i = 0; i < 79; ++i) packed.set_field(i * 8, 8, bytes.u8_at(i));
  VliwEntry e;
  for (std::size_t i = 0; i < e.slots.size(); ++i)
    e.slots[i] = AluAction::Decode(static_cast<u32>(
        packed.field(i * params::kAluActionBits, params::kAluActionBits)));
  return e;
}

std::size_t VliwEntry::active_count() const {
  std::size_t n = 0;
  for (const auto& s : slots)
    if (s.op != AluOp::kNop) ++n;
  return n;
}

// --- Segment table -----------------------------------------------------------

ByteBuffer SegmentEntry::Encode() const {
  ByteBuffer out;
  out.append_u8(offset);
  out.append_u8(range);
  return out;
}

SegmentEntry SegmentEntry::Decode(const ByteBuffer& bytes) {
  if (bytes.size() != 2)
    throw std::invalid_argument("segment entry must be 2 bytes");
  return SegmentEntry{bytes.u8_at(0), bytes.u8_at(1)};
}

}  // namespace menshen
