#include "pipeline/packet_filter.hpp"

#include <stdexcept>

namespace menshen {

FilterVerdict PacketFilter::Classify(Packet& pkt) {
  // Per-packet hot path: one bound check covers every header field read
  // below (all offsets are < offsets::kPayload), then direct big-endian
  // loads replace the individually range-checked accessors — and the
  // VLAN test is evaluated once instead of again inside is_reconfig().
  const ByteBuffer& buf = pkt.bytes();
  if (buf.size() < offsets::kPayload) {
    ++dropped_no_vlan_;
    return FilterVerdict::kDropNoVlan;
  }
  const u8* d = buf.bytes().data();
  const u16 tpid = static_cast<u16>((u16{d[offsets::kVlanTpid]} << 8) |
                                    d[offsets::kVlanTpid + 1]);
  if (tpid != kEtherTypeVlan) {
    ++dropped_no_vlan_;
    return FilterVerdict::kDropNoVlan;
  }
  if (reconfig_on_data_path_ && d[offsets::kIpv4Proto] == kIpProtoUdp &&
      static_cast<u16>((u16{d[offsets::kL4DstPort]} << 8) |
                       d[offsets::kL4DstPort + 1]) == kReconfigUdpPort) {
    // Corundum connects the daisy chain behind the filter; the reserved
    // UDP destination port separates reconfiguration traffic.  (On the
    // NetFPGA build the chain is fed over PCIe only and data-path packets
    // to the reserved port are just data.)
    return FilterVerdict::kReconfig;
  }
  const ModuleId vid(static_cast<u16>(
      ((u16{d[offsets::kVlanTci]} << 8) | d[offsets::kVlanTci + 1]) & 0x0FFF));
  if (IsUnderReconfig(vid)) {
    // Drop in-flight packets of a module whose configuration is partially
    // written, so they are never processed by a mix of old and new config.
    ++dropped_bitmap_;
    return FilterVerdict::kDropBitmap;
  }
  // Round-robin buffer/parser assignment without the per-packet integer
  // division a `rr % buffers` would cost (the divisor is a runtime
  // value, so the compiler cannot strength-reduce it).
  pkt.buffer_tag = static_cast<u8>(rr_);
  if (++rr_ == buffers_) rr_ = 0;
  return FilterVerdict::kData;
}

void PacketFilter::MarkUnderReconfig(ModuleId module, bool under) {
  if (module.value() >= 32)
    throw std::out_of_range("bitmap covers module IDs 0-31");
  const u32 bit = u32{1} << module.value();
  if (under)
    bitmap_ |= bit;
  else
    bitmap_ &= ~bit;
}

bool PacketFilter::IsUnderReconfig(ModuleId module) const {
  if (module.value() >= 32) return false;
  return (bitmap_ & (u32{1} << module.value())) != 0;
}

}  // namespace menshen
