#include "pipeline/packet_filter.hpp"

#include <stdexcept>

namespace menshen {

FilterVerdict PacketFilter::Classify(Packet& pkt) {
  if (!pkt.has_vlan()) {
    ++dropped_no_vlan_;
    return FilterVerdict::kDropNoVlan;
  }
  if (reconfig_on_data_path_ && pkt.is_reconfig()) {
    // Corundum connects the daisy chain behind the filter; the reserved
    // UDP destination port separates reconfiguration traffic.  (On the
    // NetFPGA build the chain is fed over PCIe only and data-path packets
    // to the reserved port are just data.)
    return FilterVerdict::kReconfig;
  }
  if (IsUnderReconfig(pkt.vid())) {
    // Drop in-flight packets of a module whose configuration is partially
    // written, so they are never processed by a mix of old and new config.
    ++dropped_bitmap_;
    return FilterVerdict::kDropBitmap;
  }
  pkt.buffer_tag = static_cast<u8>(rr_ % buffers_);
  ++rr_;
  return FilterVerdict::kData;
}

void PacketFilter::MarkUnderReconfig(ModuleId module, bool under) {
  if (module.value() >= 32)
    throw std::out_of_range("bitmap covers module IDs 0-31");
  const u32 bit = u32{1} << module.value();
  if (under)
    bitmap_ |= bit;
  else
    bitmap_ &= ~bit;
}

bool PacketFilter::IsUnderReconfig(ModuleId module) const {
  if (module.value() >= 32) return false;
  return (bitmap_ & (u32{1} << module.value())) != 0;
}

}  // namespace menshen
