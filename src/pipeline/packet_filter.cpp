#include "pipeline/packet_filter.hpp"

#include <stdexcept>

namespace menshen {

void PacketFilter::MarkUnderReconfig(ModuleId module, bool under) {
  if (module.value() >= 32)
    throw std::out_of_range("bitmap covers module IDs 0-31");
  const u32 bit = u32{1} << module.value();
  if (under)
    bitmap_ |= bit;
  else
    bitmap_ &= ~bit;
}

bool PacketFilter::IsUnderReconfig(ModuleId module) const {
  if (module.value() >= 32) return false;
  return (bitmap_ & (u32{1} << module.value())) != 0;
}

}  // namespace menshen
