// Byte-buffer utilities: network-order readers/writers over contiguous
// byte storage.  All multi-byte packet fields in this codebase are
// big-endian (network order), matching what the hardware parser sees.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace menshen {

/// Growable byte buffer with bounds-checked big-endian accessors.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::size_t size) : data_(size, 0) {}
  explicit ByteBuffer(std::vector<u8> bytes) : data_(std::move(bytes)) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  void resize(std::size_t n) { data_.resize(n, 0); }

  [[nodiscard]] std::span<const u8> bytes() const { return data_; }
  [[nodiscard]] std::span<u8> bytes() { return data_; }

  [[nodiscard]] u8 u8_at(std::size_t off) const {
    CheckRange(off, 1);
    return data_[off];
  }
  [[nodiscard]] u16 u16_at(std::size_t off) const {
    CheckRange(off, 2);
    return static_cast<u16>((data_[off] << 8) | data_[off + 1]);
  }
  [[nodiscard]] u32 u32_at(std::size_t off) const {
    CheckRange(off, 4);
    return (static_cast<u32>(data_[off]) << 24) |
           (static_cast<u32>(data_[off + 1]) << 16) |
           (static_cast<u32>(data_[off + 2]) << 8) |
           static_cast<u32>(data_[off + 3]);
  }
  [[nodiscard]] u64 u48_at(std::size_t off) const {
    CheckRange(off, 6);
    u64 v = 0;
    for (std::size_t i = 0; i < 6; ++i) v = (v << 8) | data_[off + i];
    return v;
  }

  void set_u8(std::size_t off, u8 v) {
    CheckRange(off, 1);
    data_[off] = v;
  }
  void set_u16(std::size_t off, u16 v) {
    CheckRange(off, 2);
    data_[off] = static_cast<u8>(v >> 8);
    data_[off + 1] = static_cast<u8>(v);
  }
  void set_u32(std::size_t off, u32 v) {
    CheckRange(off, 4);
    for (std::size_t i = 0; i < 4; ++i)
      data_[off + i] = static_cast<u8>(v >> (8 * (3 - i)));
  }
  void set_u48(std::size_t off, u64 v) {
    CheckRange(off, 6);
    for (std::size_t i = 0; i < 6; ++i)
      data_[off + i] = static_cast<u8>(v >> (8 * (5 - i)));
  }

  /// Copies `src` into the buffer starting at `off` (bounds-checked).
  void write_bytes(std::size_t off, std::span<const u8> src);

  /// Reads `len` bytes starting at `off` (bounds-checked).
  [[nodiscard]] std::vector<u8> read_bytes(std::size_t off,
                                           std::size_t len) const;

  /// Appends raw bytes at the end.
  void append(std::span<const u8> src);
  void append_u8(u8 v) { data_.push_back(v); }
  void append_u16(u16 v);
  void append_u32(u32 v);

  [[nodiscard]] std::string hex() const;

  bool operator==(const ByteBuffer&) const = default;

 private:
  void CheckRange(std::size_t off, std::size_t len) const {
    if (off + len > data_.size())
      throw std::out_of_range("ByteBuffer access out of range: off=" +
                              std::to_string(off) + " len=" +
                              std::to_string(len) + " size=" +
                              std::to_string(data_.size()));
  }

  std::vector<u8> data_;
};

}  // namespace menshen
