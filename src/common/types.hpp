// Fundamental value types shared across the Menshen codebase.
//
// The paper carries the module identifier in the packet's VLAN ID (12 bits),
// so ModuleId is a strong wrapper around a 12-bit value.  Clock domains use
// 64-bit cycle counters; derived wall times are expressed in picoseconds to
// keep all arithmetic integral and exact at the clock frequencies we model
// (156.25 MHz => 6400 ps, 250 MHz => 4000 ps, 1 GHz => 1000 ps).
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>

namespace menshen {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// A simulated clock cycle count.
using Cycle = u64;

/// Picoseconds; integral so the simulator stays exact and deterministic.
using Picoseconds = u64;

/// Module identifier, carried in the 12-bit VLAN ID field (paper Table 5).
class ModuleId {
 public:
  static constexpr u16 kMax = 0xFFF;  // 12 bits

  constexpr ModuleId() = default;
  constexpr explicit ModuleId(u16 value) : value_(value) {
    if (value > kMax) throw std::out_of_range("ModuleId exceeds 12 bits");
  }

  [[nodiscard]] constexpr u16 value() const { return value_; }
  constexpr auto operator<=>(const ModuleId&) const = default;

 private:
  u16 value_ = 0;
};

/// The VLAN ID reserved for the system-level module (section 3.3).  The
/// system module is owned by the operator; tenant modules may not use it.
inline constexpr ModuleId kSystemModuleId{1};

/// Converts a cycle count at a given clock frequency to picoseconds.
/// `period_ps` must be the exact clock period (e.g. 6400 for 156.25 MHz).
[[nodiscard]] constexpr Picoseconds CyclesToPicoseconds(Cycle cycles,
                                                        Picoseconds period_ps) {
  return cycles * period_ps;
}

/// Clock descriptions for the three platforms evaluated in the paper.
struct ClockDomain {
  const char* name;
  Picoseconds period_ps;  // exact clock period
  [[nodiscard]] constexpr double frequency_mhz() const {
    return 1e6 / static_cast<double>(period_ps);
  }
  [[nodiscard]] constexpr double cycles_to_ns(Cycle c) const {
    return static_cast<double>(c * period_ps) / 1000.0;
  }
  [[nodiscard]] constexpr double cycles_to_us(Cycle c) const {
    return static_cast<double>(c * period_ps) / 1e6;
  }
  [[nodiscard]] constexpr double cycles_to_ms(Cycle c) const {
    return static_cast<double>(c * period_ps) / 1e9;
  }
};

inline constexpr ClockDomain kNetFpgaClock{"NetFPGA@156.25MHz", 6400};
inline constexpr ClockDomain kCorundumClock{"Corundum@250MHz", 4000};
inline constexpr ClockDomain kAsicClock{"ASIC@1GHz", 1000};

}  // namespace menshen

template <>
struct std::hash<menshen::ModuleId> {
  size_t operator()(const menshen::ModuleId& id) const noexcept {
    return std::hash<menshen::u16>{}(id.value());
  }
};
