// Arbitrary-width bit vectors.
//
// The Menshen hardware works with wide, oddly sized words: 193-bit lookup
// keys (24 bytes + 1 predicate bit), 205-bit CAM entries (key + 12-bit
// module ID), 625-bit VLIW action-table entries (25 x 25-bit ALU actions),
// 160-bit parser-table entries.  BitVec models these exactly so table
// widths in the simulator match Table 5 of the paper bit-for-bit.
//
// Bit 0 is the least significant bit.  Fields are addressed as
// [lsb, lsb+width) and must fit within the vector.
#pragma once

#include <compare>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace menshen {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t width_bits);

  /// Builds a BitVec of the given width from a little-endian value.
  static BitVec FromValue(std::size_t width_bits, u64 value);

  /// Builds a BitVec whose low bits come from `bytes` interpreted as a
  /// big-endian integer (byte 0 most significant), as the key extractor
  /// does when concatenating PHV containers.
  static BitVec FromBytesBigEndian(std::size_t width_bits,
                                   std::span<const u8> bytes);

  [[nodiscard]] std::size_t width() const { return width_; }

  [[nodiscard]] bool bit(std::size_t i) const;
  void set_bit(std::size_t i, bool v);

  /// Reads/writes a field of up to 64 bits at [lsb, lsb+width).
  [[nodiscard]] u64 field(std::size_t lsb, std::size_t width_bits) const;
  void set_field(std::size_t lsb, std::size_t width_bits, u64 value);

  /// Copies another BitVec into [lsb, lsb+src.width()).
  void set_slice(std::size_t lsb, const BitVec& src);
  [[nodiscard]] BitVec slice(std::size_t lsb, std::size_t width_bits) const;

  /// Bitwise AND against a mask of equal width (used by the key mask table).
  [[nodiscard]] BitVec masked(const BitVec& mask) const;

  /// In-place variant of `masked` for allocation-free hot paths.
  void AndWith(const BitVec& mask);

  /// Fused masked compare: true iff `masked(mask) == other.masked(mask)`,
  /// evaluated word-by-word as ((a ^ b) & m) == 0 with no temporaries —
  /// the ternary-CAM hot-path compare.  All three widths must match.
  [[nodiscard]] bool EqualsMasked(const BitVec& other,
                                  const BitVec& mask) const;

  /// Raw 64-bit storage word `i` (bit 64*i is its LSB).
  [[nodiscard]] u64 word(std::size_t i) const;
  [[nodiscard]] std::size_t word_count() const { return words_.size(); }

  /// True iff every set bit lies in word 0 — the key-mask property that
  /// enables the one-word match fast path.
  [[nodiscard]] bool high_words_zero() const;

  /// Re-initialises to `width_bits` of zeroes, reusing the existing word
  /// storage when wide enough — the scratch-key idiom of the batched
  /// dataplane, which extracts thousands of lookup keys into one BitVec.
  void AssignZero(std::size_t width_bits);

  /// Returns a vector with every bit set (an all-valid key mask).
  static BitVec AllOnes(std::size_t width_bits);

  /// Concatenates: result = high ++ low, with `low` in the low bits.
  static BitVec Concat(const BitVec& high, const BitVec& low);

  [[nodiscard]] std::size_t popcount() const;
  [[nodiscard]] bool is_zero() const;
  [[nodiscard]] std::string ToHex() const;

  bool operator==(const BitVec&) const = default;

  /// Total ordering so BitVec can key ordered containers.
  std::strong_ordering operator<=>(const BitVec& other) const;

  /// Hash for unordered containers.
  [[nodiscard]] std::size_t Hash() const;

 private:
  void CheckBit(std::size_t i) const;
  void CheckField(std::size_t lsb, std::size_t w) const;

  std::size_t width_ = 0;
  std::vector<u64> words_;  // bit i lives in words_[i/64] bit (i%64)
};

}  // namespace menshen

template <>
struct std::hash<menshen::BitVec> {
  size_t operator()(const menshen::BitVec& v) const noexcept {
    return v.Hash();
  }
};
