#include "common/task_pool.hpp"

namespace menshen {

TaskPool::TaskPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void TaskPool::DrainTasks(std::uint64_t generation) {
  // Claims happen under the mutex and are generation-tagged, so a worker
  // that wakes late (or loops past the last task) can never touch a task
  // vector RunAll has already abandoned: either the generation moved on,
  // tasks_ was cleared, or every index is claimed.  Tasks are coarse
  // (whole per-device sub-batches), so the per-claim lock is noise.
  for (;;) {
    std::function<void()>* fn = nullptr;
    {
      std::lock_guard<std::mutex> lk(m_);
      if (generation_ != generation || tasks_ == nullptr ||
          next_ >= tasks_->size())
        return;
      fn = &(*tasks_)[next_++];
    }
    // The claimed task keeps unfinished_ > 0, which keeps RunAll (and
    // therefore the vector) alive until the call returns.
    try {
      (*fn)();
    } catch (...) {
      std::lock_guard<std::mutex> lk(m_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lk(m_);
    if (--unfinished_ == 0) done_cv_.notify_all();
  }
}

void TaskPool::WorkerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t generation = 0;
    {
      std::unique_lock<std::mutex> lk(m_);
      work_cv_.wait(lk, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation = generation_;
    }
    DrainTasks(generation);
  }
}

void TaskPool::RunAll(std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (workers_.empty()) {
    // Inline mode: no threads, still honors the first-error contract.
    std::exception_ptr err;
    for (auto& t : tasks) {
      try {
        t();
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);
    return;
  }
  std::uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lk(m_);
    tasks_ = &tasks;
    next_ = 0;
    unfinished_ = tasks.size();
    first_error_ = nullptr;
    generation = ++generation_;
  }
  work_cv_.notify_all();
  // The caller participates: on a host with fewer cores than devices the
  // section still completes without oversubscription stalls.
  DrainTasks(generation);
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(m_);
    done_cv_.wait(lk, [&] { return unfinished_ == 0; });
    err = first_error_;
    tasks_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace menshen
