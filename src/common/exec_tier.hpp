// Execution-ladder tier taken by a packet.
//
// The dataplane resolves every packet through a three-tier ladder:
// flow-verdict cache hit, straight-line kernel, interpreted execution
// plan — with an unplanned fallback for rows the plan compiler could
// not cover.  Telemetry (the sampled trace ring, the per-tier counters)
// needs to know which tier actually ran, so the pipeline records it as
// a one-byte sideband on PipelineResult / ArenaPacket.  The enum lives
// in common/ because pipeline/ sets it and runtime/ consumes it.
#pragma once

#include "common/types.hpp"

namespace menshen {

enum class ExecTier : u8 {
  kNone = 0,          // never executed (filtered pre-pipeline, or reset)
  kFlowCacheHit = 1,  // flow-verdict cache hit / replay
  kKernel = 2,        // straight-line specialized kernel
  kInterpreted = 3,   // interpreted execution plan
  kUnplanned = 4,     // unplanned fallback (full match/action walk)
};

inline constexpr int kExecTierCount = 5;

[[nodiscard]] inline const char* ExecTierName(u8 tier) {
  switch (static_cast<ExecTier>(tier)) {
    case ExecTier::kNone: return "none";
    case ExecTier::kFlowCacheHit: return "flow_cache";
    case ExecTier::kKernel: return "kernel";
    case ExecTier::kInterpreted: return "interpreted";
    case ExecTier::kUnplanned: return "unplanned";
  }
  return "invalid";
}

}  // namespace menshen
