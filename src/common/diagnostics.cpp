#include "common/diagnostics.hpp"

namespace menshen {

namespace {
const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "?";
}
}  // namespace

std::string Diagnostics::ToString() const {
  std::string out;
  for (const auto& d : items_) {
    out += SeverityName(d.severity);
    out += " [";
    out += d.code;
    out += "]";
    if (d.line > 0) {
      out += " line ";
      out += std::to_string(d.line);
    }
    out += ": ";
    out += d.message;
    out += "\n";
  }
  return out;
}

}  // namespace menshen
