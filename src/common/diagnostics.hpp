// Diagnostics collection for the compiler and checkers.
//
// The Menshen compiler rejects modules that violate static checks or exceed
// their resource allocation (sections 3.4 and 5.1).  Rather than throwing on
// the first problem, checkers accumulate diagnostics so a module author sees
// every violation at once, like a real compiler.
#pragma once

#include <string>
#include <vector>

namespace menshen {

enum class Severity { kError, kWarning, kNote };

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;     // stable identifier, e.g. "static.vid-write"
  std::string message;  // human-readable description
  int line = 0;         // 1-based source line, 0 if not applicable

  bool operator==(const Diagnostic&) const = default;
};

class Diagnostics {
 public:
  void Error(std::string code, std::string message, int line = 0) {
    items_.push_back({Severity::kError, std::move(code), std::move(message), line});
  }
  void Warning(std::string code, std::string message, int line = 0) {
    items_.push_back({Severity::kWarning, std::move(code), std::move(message), line});
  }
  void Note(std::string code, std::string message, int line = 0) {
    items_.push_back({Severity::kNote, std::move(code), std::move(message), line});
  }

  [[nodiscard]] bool ok() const { return error_count() == 0; }
  [[nodiscard]] std::size_t error_count() const {
    std::size_t n = 0;
    for (const auto& d : items_)
      if (d.severity == Severity::kError) ++n;
    return n;
  }
  [[nodiscard]] const std::vector<Diagnostic>& items() const { return items_; }

  /// True if any diagnostic carries the given stable code.
  [[nodiscard]] bool HasCode(const std::string& code) const {
    for (const auto& d : items_)
      if (d.code == code) return true;
    return false;
  }

  void Merge(const Diagnostics& other) {
    items_.insert(items_.end(), other.items_.begin(), other.items_.end());
  }

  [[nodiscard]] std::string ToString() const;

 private:
  std::vector<Diagnostic> items_;
};

}  // namespace menshen
