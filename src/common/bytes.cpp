#include "common/bytes.hpp"

#include <algorithm>

namespace menshen {

void ByteBuffer::write_bytes(std::size_t off, std::span<const u8> src) {
  CheckRange(off, src.size());
  std::copy(src.begin(), src.end(), data_.begin() + static_cast<long>(off));
}

std::vector<u8> ByteBuffer::read_bytes(std::size_t off,
                                       std::size_t len) const {
  CheckRange(off, len);
  return {data_.begin() + static_cast<long>(off),
          data_.begin() + static_cast<long>(off + len)};
}

void ByteBuffer::append(std::span<const u8> src) {
  data_.insert(data_.end(), src.begin(), src.end());
}

void ByteBuffer::append_u16(u16 v) {
  data_.push_back(static_cast<u8>(v >> 8));
  data_.push_back(static_cast<u8>(v));
}

void ByteBuffer::append_u32(u32 v) {
  for (int i = 3; i >= 0; --i) data_.push_back(static_cast<u8>(v >> (8 * i)));
}

std::string ByteBuffer::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data_.size() * 2);
  for (u8 b : data_) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

}  // namespace menshen
