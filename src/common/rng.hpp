// Deterministic pseudo-random number generation for traffic generators and
// property tests.  A small, fast SplitMix64/xoshiro256** pair; deterministic
// across platforms so benchmark output is reproducible.
#pragma once

#include <array>

#include "common/types.hpp"

namespace menshen {

class Rng {
 public:
  explicit Rng(u64 seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    u64 x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value (xoshiro256**).
  u64 Next() {
    const u64 result = Rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound); bound must be non-zero.
  u64 Below(u64 bound) { return Next() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  u64 Between(u64 lo, u64 hi) { return lo + Below(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr u64 Rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<u64, 4> state_{};
};

}  // namespace menshen
