// Minimal fork/join task pool for coarse-grained parallel sections.
//
// The network substrate's hop loop hands each device's per-hop sub-batch
// to one task; tasks of one RunAll call run concurrently on persistent
// worker threads and RunAll returns when every task finished (the first
// task exception, if any, is rethrown).  This is deliberately a barrier
// pool, not a queueing executor: the hop loop's next iteration depends on
// every device's verdicts, so fork/join is the natural shape — the
// continuous-pull machinery lives in the dataplane's ingress queues, not
// here.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace menshen {

class TaskPool {
 public:
  /// `threads` = 0 makes RunAll run tasks inline (no worker threads).
  explicit TaskPool(std::size_t threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs every task, possibly concurrently, and returns when all have
  /// finished.  The calling thread participates, so RunAll makes
  /// progress even on a single-core host.  Not reentrant.
  void RunAll(std::vector<std::function<void()>>& tasks);

 private:
  void WorkerLoop();
  /// Claims (under the mutex, generation-tagged) and runs tasks of
  /// `generation` until exhausted or the generation moves on.
  void DrainTasks(std::uint64_t generation);

  std::vector<std::thread> workers_;
  std::mutex m_;  // guards everything below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::function<void()>>* tasks_ = nullptr;
  std::size_t next_ = 0;
  std::size_t unfinished_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

}  // namespace menshen
