// Relaxed statistics counters.
//
// Hot-path observability counters (CAM lookups/hits and friends) are
// bumped inside const Lookup methods while shard worker threads process
// batches, and read by control-plane threads collecting statistics.  A
// plain `mutable u64` there is a data race under real concurrency; a
// seq-cst atomic would put a fence in the innermost match loop.  This
// wrapper is the middle ground: a relaxed std::atomic with value-copy
// semantics so the structs embedding it stay copyable/movable (pipeline
// replicas are constructed into vectors).
//
// Relaxed ordering is sufficient because these are pure monotonic event
// counts: readers need "some recent value", never ordering against other
// memory.  Precise totals are obtained by quiescing (the dataplane's
// engine lock) before reading, as runtime/stats does.
#pragma once

#include <atomic>

#include "common/types.hpp"

namespace menshen {

class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter& other) : v_(other.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    v_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }

  void Add(u64 n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Gauge-style decrement (the flow-verdict cache's occupancy gauge
  /// drops when a row's entries are invalidated wholesale).
  void Sub(u64 n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  [[nodiscard]] u64 load() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<u64> v_{0};
};

}  // namespace menshen
