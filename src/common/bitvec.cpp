#include "common/bitvec.hpp"

#include <bit>
#include <span>
#include <stdexcept>

namespace menshen {

namespace {
constexpr std::size_t WordsFor(std::size_t bits) { return (bits + 63) / 64; }
}  // namespace

BitVec::BitVec(std::size_t width_bits)
    : width_(width_bits), words_(WordsFor(width_bits), 0) {}

BitVec BitVec::FromValue(std::size_t width_bits, u64 value) {
  BitVec v(width_bits);
  if (width_bits == 0) {
    if (value != 0) throw std::invalid_argument("value does not fit");
    return v;
  }
  if (width_bits < 64 && (value >> width_bits) != 0)
    throw std::invalid_argument("value does not fit in BitVec width");
  if (!v.words_.empty()) v.words_[0] = value;
  return v;
}

BitVec BitVec::FromBytesBigEndian(std::size_t width_bits,
                                  std::span<const u8> bytes) {
  if (bytes.size() * 8 > width_bits)
    throw std::invalid_argument("bytes wider than BitVec");
  BitVec v(width_bits);
  // Byte 0 is the most significant of the byte string; the byte string
  // occupies the low bytes.size()*8 bits of the vector.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::size_t lsb = (bytes.size() - 1 - i) * 8;
    v.set_field(lsb, 8, bytes[i]);
  }
  return v;
}

void BitVec::CheckBit(std::size_t i) const {
  if (i >= width_) throw std::out_of_range("BitVec bit index out of range");
}

void BitVec::CheckField(std::size_t lsb, std::size_t w) const {
  if (w > 64) throw std::invalid_argument("field wider than 64 bits");
  if (lsb + w > width_) throw std::out_of_range("BitVec field out of range");
}

bool BitVec::bit(std::size_t i) const {
  CheckBit(i);
  return (words_[i / 64] >> (i % 64)) & 1;
}

void BitVec::set_bit(std::size_t i, bool v) {
  CheckBit(i);
  const u64 mask = u64{1} << (i % 64);
  if (v)
    words_[i / 64] |= mask;
  else
    words_[i / 64] &= ~mask;
}

u64 BitVec::field(std::size_t lsb, std::size_t width_bits) const {
  CheckField(lsb, width_bits);
  if (width_bits == 0) return 0;
  const std::size_t w0 = lsb / 64, shift = lsb % 64;
  u64 value = words_[w0] >> shift;
  if (shift != 0 && w0 + 1 < words_.size())
    value |= words_[w0 + 1] << (64 - shift);
  if (width_bits < 64) value &= (u64{1} << width_bits) - 1;
  return value;
}

void BitVec::set_field(std::size_t lsb, std::size_t width_bits, u64 value) {
  CheckField(lsb, width_bits);
  if (width_bits == 0) return;
  if (width_bits < 64 && (value >> width_bits) != 0)
    throw std::invalid_argument("value does not fit in field");
  // Word-level write: the field spans at most two 64-bit words.
  const std::size_t w0 = lsb / 64, shift = lsb % 64;
  const u64 fmask =
      width_bits == 64 ? ~u64{0} : (u64{1} << width_bits) - 1;
  words_[w0] = (words_[w0] & ~(fmask << shift)) | ((value & fmask) << shift);
  if (shift != 0 && shift + width_bits > 64) {
    const std::size_t hi_bits = shift + width_bits - 64;
    const u64 hi_mask = (u64{1} << hi_bits) - 1;
    words_[w0 + 1] =
        (words_[w0 + 1] & ~hi_mask) | ((value >> (64 - shift)) & hi_mask);
  }
}

void BitVec::set_slice(std::size_t lsb, const BitVec& src) {
  if (lsb + src.width() > width_)
    throw std::out_of_range("BitVec slice out of range");
  for (std::size_t i = 0; i < src.width(); ++i) set_bit(lsb + i, src.bit(i));
}

BitVec BitVec::slice(std::size_t lsb, std::size_t width_bits) const {
  if (lsb + width_bits > width_)
    throw std::out_of_range("BitVec slice out of range");
  BitVec out(width_bits);
  for (std::size_t i = 0; i < width_bits; ++i) out.set_bit(i, bit(lsb + i));
  return out;
}

BitVec BitVec::masked(const BitVec& mask) const {
  if (mask.width() != width_)
    throw std::invalid_argument("mask width mismatch");
  BitVec out(width_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    out.words_[i] = words_[i] & mask.words_[i];
  return out;
}

void BitVec::AndWith(const BitVec& mask) {
  if (mask.width() != width_)
    throw std::invalid_argument("mask width mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i)
    words_[i] &= mask.words_[i];
}

bool BitVec::EqualsMasked(const BitVec& other, const BitVec& mask) const {
  if (other.width() != width_ || mask.width() != width_)
    throw std::invalid_argument("EqualsMasked width mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i)
    if (((words_[i] ^ other.words_[i]) & mask.words_[i]) != 0) return false;
  return true;
}

u64 BitVec::word(std::size_t i) const {
  if (i >= words_.size())
    throw std::out_of_range("BitVec word index out of range");
  return words_[i];
}

bool BitVec::high_words_zero() const {
  for (std::size_t i = 1; i < words_.size(); ++i)
    if (words_[i] != 0) return false;
  return true;
}

void BitVec::AssignZero(std::size_t width_bits) {
  width_ = width_bits;
  words_.assign(WordsFor(width_bits), 0);
}

BitVec BitVec::AllOnes(std::size_t width_bits) {
  BitVec v(width_bits);
  for (std::size_t i = 0; i < width_bits; ++i) v.set_bit(i, true);
  return v;
}

BitVec BitVec::Concat(const BitVec& high, const BitVec& low) {
  BitVec out(high.width() + low.width());
  out.set_slice(0, low);
  out.set_slice(low.width(), high);
  return out;
}

std::size_t BitVec::popcount() const {
  std::size_t n = 0;
  for (u64 w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVec::is_zero() const {
  for (u64 w : words_)
    if (w != 0) return false;
  return true;
}

std::string BitVec::ToHex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  const std::size_t nibbles = (width_ + 3) / 4;
  std::string out(nibbles, '0');
  for (std::size_t n = 0; n < nibbles; ++n) {
    const std::size_t lsb = n * 4;
    const std::size_t w = std::min<std::size_t>(4, width_ - lsb);
    out[nibbles - 1 - n] = kDigits[field(lsb, w)];
  }
  return out;
}

std::strong_ordering BitVec::operator<=>(const BitVec& other) const {
  if (auto c = width_ <=> other.width_; c != 0) return c;
  for (std::size_t i = words_.size(); i-- > 0;) {
    if (auto c = words_[i] <=> other.words_[i]; c != 0) return c;
  }
  return std::strong_ordering::equal;
}

std::size_t BitVec::Hash() const {
  std::size_t h = std::hash<std::size_t>{}(width_);
  for (u64 w : words_) h = h * 1099511628211ULL ^ std::hash<u64>{}(w);
  return h;
}

}  // namespace menshen
