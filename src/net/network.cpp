#include "net/network.hpp"

#include <stdexcept>

namespace menshen {

Device& Network::AddDevice(const std::string& name, PipelineTiming timing) {
  auto [it, inserted] =
      devices_.emplace(name, std::make_unique<Device>(name, timing));
  if (!inserted) throw std::invalid_argument("duplicate device " + name);
  return *it->second;
}

Device& Network::device(const std::string& name) {
  const auto it = devices_.find(name);
  if (it == devices_.end())
    throw std::invalid_argument("unknown device " + name);
  return *it->second;
}

void Network::Link(const PortRef& a, const PortRef& b) {
  if (links_.contains(a) || links_.contains(b))
    throw std::invalid_argument("port already linked");
  if (!devices_.contains(a.device) || !devices_.contains(b.device))
    throw std::invalid_argument("link references unknown device");
  links_[a] = b;
  links_[b] = a;
}

void Network::AttachHost(const PortRef& port, ModuleId vid) {
  if (links_.contains(port))
    throw std::invalid_argument("host port already carries a link");
  hosts_[port] = vid;
}

std::vector<Delivery> Network::InjectFromHost(const PortRef& port,
                                              Packet packet,
                                              std::size_t max_hops) {
  const auto hit = hosts_.find(port);
  if (hit == hosts_.end())
    throw std::invalid_argument("no host attached at " + port.device + ":" +
                                std::to_string(port.port));
  // The vSwitch stamps the tenant's VLAN ID at the network edge; hosts
  // cannot choose their module ID themselves (section 3.1).
  packet.set_vid(hit->second);
  packet.ingress_port = port.port;

  std::vector<Delivery> out;
  Walk(port, std::move(packet), max_hops, out);
  return out;
}

void Network::Walk(const PortRef& ingress, Packet packet,
                   std::size_t hops_left, std::vector<Delivery>& out) {
  if (hops_left == 0) {
    ++loop_drops_;
    return;
  }
  Device& dev = device(ingress.device);
  packet.ingress_port = ingress.port;
  const PipelineResult result = dev.pipeline().Process(std::move(packet));
  if (!result.output) return;  // filtered
  const Packet& processed = *result.output;

  const auto emit = [&](u16 egress_port, Packet copy) {
    const PortRef egress{ingress.device, egress_port};
    const auto lit = links_.find(egress);
    if (lit == links_.end()) {
      // Edge port: the packet leaves the network.
      out.push_back(Delivery{egress, std::move(copy)});
      return;
    }
    Walk(lit->second, std::move(copy), hops_left - 1, out);
  };

  switch (processed.disposition) {
    case Disposition::kDrop:
      return;
    case Disposition::kForward:
      emit(processed.egress_port, processed);
      return;
    case Disposition::kMulticast:
      for (const u16 p : processed.multicast_ports) emit(p, processed);
      return;
  }
}

}  // namespace menshen
