#include "net/network.hpp"

#include <stdexcept>

namespace menshen {

Device& Network::AddDevice(const std::string& name, PipelineTiming timing) {
  auto [it, inserted] =
      devices_.emplace(name, std::make_unique<Device>(name, timing));
  if (!inserted) throw std::invalid_argument("duplicate device " + name);
  return *it->second;
}

Device& Network::device(const std::string& name) {
  const auto it = devices_.find(name);
  if (it == devices_.end())
    throw std::invalid_argument("unknown device " + name);
  return *it->second;
}

void Network::Link(const PortRef& a, const PortRef& b) {
  if (links_.contains(a) || links_.contains(b))
    throw std::invalid_argument("port already linked");
  if (!devices_.contains(a.device) || !devices_.contains(b.device))
    throw std::invalid_argument("link references unknown device");
  links_[a] = b;
  links_[b] = a;
}

void Network::AttachHost(const PortRef& port, ModuleId vid) {
  if (links_.contains(port))
    throw std::invalid_argument("host port already carries a link");
  hosts_[port] = vid;
}

std::vector<Delivery> Network::InjectFromHost(const PortRef& port,
                                              Packet packet,
                                              std::size_t max_hops) {
  std::vector<Injection> one;
  one.push_back(Injection{port, std::move(packet)});
  return InjectBatch(std::move(one), max_hops);
}

std::vector<Delivery> Network::InjectBatchFromHost(const PortRef& port,
                                                   std::vector<Packet> packets,
                                                   std::size_t max_hops) {
  std::vector<Injection> injections;
  injections.reserve(packets.size());
  for (Packet& p : packets)
    injections.push_back(Injection{port, std::move(p)});
  return InjectBatch(std::move(injections), max_hops);
}

std::vector<Delivery> Network::InjectBatch(std::vector<Injection> injections,
                                           std::size_t max_hops) {
  std::vector<Traveler> inflight;
  inflight.reserve(injections.size());
  for (Injection& inj : injections) {
    const auto hit = hosts_.find(inj.port);
    if (hit == hosts_.end())
      throw std::invalid_argument("no host attached at " + inj.port.device +
                                  ":" + std::to_string(inj.port.port));
    // The vSwitch stamps the tenant's VLAN ID at the network edge; hosts
    // cannot choose their module ID themselves (section 3.1).
    inj.packet.set_vid(hit->second);
    inflight.push_back(Traveler{inj.port, std::move(inj.packet), max_hops});
  }
  std::vector<Delivery> out;
  RunHops(std::move(inflight), out);
  return out;
}

void Network::RunHops(std::vector<Traveler>&& inflight,
                      std::vector<Delivery>& out) {
  // Per-hop scratch, reused across hops so the steady state of a large
  // batch performs no per-packet allocation beyond what the pipeline's
  // own batched path does.
  std::vector<Traveler> next;
  std::map<std::string, std::vector<std::size_t>> by_device;
  std::vector<Packet> batch;
  std::vector<std::size_t> budgets;
  std::vector<PipelineResult> results;

  while (!inflight.empty()) {
    // Group this hop's travelers into per-device sub-batches.  Device
    // order is the sorted name order (deterministic), traveler order
    // within a device is arrival order.
    by_device.clear();
    for (std::size_t i = 0; i < inflight.size(); ++i)
      by_device[inflight[i].at.device].push_back(i);

    next.clear();
    for (const auto& [name, idxs] : by_device) {
      Device& dev = device(name);
      batch.clear();
      budgets.clear();
      for (const std::size_t i : idxs) {
        Traveler& t = inflight[i];
        if (t.hops_left == 0) {
          ++loop_drops_;
          continue;
        }
        t.packet.ingress_port = t.at.port;
        budgets.push_back(t.hops_left - 1);
        batch.push_back(std::move(t.packet));
      }
      if (batch.empty()) continue;

      results.clear();
      dev.pipeline().ProcessBatchInto(std::move(batch), results);
      batch.clear();  // moved-from; make the reuse explicit

      for (std::size_t k = 0; k < results.size(); ++k) {
        if (!results[k].output) continue;  // filtered
        const Packet& processed = *results[k].output;
        const auto emit = [&](u16 egress_port, Packet copy) {
          const PortRef egress{name, egress_port};
          const auto lit = links_.find(egress);
          if (lit == links_.end()) {
            // Edge port: the packet leaves the network.
            out.push_back(Delivery{egress, std::move(copy)});
            return;
          }
          next.push_back(Traveler{lit->second, std::move(copy), budgets[k]});
        };
        switch (processed.disposition) {
          case Disposition::kDrop:
            break;
          case Disposition::kForward:
            emit(processed.egress_port, processed);
            break;
          case Disposition::kMulticast:
            for (const u16 p : processed.multicast_ports) emit(p, processed);
            break;
        }
      }
    }
    inflight.swap(next);
  }
}

}  // namespace menshen
