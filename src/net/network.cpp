#include "net/network.hpp"

#include <functional>
#include <stdexcept>
#include <thread>
#include <utility>

namespace menshen {

Device& Network::AddDevice(const std::string& name, PipelineTiming timing) {
  auto [it, inserted] =
      devices_.emplace(name, std::make_unique<Device>(name, timing));
  if (!inserted) throw std::invalid_argument("duplicate device " + name);
  return *it->second;
}

Device& Network::device(const std::string& name) {
  const auto it = devices_.find(name);
  if (it == devices_.end())
    throw std::invalid_argument("unknown device " + name);
  return *it->second;
}

void Network::Link(const PortRef& a, const PortRef& b) {
  if (links_.contains(a) || links_.contains(b))
    throw std::invalid_argument("port already linked");
  if (!devices_.contains(a.device) || !devices_.contains(b.device))
    throw std::invalid_argument("link references unknown device");
  links_[a] = b;
  links_[b] = a;
}

void Network::AttachHost(const PortRef& port, ModuleId vid) {
  if (links_.contains(port))
    throw std::invalid_argument("host port already carries a link");
  hosts_[port] = vid;
}

void Network::EnableParallelDispatch(std::size_t threads) {
  pool_ = threads == 0 ? nullptr : std::make_unique<TaskPool>(threads);
}

std::vector<Delivery> Network::InjectFromHost(const PortRef& port,
                                              Packet packet,
                                              std::size_t max_hops) {
  std::vector<Injection> one;
  one.push_back(Injection{port, std::move(packet)});
  return InjectBatch(std::move(one), max_hops);
}

std::vector<Delivery> Network::InjectBatchFromHost(const PortRef& port,
                                                   std::vector<Packet> packets,
                                                   std::size_t max_hops) {
  std::vector<Injection> injections;
  injections.reserve(packets.size());
  for (Packet& p : packets)
    injections.push_back(Injection{port, std::move(p)});
  return InjectBatch(std::move(injections), max_hops);
}

std::vector<Network::Traveler> Network::MakeTravelers(
    std::vector<Injection>&& injections, std::size_t max_hops) {
  std::vector<Traveler> inflight;
  inflight.reserve(injections.size());
  for (Injection& inj : injections) {
    const auto hit = hosts_.find(inj.port);
    if (hit == hosts_.end())
      throw std::invalid_argument("no host attached at " + inj.port.device +
                                  ":" + std::to_string(inj.port.port));
    // The vSwitch stamps the tenant's VLAN ID at the network edge; hosts
    // cannot choose their module ID themselves (section 3.1).
    inj.packet.set_vid(hit->second);
    inflight.push_back(Traveler{inj.port, std::move(inj.packet), max_hops});
  }
  return inflight;
}

std::vector<Delivery> Network::InjectBatch(std::vector<Injection> injections,
                                           std::size_t max_hops) {
  Wave wave;
  wave.cur = MakeTravelers(std::move(injections), max_hops);
  std::vector<Wave*> waves{&wave};
  while (!wave.cur.empty()) RunHopRound(waves);
  return std::move(wave.out);
}

std::vector<Delivery> Network::InjectBatchPipelined(const PortRef& port,
                                                    std::vector<Packet> packets,
                                                    std::size_t wave_size,
                                                    std::size_t max_hops) {
  if (wave_size == 0) wave_size = 1;
  std::vector<std::unique_ptr<Wave>> waves;
  std::size_t injected = 0;

  std::vector<Wave*> active;
  while (injected < packets.size() ||
         [&] {
           for (const auto& w : waves)
             if (!w->cur.empty()) return true;
           return false;
         }()) {
    // Stagger: one new wave enters the edge port per hop round, so wave
    // w+1 is always exactly one device behind wave w on a chain.
    if (injected < packets.size()) {
      const std::size_t n = std::min(wave_size, packets.size() - injected);
      std::vector<Injection> chunk;
      chunk.reserve(n);
      for (std::size_t i = 0; i < n; ++i)
        chunk.push_back(Injection{port, std::move(packets[injected + i])});
      injected += n;
      auto wave = std::make_unique<Wave>();
      wave->cur = MakeTravelers(std::move(chunk), max_hops);
      waves.push_back(std::move(wave));
    }
    active.clear();
    for (const auto& w : waves)
      if (!w->cur.empty()) active.push_back(w.get());
    if (!active.empty()) RunHopRound(active);
  }

  // Deliveries wave by wave: identical to concatenating sequential
  // per-wave InjectBatchFromHost runs (loop-free forwarding).
  std::vector<Delivery> out;
  for (auto& w : waves)
    for (Delivery& d : w->out) out.push_back(std::move(d));
  return out;
}

void Network::RunHopRound(std::vector<Wave*>& waves) {
  // Group this round's travelers into per-device sub-batches, ordered by
  // (device name, wave, arrival) — the deterministic order the
  // sequential hop loop produced.
  struct DeviceTask {
    Device* dev = nullptr;
    std::vector<Packet> batch;
    std::vector<std::size_t> budgets;
    std::vector<std::size_t> wave_of;  // which wave each result routes to
    std::vector<PipelineResult> results;
  };
  std::map<std::string, DeviceTask> tasks;

  for (std::size_t w = 0; w < waves.size(); ++w) {
    for (Traveler& t : waves[w]->cur) {
      if (t.hops_left == 0) {
        ++loop_drops_;
        continue;
      }
      DeviceTask& task = tasks[t.at.device];
      if (task.dev == nullptr) task.dev = &device(t.at.device);
      t.packet.ingress_port = t.at.port;
      task.budgets.push_back(t.hops_left - 1);
      task.wave_of.push_back(w);
      task.batch.push_back(std::move(t.packet));
    }
    waves[w]->next.clear();
  }

  // Distinct devices are independent pipelines: run their sub-batches
  // concurrently when a dispatch pool is attached (a chain of K switches
  // with K waves in flight keeps K cores busy), sequentially otherwise.
  // On a single-core host the fork/join handoff is pure overhead — the
  // pipelined chain bench ran ~1.5x slower than batched through the pool
  // — so the pool is bypassed when the hardware cannot actually overlap
  // the sub-batches (results are byte-identical either way).
  static const bool multi_core = std::thread::hardware_concurrency() > 1;
  if (pool_ != nullptr && multi_core && tasks.size() > 1) {
    std::vector<std::function<void()>> fns;
    fns.reserve(tasks.size());
    for (auto& [name, task] : tasks) {
      DeviceTask* tp = &task;
      fns.emplace_back([tp] {
        tp->dev->pipeline().ProcessBatchInto(std::move(tp->batch),
                                             tp->results);
      });
    }
    pool_->RunAll(fns);
  } else {
    for (auto& [name, task] : tasks)
      task.dev->pipeline().ProcessBatchInto(std::move(task.batch),
                                            task.results);
  }

  // Route the verdicts sequentially, in the same deterministic order the
  // batches were built in (links_ and the wave vectors are not safe to
  // touch from pool tasks, and delivery order must not depend on task
  // scheduling).
  for (auto& [name, task] : tasks) {
    for (std::size_t k = 0; k < task.results.size(); ++k) {
      if (!task.results[k].output) continue;  // filtered
      const Packet& processed = *task.results[k].output;
      Wave& wave = *waves[task.wave_of[k]];
      const auto emit = [&](u16 egress_port, Packet copy) {
        const PortRef egress{name, egress_port};
        const auto lit = links_.find(egress);
        if (lit == links_.end()) {
          // Edge port: the packet leaves the network.
          wave.out.push_back(Delivery{egress, std::move(copy)});
          return;
        }
        wave.next.push_back(
            Traveler{lit->second, std::move(copy), task.budgets[k]});
      };
      switch (processed.disposition) {
        case Disposition::kDrop:
          break;
        case Disposition::kForward:
          emit(processed.egress_port, processed);
          break;
        case Disposition::kMulticast:
          for (const u16 p : processed.multicast_ports) emit(p, processed);
          break;
      }
    }
  }

  for (Wave* w : waves) w->cur.swap(w->next);
}

}  // namespace menshen
