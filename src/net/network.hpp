// Multi-device network substrate.
//
// Modules can span several programmable devices (section 3.4: NetChain
// runs on a switch chain; the VID-rewrite static check exists precisely
// because module A's rewrite on one device would select module B's
// configuration on the next).  This substrate wires several Menshen
// pipelines into a topology:
//
//   * a Device is one pipeline with numbered ports;
//   * Links connect (device, port) pairs bidirectionally;
//   * hosts sit on edge ports behind a vSwitch, which stamps the
//     tenant's VLAN ID onto packets entering the network (section 3.1:
//     "the VID ... we assume is set by the vSwitch");
//   * injected packets advance through a batched hop loop: each hop, the
//     in-flight packets are grouped into per-device sub-batches and run
//     through Pipeline::ProcessBatchInto — the same scratch-buffer-reusing
//     hot path the sharded dataplane drives — and each device's verdicts
//     (drop/forward/multicast) spawn the next hop's travelers, until every
//     packet leaves at an edge port or exceeds its hop budget (the runaway
//     guard whose control-plane counterpart is the routing-loop checker).
//
// Parallel dispatch: distinct devices within one hop round are
// independent pipelines, so EnableParallelDispatch runs their sub-batches
// concurrently on a fork/join task pool.  On its own that only helps
// topologies whose hop front spans several devices; InjectBatchPipelined
// additionally staggers the injected batch into waves, so a chain of K
// switches keeps up to K devices busy at once (wave w is on switch i
// while wave w+1 is on switch i-1) — K cores for a K-switch chain.
// Results and delivery order stay byte-identical to the sequential path
// provided forwarding is loop-free (each wave visits a device at most
// once — the invariant the control-plane loop checker enforces).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/task_pool.hpp"
#include "pipeline/pipeline.hpp"

namespace menshen {

struct PortRef {
  std::string device;
  u16 port = 0;
  bool operator==(const PortRef&) const = default;
  auto operator<=>(const PortRef&) const = default;
};

class Device {
 public:
  explicit Device(std::string name, PipelineTiming timing = OptimizedTiming())
      : name_(std::move(name)), pipeline_(timing) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Pipeline& pipeline() { return pipeline_; }
  [[nodiscard]] const Pipeline& pipeline() const { return pipeline_; }

 private:
  std::string name_;
  Pipeline pipeline_;
};

/// A packet that left the network at an edge port.
struct Delivery {
  PortRef at;
  Packet packet;
};

/// One packet awaiting injection at a host edge port.
struct Injection {
  PortRef port;
  Packet packet;
};

class Network {
 public:
  /// Adds a device; the name must be unique.
  Device& AddDevice(const std::string& name,
                    PipelineTiming timing = OptimizedTiming());
  [[nodiscard]] Device& device(const std::string& name);

  /// Connects two ports bidirectionally.  A port can carry one link.
  void Link(const PortRef& a, const PortRef& b);

  /// Declares a host edge port: packets injected there are stamped with
  /// `vid` by the vSwitch before entering the first pipeline.
  void AttachHost(const PortRef& port, ModuleId vid);

  /// Whether a host is attached at `port` — the injection precondition
  /// (MakeTravelers throws on a portless injection).  Egress bindings
  /// (Dataplane::BindEgressDevice) validate their port map against this.
  [[nodiscard]] bool HasHost(const PortRef& port) const {
    return hosts_.contains(port);
  }

  /// Runs distinct same-hop devices' sub-batches concurrently on
  /// `threads` pool workers (the injecting thread participates too, so a
  /// chain of K switches wants threads = K-1).  0 restores sequential
  /// dispatch.  Call while no injection is in flight.
  void EnableParallelDispatch(std::size_t threads);
  [[nodiscard]] std::size_t parallel_workers() const {
    return pool_ ? pool_->size() : 0;
  }

  /// Injects a packet from the host on `port` and walks it through the
  /// network.  Returns every copy that left at an edge port.  Packets
  /// still in flight after `max_hops` devices are dropped and counted in
  /// loop_drops() — the symptom the control-plane loop checker prevents.
  std::vector<Delivery> InjectFromHost(const PortRef& port, Packet packet,
                                       std::size_t max_hops = 8);

  /// Batched injection from one host port: the whole vector advances
  /// together through the hop loop, so every device processes one
  /// sub-batch per hop instead of one packet per call — multi-hop chain
  /// workloads measure the batched engine, not the per-packet path.
  /// Deliveries are ordered by hop, then by device name, then by the
  /// sub-batch order within the device.
  std::vector<Delivery> InjectBatchFromHost(const PortRef& port,
                                            std::vector<Packet> packets,
                                            std::size_t max_hops = 8);

  /// General batched injection: packets may enter at different host
  /// ports.  Same hop-loop semantics and delivery order as above.
  std::vector<Delivery> InjectBatch(std::vector<Injection> injections,
                                    std::size_t max_hops = 8);

  /// Wave-pipelined injection from one host port: the batch is split
  /// into waves of `wave_size`, injected one per hop round, so
  /// successive waves occupy successive devices of a chain
  /// simultaneously (combine with EnableParallelDispatch to spread them
  /// across cores).  Deliveries are ordered wave by wave; within a wave
  /// the order matches InjectBatchFromHost of that wave, and for
  /// loop-free forwarding the concatenation is byte-identical to
  /// InjectBatchFromHost of the whole batch (pinned by
  /// tests/test_network.cpp).
  std::vector<Delivery> InjectBatchPipelined(const PortRef& port,
                                             std::vector<Packet> packets,
                                             std::size_t wave_size,
                                             std::size_t max_hops = 8);

  [[nodiscard]] u64 loop_drops() const { return loop_drops_; }

 private:
  /// One in-flight packet: where it is about to enter, and how many more
  /// devices it may traverse.
  struct Traveler {
    PortRef at;
    Packet packet;
    std::size_t hops_left = 0;
  };
  /// One wave's hop-loop state: current/next traveler sets plus the
  /// deliveries it has produced so far.
  struct Wave {
    std::vector<Traveler> cur;
    std::vector<Traveler> next;
    std::vector<Delivery> out;
  };

  /// Stamps host-port injections into travelers (vSwitch VID stamping).
  std::vector<Traveler> MakeTravelers(std::vector<Injection>&& injections,
                                      std::size_t max_hops);
  /// One hop round over every wave: per-device sub-batches (grouped
  /// across waves, wave-ascending within a device) run through the
  /// devices' batched pipelines — concurrently when parallel dispatch is
  /// on — then the verdicts are routed sequentially in deterministic
  /// (device-name, wave, arrival) order.  Each wave's `cur` is consumed
  /// into `next`/`out`.
  void RunHopRound(std::vector<Wave*>& waves);

  std::map<std::string, std::unique_ptr<Device>> devices_;
  std::map<PortRef, PortRef> links_;
  std::map<PortRef, ModuleId> hosts_;
  std::unique_ptr<TaskPool> pool_;
  u64 loop_drops_ = 0;
};

}  // namespace menshen
