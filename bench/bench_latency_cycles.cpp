// Section 5.2 latency numbers: pipeline cycles and nanoseconds for 64 B
// and MTU packets on both platforms, from the cycle-level simulator.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/experiments.hpp"

namespace menshen {
namespace {

void PrintLatencyTable() {
  bench::Header("Section 5.2 — pipeline latency (idle pipeline)");
  std::printf("%-12s %10s %10s %12s %14s\n", "Platform", "size(B)", "cycles",
              "latency(ns)", "paper");
  const char* paper[] = {"79 / 505.6 ns", "~146-150 / 960 ns",
                         "106 / 424 ns", "129 / 516 ns"};
  const auto rows = Section52LatencyTable();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-12s %10zu %10llu %12.1f %14s\n", rows[i].platform.c_str(),
                rows[i].bytes,
                static_cast<unsigned long long>(rows[i].cycles), rows[i].ns,
                paper[i]);
  }

  bench::Header("Latency vs packet size (cycle model)");
  std::printf("%8s %16s %16s\n", "size(B)", "NetFPGA (ns)", "Corundum (ns)");
  for (std::size_t s = 64; s <= 1500; s += 128) {
    std::printf("%8zu %16.1f %16.1f\n", s,
                NetFpgaPlatform().clock.cycles_to_ns(
                    IdleLatencyCycles(NetFpgaPlatform(), s)),
                CorundumPlatform().clock.cycles_to_ns(
                    IdleLatencyCycles(CorundumPlatform(), s)));
  }
}

void BM_IdleLatencyModel(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(IdleLatencyCycles(CorundumPlatform(), 1500));
}
BENCHMARK(BM_IdleLatencyModel);

}  // namespace
}  // namespace menshen

int main(int argc, char** argv) {
  menshen::PrintLatencyTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
