// Table 4: FPGA resource usage of the 5-stage Menshen pipeline vs the
// single-module RMT baseline and the stock platforms.  The isolation-
// primitive census is computed from the Table 5 parameters; the LUT
// conversion constants are fitted (see area/resource_model.hpp).
#include <benchmark/benchmark.h>

#include "area/resource_model.hpp"
#include "bench_util.hpp"

namespace menshen {
namespace {

struct PaperRow {
  const char* design;
  double luts;
  double brams;
};

constexpr PaperRow kPaper[] = {
    {"NetFPGA reference switch", 42325, 245.5},
    {"RMT on NetFPGA", 200573, 641},
    {"Menshen on NetFPGA", 200733, 641},
    {"Corundum", 61463, 349},
    {"RMT on Corundum", 235686, 316},
    {"Menshen on Corundum", 235903, 316},
};

void PrintTable4() {
  bench::Header("Table 4 — FPGA resources (paper vs model)");
  const auto rows = Table4Model();
  std::printf("%-26s %12s %12s %10s %10s %10s\n", "Design", "LUTs(model)",
              "LUTs(paper)", "LUT %", "BRAM", "BRAM %");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-26s %12.0f %12.0f %9.2f%% %10.1f %9.2f%%\n",
                rows[i].design.c_str(), rows[i].luts, kPaper[i].luts,
                rows[i].luts_pct, rows[i].brams, rows[i].brams_pct);
  }

  const IsolationCensus census = MenshenCensus();
  std::printf("\nIsolation-primitive census (from Table 5 parameters):\n");
  std::printf("  overlay storage total: %zu bits (parser %zu + deparser %zu"
              " + per-stage %zu x %zu stages)\n",
              census.total_overlay_bits(), census.parser_table_bits,
              census.deparser_table_bits,
              census.key_extractor_bits_per_stage +
                  census.key_mask_bits_per_stage +
                  census.segment_table_bits_per_stage,
              census.stages);
  std::printf("  extra CAM bit-entries (12-bit module ID x 16 rows x 5 "
              "stages): %zu\n",
              census.total_extra_cam_bit_entries());
  std::printf("  Menshen-over-RMT LUT delta: %.0f (NetFPGA, paper +160) / "
              "%.0f (Corundum, paper +217)\n",
              MenshenLutDelta(census, 256), MenshenLutDelta(census, 512));
  bench::Note("(paper: Menshen adds +0.65% / +0.15% LUTs over RMT and no "
              "Block RAM)");
}

void BM_CensusAndModel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Table4Model());
  }
}
BENCHMARK(BM_CensusAndModel);

}  // namespace
}  // namespace menshen

int main(int argc, char** argv) {
  menshen::PrintTable4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
