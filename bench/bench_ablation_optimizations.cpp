// Ablation: the three section 3.2 optimizations, toggled one at a time on
// the Corundum platform, plus the overlays-vs-naive-partitioning design
// comparison from section 3.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "pipeline/params.hpp"
#include "sim/timing.hpp"

namespace menshen {
namespace {

struct Variant {
  const char* name;
  PipelineTiming timing;
};

std::vector<Variant> Variants() {
  PipelineTiming base = UnoptimizedTiming();
  PipelineTiming multi = base;
  multi.parsers = params::kOptimizedParsers;
  multi.deparsers = params::kOptimizedDeparsers;
  PipelineTiming deep = base;
  deep.stage_ii = 2;
  PipelineTiming all = OptimizedTiming();
  return {
      {"unoptimized", base},
      {"+multi parser/deparser", multi},
      {"+deep pipelining", deep},
      {"all optimizations", all},
  };
}

void PrintAblation() {
  bench::Header(
      "Ablation — section 3.2 optimizations, Corundum, L2 Gb/s by size");
  std::printf("%-24s", "Variant");
  const std::size_t sizes[] = {70, 256, 512, 1500};
  for (const std::size_t s : sizes) std::printf("%10zuB", s);
  std::printf("\n");
  for (const auto& v : Variants()) {
    std::printf("%-24s", v.name);
    for (const std::size_t s : sizes) {
      const double pps =
          std::min(PipelineCapacityPps(CorundumPlatform(), v.timing, s),
                   WireCapacityPps(CorundumPlatform(), s));
      std::printf("%11.1f", pps * s * 8 / 1e9);
    }
    std::printf("\n");
  }
  bench::Note(
      "(neither optimization helps small packets alone — multi parsers\n"
      " leave the unpipelined stages binding at II=8, deep pipelining\n"
      " leaves the single parser binding — but together they halve the\n"
      " per-packet interval; multi deparsers alone already lift MTU\n"
      " throughput because the deparser is the expensive element)");

  bench::Header("Overlays vs naive space-partitioning of the key extractor");
  std::printf("%8s %22s %22s\n", "modules", "key bits (overlay)",
              "key bits (partitioned)");
  for (const std::size_t m : {1, 2, 4, 8, 16, 32}) {
    // With overlays, every module keeps the full 193-bit key; naive
    // partitioning splits the extractor's slots across modules.
    std::printf("%8zu %22zu %22zu\n", m, params::kKeyBits,
                params::kKeyBits / m);
  }
  bench::Note("(the section 3 argument: naive partitioning halves per-\n"
              " module key richness with every doubling of modules;\n"
              " overlays keep the full 24-byte+predicate key at 32 modules\n"
              " for 49,760 bits of configuration SRAM)");
}

void BM_Capacity(benchmark::State& state) {
  const auto variants = Variants();
  const auto& v = variants[static_cast<std::size_t>(state.range(0))];
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        PipelineCapacityPps(CorundumPlatform(), v.timing, bytes, 4000));
  state.SetLabel(v.name);
}
BENCHMARK(BM_Capacity)
    ->ArgsProduct({{0, 3}, {70, 1500}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace menshen

int main(int argc, char** argv) {
  menshen::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
