// Async ingress benchmark: N producer threads submitting batch tickets
// into the per-shard MPSC rings vs the single-dispatcher baseline.
//
// The old engine funneled every batch through one ProcessBatch caller —
// the front-end bottleneck the ingress subsystem removes.  Here the same
// four-tenant calc workload is driven (a) by one dispatcher thread
// calling ProcessBatch in a loop, and (b) by four producer threads, each
// owning one tenant, submitting tickets asynchronously with a small
// in-flight window.  The ratio is the measured multi-producer ingress
// speedup on this host (≈1 on a single-core container; ≥2x expected on a
// multi-core host, where the scatter work itself parallelizes).  A queue
// depth sweep shows how much in-flight buffering the rings need before
// backpressure stops mattering.
//
// Appends `ingress_*` rows to BENCH_throughput.json (run after
// bench_fig11_throughput, which creates the file) for the CI perf gate.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "dataplane/dataplane.hpp"
#include "packet/arena.hpp"
#include "sim/traffic.hpp"

namespace menshen {
namespace {

constexpr std::size_t kFrameBytes = 96;
constexpr std::size_t kShards = 4;
constexpr std::size_t kTicketPackets = 1024;
constexpr std::size_t kTicketsPerProducer = 48;
constexpr std::size_t kWindow = 4;  // in-flight tickets per producer

void InstallTenants(Dataplane& dp) {
  for (u16 vid = 2; vid <= 5; ++vid) {
    const std::size_t slot = vid - 2;
    ModuleAllocation alloc =
        UniformAllocation(ModuleId(vid), 0, params::kNumStages, slot * 4, 4,
                          static_cast<u8>(slot * 32), 32);
    CompiledModule m = Compile(apps::CalcSpec(), alloc);
    apps::InstallCalcEntries(m, static_cast<u16>(10 + slot));
    dp.ApplyWrites(m.AllWrites());
  }
}

struct IngressPoint {
  std::string name;
  double mpps = 0.0;
  double l2_gbps = 0.0;
};

IngressPoint FinishPoint(std::string name, std::size_t packets,
                         double seconds) {
  IngressPoint p;
  p.name = std::move(name);
  p.mpps = static_cast<double>(packets) / seconds / 1e6;
  p.l2_gbps = p.mpps * 1e6 * static_cast<double>(kFrameBytes) * 8.0 / 1e9;
  return p;
}

/// Baseline: one dispatcher thread, synchronous ProcessBatch — every
/// batch rendezvouses with the caller before the next one starts.
IngressPoint MeasureSingleDispatcher() {
  Dataplane dp(DataplaneConfig{.num_shards = kShards, .worker_threads = true});
  InstallTenants(dp);
  const std::vector<Packet> trace = GenerateTenantMix(
      {{2, kFrameBytes, 1.0},
       {3, kFrameBytes, 1.0},
       {4, kFrameBytes, 1.0},
       {5, kFrameBytes, 1.0}},
      kTicketPackets);
  {
    std::vector<Packet> warm = trace;
    (void)dp.ProcessBatch(std::move(warm));
  }
  constexpr std::size_t kBatches = kTicketsPerProducer * 4;
  std::vector<std::vector<Packet>> batches(kBatches, trace);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t b = 0; b < kBatches; ++b)
    benchmark::DoNotOptimize(dp.ProcessBatch(std::move(batches[b])));
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  return FinishPoint("ingress_96B_1disp", kBatches * kTicketPackets, seconds);
}

/// Four producers, one tenant each, submitting tickets with a bounded
/// in-flight window through the per-shard MPSC rings.
IngressPoint MeasureProducers(std::size_t producers,
                              std::size_t queue_depth) {
  Dataplane dp(DataplaneConfig{.num_shards = kShards,
                               .worker_threads = true,
                               .ingress_queue_depth = queue_depth});
  InstallTenants(dp);

  std::vector<std::vector<Packet>> traces;
  for (std::size_t p = 0; p < producers; ++p)
    traces.push_back(GenerateTenantMix(
        {{static_cast<u16>(2 + (p % 4)), kFrameBytes, 1.0}}, kTicketPackets));
  {
    std::vector<Packet> warm = traces[0];
    (void)dp.ProcessBatch(std::move(warm));
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      std::deque<std::future<std::vector<PipelineResult>>> window;
      for (std::size_t t = 0; t < kTicketsPerProducer; ++t) {
        BatchTicket ticket;
        ticket.batch = traces[p];
        window.push_back(dp.Submit(std::move(ticket)));
        while (window.size() >= kWindow) {
          benchmark::DoNotOptimize(window.front().get());
          window.pop_front();
        }
      }
      while (!window.empty()) {
        benchmark::DoNotOptimize(window.front().get());
        window.pop_front();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  return FinishPoint(
      "ingress_96B_" + std::to_string(producers) + "prod_d" +
          std::to_string(queue_depth),
      producers * kTicketsPerProducer * kTicketPackets, seconds);
}

/// Run-to-completion streaming: producers fill arena bursts in place,
/// run them to completion on their own core (no worker threads — the
/// producer IS the forwarding core, serialized per shard, parallel
/// across shards), and recycle buffers as the egress queues drain — no
/// result gather, no futures, no batch copies, no thread handoffs.
IngressPoint MeasureStream(std::size_t producers, std::size_t shards) {
  Dataplane dp(DataplaneConfig{.num_shards = shards,
                               .worker_threads = false,
                               .ingress_queue_depth = 256});
  InstallTenants(dp);

  constexpr std::size_t kBurst = 64;
  std::vector<std::vector<Packet>> traces;
  for (std::size_t p = 0; p < producers; ++p)
    traces.push_back(GenerateTenantMix(
        {{static_cast<u16>(2 + (p % 4)), kFrameBytes, 1.0}}, kTicketPackets));

  std::vector<std::unique_ptr<PacketArena>> arenas;
  for (std::size_t p = 0; p < producers; ++p)
    arenas.push_back(std::make_unique<PacketArena>(4096));

  const auto produce = [&](std::size_t p, std::size_t tickets) {
    PacketArena& arena = *arenas[p];
    const std::vector<Packet>& trace = traces[p];
    std::vector<ArenaPacket*> egress;
    ArenaPacket* burst[kBurst];
    for (std::size_t t = 0; t < tickets; ++t) {
      for (std::size_t off = 0; off < trace.size(); off += kBurst) {
        const std::size_t n = std::min(kBurst, trace.size() - off);
        std::size_t have = 0;
        while (have < n) {
          have += arena.AllocateBurst(burst + have, n - have);
          if (have < n) {  // arena cap reached: recycle consumed egress
            egress.clear();
            if (dp.PollEgress(egress) != 0)
              ReleaseToOwners(egress.data(), egress.size());
            else
              std::this_thread::yield();
          }
        }
        for (std::size_t i = 0; i < n; ++i)
          burst[i]->Assign(trace[off + i].bytes().bytes());
        dp.SubmitStream(burst, n);
      }
      egress.clear();
      if (dp.PollEgress(egress) != 0)
        ReleaseToOwners(egress.data(), egress.size());
    }
    // Drain this producer's remaining buffers back to the arena.
    while (arena.outstanding() != 0) {
      egress.clear();
      if (dp.PollEgress(egress) != 0)
        ReleaseToOwners(egress.data(), egress.size());
      else
        std::this_thread::yield();
    }
  };

  for (std::size_t p = 0; p < producers; ++p) produce(p, 1);  // warm

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < producers; ++p)
    threads.emplace_back([&, p] { produce(p, kTicketsPerProducer); });
  for (std::thread& t : threads) t.join();
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  return FinishPoint("stream_96B_" + std::to_string(shards) + "core_" +
                         std::to_string(producers) + "prod",
                     producers * kTicketsPerProducer * kTicketPackets,
                     seconds);
}

/// Zipf-skewed streaming over a flow-cacheable router tenant: the
/// ladder-tier mix row.  One producer, one shard, zipf(0.9) tags over a
/// 64-tag space — most packets resolve in the flow-verdict cache's
/// burst-probe tier, the cold tail falls through to the kernel/plan
/// ladder.  Alongside throughput the row reports fc_share (flow-cache
/// hits / streamed packets, deltas across the measured phase), which
/// tools/bench_diff.py gates against the committed baseline share: a
/// change that silently pushes zipf traffic off the memoization tier
/// fails the bench gate even if raw Mpps survives.
struct ZipfStreamPoint {
  IngressPoint pt;
  double fc_share = 0;
  u64 stream_pkts = 0;
  u64 fc_hits = 0;
  u64 fc_misses = 0;
  u64 burst_pkts = 0;
  u64 burst_fallback = 0;
  u64 kernel_pkts = 0;
  u64 kernel_fallback_pkts = 0;
};

ZipfStreamPoint MeasureStreamZipf() {
  Dataplane dp(DataplaneConfig{.num_shards = 1,
                               .worker_threads = false,
                               .ingress_queue_depth = 256});
  {
    static const ModuleSpec spec = apps::ParseAppDsl(R"(
module router {
  field tag : 2 @ 46;
  action fwd(p) { port(p); }
  action sink { drop(); }
  table routes { key = { tag }; actions = { fwd, sink }; size = 8; }
}
)");
    ModuleAllocation alloc =
        UniformAllocation(ModuleId(2), 0, params::kNumStages, 0, 8, 0, 0);
    CompiledModule m = Compile(spec, alloc);
    for (u16 t = 0; t < 7; ++t)
      m.AddEntry("routes", {{"tag", t}}, std::nullopt, "fwd",
                 {static_cast<u64>(40 + t)});
    m.AddEntry("routes", {{"tag", 7}}, std::nullopt, "sink", {});
    dp.ApplyWrites(m.AllWrites());
  }

  constexpr std::size_t kTagSpace = 64;
  std::vector<double> cdf;
  cdf.reserve(kTagSpace);
  double sum = 0;
  for (std::size_t k = 1; k <= kTagSpace; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k), 0.9);
    cdf.push_back(sum);
  }
  Rng rng(0x21BF);
  std::vector<Packet> trace;
  trace.reserve(kTicketPackets);
  for (std::size_t i = 0; i < kTicketPackets; ++i) {
    const double u = rng.NextDouble() * cdf.back();
    const u16 tag = static_cast<u16>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    Packet p = PacketBuilder{}.vid(ModuleId(2)).frame_size(kFrameBytes).Build();
    p.bytes().set_u16(46, tag);
    trace.push_back(std::move(p));
  }

  PacketArena arena(4096);
  constexpr std::size_t kBurst = 64;
  const auto produce = [&](std::size_t tickets) {
    std::vector<ArenaPacket*> egress;
    ArenaPacket* burst[kBurst];
    for (std::size_t t = 0; t < tickets; ++t) {
      for (std::size_t off = 0; off < trace.size(); off += kBurst) {
        const std::size_t n = std::min(kBurst, trace.size() - off);
        std::size_t have = 0;
        while (have < n) {
          have += arena.AllocateBurst(burst + have, n - have);
          if (have < n) {
            egress.clear();
            if (dp.PollEgress(egress) != 0)
              ReleaseToOwners(egress.data(), egress.size());
            else
              std::this_thread::yield();
          }
        }
        for (std::size_t i = 0; i < n; ++i)
          burst[i]->Assign(trace[off + i].bytes().bytes());
        dp.SubmitStream(burst, n);
      }
      egress.clear();
      if (dp.PollEgress(egress) != 0)
        ReleaseToOwners(egress.data(), egress.size());
    }
    while (arena.outstanding() != 0) {
      egress.clear();
      if (dp.PollEgress(egress) != 0)
        ReleaseToOwners(egress.data(), egress.size());
      else
        std::this_thread::yield();
    }
  };

  produce(1);  // warm: fills the verdict cache's head tags
  const auto sum_counters = [&] {
    ZipfStreamPoint acc;
    for (const Dataplane::ShardCounters& c : dp.CountersSnapshot()) {
      acc.stream_pkts += c.stream_pkts;
      acc.fc_hits += c.flow_cache_hits;
      acc.fc_misses += c.flow_cache_misses;
      acc.burst_pkts += c.flow_cache_burst_pkts;
      acc.burst_fallback += c.flow_cache_burst_fallback;
      acc.kernel_pkts += c.kernel_pkts;
      acc.kernel_fallback_pkts += c.kernel_fallback_pkts;
    }
    return acc;
  };
  const ZipfStreamPoint before = sum_counters();

  const auto start = std::chrono::steady_clock::now();
  produce(kTicketsPerProducer);
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  ZipfStreamPoint p = sum_counters();
  p.stream_pkts -= before.stream_pkts;
  p.fc_hits -= before.fc_hits;
  p.fc_misses -= before.fc_misses;
  p.burst_pkts -= before.burst_pkts;
  p.burst_fallback -= before.burst_fallback;
  p.kernel_pkts -= before.kernel_pkts;
  p.kernel_fallback_pkts -= before.kernel_fallback_pkts;
  if (p.stream_pkts != 0)
    p.fc_share = static_cast<double>(p.fc_hits) /
                 static_cast<double>(p.stream_pkts);
  p.pt = FinishPoint("stream_96B_zipf_1core_1prod",
                     kTicketsPerProducer * kTicketPackets, seconds);
  return p;
}

void RunAndEmit() {
  const IngressPoint base = MeasureSingleDispatcher();
  std::vector<IngressPoint> pts{base};
  for (const std::size_t depth : {std::size_t{16}, std::size_t{64},
                                  std::size_t{256}})
    pts.push_back(MeasureProducers(4, depth));
  pts.push_back(MeasureStream(1, 1));
  pts.push_back(MeasureStream(4, 4));
  const ZipfStreamPoint zipf = MeasureStreamZipf();
  pts.push_back(zipf.pt);

  bench::Header("Async ingress — N producers vs 1 dispatcher "
                "(queue-depth sweep)");
  std::printf("%-32s %12s %12s\n", "config", "L2 (Gb/s)", "rate (Mpps)");
  for (const IngressPoint& p : pts)
    std::printf("%-32s %12.3f %12.3f\n", p.name.c_str(), p.l2_gbps, p.mpps);
  double best = 0;
  for (std::size_t i = 1; i < pts.size(); ++i)
    best = std::max(best, pts[i].mpps);
  std::printf("aggregate 4-producer speedup over 1 dispatcher: %.2fx "
              "(%zu hardware threads)\n",
              best / base.mpps,
              static_cast<std::size_t>(std::thread::hardware_concurrency()));

  std::FILE* f = std::fopen("BENCH_throughput.json", "a");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot append to BENCH_throughput.json\n");
    return;
  }
  for (const IngressPoint& p : pts) {
    if (p.name == zipf.pt.name) {
      // The zipf row carries the flow-cache tier share so bench_diff can
      // gate it against the committed baseline share.
      std::fprintf(f,
                   "{\"name\": \"%s\", \"gbps\": %.4f, \"mpps\": %.4f, "
                   "\"fc_share\": %.4f}\n",
                   p.name.c_str(), p.l2_gbps, p.mpps, zipf.fc_share);
    } else {
      bench::JsonThroughputLine(f, p.name, p.l2_gbps, p.mpps);
    }
  }
  std::fclose(f);
  bench::Note("\nappended ingress rows to BENCH_throughput.json");

  // Ladder-tier mix artifact: where the zipf streaming row's packets
  // resolved (flow-cache burst tier vs kernel/plan ladder).  Uploaded by
  // CI next to the bench JSONs so a tier shift is inspectable without a
  // re-run.
  std::FILE* tf = std::fopen("TIER_mix.json", "w");
  if (tf != nullptr) {
    std::fprintf(
        tf,
        "{\"row\": \"%s\", \"stream_pkts\": %llu, \"flow_cache_hits\": %llu, "
        "\"flow_cache_misses\": %llu, \"flow_cache_burst_pkts\": %llu, "
        "\"flow_cache_burst_fallback\": %llu, \"kernel_pkts\": %llu, "
        "\"kernel_fallback_pkts\": %llu, \"fc_share\": %.4f}\n",
        zipf.pt.name.c_str(),
        static_cast<unsigned long long>(zipf.stream_pkts),
        static_cast<unsigned long long>(zipf.fc_hits),
        static_cast<unsigned long long>(zipf.fc_misses),
        static_cast<unsigned long long>(zipf.burst_pkts),
        static_cast<unsigned long long>(zipf.burst_fallback),
        static_cast<unsigned long long>(zipf.kernel_pkts),
        static_cast<unsigned long long>(zipf.kernel_fallback_pkts),
        zipf.fc_share);
    std::fclose(tf);
    std::printf("zipf ladder-tier mix: fc_share %.3f (burst lanes %llu, "
                "fallback %llu) -> TIER_mix.json\n",
                zipf.fc_share,
                static_cast<unsigned long long>(zipf.burst_pkts),
                static_cast<unsigned long long>(zipf.burst_fallback));
  }
}

void BM_SubmitWindowed(benchmark::State& state) {
  Dataplane dp(DataplaneConfig{.num_shards = kShards, .worker_threads = true});
  InstallTenants(dp);
  const std::vector<Packet> trace = GenerateTenantMix(
      {{2, kFrameBytes, 1.0}, {3, kFrameBytes, 1.0}}, kTicketPackets);
  for (auto _ : state) {
    BatchTicket ticket;
    ticket.batch = trace;
    benchmark::DoNotOptimize(dp.Submit(std::move(ticket)).get());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kTicketPackets));
}
BENCHMARK(BM_SubmitWindowed)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace menshen

int main(int argc, char** argv) {
  return menshen::bench::BenchMainWithEmit(argc, argv,
                                           [] { menshen::RunAndEmit(); });
}
