// Section 5.2 ASIC study: per-component area overhead of Menshen over the
// single-module RMT baseline at FreePDK45 / 1 GHz, plus the timing-
// feasibility model.
#include <benchmark/benchmark.h>

#include "area/resource_model.hpp"
#include "bench_util.hpp"

namespace menshen {
namespace {

void PrintAsicStudy() {
  bench::Header("Section 5.2 — ASIC area (FreePDK45, 1 GHz)");
  const AsicSummary s = AsicAreaModel();
  std::printf("%-18s %12s %14s %10s\n", "Component", "RMT (mm^2)",
              "Menshen (mm^2)", "overhead");
  for (const auto& c : s.components)
    std::printf("%-18s %12.3f %14.3f %9.1f%%\n", c.name.c_str(), c.rmt_mm2,
                c.menshen_mm2, c.overhead_pct());
  std::printf("%-18s %12.2f %14.2f %9.1f%%\n", "TOTAL pipeline",
              s.rmt_total_mm2, s.menshen_total_mm2,
              s.pipeline_overhead_pct);
  std::printf("chip-level overhead (tables+logic <= 50%% of a switch chip): "
              "%.1f%%\n", s.chip_overhead_pct);
  bench::Note(
      "(paper: parser +18.5%, deparser +7%, stage +20.9%; pipeline 9.71 ->\n"
      " 10.81 mm^2 = +11.4%; ~5.7% chip-level — matched by construction,\n"
      " with the baseline decomposition fitted to the totals)");

  bench::Header("Section 5.2 — 1 GHz timing feasibility (element paths)");
  std::printf("%-46s %10s %8s\n", "Element", "delay(ps)", "meets?");
  for (const auto& p : AsicTimingModel())
    std::printf("%-46s %10.0f %8s\n", p.element.c_str(), p.delay_ps,
                p.meets_1ghz() ? "yes" : "NO");
}

void BM_AsicModel(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(AsicAreaModel());
}
BENCHMARK(BM_AsicModel);

}  // namespace
}  // namespace menshen

int main(int argc, char** argv) {
  menshen::PrintAsicStudy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
