// Section 5.1 performance isolation: a module that violates the
// minimum-packet-size assumption floods the shared pipeline with 64-byte
// frames; a per-module rate limiter at the packet filter restores the
// well-behaved neighbour's throughput.  (The paper states the mechanism;
// this bench quantifies it on the cycle model.)
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/experiments.hpp"

namespace menshen {
namespace {

void PrintPerfIsolation() {
  bench::Header(
      "Section 5.1 — performance isolation via per-module rate limiting "
      "(Corundum)");
  const PerfIsolationResult r = RunPerformanceIsolation();
  std::printf("victim (1500B CBR, 40 Gb/s offered):\n");
  std::printf("  alone                      %7.2f Gb/s\n",
              r.victim_gbps_alone);
  std::printf("  with 64B flood (no limit)  %7.2f Gb/s\n",
              r.victim_gbps_flooded);
  std::printf("  flood rate-limited to 5Mpps%7.2f Gb/s\n",
              r.victim_gbps_limited);
  std::printf("attacker after limiter: %.2f Mpps\n",
              r.attacker_mpps_limited);
  bench::Note(
      "(the flood steals parser/stage slots from the victim; the limiter\n"
      " drops non-conforming packets at the filter before they consume\n"
      " pipeline resources — the mechanism section 5.1 prescribes when\n"
      " the minimum-size assumption is violated)");
}

void BM_PerfIsolationExperiment(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(RunPerformanceIsolation(40.0, 5e6, 0.001));
}
BENCHMARK(BM_PerfIsolationExperiment)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace menshen

int main(int argc, char** argv) {
  menshen::PrintPerfIsolation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
