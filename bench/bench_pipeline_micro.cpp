// Microbenchmarks of the functional pipeline model itself: how fast this
// simulator processes packets, and the cost of its hot elements.  (Not a
// paper figure — throughput of the simulator, quoted in the README.)
#include <benchmark/benchmark.h>

#include "apps/apps.hpp"
#include "config/daisy_chain.hpp"
#include "dataplane/dataplane.hpp"
#include "runtime/module_manager.hpp"
#include "sim/traffic.hpp"

namespace menshen {
namespace {

Pipeline& LoadedCalcPipeline() {
  static Pipeline pipe;
  static bool done = [] {
    ModuleManager mgr(pipe);
    const ModuleAllocation alloc =
        UniformAllocation(ModuleId(2), 0, params::kNumStages, 0, 8, 0, 32);
    CompiledModule m = Compile(apps::CalcSpec(), alloc);
    mgr.Load(m, alloc);
    apps::InstallCalcEntries(m, 1);
    mgr.Update(m);
    return true;
  }();
  (void)done;
  return pipe;
}

Packet CalcRequest() {
  Packet p = PacketBuilder{}.vid(ModuleId(2)).frame_size(96).Build();
  p.bytes().set_u16(46, apps::kCalcOpAdd);
  p.bytes().set_u32(48, 1);
  p.bytes().set_u32(52, 2);
  return p;
}

void BM_FunctionalPacket(benchmark::State& state) {
  Pipeline& pipe = LoadedCalcPipeline();
  const Packet req = CalcRequest();
  for (auto _ : state) {
    Packet copy = req;
    benchmark::DoNotOptimize(pipe.Process(std::move(copy)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FunctionalPacket);

void BM_ParseOnly(benchmark::State& state) {
  Pipeline& pipe = LoadedCalcPipeline();
  const Packet req = CalcRequest();
  for (auto _ : state) benchmark::DoNotOptimize(pipe.parser().Parse(req));
}
BENCHMARK(BM_ParseOnly);

void BM_CamLookup(benchmark::State& state) {
  Pipeline& pipe = LoadedCalcPipeline();
  const Phv phv = pipe.parser().Parse(CalcRequest());
  const BitVec key = pipe.stage(0).MaskedKeyFor(phv);
  const auto& cam = pipe.stage(0).cam();
  for (auto _ : state)
    benchmark::DoNotOptimize(cam.Lookup(key, ModuleId(2)));
}
BENCHMARK(BM_CamLookup);

void BM_KeyExtraction(benchmark::State& state) {
  Pipeline& pipe = LoadedCalcPipeline();
  const Phv phv = pipe.parser().Parse(CalcRequest());
  for (auto _ : state)
    benchmark::DoNotOptimize(pipe.stage(0).MaskedKeyFor(phv));
}
BENCHMARK(BM_KeyExtraction);

// The key-layout-cache hot path (what ProcessInPlace runs): the cached
// plan skips the key slots the module's mask zeroes and reuses the
// caller's key storage.  The ratio against BM_KeyExtraction is the
// per-stage key-extraction speedup.
void BM_KeyExtractionPlanned(benchmark::State& state) {
  Pipeline& pipe = LoadedCalcPipeline();
  const Phv phv = pipe.parser().Parse(CalcRequest());
  BitVec key;
  for (auto _ : state) {
    pipe.stage(0).MaskedKeyInto(phv, key);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_KeyExtractionPlanned);

// --- Batched vs per-packet (the src/dataplane/ hot path) ----------------------
//
// The same 10k-packet single-tenant workload, processed (a) one packet at
// a time through Pipeline::Process — the per-call path that copies the
// PHV between stages and allocates a fresh lookup key per stage — and
// (b) as one batch through the scratch-buffer-reusing batched path.  The
// ratio of the two is the measured batching speedup.

constexpr std::size_t kWorkloadPackets = 10000;

void BM_PerPacket10k(benchmark::State& state) {
  Pipeline& pipe = LoadedCalcPipeline();
  const Packet req = CalcRequest();
  for (auto _ : state) {
    for (std::size_t i = 0; i < kWorkloadPackets; ++i) {
      Packet copy = req;
      benchmark::DoNotOptimize(pipe.Process(std::move(copy)));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kWorkloadPackets));
}
BENCHMARK(BM_PerPacket10k)->Unit(benchmark::kMillisecond);

void BM_Batched10k(benchmark::State& state) {
  Pipeline& pipe = LoadedCalcPipeline();
  const Packet req = CalcRequest();
  std::vector<PipelineResult> results;
  for (auto _ : state) {
    std::vector<Packet> batch(kWorkloadPackets, req);
    results.clear();
    pipe.ProcessBatchInto(std::move(batch), results);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kWorkloadPackets));
}
BENCHMARK(BM_Batched10k)->Unit(benchmark::kMillisecond);

// Multi-tenant batch through the sharded front-end.  Arg 0 = shard
// count, arg 1 = worker threads on/off: the sequential path is the
// reference the concurrent engine is pinned against, and the ratio of
// the two is the measured threading speedup (1 on a single-core host —
// the fork/join engine only pays off with real cores).
void BM_ShardedDataplane10k(benchmark::State& state) {
  Dataplane dp(DataplaneConfig{
      .num_shards = static_cast<std::size_t>(state.range(0)),
      .worker_threads = state.range(1) != 0});
  {
    ModuleAllocation alloc =
        UniformAllocation(ModuleId(2), 0, params::kNumStages, 0, 8, 0, 32);
    CompiledModule m = Compile(apps::CalcSpec(), alloc);
    apps::InstallCalcEntries(m, 1);
    dp.ApplyWrites(m.AllWrites());
  }
  const std::vector<Packet> trace = GenerateTenantMix(
      {{2, 96, 1.0}, {3, 96, 1.0}, {4, 96, 1.0}, {5, 96, 1.0}},
      kWorkloadPackets);
  for (auto _ : state) {
    std::vector<Packet> batch = trace;
    benchmark::DoNotOptimize(dp.ProcessBatch(std::move(batch)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kWorkloadPackets));
}
BENCHMARK(BM_ShardedDataplane10k)
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace menshen

BENCHMARK_MAIN();
