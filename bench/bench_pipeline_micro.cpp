// Microbenchmarks of the functional pipeline model itself: how fast this
// simulator processes packets, and the cost of its hot elements.  (Not a
// paper figure — throughput of the simulator, quoted in the README.)
#include <benchmark/benchmark.h>

#include "apps/apps.hpp"
#include "config/daisy_chain.hpp"
#include "runtime/module_manager.hpp"

namespace menshen {
namespace {

Pipeline& LoadedCalcPipeline() {
  static Pipeline pipe;
  static bool done = [] {
    ModuleManager mgr(pipe);
    const ModuleAllocation alloc =
        UniformAllocation(ModuleId(2), 0, params::kNumStages, 0, 8, 0, 32);
    CompiledModule m = Compile(apps::CalcSpec(), alloc);
    mgr.Load(m, alloc);
    apps::InstallCalcEntries(m, 1);
    mgr.Update(m);
    return true;
  }();
  (void)done;
  return pipe;
}

Packet CalcRequest() {
  Packet p = PacketBuilder{}.vid(ModuleId(2)).frame_size(96).Build();
  p.bytes().set_u16(46, apps::kCalcOpAdd);
  p.bytes().set_u32(48, 1);
  p.bytes().set_u32(52, 2);
  return p;
}

void BM_FunctionalPacket(benchmark::State& state) {
  Pipeline& pipe = LoadedCalcPipeline();
  const Packet req = CalcRequest();
  for (auto _ : state) {
    Packet copy = req;
    benchmark::DoNotOptimize(pipe.Process(std::move(copy)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FunctionalPacket);

void BM_ParseOnly(benchmark::State& state) {
  Pipeline& pipe = LoadedCalcPipeline();
  const Packet req = CalcRequest();
  for (auto _ : state) benchmark::DoNotOptimize(pipe.parser().Parse(req));
}
BENCHMARK(BM_ParseOnly);

void BM_CamLookup(benchmark::State& state) {
  Pipeline& pipe = LoadedCalcPipeline();
  const Phv phv = pipe.parser().Parse(CalcRequest());
  const BitVec key = pipe.stage(0).MaskedKeyFor(phv);
  const auto& cam = pipe.stage(0).cam();
  for (auto _ : state)
    benchmark::DoNotOptimize(cam.Lookup(key, ModuleId(2)));
}
BENCHMARK(BM_CamLookup);

void BM_KeyExtraction(benchmark::State& state) {
  Pipeline& pipe = LoadedCalcPipeline();
  const Phv phv = pipe.parser().Parse(CalcRequest());
  for (auto _ : state)
    benchmark::DoNotOptimize(pipe.stage(0).MaskedKeyFor(phv));
}
BENCHMARK(BM_KeyExtraction);

}  // namespace
}  // namespace menshen

BENCHMARK_MAIN();
