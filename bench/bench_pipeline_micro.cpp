// Microbenchmarks of the functional pipeline model itself: how fast this
// simulator processes packets, and the cost of its hot elements.  (Not a
// paper figure — throughput of the simulator, quoted in the README.)
//
// Besides the interactive google-benchmark suite, main() hand-measures
// the match-path micro costs and writes BENCH_micro.json (JSON lines of
// {"name", "ns_per_op"}) — the committed baseline tools/bench_diff.py
// gates in CI alongside the throughput rows.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

#include "apps/apps.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "config/daisy_chain.hpp"
#include "dataplane/dataplane.hpp"
#include "runtime/module_manager.hpp"
#include "sim/traffic.hpp"

namespace menshen {
namespace {

Pipeline& LoadedCalcPipeline() {
  static Pipeline pipe;
  static bool done = [] {
    ModuleManager mgr(pipe);
    const ModuleAllocation alloc =
        UniformAllocation(ModuleId(2), 0, params::kNumStages, 0, 8, 0, 32);
    CompiledModule m = Compile(apps::CalcSpec(), alloc);
    mgr.Load(m, alloc);
    apps::InstallCalcEntries(m, 1);
    mgr.Update(m);
    return true;
  }();
  (void)done;
  return pipe;
}

// A flow-cacheable tenant for the flow-verdict-cache rows: one-word 2B
// key, constant port/drop actions only (the stock source-routing app
// decrements its hops field, which blocks caching).
Pipeline& LoadedRouterPipeline() {
  static Pipeline pipe;
  static bool done = [] {
    static const ModuleSpec spec = apps::ParseAppDsl(R"(
module router {
  field tag : 2 @ 46;
  action fwd(p) { port(p); }
  action sink { drop(); }
  table routes { key = { tag }; actions = { fwd, sink }; size = 8; }
}
)");
    ModuleManager mgr(pipe);
    const ModuleAllocation alloc =
        UniformAllocation(ModuleId(7), 0, params::kNumStages, 0, 8, 0, 0);
    CompiledModule m = Compile(spec, alloc);
    mgr.Load(m, alloc);
    for (u16 t = 0; t < 7; ++t)
      m.AddEntry("routes", {{"tag", t}}, std::nullopt, "fwd",
                 {static_cast<u64>(40 + t)});
    m.AddEntry("routes", {{"tag", 7}}, std::nullopt, "sink", {});
    mgr.Update(m);
    return true;
  }();
  (void)done;
  return pipe;
}

Packet RouterRequest(u16 tag) {
  Packet p = PacketBuilder{}.vid(ModuleId(7)).frame_size(96).Build();
  p.bytes().set_u16(46, tag);
  return p;
}

Packet CalcRequest() {
  Packet p = PacketBuilder{}.vid(ModuleId(2)).frame_size(96).Build();
  p.bytes().set_u16(46, apps::kCalcOpAdd);
  p.bytes().set_u32(48, 1);
  p.bytes().set_u32(52, 2);
  return p;
}

// --- Kernel-shape tenants (micro_kernel_* rows) -------------------------------
//
// One tenant per kernel shape class the registry dispatches (none of
// them is flow-cacheable, so every packet takes the kernel or the
// interpreted fallback): calc is the stateless multi-slot probe shape,
// netchain the stateful sequencer shape, and the ternary ACL the
// wide/ternary shape that routes to the interpreted plan path.

Pipeline& LoadedNetChainPipeline() {
  static Pipeline pipe;
  static bool done = [] {
    ModuleManager mgr(pipe);
    const ModuleAllocation alloc =
        UniformAllocation(ModuleId(3), 0, params::kNumStages, 0, 8, 0, 32);
    CompiledModule m = Compile(apps::NetChainSpec(), alloc);
    mgr.Load(m, alloc);
    apps::InstallNetChainEntries(m, 2);
    mgr.Update(m);
    return true;
  }();
  (void)done;
  return pipe;
}

Packet NetChainRequest() {
  Packet p =
      PacketBuilder{}.vid(ModuleId(3)).udp(10000, 40000).frame_size(96).Build();
  p.bytes().set_u16(46, apps::kNetChainOpSeq);
  return p;
}

Pipeline& LoadedAclPipeline() {
  static Pipeline pipe;
  static bool done = [] {
    static const ModuleSpec spec = apps::ParseAppDsl(R"(
module acl {
  field src_ip : 4 @ 30;
  action screen { drop(); }
  action pass(p) { port(p); }
  table acl { key = { src_ip }; actions = { screen, pass }; size = 4;
              match = ternary; }
}
)");
    ModuleManager mgr(pipe);
    const ModuleAllocation alloc =
        UniformAllocation(ModuleId(4), 0, params::kNumStages, 0, 8, 0, 0);
    CompiledModule m = Compile(spec, alloc);
    mgr.Load(m, alloc);
    m.AddTernaryEntry("acl", {{"src_ip", 0x0A090000}},
                      {{"src_ip", 0xFFFF0000}}, std::nullopt, "screen", {});
    m.AddTernaryEntry("acl", {{"src_ip", 0}}, {{"src_ip", 0}}, std::nullopt,
                      "pass", {1});
    mgr.Update(m);
    return true;
  }();
  (void)done;
  return pipe;
}

Packet AclRequest() {
  return PacketBuilder{}
      .vid(ModuleId(4))
      .ipv4(0x0B000001, 0x0A000002)
      .udp(1, 2)
      .frame_size(96)
      .Build();
}

void BM_FunctionalPacket(benchmark::State& state) {
  Pipeline& pipe = LoadedCalcPipeline();
  const Packet req = CalcRequest();
  for (auto _ : state) {
    Packet copy = req;
    benchmark::DoNotOptimize(pipe.Process(std::move(copy)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FunctionalPacket);

void BM_ParseOnly(benchmark::State& state) {
  Pipeline& pipe = LoadedCalcPipeline();
  const Packet req = CalcRequest();
  for (auto _ : state) benchmark::DoNotOptimize(pipe.parser().Parse(req));
}
BENCHMARK(BM_ParseOnly);

// --- Match-path lookups at full occupancy -------------------------------------
//
// The calc module's 3-entry table lets the linear scan early-exit after
// one compare, so the interesting comparison is a CAM at its hardware
// depth: 16 valid entries of one module, probing the highest address
// (the scan's worst case; the hash probes are depth-independent).

const ExactMatchCam& FullCam() {
  static const ExactMatchCam cam = [] {
    ExactMatchCam c;
    for (std::size_t a = 0; a < c.depth(); ++a) {
      CamEntry e;
      e.valid = true;
      e.key = BitVec::FromValue(params::kKeyBits, (a + 1) << 1);
      e.module = ModuleId(2);
      c.Write(a, e);
    }
    return c;
  }();
  return cam;
}

BitVec FullCamProbeKey() {
  return BitVec::FromValue(params::kKeyBits, u64{params::kCamDepth} << 1);
}

const TernaryCam& FullTcam() {
  static const TernaryCam tcam = [] {
    TernaryCam t;
    for (std::size_t a = 0; a < t.depth(); ++a) {
      TcamEntry e;
      e.valid = true;
      e.key = BitVec::FromValue(params::kKeyBits, (a + 1) << 1);
      e.mask = BitVec::FromValue(params::kKeyBits, 0x3E);
      // Two modules own the halves: the narrowed scan walks 8 entries
      // where the linear reference walks 16.
      e.module = ModuleId(a < t.depth() / 2 ? 2 : 3);
      t.Write(a, e);
    }
    return t;
  }();
  return tcam;
}

void BM_CamLookupLinear(benchmark::State& state) {
  const auto& cam = FullCam();
  const BitVec key = FullCamProbeKey();
  for (auto _ : state)
    benchmark::DoNotOptimize(cam.LookupLinear(key, ModuleId(2)));
}
BENCHMARK(BM_CamLookupLinear);

void BM_CamLookup(benchmark::State& state) {
  const auto& cam = FullCam();
  const BitVec key = FullCamProbeKey();
  for (auto _ : state)
    benchmark::DoNotOptimize(cam.Lookup(key, ModuleId(2)));
}
BENCHMARK(BM_CamLookup);

void BM_CamLookupWord(benchmark::State& state) {
  const auto& cam = FullCam();
  const u64 key_w0 = FullCamProbeKey().word(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(cam.LookupWord(key_w0, ModuleId(2)));
}
BENCHMARK(BM_CamLookupWord);

void BM_TcamLookupLinear(benchmark::State& state) {
  const auto& tcam = FullTcam();
  const BitVec key = BitVec::FromValue(params::kKeyBits, u64{16} << 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(tcam.LookupLinear(key, ModuleId(3)));
}
BENCHMARK(BM_TcamLookupLinear);

void BM_TcamLookupNarrowed(benchmark::State& state) {
  const auto& tcam = FullTcam();
  const BitVec key = BitVec::FromValue(params::kKeyBits, u64{16} << 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(tcam.Lookup(key, ModuleId(3)));
}
BENCHMARK(BM_TcamLookupNarrowed);

void BM_KeyExtraction(benchmark::State& state) {
  Pipeline& pipe = LoadedCalcPipeline();
  const Phv phv = pipe.parser().Parse(CalcRequest());
  for (auto _ : state)
    benchmark::DoNotOptimize(pipe.stage(0).MaskedKeyFor(phv));
}
BENCHMARK(BM_KeyExtraction);

// The key-layout-cache hot path (what ProcessInPlace runs): the cached
// plan skips the key slots the module's mask zeroes and reuses the
// caller's key storage.  The ratio against BM_KeyExtraction is the
// per-stage key-extraction speedup.
void BM_KeyExtractionPlanned(benchmark::State& state) {
  Pipeline& pipe = LoadedCalcPipeline();
  const Phv phv = pipe.parser().Parse(CalcRequest());
  BitVec key;
  for (auto _ : state) {
    pipe.stage(0).MaskedKeyInto(phv, key);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_KeyExtractionPlanned);

// --- Batched vs per-packet (the src/dataplane/ hot path) ----------------------
//
// The same 10k-packet single-tenant workload, processed (a) one packet at
// a time through Pipeline::Process — the per-call path that copies the
// PHV between stages and allocates a fresh lookup key per stage — and
// (b) as one batch through the scratch-buffer-reusing batched path.  The
// ratio of the two is the measured batching speedup.

constexpr std::size_t kWorkloadPackets = 10000;

void BM_PerPacket10k(benchmark::State& state) {
  Pipeline& pipe = LoadedCalcPipeline();
  const Packet req = CalcRequest();
  for (auto _ : state) {
    for (std::size_t i = 0; i < kWorkloadPackets; ++i) {
      Packet copy = req;
      benchmark::DoNotOptimize(pipe.Process(std::move(copy)));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kWorkloadPackets));
}
BENCHMARK(BM_PerPacket10k)->Unit(benchmark::kMillisecond);

void BM_Batched10k(benchmark::State& state) {
  Pipeline& pipe = LoadedCalcPipeline();
  const Packet req = CalcRequest();
  std::vector<PipelineResult> results;
  for (auto _ : state) {
    std::vector<Packet> batch(kWorkloadPackets, req);
    results.clear();
    pipe.ProcessBatchInto(std::move(batch), results);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kWorkloadPackets));
}
BENCHMARK(BM_Batched10k)->Unit(benchmark::kMillisecond);

// Multi-tenant batch through the sharded front-end.  Arg 0 = shard
// count, arg 1 = worker threads on/off: the sequential path is the
// reference the concurrent engine is pinned against, and the ratio of
// the two is the measured threading speedup (1 on a single-core host —
// the fork/join engine only pays off with real cores).
void BM_ShardedDataplane10k(benchmark::State& state) {
  Dataplane dp(DataplaneConfig{
      .num_shards = static_cast<std::size_t>(state.range(0)),
      .worker_threads = state.range(1) != 0});
  {
    ModuleAllocation alloc =
        UniformAllocation(ModuleId(2), 0, params::kNumStages, 0, 8, 0, 32);
    CompiledModule m = Compile(apps::CalcSpec(), alloc);
    apps::InstallCalcEntries(m, 1);
    dp.ApplyWrites(m.AllWrites());
  }
  const std::vector<Packet> trace = GenerateTenantMix(
      {{2, 96, 1.0}, {3, 96, 1.0}, {4, 96, 1.0}, {5, 96, 1.0}},
      kWorkloadPackets);
  for (auto _ : state) {
    std::vector<Packet> batch = trace;
    benchmark::DoNotOptimize(dp.ProcessBatch(std::move(batch)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kWorkloadPackets));
}
BENCHMARK(BM_ShardedDataplane10k)
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

// --- BENCH_micro.json: the committed match-path ns/op baseline ----------------

/// Wall-clock ns/op of `fn` over `iters` iterations, after `warmup`
/// unmeasured calls (callers that pre-provision per-call resources must
/// pass their own warmup and size for iters + warmup total calls).
template <typename Fn>
double MeasureNs(Fn&& fn, std::size_t iters, std::size_t warmup) {
  for (std::size_t i = 0; i < warmup; ++i) fn();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn();
  const auto ns = std::chrono::duration<double, std::nano>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return ns / static_cast<double>(iters);
}

/// Per-packet ns of `ProcessBatchInto` under rx-ring-style buffer
/// recycling: one batch of packets circulates — each timed call consumes
/// it, and between calls (untimed) the packets are moved back out of the
/// results into the next batch.  This is the steady state of a real
/// receive path (NIC rx rings and DPDK mempools deliberately reuse a
/// small descriptor/buffer set that stays cache-resident), so the row
/// measures the pipeline's per-packet work rather than the LLC latency
/// of streaming a many-megabyte pre-built pool that no receive path
/// would ever present.  Timing is per call, so the recycle loop adds
/// two clock reads per thousand packets — noise.
///
/// Reports the MINIMUM per-call time: every call does identical work on
/// identical warm state, so the distribution is (true cost + one-sided
/// scheduler/interrupt noise) and the minimum is the consistent,
/// noise-rejecting estimator of the pipeline's cost.  A mean over calls
/// moves 10-40% run to run with background load on a shared box; the
/// min is stable to ~1 ns.
double RecycledBatchPerPktNs(Pipeline& pipe, std::vector<Packet> batch,
                             std::size_t calls, std::size_t warmup) {
  const std::size_t n = batch.size();
  std::vector<PipelineResult> results;
  results.reserve(n);
  double best_ns = std::numeric_limits<double>::infinity();
  for (std::size_t call = 0; call < calls + warmup; ++call) {
    const auto t0 = std::chrono::steady_clock::now();
    results.clear();
    pipe.ProcessBatchInto(std::move(batch), results);
    benchmark::DoNotOptimize(results);
    const auto t1 = std::chrono::steady_clock::now();
    if (call >= warmup)
      best_ns = std::min(
          best_ns, std::chrono::duration<double, std::nano>(t1 - t0).count());
    batch.clear();
    for (PipelineResult& r : results)
      if (r.output) batch.push_back(std::move(*r.output));
  }
  return best_ns / static_cast<double>(n);
}

/// Per-packet ns of the batched path over the flow-cacheable router
/// tenant with zipf(s)-distributed tags across a 64-tag space (7
/// installed routes + the drop sink; the remaining tags memoize miss
/// verdicts).  Lower s = flatter reuse = lower hit rate.
double FlowCacheZipfPerPktNs(double s) {
  Pipeline& pipe = LoadedRouterPipeline();
  constexpr std::size_t kCalls = 200;
  constexpr std::size_t kCallWarmup = 25;
  constexpr std::size_t kTagSpace = 64;
  std::vector<double> cdf;
  cdf.reserve(kTagSpace);
  double sum = 0;
  for (std::size_t k = 1; k <= kTagSpace; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k), s);
    cdf.push_back(sum);
  }
  Rng rng(0x21BF + static_cast<u64>(s * 10.0));
  std::vector<std::vector<Packet>> pool;
  pool.reserve(kCalls + kCallWarmup);
  for (std::size_t c = 0; c < kCalls + kCallWarmup; ++c) {
    std::vector<Packet> batch;
    batch.reserve(1000);
    for (std::size_t i = 0; i < 1000; ++i) {
      const double u = rng.NextDouble() * cdf.back();
      const u16 tag = static_cast<u16>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      batch.push_back(RouterRequest(tag));
    }
    pool.push_back(std::move(batch));
  }
  std::vector<PipelineResult> results;
  std::size_t next = 0;
  return MeasureNs(
             [&] {
               results.clear();
               pipe.ProcessBatchInto(std::move(pool.at(next++)), results);
               benchmark::DoNotOptimize(results);
             },
             kCalls, kCallWarmup) /
         1000.0;
}

/// The burst-probe vs scalar-probe pair (micro_flow_cache_burst_hit /
/// _scalar): the same zipf(0.9) router workload over the FULL 16-bit tag
/// space against a 65536-slot verdict cache, so the touched slot set
/// (~8 MB) dwarfs the cache hierarchy and nearly every probe is a cold
/// HIT — a dependent memory miss on the scalar path.  BurstProbe hashes
/// the whole lane set first and prefetches kBurstPrefetchAhead slots
/// ahead, overlapping those misses; the scalar sibling eats them one at
/// a time.  The verdict set is pre-filled across every tag before either
/// measurement so the pair compares pure probe cost, not fill cost.
/// Between timed calls an LLC-sized write sweep evicts the slot array
/// (server parts carry LLCs past the 8 MB footprint — 260 MB on some
/// cloud hosts — which would otherwise leave the slots warm and the
/// pair's gap at the mercy of neighbour traffic); every measured call
/// therefore starts DRAM-cold on any host.
/// tools/bench_diff.py gates burst <= scalar / 1.3 within the same run.
Pipeline& ColdRouterPipeline() {
  static Pipeline pipe;
  static bool done = [] {
    pipe.flow_cache().SetSlotsPerRow(65536);
    static const ModuleSpec spec = apps::ParseAppDsl(R"(
module router {
  field tag : 2 @ 46;
  action fwd(p) { port(p); }
  action sink { drop(); }
  table routes { key = { tag }; actions = { fwd, sink }; size = 8; }
}
)");
    ModuleManager mgr(pipe);
    const ModuleAllocation alloc =
        UniformAllocation(ModuleId(7), 0, params::kNumStages, 0, 8, 0, 0);
    CompiledModule m = Compile(spec, alloc);
    mgr.Load(m, alloc);
    for (u16 t = 0; t < 7; ++t)
      m.AddEntry("routes", {{"tag", t}}, std::nullopt, "fwd",
                 {static_cast<u64>(40 + t)});
    m.AddEntry("routes", {{"tag", 7}}, std::nullopt, "sink", {});
    mgr.Update(m);
    // Pre-fill: one packet per tag memoizes every verdict (route hits
    // for tags 0-7, miss verdicts for the rest), so the measured calls
    // below probe resident-but-cold slots instead of running fills.
    std::vector<PipelineResult> results;
    for (u32 base = 0; base < 65536; base += 1024) {
      std::vector<Packet> fill;
      fill.reserve(1024);
      for (u32 t = 0; t < 1024; ++t) {
        Packet p = PacketBuilder{}.vid(ModuleId(7)).frame_size(96).Build();
        p.bytes().set_u16(46, static_cast<u16>(base + t));
        fill.push_back(std::move(p));
      }
      results.clear();
      pipe.ProcessBatchInto(std::move(fill), results);
    }
    return true;
  }();
  (void)done;
  return pipe;
}

double FlowCacheColdZipfPerPktNs(bool burst) {
  Pipeline& pipe = ColdRouterPipeline();
  pipe.SetBurstProbeEnabled(burst);
  constexpr std::size_t kCalls = 40;
  constexpr std::size_t kCallWarmup = 4;
  constexpr std::size_t kTagSpace = 65536;
  std::vector<double> cdf;
  cdf.reserve(kTagSpace);
  double sum = 0;
  for (std::size_t k = 1; k <= kTagSpace; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k), 0.9);
    cdf.push_back(sum);
  }
  // Same seed for both siblings: identical draw sequence, identical
  // slot-touch pattern — the toggle is the only difference.
  Rng rng(0xC01DCA5E);
  std::vector<std::vector<Packet>> pool;
  pool.reserve(kCalls + kCallWarmup);
  for (std::size_t c = 0; c < kCalls + kCallWarmup; ++c) {
    std::vector<Packet> batch;
    batch.reserve(1000);
    for (std::size_t i = 0; i < 1000; ++i) {
      const double u = rng.NextDouble() * cdf.back();
      const u16 tag = static_cast<u16>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      Packet p = PacketBuilder{}.vid(ModuleId(7)).frame_size(96).Build();
      p.bytes().set_u16(46, tag);
      batch.push_back(std::move(p));
    }
    pool.push_back(std::move(batch));
  }
  // One cache line per 64 B across 512 MB: the sweep evicts any LLC in
  // deployment (shared across both siblings, allocated once).
  static std::vector<u64>& thrash = *new std::vector<u64>(64 * 1024 * 1024);
  std::vector<PipelineResult> results;
  double best_ns = std::numeric_limits<double>::infinity();
  for (std::size_t call = 0; call < kCalls + kCallWarmup; ++call) {
    for (std::size_t i = 0; i < thrash.size(); i += 8) thrash[i] = call + i;
    benchmark::DoNotOptimize(thrash.data());
    const auto t0 = std::chrono::steady_clock::now();
    results.clear();
    pipe.ProcessBatchInto(std::move(pool.at(call)), results);
    benchmark::DoNotOptimize(results);
    const auto t1 = std::chrono::steady_clock::now();
    if (call >= kCallWarmup)
      best_ns = std::min(
          best_ns, std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  pipe.SetBurstProbeEnabled(true);
  return best_ns / 1000.0;
}

/// Per-packet ns of a full Dataplane::ProcessBatch round trip (the layer
/// the telemetry hooks live in: Submit stamp -> shard execute -> record).
/// One shard, no worker threads, so the number is the engine's own cost
/// without scheduler noise; min-of-calls as in RecycledBatchPerPktNs.
/// The trace copy per call is untimed.
double DataplaneBatchPerPktNs(Dataplane& dp, const std::vector<Packet>& trace,
                              std::size_t calls, std::size_t warmup) {
  double best_ns = std::numeric_limits<double>::infinity();
  for (std::size_t call = 0; call < calls + warmup; ++call) {
    std::vector<Packet> batch = trace;
    const auto t0 = std::chrono::steady_clock::now();
    auto results = dp.ProcessBatch(std::move(batch));
    benchmark::DoNotOptimize(results);
    const auto t1 = std::chrono::steady_clock::now();
    if (call >= warmup)
      best_ns = std::min(
          best_ns, std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  return best_ns / static_cast<double>(trace.size());
}

/// The telemetry-overhead pair (micro_telemetry_off / _overhead):
/// identical single-tenant workload through two single-shard dataplanes,
/// one with latency histograms off (and no sampling — the hot path takes
/// no timestamp at all), one with the default histograms-on config.
/// tools/bench_diff.py gates overhead <= 1.02x off within the same run.
double TelemetryPerPktNs(bool histograms) {
  Dataplane dp(DataplaneConfig{
      .num_shards = 1,
      .worker_threads = false,
      .telemetry = TelemetryConfig{.latency_histograms = histograms}});
  {
    ModuleAllocation alloc =
        UniformAllocation(ModuleId(2), 0, params::kNumStages, 0, 8, 0, 32);
    CompiledModule m = Compile(apps::CalcSpec(), alloc);
    apps::InstallCalcEntries(m, 1);
    dp.ApplyWrites(m.AllWrites());
  }
  const std::vector<Packet> trace(1000, CalcRequest());
  return DataplaneBatchPerPktNs(dp, trace, 200, 25);
}

void EmitMicroJson() {
  Pipeline& pipe = LoadedCalcPipeline();
  const Phv phv = pipe.parser().Parse(CalcRequest());
  Stage& stage = pipe.stage(0);
  const auto& cam = FullCam();
  const BitVec key = FullCamProbeKey();
  const u64 key_w0 = key.word(0);
  const auto& tcam = FullTcam();
  const BitVec tkey = BitVec::FromValue(params::kKeyBits, u64{16} << 1);
  const ModuleId m(2);
  constexpr std::size_t kIters = 2'000'000;
  constexpr std::size_t kWarmup = kIters / 8;

  struct Row {
    const char* name;
    double ns;
  };
  BitVec scratch;
  std::vector<PipelineResult> results;
  const Packet req = CalcRequest();
  Phv parse_phv;
  const ModuleExecPlan& exec_plan = pipe.ExecPlanFor(m);
  const Row rows[] = {
      {"micro_cam_lookup_linear",
       MeasureNs([&] { benchmark::DoNotOptimize(cam.LookupLinear(key, m)); },
                 kIters, kWarmup)},
      {"micro_cam_lookup_indexed",
       MeasureNs([&] { benchmark::DoNotOptimize(cam.Lookup(key, m)); },
                 kIters, kWarmup)},
      {"micro_cam_lookup_word",
       MeasureNs([&] { benchmark::DoNotOptimize(cam.LookupWord(key_w0, m)); },
                 kIters, kWarmup)},
      {"micro_tcam_lookup_linear",
       MeasureNs(
           [&] { benchmark::DoNotOptimize(tcam.LookupLinear(tkey, ModuleId(3))); },
           kIters, kWarmup)},
      {"micro_tcam_lookup_narrowed",
       MeasureNs(
           [&] { benchmark::DoNotOptimize(tcam.Lookup(tkey, ModuleId(3))); },
           kIters, kWarmup)},
      {"micro_masked_key_planned", MeasureNs(
                                       [&] {
                                         stage.MaskedKeyInto(phv, scratch);
                                         benchmark::DoNotOptimize(scratch);
                                       },
                                       kIters, kWarmup)},
      // Liveness-pruned parse (compiled execution plan) vs the linear
      // full parse it is pinned against — the per-packet parser cost the
      // batched path pays.
      {"micro_parse_full", MeasureNs(
                               [&] {
                                 pipe.parser().ParseInto(req, parse_phv);
                                 benchmark::DoNotOptimize(parse_phv);
                               },
                               kIters, kWarmup)},
      {"micro_parse_plan", MeasureNs(
                               [&] {
                                 pipe.parser().ParseIntoPlanned(
                                     req, parse_phv, exec_plan.parse);
                                 benchmark::DoNotOptimize(parse_phv);
                               },
                               kIters, kWarmup)},
      {"micro_batched_pipeline_per_pkt", [&] {
         // rx-ring recycling (see RecycledBatchPerPktNs): the batch
         // circulates through the results and back, as a real receive
         // path would reuse its buffer set.
         return RecycledBatchPerPktNs(pipe, std::vector<Packet>(1000, req),
                                      200, 25);
       }()},
      {"micro_module_run", [&] {
         // Per-packet cost when the batch interleaves tenants in blocks
         // of 100 (one loaded calc tenant + three unconfigured ones):
         // exercises the run segmentation — per-run BeginRun resolution,
         // constant-key runs for the no-table tenants, and the run
         // switch overhead — rather than one endless single-tenant run.
         std::vector<Packet> mixed;
         mixed.reserve(1000);
         const std::array<u16, 4> mix_vids = {2, 3, 4, 5};
         for (std::size_t blk = 0; blk < 10; ++blk)
           for (const u16 vid : mix_vids)
             for (std::size_t i = 0; i < 25; ++i) {
               Packet p = req;
               p.set_vid(ModuleId(vid));
               mixed.push_back(std::move(p));
             }
         return RecycledBatchPerPktNs(pipe, std::move(mixed), 200, 25);
       }()},
      // The flow-verdict cache hit path proper (pipeline/flow_cache):
      // the per-packet work that REPLACES the five-stage match+action
      // walk once a verdict is resident — extract the per-stage key
      // words from the parsed PHV, one direct-mapped probe, accumulate
      // the counter deltas, replay the recorded effects.  Parse and
      // deparse are shared with the uncached path (micro_parse_* rows);
      // the comparison partner is micro_module_run's match+action work.
      {"micro_flow_cache_hit", [&] {
         Pipeline& rp = LoadedRouterPipeline();
         const ModuleId module(7);
         {  // Fill the hot flow's verdict through the normal front door.
           Packet fill = RouterRequest(3);
           rp.Process(std::move(fill));
         }
         const ModuleExecPlan& rplan = rp.ExecPlanFor(module);
         FlowRowState& frow = rp.FlowRowFor(module);
         const Packet hot = RouterRequest(3);
         Phv hot_phv;
         rp.parser().ParseIntoPlanned(hot, hot_phv, rplan.parse);
         FlowVerdictCache::KeyWordArray words{};
         FlowVerdictCache::RunAccounting acct;
         return MeasureNs(
             [&] {
               FlowVerdictCache::KeyWords(frow, rp.num_stages(), hot_phv,
                                          words);
               bool hit = false;
               FlowVerdict& v =
                   rp.flow_cache().SlotFor(frow, module, words, hit);
               rp.flow_cache().NoteHit();
               FlowVerdictCache::Accumulate(acct, v, rp.num_stages());
               FlowVerdictCache::ApplyEffects(v, hot_phv);
               benchmark::DoNotOptimize(hit);
               benchmark::DoNotOptimize(hot_phv);
             },
             kIters, kWarmup);
       }()},
      // Zipf sweep: realistic skewed reuse across 64 flows.  s=1.1 keeps
      // the cache hot; s=0.9 flattens the distribution toward the
      // miss/fill path.
      {"micro_flow_cache_zipf_s0.9", FlowCacheZipfPerPktNs(0.9)},
      {"micro_flow_cache_zipf_s1.1", FlowCacheZipfPerPktNs(1.1)},
      // Burst vs scalar probing on the cold 16-bit tag space (see
      // FlowCacheColdZipfPerPktNs).  Burst measured FIRST: the scalar
      // sibling then runs the identical draw sequence against
      // possibly-warmer slots, so the gated ratio is conservative.
      {"micro_flow_cache_burst_hit", FlowCacheColdZipfPerPktNs(true)},
      {"micro_flow_cache_burst_hit_scalar", FlowCacheColdZipfPerPktNs(false)},
      // --- Specialized-kernel rows, one per dispatched shape class ------------
      // Stateless multi-slot probe shape (calc), kernel vs interpreted
      // plan on the same pipeline — the per-shape kernel win.
      {"micro_kernel_multislot",
       RecycledBatchPerPktNs(LoadedCalcPipeline(),
                             std::vector<Packet>(1000, CalcRequest()), 200,
                             25)},
      {"micro_kernel_multislot_interp", [&] {
         Pipeline& kp = LoadedCalcPipeline();
         kp.SetKernelsEnabled(false);
         const double ns = RecycledBatchPerPktNs(
             kp, std::vector<Packet>(1000, CalcRequest()), 200, 25);
         kp.SetKernelsEnabled(true);
         return ns;
       }()},
      // Stateful sequencer shape (netchain): the kernel carries the
      // stateful segment through each step.
      {"micro_kernel_stateful",
       RecycledBatchPerPktNs(LoadedNetChainPipeline(),
                             std::vector<Packet>(1000, NetChainRequest()), 200,
                             25)},
      // Wide/ternary shape (ternary ACL): the one class with no
      // registered kernel — provably routed to the interpreted plan
      // fallback (see test_kernels exhaustiveness unit).
      {"micro_kernel_wide_fallback",
       RecycledBatchPerPktNs(LoadedAclPipeline(),
                             std::vector<Packet>(1000, AclRequest()), 200,
                             25)},
      // --- Telemetry overhead (runtime/telemetry) ------------------------------
      // Same workload through the full dataplane engine with histograms
      // off vs the default histograms-on config.  bench_diff.py gates
      // overhead <= 1.02x off within this run (the <=2% guarantee) in
      // addition to the normal cross-run drift gate on both rows.
      {"micro_telemetry_off", TelemetryPerPktNs(false)},
      {"micro_telemetry_overhead", TelemetryPerPktNs(true)},
  };

  std::FILE* f = std::fopen("BENCH_micro.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_micro.json\n");
    return;
  }
  std::printf("\nmatch-path micro costs (BENCH_micro.json):\n");
  for (const Row& r : rows) {
    std::fprintf(f, "{\"name\": \"%s\", \"ns_per_op\": %.2f}\n", r.name, r.ns);
    std::printf("  %-32s %8.1f ns/op\n", r.name, r.ns);
  }
  std::fclose(f);

  // Kernel-shape packet distribution over everything this run executed —
  // uploaded as a CI artifact on bench-gate failure so a shape that
  // silently moved off its kernel is visible without re-running.
  std::FILE* sf = std::fopen("KERNEL_shapes.txt", "w");
  if (sf == nullptr) return;
  const struct {
    const char* name;
    Pipeline* pipe;
  } pipes[] = {{"calc", &LoadedCalcPipeline()},
               {"netchain", &LoadedNetChainPipeline()},
               {"acl", &LoadedAclPipeline()},
               {"router", &LoadedRouterPipeline()}};
  for (const auto& p : pipes) {
    const Pipeline::KernelStats ks = p.pipe->KernelSnapshot();
    std::fprintf(sf,
                 "%s: kernel_pkts=%llu fallback_pkts=%llu record_fills=%llu\n",
                 p.name, static_cast<unsigned long long>(ks.pkts),
                 static_cast<unsigned long long>(ks.fallback_pkts),
                 static_cast<unsigned long long>(ks.record_fills));
    for (std::size_t id = 0; id < kKernelShapeCount; ++id)
      if (ks.shape_pkts[id] != 0)
        std::fprintf(sf, "  %s=%llu\n", KernelShapeName(static_cast<u8>(id)),
                     static_cast<unsigned long long>(ks.shape_pkts[id]));
  }
  std::fclose(sf);
}

}  // namespace
}  // namespace menshen

int main(int argc, char** argv) {
  return menshen::bench::BenchMainWithEmit(argc, argv,
                                           [] { menshen::EmitMicroJson(); });
}
