// Multi-hop batched network substrate benchmark (the NetChain-style
// switch-chain topology of section 3.4): one tenant's service chain runs
// NetChain sequencing on the head switch and plain forwarders on the
// rest, and the same packet trace is driven through the chain (a) one
// packet per InjectFromHost call — the old per-packet walk — and (b) as
// whole batches through InjectBatchFromHost, whose hop loop hands each
// device per-hop sub-batches via Pipeline::ProcessBatchInto.  The ratio
// is the measured end-to-end batching speedup of the network substrate.
//
// Appends `netchain_*` rows to BENCH_throughput.json (run after
// bench_fig11_throughput, which creates the file) for the CI perf gate.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "bench_util.hpp"
#include "net/network.hpp"
#include "runtime/module_manager.hpp"

namespace menshen {
namespace {

constexpr u16 kVid = 5;
constexpr std::size_t kChainLength = 3;  // head + middle + tail
constexpr std::size_t kFrameBytes = 96;

/// A plain forwarder: send the tenant's traffic (UDP dst 40000) towards
/// `out_port`.
void InstallForwarder(Device& dev, u16 out_port) {
  static const char* kSource = R"(
module fwd {
  field dport : 2 @ 40;
  action go(p) { port(p); }
  table t { key = { dport }; actions = { go }; size = 4; }
}
)";
  const ModuleAllocation alloc = UniformAllocation(
      ModuleId(kVid), 0, params::kNumStages, 0, 4, 0, 0);
  CompiledModule m = CompileDsl(kSource, alloc);
  if (!m.ok()) {
    std::fprintf(stderr, "forwarder failed to compile:\n%s\n",
                 m.diags().ToString().c_str());
    std::exit(1);
  }
  m.AddEntry("t", {{"dport", 40000}}, std::nullopt, "go", {out_port});
  ModuleManager mgr(dev.pipeline());
  const auto result = mgr.Load(m, alloc);
  if (!result.admission.admitted) {
    std::fprintf(stderr, "forwarder not admitted: %s\n",
                 result.admission.reason.c_str());
    std::exit(1);
  }
}

/// Builds the chain: host -> s0 (NetChain sequencer) -> s1 -> ... ->
/// s[K-1] -> edge port 3.
Network BuildChain() {
  Network net;
  std::vector<Device*> devs;
  for (std::size_t i = 0; i < kChainLength; ++i)
    devs.push_back(&net.AddDevice("s" + std::to_string(i)));
  for (std::size_t i = 0; i + 1 < kChainLength; ++i)
    net.Link({devs[i]->name(), 2}, {devs[i + 1]->name(), 1});
  net.AttachHost({"s0", 1}, ModuleId(kVid));

  {
    const auto alloc =
        UniformAllocation(ModuleId(kVid), 0, params::kNumStages, 0, 4, 0, 8);
    CompiledModule m = Compile(apps::NetChainSpec(), alloc);
    ModuleManager mgr(devs[0]->pipeline());
    mgr.Load(m, alloc);
    apps::InstallNetChainEntries(m, /*out_port=*/2);
    mgr.Update(m);
  }
  for (std::size_t i = 1; i < kChainLength; ++i)
    InstallForwarder(*devs[i], i + 1 < kChainLength ? 2 : 3);
  return net;
}

Packet ChainRequest() {
  Packet p = PacketBuilder{}
                 .vid(ModuleId(kVid))
                 .udp(10000, 40000)
                 .frame_size(kFrameBytes)
                 .Build();
  p.bytes().set_u16(46, apps::kNetChainOpSeq);
  return p;
}

struct ChainPoint {
  std::string name;
  double mpps = 0.0;  // injected packets (full chain traversals) per sec
  double l2_gbps = 0.0;
};

constexpr std::size_t kBatch = 256;
constexpr std::size_t kBatches = 256;

ChainPoint MeasurePerPacket() {
  Network net = BuildChain();
  const Packet req = ChainRequest();
  std::size_t delivered = 0;
  // Warm-up: prime table caches and the CAM shadow indexes.
  for (std::size_t i = 0; i < 64; ++i)
    delivered += net.InjectFromHost({"s0", 1}, req).size();

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t b = 0; b < kBatches; ++b)
    for (std::size_t i = 0; i < kBatch; ++i)
      delivered += net.InjectFromHost({"s0", 1}, req).size();
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  if (delivered == 0) std::fprintf(stderr, "chain delivered nothing?\n");

  ChainPoint p;
  p.name = "netchain_" + std::to_string(kChainLength) + "hop_" +
           std::to_string(kFrameBytes) + "B_perpkt";
  p.mpps = static_cast<double>(kBatch * kBatches) / seconds / 1e6;
  p.l2_gbps = p.mpps * 1e6 * static_cast<double>(kFrameBytes) * 8.0 / 1e9;
  return p;
}

ChainPoint MeasureBatched() {
  Network net = BuildChain();
  const Packet req = ChainRequest();
  const std::vector<Packet> trace(kBatch, req);
  {
    std::vector<Packet> warm = trace;
    (void)net.InjectBatchFromHost({"s0", 1}, std::move(warm));
  }
  std::size_t delivered = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t b = 0; b < kBatches; ++b) {
    std::vector<Packet> batch = trace;
    delivered +=
        net.InjectBatchFromHost({"s0", 1}, std::move(batch)).size();
  }
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  if (delivered == 0) std::fprintf(stderr, "chain delivered nothing?\n");

  ChainPoint p;
  p.name = "netchain_" + std::to_string(kChainLength) + "hop_" +
           std::to_string(kFrameBytes) + "B_batched";
  p.mpps = static_cast<double>(kBatch * kBatches) / seconds / 1e6;
  p.l2_gbps = p.mpps * 1e6 * static_cast<double>(kFrameBytes) * 8.0 / 1e9;
  return p;
}

/// Wave-pipelined injection with parallel same-hop dispatch: successive
/// waves occupy successive switches, so the K-switch chain can use up to
/// K cores (on a multi-core host; ≈1x on a single-core container).
ChainPoint MeasurePipelined() {
  Network net = BuildChain();
  net.EnableParallelDispatch(kChainLength - 1);  // injector participates
  const Packet req = ChainRequest();
  const std::vector<Packet> trace(kBatch, req);
  constexpr std::size_t kWave = kBatch / 8;
  {
    std::vector<Packet> warm = trace;
    (void)net.InjectBatchPipelined({"s0", 1}, std::move(warm), kWave);
  }
  std::size_t delivered = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t b = 0; b < kBatches; ++b) {
    std::vector<Packet> batch = trace;
    delivered +=
        net.InjectBatchPipelined({"s0", 1}, std::move(batch), kWave).size();
  }
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  if (delivered == 0) std::fprintf(stderr, "chain delivered nothing?\n");

  ChainPoint p;
  p.name = "netchain_" + std::to_string(kChainLength) + "hop_" +
           std::to_string(kFrameBytes) + "B_pipelined";
  p.mpps = static_cast<double>(kBatch * kBatches) / seconds / 1e6;
  p.l2_gbps = p.mpps * 1e6 * static_cast<double>(kFrameBytes) * 8.0 / 1e9;
  return p;
}

void RunAndEmit() {
  const ChainPoint per_pkt = MeasurePerPacket();
  const ChainPoint batched = MeasureBatched();
  const ChainPoint pipelined = MeasurePipelined();

  bench::Header("NetChain switch chain — batched network substrate");
  std::printf("%-32s %12s %12s\n", "config", "L2 (Gb/s)", "rate (Mpps)");
  for (const ChainPoint& p : {per_pkt, batched, pipelined})
    std::printf("%-32s %12.3f %12.3f\n", p.name.c_str(), p.l2_gbps, p.mpps);
  std::printf("batching speedup: %.2fx over %zu hops; wave pipelining "
              "%.2fx over plain batched\n",
              batched.mpps / per_pkt.mpps, kChainLength,
              pipelined.mpps / batched.mpps);

  // Append to the trajectory file bench_fig11_throughput creates.
  std::FILE* f = std::fopen("BENCH_throughput.json", "a");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot append to BENCH_throughput.json\n");
    return;
  }
  for (const ChainPoint& p : {per_pkt, batched, pipelined})
    bench::JsonThroughputLine(f, p.name, p.l2_gbps, p.mpps);
  std::fclose(f);
  bench::Note("\nappended netchain rows to BENCH_throughput.json");
}

void BM_ChainBatched(benchmark::State& state) {
  Network net = BuildChain();
  const std::vector<Packet> trace(kBatch, ChainRequest());
  for (auto _ : state) {
    std::vector<Packet> batch = trace;
    benchmark::DoNotOptimize(
        net.InjectBatchFromHost({"s0", 1}, std::move(batch)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
}
BENCHMARK(BM_ChainBatched)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace menshen

int main(int argc, char** argv) {
  return menshen::bench::BenchMainWithEmit(argc, argv,
                                           [] { menshen::RunAndEmit(); });
}
