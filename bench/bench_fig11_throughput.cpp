// Figure 11: throughput and latency vs packet size on the two platforms,
// optimized and unoptimized (the section 3.2 techniques) — plus the
// measured throughput of this simulator's batched sharded dataplane, all
// emitted to BENCH_throughput.json for the perf trajectory.
#include <benchmark/benchmark.h>

#include <chrono>

#include "apps/apps.hpp"
#include "bench_util.hpp"
#include "dataplane/dataplane.hpp"
#include "sim/experiments.hpp"
#include "sim/traffic.hpp"

namespace menshen {
namespace {

void PrintPanel(const char* title, const std::vector<ThroughputPoint>& pts,
                bool with_latency) {
  bench::Header(title);
  std::printf("%8s %12s %12s %12s%s\n", "size(B)", "L1 (Gb/s)", "L2 (Gb/s)",
              "rate (Mpps)", with_latency ? "   latency (us)" : "");
  for (const auto& p : pts) {
    std::printf("%8zu %12.2f %12.2f %12.2f", p.bytes, p.l1_gbps, p.l2_gbps,
                p.mpps);
    if (with_latency) std::printf("%15.3f", p.mean_latency_us);
    std::printf("\n");
  }
}

/// The three simulated panels, computed once and shared by the printed
/// figure and the JSON emitter.
struct Fig11Panels {
  std::vector<ThroughputPoint> netfpga_opt;
  std::vector<ThroughputPoint> corundum_opt;
  std::vector<ThroughputPoint> corundum_unopt;
};

Fig11Panels ComputeFig11Panels() {
  return {Fig11aNetFpgaOptimized(), Fig11bCorundumOptimized(),
          Fig11cCorundumUnoptimized()};
}

void PrintFigure11(const Fig11Panels& panels) {
  PrintPanel("Figure 11a — optimized NetFPGA (10G link, MoonGen host)",
             panels.netfpga_opt, false);
  bench::Note("(paper: line rate 10 Gb/s from 96-byte packets; 64B is\n"
              " generator-limited at ~12 Mpps)");

  PrintPanel("Figure 11b — optimized Corundum (100G, Spirent tester)",
             panels.corundum_opt, false);
  bench::Note("(paper: 100 Gb/s layer-1 from 256-byte packets)");

  PrintPanel("Figure 11c — unoptimized Corundum", panels.corundum_unopt,
             false);
  bench::Note("(paper: tops out near 80 Gb/s at MTU-size packets)");

  PrintPanel("Figure 11d — optimized Corundum sampled latency at full rate",
             panels.corundum_opt, true);
  bench::Note("(paper: ~1.0-1.25 us across the sweep, rising with size)");
}

// --- Functional batched-dataplane throughput ----------------------------------

struct FunctionalPoint {
  std::string name;
  double mpps = 0.0;
  double l2_gbps = 0.0;
};

/// Measures how fast the batched sharded dataplane actually moves
/// packets: a four-tenant calc mix, processed in 4096-packet batches.
/// `worker_threads` selects the concurrent engine (per-shard worker
/// pool) or the sequential reference path; the ratio of the two is the
/// measured threading speedup on this host.
FunctionalPoint MeasureBatchedDataplane(std::size_t num_shards,
                                        std::size_t frame_bytes,
                                        bool worker_threads) {
  Dataplane dp(DataplaneConfig{.num_shards = num_shards,
                               .worker_threads = worker_threads});
  for (u16 vid = 2; vid <= 5; ++vid) {
    const std::size_t slot = vid - 2;
    ModuleAllocation alloc =
        UniformAllocation(ModuleId(vid), 0, params::kNumStages, slot * 4, 4,
                          static_cast<u8>(slot * 32), 32);
    CompiledModule m = Compile(apps::CalcSpec(), alloc);
    apps::InstallCalcEntries(m, static_cast<u16>(10 + slot));
    dp.ApplyWrites(m.AllWrites());
  }

  constexpr std::size_t kBatch = 4096;
  constexpr std::size_t kBatches = 32;
  const std::vector<Packet> trace = GenerateTenantMix(
      {{2, frame_bytes, 1.0},
       {3, frame_bytes, 1.0},
       {4, frame_bytes, 1.0},
       {5, frame_bytes, 1.0}},
      kBatch);

  // Warm-up batch so table caches and scratch buffers are primed.
  {
    std::vector<Packet> warm = trace;
    (void)dp.ProcessBatch(std::move(warm));
  }

  // Only the dataplane's own processing is timed — replicating the trace
  // for each batch happens outside the clock so allocator/memcpy speed
  // does not leak into the recorded perf trajectory.
  double seconds = 0.0;
  for (std::size_t b = 0; b < kBatches; ++b) {
    std::vector<Packet> batch = trace;
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(dp.ProcessBatch(std::move(batch)));
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  }
  FunctionalPoint p;
  p.name = "functional_batched_" + std::to_string(frame_bytes) + "B_" +
           std::to_string(num_shards) + "shard" +
           (worker_threads ? "_mt" : "");
  p.mpps = static_cast<double>(kBatch * kBatches) / seconds / 1e6;
  p.l2_gbps = p.mpps * 1e6 * static_cast<double>(frame_bytes) * 8.0 / 1e9;
  return p;
}

std::vector<FunctionalPoint> FunctionalSweep() {
  std::vector<FunctionalPoint> pts;
  for (const std::size_t bytes : {std::size_t{96}, std::size_t{1500}}) {
    // Sequential sharded reference, then the concurrent engine on the
    // same shard count — the pair records the threading speedup.
    pts.push_back(MeasureBatchedDataplane(1, bytes, false));
    pts.push_back(MeasureBatchedDataplane(4, bytes, false));
    pts.push_back(MeasureBatchedDataplane(4, bytes, true));
  }
  return pts;
}

void PrintFunctional(const std::vector<FunctionalPoint>& pts) {
  bench::Header("Simulator — batched sharded dataplane (measured)");
  std::printf("%-36s %12s %12s\n", "config", "L2 (Gb/s)", "rate (Mpps)");
  for (const FunctionalPoint& p : pts)
    std::printf("%-36s %12.3f %12.3f\n", p.name.c_str(), p.l2_gbps, p.mpps);
}

void EmitJson(const Fig11Panels& panels,
              const std::vector<FunctionalPoint>& functional) {
  std::FILE* f = std::fopen("BENCH_throughput.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_throughput.json\n");
    return;
  }
  const struct {
    const char* prefix;
    const std::vector<ThroughputPoint>* pts;
  } rows[] = {
      {"fig11a_netfpga_opt", &panels.netfpga_opt},
      {"fig11b_corundum_opt", &panels.corundum_opt},
      {"fig11c_corundum_unopt", &panels.corundum_unopt},
  };
  for (const auto& row : rows)
    for (const ThroughputPoint& p : *row.pts)
      bench::JsonThroughputLine(
          f, std::string(row.prefix) + "_" + std::to_string(p.bytes) + "B",
          p.l2_gbps, p.mpps);
  for (const FunctionalPoint& p : functional)
    bench::JsonThroughputLine(f, p.name, p.l2_gbps, p.mpps);
  std::fclose(f);
  bench::Note("\nwrote BENCH_throughput.json");
}

void BM_TimingSimulator(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  TimingSimulator sim(CorundumPlatform(), OptimizedTiming());
  std::vector<SimPacket> pkts(10000);
  for (auto& p : pkts) p.bytes = bytes;
  for (auto _ : state) {
    sim.Reset();
    std::vector<SimPacket> batch = pkts;
    sim.Run(batch);
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_TimingSimulator)->Arg(64)->Arg(1500)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace menshen

int main(int argc, char** argv) {
  return menshen::bench::BenchMainWithEmit(argc, argv, [] {
    const auto panels = menshen::ComputeFig11Panels();
    menshen::PrintFigure11(panels);
    const auto functional = menshen::FunctionalSweep();
    menshen::PrintFunctional(functional);
    menshen::EmitJson(panels, functional);
  });
}
