// Figure 11: throughput and latency vs packet size on the two platforms,
// optimized and unoptimized (the section 3.2 techniques).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/experiments.hpp"

namespace menshen {
namespace {

void PrintPanel(const char* title, const std::vector<ThroughputPoint>& pts,
                bool with_latency) {
  bench::Header(title);
  std::printf("%8s %12s %12s %12s%s\n", "size(B)", "L1 (Gb/s)", "L2 (Gb/s)",
              "rate (Mpps)", with_latency ? "   latency (us)" : "");
  for (const auto& p : pts) {
    std::printf("%8zu %12.2f %12.2f %12.2f", p.bytes, p.l1_gbps, p.l2_gbps,
                p.mpps);
    if (with_latency) std::printf("%15.3f", p.mean_latency_us);
    std::printf("\n");
  }
}

void PrintFigure11() {
  PrintPanel("Figure 11a — optimized NetFPGA (10G link, MoonGen host)",
             Fig11aNetFpgaOptimized(), false);
  bench::Note("(paper: line rate 10 Gb/s from 96-byte packets; 64B is\n"
              " generator-limited at ~12 Mpps)");

  PrintPanel("Figure 11b — optimized Corundum (100G, Spirent tester)",
             Fig11bCorundumOptimized(), false);
  bench::Note("(paper: 100 Gb/s layer-1 from 256-byte packets)");

  PrintPanel("Figure 11c — unoptimized Corundum",
             Fig11cCorundumUnoptimized(), false);
  bench::Note("(paper: tops out near 80 Gb/s at MTU-size packets)");

  PrintPanel("Figure 11d — optimized Corundum sampled latency at full rate",
             Fig11bCorundumOptimized(), true);
  bench::Note("(paper: ~1.0-1.25 us across the sweep, rising with size)");
}

void BM_TimingSimulator(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  TimingSimulator sim(CorundumPlatform(), OptimizedTiming());
  std::vector<SimPacket> pkts(10000);
  for (auto& p : pkts) p.bytes = bytes;
  for (auto _ : state) {
    sim.Reset();
    std::vector<SimPacket> batch = pkts;
    sim.Run(batch);
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_TimingSimulator)->Arg(64)->Arg(1500)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace menshen

int main(int argc, char** argv) {
  menshen::PrintFigure11();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
