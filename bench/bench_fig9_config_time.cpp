// Figure 9: configuration time per program for 16-1024 entries through
// the Menshen software-to-hardware interface, compared with the Tofino
// run-time API cost model.  The end-to-end milliseconds come from the
// calibrated Figure 9 cost model (config/cost_model.hpp); the functional
// write path (packet encode -> daisy chain -> table write) really
// executes, and its native throughput is benchmarked below.
#include <benchmark/benchmark.h>

#include "apps/apps.hpp"
#include "bench_util.hpp"
#include "config/sw_hw_interface.hpp"
#include "sysmod/system_module.hpp"

namespace menshen {
namespace {

void PrintFigure9Table() {
  bench::Header(
      "Figure 9 — configuration time (ms) vs match-action entries");
  std::printf("%-16s %10s %10s %10s %10s\n", "Program", "16", "64", "256",
              "1024");
  auto specs = apps::AllAppSpecs();
  std::vector<apps::NamedSpec> all(specs.begin(), specs.end());
  const ModuleSpec& sys = SystemModuleSpec();
  all.push_back({"System-level", &sys});
  for (const auto& [name, spec] : all) {
    (void)spec;
    std::printf("%-16s", name);
    for (const std::size_t n : {16, 64, 256, 1024})
      std::printf("%10.1f", MenshenConfigTimeMs(n));
    std::printf("\n");
  }
  std::printf("%-16s", "Tofino runtime");
  for (const std::size_t n : {16, 64, 256, 1024})
    std::printf("%10.1f", TofinoRuntimeTimeMs(n));
  std::printf("\n");
  bench::Note(
      "(paper: both paths reach ~600-800 ms at 1024 entries and are\n"
      " 'similar'; the model preserves linear growth and comparability)");
}

/// Native throughput of the real write path: encode a reconfiguration
/// packet, push it down the daisy chain, decode, apply to the CAM.
void BM_DaisyChainEntryWrite(benchmark::State& state) {
  Pipeline pipe;
  DaisyChain chain(pipe);
  const ModuleAllocation alloc =
      UniformAllocation(ModuleId(2), 0, params::kNumStages, 0, 16, 0, 32);
  CompiledModule m = Compile(apps::CalcSpec(), alloc);
  u64 key = 0;
  for (auto _ : state) {
    const auto writes = m.AddEntry("calc_tbl", {{"op", key++ & 0xFFFF}},
                                   std::nullopt, "do_add", {1});
    for (const auto& w : writes)
      chain.Inject(EncodeReconfigPacket(w, ModuleId(2)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DaisyChainEntryWrite)->Unit(benchmark::kMicrosecond);

/// Full module load (static config + placeholder wipe + retry protocol).
void BM_FullModuleLoad(benchmark::State& state) {
  for (auto _ : state) {
    Pipeline pipe;
    DaisyChain chain(pipe);
    SwHwInterface iface(pipe, chain);
    const ModuleAllocation alloc =
        UniformAllocation(ModuleId(2), 0, params::kNumStages, 0, 16, 0, 32);
    CompiledModule m = Compile(apps::CalcSpec(), alloc);
    const auto report = iface.LoadModule(ModuleId(2), m.AllWrites());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_FullModuleLoad)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace menshen

int main(int argc, char** argv) {
  menshen::PrintFigure9Table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
