// Figure 12 (Appendix A): configuration time for each stage's VLIW action
// table and CAM, via AXI-Lite 32-bit writes vs the daisy chain.  A VLIW
// entry takes ceil(625/32) = 20 AXI-L writes, a CAM entry ceil(205/32) =
// 7; the daisy chain moves one entry per packet.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "config/axil.hpp"
#include "config/daisy_chain.hpp"

namespace menshen {
namespace {

void PrintFigure12() {
  bench::Header(
      "Figure 12 — per-resource configuration time (ms): AXI-L vs daisy "
      "chain (16 entries per table)");
  std::printf("%-28s %14s %14s\n", "Resource", "AXI-L (ms)", "daisy (ms)");

  for (std::size_t stage = 0; stage < params::kNumStages; ++stage) {
    for (const ResourceKind kind :
         {ResourceKind::kVliwAction, ResourceKind::kCamEntry}) {
      const std::size_t entries = params::kCamDepth;  // 16 per stage
      const double axil_ms = static_cast<double>(entries) *
                             static_cast<double>(
                                 AxiLitePath::TransactionsFor(kind)) *
                             cost::kAxiLiteWriteUs / 1000.0;
      const double daisy_ms = static_cast<double>(entries) *
                              cost::kDaisyChainPacketUs / 1000.0;
      std::printf("STAGE %zu %-20s %14.3f %14.3f\n", stage,
                  kind == ResourceKind::kVliwAction ? "VLIW action table"
                                                    : "CAM",
                  axil_ms, daisy_ms);
    }
  }
  bench::Note(
      "(paper: AXI-L ~1.3 ms per VLIW table and ~0.45 ms per CAM; daisy\n"
      " chain ~0.15 ms for either — an ~8x advantage on wide entries,\n"
      " growing with entry width)");
}

/// The functional cost of the two paths in this implementation.
void BM_ApplyViaDaisyChain(benchmark::State& state) {
  Pipeline pipe;
  DaisyChain chain(pipe);
  ConfigWrite w{ResourceKind::kVliwAction, 0, 3, VliwEntry{}.Encode()};
  const Packet pkt = EncodeReconfigPacket(w, ModuleId(1));
  for (auto _ : state) {
    Packet copy = pkt;
    benchmark::DoNotOptimize(chain.Inject(copy));
  }
}
BENCHMARK(BM_ApplyViaDaisyChain)->Unit(benchmark::kNanosecond);

void BM_ApplyViaAxiLite(benchmark::State& state) {
  Pipeline pipe;
  AxiLitePath axil(pipe);
  ConfigWrite w{ResourceKind::kVliwAction, 0, 3, VliwEntry{}.Encode()};
  for (auto _ : state) benchmark::DoNotOptimize(axil.Apply(w));
}
BENCHMARK(BM_ApplyViaAxiLite)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace menshen

int main(int argc, char** argv) {
  menshen::PrintFigure12();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
