// Figure 10: throughput of three CALC modules (5:3:2 split of 9.3 Gb/s on
// a 10G link) while module 1 is reconfigured 0.5 s into the run.  The
// paper's result: modules 2 and 3 see no impact; module 1's throughput
// drops to zero for the reconfiguration window and returns.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/experiments.hpp"

namespace menshen {
namespace {

void PrintFigure10() {
  Fig10Config cfg;  // defaults follow the paper: 9.3 Gb/s, 5:3:2, 3 s
  const Fig10Result result = RunReconfigDisruption(cfg);

  bench::Header(
      "Figure 10 — per-module throughput (Gb/s) during reconfiguration "
      "of module 1");
  std::printf("reconfiguration window: %.3f s .. %.3f s\n",
              result.reconfig_start_s, result.reconfig_end_s);
  std::printf("%8s %10s %10s %10s\n", "t (s)", "module 1", "module 2",
              "module 3");
  for (const auto& bin : result.bins) {
    std::printf("%8.2f %10.2f %10.2f %10.2f", bin.t_s, bin.gbps[0],
                bin.gbps[1], bin.gbps[2]);
    if (bin.t_s >= result.reconfig_start_s &&
        bin.t_s < result.reconfig_end_s)
      std::printf("   << module 1 under reconfiguration");
    std::printf("\n");
  }
  std::printf("\nsteady-state rates outside the window: %.2f / %.2f / %.2f "
              "Gb/s (offered 4.65 / 2.79 / 1.86)\n",
              result.gbps_outside_window[0], result.gbps_outside_window[1],
              result.gbps_outside_window[2]);
  bench::Note(
      "(paper: modules 2 and 3 hold 2.79 and 1.86 Gb/s throughout; module\n"
      " 1 drops to 0 only inside the window — same shape here)");
}

void BM_Fig10Experiment(benchmark::State& state) {
  for (auto _ : state) {
    Fig10Config cfg;
    cfg.duration_s = 0.5;
    cfg.reconfig_at_s = 0.2;
    cfg.reconfig_duration_s = 0.05;
    benchmark::DoNotOptimize(RunReconfigDisruption(cfg));
  }
}
BENCHMARK(BM_Fig10Experiment)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace menshen

int main(int argc, char** argv) {
  menshen::PrintFigure10();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
