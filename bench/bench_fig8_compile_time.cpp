// Figure 8: compilation time per program, for 16/64/256/1024 generated
// match-action entries.  This bench measures REAL wall time of this
// repository's compiler (frontend + checks + overlay codegen + unique
// placeholder-entry generation); the paper measures its Python/C++ tool,
// so absolute values differ — the reproduced shape is the growth with
// entry count and the per-program ordering.
#include <benchmark/benchmark.h>

#include <chrono>

#include "apps/apps.hpp"
#include "bench_util.hpp"
#include "sysmod/system_module.hpp"

namespace menshen {
namespace {

ModuleAllocation BigAlloc(u16 id, std::size_t entries) {
  return UniformAllocation(ModuleId(id), 0, params::kNumStages, 0, entries,
                           0, 64);
}

void PrintFigure8Table() {
  bench::Header(
      "Figure 8 — compilation time (s) vs generated match-action entries");
  std::printf("%-16s %10s %10s %10s %10s\n", "Program", "16", "64", "256",
              "1024");
  auto specs = apps::AllAppSpecs();
  std::vector<apps::NamedSpec> all(specs.begin(), specs.end());
  const ModuleSpec& sys = SystemModuleSpec();
  all.push_back({"System-level", &sys});

  for (const auto& [name, spec] : all) {
    std::printf("%-16s", name);
    for (const std::size_t n : {16, 64, 256, 1024}) {
      const auto t0 = std::chrono::steady_clock::now();
      const CompiledModule m = Compile(*spec, BigAlloc(2, n), n);
      const auto t1 = std::chrono::steady_clock::now();
      if (!m.ok()) {
        std::printf("%10s", "ERR");
        continue;
      }
      const double s =
          std::chrono::duration<double>(t1 - t0).count();
      std::printf("%10.4f", s);
    }
    std::printf("\n");
  }
  bench::Note(
      "(paper: 0.5-10 s, growing with entries; this compiler is native C++\n"
      " so absolute times are smaller — the monotone growth in entry count\n"
      " is the reproduced result)");
}

void BM_Compile(benchmark::State& state) {
  const auto specs = apps::AllAppSpecs();
  const auto& spec = *specs[static_cast<std::size_t>(state.range(0))].spec;
  const std::size_t entries = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    CompiledModule m = Compile(spec, BigAlloc(2, entries), entries);
    benchmark::DoNotOptimize(m);
  }
  state.SetLabel(specs[static_cast<std::size_t>(state.range(0))].name);
  state.counters["entries"] = static_cast<double>(entries);
}
BENCHMARK(BM_Compile)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6, 7}, {16, 64, 256, 1024}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace menshen

int main(int argc, char** argv) {
  menshen::PrintFigure8Table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
