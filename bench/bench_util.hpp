// Shared formatting helpers for the figure/table benches.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace menshen::bench {

inline void Header(const std::string& title) {
  std::printf("\n==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================================\n");
}

inline void Note(const std::string& text) { std::printf("%s\n", text.c_str()); }

/// Appends one machine-readable throughput record (JSON lines) — the
/// format future PRs diff against for a perf trajectory.
inline void JsonThroughputLine(std::FILE* f, const std::string& name,
                               double gbps, double mpps) {
  std::fprintf(f, "{\"name\": \"%s\", \"gbps\": %.4f, \"mpps\": %.4f}\n",
               name.c_str(), gbps, mpps);
}

/// Shared main() body for benches that emit a JSON baseline before the
/// google-benchmark suite: runs `emit` unless this is a discovery
/// invocation (--benchmark_list_tests only enumerates benchmarks, and
/// must not clobber a saved baseline file), then hands over to the
/// benchmark runner.
template <typename EmitFn>
int BenchMainWithEmit(int argc, char** argv, EmitFn&& emit) {
  bool discovery_only = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--benchmark_list_tests", 0) == 0)
      discovery_only = true;
  if (!discovery_only) emit();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

}  // namespace menshen::bench
