// Shared formatting helpers for the figure/table benches.
#pragma once

#include <cstdio>
#include <string>

namespace menshen::bench {

inline void Header(const std::string& title) {
  std::printf("\n==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================================\n");
}

inline void Note(const std::string& text) { std::printf("%s\n", text.c_str()); }

}  // namespace menshen::bench
