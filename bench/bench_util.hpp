// Shared formatting helpers for the figure/table benches.
#pragma once

#include <cstdio>
#include <string>

namespace menshen::bench {

inline void Header(const std::string& title) {
  std::printf("\n==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================================\n");
}

inline void Note(const std::string& text) { std::printf("%s\n", text.c_str()); }

/// Appends one machine-readable throughput record (JSON lines) — the
/// format future PRs diff against for a perf trajectory.
inline void JsonThroughputLine(std::FILE* f, const std::string& name,
                               double gbps, double mpps) {
  std::fprintf(f, "{\"name\": \"%s\", \"gbps\": %.4f, \"mpps\": %.4f}\n",
               name.c_str(), gbps, mpps);
}

}  // namespace menshen::bench
