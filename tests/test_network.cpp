// Multi-device topologies: vSwitch VID stamping, cross-device forwarding,
// loop containment, and the cross-device VID-rewrite attack the static
// checker exists to prevent (section 3.4).
#include "net/network.hpp"

#include <gtest/gtest.h>

#include <set>

#include "runtime/module_manager.hpp"
#include "test_util.hpp"

namespace menshen {
namespace {

using namespace test;

/// Installs a one-table forwarder on a device: match the L4 dst port,
/// send to an egress port.
void InstallForwarder(Device& dev, u16 vid, std::size_t cam_base,
                      const std::vector<std::pair<u16, u16>>& port_map) {
  static const char* kSource = R"(
module fwd {
  field dport : 2 @ 40;
  action go(p) { port(p); }
  table t { key = { dport }; actions = { go }; size = 4; }
}
)";
  const ModuleAllocation alloc = UniformAllocation(
      ModuleId(vid), 0, params::kNumStages, cam_base, 4, 0, 0);
  CompiledModule m = CompileDsl(kSource, alloc);
  ASSERT_TRUE(m.ok()) << m.diags().ToString();
  for (const auto& [dport, out] : port_map)
    m.AddEntry("t", {{"dport", dport}}, std::nullopt, "go", {out});
  ModuleManager mgr(dev.pipeline());
  MustLoad(mgr, m, alloc);
}

TEST(Network, VSwitchStampsTheVid) {
  Network net;
  Device& s1 = net.AddDevice("s1");
  InstallForwarder(s1, 5, 0, {{80, 2}});
  net.AttachHost({"s1", 1}, ModuleId(5));

  // The host marks its packet with a spoofed VID; the vSwitch overwrites
  // it with the tenant's assigned one.
  Packet pkt = PacketBuilder{}.vid(ModuleId(9)).udp(1, 80).Build();
  const auto deliveries = net.InjectFromHost({"s1", 1}, std::move(pkt));
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].at, (PortRef{"s1", 2}));
  EXPECT_EQ(deliveries[0].packet.vid().value(), 5);
}

TEST(Network, ForwardsAcrossTwoDevices) {
  // host -> s1:1, s1 forwards port 80 out of port 2, which links to s2:1;
  // s2 forwards port 80 out of its port 3 (an edge).
  Network net;
  InstallForwarder(net.AddDevice("s1"), 5, 0, {{80, 2}});
  InstallForwarder(net.AddDevice("s2"), 5, 0, {{80, 3}});
  net.Link({"s1", 2}, {"s2", 1});
  net.AttachHost({"s1", 1}, ModuleId(5));

  const auto out = net.InjectFromHost(
      {"s1", 1}, PacketBuilder{}.udp(1, 80).Build());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].at, (PortRef{"s2", 3}));
}

TEST(Network, DropOnOneDeviceEndsTheWalk) {
  Network net;
  Device& s1 = net.AddDevice("s1");
  InstallForwarder(s1, 5, 0, {{80, 2}});  // no entry for port 23
  net.AttachHost({"s1", 1}, ModuleId(5));
  // Miss -> default forward to port 0, which is an edge here.
  const auto out = net.InjectFromHost(
      {"s1", 1}, PacketBuilder{}.udp(1, 23).Build());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].at, (PortRef{"s1", 0}));
}

TEST(Network, RoutingLoopIsContainedByTheHopBudget) {
  // s1 sends port-80 traffic to s2, s2 sends it straight back: the walk
  // burns its hop budget and the packet is dropped and counted — the
  // data-plane symptom of what the control-plane loop checker rejects.
  Network net;
  InstallForwarder(net.AddDevice("s1"), 5, 0, {{80, 2}});
  InstallForwarder(net.AddDevice("s2"), 5, 0, {{80, 1}});
  net.Link({"s1", 2}, {"s2", 1});
  net.AttachHost({"s1", 1}, ModuleId(5));

  const auto out = net.InjectFromHost(
      {"s1", 1}, PacketBuilder{}.udp(1, 80).Build(), /*max_hops=*/6);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(net.loop_drops(), 1u);
}

TEST(Network, MulticastFansOutAcrossLinks) {
  Network net;
  Device& s1 = net.AddDevice("s1");
  Device& s2 = net.AddDevice("s2");
  s1.pipeline().SetMulticastGroup(3, {2, 4});
  InstallForwarder(s2, 5, 0, {{80, 9}});

  // A raw multicast module on s1 (hand-config to keep the test focused).
  const ModuleAllocation alloc =
      UniformAllocation(ModuleId(5), 0, params::kNumStages, 0, 4, 0, 0);
  CompiledModule m = CompileDsl(R"(
module mc {
  field dport : 2 @ 40;
  action fan(g) { mcast(g); }
  table t { key = { dport }; actions = { fan }; size = 2; }
}
)",
                                alloc);
  ASSERT_TRUE(m.ok());
  m.AddEntry("t", {{"dport", 80}}, std::nullopt, "fan", {3});
  ModuleManager mgr(s1.pipeline());
  MustLoad(mgr, m, alloc);

  net.Link({"s1", 2}, {"s2", 1});  // one replica continues into s2
  net.AttachHost({"s1", 1}, ModuleId(5));

  const auto out = net.InjectFromHost(
      {"s1", 1}, PacketBuilder{}.udp(1, 80).Build());
  ASSERT_EQ(out.size(), 2u);  // one copy at s1:4 (edge), one via s2:9
  // The hop loop delivers by hop: the s1:4 edge copy leaves at hop 1,
  // the copy that continues through s2 leaves at hop 2.
  EXPECT_EQ(out[0].at, (PortRef{"s1", 4}));
  EXPECT_EQ(out[1].at, (PortRef{"s2", 9}));
}

TEST(Network, BatchedInjectionMatchesPerPacketWalks) {
  // The batched hop loop must deliver exactly what per-packet injection
  // delivers: same edge ports, same packet bytes, same loop drops — only
  // the grouping into per-device sub-batches differs.
  const auto build = [] {
    Network net;
    InstallForwarder(net.AddDevice("s1"), 5, 0, {{80, 2}, {81, 3}});
    InstallForwarder(net.AddDevice("s2"), 5, 0, {{80, 4}});
    InstallForwarder(net.AddDevice("s3"), 5, 0, {{81, 5}});
    net.Link({"s1", 2}, {"s2", 1});
    net.Link({"s1", 3}, {"s3", 1});
    net.AttachHost({"s1", 1}, ModuleId(5));
    return net;
  };

  std::vector<Packet> trace;
  for (int i = 0; i < 64; ++i)
    trace.push_back(
        PacketBuilder{}.udp(static_cast<u16>(i), i % 2 ? 80 : 81).Build());

  Network per_packet = build();
  std::vector<Delivery> ref;
  for (const Packet& p : trace) {
    auto one = per_packet.InjectFromHost({"s1", 1}, p);
    for (auto& d : one) ref.push_back(std::move(d));
  }

  Network batched = build();
  const auto out = batched.InjectBatchFromHost({"s1", 1}, trace);

  ASSERT_EQ(out.size(), ref.size());
  // Delivery order differs (per-hop vs per-packet), so compare as
  // multisets of (port, bytes).
  const auto key = [](const Delivery& d) {
    return d.at.device + ":" + std::to_string(d.at.port) + "/" +
           std::to_string(d.packet.bytes().u16_at(40));  // UDP dst port
  };
  std::multiset<std::string> want, got;
  for (const auto& d : ref) want.insert(key(d));
  for (const auto& d : out) got.insert(key(d));
  EXPECT_EQ(want, got);
  EXPECT_EQ(batched.loop_drops(), per_packet.loop_drops());
}

TEST(Network, BatchedInjectionCountsLoopDrops) {
  Network net;
  InstallForwarder(net.AddDevice("s1"), 5, 0, {{80, 2}});
  InstallForwarder(net.AddDevice("s2"), 5, 0, {{80, 1}});
  net.Link({"s1", 2}, {"s2", 1});
  net.AttachHost({"s1", 1}, ModuleId(5));

  std::vector<Packet> looping(8, PacketBuilder{}.udp(1, 80).Build());
  const auto out =
      net.InjectBatchFromHost({"s1", 1}, std::move(looping), /*max_hops=*/5);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(net.loop_drops(), 8u);
}

TEST(Network, VidRewriteAttackCrossesDevices) {
  // The attack the static checker forbids (section 3.4): module 5 on s1
  // rewrites the VLAN TCI so that on s2 the packet is processed under
  // module 6's configuration.  The compiler refuses such a program, so
  // we inject the configuration by hand to demonstrate the blast radius
  // the check prevents.
  Network net;
  Device& s1 = net.AddDevice("s1");
  Device& s2 = net.AddDevice("s2");
  net.Link({"s1", 2}, {"s2", 1});
  net.AttachHost({"s1", 1}, ModuleId(5));

  // s1, module 5, hand-built: parse TCI, set it to 6, forward to port 2.
  Pipeline& p1 = s1.pipeline();
  ParserEntry parser;
  parser.actions[0] = {true, {ContainerType::k2B, 0}, offsets::kVlanTci};
  p1.parser().table().Write(5, parser);
  DeparserEntry deparser;
  deparser.actions[0] = {true, {ContainerType::k2B, 0}, offsets::kVlanTci};
  p1.deparser().table().Write(5, deparser);
  Stage& st = p1.stage(0);
  st.key_extractor().Write(5, KeyExtractorEntry{});
  KeyMaskEntry mask;  // match-all (zero mask): every packet hits entry 0
  st.key_mask().Write(5, mask);
  st.cam().Write(0, CamEntry{true, BitVec(params::kKeyBits), ModuleId(5)});
  VliwEntry vliw;
  vliw.slots[0] = {AluOp::kSet, 0, 0, 6};          // TCI := 6 (VID rewrite!)
  vliw.slots[24] = {AluOp::kPort, 0, 0, 2};        // towards s2
  st.WriteVliw(0, vliw);

  // s2, module 6 (the victim): counts its packets via a sequencer.
  const ModuleAllocation alloc =
      UniformAllocation(ModuleId(6), 0, params::kNumStages, 0, 4, 0, 8);
  CompiledModule victim = MustCompile(apps::NetChainSpec(), alloc);
  ModuleManager mgr(s2.pipeline());
  MustLoad(mgr, victim, alloc);
  apps::InstallNetChainEntries(victim, 3);
  mgr.Update(victim);

  const auto out =
      net.InjectFromHost({"s1", 1}, NetChainPacket(5, apps::kNetChainOpSeq));
  ASSERT_EQ(out.size(), 1u);
  // The packet crossed into s2 carrying the victim's VID and consumed
  // the victim's sequencer state — the isolation breach.
  EXPECT_EQ(out[0].packet.vid().value(), 6);
  EXPECT_EQ(NetChainSeq(out[0].packet), 1u);

  // ...and the compiler's static checker makes this unprogrammable:
  const CompiledModule rejected = CompileDsl(R"(
module attack {
  field tci : 2 @ 14;
  action a(p) { tci = 6; port(p); }
  table t { key = { tci }; actions = { a }; size = 1; }
}
)",
                                             UniformAllocation(
                                                 ModuleId(5), 0, 5, 0, 4));
  EXPECT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.diags().HasCode("static.vid-write"));
}

// --- Pipelined waves + parallel same-hop dispatch ------------------------------

// A 3-switch chain with a stateful NetChain sequencer at the head: wave
// pipelining (waves on s0/s1/s2 simultaneously, spread across pool
// workers) must deliver byte-for-byte what the plain whole-batch hop
// loop delivers — the sequence numbers in the payload prove that the
// head switch saw every packet in injection order.
TEST(Network, PipelinedWavesMatchSequentialBatchOnAChain) {
  constexpr u16 kVid = 5;
  const auto build = [&] {
    Network net;
    Device& s0 = net.AddDevice("s0");
    InstallForwarder(net.AddDevice("s1"), kVid, 0, {{40000, 2}});
    InstallForwarder(net.AddDevice("s2"), kVid, 0, {{40000, 3}});
    net.Link({"s0", 2}, {"s1", 1});
    net.Link({"s1", 2}, {"s2", 1});
    net.AttachHost({"s0", 1}, ModuleId(kVid));
    const ModuleAllocation alloc =
        UniformAllocation(ModuleId(kVid), 0, params::kNumStages, 0, 4, 0, 8);
    CompiledModule m = MustCompile(apps::NetChainSpec(), alloc);
    ModuleManager mgr(s0.pipeline());
    MustLoad(mgr, m, alloc);
    EXPECT_TRUE(apps::InstallNetChainEntries(m, /*out_port=*/2));
    mgr.Update(m);
    return net;
  };

  std::vector<Packet> batch;
  for (int i = 0; i < 60; ++i)
    batch.push_back(NetChainPacket(kVid, apps::kNetChainOpSeq));

  Network sequential = build();
  std::vector<Packet> a = batch;
  const auto expected =
      sequential.InjectBatchFromHost({"s0", 1}, std::move(a));

  Network pipelined = build();
  pipelined.EnableParallelDispatch(2);
  EXPECT_EQ(pipelined.parallel_workers(), 2u);
  std::vector<Packet> b = batch;
  const auto got =
      pipelined.InjectBatchPipelined({"s0", 1}, std::move(b), /*wave_size=*/8);

  ASSERT_EQ(got.size(), expected.size());
  ASSERT_EQ(got.size(), batch.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].at, expected[i].at) << "delivery " << i;
    EXPECT_EQ(got[i].packet.bytes().hex(), expected[i].packet.bytes().hex())
        << "delivery " << i;
    // Sequencer order: packet i carries sequence i+1.
    EXPECT_EQ(NetChainSeq(got[i].packet), static_cast<u32>(i) + 1);
  }
  EXPECT_EQ(pipelined.loop_drops(), 0u);

  // Wave size larger than the batch degenerates to the plain hop loop.
  Network one_wave = build();
  std::vector<Packet> c = batch;
  const auto whole =
      one_wave.InjectBatchPipelined({"s0", 1}, std::move(c), batch.size());
  ASSERT_EQ(whole.size(), expected.size());
  for (std::size_t i = 0; i < whole.size(); ++i)
    EXPECT_EQ(whole[i].packet.bytes().hex(), expected[i].packet.bytes().hex());
}

TEST(Network, TopologyValidation) {
  Network net;
  net.AddDevice("s1");
  EXPECT_THROW(net.AddDevice("s1"), std::invalid_argument);
  EXPECT_THROW((void)net.device("ghost"), std::invalid_argument);
  EXPECT_THROW(net.Link({"s1", 1}, {"ghost", 1}), std::invalid_argument);
  net.AddDevice("s2");
  net.Link({"s1", 1}, {"s2", 1});
  EXPECT_THROW(net.Link({"s1", 1}, {"s2", 2}), std::invalid_argument);
  EXPECT_THROW(net.AttachHost({"s1", 1}, ModuleId(1)),
               std::invalid_argument);
  EXPECT_THROW(net.InjectFromHost({"s1", 9}, PacketBuilder{}.Build()),
               std::invalid_argument);
}

}  // namespace
}  // namespace menshen
