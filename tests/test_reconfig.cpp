// Reconfiguration path: packet codec, daisy chain with fault injection,
// the secure-reconfiguration retry protocol, and the AXI-L comparison.
#include <gtest/gtest.h>

#include "config/axil.hpp"
#include "config/daisy_chain.hpp"
#include "config/reconfig_packet.hpp"
#include "config/sw_hw_interface.hpp"

namespace menshen {
namespace {

ConfigWrite SampleWrite() {
  ConfigWrite w;
  w.kind = ResourceKind::kSegmentTable;
  w.stage = 2;
  w.index = 7;
  w.payload = SegmentEntry{16, 32}.Encode();
  return w;
}

TEST(ReconfigPacket, RoundTrip) {
  const ConfigWrite w = SampleWrite();
  const Packet pkt = EncodeReconfigPacket(w, ModuleId(7));
  EXPECT_TRUE(pkt.is_reconfig());
  EXPECT_EQ(pkt.l4_dst_port(), kReconfigUdpPort);
  EXPECT_GE(pkt.size(), kMinFrameBytes);
  EXPECT_EQ(DecodeReconfigPacket(pkt), w);
}

TEST(ReconfigPacket, RoundTripsEveryResourceKind) {
  const std::vector<ConfigWrite> writes = {
      {ResourceKind::kParserTable, 0, 1, ParserEntry{}.Encode()},
      {ResourceKind::kDeparserTable, 0, 2, DeparserEntry{}.Encode()},
      {ResourceKind::kKeyExtractor, 3, 4, KeyExtractorEntry{}.Encode()},
      {ResourceKind::kKeyMask, 1, 5, KeyMaskEntry{}.Encode()},
      {ResourceKind::kCamEntry, 4, 15, CamEntry{}.Encode()},
      {ResourceKind::kVliwAction, 2, 9, VliwEntry{}.Encode()},
      {ResourceKind::kSegmentTable, 0, 31, SegmentEntry{1, 2}.Encode()},
  };
  for (const auto& w : writes)
    EXPECT_EQ(DecodeReconfigPacket(EncodeReconfigPacket(w, ModuleId(1))), w)
        << w.ToString();
}

TEST(ReconfigPacket, RejectsNonReconfigAndTruncated) {
  const Packet data = PacketBuilder{}.udp(1, 80).Build();
  EXPECT_THROW(DecodeReconfigPacket(data), std::invalid_argument);

  Packet rc = EncodeReconfigPacket(SampleWrite(), ModuleId(1));
  rc.bytes().resize(offsets::kPayload + 2);  // cut mid-header
  EXPECT_THROW(DecodeReconfigPacket(rc), std::invalid_argument);
}

TEST(DaisyChain, AppliesWritesAndCountsThem) {
  Pipeline pipe;
  DaisyChain chain(pipe);
  EXPECT_TRUE(chain.Inject(EncodeReconfigPacket(SampleWrite(), ModuleId(7))));
  EXPECT_EQ(chain.packets_applied(), 1u);
  EXPECT_EQ(pipe.filter().reconfig_packet_counter(), 1u);
  const SegmentEntry seg =
      pipe.stage(2).stateful().segment_table().At(7);
  EXPECT_EQ(seg.offset, 16);
  EXPECT_EQ(seg.range, 32);
}

TEST(DaisyChain, DroppedPacketsDoNotReachTheCounter) {
  Pipeline pipe;
  DaisyChain chain(pipe);
  chain.DropNext(1);
  EXPECT_FALSE(chain.Inject(EncodeReconfigPacket(SampleWrite(), ModuleId(7))));
  EXPECT_EQ(pipe.filter().reconfig_packet_counter(), 0u);
  EXPECT_EQ(chain.packets_dropped(), 1u);
}

TEST(SwHwInterface, LoadRetriesUntilCounterConfirmsDelivery) {
  Pipeline pipe;
  DaisyChain chain(pipe);
  SwHwInterface iface(pipe, chain);

  std::vector<ConfigWrite> writes(4, SampleWrite());
  for (std::size_t i = 0; i < writes.size(); ++i) writes[i].index = i;

  chain.DropNext(2);  // first transfer loses two packets
  const ConfigReport report = iface.LoadModule(ModuleId(7), writes);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.packets_sent, 8u);  // 4 (partial) + 4 (clean retry)
  // Bitmap is cleared after a successful transfer.
  EXPECT_FALSE(pipe.filter().IsUnderReconfig(ModuleId(7)));
}

TEST(SwHwInterface, GivesUpAfterMaxAttempts) {
  Pipeline pipe;
  DaisyChain chain(pipe);
  SwHwInterface iface(pipe, chain);
  chain.DropNext(1000000);  // chain is dead
  EXPECT_THROW(iface.LoadModule(ModuleId(1), {SampleWrite()}, 3),
               std::runtime_error);
}

TEST(SwHwInterface, ModuleQuiescedDuringTransfer) {
  // While a module's writes are in flight, its data packets are dropped
  // by the bitmap — verified here by interleaving a packet mid-protocol.
  Pipeline pipe;
  pipe.filter().MarkUnderReconfig(ModuleId(3), true);
  Packet p = PacketBuilder{}.vid(ModuleId(3)).Build();
  EXPECT_EQ(pipe.Process(std::move(p)).filter_verdict,
            FilterVerdict::kDropBitmap);
  pipe.filter().MarkUnderReconfig(ModuleId(3), false);
  Packet q = PacketBuilder{}.vid(ModuleId(3)).Build();
  EXPECT_EQ(pipe.Process(std::move(q)).filter_verdict, FilterVerdict::kData);
}

TEST(AxiLite, TransactionCountsMatchAppendixA) {
  // ceil(625/32) = 20 writes per VLIW entry; ceil(205/32) = 7 per CAM
  // entry (Appendix A).
  EXPECT_EQ(AxiLitePath::TransactionsFor(ResourceKind::kVliwAction), 20u);
  EXPECT_EQ(AxiLitePath::TransactionsFor(ResourceKind::kCamEntry), 7u);
  EXPECT_EQ(AxiLitePath::TransactionsFor(ResourceKind::kKeyExtractor), 2u);
  EXPECT_EQ(AxiLitePath::TransactionsFor(ResourceKind::kSegmentTable), 1u);
  EXPECT_EQ(AxiLitePath::TransactionsFor(ResourceKind::kTcamEntry), 13u);
}

TEST(AxiLite, FunctionallyEquivalentButSlower) {
  Pipeline a, b;
  DaisyChain chain(a);
  AxiLitePath axil(b);

  const ConfigWrite w = SampleWrite();
  chain.Inject(EncodeReconfigPacket(w, ModuleId(7)));
  axil.Apply(w);

  const SegmentEntry sa = a.stage(2).stateful().segment_table().At(7);
  const SegmentEntry sb = b.stage(2).stateful().segment_table().At(7);
  EXPECT_EQ(sa, sb);

  // Cost model: one daisy-chain packet vs one 32-bit write per word.
  EXPECT_EQ(axil.total_transactions(), 1u);
  EXPECT_GT(axil.elapsed_us(), 0.0);
}

TEST(CostModel, Figure9ShapesHold) {
  // Linear in entries, and Menshen comparable to the Tofino runtime.
  const double m16 = MenshenConfigTimeMs(16);
  const double m1024 = MenshenConfigTimeMs(1024);
  EXPECT_LT(m16, m1024);
  EXPECT_NEAR(m1024 - MenshenConfigTimeMs(512),
              MenshenConfigTimeMs(512) - MenshenConfigTimeMs(0), 1e-9);
  const double t1024 = TofinoRuntimeTimeMs(1024);
  EXPECT_GT(m1024 / t1024, 0.5);
  EXPECT_LT(m1024 / t1024, 2.0);
}

}  // namespace
}  // namespace menshen
