// Encode/decode round trips for every Figure 7 configuration format.
#include "pipeline/entries.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pipeline/config_write.hpp"
#include "pipeline/tcam.hpp"

namespace menshen {
namespace {

TEST(ParserAction, EncodeDecodeRoundTrip) {
  ParserAction a;
  a.valid = true;
  a.container = {ContainerType::k4B, 5};
  a.bytes_from_head = 46;
  EXPECT_EQ(ParserAction::Decode(a.Encode()), a);
}

TEST(ParserAction, OffsetLimitedTo7Bits) {
  ParserAction a;
  a.bytes_from_head = 128;
  EXPECT_THROW((void)a.Encode(), std::invalid_argument);
}

TEST(ParserEntry, Is20Bytes) {
  ParserEntry e;
  EXPECT_EQ(e.Encode().size(), 20u);  // 160 bits (Table 5)
  EXPECT_THROW(ParserEntry::Decode(ByteBuffer(19)), std::invalid_argument);
}

TEST(ParserEntry, RoundTripWithMixedActions) {
  ParserEntry e;
  e.actions[0] = {true, {ContainerType::k2B, 1}, 16};
  e.actions[3] = {true, {ContainerType::k6B, 0}, 0};
  e.actions[9] = {true, {ContainerType::k4B, 7}, 127};
  const ParserEntry d = ParserEntry::Decode(e.Encode());
  EXPECT_EQ(d, e);
  EXPECT_EQ(d.valid_count(), 3u);
}

TEST(Operand8, ImmediateAndContainer) {
  const Operand8 imm = Operand8::Immediate(100);
  EXPECT_FALSE(imm.is_container());
  EXPECT_EQ(imm.immediate(), 100);
  EXPECT_THROW(Operand8::Immediate(128), std::invalid_argument);

  const Operand8 c = Operand8::Container({ContainerType::k4B, 3});
  EXPECT_TRUE(c.is_container());
  EXPECT_EQ(c.container(), (ContainerRef{ContainerType::k4B, 3}));
  EXPECT_THROW((void)imm.container(), std::logic_error);
}

TEST(Operand8, EvalAgainstPhv) {
  Phv phv;
  phv.Write({ContainerType::k2B, 2}, 777);
  EXPECT_EQ(Operand8::Container({ContainerType::k2B, 2}).Eval(phv), 777u);
  EXPECT_EQ(Operand8::Immediate(9).Eval(phv), 9u);
}

TEST(KeyExtractorEntry, EncodeIs5Bytes) {
  KeyExtractorEntry e;
  EXPECT_EQ(e.Encode().size(), 5u);  // 38 bits used (Table 5)
}

TEST(KeyExtractorEntry, RoundTrip) {
  KeyExtractorEntry e;
  e.selectors = {1, 2, 3, 4, 5, 6};
  e.cmp_op = CmpOp::kGt;
  e.cmp_a = Operand8::Container({ContainerType::k2B, 4});
  e.cmp_b = Operand8::Immediate(100);
  EXPECT_EQ(KeyExtractorEntry::Decode(e.Encode()), e);
}

TEST(KeyExtractorEntry, ExtractKeyPlacesContainersInSlots) {
  Phv phv;
  phv.Write({ContainerType::k6B, 1}, 0xAAAAAAAAAAAAULL);
  phv.Write({ContainerType::k4B, 2}, 0xBBBBBBBB);
  phv.Write({ContainerType::k2B, 3}, 0xCCCC);

  KeyExtractorEntry e;
  e.selectors = {1, 0, 2, 0, 3, 0};  // 1st6B=c1, 1st4B=c2, 1st2B=c3
  const BitVec key = e.ExtractKey(phv);
  const auto slots = KeySlots();
  EXPECT_EQ(key.field(slots[0].lsb, 48), 0xAAAAAAAAAAAAULL);
  EXPECT_EQ(key.field(slots[2].lsb, 32), 0xBBBBBBBBu);
  EXPECT_EQ(key.field(slots[4].lsb, 16), 0xCCCCu);
  EXPECT_FALSE(key.bit(0));  // no predicate
}

TEST(KeyExtractorEntry, PredicateBitReflectsComparison) {
  Phv phv;
  phv.Write({ContainerType::k2B, 0}, 50);
  KeyExtractorEntry e;
  e.cmp_a = Operand8::Container({ContainerType::k2B, 0});
  e.cmp_b = Operand8::Immediate(49);
  e.cmp_op = CmpOp::kGt;
  EXPECT_TRUE(e.ExtractKey(phv).bit(0));
  e.cmp_op = CmpOp::kLe;
  EXPECT_FALSE(e.ExtractKey(phv).bit(0));
  e.cmp_op = CmpOp::kNeq;
  EXPECT_TRUE(e.ExtractKey(phv).bit(0));
}

TEST(KeyMaskEntry, RoundTripAndWidth) {
  KeyMaskEntry e;
  e.mask.set_bit(0, true);
  e.mask.set_bit(100, true);
  e.mask.set_bit(192, true);
  const ByteBuffer bytes = e.Encode();
  EXPECT_EQ(bytes.size(), 25u);  // 193 bits (Table 5)
  EXPECT_EQ(KeyMaskEntry::Decode(bytes), e);
}

TEST(KeyMaskEntry, RejectsStrayHighBits) {
  ByteBuffer bytes(25);
  bytes.set_u8(24, 0x02);  // bit 193 does not exist
  EXPECT_THROW(KeyMaskEntry::Decode(bytes), std::invalid_argument);
}

TEST(CamEntry, RoundTrip) {
  CamEntry e;
  e.valid = true;
  e.module = ModuleId(0x123);
  e.key.set_field(0, 48, 0xDEADBEEF);
  e.key.set_bit(192, true);
  const ByteBuffer bytes = e.Encode();
  EXPECT_EQ(bytes.size(), 28u);
  EXPECT_EQ(CamEntry::Decode(bytes), e);
}

TEST(AluAction, FormatARoundTrip) {
  AluAction a;
  a.op = AluOp::kAdd;
  a.container1 = 10;
  a.container2 = 24;
  const u32 bits = a.Encode();
  EXPECT_LT(bits, u32{1} << 25);  // 25-bit action (Table 5)
  EXPECT_EQ(AluAction::Decode(bits), a);
}

TEST(AluAction, FormatBRoundTrip) {
  AluAction a;
  a.op = AluOp::kSet;
  a.container1 = 3;
  a.immediate = 0xFFFF;
  EXPECT_EQ(AluAction::Decode(a.Encode()), a);
}

TEST(AluAction, SlotRangeChecked) {
  AluAction a;
  a.container1 = 25;
  EXPECT_THROW((void)a.Encode(), std::invalid_argument);
}

TEST(VliwEntry, Is79Bytes) {
  VliwEntry e;
  EXPECT_EQ(e.Encode().size(), 79u);  // 625 bits packed (Table 5)
}

TEST(VliwEntry, RoundTripAllSlots) {
  Rng rng(99);
  VliwEntry e;
  for (std::size_t i = 0; i < e.slots.size(); ++i) {
    AluAction a;
    a.op = static_cast<AluOp>(1 + rng.Below(5));  // arithmetic ops
    a.container1 = static_cast<u8>(rng.Below(25));
    if (OpUsesImmediate(a.op))
      a.immediate = static_cast<u16>(rng.Below(0x10000));
    else
      a.container2 = static_cast<u8>(rng.Below(25));
    e.slots[i] = a;
  }
  EXPECT_EQ(VliwEntry::Decode(e.Encode()), e);
  EXPECT_EQ(e.active_count(), 25u);
}

TEST(SegmentEntry, RoundTrip) {
  const SegmentEntry e{0x40, 0x20};
  const ByteBuffer bytes = e.Encode();
  EXPECT_EQ(bytes.size(), 2u);  // 16 bits (Table 5)
  EXPECT_EQ(SegmentEntry::Decode(bytes), e);
}

TEST(FlatToContainer, MetadataSlotHasNoContainer) {
  EXPECT_FALSE(FlatToContainer(24).has_value());
  EXPECT_EQ(FlatToContainer(0), (ContainerRef{ContainerType::k2B, 0}));
  EXPECT_EQ(FlatToContainer(23), (ContainerRef{ContainerType::k6B, 7}));
}

/// Parameterized: every resource kind's declared entry size matches what
/// its encoder produces.
class EntrySizeTest : public ::testing::TestWithParam<ResourceKind> {};

TEST_P(EntrySizeTest, DeclaredSizeMatchesEncoder) {
  const ResourceKind kind = GetParam();
  std::size_t actual = 0;
  switch (kind) {
    case ResourceKind::kParserTable:
    case ResourceKind::kDeparserTable:
      actual = ParserEntry{}.Encode().size();
      break;
    case ResourceKind::kKeyExtractor:
      actual = KeyExtractorEntry{}.Encode().size();
      break;
    case ResourceKind::kKeyMask:
      actual = KeyMaskEntry{}.Encode().size();
      break;
    case ResourceKind::kCamEntry:
      actual = CamEntry{}.Encode().size();
      break;
    case ResourceKind::kVliwAction:
      actual = VliwEntry{}.Encode().size();
      break;
    case ResourceKind::kSegmentTable:
      actual = SegmentEntry{}.Encode().size();
      break;
    case ResourceKind::kTcamEntry:
      actual = TcamEntry{}.Encode().size();
      break;
  }
  EXPECT_EQ(actual, EntryBytesFor(kind));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, EntrySizeTest,
    ::testing::Values(ResourceKind::kParserTable, ResourceKind::kDeparserTable,
                      ResourceKind::kKeyExtractor, ResourceKind::kKeyMask,
                      ResourceKind::kCamEntry, ResourceKind::kVliwAction,
                      ResourceKind::kSegmentTable, ResourceKind::kTcamEntry));

}  // namespace
}  // namespace menshen
