// Stage and pipeline behaviour with hand-built (not compiler-generated)
// configuration — validates the hardware model independent of codegen.
#include <gtest/gtest.h>

#include "pipeline/pipeline.hpp"

namespace menshen {
namespace {

// One hand-rolled module config: match 2B container 0 (parsed from the
// L4 dst port) against value 999 and add 1 to 4B container 0 (parsed from
// the IPv4 dst address).
void ConfigureIncrementModule(Pipeline& pipe, u16 vid, std::size_t cam_slot) {
  ParserEntry parser;
  parser.actions[0] = {true, {ContainerType::k2B, 0}, offsets::kL4DstPort};
  parser.actions[1] = {true, {ContainerType::k4B, 0}, offsets::kIpv4Dst};
  pipe.parser().table().Write(vid, parser);

  DeparserEntry deparser;
  deparser.actions[0] = {true, {ContainerType::k4B, 0}, offsets::kIpv4Dst};
  pipe.deparser().table().Write(vid, deparser);

  Stage& stage = pipe.stage(0);
  KeyExtractorEntry kx;  // selectors all zero: 1st2B slot = container 0
  stage.key_extractor().Write(vid, kx);

  KeyMaskEntry mask;
  const auto slots = KeySlots();
  for (std::size_t b = 0; b < 16; ++b)
    mask.mask.set_bit(slots[4].lsb + b, true);  // 1st 2B slot only
  stage.key_mask().Write(vid, mask);

  BitVec key(params::kKeyBits);
  key.set_field(slots[4].lsb, 16, 999);
  CamEntry cam;
  cam.valid = true;
  cam.key = key;
  cam.module = ModuleId(vid);
  stage.cam().Write(cam_slot, cam);

  VliwEntry vliw;
  vliw.slots[8] = {AluOp::kAddi, 8, 0, 1};  // 4B container 0 += 1
  stage.WriteVliw(cam_slot, vliw);
}

TEST(Stage, HitExecutesActionMissPassesThrough) {
  Pipeline pipe;
  ConfigureIncrementModule(pipe, 1, 0);

  Packet hit = PacketBuilder{}
                   .vid(ModuleId(1))
                   .ipv4(0, 0x0A000001)
                   .udp(1, 999)
                   .Build();
  const auto r1 = pipe.Process(hit);
  ASSERT_TRUE(r1.output.has_value());
  EXPECT_EQ(r1.output->ipv4_dst(), 0x0A000002u);
  EXPECT_EQ(pipe.stage(0).hits(), 1u);

  Packet miss = PacketBuilder{}
                    .vid(ModuleId(1))
                    .ipv4(0, 0x0A000001)
                    .udp(1, 998)
                    .Build();
  const auto r2 = pipe.Process(miss);
  EXPECT_EQ(r2.output->ipv4_dst(), 0x0A000001u);  // unchanged
  EXPECT_GE(pipe.stage(0).misses(), 1u);
}

TEST(Stage, KeyPlanCacheMatchesReferenceAndInvalidatesOnWrite) {
  Pipeline pipe;
  ConfigureIncrementModule(pipe, 1, 0);
  Stage& stage = pipe.stage(0);

  const Packet pkt = PacketBuilder{}
                         .vid(ModuleId(1))
                         .ipv4(0, 0xAABBCCDD)
                         .udp(1, 999)
                         .Build();
  const Phv phv = pipe.parser().Parse(pkt);
  const auto slots = KeySlots();

  // The cached-plan hot path produces the same masked key as the
  // reference rebuild (which extracts every slot and then masks).
  BitVec cached;
  stage.MaskedKeyInto(phv, cached);
  EXPECT_EQ(cached, stage.MaskedKeyFor(phv));
  EXPECT_EQ(cached.field(slots[4].lsb, 16), 999u);
  EXPECT_EQ(cached.field(slots[2].lsb, 32), 0u);  // masked-out slot skipped

  // Widening the mask to the 1st4B slot must invalidate the plan: the
  // next build sees the new slot.
  KeyMaskEntry mask = pipe.stage(0).key_mask().At(1);
  for (std::size_t b = 0; b < 32; ++b)
    mask.mask.set_bit(slots[2].lsb + b, true);
  stage.key_mask().Write(1, mask);

  stage.MaskedKeyInto(phv, cached);
  EXPECT_EQ(cached, stage.MaskedKeyFor(phv));
  EXPECT_EQ(cached.field(slots[2].lsb, 32), 0xAABBCCDDu);

  // An all-zero mask collapses the plan to the zero key.
  stage.key_mask().Write(1, KeyMaskEntry{});
  stage.MaskedKeyInto(phv, cached);
  EXPECT_TRUE(cached.is_zero());
  EXPECT_EQ(cached, stage.MaskedKeyFor(phv));
}

TEST(Pipeline, TwoModulesSameKeyBitsDifferentBehavior) {
  // Module 1 increments on port 999; module 2 has the same key bits but
  // its action decrements — the module ID in the CAM separates them.
  Pipeline pipe;
  ConfigureIncrementModule(pipe, 1, 0);
  ConfigureIncrementModule(pipe, 2, 1);
  // Rewrite module 2's CAM entry owner and action.
  Stage& stage = pipe.stage(0);
  CamEntry cam = stage.cam().At(1);
  cam.module = ModuleId(2);
  stage.cam().Write(1, cam);
  VliwEntry vliw;
  vliw.slots[8] = {AluOp::kSubi, 8, 0, 1};
  stage.WriteVliw(1, vliw);

  const auto mk = [](u16 vid) {
    return PacketBuilder{}
        .vid(ModuleId(vid))
        .ipv4(0, 0x0A000005)
        .udp(1, 999)
        .Build();
  };
  EXPECT_EQ(pipe.Process(mk(1)).output->ipv4_dst(), 0x0A000006u);
  EXPECT_EQ(pipe.Process(mk(2)).output->ipv4_dst(), 0x0A000004u);
}

TEST(Pipeline, CountsForwardedPerModule) {
  Pipeline pipe;
  ConfigureIncrementModule(pipe, 3, 0);
  for (int i = 0; i < 5; ++i) {
    Packet p = PacketBuilder{}.vid(ModuleId(3)).udp(1, 999).Build();
    pipe.Process(std::move(p));
  }
  EXPECT_EQ(pipe.forwarded(ModuleId(3)), 5u);
  EXPECT_EQ(pipe.total_processed(), 5u);
}

TEST(Pipeline, BitmapDropIsCountedAgainstTheModule) {
  Pipeline pipe;
  pipe.filter().MarkUnderReconfig(ModuleId(4), true);
  Packet p = PacketBuilder{}.vid(ModuleId(4)).Build();
  const auto r = pipe.Process(std::move(p));
  EXPECT_EQ(r.filter_verdict, FilterVerdict::kDropBitmap);
  EXPECT_FALSE(r.output.has_value());
  EXPECT_EQ(pipe.dropped(ModuleId(4)), 1u);
}

TEST(Pipeline, ApplyWriteRejectsBadPayloadsAndStages) {
  Pipeline pipe;
  ConfigWrite w;
  w.kind = ResourceKind::kSegmentTable;
  w.stage = 0;
  w.index = 1;
  w.payload = ByteBuffer(3);  // segment entries are 2 bytes
  EXPECT_THROW(pipe.ApplyWrite(w), std::invalid_argument);

  w.payload = SegmentEntry{0, 8}.Encode();
  w.stage = 5;  // no such stage
  EXPECT_THROW(pipe.ApplyWrite(w), std::out_of_range);

  w.stage = 4;
  pipe.ApplyWrite(w);
  EXPECT_EQ(pipe.config_writes_applied(), 1u);
  EXPECT_EQ(pipe.filter().reconfig_packet_counter(), 1u);
}

TEST(Pipeline, MulticastGroupResolution) {
  Pipeline pipe;
  pipe.SetMulticastGroup(7, {2, 3, 5});

  // Hand-build a module whose single action sets multicast group 7.
  ParserEntry parser;
  parser.actions[0] = {true, {ContainerType::k2B, 0}, offsets::kL4DstPort};
  pipe.parser().table().Write(1, parser);
  Stage& stage = pipe.stage(0);
  stage.key_extractor().Write(1, KeyExtractorEntry{});
  KeyMaskEntry mask;
  const auto slots = KeySlots();
  for (std::size_t b = 0; b < 16; ++b)
    mask.mask.set_bit(slots[4].lsb + b, true);
  stage.key_mask().Write(1, mask);
  BitVec key(params::kKeyBits);
  key.set_field(slots[4].lsb, 16, 111);
  stage.cam().Write(0, CamEntry{true, key, ModuleId(1)});
  VliwEntry vliw;
  vliw.slots[24] = {AluOp::kMcast, 0, 0, 7};
  stage.WriteVliw(0, vliw);

  Packet p = PacketBuilder{}.vid(ModuleId(1)).udp(1, 111).Build();
  const auto r = pipe.Process(std::move(p));
  EXPECT_EQ(r.output->disposition, Disposition::kMulticast);
  EXPECT_EQ(r.output->multicast_ports, (std::vector<u16>{2, 3, 5}));

  EXPECT_THROW(pipe.SetMulticastGroup(0, {1}), std::invalid_argument);
}

TEST(Pipeline, UnknownMulticastGroupForwardsUnicast) {
  Pipeline pipe;
  Packet p = PacketBuilder{}.vid(ModuleId(1)).Build();
  const auto r = pipe.Process(std::move(p));
  EXPECT_EQ(r.output->disposition, Disposition::kForward);
}

}  // namespace
}  // namespace menshen
