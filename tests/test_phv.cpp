#include "phv/phv.hpp"

#include <gtest/gtest.h>

namespace menshen {
namespace {

TEST(Phv, Dimensions) {
  // Table 5: 8 containers each of 2/4/6 bytes + 32B metadata = 128 bytes,
  // 25 ALU slots.
  EXPECT_EQ(kPhvBytes, 128u);
  EXPECT_EQ(kNumAluContainers, 25u);
  EXPECT_EQ(kMetadataBytes, 32u);
}

TEST(Phv, FreshPhvIsZero) {
  const Phv phv;
  for (const u8 b : phv.raw()) EXPECT_EQ(b, 0);
}

TEST(Phv, ContainerReadWriteRoundTrip) {
  Phv phv;
  phv.Write({ContainerType::k2B, 3}, 0xBEEF);
  phv.Write({ContainerType::k4B, 0}, 0xDEADBEEF);
  phv.Write({ContainerType::k6B, 7}, 0x0123456789ABULL);
  EXPECT_EQ(phv.Read({ContainerType::k2B, 3}), 0xBEEFu);
  EXPECT_EQ(phv.Read({ContainerType::k4B, 0}), 0xDEADBEEFu);
  EXPECT_EQ(phv.Read({ContainerType::k6B, 7}), 0x0123456789ABULL);
}

TEST(Phv, WriteTruncatesToContainerWidth) {
  Phv phv;
  phv.Write({ContainerType::k2B, 0}, 0x123456);
  EXPECT_EQ(phv.Read({ContainerType::k2B, 0}), 0x3456u);
}

TEST(Phv, ContainersDoNotOverlap) {
  Phv phv;
  // Fill every container with a distinct value, then verify all survive.
  for (u8 t = 0; t < 3; ++t) {
    for (u8 i = 0; i < kContainersPerType; ++i)
      phv.Write({static_cast<ContainerType>(t), i}, t * 8 + i + 1);
  }
  for (u8 t = 0; t < 3; ++t) {
    for (u8 i = 0; i < kContainersPerType; ++i)
      EXPECT_EQ(phv.Read({static_cast<ContainerType>(t), i}),
                static_cast<u64>(t * 8 + i + 1));
  }
}

TEST(Phv, ContainerIndexOutOfRangeThrows) {
  Phv phv;
  EXPECT_THROW((void)phv.Read({ContainerType::k2B, 8}), std::out_of_range);
}

TEST(Phv, MetadataAccessors) {
  Phv phv;
  phv.set_meta_u16(meta::kDstPort, 42);
  phv.set_meta_u32(meta::kLinkUtil, 123456);
  EXPECT_EQ(phv.meta_u16(meta::kDstPort), 42);
  EXPECT_EQ(phv.meta_u32(meta::kLinkUtil), 123456u);
  EXPECT_THROW((void)phv.meta_u32(30), std::out_of_range);
}

TEST(Phv, MetadataDoesNotClobberContainers) {
  Phv phv;
  phv.Write({ContainerType::k6B, 7}, 0xFFFFFFFFFFFFULL);
  phv.set_meta_u8(0, 0xAA);
  EXPECT_EQ(phv.Read({ContainerType::k6B, 7}), 0xFFFFFFFFFFFFULL);
}

TEST(Phv, DiscardFlag) {
  Phv phv;
  EXPECT_FALSE(phv.discard_flag());
  phv.set_discard_flag(true);
  EXPECT_TRUE(phv.discard_flag());
  phv.set_discard_flag(false);
  EXPECT_FALSE(phv.discard_flag());
}

TEST(ContainerRef, FlatNumbering) {
  EXPECT_EQ((ContainerRef{ContainerType::k2B, 0}).flat(), 0u);
  EXPECT_EQ((ContainerRef{ContainerType::k2B, 7}).flat(), 7u);
  EXPECT_EQ((ContainerRef{ContainerType::k4B, 0}).flat(), 8u);
  EXPECT_EQ((ContainerRef{ContainerType::k6B, 7}).flat(), 23u);
}

TEST(ContainerRef, WidthBytes) {
  EXPECT_EQ((ContainerRef{ContainerType::k2B, 0}).width_bytes(), 2u);
  EXPECT_EQ((ContainerRef{ContainerType::k4B, 0}).width_bytes(), 4u);
  EXPECT_EQ((ContainerRef{ContainerType::k6B, 0}).width_bytes(), 6u);
}

}  // namespace
}  // namespace menshen
