// Cross-feature integration: a ternary tenant wrapped by the system-level
// module, statistics over ternary tables, and unloading ternary modules.
#include <gtest/gtest.h>

#include "runtime/stats.hpp"
#include "sysmod/system_module.hpp"
#include "test_util.hpp"

namespace menshen {
namespace {

using namespace test;

constexpr std::string_view kAclTenant = R"(
module acl_tenant {
  field src_ip : 4 @ 30;
  action screen { drop(); }
  action pass(p) { port(p); }
  table acl {
    key = { src_ip };
    actions = { screen, pass };
    size = 4;
    match = ternary;
  }
}
)";

TEST(SysmodTernary, TernaryTenantInsideTheSandwich) {
  Diagnostics d;
  const ModuleSpec tenant = ParseModuleDsl(kAclTenant, d);
  ASSERT_TRUE(d.ok());

  SystemAllocation sys;
  sys.first = StageAllocation{kSystemFirstStage, 0, 4, 0, 8};
  sys.last = StageAllocation{kSystemLastStage, 0, 4, 0, 0};
  std::vector<StageAllocation> stages = {
      {1, 0, 4, 0, 0}, {2, 0, 4, 0, 0}, {3, 0, 4, 0, 0}};
  CompiledModule stack =
      CompileTenantWithSystem(tenant, ModuleId(4), stages, sys);
  ASSERT_TRUE(stack.ok()) << stack.diags().ToString();
  ASSERT_TRUE(InstallSystemEntries(stack, {{0x0A000002, 6, 0, false}}));

  // Tenant rules: block 10.9.0.0/16, pass the rest (tenant port is then
  // overridden by the system route).
  stack.AddTernaryEntry("acl", {{"src_ip", 0x0A090000}},
                        {{"src_ip", 0xFFFF0000}}, std::nullopt, "screen", {});
  stack.AddTernaryEntry("acl", {{"src_ip", 0}}, {{"src_ip", 0}},
                        std::nullopt, "pass", {1});
  ASSERT_TRUE(stack.ok()) << stack.diags().ToString();

  Pipeline pipe;
  ModuleManager mgr(pipe);
  ModuleAllocation alloc;
  alloc.id = ModuleId(4);
  alloc.stages.push_back(sys.first);
  for (const auto& sa : stages) alloc.stages.push_back(sa);
  alloc.stages.push_back(sys.last);
  MustLoad(mgr, stack, alloc);

  const auto mk = [](u32 src) {
    return PacketBuilder{}
        .vid(ModuleId(4))
        .ipv4(src, 0x0A000002)
        .udp(1, 2)
        .Build();
  };
  EXPECT_EQ(pipe.Process(mk(0x0A090001)).output->disposition,
            Disposition::kDrop);
  const auto ok = pipe.Process(mk(0x0B000001));
  EXPECT_EQ(ok.output->disposition, Disposition::kForward);
  EXPECT_EQ(ok.output->egress_port, 6);  // system routing wins

  // Introspection reports the mixed match kinds.
  const std::string dump = DumpModuleConfig(pipe, ModuleId(4));
  EXPECT_NE(dump.find("exact match"), std::string::npos);    // sys tables
  EXPECT_NE(dump.find("ternary match"), std::string::npos);  // tenant acl
  // Ingress accounting counted both packets.
  EXPECT_EQ(ReadSystemRxCount(pipe, stack), 2u);
}

TEST(SysmodTernary, UnloadScrubsTernaryState) {
  Diagnostics d;
  const ModuleSpec tenant = ParseModuleDsl(kAclTenant, d);
  ASSERT_TRUE(d.ok());
  const ModuleAllocation alloc =
      UniformAllocation(ModuleId(3), 0, params::kNumStages, 0, 4, 0, 0);
  CompiledModule m = MustCompile(tenant, alloc);
  m.AddTernaryEntry("acl", {{"src_ip", 0}}, {{"src_ip", 0}}, std::nullopt,
                    "screen", {});

  Pipeline pipe;
  ModuleManager mgr(pipe);
  MustLoad(mgr, m, alloc);
  EXPECT_EQ(pipe.Process(PacketBuilder{}.vid(ModuleId(3)).Build())
                .output->disposition,
            Disposition::kDrop);

  ASSERT_TRUE(mgr.Unload(ModuleId(3)));
  // The key-extractor row is blank again (kind bit cleared) and the
  // wildcard rule no longer fires because the zeroed key mask routes the
  // module to the (empty) exact CAM.
  EXPECT_FALSE(pipe.stage(0).key_extractor().At(3).ternary);
  EXPECT_EQ(pipe.Process(PacketBuilder{}.vid(ModuleId(3)).Build())
                .output->disposition,
            Disposition::kForward);
}

}  // namespace
}  // namespace menshen
