#include "pipeline/packet_filter.hpp"

#include <gtest/gtest.h>

namespace menshen {
namespace {

Packet Vlan(u16 vid) { return PacketBuilder{}.vid(ModuleId(vid)).Build(); }

Packet NoVlan() {
  Packet p = PacketBuilder{}.Build();
  p.bytes().set_u16(offsets::kVlanTpid, 0x0800);  // not 0x8100
  return p;
}

TEST(PacketFilter, DropsPacketsWithoutVlan) {
  PacketFilter filter;
  Packet p = NoVlan();
  EXPECT_EQ(filter.Classify(p), FilterVerdict::kDropNoVlan);
  EXPECT_EQ(filter.dropped_no_vlan(), 1u);
}

TEST(PacketFilter, SeparatesReconfigPackets) {
  PacketFilter filter(4, /*reconfig_on_data_path=*/true);
  Packet rc = PacketBuilder{}.udp(1, kReconfigUdpPort).Build();
  EXPECT_EQ(filter.Classify(rc), FilterVerdict::kReconfig);
}

TEST(PacketFilter, NetFpgaModeTreatsReservedPortAsData) {
  // On NetFPGA the daisy chain is fed over PCIe only; a data packet to
  // the reserved port is ordinary data.
  PacketFilter filter(4, /*reconfig_on_data_path=*/false);
  Packet rc = PacketBuilder{}.udp(1, kReconfigUdpPort).Build();
  EXPECT_EQ(filter.Classify(rc), FilterVerdict::kData);
}

TEST(PacketFilter, BitmapDropsOnlyTheQuiescedModule) {
  PacketFilter filter;
  filter.MarkUnderReconfig(ModuleId(5), true);
  Packet p5 = Vlan(5);
  Packet p6 = Vlan(6);
  EXPECT_EQ(filter.Classify(p5), FilterVerdict::kDropBitmap);
  EXPECT_EQ(filter.Classify(p6), FilterVerdict::kData);
  EXPECT_EQ(filter.dropped_bitmap(), 1u);

  filter.MarkUnderReconfig(ModuleId(5), false);
  Packet again = Vlan(5);
  EXPECT_EQ(filter.Classify(again), FilterVerdict::kData);
}

TEST(PacketFilter, BitmapRegisterBitsMatchModuleIds) {
  PacketFilter filter;
  filter.MarkUnderReconfig(ModuleId(0), true);
  filter.MarkUnderReconfig(ModuleId(31), true);
  EXPECT_EQ(filter.bitmap(), 0x80000001u);
  EXPECT_TRUE(filter.IsUnderReconfig(ModuleId(31)));
  EXPECT_THROW(filter.MarkUnderReconfig(ModuleId(32), true),
               std::out_of_range);
}

TEST(PacketFilter, BufferTagsRoundRobin) {
  PacketFilter filter(4);
  std::vector<u8> tags;
  for (int i = 0; i < 8; ++i) {
    Packet p = Vlan(1);
    EXPECT_EQ(filter.Classify(p), FilterVerdict::kData);
    tags.push_back(p.buffer_tag);
  }
  EXPECT_EQ(tags, (std::vector<u8>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(PacketFilter, ReconfigCounter) {
  PacketFilter filter;
  EXPECT_EQ(filter.reconfig_packet_counter(), 0u);
  filter.IncrementReconfigCounter();
  filter.IncrementReconfigCounter();
  EXPECT_EQ(filter.reconfig_packet_counter(), 2u);
}

}  // namespace
}  // namespace menshen
