// Ternary matching end-to-end (Appendix B): DSL `match = ternary`,
// compiler-generated TCAM entries with per-entry masks, address-priority
// semantics and cross-module isolation in the ternary CAM.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace menshen {
namespace {

using namespace test;

constexpr std::string_view kLpmFirewall = R"(
module lpm_fw {
  # Longest-prefix-flavoured firewall: ternary rules over the source IP,
  # most-specific first (lower TCAM address wins).
  field src_ip : 4 @ 30;
  action allow(p) { port(p); }
  action deny { drop(); }
  table acl {
    key = { src_ip };
    actions = { allow, deny };
    size = 4;
    match = ternary;
  }
}
)";

CompiledModule LoadLpm(ModuleManager& mgr, u16 id,
                       std::size_t cam_base) {
  const ModuleAllocation alloc = UniformAllocation(
      ModuleId(id), 0, params::kNumStages, cam_base, 4, 0, 0);
  CompiledModule m = CompileDsl(kLpmFirewall, alloc);
  EXPECT_TRUE(m.ok()) << m.diags().ToString();
  MustLoad(mgr, m, alloc);
  return m;
}

Packet FromIp(u16 vid, u32 src) {
  return PacketBuilder{}
      .vid(ModuleId(vid))
      .ipv4(src, 0x0B000001)
      .udp(1, 2)
      .Build();
}

TEST(Ternary, DslFlagReachesTheKeyExtractor) {
  Pipeline pipe;
  ModuleManager mgr(pipe);
  LoadLpm(mgr, 1, 0);
  EXPECT_TRUE(pipe.stage(0).key_extractor().At(1).ternary);
}

TEST(Ternary, PrefixRulesWithPriority) {
  Pipeline pipe;
  ModuleManager mgr(pipe);
  CompiledModule m = LoadLpm(mgr, 1, 0);

  // Rule order = priority: host allow, then /24 deny, then allow-all.
  m.AddTernaryEntry("acl", {{"src_ip", 0x0A000001}}, {}, std::nullopt,
                    "allow", {5});
  m.AddTernaryEntry("acl", {{"src_ip", 0x0A000000}},
                    {{"src_ip", 0xFFFFFF00}}, std::nullopt, "deny", {});
  m.AddTernaryEntry("acl", {{"src_ip", 0}}, {{"src_ip", 0}}, std::nullopt,
                    "allow", {9});
  ASSERT_TRUE(m.ok()) << m.diags().ToString();
  mgr.Update(m);

  // The specific host beats the /24 deny.
  auto r = pipe.Process(FromIp(1, 0x0A000001));
  EXPECT_EQ(r.output->disposition, Disposition::kForward);
  EXPECT_EQ(r.output->egress_port, 5);
  // Others in the /24 are denied.
  EXPECT_EQ(pipe.Process(FromIp(1, 0x0A0000FE)).output->disposition,
            Disposition::kDrop);
  // Everything else hits the wildcard allow.
  r = pipe.Process(FromIp(1, 0xC0A80101));
  EXPECT_EQ(r.output->disposition, Disposition::kForward);
  EXPECT_EQ(r.output->egress_port, 9);
}

TEST(Ternary, ModulesAreIsolatedInTheTcam) {
  Pipeline pipe;
  ModuleManager mgr(pipe);
  CompiledModule m1 = LoadLpm(mgr, 1, 0);
  CompiledModule m2 = LoadLpm(mgr, 2, 4);

  // Module 1: wildcard deny.  Module 2: wildcard allow.
  m1.AddTernaryEntry("acl", {{"src_ip", 0}}, {{"src_ip", 0}}, std::nullopt,
                     "deny", {});
  m2.AddTernaryEntry("acl", {{"src_ip", 0}}, {{"src_ip", 0}}, std::nullopt,
                     "allow", {7});
  mgr.Update(m1);
  mgr.Update(m2);

  EXPECT_EQ(pipe.Process(FromIp(1, 0x01020304)).output->disposition,
            Disposition::kDrop);
  const auto r2 = pipe.Process(FromIp(2, 0x01020304));
  EXPECT_EQ(r2.output->disposition, Disposition::kForward);
  EXPECT_EQ(r2.output->egress_port, 7);
}

TEST(Ternary, WrongEntryApiIsRefused) {
  Pipeline pipe;
  ModuleManager mgr(pipe);
  CompiledModule m = LoadLpm(mgr, 1, 0);
  EXPECT_TRUE(
      m.AddEntry("acl", {{"src_ip", 1}}, std::nullopt, "deny", {}).empty());
  EXPECT_FALSE(m.ok());
  EXPECT_TRUE(m.diags().HasCode("entry.match-kind"));

  // And the converse: AddTernaryEntry on an exact table.
  const ModuleAllocation alloc = StandardAlloc(3, 8, 4);
  CompiledModule exact = MustCompile(apps::CalcSpec(), alloc);
  EXPECT_TRUE(exact
                  .AddTernaryEntry("calc_tbl", {{"op", 1}}, {}, std::nullopt,
                                   "do_add", {1})
                  .empty());
  EXPECT_TRUE(exact.diags().HasCode("entry.match-kind"));
}

TEST(Ternary, MaskMustFitTheField) {
  Pipeline pipe;
  ModuleManager mgr(pipe);
  CompiledModule m = LoadLpm(mgr, 1, 0);
  EXPECT_TRUE(m.AddTernaryEntry("acl", {{"src_ip", 0}},
                                {{"src_ip", 0x1FFFFFFFFULL}}, std::nullopt,
                                "deny", {})
                  .empty());
  EXPECT_TRUE(m.diags().HasCode("entry.mask-range"));
}

TEST(Ternary, TcamEntryCodecRoundTrip) {
  TcamEntry e;
  e.valid = true;
  e.module = ModuleId(7);
  e.key.set_field(100, 32, 0xABCD1234);
  e.mask = BitVec::AllOnes(params::kKeyBits);
  const ByteBuffer bytes = e.Encode();
  EXPECT_EQ(bytes.size(), 53u);
  EXPECT_EQ(TcamEntry::Decode(bytes), e);
  EXPECT_THROW(TcamEntry::Decode(ByteBuffer(52)), std::invalid_argument);
}

TEST(Ternary, ReconfigPacketCarriesTcamWrites) {
  // The new resource kind rides the same daisy-chain format.
  TcamEntry e;
  e.valid = true;
  e.module = ModuleId(3);
  ConfigWrite w{ResourceKind::kTcamEntry, 2, 5, e.Encode()};
  const Packet pkt = EncodeReconfigPacket(w, ModuleId(3));
  EXPECT_EQ(DecodeReconfigPacket(pkt), w);

  Pipeline pipe;
  pipe.ApplyWrite(w);
  EXPECT_EQ(pipe.stage(2).tcam().At(5), e);
}

}  // namespace
}  // namespace menshen
